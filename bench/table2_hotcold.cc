// Reproduces Table 2: minimum cleaning cost when hot and cold data are
// managed separately (F = 0.8), for the m:1-m distributions. Columns:
// the analytic minimum (equal slack split, §3.2-3.3), the 60%/40% slack
// splits, and the simulated MDC-opt cost (2/E at clean time), which the
// paper reports matching the analytic minimum to two significant digits.

#include <cstdio>

#include "analysis/hotcold_model.h"
#include "analysis/uniform_model.h"
#include "bench/bench_common.h"
#include "util/table_printer.h"
#include "workload/runner.h"

namespace lss {
namespace {

void Run() {
  const double skews[] = {0.9, 0.8, 0.7, 0.6, 0.5001};
  const double f = 0.8;

  TablePrinter table({"Cold-Hot", "MinCost", "Hot:60%", "Hot:40%",
                      "MDC-opt(sim)", "Wamp(opt)", "Wamp(sim)"});
  // Larger segments than the shape-focused figures: victim-selection
  // variance (which lets max-E selection beat the age-based fixpoint)
  // shrinks with pages-per-segment, and this table is about matching the
  // analytic values to ~2 digits (§8.1).
  StoreConfig cfg = bench::DefaultConfig();
  cfg.segment_bytes = 256 * 4096;
  cfg.num_segments = 1024 * bench::ScaleFactor();
  cfg.clean_trigger_segments = 4;
  cfg.clean_batch_segments = 32;
  for (double m : skews) {
    const uint64_t user_pages = bench::UserPagesFor(cfg, f);
    HotColdWorkload workload(user_pages, m);
    const RunResult r =
        RunSynthetic(cfg, Variant::kMdcOpt, workload, bench::DefaultSpec(f));
    if (!r.status.ok()) {
      std::fprintf(stderr, "m=%.2f failed: %s\n", m,
                   r.status.ToString().c_str());
      continue;
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%d:%d",
                  static_cast<int>(m * 100 + 0.5),
                  static_cast<int>((1 - m) * 100 + 0.5));
    // Simulated cost: the measured Wamp converted through Cost = 2/E,
    // E = 1/(1+Wamp).
    const double sim_cost = 2.0 * (1.0 + r.wamp);
    table.AddRow({TablePrinter::Cell(label),
                  TablePrinter::Cell(MinCostEqualSplit(f, m), 2),
                  TablePrinter::Cell(EvaluateHotColdSplit(f, m, 0.6).cost, 2),
                  TablePrinter::Cell(EvaluateHotColdSplit(f, m, 0.4).cost, 2),
                  TablePrinter::Cell(sim_cost, 2),
                  TablePrinter::Cell(OptimalWamp(f, m), 3),
                  TablePrinter::Cell(r.wamp, 3)});
    bench::Emit(bench::JsonRow("table2_hotcold")
                    .Str("workload", std::string("hotcold-") + label)
                    .Str("variant", r.variant)
                    .Num("fill", f)
                    .Num("skew", m)
                    .Num("analytic_min_cost", MinCostEqualSplit(f, m))
                    .Num("sim_cost", sim_cost)
                    .Num("analytic_opt_wamp", OptimalWamp(f, m))
                    .Num("wamp", r.wamp));
  }
  std::printf("Table 2: minimum cost when managing hot and cold data "
              "separately (F = 0.8)\n");
  std::printf("paper reference MinCost / MDC-opt: 2.96/2.96 4.00/3.99 "
              "4.80/4.76 5.23/5.23 5.38/5.38\n\n");
  table.Print(stdout);
}

}  // namespace
}  // namespace lss

int main() {
  lss::Run();
  return 0;
}
