// Reproduces Figure 6: write amplification of all seven cleaning
// algorithms on a TPC-C page-write trace, fill factors 0.5-0.8.
//
// Pipeline (paper §6.3): run TPC-C on the B+-tree storage engine with a
// buffer cache ~10% of the database, collect the page-write I/O trace,
// then replay it through the cleaning simulator at each fill factor
// (device sized so the final database occupies F of it). The *-opt
// variants pre-analyse page update frequencies from the measured part of
// the trace, exactly as the paper describes.
//
// Expected shape: age and greedy worst (TPC-C skew is ~80-20 with a
// shifting hot set); cost-benefit and multi-log mid-field, with plain
// multi-log no better than cost-benefit; MDC below them; multi-log-opt /
// MDC-opt lowest, MDC-opt below multi-log-opt.
//
// Environment:
//   LSS_BENCH_SCALE=N     multiply warehouses / transaction counts
//   LSS_BENCH_THREADS=N   worker threads for trace generation AND shards
//                         for trace replay (default 1 = the serial
//                         pipeline; replay at N>1 runs RunTraceParallel
//                         over an N-shard store)
//   LSS_BENCH_SMOKE=1     tiny cardinality + one fill factor, for CI
//   LSS_BENCH_NO_CACHE=1  always regenerate the trace
//   LSS_BENCH_POOL=p      buffer-pool policy for generation (lru|clock|2q;
//                         a separate trace cache entry per policy)
//   LSS_BENCH_JSON=path   machine-readable results (bench_common.h)

#include <algorithm>
#include <cinttypes>
#include <unistd.h>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "tpcc/trace_gen.h"
#include "util/table_printer.h"
#include "workload/runner.h"

namespace lss {
namespace {

// Generation workers / replay shards (LSS_BENCH_THREADS; first value if
// a sweep list is given, since fig6 runs one configuration). The value
// is parsed strictly: garbage exits(2) instead of clamping to 1.
uint32_t BenchThreads() {
  const char* env = std::getenv("LSS_BENCH_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  std::string first(env);
  const size_t comma = first.find(',');
  if (comma != std::string::npos) first.resize(comma);
  return static_cast<uint32_t>(
      bench::ParseEnvInt("LSS_BENCH_THREADS", first.c_str(), 1, 4096));
}

bool SmokeMode() {
  const char* env = std::getenv("LSS_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

// Trace generation dominates this bench's runtime, so the generated
// trace is cached in the system temp directory, keyed by every parameter
// that shapes it — including the worker-thread count (parallel
// generation produces a differently interleaved trace) and the trace
// generator's format version, so stale cached traces regenerate instead
// of silently replaying old data after a format change. Re-runs (e.g.
// sweeping simulator-side settings) load the cache in milliseconds; set
// LSS_BENCH_NO_CACHE=1 to force regeneration.
struct CachedTrace {
  tpcc::TpccTraceResult gen;
  bool from_cache = false;
};

std::string TraceCachePath(const tpcc::TpccConfig& tc, uint64_t warm_txns,
                           uint64_t measure_txns, uint64_t checkpoint_every) {
  // FNV-1a over the generation parameters: any change keys a new file.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(tpcc::kTpccTraceFormatVersion);
  mix(tc.warehouses);
  mix(tc.districts_per_warehouse);
  mix(tc.customers_per_district);
  mix(tc.items);
  mix(tc.orders_per_district);
  mix(tc.buffer_pool_pages);
  mix(tc.seed);
  mix(tc.workers);
  // Eviction order decides which write-backs the trace records, so a
  // different replacement policy is a different trace.
  mix(static_cast<uint64_t>(tc.pool_policy));
  mix(warm_txns);
  mix(measure_txns);
  mix(checkpoint_every);
  const char* tmp = std::getenv("TMPDIR");
  if (tmp == nullptr || *tmp == '\0') tmp = "/tmp";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/lss_fig6_trace_%016" PRIx64, h);
  return std::string(tmp) + buf;
}

// The trace's binary files hold only the records; the run metadata
// (boundaries, pool counters, pre-split shape) rides in a tiny sidecar
// so a cache hit restores the full TpccTraceResult.
bool SaveMeta(const std::string& path, const tpcc::TpccTraceResult& gen) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%zu %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
               gen.measure_from, gen.pages_after_load, gen.pages_final,
               gen.transactions);
  std::fprintf(f, "%" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
               "\n",
               gen.pool_hits, gen.pool_misses, gen.pool_evictions,
               gen.pool_write_backs, gen.pool_latch_acquisitions);
  std::fprintf(f, "%u", gen.presplit.shards);
  for (uint32_t s = 0; s < gen.presplit.shards; ++s) {
    std::fprintf(f, " %zu", gen.presplit.measure_from[s]);
  }
  std::fprintf(f, "\n");
  std::fclose(f);
  return true;
}

bool LoadMeta(const std::string& path, tpcc::TpccTraceResult* gen) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  size_t measure_from = 0;
  uint64_t after_load = 0, final_pages = 0, txns = 0;
  uint32_t shards = 0;
  bool ok =
      std::fscanf(f, "%zu %" SCNu64 " %" SCNu64 " %" SCNu64, &measure_from,
                  &after_load, &final_pages, &txns) == 4 &&
      std::fscanf(f, "%" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                  " %" SCNu64,
                  &gen->pool_hits, &gen->pool_misses, &gen->pool_evictions,
                  &gen->pool_write_backs,
                  &gen->pool_latch_acquisitions) == 5 &&
      std::fscanf(f, "%u", &shards) == 1;
  gen->presplit.shards = shards;
  gen->presplit.measure_from.assign(shards, 0);
  for (uint32_t s = 0; ok && s < shards; ++s) {
    ok = std::fscanf(f, "%zu", &gen->presplit.measure_from[s]) == 1;
  }
  std::fclose(f);
  if (!ok) return false;
  gen->measure_from = measure_from;
  gen->pages_after_load = after_load;
  gen->pages_final = final_pages;
  gen->transactions = txns;
  return true;
}

std::string ShardTracePath(const std::string& base, uint32_t s) {
  return base + ".s" + std::to_string(s) + ".trace";
}

CachedTrace GenerateOrLoadTrace(const tpcc::TpccConfig& tc,
                                uint64_t warm_txns, uint64_t measure_txns,
                                uint64_t checkpoint_every,
                                uint32_t presplit_shards) {
  const std::string base =
      TraceCachePath(tc, warm_txns, measure_txns, checkpoint_every);
  const std::string trace_path = base + ".trace";
  const std::string meta_path = base + ".meta";
  const bool cache_enabled = std::getenv("LSS_BENCH_NO_CACHE") == nullptr;

  CachedTrace out;
  if (cache_enabled && LoadMeta(meta_path, &out.gen) &&
      out.gen.trace.LoadFrom(trace_path) && !out.gen.trace.Empty()) {
    // The per-shard sub-traces ride in sibling files; a damaged or
    // missing one just forfeits the fast path (the router re-derives the
    // same routing from the main trace).
    if (out.gen.presplit.shards == presplit_shards &&
        presplit_shards > 0) {
      out.gen.presplit.sub.resize(presplit_shards);
      for (uint32_t s = 0; s < presplit_shards; ++s) {
        if (!out.gen.presplit.sub[s].LoadFrom(ShardTracePath(base, s))) {
          out.gen.presplit = ShardedTrace();
          break;
        }
      }
    } else {
      out.gen.presplit = ShardedTrace();
    }
    out.from_cache = true;
    out.gen.workers = tc.workers;
    return out;
  }
  out.gen = tpcc::GenerateTpccTrace(tc, warm_txns, measure_txns,
                                    checkpoint_every, presplit_shards);
  if (cache_enabled) {
    // Best effort, and atomic against concurrent bench runs: write to a
    // pid-unique temp name, then rename into place (atomic on POSIX), so
    // a reader never sees a half-written cache file. The meta sidecar
    // lands last: a reader only trusts shard files its meta promises.
    const std::string suffix = "." + std::to_string(::getpid()) + ".tmp";
    const std::string trace_tmp = trace_path + suffix;
    const std::string meta_tmp = meta_path + suffix;
    bool ok = out.gen.trace.SaveTo(trace_tmp) &&
              std::rename(trace_tmp.c_str(), trace_path.c_str()) == 0;
    for (uint32_t s = 0; ok && s < out.gen.presplit.shards; ++s) {
      const std::string shard_path = ShardTracePath(base, s);
      const std::string shard_tmp = shard_path + suffix;
      ok = out.gen.presplit.sub[s].SaveTo(shard_tmp) &&
           std::rename(shard_tmp.c_str(), shard_path.c_str()) == 0;
      if (!ok) std::remove(shard_tmp.c_str());
    }
    if (ok && SaveMeta(meta_tmp, out.gen) &&
        std::rename(meta_tmp.c_str(), meta_path.c_str()) == 0) {
      return out;
    }
    std::remove(trace_tmp.c_str());
    std::remove(meta_tmp.c_str());
  }
  return out;
}

void Run() {
  using tpcc::TpccConfig;
  // Scaled-down TPC-C: ~4 warehouses of reduced cardinality at scale 1.
  // What the cleaning experiment needs is the write *pattern* (schema +
  // mix + cache ratio), not absolute size. LSS_BENCH_SCALE=N multiplies
  // the warehouse count (TPC-C's own scaling knob) as well as the
  // transaction counts, growing the database toward the paper's
  // 4 GB-cache regime; LSS_BENCH_THREADS=N generates (and replays) with
  // N-way parallelism, which is what makes paper-scale runs tractable.
  const uint32_t scale = bench::ScaleFactor();
  const uint32_t threads = BenchThreads();
  const bool smoke = SmokeMode();
  // Generation workers and replay shards both default to `threads`, but
  // the smoke database is too small to carve into many replay shards
  // (per-shard cleaner geometry would be invalid), so smoke caps the
  // replay side at 2 — generation still runs all `threads` workers,
  // which is what the workers-beyond-warehouses CI gate exercises.
  const uint32_t replay_shards = smoke ? std::min(threads, 2u) : threads;
  TpccConfig tc;
  // Smoke pins 2 warehouses regardless of the thread count: with
  // LSS_BENCH_THREADS > 2 this exercises the workers-beyond-warehouses
  // path (several sessions sharing a partition group) in CI.
  tc.warehouses = smoke ? 2 : 4 * scale;
  tc.districts_per_warehouse = smoke ? 4 : 10;
  tc.customers_per_district = smoke ? 120 : 400;
  tc.items = smoke ? 500 : 5000;
  tc.orders_per_district = smoke ? 120 : 400;
  tc.seed = 17;
  tc.workers = threads;
  tc.pool_policy = bench::PoolPolicy();

  const uint64_t warm_txns = smoke ? 1000 : 20000ull * scale;
  const uint64_t measure_txns = smoke ? 3000 : 80000ull * scale;

  // Pre-size the cache to ~10% of the database footprint: populate a
  // throwaway instance to learn the page count (in parallel when
  // threads > 1 — no trace is collected here).
  uint64_t db_pages;
  {
    tpcc::TpccDb probe(tc);
    probe.Populate();
    db_pages = probe.PageCount();
  }
  tc.buffer_pool_pages = std::max<size_t>(64, db_pages / 10);

  std::printf("Figure 6: TPC-C trace replay (%u warehouses, db ~%llu pages, "
              "cache %zu pages, %llu warm + %llu measured txns, "
              "%u thread%s)\n",
              tc.warehouses,
              static_cast<unsigned long long>(db_pages),
              tc.buffer_pool_pages,
              static_cast<unsigned long long>(warm_txns),
              static_cast<unsigned long long>(measure_txns),
              threads, threads == 1 ? "" : "s");

  // LSS_BENCH_CKPT_INTERVAL overrides the engine-checkpoint period
  // (transactions between dirty-page flushes during generation). It is
  // a generation parameter, so TraceCachePath mixes it into the cache
  // key and traces from different checkpoint settings never alias.
  const CachedTrace cached =
      GenerateOrLoadTrace(tc, warm_txns, measure_txns,
                          /*checkpoint_every=*/bench::CheckpointInterval(2000),
                          /*presplit_shards=*/replay_shards > 1
                              ? replay_shards
                              : 0);
  const tpcc::TpccTraceResult& gen = cached.gen;
  if (cached.from_cache) {
    std::printf("trace (cached): %zu page writes (%zu measured), db grew "
                "%llu -> %llu pages\n\n",
                gen.trace.Size(), gen.trace.Size() - gen.measure_from,
                static_cast<unsigned long long>(gen.pages_after_load),
                static_cast<unsigned long long>(gen.pages_final));
  } else {
    std::printf("trace: %zu page writes (%zu measured), db grew %llu -> "
                "%llu pages, generated in %.2fs with %u worker%s\n\n",
                gen.trace.Size(), gen.trace.Size() - gen.measure_from,
                static_cast<unsigned long long>(gen.pages_after_load),
                static_cast<unsigned long long>(gen.pages_final),
                gen.generation_seconds, gen.workers,
                gen.workers == 1 ? "" : "s");
  }
  bench::Emit(bench::JsonRow("fig6_tpcc")
                  .Str("row", "generation")
                  .Str("pool_policy", EvictionPolicyName(tc.pool_policy))
                  .Num("threads", static_cast<uint64_t>(threads))
                  .Num("scale", static_cast<uint64_t>(scale))
                  .Num("warehouses", static_cast<uint64_t>(tc.warehouses))
                  .Num("trace_records", static_cast<uint64_t>(gen.trace.Size()))
                  .Num("pages_final", gen.pages_final)
                  .Num("from_cache", static_cast<uint64_t>(cached.from_cache))
                  .Num("generation_seconds", gen.generation_seconds)
                  .Num("pool_hits", gen.pool_hits)
                  .Num("pool_misses", gen.pool_misses)
                  .Num("pool_evictions", gen.pool_evictions)
                  .Num("pool_write_backs", gen.pool_write_backs)
                  .Num("pool_latch_acquisitions",
                       gen.pool_latch_acquisitions)
                  .Num("presplit_shards",
                       static_cast<uint64_t>(gen.presplit.shards)));

  StoreConfig base;
  base.page_bytes = 4096;
  base.segment_bytes = 128 * 4096;
  base.clean_trigger_segments = 4;
  base.clean_batch_segments = 16;
  base.write_buffer_segments = 16;

  std::vector<std::string> headers = {"F"};
  std::vector<Variant> lines;
  for (Variant v : AllVariants()) {
    if (v == Variant::kMdcNoSepUser || v == Variant::kMdcNoSepUserGc) {
      continue;
    }
    lines.push_back(v);
    headers.push_back(VariantName(v));
  }
  TablePrinter table(headers);
  const std::vector<double> fills =
      smoke ? std::vector<double>{0.7}
            : std::vector<double>{0.5, 0.6, 0.7, 0.8};
  for (double f : fills) {
    // Device sized so the final database occupies F of the usable space.
    StoreConfig cfg = ScaleConfigForFill(
        base, gen.pages_final + bench::ReserveSegments(base) *
                                    base.PagesPerSegment() / 64,
        f);
    cfg.num_segments += bench::ReserveSegments(base);
    std::vector<TablePrinter::Cell> row;
    row.emplace_back(f, 2);
    for (Variant v : lines) {
      RunResult r;
      double replay_seconds = 0.0;
      if (replay_shards > 1) {
        const ParallelRunResult pr = RunTraceParallel(
            cfg, v, gen.trace, gen.measure_from, replay_shards,
            gen.presplit.Valid() ? &gen.presplit : nullptr);
        r = pr.result;
        replay_seconds = pr.measure_seconds;
      } else {
        r = RunTrace(cfg, v, gen.trace, gen.measure_from);
      }
      if (!r.status.ok()) {
        std::fprintf(stderr, "%s F=%.2f failed: %s\n", VariantName(v).c_str(),
                     f, r.status.ToString().c_str());
        row.emplace_back("err");
      } else {
        row.emplace_back(r.wamp, 3);
        bench::JsonRow json("fig6_tpcc");
        json.Str("workload", "tpcc")
            .Str("variant", r.variant)
            .Num("fill", f)
            .Num("wamp", r.wamp)
            .Num("mean_clean_emptiness", r.mean_clean_emptiness)
            .Num("measured_updates", r.measured_updates)
            .Num("effective_fill", r.effective_fill)
            .Num("threads", static_cast<uint64_t>(threads));
        if (replay_shards > 1) json.Num("replay_seconds", replay_seconds);
        bench::Emit(json);
      }
    }
    table.AddRow(std::move(row));
  }
  if (replay_shards > 1) {
    std::printf("replay: RunTraceParallel over %u shards (per-page order "
                "preserved; Wamp is the per-shard-cleaned aggregate)\n\n",
                replay_shards);
  }
  table.Print(stdout);
}

}  // namespace
}  // namespace lss

int main() {
  lss::Run();
  return 0;
}
