// Reproduces Figure 6: write amplification of all seven cleaning
// algorithms on a TPC-C page-write trace, fill factors 0.5-0.8.
//
// Pipeline (paper §6.3): run TPC-C on the B+-tree storage engine with a
// buffer cache ~10% of the database, collect the page-write I/O trace,
// then replay it through the cleaning simulator at each fill factor
// (device sized so the final database occupies F of it). The *-opt
// variants pre-analyse page update frequencies from the measured part of
// the trace, exactly as the paper describes.
//
// Expected shape: age and greedy worst (TPC-C skew is ~80-20 with a
// shifting hot set); cost-benefit and multi-log mid-field, with plain
// multi-log no better than cost-benefit; MDC below them; multi-log-opt /
// MDC-opt lowest, MDC-opt below multi-log-opt.

#include <cinttypes>
#include <unistd.h>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "tpcc/trace_gen.h"
#include "util/table_printer.h"
#include "workload/runner.h"

namespace lss {
namespace {

// Trace generation dominates this bench's runtime, so the generated
// trace is cached in the system temp directory, keyed by every parameter
// that shapes it. Re-runs (e.g. sweeping simulator-side settings) load
// the cache in milliseconds; set LSS_BENCH_NO_CACHE=1 to force
// regeneration.
struct CachedTrace {
  tpcc::TpccTraceResult gen;
  bool from_cache = false;
};

std::string TraceCachePath(const tpcc::TpccConfig& tc, uint64_t warm_txns,
                           uint64_t measure_txns, uint64_t checkpoint_every) {
  // FNV-1a over the generation parameters: any change keys a new file.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(tc.warehouses);
  mix(tc.districts_per_warehouse);
  mix(tc.customers_per_district);
  mix(tc.items);
  mix(tc.orders_per_district);
  mix(tc.buffer_pool_pages);
  mix(tc.seed);
  mix(warm_txns);
  mix(measure_txns);
  mix(checkpoint_every);
  const char* tmp = std::getenv("TMPDIR");
  if (tmp == nullptr || *tmp == '\0') tmp = "/tmp";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/lss_fig6_trace_%016" PRIx64, h);
  return std::string(tmp) + buf;
}

// The trace's binary file holds only the records; the run metadata rides
// in a tiny sidecar so a cache hit restores the full TpccTraceResult.
bool SaveMeta(const std::string& path, const tpcc::TpccTraceResult& gen) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%zu %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
               gen.measure_from, gen.pages_after_load, gen.pages_final,
               gen.transactions);
  std::fclose(f);
  return true;
}

bool LoadMeta(const std::string& path, tpcc::TpccTraceResult* gen) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  size_t measure_from = 0;
  uint64_t after_load = 0, final_pages = 0, txns = 0;
  const int n = std::fscanf(f, "%zu %" SCNu64 " %" SCNu64 " %" SCNu64,
                            &measure_from, &after_load, &final_pages, &txns);
  std::fclose(f);
  if (n != 4) return false;
  gen->measure_from = measure_from;
  gen->pages_after_load = after_load;
  gen->pages_final = final_pages;
  gen->transactions = txns;
  return true;
}

CachedTrace GenerateOrLoadTrace(const tpcc::TpccConfig& tc,
                                uint64_t warm_txns, uint64_t measure_txns,
                                uint64_t checkpoint_every) {
  const std::string base =
      TraceCachePath(tc, warm_txns, measure_txns, checkpoint_every);
  const std::string trace_path = base + ".trace";
  const std::string meta_path = base + ".meta";
  const bool cache_enabled = std::getenv("LSS_BENCH_NO_CACHE") == nullptr;

  CachedTrace out;
  if (cache_enabled && LoadMeta(meta_path, &out.gen) &&
      out.gen.trace.LoadFrom(trace_path) && !out.gen.trace.Empty()) {
    out.from_cache = true;
    return out;
  }
  out.gen = tpcc::GenerateTpccTrace(tc, warm_txns, measure_txns,
                                    checkpoint_every);
  if (cache_enabled) {
    // Best effort, and atomic against concurrent bench runs: write to a
    // pid-unique temp name, then rename into place (atomic on POSIX), so
    // a reader never sees a half-written cache file.
    const std::string suffix = "." + std::to_string(::getpid()) + ".tmp";
    const std::string trace_tmp = trace_path + suffix;
    const std::string meta_tmp = meta_path + suffix;
    if (out.gen.trace.SaveTo(trace_tmp) && SaveMeta(meta_tmp, out.gen) &&
        std::rename(trace_tmp.c_str(), trace_path.c_str()) == 0 &&
        std::rename(meta_tmp.c_str(), meta_path.c_str()) == 0) {
      return out;
    }
    std::remove(trace_tmp.c_str());
    std::remove(meta_tmp.c_str());
  }
  return out;
}

void Run() {
  using tpcc::TpccConfig;
  // Scaled-down TPC-C: ~4 warehouses of reduced cardinality at scale 1.
  // What the cleaning experiment needs is the write *pattern* (schema +
  // mix + cache ratio), not absolute size. LSS_BENCH_SCALE=N multiplies
  // the warehouse count (TPC-C's own scaling knob) as well as the
  // transaction counts, growing the database toward the paper's
  // 4 GB-cache regime.
  const uint32_t scale = bench::ScaleFactor();
  TpccConfig tc;
  tc.warehouses = 4 * scale;
  tc.districts_per_warehouse = 10;
  tc.customers_per_district = 400;
  tc.items = 5000;
  tc.orders_per_district = 400;
  tc.seed = 17;

  const uint64_t warm_txns = 20000ull * scale;
  const uint64_t measure_txns = 80000ull * scale;

  // Pre-size the cache to ~10% of the database footprint: populate a
  // throwaway instance to learn the page count.
  uint64_t db_pages;
  {
    tpcc::TpccDb probe(tc);
    probe.Populate();
    db_pages = probe.PageCount();
  }
  tc.buffer_pool_pages = std::max<size_t>(64, db_pages / 10);

  std::printf("Figure 6: TPC-C trace replay (%u warehouses, db ~%llu pages, "
              "cache %zu pages, %llu warm + %llu measured txns)\n",
              tc.warehouses,
              static_cast<unsigned long long>(db_pages),
              tc.buffer_pool_pages,
              static_cast<unsigned long long>(warm_txns),
              static_cast<unsigned long long>(measure_txns));

  const CachedTrace cached =
      GenerateOrLoadTrace(tc, warm_txns, measure_txns,
                          /*checkpoint_every=*/2000);
  const tpcc::TpccTraceResult& gen = cached.gen;
  std::printf("trace%s: %zu page writes (%zu measured), db grew %llu -> "
              "%llu pages\n\n",
              cached.from_cache ? " (cached)" : "", gen.trace.Size(),
              gen.trace.Size() - gen.measure_from,
              static_cast<unsigned long long>(gen.pages_after_load),
              static_cast<unsigned long long>(gen.pages_final));

  StoreConfig base;
  base.page_bytes = 4096;
  base.segment_bytes = 128 * 4096;
  base.clean_trigger_segments = 4;
  base.clean_batch_segments = 16;
  base.write_buffer_segments = 16;

  std::vector<std::string> headers = {"F"};
  std::vector<Variant> lines;
  for (Variant v : AllVariants()) {
    if (v == Variant::kMdcNoSepUser || v == Variant::kMdcNoSepUserGc) {
      continue;
    }
    lines.push_back(v);
    headers.push_back(VariantName(v));
  }
  TablePrinter table(headers);
  for (double f : {0.5, 0.6, 0.7, 0.8}) {
    // Device sized so the final database occupies F of the usable space.
    StoreConfig cfg = ScaleConfigForFill(
        base, gen.pages_final + bench::ReserveSegments(base) *
                                    base.PagesPerSegment() / 64,
        f);
    cfg.num_segments += bench::ReserveSegments(base);
    std::vector<TablePrinter::Cell> row;
    row.emplace_back(f, 2);
    for (Variant v : lines) {
      const RunResult r = RunTrace(cfg, v, gen.trace, gen.measure_from);
      if (!r.status.ok()) {
        std::fprintf(stderr, "%s F=%.2f failed: %s\n", VariantName(v).c_str(),
                     f, r.status.ToString().c_str());
        row.emplace_back("err");
      } else {
        row.emplace_back(r.wamp, 3);
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print(stdout);
}

}  // namespace
}  // namespace lss

int main() {
  lss::Run();
  return 0;
}
