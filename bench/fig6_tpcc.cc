// Reproduces Figure 6: write amplification of all seven cleaning
// algorithms on a TPC-C page-write trace, fill factors 0.5-0.8.
//
// Pipeline (paper §6.3): run TPC-C on the B+-tree storage engine with a
// buffer cache ~10% of the database, collect the page-write I/O trace,
// then replay it through the cleaning simulator at each fill factor
// (device sized so the final database occupies F of it). The *-opt
// variants pre-analyse page update frequencies from the measured part of
// the trace, exactly as the paper describes.
//
// Expected shape: age and greedy worst (TPC-C skew is ~80-20 with a
// shifting hot set); cost-benefit and multi-log mid-field, with plain
// multi-log no better than cost-benefit; MDC below them; multi-log-opt /
// MDC-opt lowest, MDC-opt below multi-log-opt.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "tpcc/trace_gen.h"
#include "util/table_printer.h"
#include "workload/runner.h"

namespace lss {
namespace {

void Run() {
  using tpcc::TpccConfig;
  // Scaled-down TPC-C: ~4 warehouses of reduced cardinality. What the
  // cleaning experiment needs is the write *pattern* (schema + mix +
  // cache ratio), not absolute size.
  TpccConfig tc;
  tc.warehouses = 4;
  tc.districts_per_warehouse = 10;
  tc.customers_per_district = 400;
  tc.items = 5000;
  tc.orders_per_district = 400;
  tc.seed = 17;

  const uint32_t scale = bench::ScaleFactor();
  const uint64_t warm_txns = 20000ull * scale;
  const uint64_t measure_txns = 80000ull * scale;

  // Pre-size the cache to ~10% of the database footprint: populate a
  // throwaway instance to learn the page count.
  uint64_t db_pages;
  {
    tpcc::TpccDb probe(tc);
    probe.Populate();
    db_pages = probe.PageCount();
  }
  tc.buffer_pool_pages = std::max<size_t>(64, db_pages / 10);

  std::printf("Figure 6: TPC-C trace replay (db ~%llu pages, cache %zu "
              "pages, %llu warm + %llu measured txns)\n",
              static_cast<unsigned long long>(db_pages),
              tc.buffer_pool_pages,
              static_cast<unsigned long long>(warm_txns),
              static_cast<unsigned long long>(measure_txns));

  const tpcc::TpccTraceResult gen =
      tpcc::GenerateTpccTrace(tc, warm_txns, measure_txns,
                              /*checkpoint_every=*/2000);
  std::printf("trace: %zu page writes (%zu measured), db grew %llu -> "
              "%llu pages\n\n",
              gen.trace.Size(), gen.trace.Size() - gen.measure_from,
              static_cast<unsigned long long>(gen.pages_after_load),
              static_cast<unsigned long long>(gen.pages_final));

  StoreConfig base;
  base.page_bytes = 4096;
  base.segment_bytes = 128 * 4096;
  base.clean_trigger_segments = 4;
  base.clean_batch_segments = 16;
  base.write_buffer_segments = 16;

  std::vector<std::string> headers = {"F"};
  std::vector<Variant> lines;
  for (Variant v : AllVariants()) {
    if (v == Variant::kMdcNoSepUser || v == Variant::kMdcNoSepUserGc) {
      continue;
    }
    lines.push_back(v);
    headers.push_back(VariantName(v));
  }
  TablePrinter table(headers);
  for (double f : {0.5, 0.6, 0.7, 0.8}) {
    // Device sized so the final database occupies F of the usable space.
    StoreConfig cfg = ScaleConfigForFill(
        base, gen.pages_final + bench::ReserveSegments(base) *
                                    base.PagesPerSegment() / 64,
        f);
    cfg.num_segments += bench::ReserveSegments(base);
    std::vector<TablePrinter::Cell> row;
    row.emplace_back(f, 2);
    for (Variant v : lines) {
      const RunResult r = RunTrace(cfg, v, gen.trace, gen.measure_from);
      if (!r.status.ok()) {
        std::fprintf(stderr, "%s F=%.2f failed: %s\n", VariantName(v).c_str(),
                     f, r.status.ToString().c_str());
        row.emplace_back("err");
      } else {
        row.emplace_back(r.wamp, 3);
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print(stdout);
}

}  // namespace
}  // namespace lss

int main() {
  lss::Run();
  return 0;
}
