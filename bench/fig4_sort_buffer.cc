// Reproduces Figure 4: impact of the user-write sort-buffer size on
// MDC's write amplification (80-20 Zipfian, theta = 0.99, F = 0.8).
// Expected shape: Wamp drops steeply as the buffer grows from 0 to ~16
// segments, then flattens ("using a write buffer with 16 segments
// already achieves near-optimal write amplification").
//
// Scale note: the paper sweeps up to 1024 buffer segments on a
// 51200-segment device (2% of the device). Our default device is 1024
// segments, so the sweep stops at 64 segments (~6%) — already past the
// knee; LSS_BENCH_SCALE enlarges the device and the sweep.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/table_printer.h"
#include "workload/runner.h"
#include "workload/zipfian_workload.h"

namespace lss {
namespace {

void Run() {
  const double f = 0.8;
  StoreConfig cfg = bench::DefaultConfig();
  const uint32_t buffers[] = {0, 1, 4, 16, 64, 256, 1024};

  TablePrinter table({"buffer(segments)", "Wamp", "E(clean)"});
  const uint64_t user_pages = bench::UserPagesFor(cfg, f);
  ZipfianWorkload workload(user_pages, 0.99);
  for (uint32_t b : buffers) {
    if (b >= cfg.num_segments / 8) {
      std::printf("(skipping buffer=%u: exceeds 1/8 of the %u-segment "
                  "device; raise LSS_BENCH_SCALE)\n",
                  b, cfg.num_segments);
      continue;
    }
    cfg.write_buffer_segments = b;
    const RunResult r =
        RunSynthetic(cfg, Variant::kMdc, workload, bench::DefaultSpec(f));
    if (!r.status.ok()) {
      std::fprintf(stderr, "buffer=%u failed: %s\n", b,
                   r.status.ToString().c_str());
      continue;
    }
    table.AddRow({TablePrinter::Cell(static_cast<uint64_t>(b)),
                  TablePrinter::Cell(r.wamp, 3),
                  TablePrinter::Cell(r.mean_clean_emptiness, 3)});
    bench::Emit(bench::JsonRow("fig4_sort_buffer")
                    .Str("workload", "zipf-0.99")
                    .Str("variant", r.variant)
                    .Num("fill", f)
                    .Num("buffer_segments", static_cast<uint64_t>(b))
                    .Num("wamp", r.wamp)
                    .Num("mean_clean_emptiness", r.mean_clean_emptiness));
  }
  std::printf("Figure 4: MDC write amplification vs sort-buffer size "
              "(80-20 Zipfian 0.99, F = 0.8)\n\n");
  table.Print(stdout);
}

}  // namespace
}  // namespace lss

int main() {
  lss::Run();
  return 0;
}
