// Buffer-pool replacement-policy panel: exact LRU vs CLOCK vs 2Q
// (btree/eviction_policy.h) under three magnifying glasses.
//
//   hit-path   Pure cache hits on a resident working set. The pool's
//              latch_acquisitions counter is read around the Pin burst
//              and the Unpin burst separately, so the panel *proves* the
//              latch economics from counters alone: exact LRU and 2Q pay
//              one partition-latch acquisition per hit (and one per
//              unpin); CLOCK pays zero on both.
//   tpcc       The fig6 trace-generation pipeline at small scale, one
//              run per policy: how well each policy's cache absorbs the
//              TPC-C page-reference stream (hit rate, evictions,
//              latches/op).
//   scan-flood The adversarial pattern for recency caching: a hot set is
//              made resident, then full sequential sweeps of a page
//              space several times the pool size are interleaved with
//              hot-set point reads. Exact LRU lets every sweep purge the
//              hot set; 2Q's probationary A1 queue shields its protected
//              Am set, retaining the pre-scan hit rate. Also drives the
//              ScanFloodWorkload generator (Zipf point ops + sweeps)
//              through each policy for an overall hit-rate comparison.
//
// Environment:
//   LSS_BENCH_SMOKE=1    tiny op counts, for CI
//   LSS_BENCH_JSON=path  machine-readable results (bench_common.h)

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "btree/buffer_pool.h"
#include "btree/eviction_policy.h"
#include "btree/pager.h"
#include "tpcc/trace_gen.h"
#include "workload/generator.h"

namespace lss {
namespace {

const EvictionPolicyKind kPolicies[] = {
    EvictionPolicyKind::kExactLru,
    EvictionPolicyKind::kClock,
    EvictionPolicyKind::kTwoQ,
};

bool SmokeMode() {
  const char* env = std::getenv("LSS_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

struct Counters {
  uint64_t hits, misses, evictions, latches;
  static Counters Of(const BufferPool& pool) {
    return Counters{pool.hits(), pool.misses(), pool.evictions(),
                    pool.latch_acquisitions()};
  }
  Counters Delta(const Counters& since) const {
    return Counters{hits - since.hits, misses - since.misses,
                    evictions - since.evictions, latches - since.latches};
  }
};

double Ratio(uint64_t num, uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

// --- Panel 1: latch acquisitions on the pure-hit path -------------------

void HitPathPanel(bool smoke) {
  const size_t capacity = 256;
  const uint64_t resident = 128;
  const uint64_t rounds = smoke ? 20 : 2000;

  std::printf("hit path: %" PRIu64 " resident pages, %" PRIu64
              " pin+unpin rounds, capacity %zu\n",
              resident, rounds, capacity);
  std::printf("  %-6s %12s %14s %16s\n", "policy", "hits",
              "latches/pin", "latches/unpin");
  for (EvictionPolicyKind kind : kPolicies) {
    Pager pager;
    BufferPool pool(&pager, capacity, nullptr, /*partitions=*/0, kind);
    std::vector<PageNo> pages;
    for (uint64_t i = 0; i < resident; ++i) {
      uint8_t* data = nullptr;
      pages.push_back(pool.AllocatePinned(&data));
      pool.Unpin(pages.back(), false);
    }
    uint64_t pin_latches = 0, unpin_latches = 0;
    const Counters before = Counters::Of(pool);
    for (uint64_t r = 0; r < rounds; ++r) {
      const uint64_t l0 = pool.latch_acquisitions();
      for (PageNo p : pages) pool.Pin(p);
      const uint64_t l1 = pool.latch_acquisitions();
      for (PageNo p : pages) pool.Unpin(p, false);
      const uint64_t l2 = pool.latch_acquisitions();
      pin_latches += l1 - l0;
      unpin_latches += l2 - l1;
    }
    const Counters d = Counters::Of(pool).Delta(before);
    const double per_pin = Ratio(pin_latches, d.hits);
    const double per_unpin = Ratio(unpin_latches, d.hits);
    std::printf("  %-6s %12" PRIu64 " %14.3f %16.3f\n",
                EvictionPolicyName(kind).c_str(), d.hits, per_pin, per_unpin);
    bench::Emit(bench::JsonRow("buffer_pool")
                    .Str("row", "hit_path")
                    .Str("policy", EvictionPolicyName(kind))
                    .Num("hits", d.hits)
                    .Num("misses", d.misses)
                    .Num("latches_per_pin_hit", per_pin)
                    .Num("latches_per_unpin", per_unpin));
  }
  std::printf("\n");
}

// --- Panel 2: TPC-C trace generation per policy -------------------------

void TpccPanel(bool smoke) {
  tpcc::TpccConfig tc;
  tc.warehouses = 2;
  tc.districts_per_warehouse = 4;
  tc.customers_per_district = smoke ? 80 : 200;
  tc.items = smoke ? 400 : 1000;
  tc.orders_per_district = smoke ? 80 : 200;
  tc.seed = 17;
  const uint64_t warm = smoke ? 300 : 2000;
  const uint64_t measure = smoke ? 600 : 6000;

  // Size the cache to ~10% of the database, as fig6 does.
  uint64_t db_pages;
  {
    tpcc::TpccDb probe(tc);
    probe.Populate();
    db_pages = probe.PageCount();
  }
  tc.buffer_pool_pages = std::max<size_t>(64, db_pages / 10);

  std::printf("tpcc: %u warehouses, db ~%" PRIu64 " pages, cache %zu pages, "
              "%" PRIu64 " txns\n",
              tc.warehouses, db_pages, tc.buffer_pool_pages, warm + measure);
  std::printf("  %-6s %10s %10s %10s %12s %12s\n", "policy", "hit-rate",
              "evictions", "writes", "latches", "trace-recs");
  for (EvictionPolicyKind kind : kPolicies) {
    tc.pool_policy = kind;
    const tpcc::TpccTraceResult gen =
        tpcc::GenerateTpccTrace(tc, warm, measure, /*checkpoint_every=*/500);
    const double hit_rate = Ratio(gen.pool_hits,
                                  gen.pool_hits + gen.pool_misses);
    std::printf("  %-6s %9.2f%% %10" PRIu64 " %10" PRIu64 " %12" PRIu64
                " %12zu\n",
                EvictionPolicyName(kind).c_str(), hit_rate * 100.0,
                gen.pool_evictions, gen.pool_write_backs,
                gen.pool_latch_acquisitions, gen.trace.Size());
    bench::Emit(bench::JsonRow("buffer_pool")
                    .Str("row", "tpcc")
                    .Str("policy", EvictionPolicyName(kind))
                    .Num("hit_rate", hit_rate)
                    .Num("pool_hits", gen.pool_hits)
                    .Num("pool_misses", gen.pool_misses)
                    .Num("pool_evictions", gen.pool_evictions)
                    .Num("pool_write_backs", gen.pool_write_backs)
                    .Num("pool_latch_acquisitions",
                         gen.pool_latch_acquisitions)
                    .Num("trace_records",
                         static_cast<uint64_t>(gen.trace.Size())));
  }
  std::printf("\n");
}

// --- Panel 3: scan flood ------------------------------------------------

// One Pin/Unpin read of `page`.
void Touch(BufferPool& pool, PageNo page) {
  pool.Pin(page);
  pool.Unpin(page, false);
}

void ScanFloodPanel(bool smoke) {
  const size_t capacity = 512;
  const uint64_t pages = 8 * capacity;   // sweeps are 8x the pool
  const uint64_t hot = 128;              // hot set fits comfortably
  const uint64_t warm_rounds = 4;        // >= 2 touches promote (2Q)
  const uint64_t sweeps = smoke ? 3 : 16;

  std::printf("scan flood: %" PRIu64 " pages, capacity %zu, hot set %" PRIu64
              ", %" PRIu64 " sweeps\n",
              pages, capacity, hot, sweeps);
  std::printf("  %-6s %14s %14s %11s\n", "policy", "pre-scan-hit",
              "flood-hit", "retention");
  for (EvictionPolicyKind kind : kPolicies) {
    Pager pager;
    for (uint64_t i = 0; i < pages; ++i) pager.Allocate();
    BufferPool pool(&pager, capacity, nullptr, /*partitions=*/0, kind);

    // Make the hot set resident and (for 2Q) promoted: several rounds of
    // hot-set reads. Pre-scan hit rate comes from the final round.
    for (uint64_t r = 0; r + 1 < warm_rounds; ++r) {
      for (uint64_t p = 0; p < hot; ++p) Touch(pool, static_cast<PageNo>(p));
    }
    Counters c0 = Counters::Of(pool);
    for (uint64_t p = 0; p < hot; ++p) Touch(pool, static_cast<PageNo>(p));
    const Counters pre = Counters::Of(pool).Delta(c0);
    const double pre_rate = Ratio(pre.hits, pre.hits + pre.misses);

    // The flood: full sequential sweeps, a burst of hot-set reads after
    // each; only the bursts are measured.
    uint64_t flood_hits = 0, flood_ops = 0;
    for (uint64_t s = 0; s < sweeps; ++s) {
      for (uint64_t p = 0; p < pages; ++p) {
        Touch(pool, static_cast<PageNo>(p));
      }
      c0 = Counters::Of(pool);
      for (uint64_t p = 0; p < hot; ++p) Touch(pool, static_cast<PageNo>(p));
      const Counters d = Counters::Of(pool).Delta(c0);
      flood_hits += d.hits;
      flood_ops += d.hits + d.misses;
    }
    const double flood_rate = Ratio(flood_hits, flood_ops);
    const double retention = pre_rate > 0 ? flood_rate / pre_rate : 0.0;
    std::printf("  %-6s %13.2f%% %13.2f%% %10.2f%%\n",
                EvictionPolicyName(kind).c_str(), pre_rate * 100.0,
                flood_rate * 100.0, retention * 100.0);
    bench::Emit(bench::JsonRow("buffer_pool")
                    .Str("row", "scan_flood")
                    .Str("policy", EvictionPolicyName(kind))
                    .Num("pre_scan_hit_rate", pre_rate)
                    .Num("flood_hit_rate", flood_rate)
                    .Num("hot_set_retention", retention));
  }

  // Whole-workload comparison through the generator benches also use.
  const uint64_t ops = smoke ? 20000 : 200000;
  ScanFloodWorkload workload(pages, 0.99, /*point_ops_per_sweep=*/3 * pages);
  std::printf("  scan-flood generator (theta 0.99, %" PRIu64 " ops):\n", ops);
  for (EvictionPolicyKind kind : kPolicies) {
    Pager pager;
    for (uint64_t i = 0; i < pages; ++i) pager.Allocate();
    BufferPool pool(&pager, capacity, nullptr, /*partitions=*/0, kind);
    Rng rng(42);
    for (uint64_t i = 0; i < ops; ++i) {
      Touch(pool, static_cast<PageNo>(workload.NextPage(rng)));
    }
    const Counters d = Counters::Of(pool);
    const double rate = Ratio(d.hits, d.hits + d.misses);
    std::printf("    %-6s hit-rate %6.2f%%  evictions %" PRIu64
                "  latches/op %.3f\n",
                EvictionPolicyName(kind).c_str(), rate * 100.0, d.evictions,
                Ratio(d.latches, d.hits + d.misses));
    bench::Emit(bench::JsonRow("buffer_pool")
                    .Str("row", "scan_flood_generator")
                    .Str("policy", EvictionPolicyName(kind))
                    .Num("hit_rate", rate)
                    .Num("evictions", d.evictions)
                    .Num("latches_per_op", Ratio(d.latches, d.hits + d.misses)));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace lss

int main() {
  const bool smoke = lss::SmokeMode();
  std::printf("Buffer-pool eviction policies: exact LRU vs CLOCK vs 2Q%s\n\n",
              smoke ? " (smoke)" : "");
  lss::HitPathPanel(smoke);
  lss::TpccPanel(smoke);
  lss::ScanFloodPanel(smoke);
  return 0;
}
