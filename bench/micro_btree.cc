// Micro-benchmarks for the B+-tree storage engine substrate: point ops
// and scans through a small buffer pool, and TPC-C transaction
// throughput. Explains the cost of regenerating the Figure 6 trace.

#include <benchmark/benchmark.h>

#include "btree/btree.h"
#include "tpcc/tpcc_db.h"
#include "util/rng.h"

namespace lss {
namespace {

std::string Key(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%010llu",
                static_cast<unsigned long long>(i));
  return buf;
}

void BM_BtreeInsert(benchmark::State& state) {
  Pager pager;
  BufferPool pool(&pager, 4096);
  BTree tree(&pool);
  uint64_t i = 0;
  const std::string value(120, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Insert(Key(i++), value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreeInsert);

void BM_BtreeGet(benchmark::State& state) {
  Pager pager;
  BufferPool pool(&pager, 4096);
  BTree tree(&pool);
  const std::string value(120, 'v');
  constexpr uint64_t kN = 100000;
  for (uint64_t i = 0; i < kN; ++i) tree.Insert(Key(i), value).ok();
  Rng rng(1);
  std::string out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(Key(rng.NextBounded(kN)), &out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreeGet);

void BM_BtreeScan100(benchmark::State& state) {
  Pager pager;
  BufferPool pool(&pager, 4096);
  BTree tree(&pool);
  constexpr uint64_t kN = 100000;
  for (uint64_t i = 0; i < kN; ++i) tree.Insert(Key(i), "v").ok();
  Rng rng(2);
  for (auto _ : state) {
    auto it = tree.Seek(Key(rng.NextBounded(kN - 200)));
    int n = 0;
    while (it.Valid() && n < 100) {
      benchmark::DoNotOptimize(it.key().data());
      it.Next();
      ++n;
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_BtreeScan100);

void BM_TpccTransaction(benchmark::State& state) {
  tpcc::TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 10;
  cfg.customers_per_district = 300;
  cfg.items = 2000;
  cfg.orders_per_district = 300;
  cfg.buffer_pool_pages = 1024;
  tpcc::TpccDb db(cfg);
  db.Populate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.RunNextTransaction());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TpccTransaction);

}  // namespace
}  // namespace lss

BENCHMARK_MAIN();
