// Micro-benchmarks for the B+-tree storage engine substrate: point ops
// and scans through a small buffer pool (single- and multi-threaded over
// one shared latch-coupled tree), and TPC-C transaction throughput
// including a workers-per-warehouse sweep. Explains the cost of
// regenerating the Figure 6 trace.

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "btree/btree.h"
#include "tpcc/tpcc_db.h"
#include "util/rng.h"

namespace lss {
namespace {

std::string Key(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "k%010llu",
                static_cast<unsigned long long>(i));
  return buf;
}

void BM_BtreeInsert(benchmark::State& state) {
  Pager pager;
  BufferPool pool(&pager, 4096);
  BTree tree(&pool);
  uint64_t i = 0;
  const std::string value(120, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Insert(Key(i++), value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreeInsert);

void BM_BtreeGet(benchmark::State& state) {
  Pager pager;
  BufferPool pool(&pager, 4096);
  BTree tree(&pool);
  const std::string value(120, 'v');
  constexpr uint64_t kN = 100000;
  for (uint64_t i = 0; i < kN; ++i) tree.Insert(Key(i), value).ok();
  Rng rng(1);
  std::string out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(Key(rng.NextBounded(kN)), &out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreeGet);

void BM_BtreeScan100(benchmark::State& state) {
  Pager pager;
  BufferPool pool(&pager, 4096);
  BTree tree(&pool);
  constexpr uint64_t kN = 100000;
  for (uint64_t i = 0; i < kN; ++i) tree.Insert(Key(i), "v").ok();
  Rng rng(2);
  for (auto _ : state) {
    auto it = tree.Seek(Key(rng.NextBounded(kN - 200)));
    int n = 0;
    while (it.Valid() && n < 100) {
      benchmark::DoNotOptimize(it.key().data());
      it.Next();
      ++n;
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_BtreeScan100);

// --- Concurrent tree benchmarks -----------------------------------------
//
// One shared tree, N benchmark threads. Thread 0 builds the tree before
// the timed region (google-benchmark barriers all threads at the loop
// start/stop), every thread then drives its own op stream.

void BM_BtreeGetParallel(benchmark::State& state) {
  static Pager* pager;
  static BufferPool* pool;
  static BTree* tree;
  constexpr uint64_t kN = 100000;
  if (state.thread_index() == 0) {
    pager = new Pager();
    pool = new BufferPool(pager, 4096);
    tree = new BTree(pool);
    const std::string value(120, 'v');
    for (uint64_t i = 0; i < kN; ++i) tree->Insert(Key(i), value).ok();
  }
  Rng rng(100 + state.thread_index());
  std::string out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Get(Key(rng.NextBounded(kN)), &out));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete tree;
    delete pool;
    delete pager;
  }
}
BENCHMARK(BM_BtreeGetParallel)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_BtreeMixedParallel(benchmark::State& state) {
  // 20% Put / 10% Delete / 70% Get per thread, disjoint key ranges in
  // one shared tree: the optimistic write descent under read pressure.
  static Pager* pager;
  static BufferPool* pool;
  static BTree* tree;
  constexpr uint64_t kRange = 20000;
  constexpr int kMaxThreads = 8;
  if (state.thread_index() == 0) {
    pager = new Pager();
    pool = new BufferPool(pager, 4096);
    tree = new BTree(pool);
    const std::string value(100, 'v');
    for (int t = 0; t < kMaxThreads; ++t) {
      for (uint64_t i = 0; i < kRange; i += 2) {
        tree->Insert(Key(t * 1000000 + i), value).ok();
      }
    }
  }
  const uint64_t base = state.thread_index() * 1000000ull;
  Rng rng(200 + state.thread_index());
  const std::string value(100, 'w');
  std::string out;
  for (auto _ : state) {
    const uint64_t k = base + rng.NextBounded(kRange);
    const uint32_t dice = static_cast<uint32_t>(rng.NextBounded(10));
    if (dice < 2) {
      benchmark::DoNotOptimize(tree->Put(Key(k), value));
    } else if (dice < 3) {
      benchmark::DoNotOptimize(tree->Delete(Key(k)));
    } else {
      benchmark::DoNotOptimize(tree->Get(Key(k), &out));
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete tree;
    delete pool;
    delete pager;
  }
}
BENCHMARK(BM_BtreeMixedParallel)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_TpccTransaction(benchmark::State& state) {
  tpcc::TpccConfig cfg;
  cfg.warehouses = 1;
  cfg.districts_per_warehouse = 10;
  cfg.customers_per_district = 300;
  cfg.items = 2000;
  cfg.orders_per_district = 300;
  cfg.buffer_pool_pages = 1024;
  tpcc::TpccDb db(cfg);
  db.Populate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.RunNextTransaction());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TpccTransaction);

void BM_TpccWorkersPerWarehouse(benchmark::State& state) {
  // Fixed 2 warehouses, N worker sessions: at 4 and 8 threads several
  // sessions share a partition group, measuring how throughput scales
  // when workers outnumber warehouses (the latch-coupled engine's
  // headline capability; the old engine clamped workers to warehouses).
  static tpcc::TpccDb* db;
  static std::vector<tpcc::TpccDb::Session>* sessions;
  if (state.thread_index() == 0) {
    tpcc::TpccConfig cfg;
    cfg.warehouses = 2;
    cfg.districts_per_warehouse = 4;
    cfg.customers_per_district = 200;
    cfg.items = 1000;
    cfg.orders_per_district = 200;
    cfg.buffer_pool_pages = 1024;
    cfg.workers = static_cast<uint32_t>(state.threads());
    db = new tpcc::TpccDb(cfg);
    db->Populate();
    sessions = new std::vector<tpcc::TpccDb::Session>();
    for (uint32_t t = 0; t < db->workers(); ++t) {
      sessions->push_back(db->MakeSession(t));
    }
  }
  tpcc::TpccDb::Session& session = (*sessions)[state.thread_index()];
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->RunNextTransaction(session));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete sessions;
    delete db;
  }
}
BENCHMARK(BM_TpccWorkersPerWarehouse)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace lss

BENCHMARK_MAIN();
