#ifndef LSS_BENCH_BENCH_COMMON_H_
#define LSS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <cstdio>

#include "core/config.h"
#include "workload/runner.h"

namespace lss::bench {

/// Shared device geometry for the paper-reproduction benches. The paper
/// simulates a 100 GB device (51 200 x 2 MB segments) and writes 10 TB;
/// it notes device size does not affect write amplification (§6.1.1
/// fn. 2), so we default to a ~0.5 GiB device with proportionally scaled
/// cleaning trigger/batch, which reproduces steady-state Wamp in seconds
/// per configuration. Set LSS_BENCH_SCALE=N (default 1) to multiply the
/// device size and run length for higher-fidelity runs.
inline uint32_t ScaleFactor() {
  const char* s = std::getenv("LSS_BENCH_SCALE");
  if (s == nullptr) return 1;
  const long v = std::strtol(s, nullptr, 10);
  return v < 1 ? 1 : static_cast<uint32_t>(v);
}

inline StoreConfig DefaultConfig() {
  StoreConfig cfg;
  cfg.page_bytes = 4096;
  cfg.segment_bytes = 128 * 4096;  // 512 KB segments, 128 pages
  cfg.num_segments = 1024 * ScaleFactor();
  cfg.clean_trigger_segments = 4;
  cfg.clean_batch_segments = 16;
  cfg.write_buffer_segments = 16;
  return cfg;
}

/// Segments hovering in the free pool / open in steady state — slack the
/// cleaner cannot exploit as dead space. Used only to pad device sizing
/// (fig6); the synthetic benches instead keep this fraction negligible
/// by choosing enough segments, matching the paper's regime where
/// 32 trigger + 64 batch sit inside 51 200 segments.
inline uint32_t ReserveSegments(const StoreConfig& cfg) {
  return cfg.clean_trigger_segments + cfg.clean_batch_segments / 2 + 4;
}

/// User page count so that live data occupies fraction `f` of the
/// device, exactly as the paper defines fill factor (§2.1).
inline uint64_t UserPagesFor(const StoreConfig& cfg, double f) {
  return cfg.UserPagesForFillFactor(f);
}

inline RunSpec DefaultSpec(double f, uint64_t seed = 42) {
  RunSpec spec;
  spec.fill_factor = f;
  spec.warmup_multiplier = 8;
  spec.measure_multiplier = 12;
  spec.seed = seed;
  return spec;
}

}  // namespace lss::bench

#endif  // LSS_BENCH_BENCH_COMMON_H_
