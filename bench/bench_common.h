#ifndef LSS_BENCH_BENCH_COMMON_H_
#define LSS_BENCH_BENCH_COMMON_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "btree/eviction_policy.h"
#include "core/config.h"
#include "core/policy_factory.h"
#include "workload/runner.h"

namespace lss::bench {

/// Strict base-10 integer parsing for the LSS_BENCH_* knobs: `s` must be
/// entirely an integer in [min, max], or the bench exits(2) naming the
/// offending variable. A typo'd knob must never silently clamp to a
/// default mid-experiment — the run would report results for a
/// configuration the user did not ask for.
inline int64_t ParseEnvInt(const char* name, const char* s, int64_t min,
                           int64_t max) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE || v < min || v > max) {
    std::fprintf(stderr,
                 "%s: invalid value '%s' (want an integer in [%lld, %lld])\n",
                 name, s, static_cast<long long>(min),
                 static_cast<long long>(max));
    std::exit(2);
  }
  return static_cast<int64_t>(v);
}

/// getenv + ParseEnvInt; `def` when the variable is unset or empty.
inline int64_t EnvInt(const char* name, int64_t def, int64_t min,
                      int64_t max) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return def;
  return ParseEnvInt(name, s, min, max);
}

/// Shared device geometry for the paper-reproduction benches. The paper
/// simulates a 100 GB device (51 200 x 2 MB segments) and writes 10 TB;
/// it notes device size does not affect write amplification (§6.1.1
/// fn. 2), so we default to a ~0.5 GiB device with proportionally scaled
/// cleaning trigger/batch, which reproduces steady-state Wamp in seconds
/// per configuration. Set LSS_BENCH_SCALE=N (default 1) to multiply the
/// device size and run length for higher-fidelity runs.
inline uint32_t ScaleFactor() {
  return static_cast<uint32_t>(
      EnvInt("LSS_BENCH_SCALE", 1, 1, 1 << 20));
}

/// LSS_BENCH_URING_DEPTH=N overrides StoreConfig::uring_queue_depth for
/// uring-backed runs (how many payload writes the ring keeps in flight;
/// ignored by the other backends).
inline uint32_t UringDepth(uint32_t def) {
  return static_cast<uint32_t>(EnvInt("LSS_BENCH_URING_DEPTH", def, 1, 1024));
}

inline StoreConfig DefaultConfig() {
  StoreConfig cfg;
  cfg.page_bytes = 4096;
  cfg.segment_bytes = 128 * 4096;  // 512 KB segments, 128 pages
  cfg.num_segments = 1024 * ScaleFactor();
  cfg.clean_trigger_segments = 4;
  cfg.clean_batch_segments = 16;
  cfg.write_buffer_segments = 16;
  // LSS_BENCH_BACKEND=<spec> runs any bench over a real segment backend
  // ("file:DIR", "file-nosync:DIR", "file-direct:DIR", "uring:DIR",
  // "uring-nosync:DIR"; see ApplyBackendSpec). The default stays
  // bookkeeping-only.
  if (const char* spec = std::getenv("LSS_BENCH_BACKEND")) {
    Status s = ApplyBackendSpec(spec, &cfg);
    if (!s.ok()) {
      std::fprintf(stderr, "LSS_BENCH_BACKEND: %s\n", s.ToString().c_str());
      std::exit(2);
    }
  }
  cfg.uring_queue_depth = UringDepth(cfg.uring_queue_depth);
  return cfg;
}

/// LSS_BENCH_POOL=<lru|clock|2q> selects the buffer-pool replacement
/// policy of benches that run the B+-tree engine (fig6 trace generation,
/// bench/buffer_pool's TPC-C panel). Defaults to exact LRU, the engine's
/// default. Eviction order shapes the collected write trace, so fig6
/// keys its trace cache on this.
inline EvictionPolicyKind PoolPolicy() {
  const char* s = std::getenv("LSS_BENCH_POOL");
  if (s == nullptr || *s == '\0') return EvictionPolicyKind::kExactLru;
  EvictionPolicyKind kind;
  if (!ParseEvictionPolicy(s, &kind)) {
    std::fprintf(stderr,
                 "LSS_BENCH_POOL: unknown policy '%s' (lru|clock|2q)\n", s);
    std::exit(2);
  }
  return kind;
}

/// LSS_BENCH_CKPT_INTERVAL=N overrides the checkpoint interval of the
/// benches that exercise checkpointing. bench/io_backend's seal-pipeline
/// panel feeds it to StoreConfig::checkpoint_interval_ops (backend ops;
/// 0 disables); io_backend's checkpoint sweep uses it as the shortest
/// barrier period (user updates between Checkpoint() calls); fig6_tpcc
/// uses it as the engine-checkpoint period during trace generation
/// (transactions between dirty-page flushes) and mixes it into the
/// trace-cache key so cached traces from different checkpoint settings
/// never alias. Unset keeps each bench's default.
inline uint32_t CheckpointInterval(uint32_t def) {
  return static_cast<uint32_t>(EnvInt("LSS_BENCH_CKPT_INTERVAL", def, 0,
                                      std::numeric_limits<uint32_t>::max()));
}

/// Segments hovering in the free pool / open in steady state — slack the
/// cleaner cannot exploit as dead space. Used only to pad device sizing
/// (fig6); the synthetic benches instead keep this fraction negligible
/// by choosing enough segments, matching the paper's regime where
/// 32 trigger + 64 batch sit inside 51 200 segments.
inline uint32_t ReserveSegments(const StoreConfig& cfg) {
  return cfg.clean_trigger_segments + cfg.clean_batch_segments / 2 + 4;
}

/// User page count so that live data occupies fraction `f` of the
/// device, exactly as the paper defines fill factor (§2.1).
inline uint64_t UserPagesFor(const StoreConfig& cfg, double f) {
  return cfg.UserPagesForFillFactor(f);
}

inline RunSpec DefaultSpec(double f, uint64_t seed = 42) {
  RunSpec spec;
  spec.fill_factor = f;
  spec.warmup_multiplier = 8;
  spec.measure_multiplier = 12;
  spec.seed = seed;
  return spec;
}

// --- Machine-readable results (LSS_BENCH_JSON) ------------------------
//
// Set LSS_BENCH_JSON=<path> and a bench writes its results to that file
// as a JSON array of flat objects, one per measured cell, so the perf
// trajectory can be tracked across PRs without scraping tables:
//
//   LSS_BENCH_JSON=fig5.json ./build/bench/fig5_synthetic
//
// A JsonRow is a flat string/number map; Emit() buffers it. The file is
// written when the process exits (or when WriteJson runs explicitly).

class JsonRow {
 public:
  explicit JsonRow(const std::string& bench) { Str("bench", bench); }

  JsonRow& Str(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, Quote(value));
    return *this;
  }
  JsonRow& Num(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonRow& Num(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }

  std::string ToJson() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += Quote(fields_[i].first) + ":" + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"";
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

namespace internal {
inline std::vector<std::string>& JsonRows() {
  static std::vector<std::string> rows;
  return rows;
}
}  // namespace internal

/// Writes all buffered rows to LSS_BENCH_JSON (no-op when unset).
inline void WriteJson() {
  const char* path = std::getenv("LSS_BENCH_JSON");
  if (path == nullptr || internal::JsonRows().empty()) return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "LSS_BENCH_JSON: cannot open %s\n", path);
    return;
  }
  std::fputs("[\n", f);
  const auto& rows = internal::JsonRows();
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "  %s%s\n", rows[i].c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fputs("]\n", f);
  std::fclose(f);
}

/// Buffers one result row and arranges for WriteJson at process exit.
inline void Emit(const JsonRow& row) {
  if (std::getenv("LSS_BENCH_JSON") == nullptr) return;
  if (internal::JsonRows().empty()) std::atexit(WriteJson);
  internal::JsonRows().push_back(row.ToJson());
}

/// Convenience: the standard columns of a synthetic run.
inline void EmitRunResult(const std::string& bench,
                          const std::string& workload, double fill,
                          const RunResult& r) {
  JsonRow row(bench);
  row.Str("workload", workload)
      .Str("variant", r.variant)
      .Num("fill", fill)
      .Num("wamp", r.wamp)
      .Num("mean_clean_emptiness", r.mean_clean_emptiness)
      .Num("measured_updates", r.measured_updates)
      .Num("effective_fill", r.effective_fill);
  if (r.device_bytes_written > 0) {
    row.Num("device_bytes_written", r.device_bytes_written)
        .Num("device_bytes_per_user_byte", r.device_bytes_per_user_byte)
        .Num("device_seconds", r.device_seconds)
        .Num("device_fsyncs", r.device_fsyncs);
  }
  Emit(row);
}

}  // namespace lss::bench

#endif  // LSS_BENCH_BENCH_COMMON_H_
