// Ablation: the two readings of the cost-benefit victim priority.
//
// The paper's §6.1.3 defines cost-benefit as (1-E)*age/E, which with E =
// emptiness prefers full old segments; the canonical LFS formula
// (Rosenblum & Ousterhout 1991) is benefit/cost = (E*age)/(2-E). Under
// uniform updates the literal formula is dramatically worse — which is
// exactly how cost-benefit behaves in the paper's Figure 5a — while the
// canonical formula is near age/greedy. Under skew both are mid-field.
// This bench quantifies the difference and justifies the design note in
// docs/POLICIES.md.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "core/policies/cost_benefit_policy.h"
#include "core/store.h"
#include "util/table_printer.h"
#include "workload/runner.h"
#include "workload/zipfian_workload.h"

namespace lss {
namespace {

double RunWith(CostBenefitPolicy::Formula formula,
               const WorkloadGenerator& workload, const StoreConfig& base,
               double f) {
  StoreConfig cfg = base;
  ApplyVariantConfig(Variant::kCostBenefit, &cfg);
  Status st;
  auto store = LogStructuredStore::Create(
      cfg, std::make_unique<CostBenefitPolicy>(formula), &st);
  if (store == nullptr) return -1;
  Rng rng(42);
  const uint64_t user_pages = bench::UserPagesFor(cfg, f);
  for (PageId p = 0; p < user_pages; ++p) {
    if (!store->Write(p).ok()) return -1;
  }
  const uint64_t warm = 8 * user_pages;
  for (uint64_t i = 0; i < warm; ++i) {
    if (!store->Write(workload.NextPage(rng)).ok()) return -1;
  }
  store->mutable_stats().ResetMeasurement();
  for (uint64_t i = 0; i < 12 * user_pages; ++i) {
    if (!store->Write(workload.NextPage(rng)).ok()) return -1;
  }
  return store->stats().WriteAmplification();
}

void Run() {
  StoreConfig cfg = bench::DefaultConfig();
  cfg.num_segments = 512 * bench::ScaleFactor();
  TablePrinter table({"workload", "F", "canonical(E*age/(2-E))",
                      "paper-literal((1-E)*age/E)"});
  for (double f : {0.7, 0.8, 0.9}) {
    const uint64_t user_pages = bench::UserPagesFor(cfg, f);
    UniformWorkload uni(user_pages);
    ZipfianWorkload zipf(user_pages, 0.99);
    struct Cell {
      const char* workload;
      const WorkloadGenerator* gen;
    };
    for (const Cell& cell :
         {Cell{"uniform", &uni}, Cell{"zipf-0.99", &zipf}}) {
      const double canonical =
          RunWith(CostBenefitPolicy::Formula::kLfs, *cell.gen, cfg, f);
      const double literal = RunWith(CostBenefitPolicy::Formula::kPaperLiteral,
                                     *cell.gen, cfg, f);
      table.AddRow({TablePrinter::Cell(cell.workload),
                    TablePrinter::Cell(f, 2), TablePrinter::Cell(canonical, 3),
                    TablePrinter::Cell(literal, 3)});
      bench::Emit(bench::JsonRow("ablation_costbenefit")
                      .Str("workload", cell.workload)
                      .Num("fill", f)
                      .Num("wamp_canonical", canonical)
                      .Num("wamp_paper_literal", literal));
    }
  }
  std::printf("Ablation: cost-benefit victim priority formulas (Wamp; -1 "
              "means out of space)\n\n");
  table.Print(stdout);
}

}  // namespace
}  // namespace lss

int main() {
  lss::Run();
  return 0;
}
