// Thread-scaling sweep for the sharded store: the same uniform workload
// the paper's Table 1 uses, run through ShardedStore at 1/2/4/8 worker
// threads over a fixed shard count, reporting aggregate write throughput
// and the per-shard write-amplification spread.
//
// What to expect: write amplification is a property of the write pattern
// (paper §6.1.1 — device size does not affect Wamp), so the aggregate and
// per-shard Wamp should sit within a few percent of the single-threaded
// LogStructuredStore baseline at every thread count — sharding must not
// change the *quality* of cleaning, only its parallelism. Throughput
// should scale with threads on multi-core hardware (shards > threads
// keeps routing collisions low); on a single core the sweep degenerates
// to a lock-overhead measurement.
//
// Environment:
//   LSS_BENCH_SCALE=N    multiply device size / run length (default 1)
//   LSS_BENCH_SHARDS=N   shard count (default 4)
//   LSS_BENCH_THREADS=a,b,c  thread counts to sweep (default 1,2,4,8)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/table_printer.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace lss {
namespace {

std::vector<uint32_t> ThreadSweep() {
  const char* env = std::getenv("LSS_BENCH_THREADS");
  if (env == nullptr || *env == '\0') return {1, 2, 4, 8};
  std::vector<uint32_t> out;
  const char* p = env;
  while (*p != '\0') {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    if (v >= 1) out.push_back(static_cast<uint32_t>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return out.empty() ? std::vector<uint32_t>{1, 2, 4, 8} : out;
}

uint32_t ShardCount() {
  const char* env = std::getenv("LSS_BENCH_SHARDS");
  if (env == nullptr) return 4;
  const long v = std::strtol(env, nullptr, 10);
  return v < 1 ? 4 : static_cast<uint32_t>(v);
}

void Run() {
  const StoreConfig cfg = bench::DefaultConfig();
  const uint32_t shards = ShardCount();
  const double fill = 0.75;
  const uint64_t user_pages = bench::UserPagesFor(cfg, fill);
  UniformWorkload workload(user_pages);
  RunSpec spec = bench::DefaultSpec(fill);
  spec.warmup_multiplier = 4;
  spec.measure_multiplier = 8;

  std::printf(
      "Thread scaling, uniform workload, MDC: %u shards, F=%.2f, "
      "%llu user pages (LSS_BENCH_SCALE=%u)\n\n",
      shards, fill, static_cast<unsigned long long>(user_pages),
      bench::ScaleFactor());

  // Single-threaded LogStructuredStore baseline: the Wamp reference the
  // per-shard spread is judged against.
  const RunResult baseline = RunSynthetic(cfg, Variant::kMdc, workload, spec);
  if (!baseline.status.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 baseline.status.ToString().c_str());
    return;
  }
  std::printf("single-threaded baseline: Wamp %.4f, E %.3f\n\n", baseline.wamp,
              baseline.mean_clean_emptiness);

  TablePrinter table({"threads", "sec", "Mupd/s", "speedup", "Wamp",
                      "shard Wamp min", "shard Wamp max", "spread vs base"});
  double base_rate = 0.0;
  for (uint32_t threads : ThreadSweep()) {
    const ParallelRunResult r = RunSyntheticParallel(
        cfg, Variant::kMdc, workload, spec, threads, shards);
    if (!r.result.status.ok()) {
      std::fprintf(stderr, "%u threads failed: %s\n", threads,
                   r.result.status.ToString().c_str());
      continue;
    }
    double wmin = r.shard_wamp.empty() ? 0.0 : r.shard_wamp[0];
    double wmax = wmin;
    for (double w : r.shard_wamp) {
      wmin = w < wmin ? w : wmin;
      wmax = w > wmax ? w : wmax;
    }
    // Worst per-shard deviation from the single-threaded baseline Wamp.
    double spread = 0.0;
    for (double w : r.shard_wamp) {
      const double dev =
          baseline.wamp > 0 ? std::abs(w - baseline.wamp) / baseline.wamp : 0.0;
      spread = dev > spread ? dev : spread;
    }
    if (base_rate == 0.0) base_rate = r.updates_per_second;
    std::vector<TablePrinter::Cell> row;
    row.emplace_back(static_cast<int>(threads));
    row.emplace_back(r.measure_seconds, 2);
    row.emplace_back(r.updates_per_second / 1e6, 3);
    row.emplace_back(base_rate > 0 ? r.updates_per_second / base_rate : 0.0, 2);
    row.emplace_back(r.result.wamp, 4);
    row.emplace_back(wmin, 4);
    row.emplace_back(wmax, 4);
    row.emplace_back(std::string(TablePrinter::Cell(100.0 * spread, 1).text) +
                     "%");
    table.AddRow(std::move(row));
    bench::Emit(bench::JsonRow("scale_threads")
                    .Num("threads", static_cast<uint64_t>(threads))
                    .Num("shards", static_cast<uint64_t>(shards))
                    .Num("measure_seconds", r.measure_seconds)
                    .Num("updates_per_second", r.updates_per_second)
                    .Num("wamp", r.result.wamp)
                    .Num("baseline_wamp", baseline.wamp)
                    .Num("shard_wamp_min", wmin)
                    .Num("shard_wamp_max", wmax)
                    .Num("spread_vs_baseline", spread));
  }
  table.Print(stdout);
  std::printf(
      "\nspeedup = throughput vs the first swept thread count;\n"
      "spread vs base = worst per-shard |Wamp - baseline| / baseline.\n");
}

}  // namespace
}  // namespace lss

int main() {
  lss::Run();
  return 0;
}
