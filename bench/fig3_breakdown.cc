// Reproduces Figure 3: breakdown analysis of the MDC optimisations on
// hot-cold distributions at F = 0.8. Lines: greedy, MDC-no-sep-user-GC,
// MDC-no-sep-user, MDC, MDC-opt, and the analytic optimum ("opt") from
// the §3 slack-division model. Expected shape: all policies equal near
// 50-50; under skew greedy degrades most, each MDC optimisation closes
// part of the gap, and MDC-opt tracks opt.

#include <cstdio>
#include <vector>

#include "analysis/hotcold_model.h"
#include "bench/bench_common.h"
#include "util/table_printer.h"
#include "workload/runner.h"

namespace lss {
namespace {

void Run() {
  const double skews[] = {0.5001, 0.6, 0.7, 0.8, 0.9};
  const std::vector<Variant> lines = {
      Variant::kGreedy, Variant::kMdcNoSepUserGc, Variant::kMdcNoSepUser,
      Variant::kMdc, Variant::kMdcOpt};
  const double f = 0.8;
  const StoreConfig cfg = bench::DefaultConfig();

  TablePrinter table({"skew", "greedy", "MDC-no-sep-user-GC",
                      "MDC-no-sep-user", "MDC", "MDC-opt", "opt"});
  for (double m : skews) {
    const uint64_t user_pages = bench::UserPagesFor(cfg, f);
    HotColdWorkload workload(user_pages, m);
    std::vector<TablePrinter::Cell> row;
    char label[16];
    std::snprintf(label, sizeof(label), "%d-%d",
                  static_cast<int>(m * 100 + 0.5),
                  static_cast<int>((1 - m) * 100 + 0.5));
    row.emplace_back(label);
    for (Variant v : lines) {
      const RunResult r =
          RunSynthetic(cfg, v, workload, bench::DefaultSpec(f));
      if (!r.status.ok()) {
        std::fprintf(stderr, "%s m=%.2f failed: %s\n", VariantName(v).c_str(),
                     m, r.status.ToString().c_str());
        row.emplace_back("err");
        continue;
      }
      row.emplace_back(r.wamp, 3);
      bench::Emit(bench::JsonRow("fig3_breakdown")
                      .Str("workload", std::string("hotcold-") + label)
                      .Str("variant", r.variant)
                      .Num("fill", f)
                      .Num("skew", m)
                      .Num("wamp", r.wamp)
                      .Num("analytic_opt_wamp", OptimalWamp(f, m))
                      .Num("mean_clean_emptiness", r.mean_clean_emptiness));
    }
    row.emplace_back(OptimalWamp(f, m), 3);
    table.AddRow(std::move(row));
  }
  std::printf("Figure 3: write amplification vs hot-cold skew, F = 0.8\n");
  std::printf("expected shape: columns decrease left to right; MDC-opt "
              "~= opt; gap to greedy grows with skew\n\n");
  table.Print(stdout);
}

}  // namespace
}  // namespace lss

int main() {
  lss::Run();
  return 0;
}
