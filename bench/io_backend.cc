// Simulator-to-device bridge: the Figure-5 synthetic workload swept over
// segment backends (core/io_backend.h). The null backend is the paper's
// simulator — it *predicts* write amplification; the file backend
// performs every sealed segment as a real pwrite (+fsync) into per-shard
// files, so the same run also *measures* device bytes per user byte and
// the wall-clock cost of durability.
//
// What to expect: measured device bytes per user byte tracks the
// simulator's 1 + Wamp prediction to within the metadata + segment-tail
// overhead (a few percent) — the write pattern, not the device, decides
// write amplification, which is exactly the paper's claim (§6.1.1 fn 2).
// The fsync column is where "file" and "file-nosync" part ways: cleaning
// does not change the prediction, but it doubles the seals the device
// must sync.
//
// Environment:
//   LSS_BENCH_SCALE=N     multiply device size / run length (default 1)
//   LSS_BENCH_JSON=path   machine-readable results (bench_common.h)
//   LSS_BENCH_IO_DIR=dir  where the segment files live (default: a fresh
//                         directory under $TMPDIR, removed afterwards)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "bench/bench_common.h"
#include "core/io_backend.h"
#include "util/table_printer.h"
#include "workload/runner.h"
#include "workload/zipfian_workload.h"

namespace lss {
namespace {

struct TempDir {
  std::string path;
  bool owned = false;

  static TempDir Make() {
    TempDir t;
    if (const char* dir = std::getenv("LSS_BENCH_IO_DIR")) {
      t.path = dir;
      return t;
    }
#ifndef _WIN32
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/lss_io_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) {
      t.path = buf.data();
      t.owned = true;
    }
#endif
    return t;
  }

  void Cleanup(uint32_t max_shards) const {
#ifndef _WIN32
    if (!owned) return;
    for (uint32_t i = 0; i < max_shards; ++i) {
      ::unlink(FileBackend::DataPath(path, i).c_str());
      ::unlink(FileBackend::MetaPath(path, i).c_str());
    }
    ::rmdir(path.c_str());
#else
    (void)max_shards;
#endif
  }
};

StoreConfig IoConfig(const std::string& backend_spec) {
  StoreConfig cfg;
  cfg.page_bytes = 4096;
  cfg.segment_bytes = 128 * 4096;  // 512 KB segments
  cfg.num_segments = 128 * bench::ScaleFactor();
  cfg.clean_trigger_segments = 4;
  cfg.clean_batch_segments = 8;
  cfg.write_buffer_segments = 4;
  Status s = ApplyBackendSpec(backend_spec, &cfg);
  if (!s.ok()) {
    std::fprintf(stderr, "backend spec: %s\n", s.ToString().c_str());
    std::exit(2);
  }
  return cfg;
}

void Panel(const char* workload_name, const WorkloadGenerator& workload,
           double fill, const std::string& dir) {
  const std::vector<Variant> variants = {Variant::kGreedy, Variant::kMdc};
  const std::vector<std::string> backends = {"null", "file-nosync:" + dir,
                                             "file:" + dir};

  std::printf("io_backend %s, F=%.2f: predicted vs device-measured\n\n",
              workload_name, fill);
  TablePrinter table({"variant", "backend", "Wamp", "pred dev B/B",
                      "meas dev B/B", "dev MB", "dev MB/s", "fsyncs"});
  for (Variant v : variants) {
    for (const std::string& spec : backends) {
      StoreConfig cfg = IoConfig(spec);
      RunSpec run = bench::DefaultSpec(fill);
      run.warmup_multiplier = 4;
      run.measure_multiplier = 6;
      const RunResult r = RunSynthetic(cfg, v, workload, run);
      const std::string label = spec.substr(0, spec.find(':'));
      if (!r.status.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n", VariantName(v).c_str(),
                     label.c_str(), r.status.ToString().c_str());
        continue;
      }
      std::vector<TablePrinter::Cell> row;
      row.emplace_back(VariantName(v));
      row.emplace_back(label);
      row.emplace_back(r.wamp, 3);
      // Sealed segments are (nearly) full, so every physical byte the
      // device sees is a user byte, a GC byte or metadata: 1 + Wamp.
      row.emplace_back(1.0 + r.wamp, 3);
      if (r.device_bytes_written > 0) {
        const double mb =
            static_cast<double>(r.device_bytes_written) / (1024.0 * 1024.0);
        row.emplace_back(r.device_bytes_per_user_byte, 3);
        row.emplace_back(mb, 1);
        row.emplace_back(r.device_seconds > 0 ? mb / r.device_seconds : 0.0,
                         1);
        row.emplace_back(static_cast<int>(r.device_fsyncs));
      } else {
        row.emplace_back("-");
        row.emplace_back("-");
        row.emplace_back("-");
        row.emplace_back("-");
      }
      table.AddRow(std::move(row));

      bench::JsonRow json("io_backend");
      json.Str("workload", workload_name)
          .Str("variant", r.variant)
          .Str("backend", label)
          .Num("fill", fill)
          .Num("wamp", r.wamp)
          .Num("predicted_device_bytes_per_user_byte", 1.0 + r.wamp)
          .Num("device_bytes_written", r.device_bytes_written)
          .Num("device_bytes_per_user_byte", r.device_bytes_per_user_byte)
          .Num("device_seconds", r.device_seconds)
          .Num("device_fsyncs", r.device_fsyncs);
      bench::Emit(json);
    }
  }
  table.Print(stdout);
  std::printf("\n");
}

// Sync vs async seal on the file backend: identical placement (the
// determinism tests pin it), different I/O schedule. Sync pays a
// pwrite+fsync inside the write path per seal; async hands the seal to
// the per-shard I/O thread and group-commits the fsyncs, so the column
// to watch is updates/s against fsyncs (and the group-commit batch
// size). Checkpointing adds periodic open-segment persistence — crash-
// window closure priced in device bytes.
void SealPipelinePanel(double fill, const std::string& dir) {
  struct Mode {
    const char* label;
    bool async;
    uint32_t checkpoint_interval;
  };
  const std::vector<Mode> modes = {
      {"sync", false, 0},
      {"async", true, 0},
      {"async+ckpt", true, 64},
  };

  const StoreConfig probe = IoConfig("null");
  UniformWorkload workload(bench::UserPagesFor(probe, fill));

  std::printf("io_backend (c) seal pipeline, F=%.2f: sync vs async seal\n\n",
              fill);
  TablePrinter table({"mode", "Wamp", "kupd/s", "wall s", "dev MB", "fsyncs",
                      "group fsyncs", "stalls", "ckpts", "rehomed", "plain"});
  for (const Mode& m : modes) {
    StoreConfig cfg = IoConfig("file:" + dir);
    cfg.async_seal = m.async;
    cfg.seal_queue_depth = 16;
    cfg.checkpoint_interval_ops = m.checkpoint_interval;
    RunSpec run = bench::DefaultSpec(fill);
    run.warmup_multiplier = 4;
    run.measure_multiplier = 6;
    const ParallelRunResult pr =
        RunSyntheticParallel(cfg, Variant::kMdc, workload, run,
                             /*threads=*/1, /*shards=*/1);
    if (!pr.result.status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", m.label,
                   pr.result.status.ToString().c_str());
      continue;
    }
    const RunResult& r = pr.result;
    std::vector<TablePrinter::Cell> row;
    row.emplace_back(m.label);
    row.emplace_back(r.wamp, 3);
    row.emplace_back(pr.updates_per_second / 1000.0, 1);
    row.emplace_back(pr.measure_seconds, 2);
    row.emplace_back(
        static_cast<double>(r.device_bytes_written) / (1024.0 * 1024.0), 1);
    row.emplace_back(static_cast<int>(r.device_fsyncs));
    row.emplace_back(static_cast<int>(r.group_fsyncs));
    row.emplace_back(static_cast<int>(r.seal_queue_stalls));
    row.emplace_back(static_cast<int>(r.checkpoints_written));
    row.emplace_back(static_cast<int>(r.withheld_slot_reuses_rehomed));
    row.emplace_back(static_cast<int>(r.withheld_slot_reuses_plain));
    table.AddRow(std::move(row));

    bench::JsonRow json("io_backend_seal_pipeline");
    json.Str("mode", m.label)
        .Str("variant", r.variant)
        .Num("fill", fill)
        .Num("wamp", r.wamp)
        .Num("updates_per_second", pr.updates_per_second)
        .Num("measure_seconds", pr.measure_seconds)
        .Num("device_bytes_written", r.device_bytes_written)
        .Num("device_fsyncs", r.device_fsyncs)
        .Num("group_fsyncs", r.group_fsyncs)
        .Num("seal_queue_stalls", r.seal_queue_stalls)
        .Num("checkpoints_written", r.checkpoints_written)
        .Num("withheld_slot_reuses_rehomed", r.withheld_slot_reuses_rehomed)
        .Num("withheld_slot_reuses_plain", r.withheld_slot_reuses_plain);
    bench::Emit(json);
  }
  table.Print(stdout);
  std::printf("\n");
}

void Run() {
  TempDir dir = TempDir::Make();
  if (dir.path.empty()) {
    std::fprintf(stderr, "could not create a temp directory\n");
    std::exit(1);
  }
  const double fill = 0.8;
  {
    const StoreConfig probe = IoConfig("null");
    UniformWorkload uniform(bench::UserPagesFor(probe, fill));
    Panel("(a) uniform", uniform, fill, dir.path);
    ZipfianWorkload zipf(bench::UserPagesFor(probe, fill), 0.99);
    Panel("(b) 80-20 zipfian 0.99", zipf, fill, dir.path);
  }
  SealPipelinePanel(fill, dir.path);
  std::printf(
      "pred dev B/B = simulator prediction (1 + Wamp);\n"
      "meas dev B/B = bytes the file backend physically wrote per user "
      "byte\n(includes segment tails and metadata records).\n"
      "seal pipeline: async hides seal latency behind a per-shard I/O "
      "thread\nand group-commits fsyncs; +ckpt adds periodic open-segment "
      "checkpoints.\n");
  dir.Cleanup(1);
}

}  // namespace
}  // namespace lss

int main() {
  lss::Run();
  return 0;
}
