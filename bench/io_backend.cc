// Simulator-to-device bridge: the Figure-5 synthetic workload swept over
// segment backends (core/io_backend.h). The null backend is the paper's
// simulator — it *predicts* write amplification; the file backend
// performs every sealed segment as a real pwrite (+fsync) into per-shard
// files, so the same run also *measures* device bytes per user byte and
// the wall-clock cost of durability.
//
// What to expect: measured device bytes per user byte tracks the
// simulator's 1 + Wamp prediction to within the metadata + segment-tail
// overhead (a few percent) — the write pattern, not the device, decides
// write amplification, which is exactly the paper's claim (§6.1.1 fn 2).
// The fsync column is where "file" and "file-nosync" part ways: cleaning
// does not change the prediction, but it doubles the seals the device
// must sync.
//
// Environment:
//   LSS_BENCH_SCALE=N     multiply device size / run length (default 1)
//   LSS_BENCH_JSON=path   machine-readable results (bench_common.h)
//   LSS_BENCH_IO_DIR=dir  where the segment files live (default: a fresh
//                         directory under $TMPDIR, removed afterwards)
//   LSS_BENCH_URING_DEPTH=N  io_uring queue depth for the uring rows
//                         (default: StoreConfig::uring_queue_depth)
//
// The uring rows run the io_uring-overlapped backend
// (core/uring_backend.h). Where the kernel or a seccomp filter
// disallows io_uring the backend probes, logs, and degrades to the file
// backend's synchronous path, so the rows still appear — the JSON field
// uring_available records which behaviour was measured.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "bench/bench_common.h"
#include "core/io_backend.h"
#include "core/store.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "workload/runner.h"
#include "workload/zipfian_workload.h"

namespace lss {
namespace {

// LSS_BENCH_SMOKE=1 skips the long panels and runs only the checkpoint
// sweep at its shortest interval on a small device — the CI gate for
// the full-vs-delta persistence path (seconds, not minutes).
bool SmokeMode() {
  const char* env = std::getenv("LSS_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

struct TempDir {
  std::string path;
  bool owned = false;

  static TempDir Make() {
    TempDir t;
    if (const char* dir = std::getenv("LSS_BENCH_IO_DIR")) {
      t.path = dir;
      return t;
    }
#ifndef _WIN32
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/lss_io_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) {
      t.path = buf.data();
      t.owned = true;
    }
#endif
    return t;
  }

  void Cleanup(uint32_t max_shards) const {
#ifndef _WIN32
    if (!owned) return;
    for (uint32_t i = 0; i < max_shards; ++i) {
      ::unlink(FileBackend::DataPath(path, i).c_str());
      ::unlink(FileBackend::MetaPath(path, i).c_str());
    }
    ::rmdir(path.c_str());
#else
    (void)max_shards;
#endif
  }
};

StoreConfig IoConfig(const std::string& backend_spec) {
  StoreConfig cfg;
  cfg.page_bytes = 4096;
  cfg.segment_bytes = 128 * 4096;  // 512 KB segments
  cfg.num_segments = 128 * bench::ScaleFactor();
  cfg.clean_trigger_segments = 4;
  cfg.clean_batch_segments = 8;
  cfg.write_buffer_segments = 4;
  Status s = ApplyBackendSpec(backend_spec, &cfg);
  if (!s.ok()) {
    std::fprintf(stderr, "backend spec: %s\n", s.ToString().c_str());
    std::exit(2);
  }
  return cfg;
}

void Panel(const char* workload_name, const WorkloadGenerator& workload,
           double fill, const std::string& dir) {
  const std::vector<Variant> variants = {Variant::kGreedy, Variant::kMdc};
  const std::vector<std::string> backends = {
      "null", "file-nosync:" + dir, "file:" + dir, "uring-nosync:" + dir,
      "uring:" + dir};

  std::printf("io_backend %s, F=%.2f: predicted vs device-measured\n\n",
              workload_name, fill);
  TablePrinter table({"variant", "backend", "Wamp", "pred dev B/B",
                      "meas dev B/B", "dev MB", "dev MB/s", "fsyncs"});
  for (Variant v : variants) {
    for (const std::string& spec : backends) {
      StoreConfig cfg = IoConfig(spec);
      RunSpec run = bench::DefaultSpec(fill);
      run.warmup_multiplier = 4;
      run.measure_multiplier = 6;
      const RunResult r = RunSynthetic(cfg, v, workload, run);
      const std::string label = spec.substr(0, spec.find(':'));
      if (!r.status.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n", VariantName(v).c_str(),
                     label.c_str(), r.status.ToString().c_str());
        continue;
      }
      std::vector<TablePrinter::Cell> row;
      row.emplace_back(VariantName(v));
      row.emplace_back(label);
      row.emplace_back(r.wamp, 3);
      // Sealed segments are (nearly) full, so every physical byte the
      // device sees is a user byte, a GC byte or metadata: 1 + Wamp.
      row.emplace_back(1.0 + r.wamp, 3);
      if (r.device_bytes_written > 0) {
        const double mb =
            static_cast<double>(r.device_bytes_written) / (1024.0 * 1024.0);
        row.emplace_back(r.device_bytes_per_user_byte, 3);
        row.emplace_back(mb, 1);
        row.emplace_back(r.device_seconds > 0 ? mb / r.device_seconds : 0.0,
                         1);
        row.emplace_back(static_cast<int>(r.device_fsyncs));
      } else {
        row.emplace_back("-");
        row.emplace_back("-");
        row.emplace_back("-");
        row.emplace_back("-");
      }
      table.AddRow(std::move(row));

      bench::JsonRow json("io_backend");
      json.Str("workload", workload_name)
          .Str("variant", r.variant)
          .Str("backend", label)
          .Num("fill", fill)
          .Num("wamp", r.wamp)
          .Num("predicted_device_bytes_per_user_byte", 1.0 + r.wamp)
          .Num("device_bytes_written", r.device_bytes_written)
          .Num("device_bytes_per_user_byte", r.device_bytes_per_user_byte)
          .Num("device_seconds", r.device_seconds)
          .Num("device_fsyncs", r.device_fsyncs)
          .Num("backend_blocking_seconds", r.backend_blocking_seconds)
          .Num("uring_available", r.uring_available);
      bench::Emit(json);
    }
  }
  table.Print(stdout);
  std::printf("\n");
}

// Sync vs async seal, file vs uring, at equal fsync policy: identical
// placement (the determinism tests pin it), different I/O schedule.
// Sync pays a pwrite+fsync inside the write path per seal; async hands
// the seal to the per-shard I/O thread and group-commits the fsyncs,
// so the column to watch is updates/s against fsyncs (and the group-
// commit batch size). The uring rows replace the blocking payload
// pwrite with SQE submission + a batch-end completion reap, so their
// "blk ms" — milliseconds the thread driving the backend spent blocked
// on device work — should undercut the file rows; that saving is what
// the ring buys. Checkpointing adds periodic open-segment persistence —
// crash-window closure priced in device bytes.
void SealPipelinePanel(double fill, const std::string& dir) {
  struct Mode {
    const char* label;
    bool async;
    uint32_t checkpoint_interval;
  };
  const std::vector<Mode> modes = {
      {"sync", false, 0},
      {"async", true, 0},
      {"async+ckpt", true, bench::CheckpointInterval(64)},
  };
  const std::vector<std::string> backends = {"file:" + dir, "uring:" + dir};

  const StoreConfig probe = IoConfig("null");
  UniformWorkload workload(bench::UserPagesFor(probe, fill));

  std::printf(
      "io_backend (c) seal pipeline, F=%.2f: sync vs async seal, file vs "
      "uring\n\n",
      fill);
  TablePrinter table({"mode", "backend", "Wamp", "kupd/s", "wall s", "blk ms",
                      "dev MB", "fsyncs", "group fsyncs", "stalls", "ckpts",
                      "rehomed", "plain"});
  for (const Mode& m : modes) {
    for (const std::string& spec : backends) {
      StoreConfig cfg = IoConfig(spec);
      cfg.async_seal = m.async;
      cfg.seal_queue_depth = 16;
      cfg.checkpoint_interval_ops = m.checkpoint_interval;
      cfg.uring_queue_depth = bench::UringDepth(cfg.uring_queue_depth);
      RunSpec run = bench::DefaultSpec(fill);
      run.warmup_multiplier = 4;
      run.measure_multiplier = 6;
      const ParallelRunResult pr =
          RunSyntheticParallel(cfg, Variant::kMdc, workload, run,
                               /*threads=*/1, /*shards=*/1);
      const std::string label = spec.substr(0, spec.find(':'));
      if (!pr.result.status.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n", m.label, label.c_str(),
                     pr.result.status.ToString().c_str());
        continue;
      }
      const RunResult& r = pr.result;
      std::vector<TablePrinter::Cell> row;
      row.emplace_back(m.label);
      row.emplace_back(label);
      row.emplace_back(r.wamp, 3);
      row.emplace_back(pr.updates_per_second / 1000.0, 1);
      row.emplace_back(pr.measure_seconds, 2);
      row.emplace_back(r.backend_blocking_seconds * 1000.0, 1);
      row.emplace_back(
          static_cast<double>(r.device_bytes_written) / (1024.0 * 1024.0), 1);
      row.emplace_back(static_cast<int>(r.device_fsyncs));
      row.emplace_back(static_cast<int>(r.group_fsyncs));
      row.emplace_back(static_cast<int>(r.seal_queue_stalls));
      row.emplace_back(static_cast<int>(r.checkpoints_written));
      row.emplace_back(static_cast<int>(r.withheld_slot_reuses_rehomed));
      row.emplace_back(static_cast<int>(r.withheld_slot_reuses_plain));
      table.AddRow(std::move(row));

      bench::JsonRow json("io_backend_seal_pipeline");
      json.Str("mode", m.label)
          .Str("backend", label)
          .Str("variant", r.variant)
          .Num("fill", fill)
          .Num("wamp", r.wamp)
          .Num("updates_per_second", pr.updates_per_second)
          .Num("measure_seconds", pr.measure_seconds)
          .Num("backend_blocking_seconds", r.backend_blocking_seconds)
          .Num("uring_available", r.uring_available)
          .Num("uring_submitted", r.uring_submitted)
          .Num("device_bytes_written", r.device_bytes_written)
          .Num("device_fsyncs", r.device_fsyncs)
          .Num("group_fsyncs", r.group_fsyncs)
          .Num("seal_queue_stalls", r.seal_queue_stalls)
          .Num("checkpoints_written", r.checkpoints_written)
          .Num("checkpoint_rounds", r.checkpoint_rounds)
          .Num("checkpoint_full_records", r.checkpoint_full_records)
          .Num("checkpoint_delta_records", r.checkpoint_delta_records)
          .Num("checkpoint_bytes_written", r.checkpoint_bytes_written)
          .Num("withheld_slot_reuses_rehomed", r.withheld_slot_reuses_rehomed)
          .Num("withheld_slot_reuses_plain", r.withheld_slot_reuses_plain);
      bench::Emit(json);
    }
  }
  table.Print(stdout);
  std::printf(
      "blk ms = milliseconds the backend-driving thread was blocked on "
      "device work\n(write submit + fsync + completion waits); uring vs "
      "file at equal mode is the\noverlap the ring bought.\n\n");
}

// One cell of the checkpoint sweep: a store driven directly, with an
// explicit Checkpoint() barrier every `barrier_updates` user updates —
// the crash-freshness pattern delta checkpoints exist for. (Periodic
// seal-count-driven rounds fire at seal boundaries, where the segment
// that was growing has just been consumed by its seal and every other
// open segment is static since its own last fill phase, so those rounds
// alone never observe suffix growth; a barrier lands mid-fill and
// does.) Warm-up reaches steady state, then measurement covers
// 4x user_pages updates with the same barrier cadence.
struct BarrierRun {
  Status status;
  StoreStats stats;
  double wamp = 0.0;
};

BarrierRun RunBarrierWorkload(const StoreConfig& cfg,
                              const UniformWorkload& workload,
                              uint32_t barrier_updates) {
  BarrierRun out;
  StoreConfig store_cfg = cfg;
  ApplyVariantConfig(Variant::kMdc, &store_cfg);
  auto store = LogStructuredStore::Create(store_cfg,
                                          MakePolicy(Variant::kMdc),
                                          &out.status);
  if (store == nullptr) return out;
  store->SetExactFrequencyOracle(
      [&workload](PageId p) { return workload.ExactFrequency(p); });
  const uint64_t user_pages = workload.NumPages();
  for (PageId p = 0; p < user_pages; ++p) {
    Status s = store->Write(p);
    if (!s.ok()) {
      out.status = s;
      return out;
    }
  }
  Rng rng(42);
  auto run_updates = [&](uint64_t n) -> Status {
    for (uint64_t i = 0; i < n; ++i) {
      Status s = store->Write(workload.NextPage(rng));
      if (!s.ok()) return s;
      if ((i + 1) % barrier_updates == 0) {
        s = store->Checkpoint();
        if (!s.ok()) return s;
      }
    }
    return Status::OK();
  };
  out.status = run_updates(2 * user_pages);
  if (!out.status.ok()) return out;
  store->ResetMeasurement();
  out.status = run_updates(4 * user_pages);
  if (!out.status.ok()) return out;
  out.stats = store->StatsSnapshot();
  out.wamp = out.stats.WriteAmplification();
  return out;
}

// Checkpoint-interval sweep: what barrier-driven open-segment
// persistence costs in device bytes, full-rewrite vs delta
// (suffix-only) records, against an analytic prediction. A full
// checkpoint rewrites the whole slot payload every barrier; a delta
// writes only the bytes appended since the slot's durable watermark
// (and a covered slot is skipped outright), so at short intervals the
// checkpoint traffic drops by roughly segment size over per-barrier
// fill. The prediction prices every durable record from first
// principles — seals at segment_bytes + one EntryRec per page, frees
// at header + body, re-homes at header + seal body + entries — plus
// the measured checkpoint bytes; measured device bytes should match to
// well under a percent (file-nosync, so byte accounting is exact while
// the sweep stays fast).
void CheckpointSweepPanel(double fill, const std::string& dir) {
  const bool smoke = SmokeMode();
  // The sweep needs exact byte accounting, so it runs nosync — but it
  // honours a uring LSS_BENCH_BACKEND (the --uring CI smoke): the
  // ring-overlapped path must reproduce the same exact bytes, which the
  // pred-err column then asserts.
  const char* backend_env = std::getenv("LSS_BENCH_BACKEND");
  const bool want_uring =
      backend_env != nullptr && std::strncmp(backend_env, "uring", 5) == 0;
  const std::string nosync_spec =
      (want_uring ? "uring-nosync:" : "file-nosync:") + dir;
  StoreConfig probe = IoConfig("null");
  if (smoke) probe.num_segments = 32;
  UniformWorkload workload(bench::UserPagesFor(probe, fill));
  const uint32_t shortest = bench::CheckpointInterval(8);
  std::vector<uint32_t> intervals = {shortest, shortest * 4, shortest * 16};
  if (smoke) intervals = {shortest};

  std::printf(
      "io_backend (d) checkpoint sweep, F=%.2f: full vs delta records\n"
      "(interval = user updates between Checkpoint() barriers)\n\n",
      fill);
  TablePrinter table({"interval", "mode", "rounds", "full recs",
                      "delta recs", "ckpt MB", "dev MB", "pred MB",
                      "pred err", "ckpt ratio"});
  for (uint32_t interval : intervals) {
    uint64_t full_ckpt_bytes = 0;
    for (bool delta : {false, true}) {
      StoreConfig cfg = IoConfig(nosync_spec);
      cfg.num_segments = probe.num_segments;
      cfg.uring_queue_depth = bench::UringDepth(cfg.uring_queue_depth);
      // Keep the checkpoint-mode reclaim protocol on (the withheld-free
      // machinery is gated on a non-zero interval) but push the
      // seal-count-driven rounds out of reach: only the explicit
      // barriers checkpoint, so both modes pay for exactly the same
      // round schedule.
      cfg.checkpoint_interval_ops = 1u << 30;
      cfg.checkpoint_delta = delta;
      const BarrierRun br = RunBarrierWorkload(cfg, workload, interval);
      if (!br.status.ok()) {
        std::fprintf(stderr, "ckpt sweep %u/%s failed: %s\n", interval,
                     delta ? "delta" : "full", br.status.ToString().c_str());
        continue;
      }
      // Durable-record byte model (io_backend.cc layouts): MetaHeader 24,
      // SealBody 48, EntryRec 48, FreeBody 16. Sealed segments are full
      // (fixed-size pages), so each seal writes segment_bytes of payload
      // plus a record with one EntryRec per page; each cleaned victim a
      // free record; each re-homing event a SealBody-shaped record with
      // one EntryRec per re-homed entry. Checkpoint traffic is taken
      // from the backend's own meter.
      const StoreStats& st = br.stats;
      const uint64_t pages_per_segment = cfg.segment_bytes / cfg.page_bytes;
      const uint64_t seal_bytes =
          cfg.segment_bytes + 24 + 48 + pages_per_segment * 48;
      const uint64_t segments_sealed =
          st.user_segments_sealed + st.gc_segments_sealed;
      const uint64_t predicted =
          segments_sealed * seal_bytes + st.segments_cleaned * (24 + 16) +
          st.withheld_slot_reuses_rehomed * (24 + 48) +
          st.rehome_entries_written * 48 + st.checkpoint_bytes_written;
      const double err =
          st.device_bytes_written > 0
              ? std::abs(static_cast<double>(predicted) -
                         static_cast<double>(st.device_bytes_written)) /
                    static_cast<double>(st.device_bytes_written)
              : 0.0;
      double ratio = 0.0;
      if (!delta) {
        full_ckpt_bytes = st.checkpoint_bytes_written;
      } else if (st.checkpoint_bytes_written > 0) {
        ratio = static_cast<double>(full_ckpt_bytes) /
                static_cast<double>(st.checkpoint_bytes_written);
      }
      const double mb = 1.0 / (1024.0 * 1024.0);
      std::vector<TablePrinter::Cell> row;
      row.emplace_back(static_cast<int>(interval));
      row.emplace_back(delta ? "delta" : "full");
      row.emplace_back(static_cast<int>(st.checkpoint_rounds));
      row.emplace_back(static_cast<int>(st.checkpoint_full_records));
      row.emplace_back(static_cast<int>(st.checkpoint_delta_records));
      row.emplace_back(static_cast<double>(st.checkpoint_bytes_written) * mb,
                       1);
      row.emplace_back(static_cast<double>(st.device_bytes_written) * mb, 1);
      row.emplace_back(static_cast<double>(predicted) * mb, 1);
      row.emplace_back(err * 100.0, 2);
      if (delta && ratio > 0) {
        row.emplace_back(ratio, 1);
      } else {
        row.emplace_back("-");
      }
      table.AddRow(std::move(row));

      bench::JsonRow json("io_backend_ckpt_sweep");
      json.Str("mode", delta ? "delta" : "full")
          .Str("backend", nosync_spec.substr(0, nosync_spec.find(':')))
          .Num("uring_available", st.uring_available)
          .Num("interval", static_cast<uint64_t>(interval))
          .Num("fill", fill)
          .Num("wamp", br.wamp)
          .Num("checkpoint_rounds", st.checkpoint_rounds)
          .Num("checkpoints_written", st.checkpoints_written)
          .Num("checkpoint_full_records", st.checkpoint_full_records)
          .Num("checkpoint_delta_records", st.checkpoint_delta_records)
          .Num("checkpoint_bytes_written", st.checkpoint_bytes_written)
          .Num("device_bytes_written", st.device_bytes_written)
          .Num("predicted_device_bytes", predicted)
          .Num("prediction_error", err);
      if (delta && ratio > 0) json.Num("ckpt_bytes_full_over_delta", ratio);
      bench::Emit(json);
    }
  }
  table.Print(stdout);
  std::printf(
      "ckpt ratio = full-mode checkpoint bytes / delta-mode checkpoint "
      "bytes\nat the same interval (the suffix-only win; grows as the "
      "interval shrinks).\n\n");
}

void Run() {
  TempDir dir = TempDir::Make();
  if (dir.path.empty()) {
    std::fprintf(stderr, "could not create a temp directory\n");
    std::exit(1);
  }
  const double fill = 0.8;
  if (!SmokeMode()) {
    const StoreConfig probe = IoConfig("null");
    UniformWorkload uniform(bench::UserPagesFor(probe, fill));
    Panel("(a) uniform", uniform, fill, dir.path);
    ZipfianWorkload zipf(bench::UserPagesFor(probe, fill), 0.99);
    Panel("(b) 80-20 zipfian 0.99", zipf, fill, dir.path);
    SealPipelinePanel(fill, dir.path);
  }
  CheckpointSweepPanel(fill, dir.path);
  std::printf(
      "pred dev B/B = simulator prediction (1 + Wamp);\n"
      "meas dev B/B = bytes the file backend physically wrote per user "
      "byte\n(includes segment tails and metadata records).\n"
      "seal pipeline: async hides seal latency behind a per-shard I/O "
      "thread\nand group-commits fsyncs; +ckpt adds periodic open-segment "
      "checkpoints.\n");
  dir.Cleanup(1);
}

}  // namespace
}  // namespace lss

int main() {
  lss::Run();
  return 0;
}
