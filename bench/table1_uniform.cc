// Reproduces Table 1 of the paper: fill factor F vs steady-state segment
// emptiness E under a uniform update distribution, with the analytic
// fixpoint (Equation 4), the derived Cost = 2/E, R = E/(1-F) and
// Wamp = (1-E)/E columns, and the simulated MDC-opt emptiness column
// ("MDC-opt is the simulation result for the minimum declining cost
// algorithm"). Analysis and simulation agreeing to ~2 significant digits
// is the paper's §8.1 validation.

#include <cstdio>

#include "analysis/uniform_model.h"
#include "bench/bench_common.h"
#include "util/table_printer.h"
#include "workload/runner.h"

namespace lss {
namespace {

void Run() {
  // The paper's Table 1 fill factors. Very high fill factors need the
  // most updates to stabilise; the default multipliers suffice at bench
  // scale.
  const double fills[] = {.975, .95, .90, .85, .80, .75, .70, .65, .60,
                          .55,  .50, .45, .40, .35, .30, .25, .20};

  TablePrinter table(
      {"F", "1-F", "E(analytic)", "MDC-opt(sim)", "Cost", "R", "Wamp",
       "Wamp(sim)"});
  StoreConfig cfg = bench::DefaultConfig();
  // Uniform updates need no write-sorting batch depth. Many segments
  // with a tiny trigger/batch keep the idle free pool far below the
  // slack even at F = 0.975 (at paper scale it is negligible; here it
  // must be kept so deliberately).
  cfg.segment_bytes = 128 * 4096;
  cfg.num_segments = 2048 * bench::ScaleFactor();
  cfg.clean_trigger_segments = 2;
  cfg.clean_batch_segments = 8;
  cfg.write_buffer_segments = 4;

  for (double f : fills) {
    const double e = SolveSteadyStateEmptiness(f);
    const uint64_t user_pages = bench::UserPagesFor(cfg, f);
    UniformWorkload workload(user_pages);
    RunSpec spec = bench::DefaultSpec(f);
    if (f >= 0.9) spec.measure_multiplier = 16;  // slower convergence
    const RunResult r = RunSynthetic(cfg, Variant::kMdcOpt, workload, spec);
    if (!r.status.ok()) {
      std::fprintf(stderr, "F=%.3f failed: %s\n", f,
                   r.status.ToString().c_str());
      continue;
    }
    table.AddRow({TablePrinter::Cell(f, 3), TablePrinter::Cell(1.0 - f, 3),
                  TablePrinter::Cell(e, 3),
                  TablePrinter::Cell(r.mean_clean_emptiness, 3),
                  TablePrinter::Cell(CostPerSegment(e), 2),
                  TablePrinter::Cell(SlackEfficiency(f), 2),
                  TablePrinter::Cell(WampFromEmptiness(e), 3),
                  TablePrinter::Cell(r.wamp, 3)});
    bench::Emit(bench::JsonRow("table1_uniform")
                    .Str("workload", "uniform")
                    .Str("variant", r.variant)
                    .Num("fill", f)
                    .Num("analytic_emptiness", e)
                    .Num("analytic_wamp", WampFromEmptiness(e))
                    .Num("wamp", r.wamp)
                    .Num("mean_clean_emptiness", r.mean_clean_emptiness)
                    .Num("measured_updates", r.measured_updates));
  }
  std::printf("Table 1: fill factor vs segment emptiness when cleaned "
              "(uniform updates)\n");
  std::printf("paper reference E column: .048 .094 .19 .29 .375 .45 .53 "
              ".60 .67 .74 .80 .85 .89 .93 .96 .98 .993\n\n");
  table.Print(stdout);
}

}  // namespace
}  // namespace lss

int main() {
  lss::Run();
  return 0;
}
