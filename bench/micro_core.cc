// Micro-benchmarks (google-benchmark) for the store's hot paths: write
// throughput per cleaning policy, victim-selection cost vs device size,
// and Zipfian sampling. Not from the paper — these quantify simulator
// overheads so the table/figure benches' runtimes are explainable.

#include <benchmark/benchmark.h>

#include "analysis/uniform_model.h"
#include "bench/bench_common.h"
#include "core/policy_factory.h"
#include "core/store.h"
#include "util/zipf.h"
#include "workload/runner.h"
#include "workload/zipfian_workload.h"

namespace lss {
namespace {

void BM_StoreWrite(benchmark::State& state) {
  const Variant v = static_cast<Variant>(state.range(0));
  StoreConfig cfg;
  cfg.page_bytes = 4096;
  cfg.segment_bytes = 128 * 4096;
  cfg.num_segments = 256;
  cfg.clean_trigger_segments = 4;
  cfg.clean_batch_segments = 8;
  cfg.write_buffer_segments = 8;
  ApplyVariantConfig(v, &cfg);
  auto store = LogStructuredStore::Create(cfg, MakePolicy(v));
  if (VariantNeedsOracle(v)) {
    store->SetExactFrequencyOracle([](PageId) { return 1.0; });
  }
  const uint64_t user_pages = bench::UserPagesFor(cfg, 0.8);
  for (PageId p = 0; p < user_pages; ++p) {
    benchmark::DoNotOptimize(store->Write(p));
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Write(rng.NextBounded(user_pages)));
  }
  state.SetLabel(VariantName(v));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreWrite)
    ->Arg(static_cast<int>(Variant::kGreedy))
    ->Arg(static_cast<int>(Variant::kCostBenefit))
    ->Arg(static_cast<int>(Variant::kMultiLog))
    ->Arg(static_cast<int>(Variant::kMdc));

void BM_VictimSelection(benchmark::State& state) {
  StoreConfig cfg;
  cfg.page_bytes = 4096;
  cfg.segment_bytes = 64 * 4096;
  cfg.num_segments = static_cast<uint32_t>(state.range(0));
  cfg.clean_trigger_segments = 4;
  cfg.clean_batch_segments = 16;
  cfg.write_buffer_segments = 4;
  auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kMdc));
  const uint64_t user_pages = bench::UserPagesFor(cfg, 0.8);
  Rng rng(2);
  for (PageId p = 0; p < user_pages; ++p) store->Write(p).ok();
  for (uint64_t i = 0; i < 2 * user_pages; ++i) {
    store->Write(rng.NextBounded(user_pages)).ok();
  }
  const auto& policy = store->policy();
  std::vector<SegmentId> victims;
  for (auto _ : state) {
    victims.clear();
    policy.SelectVictims(store->shard(), 0, 16, &victims);
    benchmark::DoNotOptimize(victims.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VictimSelection)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ZipfSample(benchmark::State& state) {
  ZipfGenerator z(1u << 20, 0.99);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void BM_UniformModelFixpoint(benchmark::State& state) {
  double f = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveSteadyStateEmptiness(f));
    f = f < 0.95 ? f + 0.01 : 0.5;
  }
}
BENCHMARK(BM_UniformModelFixpoint);

}  // namespace
}  // namespace lss

BENCHMARK_MAIN();
