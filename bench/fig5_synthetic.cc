// Reproduces Figure 5: write amplification of all seven cleaning
// algorithms vs fill factor under (a) uniform, (b) 80-20 Zipfian
// (theta 0.99), (c) 90-10 Zipfian (theta 1.35) update distributions.
//
// Expected shapes (paper §6.2.2):
//  (a) uniform: age ~ greedy ~ optimal; multi-log-opt and MDC-opt match;
//      plain multi-log slightly worse (log proliferation); cost-benefit
//      is near-optimal under the canonical LFS formula we default to —
//      the paper's own cost-benefit is far worse here because of its
//      literal (1-E)age/E priority (see bench/ablation_costbenefit).
//  (b)/(c) skewed: age worst, then greedy, cost-benefit, multi-log,
//      multi-log-opt, MDC, with MDC-opt lowest.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/table_printer.h"
#include "workload/runner.h"
#include "workload/zipfian_workload.h"

namespace lss {
namespace {

void Panel(const char* name,
           const std::function<std::unique_ptr<WorkloadGenerator>(uint64_t)>&
               make_workload,
           const std::vector<double>& fills) {
  const StoreConfig cfg = bench::DefaultConfig();
  std::vector<std::string> headers = {"F"};
  for (Variant v : AllVariants()) {
    if (v == Variant::kMdcNoSepUser || v == Variant::kMdcNoSepUserGc) {
      continue;  // ablations live in fig3
    }
    headers.push_back(VariantName(v));
  }
  TablePrinter table(headers);
  for (double f : fills) {
    const uint64_t user_pages = bench::UserPagesFor(cfg, f);
    auto workload = make_workload(user_pages);
    std::vector<TablePrinter::Cell> row;
    row.emplace_back(f, 2);
    for (Variant v : AllVariants()) {
      if (v == Variant::kMdcNoSepUser || v == Variant::kMdcNoSepUserGc) {
        continue;
      }
      const RunResult r =
          RunSynthetic(cfg, v, *workload, bench::DefaultSpec(f));
      if (!r.status.ok()) {
        std::fprintf(stderr, "%s %s F=%.2f failed: %s\n", name,
                     VariantName(v).c_str(), f, r.status.ToString().c_str());
        row.emplace_back("err");
      } else {
        row.emplace_back(r.wamp, 3);
        bench::EmitRunResult("fig5_synthetic", name, f, r);
      }
    }
    table.AddRow(std::move(row));
  }
  std::printf("Figure 5%s: write amplification vs fill factor\n\n", name);
  table.Print(stdout);
  std::printf("\n");
}

void Run() {
  const std::vector<double> fills = {0.5, 0.6, 0.7, 0.8, 0.9, 0.95};
  Panel("(a) uniform",
        [](uint64_t pages) -> std::unique_ptr<WorkloadGenerator> {
          return std::make_unique<UniformWorkload>(pages);
        },
        fills);
  Panel("(b) 80-20 zipfian 0.99",
        [](uint64_t pages) -> std::unique_ptr<WorkloadGenerator> {
          return std::make_unique<ZipfianWorkload>(pages, 0.99);
        },
        fills);
  Panel("(c) 90-10 zipfian 1.35",
        [](uint64_t pages) -> std::unique_ptr<WorkloadGenerator> {
          return std::make_unique<ZipfianWorkload>(pages, 1.35);
        },
        fills);
}

}  // namespace
}  // namespace lss

int main() {
  lss::Run();
  return 0;
}
