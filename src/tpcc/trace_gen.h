#ifndef LSS_TPCC_TRACE_GEN_H_
#define LSS_TPCC_TRACE_GEN_H_

#include <cstdint>

#include "tpcc/tpcc_db.h"
#include "workload/trace.h"

namespace lss::tpcc {

/// Output of a TPC-C trace-collection run (the paper's §6.3 pipeline:
/// run TPC-C on the B+-tree engine, collect page-write I/O, then replay
/// through the cleaning simulator).
struct TpccTraceResult {
  Trace trace;
  /// Trace index where the measurement phase begins (after population
  /// and warm-up, mirroring "the write amplification was measured during
  /// running phase").
  size_t measure_from = 0;
  /// Database pages right after population.
  uint64_t pages_after_load = 0;
  /// Database pages at the end of the run (TPC-C storage grows over
  /// time, §6.3); size the simulated device as pages_final / fill_factor.
  uint64_t pages_final = 0;
  /// Transactions executed in warm-up + measurement.
  uint64_t transactions = 0;
};

/// Populates a TPC-C database and runs `warm_txns + measure_txns`
/// transactions of the standard mix, recording every buffer-pool page
/// write-back. `checkpoint_every` > 0 additionally flushes all dirty
/// pages every that-many transactions (a fuzzy checkpoint), which is how
/// cold dirty pages reach storage in engines whose cache would otherwise
/// absorb them. A final checkpoint closes the trace.
TpccTraceResult GenerateTpccTrace(const TpccConfig& config,
                                  uint64_t warm_txns, uint64_t measure_txns,
                                  uint64_t checkpoint_every = 0);

}  // namespace lss::tpcc

#endif  // LSS_TPCC_TRACE_GEN_H_
