#ifndef LSS_TPCC_TRACE_GEN_H_
#define LSS_TPCC_TRACE_GEN_H_

#include <cstdint>

#include "tpcc/tpcc_db.h"
#include "workload/trace.h"

namespace lss::tpcc {

/// Version of the trace *generator* (engine layout + collection
/// pipeline), bumped whenever a change alters the traces it emits —
/// partitioned tables, merge order, format changes, and so on. Cache
/// keys (bench/fig6_tpcc.cc's $TMPDIR trace cache) must mix this in so
/// stale cached traces regenerate instead of silently replaying old
/// data.
inline constexpr uint32_t kTpccTraceFormatVersion = 4;

/// Output of a TPC-C trace-collection run (the paper's §6.3 pipeline:
/// run TPC-C on the B+-tree engine, collect page-write I/O, then replay
/// through the cleaning simulator).
struct TpccTraceResult {
  Trace trace;
  /// Trace index where the measurement phase begins (after population
  /// and warm-up, mirroring "the write amplification was measured during
  /// running phase").
  size_t measure_from = 0;
  /// Database pages right after population.
  uint64_t pages_after_load = 0;
  /// Database pages at the end of the run (TPC-C storage grows over
  /// time, §6.3); size the simulated device as pages_final / fill_factor.
  uint64_t pages_final = 0;
  /// Transactions executed in warm-up + measurement.
  uint64_t transactions = 0;
  /// Worker threads that generated the trace (config.workers; the
  /// latch-coupled engine lets workers exceed warehouses).
  uint32_t workers = 1;
  /// Wall-clock seconds spent generating (populate + all transactions).
  double generation_seconds = 0.0;

  /// Buffer-pool behaviour over the whole generation run (population
  /// through final checkpoint) — how well the cache absorbed the
  /// workload under config.pool_policy. Surfaced by fig6_tpcc's JSON.
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  uint64_t pool_write_backs = 0;
  uint64_t pool_latch_acquisitions = 0;

  /// Pre-split replay feeds (empty unless requested): sub-trace per
  /// replay shard, computed once here so every replay of a cached trace
  /// takes ReplayTraceParallel's zero-router fast path.
  ShardedTrace presplit;
};

/// Populates a TPC-C database and runs `warm_txns + measure_txns`
/// transactions of the standard mix, recording every buffer-pool page
/// write-back. `checkpoint_every` > 0 additionally flushes all dirty
/// pages every that-many transactions (a fuzzy checkpoint), which is how
/// cold dirty pages reach storage in engines whose cache would otherwise
/// absorb them. A final checkpoint closes the trace.
///
/// config.workers > 1 generates in parallel: population and the
/// transaction phases fan out over that many threads (per-warehouse
/// affinity, see TpccDb), each thread records the write-backs *it*
/// triggers into its own buffer, and the buffers are merged with a
/// stable round-robin order at each phase boundary (approximating the
/// temporal interleaving of the streams without cross-thread
/// synchronisation on the trace itself). Checkpoints are driven off a
/// global transaction counter so their cadence matches the serial run.
/// Which thread evicts which page depends on scheduling, so parallel
/// generation is *not* bit-reproducible run to run — downstream replay
/// is a pure function of the trace, which is why benches cache the
/// generated trace on disk.
///
/// `presplit_shards` > 0 additionally splits the finished trace into
/// that many per-shard sub-traces (SplitTrace), stored in
/// result.presplit; benches cache the split alongside the trace so
/// parallel replays never pay router work.
TpccTraceResult GenerateTpccTrace(const TpccConfig& config,
                                  uint64_t warm_txns, uint64_t measure_txns,
                                  uint64_t checkpoint_every = 0,
                                  uint32_t presplit_shards = 0);

}  // namespace lss::tpcc

#endif  // LSS_TPCC_TRACE_GEN_H_
