#include "tpcc/tpcc_random.h"

#include <cassert>

namespace lss {

int64_t TpccRandom::NURand(int64_t a, int64_t x, int64_t y) {
  int64_t c = 0;
  switch (a) {
    case 255: c = kC255; break;
    case 1023: c = kC1023; break;
    case 8191: c = kC8191; break;
    default: assert(false && "unexpected NURand A");
  }
  const int64_t r1 = Uniform(0, a);
  const int64_t r2 = Uniform(x, y);
  return (((r1 | r2) + c) % (y - x + 1)) + x;
}

std::string TpccRandom::LastName(int num) {
  static constexpr const char* kSyllables[] = {
      "BAR", "OUGHT", "ABLE", "PRI", "PRES",
      "ESE", "ANTI",  "CALLY", "ATION", "EING"};
  assert(num >= 0 && num <= 999);
  std::string name;
  name += kSyllables[num / 100];
  name += kSyllables[(num / 10) % 10];
  name += kSyllables[num % 10];
  return name;
}

std::string TpccRandom::AString(int lo, int hi) {
  static constexpr char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  const int len = static_cast<int>(Uniform(lo, hi));
  std::string s(len, ' ');
  for (char& c : s) c = kChars[rng_.NextBounded(sizeof(kChars) - 1)];
  return s;
}

std::string TpccRandom::NString(int lo, int hi) {
  const int len = static_cast<int>(Uniform(lo, hi));
  std::string s(len, '0');
  for (char& c : s) c = static_cast<char>('0' + rng_.NextBounded(10));
  return s;
}

}  // namespace lss
