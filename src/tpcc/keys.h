#ifndef LSS_TPCC_KEYS_H_
#define LSS_TPCC_KEYS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace lss::tpcc {

/// Composite key encoding for the TPC-C tables: big-endian fixed-width
/// integer fields concatenate into byte strings whose memcmp order equals
/// the tuple order, so B+-tree range scans follow the schema's natural
/// sort.

inline void AppendU32(std::string* key, uint32_t v) {
  key->push_back(static_cast<char>(v >> 24));
  key->push_back(static_cast<char>(v >> 16));
  key->push_back(static_cast<char>(v >> 8));
  key->push_back(static_cast<char>(v));
}

inline uint32_t ReadU32(std::string_view key, size_t offset) {
  return (static_cast<uint32_t>(static_cast<uint8_t>(key[offset])) << 24) |
         (static_cast<uint32_t>(static_cast<uint8_t>(key[offset + 1])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(key[offset + 2])) << 8) |
         static_cast<uint32_t>(static_cast<uint8_t>(key[offset + 3]));
}

inline std::string WarehouseKey(uint32_t w) {
  std::string k;
  AppendU32(&k, w);
  return k;
}

inline std::string DistrictKey(uint32_t w, uint32_t d) {
  std::string k;
  AppendU32(&k, w);
  AppendU32(&k, d);
  return k;
}

inline std::string CustomerKey(uint32_t w, uint32_t d, uint32_t c) {
  std::string k;
  AppendU32(&k, w);
  AppendU32(&k, d);
  AppendU32(&k, c);
  return k;
}

/// Secondary index for Payment/Order-Status by last name. The name field
/// is fixed-width (16 bytes, space padded) so that the (w, d, last_name)
/// prefix is a contiguous key range.
inline std::string CustomerNameKey(uint32_t w, uint32_t d,
                                   std::string_view last, uint32_t c) {
  std::string k;
  AppendU32(&k, w);
  AppendU32(&k, d);
  std::string padded(last.substr(0, 16));
  padded.resize(16, ' ');
  k += padded;
  AppendU32(&k, c);
  return k;
}

/// Prefix of CustomerNameKey covering every customer id.
inline std::string CustomerNamePrefix(uint32_t w, uint32_t d,
                                      std::string_view last) {
  return CustomerNameKey(w, d, last, 0).substr(0, 24);
}

inline std::string OrderKey(uint32_t w, uint32_t d, uint32_t o) {
  std::string k;
  AppendU32(&k, w);
  AppendU32(&k, d);
  AppendU32(&k, o);
  return k;
}

/// Index for "a customer's most recent order": the order id is stored
/// bit-complemented, so the smallest key in the (w, d, c) prefix is the
/// newest order.
inline std::string OrderCustomerKey(uint32_t w, uint32_t d, uint32_t c,
                                    uint32_t o) {
  std::string k;
  AppendU32(&k, w);
  AppendU32(&k, d);
  AppendU32(&k, c);
  AppendU32(&k, ~o);
  return k;
}

inline std::string NewOrderKey(uint32_t w, uint32_t d, uint32_t o) {
  return OrderKey(w, d, o);
}

inline std::string OrderLineKey(uint32_t w, uint32_t d, uint32_t o,
                                uint32_t line) {
  std::string k;
  AppendU32(&k, w);
  AppendU32(&k, d);
  AppendU32(&k, o);
  AppendU32(&k, line);
  return k;
}

inline std::string ItemKey(uint32_t i) {
  std::string k;
  AppendU32(&k, i);
  return k;
}

inline std::string StockKey(uint32_t w, uint32_t i) {
  std::string k;
  AppendU32(&k, w);
  AppendU32(&k, i);
  return k;
}

inline std::string HistoryKey(uint32_t w, uint32_t d, uint64_t seq) {
  std::string k;
  AppendU32(&k, w);
  AppendU32(&k, d);
  AppendU32(&k, static_cast<uint32_t>(seq >> 32));
  AppendU32(&k, static_cast<uint32_t>(seq));
  return k;
}

/// True if `key` starts with `prefix`.
inline bool HasPrefix(std::string_view key, std::string_view prefix) {
  return key.size() >= prefix.size() &&
         key.substr(0, prefix.size()) == prefix;
}

}  // namespace lss::tpcc

#endif  // LSS_TPCC_KEYS_H_
