#ifndef LSS_TPCC_TPCC_RANDOM_H_
#define LSS_TPCC_TPCC_RANDOM_H_

#include <cstdint>
#include <string>

#include "util/rng.h"

namespace lss {

/// TPC-C input generation helpers (TPC-C standard clauses 2.1.6, 4.3.2):
/// the non-uniform NURand distribution for customer/item selection, the
/// syllable-based customer last names, and random alphanumeric strings.
class TpccRandom {
 public:
  explicit TpccRandom(uint64_t seed) : rng_(seed) {}

  /// Uniform integer in [lo, hi].
  int64_t Uniform(int64_t lo, int64_t hi) { return rng_.NextInRange(lo, hi); }

  double UniformDouble() { return rng_.NextDouble(); }

  /// NURand(A, x, y) = (((rand(0,A) | rand(x,y)) + C) % (y - x + 1)) + x.
  int64_t NURand(int64_t a, int64_t x, int64_t y);

  /// Customer last name for `num` in [0, 999], built from three
  /// syllables (clause 4.3.2.3).
  static std::string LastName(int num);

  /// Last-name number for the load phase (uniform 0..999) and the run
  /// phase (NURand(255, 0, 999)).
  std::string RandomLastNameLoad() {
    return LastName(static_cast<int>(Uniform(0, 999)));
  }
  std::string RandomLastNameRun() {
    return LastName(static_cast<int>(NURand(255, 0, 999)));
  }

  /// Random alphanumeric string with length in [lo, hi].
  std::string AString(int lo, int hi);
  /// Random numeric string with length in [lo, hi].
  std::string NString(int lo, int hi);

  Rng& rng() { return rng_; }

 private:
  // The TPC-C C constants for NURand; fixed arbitrary values are
  // permitted for a single data set.
  static constexpr int64_t kC255 = 91;
  static constexpr int64_t kC1023 = 453;
  static constexpr int64_t kC8191 = 3049;

  Rng rng_;
};

}  // namespace lss

#endif  // LSS_TPCC_TPCC_RANDOM_H_
