#ifndef LSS_TPCC_TPCC_DB_H_
#define LSS_TPCC_TPCC_DB_H_

#include <cstdint>
#include <memory>
#include <string>

#include "btree/btree.h"
#include "btree/buffer_pool.h"
#include "btree/pager.h"
#include "core/types.h"
#include "tpcc/schema.h"
#include "tpcc/tpcc_random.h"
#include "workload/trace.h"

namespace lss::tpcc {

/// Cardinalities and engine knobs. Defaults are the TPC-C standard's
/// per-warehouse numbers; tests and benches scale them down — what the
/// cleaning experiment needs is the *pattern* of page writes, which is
/// governed by the schema, the transaction mix, and the cache-to-database
/// ratio, not by absolute size.
struct TpccConfig {
  uint32_t warehouses = 1;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 3000;
  uint32_t items = 100000;
  /// Initial orders per district (one per customer, permuted), the first
  /// ~70% already delivered.
  uint32_t orders_per_district = 3000;
  /// Buffer cache size in 4 KB pages (the paper's "4 GB buffer cache"
  /// scaled to the database; ~10% of the DB is a comparable ratio).
  size_t buffer_pool_pages = 4096;
  uint64_t seed = 7;
};

/// A TPC-C database and transaction engine over the B+-tree storage
/// engine. All five standard transactions are implemented against eleven
/// trees (nine tables + two secondary indexes). Page-write I/O (buffer
/// pool write-backs) is recorded into an optional Trace, regenerating the
/// kind of trace the paper replays through the cleaning simulator (§6.3).
///
/// Simplifications (documented): single-threaded, logical timestamps, no
/// WAL (the trace captures data-page writes only, as the paper's did),
/// and the 1% intentionally-aborted New-Order transactions perform their
/// reads but skip their writes (there is no rollback machinery).
class TpccDb {
 public:
  enum class TxnType : int {
    kNewOrder = 0,
    kPayment = 1,
    kOrderStatus = 2,
    kDelivery = 3,
    kStockLevel = 4,
  };

  /// `trace` may be null; when set, every data-page write-back is
  /// appended to it.
  explicit TpccDb(const TpccConfig& config, Trace* trace = nullptr);

  TpccDb(const TpccDb&) = delete;
  TpccDb& operator=(const TpccDb&) = delete;

  /// Loads the initial database per the standard's population rules.
  void Populate();

  /// Runs one transaction drawn from the standard mix
  /// (45/43/4/4/4 New-Order/Payment/Order-Status/Delivery/Stock-Level).
  TxnType RunNextTransaction();

  // Individual transactions (public so tests can drive them directly).
  // Each returns true if it committed (New-Order aborts ~1% by spec).
  bool NewOrder();
  bool Payment();
  bool OrderStatus();
  bool Delivery();
  bool StockLevel();

  /// Writes back all dirty cached pages (a checkpoint); the trace sees
  /// them as page writes.
  void Checkpoint() { pool_.FlushAll(); }

  /// Database footprint in pages (grows as the benchmark runs).
  uint64_t PageCount() const { return pager_.PageCount(); }

  /// Transactions executed, by type.
  uint64_t TxnCount(TxnType t) const { return txn_counts_[static_cast<int>(t)]; }

  const TpccConfig& config() const { return config_; }
  const BufferPool& pool() const { return pool_; }

  /// TPC-C consistency conditions (clause 3.3.2 subset):
  ///   1. W_YTD = sum of its districts' D_YTD.
  ///   2. Per district, D_NEXT_O_ID - 1 = max(O_ID).
  ///   3. Every order has exactly O_OL_CNT order lines.
  ///   4. Every NEW_ORDER row references an existing undelivered order.
  /// Plus structural integrity of every tree.
  Status CheckConsistency();

 private:
  // Order-Status / Payment customer selection: 60% by last name (middle
  // matching row), 40% by NURand id. Returns false if no such customer.
  bool PickCustomer(uint32_t w, uint32_t d, CustomerRow* row);

  int64_t Now() { return static_cast<int64_t>(++clock_); }

  TpccConfig config_;
  TpccRandom rnd_;
  Pager pager_;
  BufferPool pool_;

  // Tables.
  std::unique_ptr<BTree> warehouse_;
  std::unique_ptr<BTree> district_;
  std::unique_ptr<BTree> customer_;
  std::unique_ptr<BTree> history_;
  std::unique_ptr<BTree> new_order_;
  std::unique_ptr<BTree> order_;
  std::unique_ptr<BTree> order_line_;
  std::unique_ptr<BTree> item_;
  std::unique_ptr<BTree> stock_;
  // Secondary indexes.
  std::unique_ptr<BTree> customer_name_idx_;
  std::unique_ptr<BTree> order_customer_idx_;

  uint64_t history_seq_ = 0;
  uint64_t clock_ = 0;
  uint64_t txn_counts_[5] = {0, 0, 0, 0, 0};
};

}  // namespace lss::tpcc

#endif  // LSS_TPCC_TPCC_DB_H_
