#ifndef LSS_TPCC_TPCC_DB_H_
#define LSS_TPCC_TPCC_DB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "btree/buffer_pool.h"
#include "btree/pager.h"
#include "core/types.h"
#include "tpcc/schema.h"
#include "tpcc/tpcc_random.h"
#include "workload/trace.h"

namespace lss::tpcc {

/// Cardinalities and engine knobs. Defaults are the TPC-C standard's
/// per-warehouse numbers; tests and benches scale them down — what the
/// cleaning experiment needs is the *pattern* of page writes, which is
/// governed by the schema, the transaction mix, and the cache-to-database
/// ratio, not by absolute size.
struct TpccConfig {
  uint32_t warehouses = 1;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 3000;
  uint32_t items = 100000;
  /// Initial orders per district (one per customer, permuted), the first
  /// ~70% already delivered.
  uint32_t orders_per_district = 3000;
  /// Buffer cache size in 4 KB pages (the paper's "4 GB buffer cache"
  /// scaled to the database; ~10% of the DB is a comparable ratio).
  size_t buffer_pool_pages = 4096;
  uint64_t seed = 7;
  /// Worker-session count. The warehouse-keyed tables are split into
  /// min(workers, warehouses) partition groups (warehouse w belongs to
  /// group (w-1) % groups) so traces stay comparable across layouts, but
  /// the B+-tree is latch-coupled and every tree supports concurrent
  /// access — workers may exceed warehouses, in which case several
  /// workers share a group (worker t drives group t % groups). 1 keeps
  /// the layout and behaviour of the single-threaded engine.
  uint32_t workers = 1;
  /// Buffer-pool replacement policy (btree/eviction_policy.h). Eviction
  /// order shapes the write-back trace, so trace caches must key on it.
  EvictionPolicyKind pool_policy = EvictionPolicyKind::kExactLru;

  /// Partition-group count a TpccDb built from this config will use —
  /// the one formula every layer (engine, trace generator) must share.
  uint32_t PartitionGroups() const {
    const uint32_t w = warehouses < 1 ? 1 : warehouses;
    return workers < 1 ? 1 : (workers < w ? workers : w);
  }
};

/// A TPC-C database and transaction engine over the B+-tree storage
/// engine. All five standard transactions are implemented against eleven
/// trees (nine tables + two secondary indexes). Page-write I/O (buffer
/// pool write-backs) is recorded through an optional observer — usually
/// into a Trace — regenerating the kind of trace the paper replays
/// through the cleaning simulator (§6.3).
///
/// Concurrency. The trees are latch-coupled B+-trees, safe for any mix
/// of concurrent readers and writers, so workers may outnumber
/// warehouses: there is no partition-group mutex. What remains above the
/// tree layer is row-level mutual exclusion for multi-step
/// read-modify-writes, provided by short fine-grained locks:
///   - one mutex per warehouse (Payment's W_YTD RMW),
///   - one mutex per district (NewOrder's o_id allocation, Payment's
///     D_YTD RMW, Delivery's atomic dequeue of the oldest NEW_ORDER),
///   - a striped row-lock table for stock and customer row RMWs
///     (NewOrder stock updates, Payment/Delivery customer updates).
/// A transaction holds at most one of these locks at a time (each
/// guards one self-contained RMW and is released before the next is
/// taken), so the scheme cannot deadlock regardless of remote
/// warehouses. Pure reads (OrderStatus, StockLevel, selection scans)
/// take no locks at all: the tree latches make each individual
/// operation atomic, and inserts keyed by a freshly allocated o_id or
/// history sequence number need no lock because the key is unique to
/// the allocating transaction. Every TPC-C consistency condition is a
/// sum/ownership invariant restored at transaction commit, so it holds
/// at any quiescent point. Worker threads drive transactions through
/// Session objects (their own RNG stream + home-warehouse set).
///
/// Simplifications (documented): logical timestamps, no WAL (the trace
/// captures data-page writes only, as the paper's did), and the 1%
/// intentionally-aborted New-Order transactions perform their reads but
/// skip their writes (there is no rollback machinery).
class TpccDb {
 public:
  enum class TxnType : int {
    kNewOrder = 0,
    kPayment = 1,
    kOrderStatus = 2,
    kDelivery = 3,
    kStockLevel = 4,
  };

  /// Per-worker transaction context: an RNG stream and the worker's home
  /// partition. Create via MakeSession; drive via the Session-taking
  /// transaction methods, one thread per session at a time.
  class Session {
   public:
    uint32_t worker() const { return worker_; }

   private:
    friend class TpccDb;
    Session(uint64_t seed, uint32_t worker) : rnd_(seed), worker_(worker) {}
    TpccRandom rnd_;
    uint32_t worker_ = 0;
  };

  /// `trace` may be null; when set, every data-page write-back is
  /// appended to it. This form is single-threaded: a Trace is not
  /// thread-safe, so use it only with workers == 1 (or drive the db from
  /// one thread).
  explicit TpccDb(const TpccConfig& config, Trace* trace = nullptr);

  /// Observer form for concurrent runs: `observer` sees every data-page
  /// write-back and must be thread-safe when transactions run from
  /// multiple threads (e.g. append to a thread-local trace buffer).
  TpccDb(const TpccConfig& config, BufferPool::WriteObserver observer);

  TpccDb(const TpccDb&) = delete;
  TpccDb& operator=(const TpccDb&) = delete;

  /// Loads the initial database per the standard's population rules.
  /// Equivalent to PopulateItems() + PopulateWorker(0..groups-1); runs
  /// the group loop on internal threads when partition_groups() > 1
  /// *and* no single-Trace observer needs attribution (callers wanting
  /// per-thread trace buffers drive PopulateWorker from their own
  /// threads instead).
  void Populate();

  /// Population, split for caller-owned threading: items first (shared
  /// table, call once), then one call per partition group in
  /// [0, partition_groups()) (safe to run all groups concurrently —
  /// each touches only its own group's warehouses).
  void PopulateItems();
  void PopulateWorker(uint32_t group);

  /// Number of worker sessions the database is laid out for
  /// (config.workers; may exceed warehouses — several sessions then
  /// share a partition group).
  uint32_t workers() const {
    return config_.workers < 1 ? 1 : config_.workers;
  }

  /// Number of partition groups (min(config.workers, warehouses)).
  uint32_t partition_groups() const {
    return static_cast<uint32_t>(parts_.size());
  }

  /// A session for `worker` in [0, workers()). Worker 0 with the default
  /// seed reproduces the single-threaded engine's home-warehouse draws.
  Session MakeSession(uint32_t worker) const;

  /// Runs one transaction drawn from the standard mix
  /// (45/43/4/4/4 New-Order/Payment/Order-Status/Delivery/Stock-Level)
  /// on `session`'s home partition.
  TxnType RunNextTransaction(Session& session);

  // Individual transactions (public so tests can drive them directly).
  // Each returns true if it committed (New-Order aborts ~1% by spec).
  bool NewOrder(Session& session);
  bool Payment(Session& session);
  bool OrderStatus(Session& session);
  bool Delivery(Session& session);
  bool StockLevel(Session& session);

  // Single-threaded conveniences driving a built-in session 0 (the
  // pre-refactor API; tests use these).
  TxnType RunNextTransaction() { return RunNextTransaction(session0_); }
  bool NewOrder() { return NewOrder(session0_); }
  bool Payment() { return Payment(session0_); }
  bool OrderStatus() { return OrderStatus(session0_); }
  bool Delivery() { return Delivery(session0_); }
  bool StockLevel() { return StockLevel(session0_); }

  /// Writes back all dirty cached pages (a fuzzy checkpoint); the trace
  /// sees them as page writes. Safe to call concurrently with running
  /// transactions: pinned frames are skipped and flushed later.
  void Checkpoint() { pool_.FlushAll(); }

  /// Database footprint in pages (grows as the benchmark runs).
  uint64_t PageCount() const { return pager_.PageCount(); }

  /// Transactions executed, by type (all sessions).
  uint64_t TxnCount(TxnType t) const {
    return txn_counts_[static_cast<int>(t)].load(std::memory_order_relaxed);
  }

  const TpccConfig& config() const { return config_; }
  const BufferPool& pool() const { return pool_; }

  /// TPC-C consistency conditions (clause 3.3.2 subset):
  ///   1. W_YTD = sum of its districts' D_YTD.
  ///   2. Per district, D_NEXT_O_ID - 1 = max(O_ID).
  ///   3. Every order has exactly O_OL_CNT order lines.
  ///   4. Every NEW_ORDER row references an existing undelivered order.
  /// Plus structural integrity of every tree. Call only while no
  /// transactions are running.
  Status CheckConsistency();

 private:
  // One worker group's share of the warehouse-keyed tables. The trees
  // themselves are safe for concurrent access; grouping exists so trace
  // layouts stay comparable across worker counts.
  struct Partition {
    std::unique_ptr<BTree> warehouse;
    std::unique_ptr<BTree> district;
    std::unique_ptr<BTree> customer;
    std::unique_ptr<BTree> history;
    std::unique_ptr<BTree> new_order;
    std::unique_ptr<BTree> order;
    std::unique_ptr<BTree> order_line;
    std::unique_ptr<BTree> stock;
    // Secondary indexes.
    std::unique_ptr<BTree> customer_name_idx;
    std::unique_ptr<BTree> order_customer_idx;
  };

  // Fine-grained lock state for one warehouse (see the class comment's
  // concurrency section). Cache-line aligned so neighbouring warehouses'
  // locks do not false-share.
  struct alignas(64) WarehouseState {
    std::mutex mu;  // W_YTD read-modify-write (Payment)
    std::atomic<uint64_t> history_seq{0};
    std::unique_ptr<std::mutex[]> district_mu;  // [districts_per_warehouse]
  };

  void InitPartitions();

  // The partition group warehouse `w` (1-based) belongs to.
  Partition& Part(uint32_t w) {
    return *parts_[(w - 1) % parts_.size()];
  }

  WarehouseState& WState(uint32_t w) { return *wstate_[w - 1]; }
  std::mutex& DistrictMutex(uint32_t w, uint32_t d) {
    return WState(w).district_mu[d - 1];
  }
  // Striped row locks for stock/customer RMWs; `h` is a row-identity
  // hash (table tag + key columns). Aliasing across stripes only adds
  // serialisation, never affects correctness.
  std::mutex& RowLockFor(uint64_t h) {
    return row_locks_[h % kRowLockStripes];
  }

  // Worker `worker`'s home-warehouse count and i-th (1-based) warehouse;
  // workers beyond the group count share their group's warehouses.
  uint32_t HomeWarehouseCount(uint32_t worker) const {
    const uint32_t groups = static_cast<uint32_t>(parts_.size());
    return (config_.warehouses - 1 - worker % groups) / groups + 1;
  }
  uint32_t HomeWarehouse(Session& s);

  // Populates one warehouse's rows (all tables but ITEM) with its own
  // deterministic RNG stream, so population parallelises per warehouse.
  void PopulateWarehouse(uint32_t w);

  // Order-Status / Payment customer selection: 60% by last name (middle
  // matching row), 40% by NURand id. Returns false if no such customer.
  // Lock-free: the name index is read-only after Populate and the row
  // fetch is a single tree read; RMW callers re-read the chosen row
  // under its row lock.
  bool PickCustomer(Session& s, uint32_t w, uint32_t d, CustomerRow* row);

  int64_t Now() {
    return static_cast<int64_t>(
        clock_.fetch_add(1, std::memory_order_relaxed) + 1);
  }

  TpccConfig config_;
  TpccRandom rnd_;  // population (items); not used by transactions
  Pager pager_;
  BufferPool pool_;

  std::vector<std::unique_ptr<Partition>> parts_;
  std::unique_ptr<BTree> item_;  // shared; read-only after Populate

  static constexpr size_t kRowLockStripes = 1024;
  std::vector<std::unique_ptr<WarehouseState>> wstate_;  // [warehouses]
  std::unique_ptr<std::mutex[]> row_locks_;

  Session session0_;
  /// True when constructed over a single (not thread-safe) Trace;
  /// Populate then stays on the calling thread.
  bool single_threaded_observer_ = false;
  std::atomic<uint64_t> clock_{0};
  std::atomic<uint64_t> txn_counts_[5] = {};
};

}  // namespace lss::tpcc

#endif  // LSS_TPCC_TPCC_DB_H_
