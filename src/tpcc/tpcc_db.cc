#include "tpcc/tpcc_db.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <thread>
#include <vector>

#include "tpcc/keys.h"
#include "util/rng.h"

namespace lss::tpcc {

namespace {

BufferPool::WriteObserver MakeTraceObserver(Trace* trace) {
  if (trace == nullptr) return BufferPool::WriteObserver();
  return [trace](PageNo p) { trace->AppendWrite(p); };
}

// Row-identity hashes for the striped row-lock table. The tag keeps
// stock and customer rows from systematically sharing stripes.
uint64_t StockRowHash(uint32_t w, uint32_t i_id) {
  return SplitMix64((1ull << 40) ^ (static_cast<uint64_t>(w) << 20) ^ i_id);
}

uint64_t CustomerRowHash(uint32_t w, uint32_t d, uint32_t c) {
  return SplitMix64((2ull << 40) ^ (static_cast<uint64_t>(w) << 24) ^
                    (static_cast<uint64_t>(d) << 16) ^ c);
}

}  // namespace

TpccDb::TpccDb(const TpccConfig& config, Trace* trace)
    : TpccDb(config, MakeTraceObserver(trace)) {
  // A single Trace is not thread-safe; remember to keep Populate on this
  // thread.
  single_threaded_observer_ = trace != nullptr;
}

TpccDb::TpccDb(const TpccConfig& config, BufferPool::WriteObserver observer)
    : config_(config),
      rnd_(config.seed),
      pool_(&pager_, config.buffer_pool_pages, std::move(observer),
            /*partitions=*/0, config.pool_policy),
      session0_(config.seed, 0) {
  InitPartitions();
}

void TpccDb::InitPartitions() {
  const uint32_t groups = config_.PartitionGroups();
  parts_.reserve(groups);
  for (uint32_t p = 0; p < groups; ++p) {
    auto part = std::make_unique<Partition>();
    part->warehouse = std::make_unique<BTree>(&pool_);
    part->district = std::make_unique<BTree>(&pool_);
    part->customer = std::make_unique<BTree>(&pool_);
    part->history = std::make_unique<BTree>(&pool_);
    part->new_order = std::make_unique<BTree>(&pool_);
    part->order = std::make_unique<BTree>(&pool_);
    part->order_line = std::make_unique<BTree>(&pool_);
    part->stock = std::make_unique<BTree>(&pool_);
    part->customer_name_idx = std::make_unique<BTree>(&pool_);
    part->order_customer_idx = std::make_unique<BTree>(&pool_);
    parts_.push_back(std::move(part));
  }
  item_ = std::make_unique<BTree>(&pool_);

  wstate_.reserve(config_.warehouses);
  for (uint32_t w = 0; w < config_.warehouses; ++w) {
    auto ws = std::make_unique<WarehouseState>();
    ws->district_mu =
        std::make_unique<std::mutex[]>(config_.districts_per_warehouse);
    wstate_.push_back(std::move(ws));
  }
  row_locks_ = std::make_unique<std::mutex[]>(kRowLockStripes);
}

TpccDb::Session TpccDb::MakeSession(uint32_t worker) const {
  assert(worker < workers());
  // Worker 0 reproduces the built-in session's stream; other workers get
  // decorrelated streams off the same seed.
  return Session(config_.seed + worker * 0x9E3779B97F4A7C15ull, worker);
}

uint32_t TpccDb::HomeWarehouse(Session& s) {
  const uint32_t groups = static_cast<uint32_t>(parts_.size());
  const uint32_t g = s.worker_ % groups;
  const uint32_t count = HomeWarehouseCount(s.worker_);
  const uint32_t idx = static_cast<uint32_t>(s.rnd_.Uniform(1, count));
  return g + 1 + (idx - 1) * groups;
}

// --- Population ----------------------------------------------------------

void TpccDb::Populate() {
  PopulateItems();
  const uint32_t groups = partition_groups();
  if (groups > 1 && !single_threaded_observer_) {
    // Each thread populates only its own partition group, so the groups
    // are independent up to the (thread-safe) buffer pool and pager.
    std::vector<std::thread> threads;
    threads.reserve(groups);
    for (uint32_t t = 0; t < groups; ++t) {
      threads.emplace_back([this, t] { PopulateWorker(t); });
    }
    for (std::thread& th : threads) th.join();
  } else {
    for (uint32_t t = 0; t < groups; ++t) PopulateWorker(t);
  }
}

void TpccDb::PopulateItems() {
  // Items (shared across warehouses; read-only once loaded).
  for (uint32_t i = 1; i <= config_.items; ++i) {
    ItemRow row{};
    row.i_id = static_cast<int32_t>(i);
    row.i_im_id = static_cast<int32_t>(rnd_.Uniform(1, 10000));
    SetField(row.i_name, rnd_.AString(14, 24));
    row.i_price = 1.0 + rnd_.UniformDouble() * 99.0;
    SetField(row.i_data, rnd_.AString(26, 40));
    item_->Insert(ItemKey(i), RowView(row));
  }
}

void TpccDb::PopulateWorker(uint32_t group) {
  const uint32_t groups = static_cast<uint32_t>(parts_.size());
  assert(group < groups);
  for (uint32_t w = group + 1; w <= config_.warehouses; w += groups) {
    PopulateWarehouse(w);
  }
}

void TpccDb::PopulateWarehouse(uint32_t w) {
  // A per-warehouse RNG stream keeps population deterministic no matter
  // how warehouses are spread over threads.
  TpccRandom wrnd(config_.seed * 0x9E3779B97F4A7C15ull + w);
  Partition& part = Part(w);
  WarehouseState& ws = WState(w);

  WarehouseRow wr{};
  wr.w_id = static_cast<int32_t>(w);
  SetField(wr.w_name, wrnd.AString(6, 10));
  SetField(wr.w_street_1, wrnd.AString(10, 20));
  SetField(wr.w_street_2, wrnd.AString(10, 20));
  SetField(wr.w_city, wrnd.AString(10, 20));
  SetField(wr.w_state, wrnd.AString(2, 2));
  SetField(wr.w_zip, wrnd.NString(9, 9));
  wr.w_tax = wrnd.UniformDouble() * 0.2;
  wr.w_ytd = 300000.0;
  part.warehouse->Insert(WarehouseKey(w), RowView(wr));

  // Stock.
  for (uint32_t i = 1; i <= config_.items; ++i) {
    StockRow sr{};
    sr.s_i_id = static_cast<int32_t>(i);
    sr.s_w_id = static_cast<int32_t>(w);
    sr.s_quantity = static_cast<int32_t>(wrnd.Uniform(10, 100));
    for (auto& dist : sr.s_dist) SetField(dist, wrnd.AString(24, 24));
    sr.s_ytd = 0;
    sr.s_order_cnt = 0;
    sr.s_remote_cnt = 0;
    SetField(sr.s_data, wrnd.AString(26, 40));
    part.stock->Insert(StockKey(w, i), RowView(sr));
  }

  for (uint32_t d = 1; d <= config_.districts_per_warehouse; ++d) {
    DistrictRow dr{};
    dr.d_id = static_cast<int32_t>(d);
    dr.d_w_id = static_cast<int32_t>(w);
    SetField(dr.d_name, wrnd.AString(6, 10));
    SetField(dr.d_street_1, wrnd.AString(10, 20));
    SetField(dr.d_street_2, wrnd.AString(10, 20));
    SetField(dr.d_city, wrnd.AString(10, 20));
    SetField(dr.d_state, wrnd.AString(2, 2));
    SetField(dr.d_zip, wrnd.NString(9, 9));
    dr.d_tax = wrnd.UniformDouble() * 0.2;
    dr.d_ytd = 30000.0;
    dr.d_next_o_id = static_cast<int32_t>(config_.orders_per_district + 1);
    part.district->Insert(DistrictKey(w, d), RowView(dr));

    // Customers (+1 history row each).
    for (uint32_t c = 1; c <= config_.customers_per_district; ++c) {
      CustomerRow cr{};
      cr.c_id = static_cast<int32_t>(c);
      cr.c_d_id = static_cast<int32_t>(d);
      cr.c_w_id = static_cast<int32_t>(w);
      SetField(cr.c_first, wrnd.AString(8, 16));
      SetField(cr.c_middle, "OE");
      // First 1000 customers get sequential names so every name exists.
      const std::string last = (c <= 1000)
                                   ? TpccRandom::LastName((c - 1) % 1000)
                                   : wrnd.RandomLastNameLoad();
      SetField(cr.c_last, last);
      SetField(cr.c_street_1, wrnd.AString(10, 20));
      SetField(cr.c_street_2, wrnd.AString(10, 20));
      SetField(cr.c_city, wrnd.AString(10, 20));
      SetField(cr.c_state, wrnd.AString(2, 2));
      SetField(cr.c_zip, wrnd.NString(9, 9));
      SetField(cr.c_phone, wrnd.NString(16, 16));
      cr.c_since = Now();
      SetField(cr.c_credit, wrnd.Uniform(1, 10) == 1 ? "BC" : "GC");
      cr.c_credit_lim = 50000.0;
      cr.c_discount = wrnd.UniformDouble() * 0.5;
      cr.c_balance = -10.0;
      cr.c_ytd_payment = 10.0;
      cr.c_payment_cnt = 1;
      cr.c_delivery_cnt = 0;
      SetField(cr.c_data, wrnd.AString(200, 300));
      part.customer->Insert(CustomerKey(w, d, c), RowView(cr));
      part.customer_name_idx->Insert(CustomerNameKey(w, d, last, c),
                                     std::string_view());

      HistoryRow hr{};
      hr.h_c_id = cr.c_id;
      hr.h_c_d_id = cr.c_d_id;
      hr.h_c_w_id = cr.c_w_id;
      hr.h_d_id = cr.c_d_id;
      hr.h_w_id = cr.c_w_id;
      hr.h_date = Now();
      hr.h_amount = 10.0;
      SetField(hr.h_data, wrnd.AString(12, 24));
      part.history->Insert(
          HistoryKey(w, d,
                     ws.history_seq.fetch_add(1, std::memory_order_relaxed)),
          RowView(hr));
    }

    // Orders: one per customer, customer ids permuted; the oldest ~70%
    // delivered, the rest pending in NEW_ORDER.
    std::vector<uint32_t> cust_perm(config_.customers_per_district);
    for (uint32_t c = 0; c < cust_perm.size(); ++c) cust_perm[c] = c + 1;
    for (size_t i = cust_perm.size(); i > 1; --i) {
      std::swap(cust_perm[i - 1], cust_perm[wrnd.rng().NextBounded(i)]);
    }
    const uint32_t delivered_upto =
        config_.orders_per_district * 7 / 10;
    for (uint32_t o = 1; o <= config_.orders_per_district; ++o) {
      const uint32_t c = cust_perm[(o - 1) % cust_perm.size()];
      OrderRow orow{};
      orow.o_id = static_cast<int32_t>(o);
      orow.o_d_id = static_cast<int32_t>(d);
      orow.o_w_id = static_cast<int32_t>(w);
      orow.o_c_id = static_cast<int32_t>(c);
      orow.o_entry_d = Now();
      orow.o_ol_cnt = static_cast<int32_t>(wrnd.Uniform(5, 15));
      orow.o_carrier_id =
          o <= delivered_upto ? static_cast<int32_t>(wrnd.Uniform(1, 10))
                              : 0;
      orow.o_all_local = 1;
      part.order->Insert(OrderKey(w, d, o), RowView(orow));
      part.order_customer_idx->Insert(OrderCustomerKey(w, d, c, o),
                                      std::string_view());
      for (int32_t l = 1; l <= orow.o_ol_cnt; ++l) {
        OrderLineRow ol{};
        ol.ol_o_id = orow.o_id;
        ol.ol_d_id = orow.o_d_id;
        ol.ol_w_id = orow.o_w_id;
        ol.ol_number = l;
        ol.ol_i_id = static_cast<int32_t>(wrnd.Uniform(1, config_.items));
        ol.ol_supply_w_id = orow.o_w_id;
        ol.ol_delivery_d = o <= delivered_upto ? orow.o_entry_d : 0;
        ol.ol_quantity = 5;
        ol.ol_amount =
            o <= delivered_upto ? 0.0 : wrnd.UniformDouble() * 9999.99;
        SetField(ol.ol_dist_info, wrnd.AString(24, 24));
        part.order_line->Insert(
            OrderLineKey(w, d, o, static_cast<uint32_t>(l)), RowView(ol));
      }
      if (o > delivered_upto) {
        NewOrderRow no{};
        no.no_o_id = orow.o_id;
        no.no_d_id = orow.o_d_id;
        no.no_w_id = orow.o_w_id;
        part.new_order->Insert(NewOrderKey(w, d, o), RowView(no));
      }
    }
  }
}

// --- Transactions ---------------------------------------------------------

TpccDb::TxnType TpccDb::RunNextTransaction(Session& s) {
  const int64_t r = s.rnd_.Uniform(1, 100);
  TxnType t;
  if (r <= 45) {
    t = TxnType::kNewOrder;
    NewOrder(s);
  } else if (r <= 88) {
    t = TxnType::kPayment;
    Payment(s);
  } else if (r <= 92) {
    t = TxnType::kOrderStatus;
    OrderStatus(s);
  } else if (r <= 96) {
    t = TxnType::kDelivery;
    Delivery(s);
  } else {
    t = TxnType::kStockLevel;
    StockLevel(s);
  }
  txn_counts_[static_cast<int>(t)].fetch_add(1, std::memory_order_relaxed);
  return t;
}

bool TpccDb::NewOrder(Session& s) {
  const uint32_t w = HomeWarehouse(s);
  const uint32_t d = static_cast<uint32_t>(
      s.rnd_.Uniform(1, config_.districts_per_warehouse));
  const uint32_t c = static_cast<uint32_t>(
      s.rnd_.NURand(1023, 1, config_.customers_per_district));
  const int ol_cnt = static_cast<int>(s.rnd_.Uniform(5, 15));
  // 1% of New-Order transactions use an invalid item and roll back
  // (clause 2.4.1.4). Without undo we emulate the effect: reads happen,
  // writes do not.
  const bool rollback = s.rnd_.Uniform(1, 100) == 1;

  Partition& home = Part(w);

  std::string buf;
  WarehouseRow wr;
  if (!home.warehouse->Get(WarehouseKey(w), &buf) || !RowFrom(buf, &wr)) {
    return false;
  }
  DistrictRow dr;
  if (!home.district->Get(DistrictKey(w, d), &buf) || !RowFrom(buf, &dr)) {
    return false;
  }
  CustomerRow cr;
  if (!home.customer->Get(CustomerKey(w, d, c), &buf) || !RowFrom(buf, &cr)) {
    return false;
  }

  if (rollback) {
    // Read the items that would have been ordered, then abort. ITEM is
    // shared and read-only, so no latch is needed for it.
    for (int l = 0; l < ol_cnt; ++l) {
      const uint32_t i =
          static_cast<uint32_t>(s.rnd_.NURand(8191, 1, config_.items));
      item_->Get(ItemKey(i), &buf);
    }
    return false;
  }

  // o_id allocation: the district row's only RMW in this transaction,
  // re-read and bumped under the district mutex. Ownership of the fresh
  // o_id makes every insert below contention-free.
  uint32_t o_id;
  {
    std::lock_guard<std::mutex> dl(DistrictMutex(w, d));
    if (!home.district->Get(DistrictKey(w, d), &buf) || !RowFrom(buf, &dr)) {
      return false;
    }
    o_id = static_cast<uint32_t>(dr.d_next_o_id);
    dr.d_next_o_id += 1;
    home.district->Put(DistrictKey(w, d), RowView(dr));
  }

  OrderRow orow{};
  orow.o_id = static_cast<int32_t>(o_id);
  orow.o_d_id = static_cast<int32_t>(d);
  orow.o_w_id = static_cast<int32_t>(w);
  orow.o_c_id = static_cast<int32_t>(c);
  orow.o_entry_d = Now();
  orow.o_carrier_id = 0;
  orow.o_ol_cnt = ol_cnt;
  orow.o_all_local = 1;

  double total = 0.0;
  for (int l = 1; l <= ol_cnt; ++l) {
    const uint32_t i_id =
        static_cast<uint32_t>(s.rnd_.NURand(8191, 1, config_.items));
    // 1% remote supply warehouse when there is more than one.
    uint32_t supply_w = w;
    if (config_.warehouses > 1 && s.rnd_.Uniform(1, 100) == 1) {
      do {
        supply_w =
            static_cast<uint32_t>(s.rnd_.Uniform(1, config_.warehouses));
      } while (supply_w == w);
      orow.o_all_local = 0;
    }
    const int32_t qty = static_cast<int32_t>(s.rnd_.Uniform(1, 10));

    ItemRow ir;
    if (!item_->Get(ItemKey(i_id), &buf) || !RowFrom(buf, &ir)) return false;

    // Stock read-modify-write under the row's striped lock — the same
    // path whether the supplying warehouse is local or remote, since the
    // lock names the row, not a partition.
    StockRow sr;
    Partition& sp = Part(supply_w);
    {
      std::lock_guard<std::mutex> rl(
          RowLockFor(StockRowHash(supply_w, i_id)));
      if (!sp.stock->Get(StockKey(supply_w, i_id), &buf) ||
          !RowFrom(buf, &sr)) {
        return false;
      }
      sr.s_quantity = sr.s_quantity >= qty + 10 ? sr.s_quantity - qty
                                                : sr.s_quantity - qty + 91;
      sr.s_ytd += qty;
      sr.s_order_cnt += 1;
      if (supply_w != w) sr.s_remote_cnt += 1;
      sp.stock->Put(StockKey(supply_w, i_id), RowView(sr));
    }

    OrderLineRow ol{};
    ol.ol_o_id = static_cast<int32_t>(o_id);
    ol.ol_d_id = static_cast<int32_t>(d);
    ol.ol_w_id = static_cast<int32_t>(w);
    ol.ol_number = l;
    ol.ol_i_id = static_cast<int32_t>(i_id);
    ol.ol_supply_w_id = static_cast<int32_t>(supply_w);
    ol.ol_delivery_d = 0;
    ol.ol_quantity = qty;
    ol.ol_amount = qty * ir.i_price;
    std::memcpy(ol.ol_dist_info, sr.s_dist[d - 1], sizeof(ol.ol_dist_info));
    home.order_line->Insert(
        OrderLineKey(w, d, o_id, static_cast<uint32_t>(l)), RowView(ol));
    total += ol.ol_amount;
  }
  (void)total;

  // ORDER before NEW_ORDER: consistency condition 4 (every NEW_ORDER
  // row references an existing undelivered order) then holds even for
  // an observer racing this commit, not just at quiescent points.
  home.order->Insert(OrderKey(w, d, o_id), RowView(orow));
  home.order_customer_idx->Insert(OrderCustomerKey(w, d, c, o_id),
                                  std::string_view());
  NewOrderRow no{};
  no.no_o_id = static_cast<int32_t>(o_id);
  no.no_d_id = static_cast<int32_t>(d);
  no.no_w_id = static_cast<int32_t>(w);
  home.new_order->Insert(NewOrderKey(w, d, o_id), RowView(no));
  return true;
}

bool TpccDb::PickCustomer(Session& s, uint32_t w, uint32_t d,
                          CustomerRow* row) {
  Partition& part = Part(w);
  std::string buf;
  if (s.rnd_.Uniform(1, 100) <= 60) {
    // By last name: collect matches, take the middle one (clause 2.5.2.2).
    // Scaled-down databases seed fewer than the standard's 1000 names
    // (population gives customer c <= 1000 name (c-1) % 1000), so the
    // run-phase draw is folded into the seeded name space.
    const int name_space = static_cast<int>(
        std::min<uint32_t>(1000, config_.customers_per_district));
    const int name_num =
        static_cast<int>(s.rnd_.NURand(255, 0, 999)) % name_space;
    const std::string last = TpccRandom::LastName(name_num);
    const std::string prefix = CustomerNamePrefix(w, d, last);
    std::vector<uint32_t> ids;
    for (auto it = part.customer_name_idx->Seek(prefix);
         it.Valid() && HasPrefix(it.key(), prefix); it.Next()) {
      ids.push_back(ReadU32(it.key(), 24));
    }
    if (ids.empty()) return false;
    const uint32_t c = ids[ids.size() / 2];
    return part.customer->Get(CustomerKey(w, d, c), &buf) &&
           RowFrom(buf, row);
  }
  const uint32_t c = static_cast<uint32_t>(
      s.rnd_.NURand(1023, 1, config_.customers_per_district));
  return part.customer->Get(CustomerKey(w, d, c), &buf) && RowFrom(buf, row);
}

bool TpccDb::Payment(Session& s) {
  const uint32_t w = HomeWarehouse(s);
  const uint32_t d = static_cast<uint32_t>(
      s.rnd_.Uniform(1, config_.districts_per_warehouse));
  // 85% local customer; 15% from a remote warehouse when there is one.
  uint32_t c_w = w;
  uint32_t c_d = d;
  if (config_.warehouses > 1 && s.rnd_.Uniform(1, 100) > 85) {
    do {
      c_w = static_cast<uint32_t>(s.rnd_.Uniform(1, config_.warehouses));
    } while (c_w == w);
    c_d = static_cast<uint32_t>(
        s.rnd_.Uniform(1, config_.districts_per_warehouse));
  }
  const double amount = 1.0 + s.rnd_.UniformDouble() * 4999.0;

  Partition& home = Part(w);

  // W_YTD read-modify-write under the warehouse mutex.
  std::string buf;
  WarehouseRow wr;
  {
    std::lock_guard<std::mutex> wl(WState(w).mu);
    if (!home.warehouse->Get(WarehouseKey(w), &buf) || !RowFrom(buf, &wr)) {
      return false;
    }
    wr.w_ytd += amount;
    home.warehouse->Put(WarehouseKey(w), RowView(wr));
  }

  // D_YTD read-modify-write under the district mutex. Both YTD bumps
  // commit before the transaction can block on any other lock, so the
  // condition-1 sum invariant holds at every quiescent point.
  DistrictRow dr;
  {
    std::lock_guard<std::mutex> dl(DistrictMutex(w, d));
    if (!home.district->Get(DistrictKey(w, d), &buf) || !RowFrom(buf, &dr)) {
      return false;
    }
    dr.d_ytd += amount;
    home.district->Put(DistrictKey(w, d), RowView(dr));
  }

  // Customer selection is a lock-free scan; PickCustomer's snapshot may
  // be stale by the time we get the row lock, so the RMW re-reads the
  // chosen row under it.
  CustomerRow cr;
  if (!PickCustomer(s, c_w, c_d, &cr)) return false;
  Partition& cp = Part(c_w);
  const uint32_t c_id = static_cast<uint32_t>(cr.c_id);
  const std::string ckey = CustomerKey(c_w, c_d, c_id);
  {
    std::lock_guard<std::mutex> rl(
        RowLockFor(CustomerRowHash(c_w, c_d, c_id)));
    if (!cp.customer->Get(ckey, &buf) || !RowFrom(buf, &cr)) return false;
    cr.c_balance -= amount;
    cr.c_ytd_payment += amount;
    cr.c_payment_cnt += 1;
    if (GetField(cr.c_credit) == "BC") {
      // Bad credit: prepend payment info to c_data (clause 2.5.2.2).
      char info[64];
      std::snprintf(info, sizeof(info), "%d %d %d %d %d %.2f|", cr.c_id,
                    cr.c_d_id, cr.c_w_id, d, w, amount);
      std::string data = info + GetField(cr.c_data);
      SetField(cr.c_data, data);
    }
    cp.customer->Put(ckey, RowView(cr));
  }

  HistoryRow hr{};
  hr.h_c_id = cr.c_id;
  hr.h_c_d_id = cr.c_d_id;
  hr.h_c_w_id = cr.c_w_id;
  hr.h_d_id = static_cast<int32_t>(d);
  hr.h_w_id = static_cast<int32_t>(w);
  hr.h_date = Now();
  hr.h_amount = amount;
  SetField(hr.h_data, GetField(wr.w_name) + "    " + GetField(dr.d_name));
  // History keys embed a per-warehouse atomic sequence, so the insert
  // needs no lock: the key is unique to this transaction.
  home.history->Insert(
      HistoryKey(w, d,
                 WState(w).history_seq.fetch_add(1,
                                                 std::memory_order_relaxed)),
      RowView(hr));
  return true;
}

bool TpccDb::OrderStatus(Session& s) {
  const uint32_t w = HomeWarehouse(s);
  const uint32_t d = static_cast<uint32_t>(
      s.rnd_.Uniform(1, config_.districts_per_warehouse));
  // Read-only: every step is a single (internally latched) tree read,
  // so no locks are taken.
  Partition& home = Part(w);

  CustomerRow cr;
  if (!PickCustomer(s, w, d, &cr)) return false;

  // Most recent order via the complement-keyed index.
  const std::string prefix =
      OrderCustomerKey(w, d, static_cast<uint32_t>(cr.c_id), ~0u)
          .substr(0, 12);
  auto it = home.order_customer_idx->Seek(prefix);
  if (!it.Valid() || !HasPrefix(it.key(), prefix)) return false;
  const uint32_t o_id = ~ReadU32(it.key(), 12);

  std::string buf;
  OrderRow orow;
  if (!home.order->Get(OrderKey(w, d, o_id), &buf) || !RowFrom(buf, &orow)) {
    return false;
  }
  for (int32_t l = 1; l <= orow.o_ol_cnt; ++l) {
    home.order_line->Get(OrderLineKey(w, d, o_id, static_cast<uint32_t>(l)),
                         &buf);
  }
  return true;
}

bool TpccDb::Delivery(Session& s) {
  const uint32_t w = HomeWarehouse(s);
  const int32_t carrier = static_cast<int32_t>(s.rnd_.Uniform(1, 10));
  bool delivered_any = false;
  std::string buf;

  Partition& home = Part(w);

  for (uint32_t d = 1; d <= config_.districts_per_warehouse; ++d) {
    // Dequeue the oldest undelivered order atomically under the district
    // mutex. A successful delete confers exclusive ownership of o_id, so
    // the order / order-line updates below need no further locking.
    uint32_t o_id = 0;
    bool claimed = false;
    {
      std::lock_guard<std::mutex> dl(DistrictMutex(w, d));
      const std::string prefix = NewOrderKey(w, d, 0).substr(0, 8);
      auto it = home.new_order->Seek(prefix);
      if (it.Valid() && HasPrefix(it.key(), prefix)) {
        o_id = ReadU32(it.key(), 8);
        claimed = home.new_order->Delete(NewOrderKey(w, d, o_id));
      }
    }
    if (!claimed) continue;

    OrderRow orow;
    if (!home.order->Get(OrderKey(w, d, o_id), &buf) ||
        !RowFrom(buf, &orow)) {
      continue;
    }
    orow.o_carrier_id = carrier;
    home.order->Put(OrderKey(w, d, o_id), RowView(orow));

    double total = 0.0;
    const int64_t now = Now();
    for (int32_t l = 1; l <= orow.o_ol_cnt; ++l) {
      OrderLineRow ol;
      const std::string key =
          OrderLineKey(w, d, o_id, static_cast<uint32_t>(l));
      if (!home.order_line->Get(key, &buf) || !RowFrom(buf, &ol)) continue;
      ol.ol_delivery_d = now;
      total += ol.ol_amount;
      home.order_line->Put(key, RowView(ol));
    }

    // Customer balance RMW shares the striped row locks with Payment.
    CustomerRow cr;
    const uint32_t c_id = static_cast<uint32_t>(orow.o_c_id);
    const std::string ckey = CustomerKey(w, d, c_id);
    {
      std::lock_guard<std::mutex> rl(
          RowLockFor(CustomerRowHash(w, d, c_id)));
      if (home.customer->Get(ckey, &buf) && RowFrom(buf, &cr)) {
        cr.c_balance += total;
        cr.c_delivery_cnt += 1;
        home.customer->Put(ckey, RowView(cr));
      }
    }
    delivered_any = true;
  }
  return delivered_any;
}

bool TpccDb::StockLevel(Session& s) {
  const uint32_t w = HomeWarehouse(s);
  const uint32_t d = static_cast<uint32_t>(
      s.rnd_.Uniform(1, config_.districts_per_warehouse));
  const int32_t threshold = static_cast<int32_t>(s.rnd_.Uniform(10, 20));

  // Read-only: the district fetch and each stock probe are single tree
  // reads, so no locks are taken (the scan sees some consistent-enough
  // recent window, which is all clause 2.8 needs).
  Partition& home = Part(w);

  std::string buf;
  DistrictRow dr;
  if (!home.district->Get(DistrictKey(w, d), &buf) || !RowFrom(buf, &dr)) {
    return false;
  }
  const uint32_t next = static_cast<uint32_t>(dr.d_next_o_id);
  const uint32_t lo = next > 20 ? next - 20 : 1;

  // Distinct items in the last 20 orders' lines with low stock.
  std::set<int32_t> low;
  const std::string begin = OrderLineKey(w, d, lo, 0);
  const std::string end = OrderLineKey(w, d, next, 0);
  for (auto it = home.order_line->Seek(begin); it.Valid() && it.key() < end;
       it.Next()) {
    OrderLineRow ol;
    if (!RowFrom(it.value(), &ol)) continue;
    StockRow sr;
    if (home.stock->Get(StockKey(w, static_cast<uint32_t>(ol.ol_i_id)),
                        &buf) &&
        RowFrom(buf, &sr) && sr.s_quantity < threshold) {
      low.insert(ol.ol_i_id);
    }
  }
  return true;
}

// --- Consistency -----------------------------------------------------------

Status TpccDb::CheckConsistency() {
  {
    Status s = item_->CheckIntegrity();
    if (!s.ok()) return s;
  }
  for (const auto& part : parts_) {
    for (BTree* t :
         {part->warehouse.get(), part->district.get(), part->customer.get(),
          part->history.get(), part->new_order.get(), part->order.get(),
          part->order_line.get(), part->stock.get(),
          part->customer_name_idx.get(), part->order_customer_idx.get()}) {
      Status s = t->CheckIntegrity();
      if (!s.ok()) return s;
    }
  }

  std::string buf;
  for (uint32_t w = 1; w <= config_.warehouses; ++w) {
    Partition& part = Part(w);
    WarehouseRow wr;
    if (!part.warehouse->Get(WarehouseKey(w), &buf) || !RowFrom(buf, &wr)) {
      return Status::Corruption("warehouse row missing");
    }
    double district_ytd = 0.0;
    for (uint32_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      DistrictRow dr;
      if (!part.district->Get(DistrictKey(w, d), &buf) ||
          !RowFrom(buf, &dr)) {
        return Status::Corruption("district row missing");
      }
      district_ytd += dr.d_ytd - 30000.0;

      // Condition 2: D_NEXT_O_ID - 1 == max order id in district.
      const uint32_t expect_max = static_cast<uint32_t>(dr.d_next_o_id) - 1;
      if (!part.order->Get(OrderKey(w, d, expect_max), &buf)) {
        return Status::Corruption("max order id != d_next_o_id - 1");
      }
      if (part.order->Get(OrderKey(w, d, expect_max + 1), nullptr)) {
        return Status::Corruption("order beyond d_next_o_id");
      }

      // Condition 4: every NEW_ORDER row has an undelivered order.
      const std::string prefix = NewOrderKey(w, d, 0).substr(0, 8);
      for (auto it = part.new_order->Seek(prefix);
           it.Valid() && HasPrefix(it.key(), prefix); it.Next()) {
        const uint32_t o_id = ReadU32(it.key(), 8);
        OrderRow orow;
        if (!part.order->Get(OrderKey(w, d, o_id), &buf) ||
            !RowFrom(buf, &orow)) {
          return Status::Corruption("new_order without order");
        }
        if (orow.o_carrier_id != 0) {
          return Status::Corruption("new_order for delivered order");
        }
      }
    }
    // Condition 1: W_YTD == 300000 + sum of district YTD deltas.
    if (std::abs(wr.w_ytd - 300000.0 - district_ytd) > 1e-4) {
      return Status::Corruption("w_ytd != sum(d_ytd)");
    }
  }

  // Condition 3 (sampled over the first warehouse/district to bound
  // cost): every order has exactly o_ol_cnt lines.
  Partition& p1 = Part(1);
  for (uint32_t o = 1;; ++o) {
    OrderRow orow;
    if (!p1.order->Get(OrderKey(1, 1, o), &buf) || !RowFrom(buf, &orow)) {
      break;
    }
    for (int32_t l = 1; l <= orow.o_ol_cnt; ++l) {
      if (!p1.order_line->Get(
              OrderLineKey(1, 1, o, static_cast<uint32_t>(l)), nullptr)) {
        return Status::Corruption("missing order line");
      }
    }
    if (p1.order_line->Get(
            OrderLineKey(1, 1, o, static_cast<uint32_t>(orow.o_ol_cnt) + 1),
            nullptr)) {
      return Status::Corruption("extra order line");
    }
  }
  return Status::OK();
}

}  // namespace lss::tpcc
