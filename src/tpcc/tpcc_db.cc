#include "tpcc/tpcc_db.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <vector>

#include "tpcc/keys.h"

namespace lss::tpcc {

TpccDb::TpccDb(const TpccConfig& config, Trace* trace)
    : config_(config),
      rnd_(config.seed),
      pool_(&pager_, config.buffer_pool_pages,
            trace == nullptr
                ? BufferPool::WriteObserver()
                : [trace](PageNo p) { trace->AppendWrite(p); }) {
  warehouse_ = std::make_unique<BTree>(&pool_);
  district_ = std::make_unique<BTree>(&pool_);
  customer_ = std::make_unique<BTree>(&pool_);
  history_ = std::make_unique<BTree>(&pool_);
  new_order_ = std::make_unique<BTree>(&pool_);
  order_ = std::make_unique<BTree>(&pool_);
  order_line_ = std::make_unique<BTree>(&pool_);
  item_ = std::make_unique<BTree>(&pool_);
  stock_ = std::make_unique<BTree>(&pool_);
  customer_name_idx_ = std::make_unique<BTree>(&pool_);
  order_customer_idx_ = std::make_unique<BTree>(&pool_);
}

// --- Population ----------------------------------------------------------

void TpccDb::Populate() {
  // Items (shared across warehouses).
  for (uint32_t i = 1; i <= config_.items; ++i) {
    ItemRow row{};
    row.i_id = static_cast<int32_t>(i);
    row.i_im_id = static_cast<int32_t>(rnd_.Uniform(1, 10000));
    SetField(row.i_name, rnd_.AString(14, 24));
    row.i_price = 1.0 + rnd_.UniformDouble() * 99.0;
    SetField(row.i_data, rnd_.AString(26, 40));
    item_->Insert(ItemKey(i), RowView(row));
  }

  for (uint32_t w = 1; w <= config_.warehouses; ++w) {
    WarehouseRow wr{};
    wr.w_id = static_cast<int32_t>(w);
    SetField(wr.w_name, rnd_.AString(6, 10));
    SetField(wr.w_street_1, rnd_.AString(10, 20));
    SetField(wr.w_street_2, rnd_.AString(10, 20));
    SetField(wr.w_city, rnd_.AString(10, 20));
    SetField(wr.w_state, rnd_.AString(2, 2));
    SetField(wr.w_zip, rnd_.NString(9, 9));
    wr.w_tax = rnd_.UniformDouble() * 0.2;
    wr.w_ytd = 300000.0;
    warehouse_->Insert(WarehouseKey(w), RowView(wr));

    // Stock.
    for (uint32_t i = 1; i <= config_.items; ++i) {
      StockRow sr{};
      sr.s_i_id = static_cast<int32_t>(i);
      sr.s_w_id = static_cast<int32_t>(w);
      sr.s_quantity = static_cast<int32_t>(rnd_.Uniform(10, 100));
      for (auto& dist : sr.s_dist) SetField(dist, rnd_.AString(24, 24));
      sr.s_ytd = 0;
      sr.s_order_cnt = 0;
      sr.s_remote_cnt = 0;
      SetField(sr.s_data, rnd_.AString(26, 40));
      stock_->Insert(StockKey(w, i), RowView(sr));
    }

    for (uint32_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      DistrictRow dr{};
      dr.d_id = static_cast<int32_t>(d);
      dr.d_w_id = static_cast<int32_t>(w);
      SetField(dr.d_name, rnd_.AString(6, 10));
      SetField(dr.d_street_1, rnd_.AString(10, 20));
      SetField(dr.d_street_2, rnd_.AString(10, 20));
      SetField(dr.d_city, rnd_.AString(10, 20));
      SetField(dr.d_state, rnd_.AString(2, 2));
      SetField(dr.d_zip, rnd_.NString(9, 9));
      dr.d_tax = rnd_.UniformDouble() * 0.2;
      dr.d_ytd = 30000.0;
      dr.d_next_o_id = static_cast<int32_t>(config_.orders_per_district + 1);
      district_->Insert(DistrictKey(w, d), RowView(dr));

      // Customers (+1 history row each).
      for (uint32_t c = 1; c <= config_.customers_per_district; ++c) {
        CustomerRow cr{};
        cr.c_id = static_cast<int32_t>(c);
        cr.c_d_id = static_cast<int32_t>(d);
        cr.c_w_id = static_cast<int32_t>(w);
        SetField(cr.c_first, rnd_.AString(8, 16));
        SetField(cr.c_middle, "OE");
        // First 1000 customers get sequential names so every name exists.
        const std::string last = (c <= 1000)
                                     ? TpccRandom::LastName((c - 1) % 1000)
                                     : rnd_.RandomLastNameLoad();
        SetField(cr.c_last, last);
        SetField(cr.c_street_1, rnd_.AString(10, 20));
        SetField(cr.c_street_2, rnd_.AString(10, 20));
        SetField(cr.c_city, rnd_.AString(10, 20));
        SetField(cr.c_state, rnd_.AString(2, 2));
        SetField(cr.c_zip, rnd_.NString(9, 9));
        SetField(cr.c_phone, rnd_.NString(16, 16));
        cr.c_since = Now();
        SetField(cr.c_credit, rnd_.Uniform(1, 10) == 1 ? "BC" : "GC");
        cr.c_credit_lim = 50000.0;
        cr.c_discount = rnd_.UniformDouble() * 0.5;
        cr.c_balance = -10.0;
        cr.c_ytd_payment = 10.0;
        cr.c_payment_cnt = 1;
        cr.c_delivery_cnt = 0;
        SetField(cr.c_data, rnd_.AString(200, 300));
        customer_->Insert(CustomerKey(w, d, c), RowView(cr));
        customer_name_idx_->Insert(CustomerNameKey(w, d, last, c),
                                   std::string_view());

        HistoryRow hr{};
        hr.h_c_id = cr.c_id;
        hr.h_c_d_id = cr.c_d_id;
        hr.h_c_w_id = cr.c_w_id;
        hr.h_d_id = cr.c_d_id;
        hr.h_w_id = cr.c_w_id;
        hr.h_date = Now();
        hr.h_amount = 10.0;
        SetField(hr.h_data, rnd_.AString(12, 24));
        history_->Insert(HistoryKey(w, d, history_seq_++), RowView(hr));
      }

      // Orders: one per customer, customer ids permuted; the oldest ~70%
      // delivered, the rest pending in NEW_ORDER.
      std::vector<uint32_t> cust_perm(config_.customers_per_district);
      for (uint32_t c = 0; c < cust_perm.size(); ++c) cust_perm[c] = c + 1;
      for (size_t i = cust_perm.size(); i > 1; --i) {
        std::swap(cust_perm[i - 1], cust_perm[rnd_.rng().NextBounded(i)]);
      }
      const uint32_t delivered_upto =
          config_.orders_per_district * 7 / 10;
      for (uint32_t o = 1; o <= config_.orders_per_district; ++o) {
        const uint32_t c = cust_perm[(o - 1) % cust_perm.size()];
        OrderRow orow{};
        orow.o_id = static_cast<int32_t>(o);
        orow.o_d_id = static_cast<int32_t>(d);
        orow.o_w_id = static_cast<int32_t>(w);
        orow.o_c_id = static_cast<int32_t>(c);
        orow.o_entry_d = Now();
        orow.o_ol_cnt = static_cast<int32_t>(rnd_.Uniform(5, 15));
        orow.o_carrier_id =
            o <= delivered_upto ? static_cast<int32_t>(rnd_.Uniform(1, 10))
                                : 0;
        orow.o_all_local = 1;
        order_->Insert(OrderKey(w, d, o), RowView(orow));
        order_customer_idx_->Insert(OrderCustomerKey(w, d, c, o),
                                    std::string_view());
        for (int32_t l = 1; l <= orow.o_ol_cnt; ++l) {
          OrderLineRow ol{};
          ol.ol_o_id = orow.o_id;
          ol.ol_d_id = orow.o_d_id;
          ol.ol_w_id = orow.o_w_id;
          ol.ol_number = l;
          ol.ol_i_id = static_cast<int32_t>(rnd_.Uniform(1, config_.items));
          ol.ol_supply_w_id = orow.o_w_id;
          ol.ol_delivery_d = o <= delivered_upto ? orow.o_entry_d : 0;
          ol.ol_quantity = 5;
          ol.ol_amount =
              o <= delivered_upto ? 0.0 : rnd_.UniformDouble() * 9999.99;
          SetField(ol.ol_dist_info, rnd_.AString(24, 24));
          order_line_->Insert(OrderLineKey(w, d, o, static_cast<uint32_t>(l)),
                              RowView(ol));
        }
        if (o > delivered_upto) {
          NewOrderRow no{};
          no.no_o_id = orow.o_id;
          no.no_d_id = orow.o_d_id;
          no.no_w_id = orow.o_w_id;
          new_order_->Insert(NewOrderKey(w, d, o), RowView(no));
        }
      }
    }
  }
}

// --- Transactions ---------------------------------------------------------

TpccDb::TxnType TpccDb::RunNextTransaction() {
  const int64_t r = rnd_.Uniform(1, 100);
  TxnType t;
  if (r <= 45) {
    t = TxnType::kNewOrder;
    NewOrder();
  } else if (r <= 88) {
    t = TxnType::kPayment;
    Payment();
  } else if (r <= 92) {
    t = TxnType::kOrderStatus;
    OrderStatus();
  } else if (r <= 96) {
    t = TxnType::kDelivery;
    Delivery();
  } else {
    t = TxnType::kStockLevel;
    StockLevel();
  }
  ++txn_counts_[static_cast<int>(t)];
  return t;
}

bool TpccDb::NewOrder() {
  const uint32_t w = static_cast<uint32_t>(rnd_.Uniform(1, config_.warehouses));
  const uint32_t d = static_cast<uint32_t>(
      rnd_.Uniform(1, config_.districts_per_warehouse));
  const uint32_t c = static_cast<uint32_t>(
      rnd_.NURand(1023, 1, config_.customers_per_district));
  const int ol_cnt = static_cast<int>(rnd_.Uniform(5, 15));
  // 1% of New-Order transactions use an invalid item and roll back
  // (clause 2.4.1.4). Without undo we emulate the effect: reads happen,
  // writes do not.
  const bool rollback = rnd_.Uniform(1, 100) == 1;

  std::string buf;
  WarehouseRow wr;
  if (!warehouse_->Get(WarehouseKey(w), &buf) || !RowFrom(buf, &wr)) {
    return false;
  }
  DistrictRow dr;
  if (!district_->Get(DistrictKey(w, d), &buf) || !RowFrom(buf, &dr)) {
    return false;
  }
  CustomerRow cr;
  if (!customer_->Get(CustomerKey(w, d, c), &buf) || !RowFrom(buf, &cr)) {
    return false;
  }

  if (rollback) {
    // Read the items that would have been ordered, then abort.
    for (int l = 0; l < ol_cnt; ++l) {
      const uint32_t i =
          static_cast<uint32_t>(rnd_.NURand(8191, 1, config_.items));
      item_->Get(ItemKey(i), &buf);
    }
    return false;
  }

  const uint32_t o_id = static_cast<uint32_t>(dr.d_next_o_id);
  dr.d_next_o_id += 1;
  district_->Put(DistrictKey(w, d), RowView(dr));

  OrderRow orow{};
  orow.o_id = static_cast<int32_t>(o_id);
  orow.o_d_id = static_cast<int32_t>(d);
  orow.o_w_id = static_cast<int32_t>(w);
  orow.o_c_id = static_cast<int32_t>(c);
  orow.o_entry_d = Now();
  orow.o_carrier_id = 0;
  orow.o_ol_cnt = ol_cnt;
  orow.o_all_local = 1;

  double total = 0.0;
  for (int l = 1; l <= ol_cnt; ++l) {
    const uint32_t i_id =
        static_cast<uint32_t>(rnd_.NURand(8191, 1, config_.items));
    // 1% remote supply warehouse when there is more than one.
    uint32_t supply_w = w;
    if (config_.warehouses > 1 && rnd_.Uniform(1, 100) == 1) {
      do {
        supply_w =
            static_cast<uint32_t>(rnd_.Uniform(1, config_.warehouses));
      } while (supply_w == w);
      orow.o_all_local = 0;
    }
    const int32_t qty = static_cast<int32_t>(rnd_.Uniform(1, 10));

    ItemRow ir;
    if (!item_->Get(ItemKey(i_id), &buf) || !RowFrom(buf, &ir)) return false;
    StockRow sr;
    if (!stock_->Get(StockKey(supply_w, i_id), &buf) || !RowFrom(buf, &sr)) {
      return false;
    }
    sr.s_quantity = sr.s_quantity >= qty + 10 ? sr.s_quantity - qty
                                              : sr.s_quantity - qty + 91;
    sr.s_ytd += qty;
    sr.s_order_cnt += 1;
    if (supply_w != w) sr.s_remote_cnt += 1;
    stock_->Put(StockKey(supply_w, i_id), RowView(sr));

    OrderLineRow ol{};
    ol.ol_o_id = static_cast<int32_t>(o_id);
    ol.ol_d_id = static_cast<int32_t>(d);
    ol.ol_w_id = static_cast<int32_t>(w);
    ol.ol_number = l;
    ol.ol_i_id = static_cast<int32_t>(i_id);
    ol.ol_supply_w_id = static_cast<int32_t>(supply_w);
    ol.ol_delivery_d = 0;
    ol.ol_quantity = qty;
    ol.ol_amount = qty * ir.i_price;
    std::memcpy(ol.ol_dist_info, sr.s_dist[d - 1], sizeof(ol.ol_dist_info));
    order_line_->Insert(OrderLineKey(w, d, o_id, static_cast<uint32_t>(l)),
                        RowView(ol));
    total += ol.ol_amount;
  }
  (void)total;

  order_->Insert(OrderKey(w, d, o_id), RowView(orow));
  order_customer_idx_->Insert(OrderCustomerKey(w, d, c, o_id),
                              std::string_view());
  NewOrderRow no{};
  no.no_o_id = static_cast<int32_t>(o_id);
  no.no_d_id = static_cast<int32_t>(d);
  no.no_w_id = static_cast<int32_t>(w);
  new_order_->Insert(NewOrderKey(w, d, o_id), RowView(no));
  return true;
}

bool TpccDb::PickCustomer(uint32_t w, uint32_t d, CustomerRow* row) {
  std::string buf;
  if (rnd_.Uniform(1, 100) <= 60) {
    // By last name: collect matches, take the middle one (clause 2.5.2.2).
    // Scaled-down databases seed fewer than the standard's 1000 names
    // (population gives customer c <= 1000 name (c-1) % 1000), so the
    // run-phase draw is folded into the seeded name space.
    const int name_space = static_cast<int>(
        std::min<uint32_t>(1000, config_.customers_per_district));
    const int name_num =
        static_cast<int>(rnd_.NURand(255, 0, 999)) % name_space;
    const std::string last = TpccRandom::LastName(name_num);
    const std::string prefix = CustomerNamePrefix(w, d, last);
    std::vector<uint32_t> ids;
    for (auto it = customer_name_idx_->Seek(prefix);
         it.Valid() && HasPrefix(it.key(), prefix); it.Next()) {
      ids.push_back(ReadU32(it.key(), 24));
    }
    if (ids.empty()) return false;
    const uint32_t c = ids[ids.size() / 2];
    return customer_->Get(CustomerKey(w, d, c), &buf) && RowFrom(buf, row);
  }
  const uint32_t c = static_cast<uint32_t>(
      rnd_.NURand(1023, 1, config_.customers_per_district));
  return customer_->Get(CustomerKey(w, d, c), &buf) && RowFrom(buf, row);
}

bool TpccDb::Payment() {
  const uint32_t w = static_cast<uint32_t>(rnd_.Uniform(1, config_.warehouses));
  const uint32_t d = static_cast<uint32_t>(
      rnd_.Uniform(1, config_.districts_per_warehouse));
  // 85% local customer; 15% from a remote warehouse when there is one.
  uint32_t c_w = w;
  uint32_t c_d = d;
  if (config_.warehouses > 1 && rnd_.Uniform(1, 100) > 85) {
    do {
      c_w = static_cast<uint32_t>(rnd_.Uniform(1, config_.warehouses));
    } while (c_w == w);
    c_d = static_cast<uint32_t>(
        rnd_.Uniform(1, config_.districts_per_warehouse));
  }
  const double amount = 1.0 + rnd_.UniformDouble() * 4999.0;

  std::string buf;
  WarehouseRow wr;
  if (!warehouse_->Get(WarehouseKey(w), &buf) || !RowFrom(buf, &wr)) {
    return false;
  }
  wr.w_ytd += amount;
  warehouse_->Put(WarehouseKey(w), RowView(wr));

  DistrictRow dr;
  if (!district_->Get(DistrictKey(w, d), &buf) || !RowFrom(buf, &dr)) {
    return false;
  }
  dr.d_ytd += amount;
  district_->Put(DistrictKey(w, d), RowView(dr));

  CustomerRow cr;
  if (!PickCustomer(c_w, c_d, &cr)) return false;
  cr.c_balance -= amount;
  cr.c_ytd_payment += amount;
  cr.c_payment_cnt += 1;
  if (GetField(cr.c_credit) == "BC") {
    // Bad credit: prepend payment info to c_data (clause 2.5.2.2).
    char info[64];
    std::snprintf(info, sizeof(info), "%d %d %d %d %d %.2f|", cr.c_id,
                  cr.c_d_id, cr.c_w_id, d, w, amount);
    std::string data = info + GetField(cr.c_data);
    SetField(cr.c_data, data);
  }
  customer_->Put(CustomerKey(c_w, c_d, static_cast<uint32_t>(cr.c_id)),
                 RowView(cr));

  HistoryRow hr{};
  hr.h_c_id = cr.c_id;
  hr.h_c_d_id = cr.c_d_id;
  hr.h_c_w_id = cr.c_w_id;
  hr.h_d_id = static_cast<int32_t>(d);
  hr.h_w_id = static_cast<int32_t>(w);
  hr.h_date = Now();
  hr.h_amount = amount;
  SetField(hr.h_data, GetField(wr.w_name) + "    " + GetField(dr.d_name));
  history_->Insert(HistoryKey(w, d, history_seq_++), RowView(hr));
  return true;
}

bool TpccDb::OrderStatus() {
  const uint32_t w = static_cast<uint32_t>(rnd_.Uniform(1, config_.warehouses));
  const uint32_t d = static_cast<uint32_t>(
      rnd_.Uniform(1, config_.districts_per_warehouse));
  CustomerRow cr;
  if (!PickCustomer(w, d, &cr)) return false;

  // Most recent order via the complement-keyed index.
  const std::string prefix =
      OrderCustomerKey(w, d, static_cast<uint32_t>(cr.c_id), ~0u)
          .substr(0, 12);
  auto it = order_customer_idx_->Seek(prefix);
  if (!it.Valid() || !HasPrefix(it.key(), prefix)) return false;
  const uint32_t o_id = ~ReadU32(it.key(), 12);

  std::string buf;
  OrderRow orow;
  if (!order_->Get(OrderKey(w, d, o_id), &buf) || !RowFrom(buf, &orow)) {
    return false;
  }
  for (int32_t l = 1; l <= orow.o_ol_cnt; ++l) {
    order_line_->Get(OrderLineKey(w, d, o_id, static_cast<uint32_t>(l)),
                     &buf);
  }
  return true;
}

bool TpccDb::Delivery() {
  const uint32_t w = static_cast<uint32_t>(rnd_.Uniform(1, config_.warehouses));
  const int32_t carrier = static_cast<int32_t>(rnd_.Uniform(1, 10));
  bool delivered_any = false;
  std::string buf;

  for (uint32_t d = 1; d <= config_.districts_per_warehouse; ++d) {
    // Oldest undelivered order for the district.
    const std::string prefix = NewOrderKey(w, d, 0).substr(0, 8);
    auto it = new_order_->Seek(prefix);
    if (!it.Valid() || !HasPrefix(it.key(), prefix)) continue;
    const uint32_t o_id = ReadU32(it.key(), 8);
    new_order_->Delete(NewOrderKey(w, d, o_id));

    OrderRow orow;
    if (!order_->Get(OrderKey(w, d, o_id), &buf) || !RowFrom(buf, &orow)) {
      continue;
    }
    orow.o_carrier_id = carrier;
    order_->Put(OrderKey(w, d, o_id), RowView(orow));

    double total = 0.0;
    const int64_t now = Now();
    for (int32_t l = 1; l <= orow.o_ol_cnt; ++l) {
      OrderLineRow ol;
      const std::string key =
          OrderLineKey(w, d, o_id, static_cast<uint32_t>(l));
      if (!order_line_->Get(key, &buf) || !RowFrom(buf, &ol)) continue;
      ol.ol_delivery_d = now;
      total += ol.ol_amount;
      order_line_->Put(key, RowView(ol));
    }

    CustomerRow cr;
    const std::string ckey =
        CustomerKey(w, d, static_cast<uint32_t>(orow.o_c_id));
    if (customer_->Get(ckey, &buf) && RowFrom(buf, &cr)) {
      cr.c_balance += total;
      cr.c_delivery_cnt += 1;
      customer_->Put(ckey, RowView(cr));
    }
    delivered_any = true;
  }
  return delivered_any;
}

bool TpccDb::StockLevel() {
  const uint32_t w = static_cast<uint32_t>(rnd_.Uniform(1, config_.warehouses));
  const uint32_t d = static_cast<uint32_t>(
      rnd_.Uniform(1, config_.districts_per_warehouse));
  const int32_t threshold = static_cast<int32_t>(rnd_.Uniform(10, 20));

  std::string buf;
  DistrictRow dr;
  if (!district_->Get(DistrictKey(w, d), &buf) || !RowFrom(buf, &dr)) {
    return false;
  }
  const uint32_t next = static_cast<uint32_t>(dr.d_next_o_id);
  const uint32_t lo = next > 20 ? next - 20 : 1;

  // Distinct items in the last 20 orders' lines with low stock.
  std::set<int32_t> low;
  const std::string begin = OrderLineKey(w, d, lo, 0);
  const std::string end = OrderLineKey(w, d, next, 0);
  for (auto it = order_line_->Seek(begin); it.Valid() && it.key() < end;
       it.Next()) {
    OrderLineRow ol;
    if (!RowFrom(it.value(), &ol)) continue;
    StockRow sr;
    if (stock_->Get(StockKey(w, static_cast<uint32_t>(ol.ol_i_id)), &buf) &&
        RowFrom(buf, &sr) && sr.s_quantity < threshold) {
      low.insert(ol.ol_i_id);
    }
  }
  return true;
}

// --- Consistency -----------------------------------------------------------

Status TpccDb::CheckConsistency() {
  for (BTree* t : {warehouse_.get(), district_.get(), customer_.get(),
                   history_.get(), new_order_.get(), order_.get(),
                   order_line_.get(), item_.get(), stock_.get(),
                   customer_name_idx_.get(), order_customer_idx_.get()}) {
    Status s = t->CheckIntegrity();
    if (!s.ok()) return s;
  }

  std::string buf;
  for (uint32_t w = 1; w <= config_.warehouses; ++w) {
    WarehouseRow wr;
    if (!warehouse_->Get(WarehouseKey(w), &buf) || !RowFrom(buf, &wr)) {
      return Status::Corruption("warehouse row missing");
    }
    double district_ytd = 0.0;
    for (uint32_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      DistrictRow dr;
      if (!district_->Get(DistrictKey(w, d), &buf) || !RowFrom(buf, &dr)) {
        return Status::Corruption("district row missing");
      }
      district_ytd += dr.d_ytd - 30000.0;

      // Condition 2: D_NEXT_O_ID - 1 == max order id in district.
      const uint32_t expect_max = static_cast<uint32_t>(dr.d_next_o_id) - 1;
      if (!order_->Get(OrderKey(w, d, expect_max), &buf)) {
        return Status::Corruption("max order id != d_next_o_id - 1");
      }
      if (order_->Get(OrderKey(w, d, expect_max + 1), nullptr)) {
        return Status::Corruption("order beyond d_next_o_id");
      }

      // Condition 4: every NEW_ORDER row has an undelivered order.
      const std::string prefix = NewOrderKey(w, d, 0).substr(0, 8);
      for (auto it = new_order_->Seek(prefix);
           it.Valid() && HasPrefix(it.key(), prefix); it.Next()) {
        const uint32_t o_id = ReadU32(it.key(), 8);
        OrderRow orow;
        if (!order_->Get(OrderKey(w, d, o_id), &buf) ||
            !RowFrom(buf, &orow)) {
          return Status::Corruption("new_order without order");
        }
        if (orow.o_carrier_id != 0) {
          return Status::Corruption("new_order for delivered order");
        }
      }
    }
    // Condition 1: W_YTD == 300000 + sum of district YTD deltas.
    if (std::abs(wr.w_ytd - 300000.0 - district_ytd) > 1e-4) {
      return Status::Corruption("w_ytd != sum(d_ytd)");
    }
  }

  // Condition 3 (sampled over the first warehouse/district to bound
  // cost): every order has exactly o_ol_cnt lines.
  for (uint32_t o = 1;; ++o) {
    OrderRow orow;
    if (!order_->Get(OrderKey(1, 1, o), &buf) || !RowFrom(buf, &orow)) break;
    for (int32_t l = 1; l <= orow.o_ol_cnt; ++l) {
      if (!order_line_->Get(OrderLineKey(1, 1, o, static_cast<uint32_t>(l)),
                            nullptr)) {
        return Status::Corruption("missing order line");
      }
    }
    if (order_line_->Get(
            OrderLineKey(1, 1, o, static_cast<uint32_t>(orow.o_ol_cnt) + 1),
            nullptr)) {
      return Status::Corruption("extra order line");
    }
  }
  return Status::OK();
}

}  // namespace lss::tpcc
