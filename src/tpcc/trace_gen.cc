#include "tpcc/trace_gen.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace lss::tpcc {

namespace {

/// Buffer the current thread's write-backs land in (parallel
/// generation). Null outside a generation run; the observer then falls
/// back to the coordinator buffer, which is only correct because every
/// thread that can trigger a write-back registers itself first.
thread_local Trace* tls_trace = nullptr;

void CapturePoolCounters(const TpccDb& db, TpccTraceResult* result) {
  const BufferPool& pool = db.pool();
  result->pool_hits = pool.hits();
  result->pool_misses = pool.misses();
  result->pool_evictions = pool.evictions();
  result->pool_write_backs = pool.write_backs();
  result->pool_latch_acquisitions = pool.latch_acquisitions();
}

/// Stable merge: record i of every buffer, buffers in worker order, for
/// i = 0, 1, ... — a deterministic function of the buffer contents that
/// approximates the temporal interleaving of threads progressing at
/// similar rates. Clears the buffers.
void MergeRoundRobin(std::vector<Trace>* bufs, Trace* out) {
  size_t longest = 0;
  for (const Trace& b : *bufs) longest = std::max(longest, b.Size());
  for (size_t i = 0; i < longest; ++i) {
    for (const Trace& b : *bufs) {
      if (i < b.Size()) out->Append(b.records()[i]);
    }
  }
  for (Trace& b : *bufs) b.Clear();
}

TpccTraceResult GenerateSerial(const TpccConfig& config, uint64_t warm_txns,
                               uint64_t measure_txns,
                               uint64_t checkpoint_every) {
  TpccTraceResult result;
  TpccDb db(config, &result.trace);
  db.Populate();
  // Push the populated database to storage so the load phase of the
  // trace writes every page at least once (the replaying store needs the
  // full data set resident before steady-state measurement).
  db.Checkpoint();
  result.pages_after_load = db.PageCount();

  uint64_t since_checkpoint = 0;
  for (uint64_t i = 0; i < warm_txns; ++i) {
    db.RunNextTransaction();
    if (checkpoint_every > 0 && ++since_checkpoint >= checkpoint_every) {
      db.Checkpoint();
      since_checkpoint = 0;
    }
  }
  result.measure_from = result.trace.Size();
  for (uint64_t i = 0; i < measure_txns; ++i) {
    db.RunNextTransaction();
    if (checkpoint_every > 0 && ++since_checkpoint >= checkpoint_every) {
      db.Checkpoint();
      since_checkpoint = 0;
    }
  }
  db.Checkpoint();
  result.pages_final = db.PageCount();
  result.transactions = warm_txns + measure_txns;
  CapturePoolCounters(db, &result);
  return result;
}

TpccTraceResult GenerateParallel(const TpccConfig& config,
                                 uint64_t warm_txns, uint64_t measure_txns,
                                 uint64_t checkpoint_every) {
  TpccTraceResult result;
  // One buffer per worker session plus one for the coordinator (boundary
  // checkpoints). A write-back is recorded by whichever thread triggered
  // the eviction/flush, into that thread's own buffer — the observer
  // itself needs no lock. The count MUST match the engine's session
  // count: worker t writes bufs[t] for every t the db will hand out
  // (population threads, one per partition group, reuse the low bufs).
  const uint32_t workers = config.workers < 1 ? 1 : config.workers;
  std::vector<Trace> bufs(workers + 1);
  TpccDb db(config, BufferPool::WriteObserver([&bufs, workers](PageNo p) {
              Trace* t = tls_trace;
              (t != nullptr ? t : &bufs[workers])->AppendWrite(p);
            }));
  result.workers = db.workers();

  std::vector<TpccDb::Session> sessions;
  sessions.reserve(db.workers());
  for (uint32_t t = 0; t < db.workers(); ++t) {
    sessions.push_back(db.MakeSession(t));
  }

  tls_trace = &bufs[workers];

  // Population: items on the coordinator, each partition group's
  // warehouses on its own thread (groups, not sessions, partition the
  // load — extra sessions would have nothing to populate).
  db.PopulateItems();
  {
    std::vector<std::thread> threads;
    threads.reserve(db.partition_groups());
    for (uint32_t t = 0; t < db.partition_groups(); ++t) {
      threads.emplace_back([&db, &bufs, t] {
        tls_trace = &bufs[t];
        db.PopulateWorker(t);
      });
    }
    for (std::thread& th : threads) th.join();
  }
  db.Checkpoint();
  result.pages_after_load = db.PageCount();

  // Checkpoint cadence is global: the thread whose transaction crosses a
  // multiple of checkpoint_every runs the (fuzzy, pin-skipping) flush.
  std::atomic<uint64_t> txn_clock{0};
  auto run_phase = [&](uint64_t total) {
    std::vector<std::thread> threads;
    threads.reserve(db.workers());
    for (uint32_t t = 0; t < db.workers(); ++t) {
      threads.emplace_back([&, t] {
        tls_trace = &bufs[t];
        const uint64_t begin = total * t / db.workers();
        const uint64_t end = total * (t + 1) / db.workers();
        for (uint64_t i = begin; i < end; ++i) {
          db.RunNextTransaction(sessions[t]);
          if (checkpoint_every > 0) {
            const uint64_t n =
                txn_clock.fetch_add(1, std::memory_order_relaxed) + 1;
            if (n % checkpoint_every == 0) db.Checkpoint();
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
  };

  run_phase(warm_txns);
  // Phase boundary: all workers have joined, so merging here puts every
  // populate + warm-up record ahead of measure_from.
  MergeRoundRobin(&bufs, &result.trace);
  result.measure_from = result.trace.Size();

  run_phase(measure_txns);
  db.Checkpoint();
  MergeRoundRobin(&bufs, &result.trace);

  tls_trace = nullptr;
  result.pages_final = db.PageCount();
  result.transactions = warm_txns + measure_txns;
  CapturePoolCounters(db, &result);
  return result;
}

}  // namespace

TpccTraceResult GenerateTpccTrace(const TpccConfig& config,
                                  uint64_t warm_txns, uint64_t measure_txns,
                                  uint64_t checkpoint_every,
                                  uint32_t presplit_shards) {
  const auto t0 = std::chrono::steady_clock::now();
  // Workers beyond the warehouse count no longer force a serial run: the
  // latch-coupled trees let sessions share partition groups.
  TpccTraceResult result =
      config.workers <= 1
          ? GenerateSerial(config, warm_txns, measure_txns, checkpoint_every)
          : GenerateParallel(config, warm_txns, measure_txns,
                             checkpoint_every);
  if (presplit_shards > 0) {
    result.presplit =
        SplitTrace(result.trace, result.measure_from, presplit_shards);
  }
  result.generation_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace lss::tpcc
