#include "tpcc/trace_gen.h"

namespace lss::tpcc {

TpccTraceResult GenerateTpccTrace(const TpccConfig& config,
                                  uint64_t warm_txns, uint64_t measure_txns,
                                  uint64_t checkpoint_every) {
  TpccTraceResult result;
  TpccDb db(config, &result.trace);
  db.Populate();
  // Push the populated database to storage so the load phase of the
  // trace writes every page at least once (the replaying store needs the
  // full data set resident before steady-state measurement).
  db.Checkpoint();
  result.pages_after_load = db.PageCount();

  uint64_t since_checkpoint = 0;
  for (uint64_t i = 0; i < warm_txns; ++i) {
    db.RunNextTransaction();
    if (checkpoint_every > 0 && ++since_checkpoint >= checkpoint_every) {
      db.Checkpoint();
      since_checkpoint = 0;
    }
  }
  result.measure_from = result.trace.Size();
  for (uint64_t i = 0; i < measure_txns; ++i) {
    db.RunNextTransaction();
    if (checkpoint_every > 0 && ++since_checkpoint >= checkpoint_every) {
      db.Checkpoint();
      since_checkpoint = 0;
    }
  }
  db.Checkpoint();
  result.pages_final = db.PageCount();
  result.transactions = warm_txns + measure_txns;
  return result;
}

}  // namespace lss::tpcc
