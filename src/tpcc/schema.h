#ifndef LSS_TPCC_SCHEMA_H_
#define LSS_TPCC_SCHEMA_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace lss::tpcc {

/// TPC-C row types, stored as packed fixed-layout structs (the classic
/// flat-record representation; variable-text fields use fixed char arrays
/// as in the standard's CHAR(n) columns, truncated where the standard
/// allows VARCHAR). Rows are memcpy-serialised into B+-tree values.
///
/// Field widths follow TPC-C clause 1.3; a few of the widest filler
/// columns (c_data 500 -> 300, s_data/i_data 50 -> 40) are trimmed so
/// every row respects the engine's payload cap while keeping row sizes —
/// and therefore page-write patterns — representative.

#pragma pack(push, 1)

struct WarehouseRow {
  int32_t w_id;
  char w_name[10];
  char w_street_1[20];
  char w_street_2[20];
  char w_city[20];
  char w_state[2];
  char w_zip[9];
  double w_tax;
  double w_ytd;
};

struct DistrictRow {
  int32_t d_id;
  int32_t d_w_id;
  char d_name[10];
  char d_street_1[20];
  char d_street_2[20];
  char d_city[20];
  char d_state[2];
  char d_zip[9];
  double d_tax;
  double d_ytd;
  int32_t d_next_o_id;
};

struct CustomerRow {
  int32_t c_id;
  int32_t c_d_id;
  int32_t c_w_id;
  char c_first[16];
  char c_middle[2];
  char c_last[16];
  char c_street_1[20];
  char c_street_2[20];
  char c_city[20];
  char c_state[2];
  char c_zip[9];
  char c_phone[16];
  int64_t c_since;
  char c_credit[2];  // "GC" or "BC"
  double c_credit_lim;
  double c_discount;
  double c_balance;
  double c_ytd_payment;
  int32_t c_payment_cnt;
  int32_t c_delivery_cnt;
  char c_data[300];
};

struct HistoryRow {
  int32_t h_c_id;
  int32_t h_c_d_id;
  int32_t h_c_w_id;
  int32_t h_d_id;
  int32_t h_w_id;
  int64_t h_date;
  double h_amount;
  char h_data[24];
};

struct NewOrderRow {
  int32_t no_o_id;
  int32_t no_d_id;
  int32_t no_w_id;
};

struct OrderRow {
  int32_t o_id;
  int32_t o_d_id;
  int32_t o_w_id;
  int32_t o_c_id;
  int64_t o_entry_d;
  int32_t o_carrier_id;  // 0 = not yet delivered
  int32_t o_ol_cnt;
  int32_t o_all_local;
};

struct OrderLineRow {
  int32_t ol_o_id;
  int32_t ol_d_id;
  int32_t ol_w_id;
  int32_t ol_number;
  int32_t ol_i_id;
  int32_t ol_supply_w_id;
  int64_t ol_delivery_d;  // 0 = not delivered
  int32_t ol_quantity;
  double ol_amount;
  char ol_dist_info[24];
};

struct ItemRow {
  int32_t i_id;
  int32_t i_im_id;
  char i_name[24];
  double i_price;
  char i_data[40];
};

struct StockRow {
  int32_t s_i_id;
  int32_t s_w_id;
  int32_t s_quantity;
  char s_dist[10][24];
  double s_ytd;
  int32_t s_order_cnt;
  int32_t s_remote_cnt;
  char s_data[40];
};

#pragma pack(pop)

/// memcpy-serialisation helpers. Rows are PODs, so a byte copy is a
/// faithful round trip within one process.
template <typename Row>
std::string_view RowView(const Row& row) {
  return std::string_view(reinterpret_cast<const char*>(&row), sizeof(Row));
}

template <typename Row>
bool RowFrom(std::string_view bytes, Row* row) {
  if (bytes.size() != sizeof(Row)) return false;
  std::memcpy(row, bytes.data(), sizeof(Row));
  return true;
}

/// Copies a string into a fixed char field, space-padded (CHAR(n)).
template <size_t N>
void SetField(char (&field)[N], std::string_view s) {
  const size_t n = s.size() < N ? s.size() : N;
  std::memcpy(field, s.data(), n);
  std::memset(field + n, ' ', N - n);
}

template <size_t N>
std::string GetField(const char (&field)[N]) {
  size_t end = N;
  while (end > 0 && field[end - 1] == ' ') --end;
  return std::string(field, end);
}

}  // namespace lss::tpcc

#endif  // LSS_TPCC_SCHEMA_H_
