#include "core/segment.h"

#include <cassert>

namespace lss {

void Segment::Open(uint32_t log, SegmentSource source, UpdateCount now) {
  assert(state_ == SegmentState::kFree);
  state_ = SegmentState::kOpen;
  source_ = source;
  log_ = log;
  open_time_ = now;
  used_bytes_ = 0;
  live_bytes_ = 0;
  live_count_ = 0;
  up2_accum_ = 0;
  up2_ = 0;
  exact_upf_sum_ = 0;
  ckpt_entries_ = 0;
  ckpt_bytes_ = 0;
  entries_.clear();
}

uint32_t Segment::Append(PageId page, uint32_t bytes, double up2,
                         double exact_upf, uint64_t seq,
                         UpdateCount last_update) {
  assert(state_ == SegmentState::kOpen);
  assert(HasRoomFor(bytes));
  assert(page != kInvalidPage);
  entries_.push_back(
      Entry{page, bytes, seq, last_update, up2, exact_upf, used_bytes_, page});
  used_bytes_ += bytes;
  live_bytes_ += bytes;
  live_count_ += 1;
  up2_accum_ += up2;
  exact_upf_sum_ += exact_upf;
  return static_cast<uint32_t>(entries_.size() - 1);
}

uint32_t Segment::AppendDead(uint32_t bytes, double up2) {
  assert(state_ == SegmentState::kOpen);
  assert(HasRoomFor(bytes));
  entries_.push_back(
      Entry{kInvalidPage, bytes, 0, 0, up2, 0.0, used_bytes_, kInvalidPage});
  used_bytes_ += bytes;
  up2_accum_ += up2;
  return static_cast<uint32_t>(entries_.size() - 1);
}

void Segment::Kill(uint32_t idx, double exact_upf, bool dead_on_arrival) {
  assert(state_ != SegmentState::kFree);
  assert(idx < entries_.size());
  Entry& e = entries_[idx];
  assert(e.page != kInvalidPage);
  live_bytes_ -= e.bytes;
  live_count_ -= 1;
  exact_upf_sum_ -= exact_upf;
  e.page = kInvalidPage;
  e.doa = dead_on_arrival;
}

void Segment::Seal(UpdateCount now) {
  assert(state_ == SegmentState::kOpen);
  state_ = SegmentState::kSealed;
  seal_time_ = now;
  up2_ = entries_.empty()
             ? 0.0
             : up2_accum_ / static_cast<double>(entries_.size());
}

void Segment::Reset() {
  state_ = SegmentState::kFree;
  source_ = SegmentSource::kNone;
  log_ = 0;
  entries_.clear();
  entries_.shrink_to_fit();
  used_bytes_ = 0;
  live_bytes_ = 0;
  live_count_ = 0;
  up2_accum_ = 0;
  up2_ = 0;
  exact_upf_sum_ = 0;
  ckpt_entries_ = 0;
  ckpt_bytes_ = 0;
}

bool Segment::CheckCountersConsistent() const {
  uint32_t bytes = 0;
  uint32_t count = 0;
  uint32_t used = 0;
  for (const Entry& e : entries_) {
    used += e.bytes;
    if (e.page != kInvalidPage) {
      bytes += e.bytes;
      count += 1;
    }
  }
  // Dead entries keep their byte size, so `used` counts appended bytes.
  return bytes == live_bytes_ && count == live_count_ && used == used_bytes_ &&
         used_bytes_ <= capacity_;
}

}  // namespace lss
