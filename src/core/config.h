#ifndef LSS_CORE_CONFIG_H_
#define LSS_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "core/types.h"

namespace lss {

/// Which persistence backend a store runs its segments on (see
/// core/io_backend.h). kNull is the paper's simulator: segment writes
/// are counted but never performed. kFile gives every shard its own
/// segment file pair so write-amplification predictions can be compared
/// against real device traffic, and lets a store survive process
/// restart (LogStructuredStore::Open / ShardedStore::Open). kUring is
/// the file backend with payload writes overlapped through a raw
/// io_uring ring (core/uring_backend.h): same files, byte-identical
/// metadata log, and a runtime probe that degrades to the synchronous
/// pwrite path where the kernel or a seccomp filter disallows io_uring.
enum class BackendKind : uint8_t {
  kNull,
  kFile,
  kUring,
};

/// Configuration of a LogStructuredStore.
///
/// Paper defaults (§6.1.1): 4 KB pages, 2 MB segments (512 pages), 100 GB
/// device (51 200 segments), cleaning triggered when the free pool drops
/// below 32 segments, 64 victims per cleaning cycle. Our defaults are a
/// scaled-down device (the paper notes device size does not affect write
/// amplification); the trigger/batch keep roughly the same *fraction* of
/// the device. Benches override these per experiment.
struct StoreConfig {
  /// Segment capacity B in bytes (paper §5.1.2).
  uint32_t segment_bytes = 1u << 20;
  /// Default page size; Write() may pass a different per-page size, the
  /// store supports variable-size pages (paper §4.4).
  uint32_t page_bytes = 4096;
  /// Number of physical segments on the device.
  uint32_t num_segments = 512;
  /// Cleaning starts when the free pool falls below this many segments.
  uint32_t clean_trigger_segments = 8;
  /// Victim segments examined per cleaning cycle (paper cleans 64 at a
  /// time; batching "enables more effective separation of pages by update
  /// frequency", §6.1.1).
  uint32_t clean_batch_segments = 16;
  /// User write sort-buffer capacity in segments (Figure 4). 0 disables
  /// buffering: user writes append directly in arrival order.
  uint32_t write_buffer_segments = 4;
  /// Sort buffered user writes by estimated update frequency before
  /// packing them into segments (paper §5.3). Turned off by the
  /// MDC-no-sep-user / MDC-no-sep-user-GC ablations (Figure 3).
  bool separate_user_writes = true;
  /// Sort garbage-collected live pages by estimated update frequency
  /// before re-packing (§5.3). Turned off by MDC-no-sep-user-GC.
  bool separate_gc_writes = true;
  /// When true, GC'd pages are re-inserted through the same placement
  /// stream as user writes (multi-log semantics) rather than into
  /// dedicated GC output segments.
  bool gc_shares_user_stream = false;
  /// When true, re-updating a page that is still in the write buffer
  /// overwrites the buffered copy in place, so only one physical write
  /// reaches a segment (what a real write cache does). Off by default:
  /// the paper's simulator counts every update as a page write, and at
  /// bench scale absorption would skew the write-amplification
  /// denominator (noticeable in the Figure 4 buffer sweep).
  bool absorb_buffered_rewrites = false;

  /// Persistence backend for sealed segments. The default keeps the
  /// simulator bookkeeping-only; kFile performs real pwrite/fsync I/O.
  BackendKind backend = BackendKind::kNull;
  /// Directory holding the per-shard segment files (kFile only). Must
  /// exist and be writable.
  std::string backend_dir;
  /// fsync data + metadata after each segment seal (kFile only). Off
  /// trades durability for speed, like a drive write cache.
  bool backend_fsync = true;
  /// Open the payload file with O_DIRECT, bypassing the page cache so
  /// device-byte measurements reflect media traffic (kFile only;
  /// requires segment_bytes to be a multiple of 4 KiB).
  bool backend_direct_io = false;
  /// io_uring submission-queue depth (kUring only): how many payload
  /// writes may be in flight before a submit blocks reaping
  /// completions. Also sizes the registered payload-buffer pool, so the
  /// per-shard memory cost is roughly uring_queue_depth * segment_bytes
  /// (the pool clamps itself for huge segments).
  uint32_t uring_queue_depth = 32;

  /// Run segment seals asynchronously: the shard hands sealed-in-memory
  /// segments (and reclaims, deletes, checkpoints) to a per-shard I/O
  /// thread through a bounded queue, so device latency leaves the write
  /// path; fsyncs are group-committed (one fsync covers every operation
  /// queued since the last). Off keeps the PR 3 synchronous behaviour
  /// bit-for-bit (pinned by the determinism tests). Placement decisions
  /// are identical either way — only when I/O happens changes.
  bool async_seal = false;
  /// Capacity of the per-shard seal queue in operations (async_seal
  /// only). Writers block (backpressure, counted in
  /// StoreStats::seal_queue_stalls) when the queue is full.
  uint32_t seal_queue_depth = 16;
  /// Persist partially-filled open segments with a checkpoint record
  /// every N backend operations (0 disables). Checkpoints are replayed
  /// as an entry prefix on recovery, bounding how many acknowledged
  /// writes an open segment can lose to a crash — and they close the
  /// residual PR 3 crash window: a victim's free record forced out by a
  /// slot reseal is now always preceded by checkpoints of the open
  /// segments holding its relocated pages.
  uint32_t checkpoint_interval_ops = 0;
  /// Emit suffix-only delta checkpoints when a slot already has a
  /// durable checkpoint of the same fill generation: the round rewrites
  /// only the payload appended since the durable watermark, recorded as
  /// a kMetaCheckpointDelta chained to the previous record by ordinal.
  /// Falls back to a full checkpoint whenever the slot generation
  /// changed (reseal/reuse/rehome) or no prior checkpoint exists, and is
  /// ignored under backend_direct_io (a suffix write is not guaranteed
  /// to be O_DIRECT-aligned). Off re-records the whole payload every
  /// round, the pre-delta behaviour.
  bool checkpoint_delta = true;

  /// Total physical page frames of `page_bytes` size.
  uint64_t PhysicalPages() const {
    return static_cast<uint64_t>(num_segments) *
           (segment_bytes / page_bytes);
  }

  /// Pages per segment at the default page size (the paper's S).
  uint32_t PagesPerSegment() const { return segment_bytes / page_bytes; }

  /// Number of user pages giving fill factor `f` (paper §2.1:
  /// F = user-visible size / physical size).
  uint64_t UserPagesForFillFactor(double f) const {
    return static_cast<uint64_t>(f * static_cast<double>(PhysicalPages()));
  }

  /// Checks internal consistency; returns a non-OK status describing the
  /// first problem found.
  Status Validate() const {
    if (segment_bytes == 0 || page_bytes == 0) {
      return Status::InvalidArgument("segment_bytes/page_bytes must be > 0");
    }
    if (page_bytes > segment_bytes) {
      return Status::InvalidArgument("page larger than segment");
    }
    if (segment_bytes % page_bytes != 0) {
      return Status::InvalidArgument(
          "segment_bytes must be a multiple of page_bytes");
    }
    if (num_segments < 4) {
      return Status::InvalidArgument("need at least 4 segments");
    }
    if (clean_trigger_segments < 1) {
      return Status::InvalidArgument("clean_trigger_segments must be >= 1");
    }
    if (clean_batch_segments < 1) {
      return Status::InvalidArgument("clean_batch_segments must be >= 1");
    }
    if (clean_trigger_segments >= num_segments / 2) {
      return Status::InvalidArgument(
          "clean trigger too large for device size");
    }
    if ((backend == BackendKind::kFile || backend == BackendKind::kUring) &&
        backend_dir.empty()) {
      return Status::InvalidArgument(
          "file/uring backend requires backend_dir");
    }
    if (backend != BackendKind::kFile && backend_direct_io) {
      return Status::InvalidArgument(
          "backend_direct_io requires the file backend");
    }
    if (backend == BackendKind::kUring && uring_queue_depth < 1) {
      return Status::InvalidArgument(
          "uring backend requires uring_queue_depth >= 1");
    }
    if (backend_direct_io && segment_bytes % 4096 != 0) {
      return Status::InvalidArgument(
          "backend_direct_io requires 4 KiB-aligned segments");
    }
    if (async_seal && seal_queue_depth < 1) {
      return Status::InvalidArgument(
          "async_seal requires seal_queue_depth >= 1");
    }
    return Status::OK();
  }
};

}  // namespace lss

#endif  // LSS_CORE_CONFIG_H_
