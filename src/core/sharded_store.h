#ifndef LSS_CORE_SHARDED_STORE_H_
#define LSS_CORE_SHARDED_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/cleaning_policy.h"
#include "core/config.h"
#include "core/io_backend.h"
#include "core/page_table.h"
#include "core/stats.h"
#include "core/store_shard.h"
#include "core/types.h"

namespace lss {

/// Builds one CleaningPolicy instance; called once per shard so policy
/// state is never shared between threads (MakePolicy(variant) wrapped in
/// a lambda is the usual factory).
using PolicyFactory = std::function<std::unique_ptr<CleaningPolicy>()>;

/// Builds one SegmentBackend instance for the given shard id. Optional:
/// the default builds whatever `config.backend` selects. Tests inject
/// FaultInjectionBackend through this.
using BackendFactory =
    std::function<std::unique_ptr<SegmentBackend>(uint32_t shard_id)>;

/// A concurrent log-structured store: N independent StoreShards behind a
/// hash router, scaling the paper's single-threaded simulator (§6.1.1)
/// across cores.
///
/// Partitioning. Pages route to shards by PageShard (a splitmix64 hash of
/// the page id), and the device is split evenly: each shard owns
/// num_segments / num_shards segments, its own free pool, write buffer,
/// update clock, stats and cleaning-policy instance. Cleaning is per
/// shard — a shard's cleaner only ever selects victims among its own
/// segments, so shards never contend on a victim or a free list.
///
/// Locking. One mutex per shard serialises all operations routed to it;
/// cross-shard state is limited to the shared lock-striped PageTable
/// (whose stripe locks protect table growth) and read-side aggregation.
/// With num_shards comfortably above the thread count, writers mostly
/// land on distinct shards and proceed in parallel.
///
/// Stats are aggregated on read: AggregatedStats() locks each shard in
/// turn and merges its counters, so WriteAmplification() over the result
/// is the global Wamp while shard(i).stats() exposes the per-shard view
/// (bench/scale_threads.cc reports the spread).
///
/// A 1-shard ShardedStore executes the exact instruction sequence of a
/// LogStructuredStore (same StoreShard code, same routing), which the
/// determinism test pins down bit-for-bit.
class ShardedStore {
 public:
  /// Creates a store with `num_shards` shards, giving each shard
  /// num_segments / num_shards segments, its own policy from
  /// `policy_factory` and its own persistence backend (from
  /// `backend_factory`, or `config.backend` when none is given — the
  /// file backend then writes one file pair per shard under
  /// `config.backend_dir`). Fails (nullptr, `*status` set) when the
  /// per-shard geometry does not validate — the device must be large
  /// enough that every shard still has a workable segment pool.
  static std::unique_ptr<ShardedStore> Create(
      const StoreConfig& config, uint32_t num_shards,
      const PolicyFactory& policy_factory, Status* status = nullptr,
      const BackendFactory& backend_factory = nullptr);

  /// Reopens a sharded store from the durable state a previous run left
  /// in `config.backend_dir` (file backend only). `num_shards` and the
  /// geometry must match the creating run: each shard recovers from its
  /// own file pair, and a shard-count mismatch is detected when a
  /// recovered segment holds pages the shard does not own.
  static std::unique_ptr<ShardedStore> Open(
      const StoreConfig& config, uint32_t num_shards,
      const PolicyFactory& policy_factory, Status* status = nullptr);

  /// Closes every shard (flush, seal, backend close); first error wins.
  /// Also runs at destruction, where the result is ignored.
  Status Close();

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  /// Installs the exact-frequency oracle on every shard. Must be set
  /// before the first Write; the oracle is called concurrently from all
  /// shard threads and must be thread-safe (pure functions of the page id
  /// are — all workload generators qualify).
  void SetExactFrequencyOracle(const ExactFrequencyFn& oracle);

  /// Routes to the owning shard and writes under its lock.
  Status Write(PageId page, uint32_t bytes = 0);

  /// Routes to the owning shard and deletes under its lock.
  Status Delete(PageId page);

  /// Drains every shard's write buffer.
  Status Flush();

  /// Durable barrier across all shards: flushes buffers, checkpoints
  /// open segments and drains every shard's seal pipeline. On return
  /// every previously acknowledged write survives a crash. First error
  /// wins, but every shard is attempted.
  Status Checkpoint();

  /// Routes to the owning shard and reads the page's payload under its
  /// lock (see StoreShard::ReadPage; in async-seal mode this waits for
  /// the covering seal to reach the device).
  Status ReadPage(PageId page, std::vector<uint8_t>* out) const;

  /// True if `page` currently has a live version (buffered or stored).
  bool Contains(PageId page) const;

  /// Size in bytes of the current version of `page` (0 if absent).
  uint32_t PageSize(PageId page) const;

  // --- Introspection --------------------------------------------------

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// The shard `page` routes to.
  uint32_t ShardOf(PageId page) const {
    return PageShard(page, num_shards());
  }

  /// Direct shard access. Not synchronised: use only while no other
  /// thread is operating on the store (tests and post-run inspection), or
  /// take the corresponding shard lock via WithShardLocked.
  StoreShard& shard(uint32_t i) { return *shards_[i]->shard; }
  const StoreShard& shard(uint32_t i) const { return *shards_[i]->shard; }

  /// Runs `fn(shard)` under shard `i`'s lock.
  template <typename Fn>
  auto WithShardLocked(uint32_t i, Fn fn) const {
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    return fn(*shards_[i]->shard);
  }

  /// The geometry each shard runs with (num_segments already divided).
  const StoreConfig& shard_config() const { return shard_config_; }

  const PageTable& page_table() const { return table_; }

  /// Counters merged across shards (locks each shard briefly).
  StoreStats AggregatedStats() const;

  /// Zeroes every shard's counters (paper §6.2 warm-up protocol).
  void ResetMeasurement();

  /// Measured write amplification of each shard, indexed by shard id.
  std::vector<double> PerShardWriteAmplification() const;

  /// Aggregate live bytes / aggregate device bytes.
  double CurrentFillFactor() const;

  /// Live (present) pages across all shards. O(num_shards * P), each
  /// shard counted under its lock so the call is safe concurrently with
  /// writers (each shard's pages only mutate under that same lock).
  size_t LivePageCount() const;

  /// Runs StoreShard::CheckInvariants on every shard under its lock;
  /// returns the first inconsistency found.
  Status CheckInvariants() const;

 private:
  // Each shard gets its own cache line so neighbouring mutexes do not
  // false-share under contention.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unique_ptr<StoreShard> shard;
  };

  ShardedStore() = default;

  // Shared construction for Create (fresh device) and Open (recovery).
  static std::unique_ptr<ShardedStore> Build(
      const StoreConfig& config, uint32_t num_shards,
      const PolicyFactory& policy_factory,
      const BackendFactory& backend_factory, bool recover, Status* status);

  PageTable table_;
  StoreConfig shard_config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lss

#endif  // LSS_CORE_SHARDED_STORE_H_
