#include "core/store.h"

namespace lss {

std::unique_ptr<LogStructuredStore> LogStructuredStore::Create(
    const StoreConfig& config, std::unique_ptr<CleaningPolicy> policy,
    Status* status) {
  Status s = config.Validate();
  if (s.ok() && policy == nullptr) {
    s = Status::InvalidArgument("policy must not be null");
  }
  if (!s.ok()) {
    if (status != nullptr) *status = s;
    return nullptr;
  }
  if (status != nullptr) *status = Status::OK();
  return std::unique_ptr<LogStructuredStore>(
      new LogStructuredStore(config, std::move(policy)));
}

}  // namespace lss
