#include "core/store.h"

#include "core/io_backend.h"

namespace lss {

std::unique_ptr<LogStructuredStore> LogStructuredStore::Build(
    const StoreConfig& config, std::unique_ptr<CleaningPolicy> policy,
    std::unique_ptr<SegmentBackend> backend, bool recover, Status* status) {
  auto fail = [status](Status s) -> std::unique_ptr<LogStructuredStore> {
    if (status != nullptr) *status = std::move(s);
    return nullptr;
  };
  Status s = config.Validate();
  if (s.ok() && policy == nullptr) {
    s = Status::InvalidArgument("policy must not be null");
  }
  if (s.ok() && recover) s = ValidateReopenConfig(config);
  if (!s.ok()) return fail(std::move(s));
  if (backend == nullptr) backend = MakeBackend(config);
  auto store = std::unique_ptr<LogStructuredStore>(new LogStructuredStore(
      config, std::move(policy), std::move(backend)));
  s = store->shard_.OpenBackend(recover);
  if (s.ok() && recover) s = store->shard_.Recover();
  if (!s.ok()) return fail(std::move(s));
  if (status != nullptr) *status = Status::OK();
  return store;
}

std::unique_ptr<LogStructuredStore> LogStructuredStore::CreateWithBackend(
    const StoreConfig& config, std::unique_ptr<CleaningPolicy> policy,
    std::unique_ptr<SegmentBackend> backend, Status* status) {
  return Build(config, std::move(policy), std::move(backend),
               /*recover=*/false, status);
}

std::unique_ptr<LogStructuredStore> LogStructuredStore::Create(
    const StoreConfig& config, std::unique_ptr<CleaningPolicy> policy,
    Status* status) {
  return Build(config, std::move(policy), nullptr, /*recover=*/false, status);
}

std::unique_ptr<LogStructuredStore> LogStructuredStore::Open(
    const StoreConfig& config, std::unique_ptr<CleaningPolicy> policy,
    Status* status) {
  return Build(config, std::move(policy), nullptr, /*recover=*/true, status);
}

}  // namespace lss
