#ifndef LSS_CORE_TYPES_H_
#define LSS_CORE_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace lss {

/// Logical page identifier, the unit of update and obsolescence (paper §1.1).
using PageId = uint64_t;

/// Physical segment index, the unit of space reclamation (paper §1.1).
using SegmentId = uint32_t;

/// The simulation clock: one tick per logical user update (paper §4.2
/// measures "time not in clock time but in update count").
using UpdateCount = uint64_t;

inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();
inline constexpr SegmentId kInvalidSegment =
    std::numeric_limits<SegmentId>::max();
/// Sentinel segment id meaning "the current version lives in the user write
/// buffer"; the location index is then a buffer slot.
inline constexpr SegmentId kBufferSegment = kInvalidSegment - 1;

/// Oracle giving a page's *exact* relative update frequency, normalised so
/// that the mean over all user pages is 1 (paper §2.2). The `*-opt` policy
/// variants (MDC-opt, multi-log-opt) consult this instead of the up2-based
/// estimate; workload generators know their own distribution and provide it.
using ExactFrequencyFn = std::function<double(PageId)>;

/// Minimal status type: library code signals failures by value instead of
/// throwing across the API boundary.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kOutOfSpace,     // cleaning cannot reclaim any segment
    kInvalidArgument,
    kNotFound,
    kCorruption,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status OutOfSpace(std::string m) {
    return Status(Code::kOutOfSpace, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(Code::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(Code::kNotFound, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(Code::kCorruption, std::move(m));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "UNKNOWN";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kOutOfSpace: name = "OUT_OF_SPACE"; break;
      case Code::kInvalidArgument: name = "INVALID_ARGUMENT"; break;
      case Code::kNotFound: name = "NOT_FOUND"; break;
      case Code::kCorruption: name = "CORRUPTION"; break;
    }
    return std::string(name) + ": " + msg_;
  }

 private:
  Code code_;
  std::string msg_;
};

}  // namespace lss

#endif  // LSS_CORE_TYPES_H_
