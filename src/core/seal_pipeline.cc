#include "core/seal_pipeline.h"

#include <utility>
#include <vector>

namespace lss {

SealPipeline::SealPipeline(SegmentBackend* backend, uint32_t queue_depth,
                           bool count_fsyncs)
    : backend_(backend),
      queue_depth_(queue_depth < 1 ? 1 : queue_depth),
      count_fsyncs_(count_fsyncs) {}

SealPipeline::~SealPipeline() { Shutdown(); }

void SealPipeline::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  {
    // Publish what Open/Scan already accumulated (recovery device
    // counters, the uring capability flag) — a snapshot taken before the
    // first batch must not read as "no backend activity".
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    published_stats_ = backend_stats_;
  }
  backend_->SetDeferredSync(true);
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { ThreadMain(); });
}

uint64_t SealPipeline::Enqueue(Op op, bool* stalled) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!started_ || stop_ || !error_.ok()) return 0;
  if (queue_.size() >= queue_depth_) {
    if (stalled != nullptr) *stalled = true;
    done_cv_.wait(lock, [this] {
      return queue_.size() < queue_depth_ || stop_ || !error_.ok();
    });
    if (stop_ || !error_.ok()) return 0;
  }
  queue_.push_back(std::move(op));
  const uint64_t ticket = ++enqueued_;
  work_cv_.notify_one();
  return ticket;
}

uint64_t SealPipeline::applied_ticket() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_;
}

Status SealPipeline::WaitApplied(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this, ticket] {
    return applied_ >= ticket || !error_.ok();
  });
  return error_;
}

Status SealPipeline::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t target = enqueued_;
  done_cv_.wait(lock, [this, target] {
    return applied_ >= target || !error_.ok();
  });
  return error_;
}

Status SealPipeline::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return error_;
    stop_ = true;
    work_cv_.notify_one();
    done_cv_.notify_all();
  }
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
  return error_;
}

Status SealPipeline::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

StoreStats SealPipeline::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return published_stats_;
}

Status SealPipeline::ResetStats() {
  Status s = Drain();
  // The I/O thread is idle (or dead) now and only touches its stats
  // while applying ops, which only this owner thread can enqueue.
  backend_stats_.ResetMeasurement();
  std::lock_guard<std::mutex> lock(stats_mu_);
  published_stats_.ResetMeasurement();
  return s;
}

void SealPipeline::ThreadMain() {
  std::vector<Op> batch;
  for (;;) {
    batch.clear();
    bool dead;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with nothing left to drain
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
      dead = !error_.ok();
      done_cv_.notify_all();  // backpressured producers may refill
    }

    Status s = Status::OK();
    if (!dead) {
      // Apply in queue order — the order carries the crash-ordering
      // invariants, so a failure must stop the batch, not skip over.
      for (const Op& op : batch) {
        switch (op.kind) {
          case Op::Kind::kSeal:
            s = backend_->SealSegment(op.record);
            break;
          case Op::Kind::kCheckpoint:
            s = backend_->Checkpoint(op.record);
            if (s.ok()) {
              ++backend_stats_.checkpoints_written;
              ++backend_stats_.checkpoint_full_records;
            }
            break;
          case Op::Kind::kCheckpointDelta:
            s = backend_->CheckpointDelta(op.record);
            if (s.ok()) {
              ++backend_stats_.checkpoints_written;
              ++backend_stats_.checkpoint_delta_records;
            }
            break;
          case Op::Kind::kReclaim:
            s = backend_->ReclaimSegment(op.segment, op.unow);
            break;
          case Op::Kind::kDelete:
            s = backend_->RecordDelete(op.page, op.seq, op.unow);
            break;
          case Op::Kind::kRehome:
            // The backend syncs internally: the record is durable before
            // the next op in the batch (the reused slot's seal) runs.
            s = backend_->RehomeEntries(op.record);
            break;
        }
        if (!s.ok()) break;
      }
      // Group commit: one sync covers the whole batch (and releases the
      // hole punches that were waiting on durability).
      if (s.ok()) {
        s = backend_->Sync();
        if (s.ok() && count_fsyncs_) {
          ++backend_stats_.group_fsyncs;
          backend_stats_.group_fsync_ops += batch.size();
        }
      }
    }

    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      published_stats_ = backend_stats_;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Tickets advance even past a failure so waiters wake; the sticky
      // error, not the ticket count, is the source of truth then.
      applied_ += batch.size();
      if (!s.ok() && error_.ok()) error_ = s;
      done_cv_.notify_all();
    }
  }
}

}  // namespace lss
