#include "core/policies/multilog_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/store_shard.h"

namespace lss {

int MultiLogPolicy::BandOf(double period) {
  if (period < 1.0) period = 1.0;
  return static_cast<int>(std::floor(std::log2(period)));
}

uint32_t MultiLogPolicy::LogForBand(int band, uint32_t effective_cap) {
  auto it = band_to_log_.find(band);
  if (it != band_to_log_.end()) return it->second;
  if (band_to_log_.size() < effective_cap) {
    const uint32_t id = static_cast<uint32_t>(log_to_band_.size());
    band_to_log_.emplace(band, id);
    log_to_band_.push_back(band);
    return id;
  }
  // Cap reached: use the log of the nearest existing band.
  auto lo = band_to_log_.lower_bound(band);
  if (lo == band_to_log_.end()) return std::prev(lo)->second;
  if (lo == band_to_log_.begin()) return lo->second;
  auto prev = std::prev(lo);
  return (band - prev->first) <= (lo->first - band) ? prev->second
                                                    : lo->second;
}

uint32_t MultiLogPolicy::PlacementLog(const StoreShard& shard,
                                      PageId page, bool /*is_gc*/,
                                      double upf_estimate) {
  double period;
  if (upf_estimate > 0.0) {
    period = 1.0 / upf_estimate;
  } else {
    // No history: assume the page is of average heat — its expected
    // update period (in this shard's clock ticks) equals the number of
    // user pages *this shard manages*. The table is shared across
    // shards, so divide its global size by the shard count.
    const double shard_pages = static_cast<double>(shard.page_table().Size()) /
                               static_cast<double>(shard.num_shards());
    period = std::max<double>(1.0, shard_pages);
  }
  int band = BandOf(period);

  // Damped migration: with the estimate coming from a single update
  // interval (the plain variant), a page steps at most one band per write
  // toward its estimated band. The exact-frequency variant has nothing to
  // smooth and jumps directly.
  if (!opt_) {
    if (page >= page_band_.size()) page_band_.resize(page + 1, kNoBand);
    const int prev = page_band_[page];
    if (prev != kNoBand && band != prev) {
      band = prev + (band > prev ? 1 : -1);
    }
    page_band_[page] = band;
  }

  // Every active log pins open segments, so the log count must stay small
  // relative to the device; tiny test devices get a tighter cap.
  const uint32_t device_cap =
      std::max<uint32_t>(2, shard.config().num_segments / 16);
  return LogForBand(band, std::min(max_logs_, device_cap));
}

void MultiLogPolicy::SelectVictims(const StoreShard& shard,
                                   uint32_t triggering_log,
                                   size_t /*max_victims*/,
                                   std::vector<SegmentId>* out) const {
  // Cleaning candidate per log. Within a log pages have (by construction)
  // similar update frequencies, so the cheapest victim is the oldest
  // segment when the log is homogeneous; with the noisy single-interval
  // estimator homogeneity is imperfect, so prefer the emptiest, breaking
  // ties toward the oldest. (Under the exact oracle and a uniform
  // workload all pages share one log and the oldest *is* the emptiest,
  // reproducing the age-equivalence §6.2.2 describes.)
  const auto& segments = shard.segments();
  std::vector<SegmentId> oldest(log_to_band_.empty() ? 1 : log_to_band_.size(),
                                kInvalidSegment);
  for (SegmentId id = 0; id < segments.size(); ++id) {
    const Segment& s = segments[id];
    if (s.state() != SegmentState::kSealed) continue;
    const uint32_t log = s.log();
    if (log >= oldest.size()) oldest.resize(log + 1, kInvalidSegment);
    if (oldest[log] == kInvalidSegment) {
      oldest[log] = id;
      continue;
    }
    const Segment& cur = segments[oldest[log]];
    if (s.available_bytes() > cur.available_bytes() ||
        (s.available_bytes() == cur.available_bytes() &&
         s.seal_time() < cur.seal_time())) {
      oldest[log] = id;
    }
  }

  // Candidate logs: the triggering log and its two band-neighbours
  // (neighbourhood in band order).
  std::vector<uint32_t> candidates;
  if (triggering_log < log_to_band_.size()) {
    const int band = log_to_band_[triggering_log];
    auto it = band_to_log_.find(band);
    if (it != band_to_log_.end()) {
      candidates.push_back(it->second);
      if (it != band_to_log_.begin()) {
        candidates.push_back(std::prev(it)->second);
      }
      auto next = std::next(it);
      if (next != band_to_log_.end()) candidates.push_back(next->second);
    }
  }

  auto pick_best = [&](const std::vector<uint32_t>& logs) -> SegmentId {
    SegmentId best = kInvalidSegment;
    double best_e = -1.0;
    for (uint32_t log : logs) {
      if (log >= oldest.size() || oldest[log] == kInvalidSegment) continue;
      const double e = segments[oldest[log]].Emptiness();
      if (e > best_e) {
        best_e = e;
        best = oldest[log];
      }
    }
    return best;
  };

  const SegmentId local = pick_best(candidates);
  std::vector<uint32_t> all(oldest.size());
  for (uint32_t i = 0; i < oldest.size(); ++i) all[i] = i;
  const SegmentId global = pick_best(all);

  // Stoica & Ailamaki manage per-log space so a log's local victim is
  // usually a good one. With a shared free pool a cold log can trigger
  // cleaning while its whole neighbourhood is nearly fully live; insisting
  // on the local victim then grinds the store to a halt. Keep the local
  // choice (the algorithm's defining suboptimality) unless it is less than
  // half as empty as the best victim anywhere.
  SegmentId victim = local;
  if (local == kInvalidSegment) {
    victim = global;
  } else if (global != kInvalidSegment &&
             segments[local].Emptiness() <
                 0.5 * segments[global].Emptiness()) {
    victim = global;
  }
  if (victim != kInvalidSegment) out->push_back(victim);
}

}  // namespace lss
