#ifndef LSS_CORE_POLICIES_GREEDY_POLICY_H_
#define LSS_CORE_POLICIES_GREEDY_POLICY_H_

#include <string>
#include <vector>

#include "core/cleaning_policy.h"

namespace lss {

/// Greedy cleaning (paper §4.5, §6.1.3 "greedy"): always clean the sealed
/// segment with the most available free space (largest E). Optimal under
/// uniform updates — where it coincides with age-based cleaning — but it
/// "leaves cold segments uncleaned for a long time" under skew (§6.2.1).
class GreedyPolicy : public CleaningPolicy {
 public:
  std::string name() const override { return "greedy"; }

  void SelectVictims(const StoreShard& shard, uint32_t triggering_log,
                     size_t max_victims,
                     std::vector<SegmentId>* out) const override;
};

}  // namespace lss

#endif  // LSS_CORE_POLICIES_GREEDY_POLICY_H_
