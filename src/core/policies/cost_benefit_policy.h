#ifndef LSS_CORE_POLICIES_COST_BENEFIT_POLICY_H_
#define LSS_CORE_POLICIES_COST_BENEFIT_POLICY_H_

#include <string>
#include <vector>

#include "core/cleaning_policy.h"

namespace lss {

/// The LFS cost-benefit heuristic (Rosenblum & Ousterhout [23]; paper
/// §6.1.3 "cost-benefit"): clean the sealed segment maximising
///
///     benefit / cost = (E * age) / (2 - E)
///
/// where E is the segment's emptiness and age = unow - seal time. Reading
/// the victim costs 1 segment I/O and rewriting its live fraction (1-E)
/// costs another (1-E), so cost = 2-E in segment units, while cleaning
/// yields E free space whose value grows with the segment's stability
/// (age). This "cleans cold segments more aggressively" (§7.2) than
/// greedy but remains a heuristic that MDC dominates.
///
/// Note: the paper's §6.1.3 text writes the formula as (1-E)*age/E, which
/// with E = emptiness prefers *full* old segments. That literal reading
/// explains why the paper's Figure 5a shows cost-benefit far above age /
/// greedy under uniform updates, where the canonical formula is near-
/// optimal. We default to the canonical LFS form and offer the paper's
/// literal formula (with an E floor so fully-live segments are not
/// infinitely attractive) for reproducing their figure; see
/// docs/POLICIES.md and bench/ablation_costbenefit.cc.
class CostBenefitPolicy : public CleaningPolicy {
 public:
  enum class Formula {
    kLfs,          // maximise (E * age) / (2 - E)      [Rosenblum 1991]
    kPaperLiteral  // maximise ((1-E) * age) / E        [paper §6.1.3]
  };

  explicit CostBenefitPolicy(Formula formula = Formula::kLfs)
      : formula_(formula) {}

  std::string name() const override {
    return formula_ == Formula::kLfs ? "cost-benefit" : "cost-benefit-lit";
  }

  void SelectVictims(const StoreShard& shard, uint32_t triggering_log,
                     size_t max_victims,
                     std::vector<SegmentId>* out) const override;

  Formula formula() const { return formula_; }

 private:
  Formula formula_;
};

}  // namespace lss

#endif  // LSS_CORE_POLICIES_COST_BENEFIT_POLICY_H_
