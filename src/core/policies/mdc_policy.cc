#include "core/policies/mdc_policy.h"

#include <cassert>
#include <limits>

#include "core/policies/selection.h"
#include "core/store_shard.h"

namespace lss {

void MdcPolicy::SelectVictims(const StoreShard& shard,
                              uint32_t /*triggering_log*/, size_t max_victims,
                              std::vector<SegmentId>* out) const {
  const double now = static_cast<double>(shard.unow());
  const bool opt = opt_ && shard.HasOracle();
  assert(!opt_ || shard.HasOracle());

  internal_selection::SelectSmallestSealed(
      shard.segments(), max_victims,
      [now, opt](const Segment& s) {
        const double a = static_cast<double>(s.available_bytes());
        const double live = static_cast<double>(s.live_bytes());  // B - A
        const double c = static_cast<double>(s.live_count());
        if (c == 0.0) {
          // Fully empty: zero cost decline remains, clean immediately.
          return -std::numeric_limits<double>::infinity();
        }
        if (a == 0.0) {
          // Nothing reclaimable; infinite projected decline, clean last.
          return std::numeric_limits<double>::infinity();
        }
        const double ratio = live / a;  // (B - A) / A
        // Per-page update frequency: exact live-page mean for MDC-opt,
        // else the two-interval up2 estimate 2/(unow - up2) (§4.3).
        double upf;
        if (opt) {
          upf = s.exact_upf_sum() / c;
        } else {
          double interval = now - s.up2();
          if (interval < 1.0) interval = 1.0;
          upf = 2.0 / interval;
        }
        return ratio * ratio * upf / c;
      },
      out);
}

}  // namespace lss
