#include "core/policies/greedy_policy.h"

#include "core/policies/selection.h"
#include "core/store_shard.h"

namespace lss {

void GreedyPolicy::SelectVictims(const StoreShard& shard,
                                 uint32_t /*triggering_log*/,
                                 size_t max_victims,
                                 std::vector<SegmentId>* out) const {
  internal_selection::SelectSmallestSealed(
      shard.segments(), max_victims,
      // Most available space first => smallest negated availability.
      [](const Segment& s) {
        return -static_cast<double>(s.available_bytes());
      },
      out);
}

}  // namespace lss
