#include "core/policies/age_policy.h"

#include "core/policies/selection.h"
#include "core/store_shard.h"

namespace lss {

void AgePolicy::SelectVictims(const StoreShard& shard,
                              uint32_t /*triggering_log*/, size_t max_victims,
                              std::vector<SegmentId>* out) const {
  internal_selection::SelectSmallestSealed(
      shard.segments(), max_victims,
      [](const Segment& s) { return static_cast<double>(s.seal_time()); },
      out);
}

}  // namespace lss
