#ifndef LSS_CORE_POLICIES_MULTILOG_POLICY_H_
#define LSS_CORE_POLICIES_MULTILOG_POLICY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/cleaning_policy.h"

namespace lss {

/// The multi-log cleaning algorithm of Stoica & Ailamaki (VLDB 2013 [26]),
/// the state of the art the paper compares MDC against (§6.1.3, §7.2).
///
/// Pages are partitioned into multiple logs so that pages within each log
/// have similar update frequencies. We band frequencies geometrically: a
/// page with estimated update period p (updates between consecutive
/// writes to it) goes to the log for band floor(log2(p)). The system
/// starts with a single log — pages with no history are assigned the
/// global mean period — and new logs are created as new bands appear,
/// which reproduces the slow convergence and the log proliferation under
/// uniform workloads the paper reports (§6.2.2, §6.3).
///
/// Cleaning is *local*: when writing to log L runs the system low on
/// space, the victim is the oldest sealed segment of L or one of its two
/// band-neighbours, whichever is emptiest (the "local-optimal log"). One
/// segment is cleaned at a time, matching the evaluation in [26]. Live
/// pages re-enter placement with a re-estimated frequency, so surviving
/// (cold) pages migrate to colder logs.
///
/// The plain variant estimates frequency from the previous update
/// timestamp; `use_exact_frequency` selects multi-log-opt, which uses the
/// workload oracle (under uniform updates every page then lands in one
/// log and cleaning degenerates to age order, exactly as §6.2.2 notes).
///
/// Band state (band<->log maps, per-page band memory) mutates only in the
/// non-const PlacementLog step; the const methods (SelectVictims, name,
/// NumLogs) are genuinely read-only. One policy instance belongs to one
/// shard, so this state never needs locking.
class MultiLogPolicy : public CleaningPolicy {
 public:
  /// `max_logs` caps runtime log proliferation (the store ties up two open
  /// segments per active log).
  explicit MultiLogPolicy(bool use_exact_frequency = false,
                          uint32_t max_logs = 16)
      : opt_(use_exact_frequency), max_logs_(max_logs) {}

  std::string name() const override {
    return opt_ ? "multi-log-opt" : "multi-log";
  }

  void SelectVictims(const StoreShard& shard, uint32_t triggering_log,
                     size_t max_victims,
                     std::vector<SegmentId>* out) const override;

  uint32_t PlacementLog(const StoreShard& shard, PageId page, bool is_gc,
                        double upf_estimate) override;

  /// Cleans one segment at a time (§6.1.3).
  size_t PreferredBatch(size_t /*config_batch*/) const override { return 1; }

  /// Number of logs created so far (diagnostic).
  size_t NumLogs() const { return band_to_log_.size(); }

 private:
  // Frequency band for an update period; one band per power of two.
  static int BandOf(double period);

  // Log id for `band`, creating it if `effective_cap` allows, else the
  // nearest existing band's log. Called from PlacementLog, the one place
  // policy state may grow.
  uint32_t LogForBand(int band, uint32_t effective_cap);

  bool opt_;
  uint32_t max_logs_;
  std::map<int, uint32_t> band_to_log_;  // sorted by band
  std::vector<int> log_to_band_;
  // Per-page current band, for damped migration: a page moves at most one
  // band per write toward its estimated band, smoothing the noise of the
  // single-interval estimator ([26]'s pages "move between neighbouring
  // logs"). kNoBand marks pages never placed.
  static constexpr int kNoBand = INT32_MIN;
  std::vector<int> page_band_;
};

}  // namespace lss

#endif  // LSS_CORE_POLICIES_MULTILOG_POLICY_H_
