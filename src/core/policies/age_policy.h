#ifndef LSS_CORE_POLICIES_AGE_POLICY_H_
#define LSS_CORE_POLICIES_AGE_POLICY_H_

#include <string>
#include <vector>

#include "core/cleaning_policy.h"

namespace lss {

/// Age-based cleaning (paper §2.2, §6.1.3 "age"): always clean the oldest
/// sealed segment — the one written longest ago. Equivalent to a circular
/// buffer over segments; optimal under uniform update distributions but
/// very poor under skew (Figure 5).
class AgePolicy : public CleaningPolicy {
 public:
  std::string name() const override { return "age"; }

  void SelectVictims(const StoreShard& shard, uint32_t triggering_log,
                     size_t max_victims,
                     std::vector<SegmentId>* out) const override;
};

}  // namespace lss

#endif  // LSS_CORE_POLICIES_AGE_POLICY_H_
