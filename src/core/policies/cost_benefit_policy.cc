#include "core/policies/cost_benefit_policy.h"

#include <algorithm>

#include "core/policies/selection.h"
#include "core/store_shard.h"

namespace lss {

void CostBenefitPolicy::SelectVictims(const StoreShard& shard,
                                      uint32_t /*triggering_log*/,
                                      size_t max_victims,
                                      std::vector<SegmentId>* out) const {
  const double now = static_cast<double>(shard.unow());
  if (formula_ == Formula::kLfs) {
    internal_selection::SelectSmallestSealed(
        shard.segments(), max_victims,
        [now](const Segment& s) {
          const double e = s.Emptiness();
          const double age = now - static_cast<double>(s.seal_time());
          // Highest benefit/cost first => negate. A fully-live segment
          // (e == 0) has zero benefit, never preferred.
          return -(e * age) / (2.0 - e);
        },
        out);
    return;
  }
  // Paper-literal: (1-E)*age/E, maximised. Floor E at one page's worth of
  // the segment so fully-live segments are strongly preferred but finite.
  internal_selection::SelectSmallestSealed(
      shard.segments(), max_victims,
      [now, &shard](const Segment& s) {
        const double floor_e = static_cast<double>(shard.config().page_bytes) /
                               static_cast<double>(s.capacity_bytes());
        const double e = std::max(s.Emptiness(), floor_e);
        const double age = now - static_cast<double>(s.seal_time());
        return -((1.0 - e) * age) / e;
      },
      out);
}

}  // namespace lss
