#ifndef LSS_CORE_POLICIES_MDC_POLICY_H_
#define LSS_CORE_POLICIES_MDC_POLICY_H_

#include <string>
#include <vector>

#include "core/cleaning_policy.h"

namespace lss {

/// Minimum Declining Cost cleaning — the paper's contribution (§4–§5).
///
/// Cleaning cost per segment is 2/E and declines as updates empty the
/// segment. By the Maximality Lemma (§4.1/Appendix) total cost is
/// minimised by cleaning first the segments whose cost will decline
/// *least* — it pays to wait for the big decliners. The estimated decline
/// rate, §5.1.3, with A available bytes, B segment size, C live pages and
/// up2 the penultimate-update estimate, is
///
///     -dCost/du  ∝  ((B-A)/A)^2 · 1/(C · (unow - up2))
///
/// MDC cleans the sealed segments with the smallest decline first.
/// `use_exact_frequency` selects the MDC-opt variant (§6.1.3), which
/// replaces the up2-implied per-page frequency 2/(unow - up2) with the
/// exact mean frequency of the segment's live pages from the workload
/// oracle.
///
/// Placement is single-log; the separation of hot from cold pages comes
/// from the store's sort-by-up2 write buffering (§5.3), controlled by
/// StoreConfig::separate_user_writes / separate_gc_writes (the Figure 3
/// ablations toggle these).
class MdcPolicy : public CleaningPolicy {
 public:
  explicit MdcPolicy(bool use_exact_frequency = false)
      : opt_(use_exact_frequency) {}

  std::string name() const override { return opt_ ? "MDC-opt" : "MDC"; }

  void SelectVictims(const StoreShard& shard, uint32_t triggering_log,
                     size_t max_victims,
                     std::vector<SegmentId>* out) const override;

  bool use_exact_frequency() const { return opt_; }

 private:
  bool opt_;
};

}  // namespace lss

#endif  // LSS_CORE_POLICIES_MDC_POLICY_H_
