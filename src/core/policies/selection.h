#ifndef LSS_CORE_POLICIES_SELECTION_H_
#define LSS_CORE_POLICIES_SELECTION_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "core/segment.h"
#include "core/types.h"

namespace lss::internal_selection {

/// Selects up to `k` sealed segments with the smallest `key(segment)`,
/// best (smallest) first, appending their ids to `out`. Policies express
/// "clean X first" as a scalar key; ties break toward lower segment id so
/// runs are deterministic.
template <typename KeyFn>
void SelectSmallestSealed(const std::vector<Segment>& segments, size_t k,
                          KeyFn key, std::vector<SegmentId>* out) {
  std::vector<std::pair<double, SegmentId>> ranked;
  ranked.reserve(segments.size());
  for (SegmentId id = 0; id < segments.size(); ++id) {
    const Segment& s = segments[id];
    if (s.state() != SegmentState::kSealed) continue;
    ranked.emplace_back(key(s), id);
  }
  if (ranked.empty()) return;
  k = std::min(k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end());
  for (size_t i = 0; i < k; ++i) out->push_back(ranked[i].second);
}

}  // namespace lss::internal_selection

#endif  // LSS_CORE_POLICIES_SELECTION_H_
