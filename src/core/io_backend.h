#ifndef LSS_CORE_IO_BACKEND_H_
#define LSS_CORE_IO_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/segment.h"
#include "core/stats.h"
#include "core/types.h"
#include "util/rng.h"

namespace lss {

/// Durable record of one sealed segment: identity, placement metadata
/// and the full entry list in append order — `Segment::Entry` already
/// carries everything recovery needs (the shard-wide append `seq` that
/// orders page versions across segments, the page's `last_update` for
/// frequency estimates, the placement metadata, and the payload
/// `offset`). An entry with `page == kInvalidPage` was already dead at
/// seal time (a superseded buffered duplicate); its bytes still occupy
/// device space and are reconstructed as dead on recovery.
struct BackendSegmentRecord {
  SegmentId id = kInvalidSegment;
  uint32_t log = 0;
  SegmentSource source = SegmentSource::kNone;
  UpdateCount open_time = 0;
  UpdateCount seal_time = 0;
  /// Shard clock at seal; recovery restores unow to the max seen.
  UpdateCount unow = 0;
  /// True when this record snapshots a still-open segment (a checkpoint,
  /// see SegmentBackend::Checkpoint). Recovery rebuilds a checkpointed
  /// segment as sealed with the snapshot's entry prefix; a later real
  /// seal or free record for the same slot supersedes the checkpoint.
  bool checkpoint = false;
  /// Position of the record in the metadata log, assigned by Scan in
  /// replay order. Recovery breaks equal-seq ties between a page's
  /// surviving versions toward the later record, so a re-homing record
  /// beats the victim slot's original seal (whose payload region may be
  /// torn by the new occupant's crashing write) and a post-recovery
  /// reseal of a materialised slot beats the re-homing record that
  /// seeded it.
  uint64_t ordinal = 0;
  /// True for a delta checkpoint (SegmentBackend::CheckpointDelta): the
  /// record covers only the payload suffix appended since the durable
  /// watermark and chains to the previous checkpoint record of the same
  /// slot generation by ordinal. `entries` then holds only the suffix
  /// entries (their `offset` fields still name absolute positions in the
  /// slot payload).
  bool delta = false;
  /// Fill generation of the slot the chain belongs to (bumped by the
  /// shard on every Segment::Open of the slot). A delta is only valid
  /// against a base checkpoint of the same generation.
  uint64_t generation = 0;
  /// Ordinal of the previous checkpoint record in this slot's chain
  /// (full or delta). Assigned by the writing backend; recovery applies
  /// a delta only when its base_ordinal names the current chain tip.
  uint64_t base_ordinal = 0;
  /// Entries of the chain retained below this delta: recovery truncates
  /// the assembled entry list to this count before appending `entries`.
  uint64_t prefix_entries = 0;
  /// Payload byte range this delta rewrote: [suffix_offset,
  /// suffix_offset + suffix_length) within the slot.
  uint64_t suffix_offset = 0;
  uint64_t suffix_length = 0;
  std::vector<Segment::Entry> entries;
};

/// Everything a backend recovered from its durable state, in replay-
/// resolved form: the latest seal record per still-sealed segment, all
/// delete tombstones, and the high-water marks of the shard clocks.
struct BackendRecovery {
  std::vector<BackendSegmentRecord> segments;
  /// Re-homing records (SegmentBackend::RehomeEntries): still-needed
  /// entries of a withheld victim slot, persisted before that slot was
  /// reused. `id` names the victim; the entries have no payload of
  /// their own (pattern-reconstructible) and no surviving slot —
  /// recovery materialises the winners into fresh segments.
  std::vector<BackendSegmentRecord> rehomed;
  /// Delta checkpoint records in replay order (`delta` true). Unlike
  /// `segments` these are NOT last-record-per-slot resolved: recovery
  /// walks each slot's chain from its surviving full checkpoint record,
  /// applying every delta whose base_ordinal matches the chain tip;
  /// deltas orphaned by a later seal, free or full checkpoint of the
  /// slot simply never match and are ignored.
  std::vector<BackendSegmentRecord> deltas;
  /// (page, seq) delete tombstones; a tombstone newer than every surviving
  /// entry of a page means the page is absent.
  std::vector<std::pair<PageId, uint64_t>> deletes;
  uint64_t max_seq = 0;
  UpdateCount unow = 0;
};

/// Per-shard persistence backend behind StoreShard. The simulator's
/// bookkeeping (segments, page table, cleaning) stays in memory and is
/// bit-for-bit independent of the backend; the backend only mirrors
/// state transitions onto a device:
///
///   SealSegment    one segment's payload + metadata become durable
///   ReclaimSegment a cleaned segment's space is released
///   RecordDelete   a page delete becomes durable
///   Scan           rebuild the mirrored state after a restart
///
/// Exactly one backend instance exists per shard (PR 2 serialised each
/// shard behind its own mutex), so implementations need no internal
/// locking. All methods return Status; the shard treats any failure as
/// fatal for the affected operation (write failures become the store's
/// sticky error, exactly like out-of-space).
class SegmentBackend {
 public:
  virtual ~SegmentBackend() = default;

  /// Binds the backend to a shard's geometry and stats sink and makes it
  /// ready for writes. `recover` false starts from an empty device
  /// (truncating any leftover state); true requires existing durable
  /// state, which a following Scan() call reads — and that state's
  /// recorded geometry (shard id / shard count / segment layout) must
  /// match, so a store cannot silently reopen with a different shard
  /// count and lose the unvisited shards' pages. `stats` outlives the
  /// backend and receives the device_* counters.
  virtual Status Open(const StoreConfig& config, uint32_t shard_id,
                      uint32_t num_shards, StoreStats* stats,
                      bool recover) = 0;

  /// Persists a sealed segment (payload and metadata). Called by the
  /// shard immediately after the in-memory seal (or by its seal pipeline
  /// when StoreConfig::async_seal is on).
  virtual Status SealSegment(const BackendSegmentRecord& record) = 0;

  /// Persists a snapshot of a partially-filled *open* segment
  /// (`record.checkpoint` true): payload prefix plus a checkpoint
  /// metadata record. On recovery the snapshot acts as a seal record
  /// unless a later seal or free record supersedes it, so a crash loses
  /// at most the appends since the last checkpoint instead of the whole
  /// open segment. Backends that persist nothing accept and ignore it.
  virtual Status Checkpoint(const BackendSegmentRecord& record) {
    (void)record;
    return Status::OK();
  }

  /// Persists a suffix-only delta checkpoint (`record.delta` true):
  /// rewrites only the payload range [suffix_offset, suffix_offset +
  /// suffix_length) of the slot and appends a kMetaCheckpointDelta
  /// record chained (by ordinal) to the slot's previous checkpoint
  /// record, which must exist and carry the same generation — the shard
  /// guarantees this by falling back to a full Checkpoint() whenever the
  /// slot generation changed. Backends that persist nothing accept and
  /// ignore it.
  virtual Status CheckpointDelta(const BackendSegmentRecord& record) {
    (void)record;
    return Status::OK();
  }

  /// Persists a re-homing record: the still-needed entries of a
  /// withheld victim slot (`record.id`), written — and made durable,
  /// even in deferred-sync mode — BEFORE the shard reuses that slot, so
  /// a crash after the reuse overwrites the victim's payload can still
  /// recover the entries from the record (payloads are pattern-
  /// reconstructible). No payload is written. Backends that persist
  /// nothing accept and ignore it.
  virtual Status RehomeEntries(const BackendSegmentRecord& record) {
    (void)record;
    return Status::OK();
  }

  /// Group-commit hook: makes every operation accepted so far durable
  /// with (at most) one fsync pair, and releases any deferred
  /// space-reclamation work that required durability first. The seal
  /// pipeline calls this once per drained batch instead of paying one
  /// fsync per seal.
  virtual Status Sync() { return Status::OK(); }

  /// When on, SealSegment / Checkpoint / RecordDelete append without
  /// syncing and durability comes from explicit Sync() calls (the group
  /// commit mode the async pipeline runs in). When off (default) the
  /// backend syncs per operation as StoreConfig::backend_fsync demands.
  virtual void SetDeferredSync(bool on) { (void)on; }

  /// Power-loss simulation hook for crash tests: releases device
  /// resources WITHOUT flushing queued records or syncing, as if the
  /// process died this instant. Default backends just Close().
  virtual void Abandon() { Close(); }

  /// Releases a reclaimed segment's device space. Called after the
  /// cleaner reset a victim.
  virtual Status ReclaimSegment(SegmentId id, UpdateCount unow) = 0;

  /// Persists a delete tombstone so the page stays dead across reopen.
  virtual Status RecordDelete(PageId page, uint64_t seq, UpdateCount unow) = 0;

  /// Reads one page's payload from a sealed segment. `offset` is the
  /// byte offset of the version inside the segment (prefix sum of the
  /// preceding entries). Backends without stored payloads synthesize it.
  virtual Status ReadPagePayload(SegmentId id, uint64_t offset, PageId page,
                                 uint32_t bytes, std::vector<uint8_t>* out) = 0;

  /// Reads back the durable state written so far (only meaningful after
  /// Open(recover=true)).
  virtual Status Scan(BackendRecovery* out) = 0;

  /// Flushes and releases device resources. Idempotent; also invoked by
  /// destructors, which ignore the result.
  virtual Status Close() = 0;

  /// Diagnostic label ("null", "file").
  virtual std::string name() const = 0;
};

/// Deterministic page payload: 64-bit words keyed by (page id, word
/// index). Both FileBackend (when writing payloads) and NullBackend
/// (when synthesizing reads) use this pattern, so "is every live page
/// readable with the right contents" is checkable against any backend.
inline uint64_t PagePatternWord(PageId page, uint64_t word_index) {
  return SplitMix64(page * 0x9E3779B97F4A7C15ull + word_index + 1);
}

/// Fills `out[0, bytes)` with the pattern for `page`.
void FillPagePayload(PageId page, uint32_t bytes, uint8_t* out);

/// True if `data[0, bytes)` matches the pattern for `page`.
bool VerifyPagePayload(PageId page, uint32_t bytes, const uint8_t* data);

/// The bookkeeping-only backend: every hook succeeds without touching a
/// device, preserving the paper simulator's behaviour exactly. Scan
/// recovers nothing (a reopened null store is an empty store), and reads
/// synthesize the deterministic pattern.
class NullBackend : public SegmentBackend {
 public:
  Status Open(const StoreConfig&, uint32_t, uint32_t, StoreStats*,
              bool) override {
    return Status::OK();
  }
  Status SealSegment(const BackendSegmentRecord&) override {
    return Status::OK();
  }
  Status ReclaimSegment(SegmentId, UpdateCount) override {
    return Status::OK();
  }
  Status RecordDelete(PageId, uint64_t, UpdateCount) override {
    return Status::OK();
  }
  Status ReadPagePayload(SegmentId, uint64_t, PageId page, uint32_t bytes,
                         std::vector<uint8_t>* out) override {
    out->resize(bytes);
    FillPagePayload(page, bytes, out->data());
    return Status::OK();
  }
  Status Scan(BackendRecovery* out) override {
    *out = BackendRecovery{};
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }
  std::string name() const override { return "null"; }
};

/// Real file-backed persistence, one instance (= one pair of files) per
/// shard under StoreConfig::backend_dir:
///
///   shard-NNNN.dat   payload: segment slot i at byte offset
///                    i * segment_bytes, written whole (pwrite) when the
///                    segment seals; pages carry the deterministic
///                    pattern, dead entries are zero-filled.
///   shard-NNNN.meta  metadata log: one binary record per seal, reclaim
///                    and delete, appended in operation order and
///                    replayed by Scan (last record per segment wins).
///
/// fsync runs after each seal (and on Close) unless
/// StoreConfig::backend_fsync is off; payload writes use O_DIRECT when
/// backend_direct_io is set (requires 4 KiB-aligned segments; silently
/// falls back where the platform lacks O_DIRECT). Reclaim punches a hole
/// in the payload slot where fallocate supports it, returning the space
/// to the filesystem while keeping offsets stable.
///
/// Device counters (bytes written, write/fsync counts and seconds,
/// bytes punched) accumulate into the shard's StoreStats.
///
/// Subclassing: the payload write path is virtual (AcquirePayloadBuffer
/// / WritePayload / SyncBoth) so UringBackend (core/uring_backend.h) can
/// overlap payload writes through an io_uring ring while sharing the
/// metadata serialisation and Scan literally — the two backends produce
/// byte-identical metadata logs by construction.
class FileBackend : public SegmentBackend {
 public:
  FileBackend() = default;
  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  Status Open(const StoreConfig& config, uint32_t shard_id,
              uint32_t num_shards, StoreStats* stats, bool recover) override;
  Status SealSegment(const BackendSegmentRecord& record) override;
  Status Checkpoint(const BackendSegmentRecord& record) override;
  Status CheckpointDelta(const BackendSegmentRecord& record) override;
  Status RehomeEntries(const BackendSegmentRecord& record) override;
  Status Sync() override;
  void SetDeferredSync(bool on) override { deferred_sync_ = on; }
  void Abandon() override;
  Status ReclaimSegment(SegmentId id, UpdateCount unow) override;
  Status RecordDelete(PageId page, uint64_t seq, UpdateCount unow) override;
  Status ReadPagePayload(SegmentId id, uint64_t offset, PageId page,
                         uint32_t bytes, std::vector<uint8_t>* out) override;
  Status Scan(BackendRecovery* out) override;
  Status Close() override;
  std::string name() const override { return "file"; }

  /// Path of the payload / metadata file for `shard_id` under `dir`.
  static std::string DataPath(const std::string& dir, uint32_t shard_id);
  static std::string MetaPath(const std::string& dir, uint32_t shard_id);

 protected:
  // Appends one complete metadata record, consuming one replay ordinal
  // (next_ordinal_) on success — the writer-side mirror of Scan's
  // per-record numbering, which delta records reference as base_ordinal.
  Status AppendMeta(const void* data, size_t len);

  // --- Payload-write seam (overridden by UringBackend) ----------------

  /// Returns the buffer the caller fills with one payload write's bytes
  /// (at least segment_bytes; 4 KiB-aligned), or nullptr on resource
  /// exhaustion. The base backend always hands out its single reusable
  /// payload_buf_; an overlapping backend hands out a pool slot that
  /// stays owned by the in-flight write until its completion is reaped.
  virtual uint8_t* AcquirePayloadBuffer();

  /// Writes `len` payload bytes from `buf` (a pointer previously
  /// returned by AcquirePayloadBuffer) at `offset` in the data file and
  /// accounts the device counters. The base backend blocks in pwrite;
  /// an overlapping backend may return after submission only — the
  /// bytes must be readable and durable-orderable by the next SyncBoth.
  virtual Status WritePayload(const uint8_t* buf, uint64_t len,
                              uint64_t offset);

  /// Durability barrier: every payload write issued so far has fully
  /// completed and both files are fsynced (fsync skipped when
  /// StoreConfig::backend_fsync is off — but an overlapping backend
  /// still waits out its in-flight writes, because callers may read or
  /// rewrite the ranges afterwards). Virtual for exactly that reason.
  virtual Status SyncBoth();

  // Shared payload-write + metadata-append path of SealSegment and
  // Checkpoint (they differ only in record type and durability rules).
  Status WriteSegmentRecord(const BackendSegmentRecord& record,
                            bool checkpoint);
  void ReleaseFds();

  // A reclaimed segment moves through three stages before its payload is
  // hole-punched, so the punch can never destroy data the metadata log
  // still references (see DrainReclaims in the .cc; the shard orders the
  // ReclaimSegment call itself relative to the relocated pages' seals).
  // `record_appended` and `record_durable` are distinct in group-commit
  // mode: several seals may pass between the append and the Sync() that
  // makes it durable, and the record must land exactly once.
  struct PendingReclaim {
    SegmentId id;
    UpdateCount unow;
    bool record_appended;  // free record written to the log
    bool record_durable;   // ...and covered by an fsync
    bool punch;            // cleared when the slot is resealed first
  };

  Status DrainReclaims(bool punching_allowed);

  StoreConfig config_;
  StoreStats* stats_ = nullptr;
  uint32_t shard_id_ = 0;
  uint32_t num_shards_ = 1;
  std::vector<PendingReclaim> pending_reclaims_;
  int data_fd_ = -1;
  /// Buffered fd for sub-segment page reads (O_DIRECT rejects unaligned
  /// preads); -1 when data_fd_ itself is buffered.
  int read_fd_ = -1;
  int meta_fd_ = -1;
  bool direct_io_ = false;
  /// Group-commit mode (SetDeferredSync): per-op fsyncs are skipped and
  /// Sync() supplies durability + releases deferred punches.
  bool deferred_sync_ = false;
  /// Append position in the metadata log.
  uint64_t meta_offset_ = 0;
  /// Replay ordinal the next appended record will carry (count of valid
  /// records in the log; Scan re-derives it on reopen).
  uint64_t next_ordinal_ = 0;
  /// Per-slot checkpoint-chain tip: ordinal and generation of the last
  /// checkpoint record (full or delta) appended for the slot, or -1 when
  /// no chain is open (after a seal or free record for the slot, and for
  /// every slot after Scan). CheckpointDelta links new records to the
  /// tip and refuses to append without one.
  std::vector<int64_t> chain_tip_ordinal_;
  std::vector<uint64_t> chain_generation_;
  /// Reused pwrite buffer for a whole segment (aligned when direct_io_).
  uint8_t* payload_buf_ = nullptr;
};

/// Test double: forwards every hook to a base backend (NullBackend by
/// default) but fails the Nth seal / reclaim / delete with a configured
/// status, and can simulate a whole-process power loss (CrashAfterOps).
/// Exercises the store's backend-error paths — sticky errors in Flush,
/// cleaning aborts — and drives the crash-recovery torture harness
/// (tests/integration/crash_recovery_test.cc).
class FaultInjectionBackend : public SegmentBackend {
 public:
  explicit FaultInjectionBackend(
      std::unique_ptr<SegmentBackend> base = nullptr)
      : base_(base ? std::move(base) : std::make_unique<NullBackend>()) {}

  /// Fail every SealSegment once `count` seals have succeeded (0 fails
  /// the first). Negative disables.
  void FailSealsAfter(int64_t count, Status error) {
    fail_seal_after_ = count;
    seal_error_ = std::move(error);
  }
  void FailReclaimsAfter(int64_t count, Status error) {
    fail_reclaim_after_ = count;
    reclaim_error_ = std::move(error);
  }
  void FailDeletesAfter(int64_t count, Status error) {
    fail_delete_after_ = count;
    delete_error_ = std::move(error);
  }

  int64_t seals() const { return seals_; }
  int64_t reclaims() const { return reclaims_; }
  int64_t deletes() const { return deletes_; }
  int64_t checkpoints() const { return checkpoints_; }
  int64_t delta_checkpoints() const { return delta_checkpoints_; }
  int64_t syncs() const { return syncs_; }
  int64_t rehomes() const { return rehomes_; }

  /// Simulated power loss: the next `ops` mutating operations (seals,
  /// checkpoints, re-homes, reclaims, deletes, syncs) are forwarded
  /// normally, then the one after that "kills the process" — when the
  /// base is a file backend its durable files are torn the way an
  /// interrupted writeback would leave them (a truncated or checksum-
  /// corrupt metadata record at the log tail and, for a seal or
  /// checkpoint, a partial payload overwrite of the crashing slot; the
  /// tear style is drawn from `seed`) — the base is Abandon()ed so none
  /// of its queued records get flushed, and every later call fails.
  /// Arming is thread-safe: the torture harness arms from the driver
  /// thread while a seal pipeline is applying operations.
  void CrashAfterOps(int64_t ops, uint64_t seed);
  bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }

  Status Open(const StoreConfig& config, uint32_t shard_id,
              uint32_t num_shards, StoreStats* stats, bool recover) override {
    config_ = config;
    shard_id_ = shard_id;
    return base_->Open(config, shard_id, num_shards, stats, recover);
  }
  Status SealSegment(const BackendSegmentRecord& record) override {
    if (Status s; !CrashGate(&s, &record)) return s;
    if (fail_seal_after_ >= 0 && seals_ >= fail_seal_after_) {
      return seal_error_;
    }
    ++seals_;
    return base_->SealSegment(record);
  }
  Status Checkpoint(const BackendSegmentRecord& record) override {
    if (Status s; !CrashGate(&s, &record)) return s;
    ++checkpoints_;
    return base_->Checkpoint(record);
  }
  Status CheckpointDelta(const BackendSegmentRecord& record) override {
    // The gate gets the record so a crash here can tear the suffix range
    // the delta was rewriting (TearAndDie writes a partial prefix of the
    // suffix payload, never the bytes below suffix_offset — those belong
    // to earlier durable records and real hardware was not writing them).
    if (Status s; !CrashGate(&s, &record)) return s;
    ++delta_checkpoints_;
    return base_->CheckpointDelta(record);
  }
  Status RehomeEntries(const BackendSegmentRecord& record) override {
    // No payload accompanies a re-homing record, so a crash here tears
    // only the metadata tail — never the victim slot's payload (passing
    // `record` to the gate would wrongly overwrite the victim with a
    // payload this record does not have).
    if (Status s; !CrashGate(&s, nullptr)) return s;
    ++rehomes_;
    return base_->RehomeEntries(record);
  }
  Status Sync() override {
    if (Status s; !CrashGate(&s, nullptr)) return s;
    ++syncs_;
    return base_->Sync();
  }
  void SetDeferredSync(bool on) override { base_->SetDeferredSync(on); }
  void Abandon() override {
    if (!crashed()) base_->Abandon();
  }
  Status ReclaimSegment(SegmentId id, UpdateCount unow) override {
    if (Status s; !CrashGate(&s, nullptr)) return s;
    if (fail_reclaim_after_ >= 0 && reclaims_ >= fail_reclaim_after_) {
      return reclaim_error_;
    }
    ++reclaims_;
    return base_->ReclaimSegment(id, unow);
  }
  Status RecordDelete(PageId page, uint64_t seq, UpdateCount unow) override {
    if (Status s; !CrashGate(&s, nullptr)) return s;
    if (fail_delete_after_ >= 0 && deletes_ >= fail_delete_after_) {
      return delete_error_;
    }
    ++deletes_;
    return base_->RecordDelete(page, seq, unow);
  }
  Status ReadPagePayload(SegmentId id, uint64_t offset, PageId page,
                         uint32_t bytes, std::vector<uint8_t>* out) override {
    if (crashed()) return CrashedStatus();
    return base_->ReadPagePayload(id, offset, page, bytes, out);
  }
  Status Scan(BackendRecovery* out) override {
    if (crashed()) return CrashedStatus();
    return base_->Scan(out);
  }
  Status Close() override {
    // After a simulated crash the device is gone: the base was already
    // abandoned and nothing further may be flushed.
    if (crashed()) return CrashedStatus();
    return base_->Close();
  }
  std::string name() const override { return "fault(" + base_->name() + ")"; }

 private:
  static Status CrashedStatus() {
    return Status::Corruption("simulated crash: backend is dead");
  }
  // Returns true when the op may proceed; false with *out set when the
  // backend is (now) dead. `record` names the slot a crashing seal or
  // checkpoint was about to overwrite, for the partial-payload tear.
  bool CrashGate(Status* out, const BackendSegmentRecord* record);
  void TearAndDie(const BackendSegmentRecord* record);

  std::unique_ptr<SegmentBackend> base_;
  StoreConfig config_;
  uint32_t shard_id_ = 0;
  int64_t seals_ = 0;
  int64_t reclaims_ = 0;
  int64_t deletes_ = 0;
  int64_t checkpoints_ = 0;
  int64_t delta_checkpoints_ = 0;
  int64_t syncs_ = 0;
  int64_t rehomes_ = 0;
  int64_t fail_seal_after_ = -1;
  int64_t fail_reclaim_after_ = -1;
  int64_t fail_delete_after_ = -1;
  Status seal_error_;
  Status reclaim_error_;
  Status delete_error_;

  static constexpr int64_t kCrashDisarmed =
      std::numeric_limits<int64_t>::min() / 2;
  std::atomic<int64_t> crash_budget_{kCrashDisarmed};
  std::atomic<bool> crashed_{false};
  uint64_t crash_seed_ = 0;
};

/// Builds the backend selected by `config.backend` for one shard. Never
/// fails — path and platform errors surface from SegmentBackend::Open.
std::unique_ptr<SegmentBackend> MakeBackend(const StoreConfig& config);

/// Rejects configs whose backend cannot support reopen-after-restart
/// (the null backend persists nothing). Shared by
/// LogStructuredStore::Open and ShardedStore::Open.
Status ValidateReopenConfig(const StoreConfig& config);

}  // namespace lss

#endif  // LSS_CORE_IO_BACKEND_H_
