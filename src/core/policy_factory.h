#ifndef LSS_CORE_POLICY_FACTORY_H_
#define LSS_CORE_POLICY_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cleaning_policy.h"
#include "core/config.h"

namespace lss {

/// The cleaning-algorithm variants evaluated in the paper (§6.1.3 plus
/// the Figure 3 ablations). Each variant is a (policy, store-config
/// adjustments) pair: e.g. the MDC ablations share MdcPolicy but toggle
/// the write-sorting flags, and multi-log disables the sort buffer
/// because its separation mechanism is the logs themselves. The full
/// variant -> (policy, config flags) matrix is in docs/POLICIES.md.
enum class Variant {
  kAge,
  kGreedy,
  kCostBenefit,
  kMultiLog,
  kMultiLogOpt,
  kMdc,
  kMdcOpt,
  kMdcNoSepUser,    // Figure 3: user writes not sorted
  kMdcNoSepUserGc,  // Figure 3: neither user nor GC writes sorted
};

/// All variants, in the order the paper's figures list them.
std::vector<Variant> AllVariants();

/// The paper's label for a variant ("age", "greedy", "cost-benefit",
/// "multi-log", "multi-log-opt", "MDC", "MDC-opt", "MDC-no-sep-user",
/// "MDC-no-sep-user-GC").
std::string VariantName(Variant v);

/// Parses a label produced by VariantName; returns false if unknown.
bool ParseVariant(const std::string& name, Variant* out);

/// True if the variant needs an exact-frequency oracle installed on the
/// store (the *-opt variants).
bool VariantNeedsOracle(Variant v);

/// Creates the policy object for a variant.
std::unique_ptr<CleaningPolicy> MakePolicy(Variant v);

/// Applies the variant's placement/buffering conventions to `config`:
///  - age / greedy / cost-benefit: unbuffered arrival-order placement,
///    no frequency separation (they predate the idea);
///  - multi-log(-opt): unbuffered, GC re-writes re-enter the same log
///    stream as user writes;
///  - MDC family: buffered + sorted placement per the ablation flags.
/// Leaves device geometry (segments, trigger, batch, buffer size) alone
/// except that non-buffering variants zero the write buffer.
void ApplyVariantConfig(Variant v, StoreConfig* config);

/// Parses a segment-backend selection string and applies it to
/// `config`'s backend fields (core/io_backend.h). Accepted specs:
///   "null"               bookkeeping only (the default)
///   "file:DIR"           per-shard segment files under DIR, fsync on seal
///   "file-nosync:DIR"    same without fsync (page-cache speed)
///   "file-direct:DIR"    same with O_DIRECT payload writes
///   "uring:DIR"          file backend with io_uring-overlapped payload
///                        writes (core/uring_backend.h; probes at Open
///                        and falls back to pwrite where unavailable)
///   "uring-nosync:DIR"   same without fsync
/// Benches take this via LSS_BENCH_BACKEND; quickstart shows direct use.
Status ApplyBackendSpec(const std::string& spec, StoreConfig* config);

/// The spec string describing `config`'s current backend selection
/// (inverse of ApplyBackendSpec, for bench labels).
std::string BackendSpecName(const StoreConfig& config);

}  // namespace lss

#endif  // LSS_CORE_POLICY_FACTORY_H_
