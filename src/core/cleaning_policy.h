#ifndef LSS_CORE_CLEANING_POLICY_H_
#define LSS_CORE_CLEANING_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace lss {

class StoreShard;

/// Strategy interface for segment cleaning (paper §4, §6.1.3).
///
/// A policy makes two decisions:
///  1. *Victim selection* — which sealed segments to clean next, and how
///     many (SelectVictims). This is where age / greedy / cost-benefit /
///     multi-log / MDC differ most.
///  2. *Placement* — which "log" (open-segment stream) a page is appended
///     to (PlacementLog). Single-log policies always return 0; multi-log
///     partitions pages into logs by estimated update frequency.
///
/// Policies operate on one StoreShard — the complete single-log state.
/// Each shard of a ShardedStore owns its *own* policy instance (built by
/// MakePolicy), so policy state (multi-log's band->log map, per-page band
/// memory) is confined to a shard and never shared across threads;
/// SelectVictims is genuinely read-only (const), while PlacementLog is
/// deliberately non-const because band assignment mutates policy state.
/// All bookkeeping data the decisions consume (A, C, up2, seal time,
/// exact-frequency sums) lives on the segments.
class CleaningPolicy {
 public:
  virtual ~CleaningPolicy() = default;

  /// Human-readable policy name as used in the paper's figures.
  virtual std::string name() const = 0;

  /// Appends up to `max_victims` sealed segment ids to `out`, best victim
  /// first. `triggering_log` is the log whose allocation ran the free pool
  /// low (multi-log cleans locally around it; others ignore it). Must not
  /// return open or free segments. Returning fewer than `max_victims`
  /// (even one) is fine; returning none means nothing is cleanable.
  virtual void SelectVictims(const StoreShard& shard, uint32_t triggering_log,
                             size_t max_victims,
                             std::vector<SegmentId>* out) const = 0;

  /// Placement log for a page write. `upf_estimate` is the shard's current
  /// update-frequency estimate for the page (exact when an oracle is
  /// installed), or <= 0 when unknown (first write). `is_gc` distinguishes
  /// cleaner re-writes from user writes. Non-const: policies that assign
  /// pages to logs (multi-log) update their band state here — this is the
  /// explicit mutation step, so const policy methods stay read-only.
  virtual uint32_t PlacementLog(const StoreShard& shard, PageId page,
                                bool is_gc, double upf_estimate) {
    (void)shard;
    (void)page;
    (void)is_gc;
    (void)upf_estimate;
    return 0;
  }

  /// How many victims the policy wants per cleaning cycle; the store calls
  /// SelectVictims with min(this, config batch). Multi-log cleans one
  /// segment at a time (paper §6.1.3 "we only cleaned one segment at a
  /// time in order to be consistent with [26]").
  virtual size_t PreferredBatch(size_t config_batch) const {
    return config_batch;
  }
};

}  // namespace lss

#endif  // LSS_CORE_CLEANING_POLICY_H_
