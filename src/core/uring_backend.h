#ifndef LSS_CORE_URING_BACKEND_H_
#define LSS_CORE_URING_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/io_backend.h"

namespace lss {

/// FileBackend with payload writes overlapped through a raw io_uring
/// ring (io_uring_setup / io_uring_enter + mmap'd SQ/CQ rings — no
/// liburing). Same files, same append+checksum metadata log, same Scan:
/// the two backends produce byte-identical durable state by
/// construction, because everything except the payload-write seam is
/// literally shared code.
///
/// What overlaps: a seal's (or checkpoint's) whole-segment payload
/// write is packed into a pool buffer and submitted as one SQE; the
/// call returns after submission, so the pipeline thread packs the next
/// segment while the kernel writes the previous one. The metadata
/// append stays a synchronous pwrite — it is tiny, and keeping it
/// synchronous keeps the log byte-identical to FileBackend's with zero
/// ordering analysis.
///
/// What the crash-ordering argument rests on: completion tracking, not
/// submission order. SyncBoth() — the durability barrier every caller
/// already goes through (per-op in sync mode, per-batch group commit in
/// async mode, forced inside RehomeEntries) — first submits an
/// IORING_OP_FSYNC ordered behind every in-flight write with
/// IOSQE_IO_DRAIN, then reaps CQEs until nothing is in flight, checking
/// every completion's result (short writes are patched with a
/// synchronous pwrite and re-covered by a plain fsync). So when
/// SyncBoth returns, every payload byte it promises is verifiably on
/// the file, exactly as after FileBackend's pwrite+fsync — the
/// free-withheld-until-successors-sealed and rehome-barrier invariants
/// carry over unchanged. Two extra fences close the remaining windows:
/// a write submission first waits out any in-flight write overlapping
/// its byte range (a reseal racing its own slot's earlier checkpoint
/// must not let completion order pick the payload), and Abandon() waits
/// out submitted writes before releasing the files (submitted I/O is
/// DMA the simulated power loss does not un-issue), so the crash-torture
/// tear operates on deterministic file state.
///
/// Capability probe: io_uring may be compiled out of the kernel or
/// blocked by seccomp (common in CI containers). Open() probes by
/// actually building the ring and pushing a NOP through it; on failure
/// the instance logs the reason once and runs FileBackend's synchronous
/// path verbatim (name() still reports "uring"; the probe outcome is
/// visible as StoreStats::uring_available and fallback_reason()).
class UringBackend : public FileBackend {
 public:
  UringBackend() = default;
  ~UringBackend() override;

  UringBackend(const UringBackend&) = delete;
  UringBackend& operator=(const UringBackend&) = delete;

  Status Open(const StoreConfig& config, uint32_t shard_id,
              uint32_t num_shards, StoreStats* stats, bool recover) override;
  Status Close() override;
  void Abandon() override;
  std::string name() const override { return "uring"; }

  /// True when Open's probe found a working ring; false means every
  /// operation runs FileBackend's synchronous path.
  bool ring_active() const { return ring_fd_ >= 0; }
  /// Why the ring is inactive (empty while active or before Open).
  const std::string& fallback_reason() const { return fallback_reason_; }

  /// Process-wide capability probe: builds (and immediately tears down)
  /// a tiny ring, exercising both io_uring syscalls. Returns false with
  /// a human-readable reason (ENOSYS, seccomp EPERM, ...) where
  /// io_uring cannot be used — the tests' GTEST_SKIP condition.
  static bool ProbeAvailable(std::string* reason);

 protected:
  uint8_t* AcquirePayloadBuffer() override;
  Status WritePayload(const uint8_t* buf, uint64_t len,
                      uint64_t offset) override;
  Status SyncBoth() override;

 private:
  /// One in-flight payload write, keyed by its pool slot (== SQE
  /// user_data). `offset`/`len` drive the overlap fence and the
  /// short-write patch.
  struct Inflight {
    uint64_t offset = 0;
    uint64_t len = 0;
    bool active = false;
  };

  bool SetupRing(std::string* reason);
  void DestroyRing();
  Status SubmitWrite(uint32_t slot, uint64_t len, uint64_t offset);
  Status SubmitFsync();
  /// Drains every CQE currently available without blocking; result
  /// checking + short-write patching happen here.
  Status ReapCompletions();
  /// Blocks (io_uring_enter GETEVENTS) for at least one CQE, then
  /// reaps. The blocked time lands in StoreStats::uring_wait_seconds.
  Status WaitAndReap();
  /// Blocks until nothing (writes or fsync) is in flight.
  Status AwaitInflight();
  /// Blocks until no in-flight write overlaps [offset, offset + len).
  Status AwaitRange(uint64_t offset, uint64_t len);

  // Ring state. The mmap'd ring pointers are void* here so the header
  // stays free of <linux/io_uring.h>; the .cc does the casting.
  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;  // aliases sq_ring_ under FEAT_SINGLE_MMAP
  size_t cq_ring_bytes_ = 0;
  bool single_mmap_ = false;
  void* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;
  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t* sq_array_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t sq_entries_ = 0;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  void* cqes_ = nullptr;
  bool fixed_buffers_ = false;  // IORING_REGISTER_BUFFERS accepted
  bool fixed_file_ = false;     // data_fd_ registered at file index 0

  // Payload-buffer pool: one aligned slab of pool_slots_ slots of
  // segment_bytes each (clamped so the slab stays modest). A slot is
  // free, handed out (acquired_slot_), or pinned under an in-flight
  // write until its CQE is reaped.
  uint8_t* pool_ = nullptr;
  uint32_t pool_slots_ = 0;
  uint64_t slot_bytes_ = 0;
  std::vector<uint32_t> free_slots_;
  static constexpr uint32_t kNoSlot = ~0u;
  uint32_t acquired_slot_ = kNoSlot;

  std::vector<Inflight> inflight_;  // indexed by pool slot
  uint32_t inflight_count_ = 0;
  bool fsync_inflight_ = false;
  /// First CQE-reported I/O failure; once set, every ring operation
  /// keeps returning it (the store treats backend errors as sticky
  /// anyway — this just keeps the original cause visible).
  Status ring_error_;
  /// A short write was patched with a synchronous pwrite since the last
  /// durability barrier; the barrier then re-covers it with a plain
  /// fsync (the ring fsync may have been submitted before the patch).
  bool patched_since_sync_ = false;

  std::string fallback_reason_;
};

}  // namespace lss

#endif  // LSS_CORE_URING_BACKEND_H_
