#ifndef LSS_CORE_STORE_SHARD_H_
#define LSS_CORE_STORE_SHARD_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/cleaning_policy.h"
#include "core/config.h"
#include "core/io_backend.h"
#include "core/page_table.h"
#include "core/seal_pipeline.h"
#include "core/segment.h"
#include "core/stats.h"
#include "core/types.h"
#include "core/write_buffer.h"
#include "util/rng.h"

namespace lss {

/// Shard a page id routes to: a SplitMix64 hash decorrelates page ids
/// from their routing so contiguous id ranges spread across shards.
/// Every layer (ShardedStore, invariant checks, workload partitioning)
/// must agree on this one function.
inline uint32_t PageShard(PageId page, uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<uint32_t>(SplitMix64(page) % num_shards);
}

/// One independent log-structured log: segments, free pool, open
/// segments, user write buffer, update-count clock, stats and cleaning
/// policy — the complete single-log state of the paper's simulator
/// (§6.1.1). A LogStructuredStore is exactly one shard; a ShardedStore
/// owns several and routes pages to them by hash.
///
/// The page table is *shared*: each shard holds a reference to a
/// lock-striped PageTable so that a dense global table serves all shards.
/// A shard only ever touches metadata of pages it owns (PageShard), so
/// per-page accesses need no further synchronisation beyond the table's
/// stripe locks and the shard-level serialisation below.
///
/// Concurrency contract: a StoreShard is NOT internally synchronised.
/// All calls on one shard must be serialised by the caller (ShardedStore
/// wraps every shard in its own mutex; LogStructuredStore is
/// single-threaded by construction). The cleaning policy instance is
/// owned by the shard, so policy state (e.g. multi-log's band maps) is
/// confined to the shard and needs no locking of its own. With
/// StoreConfig::async_seal the shard additionally owns a SealPipeline —
/// one I/O thread that applies seal/reclaim/delete/checkpoint backend
/// ops in emission order off the write path; that thread never touches
/// shard state, so the contract above is unchanged.
///
/// The write path implements the paper's MDC machinery (§5): an optional
/// user write buffer whose contents are sorted by estimated update
/// frequency before being packed into segments, the up2 carry rules for
/// re-writes / first writes / GC writes, and separate (optionally sorted)
/// placement of GC'd pages.
class StoreShard {
 public:
  /// `table` must outlive the shard. `config` must already be validated;
  /// `policy` must be non-null. `shard_id`/`num_shards` define which
  /// pages the shard owns (all of them when num_shards <= 1). `backend`
  /// is the shard's persistence backend (null means the bookkeeping-only
  /// NullBackend); OpenBackend must be called before the first Write.
  StoreShard(const StoreConfig& config, std::unique_ptr<CleaningPolicy> policy,
             PageTable* table, uint32_t shard_id = 0, uint32_t num_shards = 1,
             std::unique_ptr<SegmentBackend> backend = nullptr);

  StoreShard(const StoreShard&) = delete;
  StoreShard& operator=(const StoreShard&) = delete;

  /// Closes (best effort) if the caller did not.
  ~StoreShard();

  /// Opens the persistence backend. `recover` true expects durable state
  /// from a previous run; follow with Recover() to rebuild from it.
  Status OpenBackend(bool recover = false);

  /// Rebuilds segments, free list, page-table entries and clocks from
  /// the backend's durable state (Open'd with recover = true). The
  /// newest version of each page wins by append sequence; delete
  /// tombstones keep dead pages dead. Leaves the shard ready for writes.
  Status Recover();

  /// Flushes the write buffer, seals all open segments so their contents
  /// are durable, and closes the backend. The shard rejects further
  /// writes afterwards. Called automatically at destruction, but callers
  /// that care about the resulting Status (or about durability
  /// guarantees) should call it explicitly.
  Status Close();

  /// Installs an exact update-frequency oracle for the `*-opt` policy
  /// variants. Must be set before the first Write. The oracle must be
  /// normalised so the mean frequency over user pages is 1, and must be
  /// safe to call from any shard's thread.
  void SetExactFrequencyOracle(ExactFrequencyFn oracle);

  /// Writes (inserts or updates) page `page`. `bytes` of 0 means the
  /// configured default page size. Advances the update-count clock.
  /// Fails with kOutOfSpace when cleaning cannot reclaim room.
  Status Write(PageId page, uint32_t bytes = 0);

  /// Removes a page; its storage becomes reclaimable garbage.
  Status Delete(PageId page);

  /// Drains any buffered user writes into segments.
  Status Flush();

  /// Durable barrier: flushes the buffer, persists a checkpoint record
  /// for every non-empty open segment, and waits until everything
  /// emitted so far (async mode: the whole seal queue) is applied and
  /// synced. On return every previously acknowledged write survives a
  /// crash. Requires checkpointing or a durable barrier to make sense —
  /// works in both sync and async modes, with any backend.
  Status Checkpoint();

  /// True if `page` currently has a live version (buffered or stored).
  bool Contains(PageId page) const { return table_.Present(page); }

  /// Reads the current version's payload through the backend. Only pages
  /// whose version lives in a *sealed* segment are readable — buffered or
  /// open-segment versions have not reached the device yet (Close seals
  /// everything, so after reopen every live page is readable). The null
  /// backend synthesizes the deterministic payload pattern.
  Status ReadPage(PageId page, std::vector<uint8_t>* out) const;

  /// Size in bytes of the current version of `page` (0 if absent).
  uint32_t PageSize(PageId page) const {
    return table_.Present(page) ? table_.Get(page).bytes : 0;
  }

  // --- Introspection (used by policies, benches and tests) -----------

  const StoreConfig& config() const { return config_; }
  /// Shard-side counters only; in async mode the device_* and
  /// group-fsync counters live with the I/O thread — use StatsSnapshot()
  /// for the complete picture.
  const StoreStats& stats() const { return stats_; }
  StoreStats& mutable_stats() { return stats_; }

  /// Shard counters merged with the seal pipeline's I/O-side counters
  /// (equal to stats() in synchronous mode).
  StoreStats StatsSnapshot() const;

  /// Zeroes all counters, shard- and I/O-side. In async mode this drains
  /// the pipeline first so no in-flight op straddles the reset.
  void ResetMeasurement();

  const CleaningPolicy& policy() const { return *policy_; }
  const SegmentBackend& backend() const { return *backend_; }

  uint32_t shard_id() const { return shard_id_; }
  uint32_t num_shards() const { return num_shards_; }

  /// True if this shard is the routing target of `page`.
  bool OwnsPage(PageId page) const {
    return num_shards_ <= 1 || PageShard(page, num_shards_) == shard_id_;
  }

  /// The update-count clock unow (paper §5.1.2). Each shard keeps its own
  /// clock, ticking once per user update routed to it.
  UpdateCount unow() const { return unow_; }

  /// All physical segments of this shard, indexed by (shard-local)
  /// SegmentId.
  const std::vector<Segment>& segments() const { return segments_; }

  /// Number of segments currently in the free pool.
  size_t FreeSegmentCount() const { return free_list_.size(); }

  /// Number of live (present) pages owned by this shard. O(P); for tests
  /// and diagnostics.
  size_t LivePageCount() const;

  const PageTable& page_table() const { return table_; }

  /// Whether an exact-frequency oracle is installed.
  bool HasOracle() const { return static_cast<bool>(oracle_); }

  /// Current update-frequency estimate for `page`: the oracle value when
  /// installed, otherwise 1/(interval since the page's last update) —
  /// the "previous update timestamp" estimate the multi-log paper uses.
  /// Returns 0 for pages with no history.
  double EstimateUpf(PageId page) const;

  /// Fill factor in effect: live page bytes / shard device bytes.
  double CurrentFillFactor() const;

  /// Exhaustive cross-check of page table <-> segment entries <-> free
  /// list <-> counters, restricted to pages this shard owns. O(device).
  /// Returns the first inconsistency found.
  Status CheckInvariants() const;

 private:
  // A page version being relocated by the cleaner.
  struct MovedPage {
    PageId page;
    uint32_t bytes;
    double up2;        // carried from the victim segment (§5.2.2)
    double exact_upf;  // oracle value or 0
    double est_upf;    // placement estimate at clean time
  };

  // Streams keep user data and cleaner output in different open segments.
  static constexpr uint32_t kUserStream = 0;
  static constexpr uint32_t kGcStream = 1;

  // The up2 value of the current version of a page at `loc` (the
  // containing segment's estimate, or the buffered value).
  double CurrentUp2(const PageLocation& loc) const;

  // Kills the old version of `page` at `loc` (segment entry or buffer
  // slot) prior to rewriting it.
  void KillOldVersion(PageId page, const PageLocation& loc);

  Status FlushUserBuffer();

  // Appends one page version to the open segment of the policy-chosen
  // log. Updates the page table and stats.
  Status PlacePage(PageId page, uint32_t bytes, double up2, double exact_upf,
                   double est_upf, bool is_gc, bool dead_on_arrival = false);

  // Returns the open segment for (log, stream), opening one if needed.
  // Returns nullptr on out-of-space.
  Segment* OpenSegmentFor(uint32_t log, uint32_t stream, bool is_gc,
                          SegmentId* id_out);

  // Seals the open segment of (log, stream) and persists it through the
  // backend. A backend write failure is returned (and must stop the
  // write path — the in-memory seal already happened, but durability is
  // gone).
  Status SealOpenSegment(uint32_t log, uint32_t stream);

  // Pops a free segment, running the cleaner first if the pool is low.
  SegmentId AllocateSegment(uint32_t log);

  // Reads the live pages of `victims` into `moved` (recording clean-time
  // emptiness), then resets the victims and returns them to the free
  // pool, queueing their backend reclaim for a crash-safe release point
  // (see reclaim_queue_). Returns the reclaimed (dead) bytes across the
  // victims.
  uint64_t HarvestVictims(const std::vector<SegmentId>& victims,
                          std::vector<MovedPage>* moved);

  // One cleaning invocation: repeatedly selects a victim batch, relocates
  // live pages, and frees the victims, until the free pool is above the
  // trigger or no progress is possible. Cleaning is entirely shard-local:
  // victims, relocation targets and the policy all belong to this shard,
  // so concurrent shards never contend on a victim.
  Status Clean(uint32_t triggering_log);

  static uint64_t OpenKey(uint32_t log, uint32_t stream) {
    return (static_cast<uint64_t>(log) << 1) | stream;
  }

  // Builds the backend's durable record for a segment this shard is
  // sealing (snapshots the entry list with current liveness). With
  // `checkpoint` the segment is still open and the record marks a
  // replayable prefix.
  BackendSegmentRecord MakeSealRecord(SegmentId id, const Segment& seg,
                                      bool checkpoint = false) const;

  // Announces every queued victim reclaim to the backend. Called only
  // when it is crash-safe to do so — see reclaim_queue_ below.
  Status ReleaseReclaims();

  // --- Backend emission: one seam for sync and async modes -----------
  // In sync mode these call the backend directly (bit-for-bit the PR 3
  // behaviour); in async mode they enqueue onto the seal pipeline, whose
  // queue order preserves the emission order.

  // Shared async path: enqueue with backpressure accounting; a rejected
  // enqueue maps to the pipeline's sticky error (or a stopped-pipeline
  // error). `ticket_out` receives the op's ticket when wanted.
  Status EnqueueOp(SealPipeline::Op op, uint64_t* ticket_out = nullptr);

  Status EmitSeal(SegmentId id, const Segment& seg);
  Status EmitCheckpoint(SegmentId id, const Segment& seg);
  // Delta path (StoreConfig::checkpoint_delta): emits only the suffix
  // past the slot's durable watermark, chained to the previous record.
  Status EmitCheckpointDelta(SegmentId id, const Segment& seg);
  // Checkpoint decision for one open segment: skip when the emitted
  // chain already covers every entry, delta when a same-generation chain
  // exists, full otherwise (no chain, generation changed, delta disabled
  // or O_DIRECT).
  Status EmitOpenSegmentCheckpoint(SegmentId id, const Segment& seg);
  Status EmitReclaim(SegmentId id, UpdateCount unow);
  Status EmitDelete(PageId page, uint64_t seq, UpdateCount unow);

  bool CheckpointingEnabled() const {
    return config_.checkpoint_interval_ops > 0;
  }

  // Delta checkpoints are gated off under O_DIRECT: a suffix pwrite is
  // not guaranteed to be aligned, and the full-rewrite path already is.
  bool DeltaCheckpointsEnabled() const {
    return config_.checkpoint_delta && !config_.backend_direct_io;
  }

  // Bumps the slot's fill generation and closes its emitted chain; any
  // later checkpoint of the slot starts over with a full record. Called
  // whenever the slot's payload identity changes: Segment::Open (reuse),
  // seal, and harvest/reset.
  void InvalidateCheckpointChain(SegmentId id) {
    ++slot_generation_[id];
    ckpt_chain_[id].valid = false;
  }

  // Advances the durable watermark of every slot whose pending
  // checkpoint record the pipeline has applied AND synced (applied
  // tickets only move after the batch group-fsync). Sync mode commits
  // watermarks at emission instead and never queues here.
  void CommitDurableWatermarks();

  /// True if `id` is a cleaned victim whose free record is still
  /// withheld (reclaim_queue_ is at most a few entries, so linear).
  bool IsWithheld(SegmentId id) const {
    for (const QueuedReclaim& qr : reclaim_queue_) {
      if (qr.id == id) return true;
    }
    return false;
  }

  // Persists a checkpoint of every open segment currently holding
  // GC-moved pages (except `skip`, which is being sealed right now).
  // Called before a victim's free record is forced out by a slot reseal:
  // the checkpoints put the victim's relocated pages on the device ahead
  // of the free record, closing the PR 3 residual crash window.
  Status CheckpointGcDirtyOpen(SegmentId skip);

  // Emits a checkpoint for every non-empty open segment, in
  // deterministic key order.
  Status CheckpointOpenSegments();

  // Emits a checkpoint round (CheckpointOpenSegments) once
  // checkpoint_interval_ops backend ops have accumulated.
  Status MaybePeriodicCheckpoint();

  // True when `page`'s current version is recorded — or will be by the
  // next checkpoint round: absent (its tombstone was emitted at delete
  // time), or located at a real entry of a sealed/open segment. False
  // while the version sits in the write buffer or is still mid-placement
  // (the table then points at a stale or dangling location).
  bool SuccessorRecorded(PageId page) const;

  // Strict form of SuccessorRecorded: true only when the current version
  // is provably in an already-*emitted* backend record — absent
  // (tombstone emitted at delete time) or located in a sealed segment.
  // An open segment counts only via a completed checkpoint round, which
  // callers must sequence themselves; emission is permanent, so once
  // true for a given version the superseding record stays in the log.
  bool SuccessorEmitted(PageId page) const;

  // Persists a re-homing record carrying `entries` (still-needed entries
  // of withheld victim `victim`) before the slot is reused. The backend
  // makes the record durable internally — even mid-batch in async mode.
  Status EmitRehome(SegmentId victim, std::vector<Segment::Entry> entries);

  // Checkpoint mode: emits the free record of every withheld reclaim
  // whose erasure is safe — all pending successors recorded — after one
  // checkpoint round covering open segments. Reclaims with unresolved
  // successors stay withheld.
  Status ReleaseSafeReclaims();

  // Surfaces the pipeline's sticky error into sticky_error_ (async mode;
  // backend failures happen on the I/O thread and are reported on the
  // next store operation, like a late group-commit ack).
  void AbsorbPipelineError();

  StoreConfig config_;
  std::unique_ptr<CleaningPolicy> policy_;
  std::unique_ptr<SegmentBackend> backend_;
  /// Non-null iff config_.async_seal: the per-shard I/O thread. Declared
  /// after backend_ so it shuts down before the backend is destroyed.
  std::unique_ptr<SealPipeline> pipeline_;
  ExactFrequencyFn oracle_;

  std::vector<Segment> segments_;
  std::vector<SegmentId> free_list_;
  std::unordered_map<uint64_t, SegmentId> open_segments_;  // OpenKey -> id

  /// Cleaned victims whose reclaim has not yet been announced to the
  /// backend. A victim's durable free record erases its entries from
  /// recovery, so it must not become durable while the victim's
  /// relocated live pages sit in segments that have not sealed — the
  /// crash would lose previously-durable data. The shard therefore
  /// withholds ReclaimSegment until no open segment holds GC-moved
  /// pages (gc_dirty_open_ empty), or until the victim's slot itself is
  /// resealed with new data (at which point the old payload is being
  /// overwritten and withholding protects nothing; the free record must
  /// then precede the new seal record in the metadata log).
  ///
  /// Residual window (checkpointing OFF only): the simulator reuses
  /// freed slots immediately, so a victim can be resealed — forcing its
  /// free record out — while a GC segment holding its relocated pages is
  /// still open; a crash exactly there reverts those pages to older
  /// versions. With checkpoint_interval_ops > 0 the window is closed:
  /// CheckpointGcDirtyOpen persists those open segments immediately
  /// before the forced free record, so replay always finds the
  /// relocated copies. (Holding freed slots back instead would change
  /// allocation order and break the null-backend determinism contract.)
  struct QueuedReclaim {
    SegmentId id;
    UpdateCount unow;
    /// The victim entries its durable seal record still holds live that
    /// a recovery might need: live pages harvested but not yet placed
    /// (the table dangles at the victim mid-clean), and in-place-killed
    /// entries whose superseding version was not yet recorded at harvest
    /// time (write buffer or mid-placement) — exactly the entries the
    /// seal record keeps live under their original page (MakeSealRecord).
    /// While any remain unsettled the victim's durable record may be the
    /// only durable copy, so in checkpoint mode its free record is
    /// withheld (ReleaseSafeReclaims) and a reuse of the slot must first
    /// re-home them under a kMetaRehome record (AllocateSegment).
    /// Entries are pruned once their current version is provably in an
    /// *emitted* record (SuccessorEmitted after a checkpoint round);
    /// emission is permanent, so pruning never needs to be undone.
    std::vector<Segment::Entry> needed;
  };
  std::vector<QueuedReclaim> reclaim_queue_;
  /// Open segments that received GC-moved pages since they were opened.
  std::unordered_set<SegmentId> gc_dirty_open_;

  /// Async mode: pipeline ticket of each segment's latest emitted seal,
  /// indexed by SegmentId. ReadPage waits on it so a read never races
  /// the payload write still sitting in the queue (0 = nothing pending).
  std::vector<uint64_t> seal_ticket_;
  /// Backend ops emitted since the last checkpoint round (periodic
  /// checkpointing, see MaybePeriodicCheckpoint).
  uint64_t ops_since_checkpoint_ = 0;

  /// Per-slot fill generation, bumped by InvalidateCheckpointChain each
  /// time the slot's payload identity changes. A delta checkpoint is
  /// valid only against a chain of the same generation; watermarks
  /// committed late (async) are dropped when the generation moved on.
  std::vector<uint64_t> slot_generation_;
  /// What the slot's emitted (not necessarily durable) checkpoint chain
  /// covers. Skip-when-covered is judged against this: emitted records
  /// precede any later free record in queue = log order, which is all
  /// the crash-ordering invariants need.
  struct CheckpointChain {
    bool valid = false;
    uint64_t generation = 0;
    uint64_t emitted_entries = 0;
    uint64_t emitted_bytes = 0;
  };
  std::vector<CheckpointChain> ckpt_chain_;
  /// Async mode: checkpoint records emitted but not yet known durable.
  /// CommitDurableWatermarks moves each into the Segment's watermark
  /// once the pipeline's applied ticket passes it — never earlier, so a
  /// delta's base range is always durable (the ISSUE's "watermark
  /// advance only after durability"). Consecutive deltas of a slot may
  /// therefore overlap; byte-stability makes the overlap identical.
  struct PendingWatermark {
    SegmentId id;
    uint64_t generation;
    uint32_t entries;
    uint64_t bytes;
    uint64_t ticket;
  };
  std::vector<PendingWatermark> pending_watermarks_;

  PageTable& table_;
  WriteBuffer buffer_;
  StoreStats stats_;

  uint32_t shard_id_;
  uint32_t num_shards_;

  UpdateCount unow_ = 0;
  /// Shard-wide append sequence: one tick per segment entry and delete
  /// tombstone, giving recovery a total version order per page.
  uint64_t write_seq_ = 0;
  bool cleaning_ = false;
  bool closed_ = false;
  Status sticky_error_;
};

}  // namespace lss

#endif  // LSS_CORE_STORE_SHARD_H_
