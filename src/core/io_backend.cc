#include "core/io_backend.h"

#include "core/uring_backend.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include <cerrno>

namespace lss {

void FillPagePayload(PageId page, uint32_t bytes, uint8_t* out) {
  uint64_t word_index = 0;
  uint32_t off = 0;
  while (off + 8 <= bytes) {
    const uint64_t w = PagePatternWord(page, word_index++);
    std::memcpy(out + off, &w, 8);
    off += 8;
  }
  if (off < bytes) {
    const uint64_t w = PagePatternWord(page, word_index);
    std::memcpy(out + off, &w, bytes - off);
  }
}

bool VerifyPagePayload(PageId page, uint32_t bytes, const uint8_t* data) {
  uint64_t word_index = 0;
  uint32_t off = 0;
  while (off + 8 <= bytes) {
    const uint64_t w = PagePatternWord(page, word_index++);
    if (std::memcmp(data + off, &w, 8) != 0) return false;
    off += 8;
  }
  if (off < bytes) {
    const uint64_t w = PagePatternWord(page, word_index);
    if (std::memcmp(data + off, &w, bytes - off) != 0) return false;
  }
  return true;
}

std::unique_ptr<SegmentBackend> MakeBackend(const StoreConfig& config) {
  switch (config.backend) {
    case BackendKind::kNull:
      return std::make_unique<NullBackend>();
    case BackendKind::kFile:
      return std::make_unique<FileBackend>();
    case BackendKind::kUring:
      return std::make_unique<UringBackend>();
  }
  return std::make_unique<NullBackend>();
}

Status ValidateReopenConfig(const StoreConfig& config) {
  if (config.backend == BackendKind::kNull) {
    return Status::InvalidArgument(
        "reopen requires a durable backend (the null backend persists "
        "nothing)");
  }
  return Status::OK();
}

#ifdef _WIN32

// The file backend is POSIX-only for now; the interface compiles
// everywhere so the rest of the store stays portable.
FileBackend::~FileBackend() {}
Status FileBackend::Open(const StoreConfig&, uint32_t, uint32_t, StoreStats*,
                         bool) {
  return Status::InvalidArgument("file backend requires a POSIX platform");
}
Status FileBackend::SealSegment(const BackendSegmentRecord&) {
  return Status::InvalidArgument("file backend not open");
}
Status FileBackend::Checkpoint(const BackendSegmentRecord&) {
  return Status::InvalidArgument("file backend not open");
}
Status FileBackend::CheckpointDelta(const BackendSegmentRecord&) {
  return Status::InvalidArgument("file backend not open");
}
Status FileBackend::RehomeEntries(const BackendSegmentRecord&) {
  return Status::InvalidArgument("file backend not open");
}
Status FileBackend::WriteSegmentRecord(const BackendSegmentRecord&, bool) {
  return Status::InvalidArgument("file backend not open");
}
uint8_t* FileBackend::AcquirePayloadBuffer() { return nullptr; }
Status FileBackend::WritePayload(const uint8_t*, uint64_t, uint64_t) {
  return Status::InvalidArgument("file backend not open");
}
Status FileBackend::SyncBoth() {
  return Status::InvalidArgument("file backend not open");
}
Status FileBackend::Sync() {
  return Status::InvalidArgument("file backend not open");
}
void FileBackend::Abandon() {}
void FileBackend::ReleaseFds() {}
Status FileBackend::ReclaimSegment(SegmentId, UpdateCount) {
  return Status::InvalidArgument("file backend not open");
}
Status FileBackend::RecordDelete(PageId, uint64_t, UpdateCount) {
  return Status::InvalidArgument("file backend not open");
}
Status FileBackend::ReadPagePayload(SegmentId, uint64_t, PageId, uint32_t,
                                    std::vector<uint8_t>*) {
  return Status::InvalidArgument("file backend not open");
}
Status FileBackend::Scan(BackendRecovery*) {
  return Status::InvalidArgument("file backend not open");
}
Status FileBackend::Close() { return Status::OK(); }
std::string FileBackend::DataPath(const std::string& dir, uint32_t shard_id) {
  (void)shard_id;
  return dir;
}
std::string FileBackend::MetaPath(const std::string& dir, uint32_t shard_id) {
  (void)shard_id;
  return dir;
}

#else  // POSIX

namespace {

// Binary metadata-log format. Records are appended in operation order
// and replayed front to back by Scan; a truncated tail (crash mid
// append) simply ends the replay. All fields are fixed-width and the
// structs are laid out padding-free, so a record written on one run
// reads back identically on the next (same-machine durability, which is
// all a per-shard segment file can promise anyway).
constexpr uint32_t kMetaMagic = 0x4C535331;  // "LSS1"

enum MetaType : uint16_t {
  kMetaSeal = 1,
  kMetaFree = 2,
  kMetaDelete = 3,
  kMetaGeometry = 4,
  kMetaCheckpoint = 5,       // open-segment snapshot; SealBody layout
  kMetaRehome = 6,           // re-homed victim entries; SealBody layout
  kMetaCheckpointDelta = 7,  // suffix-only checkpoint; DeltaBody layout
};

// Metadata-log format version, recorded in the geometry record.
//   0  PR 3: seal / free / delete records only.
//   1  adds kMetaCheckpoint (same body layout as a seal record).
//   2  adds kMetaRehome (same body layout; segment_id names the victim
//      slot, no payload accompanies the record).
//   3  adds kMetaCheckpointDelta (DeltaBody): a checkpoint that rewrote
//      only the payload suffix appended since the slot's previous
//      checkpoint record, to which it chains by replay ordinal.
// An older log simply lacks the newer record types, so the current
// reader accepts all four (io_backend_test pins that compatibility).
// The geometry record is written once at create time and never
// rewritten, so a new writer appending to an old log leaves the old
// stamp in place — a crash mid-upgrade yields an older-stamped log
// containing newer records, which the reader therefore parses
// regardless of the stamped format.
constexpr uint32_t kMetaFormatPr3 = 0;
constexpr uint32_t kMetaFormatCheckpoint = 1;
constexpr uint32_t kMetaFormatRehome = 2;
constexpr uint32_t kMetaFormatDelta = 3;

struct MetaHeader {
  uint32_t magic;
  uint16_t type;
  uint16_t reserved;
  uint64_t body_len;
  /// FNV-1a over (type, body_len, body). Detects torn records — a seal
  /// record spans pages and unordered writeback can persist a valid
  /// header whose entry tail never reached the device.
  uint64_t checksum;
};
static_assert(sizeof(MetaHeader) == 24, "MetaHeader must pack to 24 bytes");

uint64_t Fnv1a(uint64_t h, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

uint64_t RecordChecksum(uint16_t type, const void* body, uint64_t body_len) {
  uint64_t h = 0xCBF29CE484222325ull;
  h = Fnv1a(h, &type, sizeof(type));
  h = Fnv1a(h, &body_len, sizeof(body_len));
  return Fnv1a(h, body, body_len);
}

struct SealBody {
  uint32_t segment_id;
  uint32_t log;
  uint64_t source;  // SegmentSource widened for alignment
  uint64_t open_time;
  uint64_t seal_time;
  uint64_t unow;
  uint64_t entry_count;
};
static_assert(sizeof(SealBody) == 48, "SealBody must pack to 48 bytes");

struct EntryRec {
  uint64_t page;
  uint32_t bytes;
  uint32_t reserved;
  uint64_t seq;
  uint64_t last_update;
  double up2;
  double exact_upf;
};
static_assert(sizeof(EntryRec) == 48, "EntryRec must pack to 48 bytes");

// Body of a kMetaCheckpointDelta record: the SealBody fields plus the
// chain linkage. `entry_count` counts only the suffix entries serialised
// after the body (EntryRec array, exactly as in a seal record);
// `prefix_entries` is how many entries of the assembled chain survive
// below this delta — replay truncates to that count, then appends the
// suffix. The whole record is covered by the standard header FNV.
struct DeltaBody {
  uint32_t segment_id;
  uint32_t log;
  uint64_t source;
  uint64_t open_time;
  uint64_t seal_time;
  uint64_t unow;
  uint64_t entry_count;
  uint64_t generation;      // slot fill generation the chain belongs to
  uint64_t base_ordinal;    // replay ordinal of the previous chain record
  uint64_t prefix_entries;  // chain entries retained below this delta
  uint64_t suffix_offset;   // payload byte range this record rewrote:
  uint64_t suffix_length;   //   [suffix_offset, suffix_offset + length)
};
static_assert(sizeof(DeltaBody) == 88, "DeltaBody must pack to 88 bytes");

struct FreeBody {
  uint32_t segment_id;
  uint32_t reserved;
  uint64_t unow;
};
static_assert(sizeof(FreeBody) == 16, "FreeBody must pack to 16 bytes");

struct DeleteBody {
  uint64_t page;
  uint64_t seq;
  uint64_t unow;
};
static_assert(sizeof(DeleteBody) == 24, "DeleteBody must pack to 24 bytes");

// Written once, first, at create time; recovery refuses a file whose
// geometry does not match the reopening store (different shard count,
// segment size or device size silently corrupts page routing) or whose
// format version is newer than this reader.
struct GeometryBody {
  uint32_t shard_id;
  uint32_t num_shards;
  uint32_t num_segments;
  uint32_t segment_bytes;
  uint32_t page_bytes;
  uint32_t format;  // kMetaFormat*; was reserved (== 0) in PR 3 logs
};
static_assert(sizeof(GeometryBody) == 24, "GeometryBody must pack to 24 bytes");

// Serialises one checksummed metadata record (header + body).
std::vector<uint8_t> BuildRecord(uint16_t type, const void* body,
                                 uint64_t body_len) {
  std::vector<uint8_t> rec(sizeof(MetaHeader) + body_len);
  MetaHeader hdr{kMetaMagic, type, 0, body_len,
                 RecordChecksum(type, body, body_len)};
  std::memcpy(rec.data(), &hdr, sizeof(hdr));
  std::memcpy(rec.data() + sizeof(hdr), body, body_len);
  return rec;
}

// ENOSPC is the device's out-of-space, the same condition the simulator
// reports when cleaning cannot reclaim room; everything else is an
// environment failure the caller cannot reason about.
Status ErrnoStatus(const char* what, int err) {
  const std::string msg =
      std::string(what) + ": " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) return Status::OutOfSpace(msg);
  return Status::Corruption(msg);
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Full-length pwrite (retries partial writes and EINTR).
Status PwriteAll(int fd, const void* data, size_t len, uint64_t offset) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite", errno);
    }
    p += n;
    offset += static_cast<uint64_t>(n);
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PreadAll(int fd, void* data, size_t len, uint64_t offset) {
  uint8_t* p = static_cast<uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::pread(fd, p, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", errno);
    }
    if (n == 0) return Status::Corruption("pread: unexpected end of file");
    p += n;
    offset += static_cast<uint64_t>(n);
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

FileBackend::~FileBackend() { Close(); }

std::string FileBackend::DataPath(const std::string& dir, uint32_t shard_id) {
  char name[32];
  std::snprintf(name, sizeof(name), "/shard-%04u.dat", shard_id);
  return dir + name;
}

std::string FileBackend::MetaPath(const std::string& dir, uint32_t shard_id) {
  char name[32];
  std::snprintf(name, sizeof(name), "/shard-%04u.meta", shard_id);
  return dir + name;
}

Status FileBackend::Open(const StoreConfig& config, uint32_t shard_id,
                         uint32_t num_shards, StoreStats* stats,
                         bool recover) {
  if (data_fd_ >= 0) return Status::InvalidArgument("backend already open");
  config_ = config;
  stats_ = stats;
  shard_id_ = shard_id;
  num_shards_ = num_shards;
  const std::string data_path = DataPath(config.backend_dir, shard_id);
  const std::string meta_path = MetaPath(config.backend_dir, shard_id);

  int flags = O_RDWR;
  if (recover) {
    // Reopen requires the files a previous run left behind.
    struct stat st;
    if (::stat(data_path.c_str(), &st) != 0 ||
        ::stat(meta_path.c_str(), &st) != 0) {
      return Status::NotFound("no durable state to recover in " +
                              config.backend_dir);
    }
  } else {
    flags |= O_CREAT | O_TRUNC;
  }

  direct_io_ = config.backend_direct_io;
  int data_flags = flags;
#ifdef O_DIRECT
  if (direct_io_) data_flags |= O_DIRECT;
#endif
  data_fd_ = ::open(data_path.c_str(), data_flags, 0644);
  if (data_fd_ < 0 && direct_io_ && (errno == EINVAL || errno == EOPNOTSUPP)) {
    // Filesystem refuses O_DIRECT (e.g. tmpfs): fall back to buffered.
    direct_io_ = false;
    data_fd_ = ::open(data_path.c_str(), flags, 0644);
  }
  if (data_fd_ < 0) return ErrnoStatus("open data file", errno);
#ifndef O_DIRECT
  direct_io_ = false;
#endif

  if (direct_io_) {
    // Page reads are sub-segment and unaligned; give them a buffered fd.
    read_fd_ = ::open(data_path.c_str(), O_RDONLY);
    if (read_fd_ < 0) {
      const Status s = ErrnoStatus("open data file for reads", errno);
      Close();
      return s;
    }
  }

  meta_fd_ = ::open(meta_path.c_str(), flags, 0644);
  if (meta_fd_ < 0) {
    const Status s = ErrnoStatus("open meta file", errno);
    Close();
    return s;
  }

  if (!recover) {
    // Reserve the full payload extent so slot offsets are always valid.
    const uint64_t extent = static_cast<uint64_t>(config.num_segments) *
                            config.segment_bytes;
    if (::ftruncate(data_fd_, static_cast<off_t>(extent)) != 0) {
      const Status s = ErrnoStatus("ftruncate data file", errno);
      Close();
      return s;
    }
    meta_offset_ = 0;
  } else {
    struct stat st;
    if (::fstat(meta_fd_, &st) != 0) {
      const Status s = ErrnoStatus("fstat meta file", errno);
      Close();
      return s;
    }
    meta_offset_ = static_cast<uint64_t>(st.st_size);
  }

  // One whole-segment write buffer, page-aligned for O_DIRECT.
  void* buf = nullptr;
  if (::posix_memalign(&buf, 4096, config.segment_bytes) != 0) {
    Close();
    return Status::Corruption("posix_memalign failed");
  }
  payload_buf_ = static_cast<uint8_t*>(buf);

  // Writer-side replay numbering and checkpoint-chain state. On recover
  // the following Scan() re-derives next_ordinal_ from the surviving
  // records; chains always start closed — the first checkpoint of any
  // slot after (re)open is a full one.
  next_ordinal_ = 0;
  chain_tip_ordinal_.assign(config_.num_segments, -1);
  chain_generation_.assign(config_.num_segments, 0);

  if (!recover) {
    // First record: the geometry fingerprint recovery validates against.
    GeometryBody body{shard_id_,           num_shards_,
                      config_.num_segments, config_.segment_bytes,
                      config_.page_bytes,   kMetaFormatDelta};
    const std::vector<uint8_t> rec =
        BuildRecord(kMetaGeometry, &body, sizeof(body));
    Status s = AppendMeta(rec.data(), rec.size());
    if (!s.ok()) {
      Close();
      return s;
    }
  }
  return Status::OK();
}

Status FileBackend::AppendMeta(const void* data, size_t len) {
  const auto t0 = std::chrono::steady_clock::now();
  Status s = PwriteAll(meta_fd_, data, len, meta_offset_);
  if (!s.ok()) return s;
  meta_offset_ += len;
  ++next_ordinal_;
  if (stats_ != nullptr) {
    stats_->device_bytes_written += len;
    stats_->device_write_ops += 1;
    stats_->device_write_seconds += SecondsSince(t0);
  }
  return Status::OK();
}

uint8_t* FileBackend::AcquirePayloadBuffer() { return payload_buf_; }

// The base payload write: a blocking full-length pwrite, timed into the
// device counters. UringBackend overrides this with SQE submission.
Status FileBackend::WritePayload(const uint8_t* buf, uint64_t len,
                                 uint64_t offset) {
  const auto t0 = std::chrono::steady_clock::now();
  Status s = PwriteAll(data_fd_, buf, len, offset);
  if (!s.ok()) return s;
  if (stats_ != nullptr) {
    stats_->device_bytes_written += len;
    stats_->device_write_ops += 1;
    stats_->device_write_seconds += SecondsSince(t0);
  }
  return Status::OK();
}

Status FileBackend::SyncBoth() {
  if (!config_.backend_fsync) return Status::OK();
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t synced = 0;
  if (data_fd_ >= 0) {
    if (::fsync(data_fd_) != 0) return ErrnoStatus("fsync data file", errno);
    ++synced;
  }
  if (meta_fd_ >= 0) {
    if (::fsync(meta_fd_) != 0) return ErrnoStatus("fsync meta file", errno);
    ++synced;
  }
  if (stats_ != nullptr && synced > 0) {
    stats_->device_fsyncs += synced;
    stats_->device_fsync_seconds += SecondsSince(t0);
  }
  return Status::OK();
}

// Reclaimed segments drain in two stages so the *punch* can never
// destroy payload the durable metadata still references (the caller is
// responsible for the complementary ordering: StoreShard withholds
// ReclaimSegment until the victim's relocated pages are in sealed
// segments, so the free record cannot erase the only durable copy):
//   stage 1  the free record is appended to the metadata log — ordered
//            *before* the seal record being written now, so a reclaimed
//            slot that was reallocated and resealed replays correctly;
//   stage 2  only after an fsync has made the free record durable is the
//            payload slot hole-punched (a punch is journalled by the
//            filesystem independently of our unsynced appends, so
//            punching earlier could leave a durable seal record pointing
//            at vanished payload).
// A pending punch for a slot the new seal overwrites is dropped — the
// fresh payload replaces the old bytes anyway.
Status FileBackend::DrainReclaims(bool punching_allowed) {
  for (PendingReclaim& pr : pending_reclaims_) {
    if (pr.record_appended) continue;
    FreeBody body{pr.id, 0, pr.unow};
    const std::vector<uint8_t> rec = BuildRecord(kMetaFree, &body, sizeof(body));
    Status s = AppendMeta(rec.data(), rec.size());
    if (!s.ok()) return s;
    pr.record_appended = true;
    // The free record supersedes every earlier record of the slot; a
    // later checkpoint of the reused slot must start a fresh chain.
    chain_tip_ordinal_[pr.id] = -1;
    // With fsync off we make no crash promises; treat appended as done.
    if (!config_.backend_fsync) pr.record_durable = true;
  }
  if (!punching_allowed) return Status::OK();
  size_t kept = 0;
  for (size_t i = 0; i < pending_reclaims_.size(); ++i) {
    PendingReclaim& pr = pending_reclaims_[i];
    if (!pr.record_durable) {
      pending_reclaims_[kept++] = pr;
      continue;
    }
#ifdef FALLOC_FL_PUNCH_HOLE
    // Filesystems without hole support just skip the punch — the free
    // record is what actually reclaims the segment.
    if (pr.punch &&
        ::fallocate(data_fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                    static_cast<off_t>(static_cast<uint64_t>(pr.id) *
                                       config_.segment_bytes),
                    static_cast<off_t>(config_.segment_bytes)) == 0) {
      if (stats_ != nullptr) {
        stats_->device_bytes_punched += config_.segment_bytes;
      }
    }
#endif
  }
  pending_reclaims_.resize(kept);
  return Status::OK();
}

Status FileBackend::SealSegment(const BackendSegmentRecord& record) {
  return WriteSegmentRecord(record, /*checkpoint=*/false);
}

// A checkpoint is a seal record for a segment that is still open: the
// payload prefix written so far plus a kMetaCheckpoint metadata record.
// Replay treats it as the segment's latest state until a real seal (or
// free record) supersedes it, so a crash after the checkpoint loses only
// the appends since — the partial-segment persistence that closes the
// reseal-while-GC-open crash window (see StoreShard::reclaim_queue_).
Status FileBackend::Checkpoint(const BackendSegmentRecord& record) {
  return WriteSegmentRecord(record, /*checkpoint=*/true);
}

// A delta checkpoint rewrites only the payload suffix appended since the
// shard's durable watermark and appends a kMetaCheckpointDelta record
// chained by ordinal to the slot's previous checkpoint record. Two
// invariants make the partial rewrite safe: the bytes below
// suffix_offset were covered by earlier records of the same chain and
// are never touched, and any overlap between consecutive deltas (the
// shard bases each on the *durable* watermark, so an unsynced delta's
// range may be rewritten) is byte-identical — dead entries keep their
// orig_page pattern, exactly as in a full rewrite.
Status FileBackend::CheckpointDelta(const BackendSegmentRecord& record) {
  if (data_fd_ < 0) return Status::InvalidArgument("backend not open");
  if (record.id >= config_.num_segments) {
    return Status::InvalidArgument("delta checkpoint: segment id out of range");
  }
  if (record.suffix_offset > config_.segment_bytes ||
      record.suffix_length > config_.segment_bytes - record.suffix_offset) {
    return Status::InvalidArgument("delta checkpoint: suffix out of range");
  }
  // Same pre-write ordering as a full rewrite: drop any pending punch of
  // this slot and put queued free records on the log first (a queued
  // free record for this very slot also closes its chain, so the guard
  // below must run after the drain).
  for (PendingReclaim& pr : pending_reclaims_) {
    if (pr.id == record.id) pr.punch = false;
  }
  Status s = DrainReclaims(/*punching_allowed=*/false);
  if (!s.ok()) return s;

  if (chain_tip_ordinal_[record.id] < 0 ||
      chain_generation_[record.id] != record.generation) {
    // The shard must fall back to a full checkpoint whenever the slot
    // generation changed or no prior checkpoint exists; reaching here is
    // a caller bug, not a device state we can write through.
    return Status::InvalidArgument(
        "delta checkpoint without a matching chain base");
  }

  // Suffix payload, built at buffer offset (entry.offset - suffix_offset).
  // Entries must tile the declared range exactly — a mismatch means the
  // caller's watermark bookkeeping is broken.
  uint8_t* buf = AcquirePayloadBuffer();
  if (buf == nullptr) {
    return Status::Corruption("delta checkpoint: no payload buffer");
  }
  uint64_t cursor = record.suffix_offset;
  for (const Segment::Entry& e : record.entries) {
    if (e.offset != cursor ||
        cursor + e.bytes > record.suffix_offset + record.suffix_length) {
      return Status::Corruption("delta checkpoint: entries do not tile suffix");
    }
    const PageId payload_page = e.page != kInvalidPage ? e.page : e.orig_page;
    if (payload_page != kInvalidPage) {
      FillPagePayload(payload_page, e.bytes,
                      buf + (cursor - record.suffix_offset));
    } else {
      std::memset(buf + (cursor - record.suffix_offset), 0, e.bytes);
    }
    cursor += e.bytes;
  }
  if (cursor != record.suffix_offset + record.suffix_length) {
    return Status::Corruption("delta checkpoint: entries do not tile suffix");
  }

  if (record.suffix_length > 0) {
    s = WritePayload(buf, record.suffix_length,
                     static_cast<uint64_t>(record.id) * config_.segment_bytes +
                         record.suffix_offset);
    if (!s.ok()) return s;
  }

  std::vector<uint8_t> meta_body(sizeof(DeltaBody) +
                                 record.entries.size() * sizeof(EntryRec));
  DeltaBody body{};
  body.segment_id = record.id;
  body.log = record.log;
  body.source = static_cast<uint64_t>(record.source);
  body.open_time = record.open_time;
  body.seal_time = record.seal_time;
  body.unow = record.unow;
  body.entry_count = record.entries.size();
  body.generation = record.generation;
  body.base_ordinal =
      static_cast<uint64_t>(chain_tip_ordinal_[record.id]);
  body.prefix_entries = record.prefix_entries;
  body.suffix_offset = record.suffix_offset;
  body.suffix_length = record.suffix_length;
  std::memcpy(meta_body.data(), &body, sizeof(body));
  uint8_t* p = meta_body.data() + sizeof(body);
  for (const Segment::Entry& e : record.entries) {
    EntryRec er{};
    er.page = e.page;
    er.bytes = e.bytes;
    er.seq = e.seq;
    er.last_update = e.last_update;
    er.up2 = e.up2;
    er.exact_upf = e.exact_upf;
    std::memcpy(p, &er, sizeof(er));
    p += sizeof(er);
  }
  const std::vector<uint8_t> rec =
      BuildRecord(kMetaCheckpointDelta, meta_body.data(), meta_body.size());
  s = AppendMeta(rec.data(), rec.size());
  if (!s.ok()) return s;
  chain_tip_ordinal_[record.id] = static_cast<int64_t>(next_ordinal_ - 1);
  if (stats_ != nullptr) {
    stats_->checkpoint_bytes_written += record.suffix_length + rec.size();
  }
  if (deferred_sync_) return Status::OK();
  s = SyncBoth();
  if (!s.ok()) return s;
  for (PendingReclaim& pr : pending_reclaims_) {
    if (pr.record_appended) pr.record_durable = true;
  }
  return DrainReclaims(/*punching_allowed=*/true);
}

// A re-homing record carries the still-needed entries of a withheld
// victim slot (`record.id`) and NO payload — those entries' payloads are
// pattern-reconstructible, and the victim slot's own payload is about to
// be overwritten by its new occupant. The record must be DURABLE before
// the shard reuses the slot, even in group-commit mode: a crashing
// rewrite of the slot may tear the victim's payload while a batch-end
// Sync never arrives, and replay would otherwise still resolve the
// victim's pages to its stale (now torn) seal record. Hence the forced
// SyncBoth here — which also makes every earlier append (the records
// superseding the entries NOT re-homed, and the stage-1 free records)
// durable, completing the re-homing invariant in one barrier. With
// backend_fsync off no crash promises exist and SyncBoth is a no-op.
Status FileBackend::RehomeEntries(const BackendSegmentRecord& record) {
  if (meta_fd_ < 0) return Status::InvalidArgument("backend not open");
  if (record.id >= config_.num_segments) {
    return Status::InvalidArgument("rehome: segment id out of range");
  }
  // Stage-1 drain: queued free records (including, typically, the
  // victim's own) land before the re-homing record, matching emission
  // order = log order.
  Status s = DrainReclaims(/*punching_allowed=*/false);
  if (!s.ok()) return s;

  std::vector<uint8_t> meta_body(sizeof(SealBody) +
                                 record.entries.size() * sizeof(EntryRec));
  SealBody body{};
  body.segment_id = record.id;
  body.log = record.log;
  body.source = static_cast<uint64_t>(record.source);
  body.open_time = record.open_time;
  body.seal_time = record.seal_time;
  body.unow = record.unow;
  body.entry_count = record.entries.size();
  std::memcpy(meta_body.data(), &body, sizeof(body));
  uint8_t* p = meta_body.data() + sizeof(body);
  for (const Segment::Entry& e : record.entries) {
    EntryRec er{};
    er.page = e.page;
    er.bytes = e.bytes;
    er.seq = e.seq;
    er.last_update = e.last_update;
    er.up2 = e.up2;
    er.exact_upf = e.exact_upf;
    std::memcpy(p, &er, sizeof(er));
    p += sizeof(er);
  }
  const std::vector<uint8_t> rec =
      BuildRecord(kMetaRehome, meta_body.data(), meta_body.size());
  s = AppendMeta(rec.data(), rec.size());
  if (!s.ok()) return s;
  // Durability barrier, deliberately ignoring deferred_sync_.
  s = SyncBoth();
  if (!s.ok()) return s;
  for (PendingReclaim& pr : pending_reclaims_) {
    if (pr.record_appended) pr.record_durable = true;
  }
  return DrainReclaims(/*punching_allowed=*/true);
}

Status FileBackend::WriteSegmentRecord(const BackendSegmentRecord& record,
                                       bool checkpoint) {
  if (data_fd_ < 0) return Status::InvalidArgument("backend not open");
  if (record.id >= config_.num_segments) {
    return Status::InvalidArgument("seal: segment id out of range");
  }

  // A punch pending against the slot we are about to rewrite would
  // destroy the new payload; the overwrite supersedes it.
  for (PendingReclaim& pr : pending_reclaims_) {
    if (pr.id == record.id) pr.punch = false;
  }
  // Stage-1 drain: free records land before this seal record.
  Status s = DrainReclaims(/*punching_allowed=*/false);
  if (!s.ok()) return s;

  // Payload: live entries carry the deterministic pattern; entries that
  // died in place keep their ORIGINAL pattern (orig_page) so every
  // rewrite of this slot produces byte-identical content for regions an
  // earlier durable record (a checkpoint of the same segment) may still
  // reference — a torn rewrite then only garbles the new suffix, whose
  // only referencing record dies with the crash. Only entries whose
  // original page is unknown (recovery-reconstructed dead entries, never
  // rewritten) and the unused tail are zero-filled.
  uint8_t* buf = AcquirePayloadBuffer();
  if (buf == nullptr) return Status::Corruption("seal: no payload buffer");
  uint64_t cursor = 0;
  for (const Segment::Entry& e : record.entries) {
    if (cursor + e.bytes > config_.segment_bytes) {
      return Status::Corruption("seal: entries overflow segment capacity");
    }
    const PageId payload_page = e.page != kInvalidPage ? e.page : e.orig_page;
    if (payload_page != kInvalidPage) {
      FillPagePayload(payload_page, e.bytes, buf + cursor);
    } else {
      std::memset(buf + cursor, 0, e.bytes);
    }
    cursor += e.bytes;
  }
  std::memset(buf + cursor, 0, config_.segment_bytes - cursor);

  s = WritePayload(buf, config_.segment_bytes,
                   static_cast<uint64_t>(record.id) * config_.segment_bytes);
  if (!s.ok()) return s;

  // Metadata record: body + entry array, checksummed as one record.
  std::vector<uint8_t> meta_body(sizeof(SealBody) +
                                 record.entries.size() * sizeof(EntryRec));
  SealBody body{};
  body.segment_id = record.id;
  body.log = record.log;
  body.source = static_cast<uint64_t>(record.source);
  body.open_time = record.open_time;
  body.seal_time = record.seal_time;
  body.unow = record.unow;
  body.entry_count = record.entries.size();
  std::memcpy(meta_body.data(), &body, sizeof(body));
  uint8_t* p = meta_body.data() + sizeof(body);
  for (const Segment::Entry& e : record.entries) {
    EntryRec er{};
    er.page = e.page;
    er.bytes = e.bytes;
    er.seq = e.seq;
    er.last_update = e.last_update;
    er.up2 = e.up2;
    er.exact_upf = e.exact_upf;
    std::memcpy(p, &er, sizeof(er));
    p += sizeof(er);
  }
  const std::vector<uint8_t> rec = BuildRecord(
      checkpoint ? kMetaCheckpoint : kMetaSeal, meta_body.data(),
      meta_body.size());
  s = AppendMeta(rec.data(), rec.size());
  if (!s.ok()) return s;
  if (checkpoint) {
    // This record is now the slot's chain tip: deltas may chain onto it
    // as long as the shard stays in the same fill generation.
    chain_tip_ordinal_[record.id] = static_cast<int64_t>(next_ordinal_ - 1);
    chain_generation_[record.id] = record.generation;
    if (stats_ != nullptr) {
      stats_->checkpoint_bytes_written += config_.segment_bytes + rec.size();
    }
  } else {
    // A real seal supersedes the chain; the slot re-records in full next.
    chain_tip_ordinal_[record.id] = -1;
  }
  // Group-commit mode: durability (and the punches that require it)
  // arrives with the pipeline's next explicit Sync().
  if (deferred_sync_) return Status::OK();
  s = SyncBoth();
  if (!s.ok()) return s;
  // Everything appended so far — including the stage-1 free records —
  // is now durable; stage-2 punches are safe.
  for (PendingReclaim& pr : pending_reclaims_) {
    if (pr.record_appended) pr.record_durable = true;
  }
  return DrainReclaims(/*punching_allowed=*/true);
}

Status FileBackend::Sync() {
  if (data_fd_ < 0 && meta_fd_ < 0) {
    return Status::InvalidArgument("backend not open");
  }
  // Free records queued since the last seal must be on the log before
  // the fsync that this group commit promises covers them.
  Status s = DrainReclaims(/*punching_allowed=*/false);
  if (!s.ok()) return s;
  s = SyncBoth();
  if (!s.ok()) return s;
  for (PendingReclaim& pr : pending_reclaims_) {
    if (pr.record_appended) pr.record_durable = true;
  }
  return DrainReclaims(/*punching_allowed=*/true);
}

Status FileBackend::ReclaimSegment(SegmentId id, UpdateCount unow) {
  if (data_fd_ < 0) return Status::InvalidArgument("backend not open");
  if (id >= config_.num_segments) {
    return Status::InvalidArgument("reclaim: segment id out of range");
  }
  // Deferred: the free record and the hole punch happen on the next
  // seal/close (see DrainReclaims). Losing a queued reclaim to a crash
  // is benign — recovery sees the victim still sealed, and its stale
  // entries lose newest-wins to the relocated copies, or faithfully
  // restore the pre-clean state if those copies' seal was lost too.
  pending_reclaims_.push_back(PendingReclaim{id, unow, false, false, true});
  return Status::OK();
}

Status FileBackend::RecordDelete(PageId page, uint64_t seq, UpdateCount unow) {
  if (meta_fd_ < 0) return Status::InvalidArgument("backend not open");
  DeleteBody body{page, seq, unow};
  const std::vector<uint8_t> rec = BuildRecord(kMetaDelete, &body, sizeof(body));
  Status s = AppendMeta(rec.data(), rec.size());
  if (!s.ok()) return s;
  // In fsync mode an acknowledged delete must survive a crash, exactly
  // like an acknowledged seal; only the metadata log needs syncing. (A
  // lost *reclaim* record, by contrast, is benign: recovery then sees
  // the victim still sealed, and its stale entries lose newest-wins to
  // the relocated copies — or faithfully restore the pre-clean state if
  // those copies' seal was lost too.) In group-commit mode the
  // pipeline's next Sync() covers the tombstone instead.
  if (config_.backend_fsync && !deferred_sync_) {
    const auto t0 = std::chrono::steady_clock::now();
    if (::fsync(meta_fd_) != 0) return ErrnoStatus("fsync meta file", errno);
    if (stats_ != nullptr) {
      stats_->device_fsyncs += 1;
      stats_->device_fsync_seconds += SecondsSince(t0);
    }
  }
  return Status::OK();
}

Status FileBackend::ReadPagePayload(SegmentId id, uint64_t offset, PageId page,
                                    uint32_t bytes, std::vector<uint8_t>* out) {
  if (read_fd_ < 0 && data_fd_ < 0) {
    return Status::InvalidArgument("backend not open");
  }
  if (id >= config_.num_segments ||
      offset + bytes > config_.segment_bytes) {
    return Status::InvalidArgument("read: location out of range");
  }
  // Reads go through the buffered fd: page reads are sub-segment and
  // unaligned, which O_DIRECT rejects.
  const int fd = read_fd_ >= 0 ? read_fd_ : data_fd_;
  out->resize(bytes);
  Status s = PreadAll(fd, out->data(), bytes,
                      static_cast<uint64_t>(id) * config_.segment_bytes +
                          offset);
  if (!s.ok()) return s;
  if (!VerifyPagePayload(page, bytes, out->data())) {
    return Status::Corruption("read: payload does not match page pattern");
  }
  return Status::OK();
}

Status FileBackend::Scan(BackendRecovery* out) {
  if (meta_fd_ < 0) return Status::InvalidArgument("backend not open");
  *out = BackendRecovery{};

  struct stat st;
  if (::fstat(meta_fd_, &st) != 0) return ErrnoStatus("fstat meta", errno);
  std::vector<uint8_t> log(static_cast<size_t>(st.st_size));
  if (!log.empty()) {
    Status s = PreadAll(meta_fd_, log.data(), log.size(), 0);
    if (!s.ok()) return s;
  }

  // The log must lead with a geometry record matching the reopening
  // store, or recovery would silently misroute pages.
  {
    if (log.size() < sizeof(MetaHeader) + sizeof(GeometryBody)) {
      return Status::Corruption("recovery: metadata log has no geometry");
    }
    MetaHeader hdr;
    std::memcpy(&hdr, log.data(), sizeof(hdr));
    if (hdr.magic != kMetaMagic || hdr.type != kMetaGeometry ||
        hdr.body_len != sizeof(GeometryBody) ||
        hdr.checksum != RecordChecksum(hdr.type, log.data() + sizeof(hdr),
                                       hdr.body_len)) {
      return Status::Corruption("recovery: metadata log has no geometry");
    }
    GeometryBody gb;
    std::memcpy(&gb, log.data() + sizeof(hdr), sizeof(gb));
    if (gb.shard_id != shard_id_ || gb.num_shards != num_shards_ ||
        gb.num_segments != config_.num_segments ||
        gb.segment_bytes != config_.segment_bytes ||
        gb.page_bytes != config_.page_bytes) {
      return Status::Corruption(
          "recovery: store geometry mismatch (created with " +
          std::to_string(gb.num_shards) + " shards, " +
          std::to_string(gb.num_segments) + " segments of " +
          std::to_string(gb.segment_bytes) + " bytes)");
    }
    // Older logs (format 0/1) simply lack the newer record types and
    // replay unchanged; a format newer than this reader could hold
    // records we would misparse as a torn tail and silently truncate.
    // Note the stamp is a lower bound only: a new writer appending to a
    // reopened old log never rewrites the geometry record, so the
    // replay below parses every known record type regardless of stamp.
    if (gb.format != kMetaFormatPr3 && gb.format != kMetaFormatCheckpoint &&
        gb.format != kMetaFormatRehome && gb.format != kMetaFormatDelta) {
      return Status::Corruption(
          "recovery: metadata log format " + std::to_string(gb.format) +
          " is newer than this build supports");
    }
  }

  // Replay: the latest record per segment wins. Replay stops at the
  // first bad record (missing magic, impossible length, checksum
  // mismatch) — the standard WAL rule: a torn tail is expected after a
  // crash, and nothing after a corrupt record can be trusted because
  // replay is order-sensitive.
  std::vector<int64_t> latest_seal(config_.num_segments, -1);
  std::vector<BackendSegmentRecord> seals;
  size_t off = 0;
  uint64_t valid_end = 0;
  // Replay position of each record; recovery breaks equal-seq ties
  // between page versions toward the later record (see
  // BackendSegmentRecord::ordinal).
  uint64_t ordinal = 0;
  while (off + sizeof(MetaHeader) <= log.size()) {
    MetaHeader hdr;
    std::memcpy(&hdr, log.data() + off, sizeof(hdr));
    if (hdr.magic != kMetaMagic) break;
    // Overflow-safe bounds check: a corrupt body_len must truncate the
    // replay, not wrap the sum past log.size().
    if (hdr.body_len > log.size() - off - sizeof(hdr)) break;
    const uint8_t* body = log.data() + off + sizeof(hdr);
    // Torn-write detection: unordered page writeback can persist a valid
    // header whose body tail never reached the device.
    if (hdr.checksum != RecordChecksum(hdr.type, body, hdr.body_len)) break;
    if (hdr.type == kMetaSeal || hdr.type == kMetaCheckpoint ||
        hdr.type == kMetaRehome) {
      if (hdr.body_len < sizeof(SealBody)) break;
      SealBody sb;
      std::memcpy(&sb, body, sizeof(sb));
      if (sb.entry_count > (hdr.body_len - sizeof(SealBody)) / sizeof(EntryRec))
        break;
      if (hdr.body_len != sizeof(SealBody) + sb.entry_count * sizeof(EntryRec))
        break;
      if (sb.segment_id >= config_.num_segments) break;
      BackendSegmentRecord rec;
      rec.id = sb.segment_id;
      rec.log = sb.log;
      rec.source = static_cast<SegmentSource>(sb.source);
      rec.open_time = sb.open_time;
      rec.seal_time = sb.seal_time;
      rec.unow = sb.unow;
      rec.checkpoint = hdr.type == kMetaCheckpoint;
      rec.ordinal = ordinal;
      rec.entries.reserve(sb.entry_count);
      const uint8_t* ep = body + sizeof(sb);
      for (uint64_t i = 0; i < sb.entry_count; ++i) {
        EntryRec er;
        std::memcpy(&er, ep + i * sizeof(er), sizeof(er));
        Segment::Entry e;
        e.page = er.page;
        e.bytes = er.bytes;
        e.seq = er.seq;
        e.last_update = er.last_update;
        e.up2 = er.up2;
        e.exact_upf = er.exact_upf;
        out->max_seq = std::max(out->max_seq, e.seq);
        rec.entries.push_back(e);
      }
      out->unow = std::max(out->unow, sb.unow);
      if (hdr.type == kMetaRehome) {
        // Every re-homing record is kept, in replay order: records for
        // the same slot name different victim incarnations, and a free
        // record for the slot must not clear them (the victim's free
        // record lands alongside its re-homing record by design).
        // Recovery resolves the entries per page, newest-wins.
        out->rehomed.push_back(std::move(rec));
      } else {
        latest_seal[sb.segment_id] = static_cast<int64_t>(seals.size());
        seals.push_back(std::move(rec));
      }
    } else if (hdr.type == kMetaCheckpointDelta) {
      if (hdr.body_len < sizeof(DeltaBody)) break;
      DeltaBody db;
      std::memcpy(&db, body, sizeof(db));
      if (db.entry_count > (hdr.body_len - sizeof(DeltaBody)) / sizeof(EntryRec))
        break;
      if (hdr.body_len != sizeof(DeltaBody) + db.entry_count * sizeof(EntryRec))
        break;
      if (db.segment_id >= config_.num_segments) break;
      if (db.suffix_offset > config_.segment_bytes ||
          db.suffix_length > config_.segment_bytes - db.suffix_offset) {
        break;
      }
      BackendSegmentRecord rec;
      rec.id = db.segment_id;
      rec.log = db.log;
      rec.source = static_cast<SegmentSource>(db.source);
      rec.open_time = db.open_time;
      rec.seal_time = db.seal_time;
      rec.unow = db.unow;
      rec.checkpoint = true;
      rec.delta = true;
      rec.ordinal = ordinal;
      rec.generation = db.generation;
      rec.base_ordinal = db.base_ordinal;
      rec.prefix_entries = db.prefix_entries;
      rec.suffix_offset = db.suffix_offset;
      rec.suffix_length = db.suffix_length;
      rec.entries.reserve(db.entry_count);
      const uint8_t* ep = body + sizeof(db);
      uint64_t suffix_bytes = 0;
      for (uint64_t i = 0; i < db.entry_count; ++i) {
        EntryRec er;
        std::memcpy(&er, ep + i * sizeof(er), sizeof(er));
        Segment::Entry e;
        e.page = er.page;
        e.bytes = er.bytes;
        e.seq = er.seq;
        e.last_update = er.last_update;
        e.up2 = er.up2;
        e.exact_upf = er.exact_upf;
        out->max_seq = std::max(out->max_seq, e.seq);
        suffix_bytes += e.bytes;
        rec.entries.push_back(e);
      }
      if (suffix_bytes != db.suffix_length) break;
      out->unow = std::max(out->unow, db.unow);
      // Deltas are NOT last-record-per-slot resolved: recovery walks the
      // chain from the surviving base record, and a delta orphaned by a
      // later seal/free/full-checkpoint never matches any chain tip.
      out->deltas.push_back(std::move(rec));
    } else if (hdr.type == kMetaFree) {
      if (hdr.body_len != sizeof(FreeBody)) break;
      FreeBody fb;
      std::memcpy(&fb, body, sizeof(fb));
      if (fb.segment_id >= config_.num_segments) break;
      latest_seal[fb.segment_id] = -1;
      out->unow = std::max(out->unow, fb.unow);
    } else if (hdr.type == kMetaDelete) {
      if (hdr.body_len != sizeof(DeleteBody)) break;
      DeleteBody db;
      std::memcpy(&db, body, sizeof(db));
      out->deletes.emplace_back(db.page, db.seq);
      out->max_seq = std::max(out->max_seq, db.seq);
      out->unow = std::max(out->unow, db.unow);
    } else if (hdr.type == kMetaGeometry) {
      // Validated above; nothing to replay.
    } else {
      break;
    }
    off += sizeof(hdr) + hdr.body_len;
    valid_end = off;
    ++ordinal;
  }

  for (SegmentId id = 0; id < config_.num_segments; ++id) {
    if (latest_seal[id] >= 0) {
      out->segments.push_back(std::move(seals[latest_seal[id]]));
    }
  }
  // Future appends continue after the last whole record, numbered where
  // the replay left off; every checkpoint chain is closed (the recovered
  // segments are rebuilt as sealed, so the first checkpoint of any slot
  // in the new run is a full one).
  next_ordinal_ = ordinal;
  chain_tip_ordinal_.assign(config_.num_segments, -1);
  // The truncated tail is cut off the file, not just skipped: stale
  // bytes past the new append position could otherwise be misparsed as
  // records by the *next* recovery once fresh appends stop short of them.
  meta_offset_ = valid_end;
  if (valid_end < log.size() &&
      ::ftruncate(meta_fd_, static_cast<off_t>(valid_end)) != 0) {
    return ErrnoStatus("ftruncate meta tail", errno);
  }
  return Status::OK();
}

Status FileBackend::Close() {
  Status result = Status::OK();
  if (data_fd_ >= 0 && meta_fd_ >= 0) {
    // Flush queued reclaims: records first, sync, then punches.
    result = DrainReclaims(/*punching_allowed=*/false);
    if (result.ok()) result = SyncBoth();
    if (result.ok()) {
      for (PendingReclaim& pr : pending_reclaims_) {
    if (pr.record_appended) pr.record_durable = true;
  }
      result = DrainReclaims(/*punching_allowed=*/true);
    }
  } else if (data_fd_ >= 0 || meta_fd_ >= 0) {
    result = SyncBoth();
  }
  ReleaseFds();
  return result;
}

// Power-loss simulation: the queued free records and any unsynced
// appends simply never happen, exactly as if the process died here.
void FileBackend::Abandon() {
  pending_reclaims_.clear();
  ReleaseFds();
}

void FileBackend::ReleaseFds() {
  if (data_fd_ >= 0) {
    ::close(data_fd_);
    data_fd_ = -1;
  }
  if (read_fd_ >= 0) {
    ::close(read_fd_);
    read_fd_ = -1;
  }
  if (meta_fd_ >= 0) {
    ::close(meta_fd_);
    meta_fd_ = -1;
  }
  std::free(payload_buf_);
  payload_buf_ = nullptr;
}

#endif  // POSIX

// --- FaultInjectionBackend crash simulation --------------------------------

void FaultInjectionBackend::CrashAfterOps(int64_t ops, uint64_t seed) {
  crash_seed_ = seed;
  crash_budget_.store(ops, std::memory_order_release);
}

bool FaultInjectionBackend::CrashGate(Status* out,
                                      const BackendSegmentRecord* record) {
  if (crashed_.load(std::memory_order_acquire)) {
    *out = CrashedStatus();
    return false;
  }
  // Mutating ops are serialised (one thread drives a backend at a time),
  // but CrashAfterOps may arm from another thread mid-run; the atomics
  // make that handoff race-free.
  if (crash_budget_.load(std::memory_order_relaxed) == kCrashDisarmed) {
    return true;
  }
  if (crash_budget_.fetch_sub(1, std::memory_order_acq_rel) > 0) return true;
  TearAndDie(record);
  *out = CrashedStatus();
  return false;
}

void FaultInjectionBackend::TearAndDie(const BackendSegmentRecord* record) {
  // The uring backend shares the file backend's on-disk layout (same
  // DataPath/MetaPath, byte-identical metadata log), so its crash tear
  // is the same file surgery.
  const bool file_base =
      (base_->name() == "file" && config_.backend == BackendKind::kFile) ||
      (base_->name() == "uring" && config_.backend == BackendKind::kUring);
  // Drop the base first: its queued free records and any other pending
  // work die with the "process", never reaching the files we tear below.
  base_->Abandon();
  crashed_.store(true, std::memory_order_release);
  if (!file_base) return;
#ifndef _WIN32
  Rng rng(crash_seed_);
  const std::string meta_path =
      FileBackend::MetaPath(config_.backend_dir, shard_id_);
  const std::string data_path =
      FileBackend::DataPath(config_.backend_dir, shard_id_);

  // The crashing record was mid-append: leave the log tail the way an
  // interrupted writeback would — a clean cut, loose garbage, or a
  // valid-looking header whose body never fully landed (the torn-record
  // case Scan's checksums must catch).
  const uint64_t style = rng.NextBounded(4);
  int mfd = ::open(meta_path.c_str(), O_WRONLY | O_APPEND);
  if (mfd >= 0) {
    if (style == 1 || style == 3) {
      struct TornHeader {
        uint32_t magic;
        uint16_t type;
        uint16_t reserved;
        uint64_t body_len;
        uint64_t checksum;
      } hdr{0x4C535331u, 1, 0, 64 + rng.NextBounded(4096), rng()};
      (void)!::write(mfd, &hdr, sizeof(hdr));
      uint8_t junk[512];
      const size_t body = static_cast<size_t>(
          rng.NextBounded(std::min<uint64_t>(hdr.body_len, sizeof(junk))));
      for (size_t i = 0; i < body; ++i) {
        junk[i] = static_cast<uint8_t>(rng());
      }
      (void)!::write(mfd, junk, body);
    } else if (style == 2) {
      uint8_t junk[96];
      const size_t n = 1 + static_cast<size_t>(rng.NextBounded(sizeof(junk)));
      for (size_t i = 0; i < n; ++i) {
        junk[i] = static_cast<uint8_t>(rng());
      }
      (void)!::write(mfd, junk, n);
    }
    ::close(mfd);
  }

  // A seal or checkpoint that died mid-payload leaves its slot partially
  // overwritten. A real torn pwrite leaves every byte at either its old
  // or its NEW value — so the tear must write a prefix of the payload
  // the crashing op would actually have produced (same reconstruction as
  // FileBackend::WriteSegmentRecord), not arbitrary junk: regions an
  // earlier durable record of this slot references are byte-identical in
  // the rewrite (Segment::Entry::orig_page keeps dead entries stable),
  // so only bytes no surviving metadata record describes can change.
  // For a delta checkpoint only the suffix range was in flight: the tear
  // writes a random prefix of the suffix payload at suffix_offset and
  // never touches the bytes below it — those belong to earlier durable
  // records of the chain and real hardware was not writing them.
  if (record != nullptr && (style == 3 || rng.NextBounded(2) == 0)) {
    int dfd = ::open(data_path.c_str(), O_WRONLY);
    if (dfd >= 0) {
      const uint64_t range_base = record->delta ? record->suffix_offset : 0;
      const uint64_t range_len =
          record->delta ? record->suffix_length : config_.segment_bytes;
      std::vector<uint8_t> payload(static_cast<size_t>(range_len), 0);
      uint64_t cursor = range_base;
      for (const Segment::Entry& e : record->entries) {
        const uint64_t at = record->delta ? e.offset : cursor;
        if (at < range_base || at + e.bytes > range_base + range_len) break;
        const PageId payload_page =
            e.page != kInvalidPage ? e.page : e.orig_page;
        if (payload_page != kInvalidPage) {
          FillPagePayload(payload_page, e.bytes,
                          payload.data() + (at - range_base));
        }
        cursor = at + e.bytes;
      }
      const size_t len = static_cast<size_t>(rng.NextBounded(range_len + 1));
      if (len > 0) {
        (void)!::pwrite(dfd, payload.data(), len,
                        static_cast<off_t>(static_cast<uint64_t>(record->id) *
                                               config_.segment_bytes +
                                           range_base));
      }
      ::close(dfd);
    }
  }
#else
  (void)record;
#endif
}

}  // namespace lss
