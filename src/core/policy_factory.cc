#include "core/policy_factory.h"

#include "core/policies/age_policy.h"
#include "core/policies/cost_benefit_policy.h"
#include "core/policies/greedy_policy.h"
#include "core/policies/mdc_policy.h"
#include "core/policies/multilog_policy.h"

namespace lss {

std::vector<Variant> AllVariants() {
  return {Variant::kAge,         Variant::kGreedy,
          Variant::kCostBenefit, Variant::kMultiLog,
          Variant::kMultiLogOpt, Variant::kMdc,
          Variant::kMdcOpt,      Variant::kMdcNoSepUser,
          Variant::kMdcNoSepUserGc};
}

std::string VariantName(Variant v) {
  switch (v) {
    case Variant::kAge: return "age";
    case Variant::kGreedy: return "greedy";
    case Variant::kCostBenefit: return "cost-benefit";
    case Variant::kMultiLog: return "multi-log";
    case Variant::kMultiLogOpt: return "multi-log-opt";
    case Variant::kMdc: return "MDC";
    case Variant::kMdcOpt: return "MDC-opt";
    case Variant::kMdcNoSepUser: return "MDC-no-sep-user";
    case Variant::kMdcNoSepUserGc: return "MDC-no-sep-user-GC";
  }
  return "unknown";
}

bool ParseVariant(const std::string& name, Variant* out) {
  for (Variant v : AllVariants()) {
    if (VariantName(v) == name) {
      *out = v;
      return true;
    }
  }
  return false;
}

bool VariantNeedsOracle(Variant v) {
  return v == Variant::kMultiLogOpt || v == Variant::kMdcOpt;
}

std::unique_ptr<CleaningPolicy> MakePolicy(Variant v) {
  switch (v) {
    case Variant::kAge:
      return std::make_unique<AgePolicy>();
    case Variant::kGreedy:
      return std::make_unique<GreedyPolicy>();
    case Variant::kCostBenefit:
      return std::make_unique<CostBenefitPolicy>();
    case Variant::kMultiLog:
      return std::make_unique<MultiLogPolicy>(/*use_exact_frequency=*/false);
    case Variant::kMultiLogOpt:
      return std::make_unique<MultiLogPolicy>(/*use_exact_frequency=*/true);
    case Variant::kMdc:
    case Variant::kMdcNoSepUser:
    case Variant::kMdcNoSepUserGc:
      return std::make_unique<MdcPolicy>(/*use_exact_frequency=*/false);
    case Variant::kMdcOpt:
      return std::make_unique<MdcPolicy>(/*use_exact_frequency=*/true);
  }
  return nullptr;
}

Status ApplyBackendSpec(const std::string& spec, StoreConfig* config) {
  if (spec == "null" || spec.empty()) {
    config->backend = BackendKind::kNull;
    config->backend_dir.clear();
    config->backend_fsync = true;
    config->backend_direct_io = false;
    return Status::OK();
  }
  const size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string dir =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  const bool is_file =
      kind == "file" || kind == "file-nosync" || kind == "file-direct";
  const bool is_uring = kind == "uring" || kind == "uring-nosync";
  if (!is_file && !is_uring) {
    return Status::InvalidArgument(
        "unknown backend spec '" + spec +
        "' (want null | file:DIR | file-nosync:DIR | file-direct:DIR | "
        "uring:DIR | uring-nosync:DIR)");
  }
  if (dir.empty()) {
    return Status::InvalidArgument("backend spec '" + spec +
                                   "' is missing the directory");
  }
  config->backend = is_uring ? BackendKind::kUring : BackendKind::kFile;
  config->backend_dir = dir;
  config->backend_fsync = kind != "file-nosync" && kind != "uring-nosync";
  config->backend_direct_io = kind == "file-direct";
  return Status::OK();
}

std::string BackendSpecName(const StoreConfig& config) {
  if (config.backend == BackendKind::kNull) return "null";
  std::string kind;
  if (config.backend == BackendKind::kUring) {
    kind = config.backend_fsync ? "uring" : "uring-nosync";
  } else if (config.backend_direct_io) {
    kind = "file-direct";
  } else if (!config.backend_fsync) {
    kind = "file-nosync";
  } else {
    kind = "file";
  }
  return kind + ":" + config.backend_dir;
}

void ApplyVariantConfig(Variant v, StoreConfig* config) {
  switch (v) {
    case Variant::kAge:
    case Variant::kGreedy:
    case Variant::kCostBenefit:
      config->write_buffer_segments = 0;
      config->separate_user_writes = false;
      config->separate_gc_writes = false;
      config->gc_shares_user_stream = false;
      break;
    case Variant::kMultiLog:
    case Variant::kMultiLogOpt:
      config->write_buffer_segments = 0;
      config->separate_user_writes = false;
      config->separate_gc_writes = false;
      config->gc_shares_user_stream = true;
      break;
    case Variant::kMdc:
    case Variant::kMdcOpt:
      config->separate_user_writes = true;
      config->separate_gc_writes = true;
      config->gc_shares_user_stream = false;
      break;
    case Variant::kMdcNoSepUser:
      config->separate_user_writes = false;
      config->separate_gc_writes = true;
      config->gc_shares_user_stream = false;
      break;
    case Variant::kMdcNoSepUserGc:
      config->separate_user_writes = false;
      config->separate_gc_writes = false;
      config->gc_shares_user_stream = false;
      break;
  }
}

}  // namespace lss
