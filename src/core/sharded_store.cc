#include "core/sharded_store.h"

namespace lss {

std::unique_ptr<ShardedStore> ShardedStore::Create(
    const StoreConfig& config, uint32_t num_shards,
    const PolicyFactory& policy_factory, Status* status,
    const BackendFactory& backend_factory) {
  return Build(config, num_shards, policy_factory, backend_factory,
               /*recover=*/false, status);
}

std::unique_ptr<ShardedStore> ShardedStore::Open(
    const StoreConfig& config, uint32_t num_shards,
    const PolicyFactory& policy_factory, Status* status) {
  Status s = ValidateReopenConfig(config);
  if (!s.ok()) {
    if (status != nullptr) *status = std::move(s);
    return nullptr;
  }
  return Build(config, num_shards, policy_factory, nullptr,
               /*recover=*/true, status);
}

Status ShardedStore::Close() {
  Status result = Status::OK();
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    Status st = s->shard->Close();
    if (!st.ok() && result.ok()) result = std::move(st);
  }
  return result;
}

std::unique_ptr<ShardedStore> ShardedStore::Build(
    const StoreConfig& config, uint32_t num_shards,
    const PolicyFactory& policy_factory,
    const BackendFactory& backend_factory, bool recover, Status* status) {
  auto fail = [status](Status s) -> std::unique_ptr<ShardedStore> {
    if (status != nullptr) *status = std::move(s);
    return nullptr;
  };
  if (num_shards < 1 || num_shards > 1024) {
    return fail(Status::InvalidArgument("num_shards must be in [1, 1024]"));
  }
  if (!policy_factory) {
    return fail(Status::InvalidArgument("policy factory must not be null"));
  }
  Status s = config.Validate();
  if (!s.ok()) return fail(std::move(s));

  // Split the device evenly; any remainder segments are dropped rather
  // than creating unequal shards (at most num_shards - 1 segments, noise
  // at any realistic device size).
  StoreConfig shard_cfg = config;
  shard_cfg.num_segments = config.num_segments / num_shards;
  s = shard_cfg.Validate();
  if (!s.ok()) {
    return fail(Status::InvalidArgument(
        "per-shard geometry invalid (device too small for " +
        std::to_string(num_shards) + " shards): " + s.message()));
  }

  auto store = std::unique_ptr<ShardedStore>(new ShardedStore());
  store->shard_config_ = shard_cfg;
  store->shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    auto policy = policy_factory();
    if (policy == nullptr) {
      return fail(Status::InvalidArgument("policy factory returned null"));
    }
    std::unique_ptr<SegmentBackend> backend =
        backend_factory ? backend_factory(i) : MakeBackend(shard_cfg);
    auto slot = std::make_unique<Shard>();
    slot->shard = std::make_unique<StoreShard>(shard_cfg, std::move(policy),
                                               &store->table_, i, num_shards,
                                               std::move(backend));
    s = slot->shard->OpenBackend(recover);
    if (s.ok() && recover) s = slot->shard->Recover();
    if (!s.ok()) {
      return fail(Status(s.code(), "shard " + std::to_string(i) + ": " +
                                       s.message()));
    }
    store->shards_.push_back(std::move(slot));
  }
  if (status != nullptr) *status = Status::OK();
  return store;
}

void ShardedStore::SetExactFrequencyOracle(const ExactFrequencyFn& oracle) {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->shard->SetExactFrequencyOracle(oracle);
  }
}

Status ShardedStore::Write(PageId page, uint32_t bytes) {
  Shard& s = *shards_[ShardOf(page)];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.shard->Write(page, bytes);
}

Status ShardedStore::Delete(PageId page) {
  Shard& s = *shards_[ShardOf(page)];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.shard->Delete(page);
}

Status ShardedStore::Flush() {
  // Attempt every shard even after a failure so healthy shards still
  // drain their buffers; report the first error.
  Status result = Status::OK();
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    Status st = s->shard->Flush();
    if (!st.ok() && result.ok()) result = std::move(st);
  }
  return result;
}

Status ShardedStore::Checkpoint() {
  Status result = Status::OK();
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    Status st = s->shard->Checkpoint();
    if (!st.ok() && result.ok()) result = std::move(st);
  }
  return result;
}

Status ShardedStore::ReadPage(PageId page, std::vector<uint8_t>* out) const {
  const Shard& s = *shards_[ShardOf(page)];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.shard->ReadPage(page, out);
}

bool ShardedStore::Contains(PageId page) const {
  const Shard& s = *shards_[ShardOf(page)];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.shard->Contains(page);
}

uint32_t ShardedStore::PageSize(PageId page) const {
  const Shard& s = *shards_[ShardOf(page)];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.shard->PageSize(page);
}

StoreStats ShardedStore::AggregatedStats() const {
  StoreStats total;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    // Snapshot, not stats(): async mode keeps device and group-fsync
    // counters on the shard's I/O thread.
    total.Merge(s->shard->StatsSnapshot());
  }
  return total;
}

void ShardedStore::ResetMeasurement() {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->shard->ResetMeasurement();
  }
}

std::vector<double> ShardedStore::PerShardWriteAmplification() const {
  std::vector<double> wamp;
  wamp.reserve(shards_.size());
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    wamp.push_back(s->shard->stats().WriteAmplification());
  }
  return wamp;
}

double ShardedStore::CurrentFillFactor() const {
  double fill_sum = 0.0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    fill_sum += s->shard->CurrentFillFactor();
  }
  // Shards have identical device sizes, so the aggregate fill is the mean.
  return shards_.empty() ? 0.0 : fill_sum / static_cast<double>(shards_.size());
}

size_t ShardedStore::LivePageCount() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->shard->LivePageCount();
  }
  return n;
}

Status ShardedStore::CheckInvariants() const {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    Status st = s->shard->CheckInvariants();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace lss
