#include "core/store_shard.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace lss {

StoreShard::StoreShard(const StoreConfig& config,
                       std::unique_ptr<CleaningPolicy> policy,
                       PageTable* table, uint32_t shard_id,
                       uint32_t num_shards,
                       std::unique_ptr<SegmentBackend> backend)
    : config_(config),
      policy_(std::move(policy)),
      backend_(backend ? std::move(backend)
                       : std::make_unique<NullBackend>()),
      table_(*table),
      buffer_(static_cast<uint64_t>(config.write_buffer_segments) *
              config.segment_bytes),
      shard_id_(shard_id),
      num_shards_(num_shards) {
  assert(policy_ != nullptr);
  segments_.reserve(config_.num_segments);
  free_list_.reserve(config_.num_segments);
  for (uint32_t i = 0; i < config_.num_segments; ++i) {
    segments_.emplace_back(config_.segment_bytes);
  }
  // Allocate from low ids first (cosmetic; any order works).
  for (uint32_t i = config_.num_segments; i > 0; --i) {
    free_list_.push_back(i - 1);
  }
  slot_generation_.assign(config_.num_segments, 0);
  ckpt_chain_.assign(config_.num_segments, CheckpointChain{});
  if (config_.async_seal) {
    pipeline_ = std::make_unique<SealPipeline>(
        backend_.get(), config_.seal_queue_depth, config_.backend_fsync);
    seal_ticket_.assign(config_.num_segments, 0);
  }
}

StoreShard::~StoreShard() {
  if (!closed_) Close();
}

Status StoreShard::OpenBackend(bool recover) {
  // In async mode the backend's device counters are updated by the I/O
  // thread, so they must land in pipeline-owned storage, not in stats_.
  StoreStats* sink = pipeline_ ? pipeline_->backend_stats() : &stats_;
  Status s = backend_->Open(config_, shard_id_, num_shards_, sink, recover);
  // Start after Open: Scan (during a recovering open) still runs on the
  // caller's thread, safely — the queue is empty until the first write.
  if (s.ok() && pipeline_) pipeline_->Start();
  return s;
}

Status StoreShard::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  Status result = Status::OK();
  // Drain the buffer and seal every open segment so the device holds the
  // complete store; with the null backend this is pure bookkeeping.
  if (!buffer_.Empty() && sticky_error_.ok()) {
    result = FlushUserBuffer();
    if (!result.ok()) sticky_error_ = result;
  }
  std::vector<uint64_t> open_keys;
  open_keys.reserve(open_segments_.size());
  for (const auto& [key, id] : open_segments_) {
    (void)id;
    open_keys.push_back(key);
  }
  std::sort(open_keys.begin(), open_keys.end());
  for (uint64_t key : open_keys) {
    Status s = SealOpenSegment(static_cast<uint32_t>(key >> 1),
                               static_cast<uint32_t>(key & 1));
    if (!s.ok() && result.ok()) result = s;
  }
  // Everything is sealed now, so any still-withheld victim reclaims are
  // safe to announce before the backend's final sync.
  Status s = ReleaseReclaims();
  if (!s.ok() && result.ok()) result = s;
  // Drain and join the I/O thread: every queued seal must reach the
  // device before the backend closes, so no acknowledged write is lost
  // when Close races in-flight seals.
  if (pipeline_) {
    s = pipeline_->Shutdown();
    if (!s.ok() && result.ok()) result = s;
  }
  s = backend_->Close();
  if (!s.ok() && result.ok()) result = s;
  return result;
}

void StoreShard::SetExactFrequencyOracle(ExactFrequencyFn oracle) {
  oracle_ = std::move(oracle);
}

double StoreShard::EstimateUpf(PageId page) const {
  if (oracle_) return oracle_(page);
  if (page >= table_.Size()) return 0.0;
  const PageMeta& m = table_.Get(page);
  if (m.last_update == 0 || unow_ <= m.last_update) return 0.0;
  return 1.0 / static_cast<double>(unow_ - m.last_update);
}

size_t StoreShard::LivePageCount() const {
  size_t n = 0;
  for (PageId p = 0; p < table_.Size(); ++p) {
    if (OwnsPage(p) && table_.Present(p)) ++n;
  }
  return n;
}

double StoreShard::CurrentFillFactor() const {
  uint64_t live = 0;
  for (const Segment& s : segments_) live += s.live_bytes();
  for (size_t i = 0; i < buffer_.Count(); ++i) {
    const BufferedWrite& w = buffer_.Get(i);
    if (w.page != kInvalidPage) live += w.bytes;
  }
  const double device = static_cast<double>(config_.num_segments) *
                        static_cast<double>(config_.segment_bytes);
  return static_cast<double>(live) / device;
}

double StoreShard::CurrentUp2(const PageLocation& loc) const {
  if (loc.InBuffer()) return buffer_.Get(loc.index).up2;
  return segments_[loc.segment].Up2Estimate();
}

void StoreShard::KillOldVersion(PageId page, const PageLocation& loc) {
  assert(!loc.InBuffer());
  const double exact = oracle_ ? oracle_(page) : 0.0;
  segments_[loc.segment].Kill(loc.index, exact);
}

Status StoreShard::Write(PageId page, uint32_t bytes) {
  if (closed_) return Status::InvalidArgument("store is closed");
  AbsorbPipelineError();
  if (!sticky_error_.ok()) return sticky_error_;
  if (bytes == 0) bytes = config_.page_bytes;
  if (bytes > config_.segment_bytes) {
    return Status::InvalidArgument("page larger than a segment");
  }
  assert(OwnsPage(page));
  ++unow_;
  ++stats_.user_updates;

  PageMeta& m = table_.Ensure(page);
  const double exact = oracle_ ? oracle_(page) : 0.0;
  const bool first = !m.loc.Present();

  // Estimate based on the previous update timestamp (multi-log's
  // estimator); must be computed before last_update is overwritten.
  double est_upf = exact;
  if (!oracle_ && !first && unow_ > m.last_update) {
    est_upf = 1.0 / static_cast<double>(unow_ - m.last_update);
  }

  double up2 = 0.0;
  if (!first) {
    // §5.2.2 "Non-first Write": assume up1 was midway between unow and
    // up2; the prior up1 becomes the new up2.
    const double old_up2 = CurrentUp2(m.loc);
    up2 = old_up2 + 0.5 * (static_cast<double>(unow_) - old_up2);
    if (m.loc.InBuffer()) {
      if (config_.absorb_buffered_rewrites) {
        // Absorb the re-update in place; no physical write happens now.
        buffer_.Update(m.loc.index, bytes, up2, exact);
        m.bytes = bytes;
        m.last_update = unow_;
        return Status::OK();
      }
      // Paper accounting: the buffer is a queue of writes, so the
      // superseded copy stays queued and will be flushed as a write that
      // is dead on arrival (it costs a physical page write and becomes
      // instant garbage). The page table moves on to the new copy.
      buffer_.GetMutable(m.loc.index).superseded = true;
      m.loc = PageLocation{};
    } else {
      KillOldVersion(page, m.loc);
    }
  }
  m.bytes = bytes;
  m.last_update = unow_;

  if (config_.write_buffer_segments > 0) {
    BufferedWrite w;
    w.page = page;
    w.bytes = bytes;
    w.up2 = up2;
    w.first_write = first;
    w.exact_upf = exact;
    const uint32_t slot = buffer_.Add(w);
    m.loc = PageLocation{kBufferSegment, slot};
    if (buffer_.Full()) {
      Status s = FlushUserBuffer();
      if (!s.ok()) sticky_error_ = s;
      return s;
    }
    return Status::OK();
  }

  // Unbuffered: place immediately in arrival order. First writes get the
  // coldest possible estimate (up2 = 0), warming up as they are re-written.
  Status s = PlacePage(page, bytes, up2, exact, est_upf, /*is_gc=*/false);
  if (!s.ok()) sticky_error_ = s;
  return s;
}

Status StoreShard::Delete(PageId page) {
  if (closed_) return Status::InvalidArgument("store is closed");
  AbsorbPipelineError();
  if (!sticky_error_.ok()) return sticky_error_;
  if (!table_.Present(page)) {
    return Status::NotFound("page not present");
  }
  assert(OwnsPage(page));
  PageMeta& m = table_.GetMutable(page);
  if (m.loc.InBuffer()) {
    BufferedWrite& w = buffer_.GetMutable(m.loc.index);
    // Tombstone the buffer slot; flush skips it. The buffered bytes stay
    // counted toward the flush threshold, which is harmless.
    w.page = kInvalidPage;
  } else {
    KillOldVersion(page, m.loc);
  }
  m.loc = PageLocation{};
  m.bytes = 0;
  ++stats_.deletes;
  Status s = EmitDelete(page, ++write_seq_, unow_);
  if (s.ok()) s = MaybePeriodicCheckpoint();
  if (!s.ok()) sticky_error_ = s;
  return s;
}

Status StoreShard::Flush() {
  if (closed_) return Status::InvalidArgument("store is closed");
  AbsorbPipelineError();
  if (!sticky_error_.ok()) return sticky_error_;
  if (buffer_.Empty()) return Status::OK();
  Status s = FlushUserBuffer();
  if (!s.ok()) sticky_error_ = s;
  return s;
}

Status StoreShard::Checkpoint() {
  if (closed_) return Status::InvalidArgument("store is closed");
  AbsorbPipelineError();
  if (!sticky_error_.ok()) return sticky_error_;
  Status s = Status::OK();
  if (!buffer_.Empty()) s = FlushUserBuffer();
  // Snapshot every non-empty open segment.
  if (s.ok()) s = CheckpointOpenSegments();
  ops_since_checkpoint_ = 0;
  // The barrier: wait out the queue (async) and make it all durable.
  if (s.ok()) s = pipeline_ ? pipeline_->Drain() : backend_->Sync();
  // Everything emitted is durable now; pending watermarks can commit so
  // the next round's deltas base on what this barrier persisted.
  if (s.ok() && pipeline_ != nullptr) CommitDurableWatermarks();
  if (!s.ok()) sticky_error_ = s;
  return s;
}

Status StoreShard::ReadPage(PageId page, std::vector<uint8_t>* out) const {
  if (!table_.Present(page)) return Status::NotFound("page not present");
  const PageMeta& m = table_.Get(page);
  if (m.loc.InBuffer()) {
    return Status::InvalidArgument("page still in write buffer");
  }
  const Segment& seg = segments_[m.loc.segment];
  if (seg.state() != SegmentState::kSealed) {
    return Status::InvalidArgument("page in an unsealed segment");
  }
  // Async mode: the in-memory seal may still be queued; wait until the
  // I/O thread has written the payload before reading it back. The
  // pipeline thread never takes the shard lock, so waiting under it is
  // deadlock-free.
  if (pipeline_ != nullptr) {
    const uint64_t ticket = seal_ticket_[m.loc.segment];
    if (ticket != 0) {
      Status s = pipeline_->WaitApplied(ticket);
      if (!s.ok()) return s;
    }
  }
  return backend_->ReadPagePayload(m.loc.segment,
                                   seg.entries()[m.loc.index].offset, page,
                                   m.bytes, out);
}

Status StoreShard::FlushUserBuffer() {
  std::vector<BufferedWrite> batch = buffer_.Drain();

  // §5.2.2 "First Write": first writes get the oldest up2 in the batch
  // ("pages mostly contain cold data, assigning a up2 that makes the page
  // 'coldish' is usually appropriate").
  double oldest = std::numeric_limits<double>::infinity();
  for (const BufferedWrite& w : batch) {
    if (w.page != kInvalidPage && !w.first_write) {
      oldest = std::min(oldest, w.up2);
    }
  }
  if (!std::isfinite(oldest)) oldest = 0.0;
  for (BufferedWrite& w : batch) {
    if (w.first_write) w.up2 = oldest;
  }

  if (config_.separate_user_writes) {
    // Sort hottest first; the key is the exact frequency when an oracle
    // is installed (the *-opt variants), else the up2 estimate (§5.3).
    if (oracle_) {
      std::stable_sort(batch.begin(), batch.end(),
                       [](const BufferedWrite& a, const BufferedWrite& b) {
                         return a.exact_upf > b.exact_upf;
                       });
    } else {
      std::stable_sort(batch.begin(), batch.end(),
                       [](const BufferedWrite& a, const BufferedWrite& b) {
                         return a.up2 > b.up2;
                       });
    }
  }

  for (const BufferedWrite& w : batch) {
    if (w.page == kInvalidPage) continue;  // deleted while buffered
    double est = w.exact_upf;
    if (!oracle_ && !w.first_write) {
      // up2-implied frequency: two updates over (unow - up2) ticks (§4.3).
      const double interval = static_cast<double>(unow_) - w.up2;
      est = interval > 0 ? 2.0 / interval : 2.0;
    }
    Status s = PlacePage(w.page, w.bytes, w.up2, w.exact_upf, est,
                         /*is_gc=*/false, /*dead_on_arrival=*/w.superseded);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status StoreShard::PlacePage(PageId page, uint32_t bytes, double up2,
                             double exact_upf, double est_upf, bool is_gc,
                             bool dead_on_arrival) {
  const uint32_t log = policy_->PlacementLog(*this, page, is_gc, est_upf);
  const uint32_t stream =
      (is_gc && !config_.gc_shares_user_stream) ? kGcStream : kUserStream;

  SegmentId id = kInvalidSegment;
  Segment* seg = OpenSegmentFor(log, stream, is_gc, &id);
  if (seg == nullptr) {
    return sticky_error_.ok() ? Status::OutOfSpace("no free segment to open")
                              : sticky_error_;
  }
  // Seal-and-reopen until the page fits. One round usually suffices, but
  // OpenSegmentFor may adopt a partially-filled segment the cleaner
  // opened for this key, so this must loop (bounded: each round seals a
  // segment, and a fresh segment always fits the page).
  for (int rounds = 0; !seg->HasRoomFor(bytes); ++rounds) {
    if (rounds > 4) {
      return Status::Corruption("unable to open a segment with room");
    }
    Status s = SealOpenSegment(log, stream);
    if (!s.ok()) return s;
    seg = OpenSegmentFor(log, stream, is_gc, &id);
    if (seg == nullptr) {
      return sticky_error_.ok()
                 ? Status::OutOfSpace("no free segment to open")
                 : sticky_error_;
    }
  }
  const PageMeta& meta = table_.Get(page);
  const uint32_t idx =
      seg->Append(page, bytes, up2, exact_upf, ++write_seq_, meta.last_update);
  if (dead_on_arrival) {
    // A queued duplicate: the physical write happens, the version is
    // immediately garbage, and the page table keeps pointing at the
    // newer copy. Marked dead-on-arrival so durable records never
    // resurrect it (the flush sort makes its seq order meaningless).
    seg->Kill(idx, exact_upf, /*dead_on_arrival=*/true);
  } else {
    table_.GetMutable(page).loc = PageLocation{id, idx};
  }
  if (is_gc) {
    ++stats_.gc_pages_written;
    stats_.gc_bytes_written += bytes;
    // This open segment now holds a relocated page; reclaim records for
    // the cleaner's victims are withheld until it seals.
    gc_dirty_open_.insert(id);
  } else {
    ++stats_.user_pages_written;
    stats_.user_bytes_written += bytes;
  }
  // Seal exactly-full segments eagerly. With fixed-size pages segments
  // fill to the byte, and an exactly-full segment left open is invisible
  // to the cleaner while pinning a whole segment of space.
  if (!seg->HasRoomFor(1)) return SealOpenSegment(log, stream);
  return Status::OK();
}

Segment* StoreShard::OpenSegmentFor(uint32_t log, uint32_t stream, bool is_gc,
                                    SegmentId* id_out) {
  const uint64_t key = OpenKey(log, stream);
  auto it = open_segments_.find(key);
  if (it != open_segments_.end()) {
    *id_out = it->second;
    return &segments_[it->second];
  }
  const SegmentId id = AllocateSegment(log);
  if (id == kInvalidSegment) return nullptr;
  // Allocation can run the cleaner, and the cleaner's own placements may
  // have opened a segment for this very key; adopt it and return the
  // allocated segment to the pool instead of orphaning an open segment.
  it = open_segments_.find(key);
  if (it != open_segments_.end()) {
    free_list_.push_back(id);
    *id_out = it->second;
    return &segments_[it->second];
  }
  // Reuse changes the slot's payload identity: the new fill generation
  // closes any checkpoint chain of the previous occupant.
  InvalidateCheckpointChain(id);
  segments_[id].Open(log, is_gc ? SegmentSource::kGc : SegmentSource::kUser,
                     unow_);
  open_segments_.emplace(key, id);
  *id_out = id;
  return &segments_[id];
}

BackendSegmentRecord StoreShard::MakeSealRecord(SegmentId id,
                                                const Segment& seg,
                                                bool checkpoint) const {
  BackendSegmentRecord rec;
  rec.id = id;
  rec.log = seg.log();
  rec.source = seg.source();
  rec.open_time = seg.open_time();
  // A checkpointed segment has no seal time yet; the clock at snapshot
  // time stands in (recovery rebuilds it as sealed-at-that-instant,
  // which is what age-based policies should see).
  rec.seal_time = checkpoint ? unow_ : seg.seal_time();
  rec.unow = unow_;
  rec.checkpoint = checkpoint;
  rec.generation = slot_generation_[id];
  rec.entries = seg.entries();
  // In-place-killed entries are recorded *live* under their original
  // identity: their successor always carries a larger append sequence,
  // so replay's newest-wins picks the successor whenever its record
  // survived — and legitimately resurrects this version when the crash
  // took the successor's record with it. Without this, re-recording a
  // segment (a later checkpoint, or the seal after one) would erase the
  // only durable copy of a page whose newest version never reached the
  // device. Dead-on-arrival duplicates stay dead: the flush sort makes
  // their seq order against the successor meaningless.
  for (Segment::Entry& e : rec.entries) {
    if (e.page == kInvalidPage && !e.doa && e.orig_page != kInvalidPage) {
      e.page = e.orig_page;
    }
  }
  return rec;
}

Status StoreShard::EnqueueOp(SealPipeline::Op op, uint64_t* ticket_out) {
  bool stalled = false;
  const uint64_t ticket = pipeline_->Enqueue(std::move(op), &stalled);
  if (ticket == 0) {
    const Status e = pipeline_->error();
    return e.ok() ? Status::InvalidArgument("seal pipeline is stopped") : e;
  }
  ++stats_.seal_queue_enqueued;
  if (stalled) ++stats_.seal_queue_stalls;
  if (ticket_out != nullptr) *ticket_out = ticket;
  return Status::OK();
}

Status StoreShard::EmitSeal(SegmentId id, const Segment& seg) {
  ++ops_since_checkpoint_;
  if (pipeline_ == nullptr) {
    return backend_->SealSegment(MakeSealRecord(id, seg));
  }
  SealPipeline::Op op;
  op.kind = SealPipeline::Op::Kind::kSeal;
  op.record = MakeSealRecord(id, seg);
  return EnqueueOp(std::move(op), &seal_ticket_[id]);
}

Status StoreShard::EmitCheckpoint(SegmentId id, const Segment& seg) {
  const uint64_t gen = slot_generation_[id];
  const uint64_t entries = seg.entries().size();
  const uint64_t bytes = seg.used_bytes();
  if (pipeline_ == nullptr) {
    Status s = backend_->Checkpoint(MakeSealRecord(id, seg,
                                                   /*checkpoint=*/true));
    if (!s.ok()) return s;
    ++stats_.checkpoints_written;
    ++stats_.checkpoint_full_records;
    // Synchronous backends make the record durable before returning, so
    // the watermark commits at emission.
    segments_[id].SetCheckpointWatermark(static_cast<uint32_t>(entries),
                                         bytes);
    ckpt_chain_[id] = CheckpointChain{true, gen, entries, bytes};
    return s;
  }
  SealPipeline::Op op;
  op.kind = SealPipeline::Op::Kind::kCheckpoint;
  op.record = MakeSealRecord(id, seg, /*checkpoint=*/true);
  uint64_t ticket = 0;
  Status s = EnqueueOp(std::move(op), &ticket);
  if (!s.ok()) return s;
  // The chain tracks *emitted* coverage (queue order = log order); the
  // durable watermark waits for the pipeline's group sync.
  ckpt_chain_[id] = CheckpointChain{true, gen, entries, bytes};
  pending_watermarks_.push_back(
      PendingWatermark{id, gen, static_cast<uint32_t>(entries), bytes,
                       ticket});
  return s;
}

Status StoreShard::EmitCheckpointDelta(SegmentId id, const Segment& seg) {
  const uint64_t gen = slot_generation_[id];
  const uint32_t wm_entries = seg.checkpoint_entries();
  const uint64_t wm_bytes = seg.checkpoint_bytes();
  const uint64_t entries = seg.entries().size();
  const uint64_t bytes = seg.used_bytes();
  assert(wm_entries <= entries && wm_bytes <= bytes);

  BackendSegmentRecord rec;
  rec.id = id;
  rec.log = seg.log();
  rec.source = seg.source();
  rec.open_time = seg.open_time();
  rec.seal_time = unow_;  // as EmitCheckpoint: snapshot-time clock
  rec.unow = unow_;
  rec.checkpoint = true;
  rec.delta = true;
  rec.generation = gen;
  rec.prefix_entries = wm_entries;
  rec.suffix_offset = wm_bytes;
  rec.suffix_length = bytes - wm_bytes;
  // Only the suffix past the durable watermark travels; the base chain
  // already covers the prefix byte-for-byte (in-place kills never change
  // recorded content — see the resurrection rule in MakeSealRecord,
  // applied to the suffix here too).
  rec.entries.assign(seg.entries().begin() + wm_entries, seg.entries().end());
  for (Segment::Entry& e : rec.entries) {
    if (e.page == kInvalidPage && !e.doa && e.orig_page != kInvalidPage) {
      e.page = e.orig_page;
    }
  }
  if (pipeline_ == nullptr) {
    Status s = backend_->CheckpointDelta(rec);
    if (!s.ok()) return s;
    ++stats_.checkpoints_written;
    ++stats_.checkpoint_delta_records;
    segments_[id].SetCheckpointWatermark(static_cast<uint32_t>(entries),
                                         bytes);
    ckpt_chain_[id].emitted_entries = entries;
    ckpt_chain_[id].emitted_bytes = bytes;
    return s;
  }
  SealPipeline::Op op;
  op.kind = SealPipeline::Op::Kind::kCheckpointDelta;
  op.record = std::move(rec);
  uint64_t ticket = 0;
  Status s = EnqueueOp(std::move(op), &ticket);
  if (!s.ok()) return s;
  ckpt_chain_[id].emitted_entries = entries;
  ckpt_chain_[id].emitted_bytes = bytes;
  pending_watermarks_.push_back(
      PendingWatermark{id, gen, static_cast<uint32_t>(entries), bytes,
                       ticket});
  return s;
}

Status StoreShard::EmitOpenSegmentCheckpoint(SegmentId id,
                                             const Segment& seg) {
  if (!DeltaCheckpointsEnabled()) return EmitCheckpoint(id, seg);
  const CheckpointChain& chain = ckpt_chain_[id];
  if (!chain.valid || chain.generation != slot_generation_[id]) {
    // No base, or the slot was refilled since: start the chain over.
    return EmitCheckpoint(id, seg);
  }
  if (chain.emitted_entries == seg.entries().size() &&
      chain.emitted_bytes == seg.used_bytes()) {
    // The emitted chain already covers every entry (in-place kills since
    // then re-record identically, so there is nothing new to persist).
    return Status::OK();
  }
  return EmitCheckpointDelta(id, seg);
}

void StoreShard::CommitDurableWatermarks() {
  if (pending_watermarks_.empty() || pipeline_ == nullptr) return;
  if (!pipeline_->error().ok()) {
    pending_watermarks_.clear();
    return;
  }
  const uint64_t applied = pipeline_->applied_ticket();
  size_t kept = 0;
  for (size_t i = 0; i < pending_watermarks_.size(); ++i) {
    const PendingWatermark& pw = pending_watermarks_[i];
    if (pw.ticket > applied) {
      if (kept != i) pending_watermarks_[kept] = pw;
      ++kept;
      continue;
    }
    // Stale generations (the slot sealed or was refilled since emission)
    // are dropped: the watermark belongs to a payload that no longer
    // exists in this slot.
    if (pw.generation == slot_generation_[pw.id] &&
        segments_[pw.id].state() == SegmentState::kOpen) {
      segments_[pw.id].SetCheckpointWatermark(pw.entries, pw.bytes);
    }
  }
  pending_watermarks_.resize(kept);
}

Status StoreShard::EmitReclaim(SegmentId id, UpdateCount unow) {
  ++ops_since_checkpoint_;
  // A free record erases every earlier record of the slot on replay —
  // including the checkpoint chain of a *new* occupant when the victim's
  // withheld free releases after the slot was reused. Whatever chain the
  // slot carries is dead in the log the moment this record lands, so the
  // next checkpoint of the slot must start over with a full record.
  InvalidateCheckpointChain(id);
  if (pipeline_ == nullptr) return backend_->ReclaimSegment(id, unow);
  SealPipeline::Op op;
  op.kind = SealPipeline::Op::Kind::kReclaim;
  op.segment = id;
  op.unow = unow;
  return EnqueueOp(std::move(op));
}

Status StoreShard::EmitDelete(PageId page, uint64_t seq, UpdateCount unow) {
  ++ops_since_checkpoint_;
  if (pipeline_ == nullptr) return backend_->RecordDelete(page, seq, unow);
  SealPipeline::Op op;
  op.kind = SealPipeline::Op::Kind::kDelete;
  op.page = page;
  op.seq = seq;
  op.unow = unow;
  return EnqueueOp(std::move(op));
}

Status StoreShard::CheckpointGcDirtyOpen(SegmentId skip) {
  if (gc_dirty_open_.empty()) return Status::OK();
  CommitDurableWatermarks();
  std::vector<SegmentId> ids(gc_dirty_open_.begin(), gc_dirty_open_.end());
  std::sort(ids.begin(), ids.end());
  for (SegmentId id : ids) {
    if (id == skip) continue;
    const Segment& seg = segments_[id];
    if (seg.state() != SegmentState::kOpen || seg.entries().empty()) continue;
    // Skip-when-covered is safe here too: an already-emitted chain
    // precedes the forced free record in queue = log order.
    Status s = EmitOpenSegmentCheckpoint(id, seg);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status StoreShard::CheckpointOpenSegments() {
  ++stats_.checkpoint_rounds;
  // Harvest durability first so this round's deltas base on the newest
  // durable watermark instead of re-sending already-synced suffixes.
  CommitDurableWatermarks();
  std::vector<uint64_t> open_keys;
  open_keys.reserve(open_segments_.size());
  for (const auto& [key, id] : open_segments_) {
    (void)id;
    open_keys.push_back(key);
  }
  std::sort(open_keys.begin(), open_keys.end());
  for (uint64_t key : open_keys) {
    const SegmentId id = open_segments_[key];
    if (segments_[id].entries().empty()) continue;
    Status s = EmitOpenSegmentCheckpoint(id, segments_[id]);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status StoreShard::MaybePeriodicCheckpoint() {
  if (!CheckpointingEnabled() ||
      ops_since_checkpoint_ < config_.checkpoint_interval_ops) {
    return Status::OK();
  }
  ops_since_checkpoint_ = 0;
  return CheckpointOpenSegments();
}

void StoreShard::AbsorbPipelineError() {
  if (pipeline_ == nullptr || !sticky_error_.ok()) return;
  Status s = pipeline_->error();
  if (!s.ok()) sticky_error_ = s;
}

StoreStats StoreShard::StatsSnapshot() const {
  StoreStats s = stats_;
  if (pipeline_ != nullptr) s.Merge(pipeline_->StatsSnapshot());
  return s;
}

void StoreShard::ResetMeasurement() {
  // Drain first so no in-flight op's counters straddle the reset.
  if (pipeline_ != nullptr) pipeline_->ResetStats();
  stats_.ResetMeasurement();
}

Status StoreShard::SealOpenSegment(uint32_t log, uint32_t stream) {
  const uint64_t key = OpenKey(log, stream);
  auto it = open_segments_.find(key);
  assert(it != open_segments_.end());
  const SegmentId id = it->second;
  Segment& seg = segments_[id];
  const bool was_gc = seg.source() == SegmentSource::kGc;
  seg.Seal(unow_);
  // The seal record supersedes the slot's checkpoint chain (and closes
  // it backend-side too); any late watermark for this generation must
  // not survive into the slot's next life.
  InvalidateCheckpointChain(id);
  if (was_gc) {
    ++stats_.gc_segments_sealed;
  } else {
    ++stats_.user_segments_sealed;
  }
  open_segments_.erase(it);

  // If this slot is a reclaimed victim whose free record is still
  // withheld, it must be announced now: the new seal overwrites the old
  // payload anyway (withholding protects nothing any more), and the
  // free record must precede the new seal record in the metadata log so
  // replay resolves the slot to its new contents.
  for (size_t i = 0; i < reclaim_queue_.size(); ++i) {
    if (reclaim_queue_[i].id != id) continue;
    // The forced-out free record erases the victim's entries from
    // replay. With checkpointing on, first persist every open segment
    // still holding GC-moved pages, so the relocated copies precede the
    // free record on the device — this closes the residual crash window
    // documented at reclaim_queue_.
    if (CheckpointingEnabled()) {
      Status cs = CheckpointGcDirtyOpen(id);
      if (!cs.ok()) return cs;
    }
    Status s = EmitReclaim(id, reclaim_queue_[i].unow);
    if (!s.ok()) return s;
    reclaim_queue_.erase(reclaim_queue_.begin() +
                         static_cast<ptrdiff_t>(i));
    break;
  }

  Status s = EmitSeal(id, seg);
  if (!s.ok()) return s;

  // Once no open segment holds GC-moved pages, every relocated page is
  // sealed (durable on a real backend, or ordered ahead of any later
  // free record in the pipeline queue) and the withheld victim reclaims
  // can reach the device — in checkpoint mode only those whose dead
  // entries' successors are recorded too (ReleaseSafeReclaims).
  gc_dirty_open_.erase(id);
  if (gc_dirty_open_.empty() && !reclaim_queue_.empty()) {
    Status r =
        CheckpointingEnabled() ? ReleaseSafeReclaims() : ReleaseReclaims();
    if (!r.ok()) return r;
  }
  return MaybePeriodicCheckpoint();
}

SegmentId StoreShard::AllocateSegment(uint32_t log) {
  if (!cleaning_ && free_list_.size() <= config_.clean_trigger_segments) {
    Status s = Clean(log);
    if (!s.ok()) {
      // Out-of-space with segments still free is survivable (best-effort
      // cleaning); anything else — a backend write failure above all —
      // poisons the shard so the caller sees the real error, not a
      // misleading out-of-space.
      if (s.code() != Status::Code::kOutOfSpace) {
        sticky_error_ = s;
        return kInvalidSegment;
      }
      if (free_list_.empty()) return kInvalidSegment;
    }
  }
  if (free_list_.empty()) return kInvalidSegment;
  if (CheckpointingEnabled() && !reclaim_queue_.empty()) {
    // Crash safety: never reseal a slot whose free record is still
    // withheld. The rewrite's payload pwrite would tear regions that the
    // slot's still-live durable record references, and when the victim's
    // relocated copies land in the very same slot (the cleaner reuses
    // just-freed victims immediately) no checkpoint elsewhere can save
    // them. Prefer any non-withheld free slot; relative order of the
    // rest is preserved so this stays deterministic.
    auto pick_non_withheld = [this](SegmentId* out) {
      for (size_t i = free_list_.size(); i > 0; --i) {
        if (!IsWithheld(free_list_[i - 1])) {
          *out = free_list_[i - 1];
          free_list_.erase(free_list_.begin() + static_cast<ptrdiff_t>(i - 1));
          return true;
        }
      }
      return false;
    };
    SegmentId id = kInvalidSegment;
    if (pick_non_withheld(&id)) return id;
    // Only withheld slots remain. A safe release round (checkpoint the
    // opens, emit the frees whose victims have no still-needed entries)
    // usually clears some — it is valid mid-clean too. If nothing
    // clears, fall through to reusing a withheld slot, made crash-safe
    // below by re-homing.
    Status s = ReleaseSafeReclaims();
    if (!s.ok()) {
      sticky_error_ = s;
      return kInvalidSegment;
    }
    if (pick_non_withheld(&id)) return id;
    // Every remaining free slot is a withheld victim; the common pick
    // below reuses one. The reuse will eventually overwrite the
    // victim's payload (a crashing rewrite can tear it), so any victim
    // entry that replay could still need must first reach the device
    // under another record. Entries whose current version already sits
    // in an emitted record are settled permanently (an emitted
    // superseding record stays in the log even if the page is later
    // rewritten into the buffer) and are pruned; the remainder — if
    // any — is persisted under a re-homing record, made durable before
    // this call returns, which recovery resolves newest-record-wins and
    // re-materialises when it still holds a page's latest version.
    // Plain reuse of a slot holding needed entries is thereby
    // impossible by construction.
    const SegmentId reuse = free_list_.back();
    std::vector<Segment::Entry> still_needed;
    size_t queue_pos = reclaim_queue_.size();
    for (size_t i = 0; i < reclaim_queue_.size(); ++i) {
      QueuedReclaim& qr = reclaim_queue_[i];
      if (qr.id != reuse) continue;
      for (const Segment::Entry& e : qr.needed) {
        if (!SuccessorEmitted(e.page)) still_needed.push_back(e);
      }
      queue_pos = i;
      break;
    }
    if (still_needed.empty()) {
      ++stats_.withheld_slot_reuses_plain;
    } else {
      stats_.rehome_entries_written += still_needed.size();
      Status rs = EmitRehome(reuse, std::move(still_needed));
      if (!rs.ok()) {
        sticky_error_ = rs;
        return kInvalidSegment;
      }
      ++stats_.withheld_slot_reuses_rehomed;
    }
    // Every entry of the victim is settled now (emitted successors or
    // the re-homing record just made durable), so its free record goes
    // out immediately — and must precede the slot's new occupant in the
    // log: a free record landing after the occupant's first checkpoint
    // would erase that record (and its delta chain) from replay.
    if (queue_pos < reclaim_queue_.size()) {
      Status fs = EmitReclaim(reuse, reclaim_queue_[queue_pos].unow);
      if (!fs.ok()) {
        sticky_error_ = fs;
        return kInvalidSegment;
      }
      reclaim_queue_.erase(reclaim_queue_.begin() +
                           static_cast<ptrdiff_t>(queue_pos));
    }
  }
  const SegmentId id = free_list_.back();
  free_list_.pop_back();
  return id;
}

uint64_t StoreShard::HarvestVictims(const std::vector<SegmentId>& victims,
                                    std::vector<MovedPage>* moved) {
  uint64_t reclaimed = 0;
  for (SegmentId id : victims) {
    Segment& seg = segments_[id];
    assert(seg.state() == SegmentState::kSealed);
    stats_.mutable_clean_emptiness().Add(seg.Emptiness());
    ++stats_.segments_cleaned;
    reclaimed += seg.available_bytes();
    const double seg_up2 = seg.up2();
    // Capture, before the Reset below, every entry the victim's durable
    // seal record still lists live that a recovery might need — the
    // slot's free record (and any reuse of the slot) must wait for them:
    //   - live entries: harvested now but not yet placed; until the
    //     copy lands the victim's record is the only durable home;
    //   - in-place-killed entries (recorded live under their original
    //     identity, see MakeSealRecord) whose superseding version is
    //     not yet recorded (write buffer / mid-placement).
    // The captured values mirror the seal record exactly: Kill leaves
    // every field but `page`/`doa` untouched, so page = orig_page
    // reproduces what MakeSealRecord serialised.
    std::vector<Segment::Entry> needed;
    for (const Segment::Entry& e : seg.entries()) {
      if (e.page == kInvalidPage) {
        if (CheckpointingEnabled() && !e.doa &&
            e.orig_page != kInvalidPage && !SuccessorRecorded(e.orig_page)) {
          Segment::Entry n = e;
          n.page = e.orig_page;
          needed.push_back(n);
        }
        continue;
      }
      if (CheckpointingEnabled()) needed.push_back(e);
      MovedPage mp;
      mp.page = e.page;
      mp.bytes = e.bytes;
      mp.up2 = seg_up2;
      mp.exact_upf = oracle_ ? oracle_(e.page) : 0.0;
      if (oracle_) {
        mp.est_upf = mp.exact_upf;
      } else {
        const UpdateCount last = table_.Get(e.page).last_update;
        mp.est_upf =
            unow_ > last ? 1.0 / static_cast<double>(unow_ - last) : 0.0;
      }
      moved->push_back(mp);
    }
    seg.Reset();
    InvalidateCheckpointChain(id);
    free_list_.push_back(id);
    // The backend is told later (ReleaseReclaims): a durable free record
    // now would let a crash erase this victim's entries while its moved
    // pages are still in unsealed destinations.
    reclaim_queue_.push_back(QueuedReclaim{id, unow_, std::move(needed)});
  }
  return reclaimed;
}

bool StoreShard::SuccessorRecorded(PageId page) const {
  // Absent: the delete's tombstone was emitted (and precedes any free
  // record in log order). Otherwise the current version must sit at a
  // real entry of a non-free segment — sealed segments are recorded, and
  // open ones are covered by the checkpoint round ReleaseSafeReclaims
  // runs before emitting frees. Buffered or mid-placement versions (the
  // table still pointing at a stale or dangling location) are not
  // recorded anywhere yet.
  if (!table_.Present(page)) return true;
  const PageMeta& m = table_.Get(page);
  if (m.loc.InBuffer()) return false;
  if (m.loc.segment >= segments_.size()) return false;
  const Segment& s = segments_[m.loc.segment];
  if (s.state() == SegmentState::kFree) return false;
  if (m.loc.index >= s.entries().size()) return false;
  return s.entries()[m.loc.index].page == page;
}

bool StoreShard::SuccessorEmitted(PageId page) const {
  // As SuccessorRecorded, but a version sitting in a merely-open
  // segment does not count: nothing has been emitted for it yet (the
  // caller must sequence a checkpoint round itself if it wants open
  // segments covered). Note this can never match the victim's own entry
  // a caller is testing — the victim was Reset at harvest, so a table
  // location still pointing there is dangling, not a match.
  if (!table_.Present(page)) return true;
  const PageMeta& m = table_.Get(page);
  if (m.loc.InBuffer()) return false;
  if (m.loc.segment >= segments_.size()) return false;
  const Segment& s = segments_[m.loc.segment];
  if (s.state() != SegmentState::kSealed) return false;
  if (m.loc.index >= s.entries().size()) return false;
  return s.entries()[m.loc.index].page == page;
}

Status StoreShard::EmitRehome(SegmentId victim,
                              std::vector<Segment::Entry> entries) {
  ++ops_since_checkpoint_;
  BackendSegmentRecord rec;
  rec.id = victim;
  rec.log = 0;
  rec.source = SegmentSource::kGc;
  rec.open_time = unow_;
  rec.seal_time = unow_;
  rec.unow = unow_;
  rec.entries = std::move(entries);
  if (pipeline_ == nullptr) return backend_->RehomeEntries(rec);
  SealPipeline::Op op;
  op.kind = SealPipeline::Op::Kind::kRehome;
  op.record = std::move(rec);
  uint64_t ticket = 0;
  Status s = EnqueueOp(std::move(op), &ticket);
  if (!s.ok()) return s;
  // Queue order already puts the rehome ahead of the reused slot's
  // future seal, and the backend syncs the record internally; waiting
  // here only surfaces a backend failure now, before the shard commits
  // to the reuse.
  return pipeline_->WaitApplied(ticket);
}

Status StoreShard::ReleaseSafeReclaims() {
  if (reclaim_queue_.empty()) return Status::OK();
  auto releasable = [this](const QueuedReclaim& qr) {
    // Every needed entry's current version must be recorded — or be
    // coverable by the checkpoint round below. Harvested-but-unplaced
    // pages fail this automatically: their table location dangles at
    // the Reset victim until the copy is placed.
    for (const Segment::Entry& e : qr.needed) {
      if (!SuccessorRecorded(e.page)) return false;
    }
    return true;
  };
  bool any = false;
  for (const QueuedReclaim& qr : reclaim_queue_) {
    if (releasable(qr)) {
      any = true;
      break;
    }
  }
  if (!any) return Status::OK();
  // One checkpoint round puts every successor or relocated copy still
  // sitting in an open segment on the device ahead of the free records.
  Status s = CheckpointOpenSegments();
  if (!s.ok()) return s;
  // A mid-loop emission failure leaves the queue partially compacted;
  // that is fine — the caller poisons the shard on any failure here.
  size_t kept = 0;
  for (size_t i = 0; i < reclaim_queue_.size(); ++i) {
    QueuedReclaim& qr = reclaim_queue_[i];
    if (releasable(qr)) {
      s = EmitReclaim(qr.id, qr.unow);
      if (!s.ok()) return s;
    } else {
      // Guard against self-move: moving an element onto itself would
      // leave its needed list in a moved-from (empty) state and let a
      // later round release it prematurely.
      if (kept != i) reclaim_queue_[kept] = std::move(qr);
      ++kept;
    }
  }
  reclaim_queue_.resize(kept);
  return Status::OK();
}

Status StoreShard::ReleaseReclaims() {
  while (!reclaim_queue_.empty()) {
    const QueuedReclaim& qr = reclaim_queue_.back();
    Status s = EmitReclaim(qr.id, qr.unow);
    if (!s.ok()) return s;
    reclaim_queue_.pop_back();
  }
  return Status::OK();
}

Status StoreShard::Clean(uint32_t triggering_log) {
  cleaning_ = true;
  Status result = Status::OK();
  const size_t batch =
      std::max<size_t>(1, policy_->PreferredBatch(config_.clean_batch_segments));

  // Progress is measured in reclaimed *bytes*, not free-list growth: a
  // cycle can free one victim and immediately consume one segment for the
  // relocated pages (net zero on the pool) while still reclaiming most of
  // a segment's worth of dead space — those dribbles accumulate into free
  // segments over the next cycles. The device is declared full only after
  // repeated cycles whose victims were fully live (nothing reclaimable),
  // with a generous cycle cap as a backstop.
  int no_progress_cycles = 0;
  uint64_t cycle_cap = 16ull * config_.num_segments;
  while (free_list_.size() <= config_.clean_trigger_segments) {
    if (cycle_cap-- == 0) {
      result = Status::OutOfSpace("cleaning cycle cap exceeded");
      break;
    }
    const size_t free_before = free_list_.size();

    std::vector<SegmentId> victims;
    policy_->SelectVictims(*this, triggering_log, batch, &victims);
    if (victims.empty()) {
      result = Status::OutOfSpace("cleaner found no victim segments");
      break;
    }

    // Read phase: collect the still-live pages of every victim, then free
    // the victims. GC'd pages carry their segment's up2 (§5.2.2 "Garbage
    // Collection Writes").
    std::vector<MovedPage> moved;
    uint64_t reclaimed = HarvestVictims(victims, &moved);
    ++stats_.cleanings;

    if (config_.separate_gc_writes) {
      if (oracle_) {
        std::stable_sort(moved.begin(), moved.end(),
                         [](const MovedPage& a, const MovedPage& b) {
                           return a.exact_upf > b.exact_upf;
                         });
      } else {
        std::stable_sort(moved.begin(), moved.end(),
                         [](const MovedPage& a, const MovedPage& b) {
                           return a.up2 > b.up2;
                         });
      }
    }

    // Write phase: relocate. Placement allocates from the just-freed
    // pool; moved bytes never exceed the freed capacity, but policies
    // that fan pages out across many logs (multi-log) can transiently
    // need more *open* segments than one cycle frees. On out-of-space,
    // harvest one more victim and retry rather than declaring the device
    // full.
    bool place_failed = false;
    int emergencies = 0;
    for (size_t i = 0; i < moved.size();) {
      const MovedPage& mp = moved[i];
      Status s = PlacePage(mp.page, mp.bytes, mp.up2, mp.exact_upf,
                           mp.est_upf, /*is_gc=*/true);
      if (s.ok()) {
        // The copy is placed: the page's table location now points at
        // the destination, so the source victim's needed entry for it
        // reads as recorded (SuccessorRecorded) from here on.
        ++i;
        continue;
      }
      std::vector<SegmentId> extra;
      if (s.code() == Status::Code::kOutOfSpace && emergencies < 8) {
        policy_->SelectVictims(*this, triggering_log, 1, &extra);
      }
      if (extra.empty()) {
        result = s;
        place_failed = true;
        break;
      }
      ++emergencies;
      reclaimed += HarvestVictims(extra, &moved);  // then retry moved[i]
    }
    if (place_failed) break;

    if (reclaimed == 0 && free_list_.size() <= free_before) {
      if (++no_progress_cycles >= 3) {
        result = Status::OutOfSpace("cleaning made no progress");
        break;
      }
    } else {
      no_progress_cycles = 0;
    }
  }

  // Victims whose moved pages all landed in segments that sealed during
  // the cycle need not wait for the next organic seal. In checkpoint
  // mode release eagerly even while destinations are still open: the
  // write phase placed every moved page, so one checkpoint round makes
  // the copies durable and the free records (of victims without
  // unresolved successors) can follow — keeping the free pool clear of
  // withheld slots, so the allocation skip above rarely has to divert.
  if (CheckpointingEnabled()) {
    if (!reclaim_queue_.empty() && result.ok()) {
      Status r = ReleaseSafeReclaims();
      if (!r.ok()) result = r;
    }
  } else if (gc_dirty_open_.empty() && !reclaim_queue_.empty()) {
    Status r = ReleaseReclaims();
    if (result.ok() && !r.ok()) result = r;
  }

  cleaning_ = false;
  return result;
}

Status StoreShard::Recover() {
  BackendRecovery log;
  Status s = backend_->Scan(&log);
  if (!s.ok()) return s;

  // Location of one recovered entry, for newest-wins resolution below.
  struct Placed {
    PageId page;
    SegmentId segment;  // kInvalidSegment for a re-homed entry
    uint32_t index;
    uint64_t seq;
    uint32_t bytes;
    UpdateCount last_update;
    double up2;
    double exact_upf;
    /// Log position of the containing record, breaking equal-seq ties:
    /// a re-homing record must beat the victim slot's original seal
    /// (whose payload may be torn by the reusing occupant's crashing
    /// write), and a materialised slot's own later seal must beat the
    /// re-homing record that seeded it.
    uint64_t ordinal;
    bool rehomed;
  };
  std::vector<Placed> placed;

  // Delta records grouped by slot, already in replay (ordinal) order.
  // They are applied below by walking each surviving base record's
  // chain; a delta orphaned by a later full checkpoint, seal or free of
  // its slot never matches any chain tip and is silently skipped.
  std::unordered_map<SegmentId, std::vector<const BackendSegmentRecord*>>
      deltas_by_slot;
  for (const BackendSegmentRecord& d : log.deltas) {
    if (d.id >= segments_.size()) {
      return Status::Corruption("recovery: delta segment id out of range");
    }
    deltas_by_slot[d.id].push_back(&d);
  }

  // Rebuild each sealed segment exactly as the original run filled it:
  // same entry order, same up2 accumulation, so the seal-time up2 the
  // cleaning policies rank by comes back bit-for-bit.
  std::vector<uint8_t> is_sealed(segments_.size(), 0);
  for (const BackendSegmentRecord& rec : log.segments) {
    if (rec.id >= segments_.size()) {
      return Status::Corruption("recovery: segment id out of range");
    }
    // Assemble the slot's effective entry list: start from the base
    // record, then let each chain link replace everything past its
    // recorded prefix. Entries keep the ordinal of the record that
    // contributed them, so equal-seq ties still break toward the later
    // record exactly as with full checkpoints.
    std::vector<Segment::Entry> entries = rec.entries;
    std::vector<uint64_t> ordinals(entries.size(), rec.ordinal);
    UpdateCount seal_time = rec.seal_time;
    if (rec.checkpoint) {
      auto dit = deltas_by_slot.find(rec.id);
      if (dit != deltas_by_slot.end()) {
        uint64_t tip = rec.ordinal;
        for (const BackendSegmentRecord* d : dit->second) {
          if (d->base_ordinal != tip) continue;  // not a link of this chain
          if (d->prefix_entries > entries.size()) {
            return Status::Corruption(
                "recovery: delta prefix exceeds its chain's entries");
          }
          uint64_t prefix_bytes = 0;
          for (uint64_t i = 0; i < d->prefix_entries; ++i) {
            prefix_bytes += entries[i].bytes;
          }
          if (prefix_bytes != d->suffix_offset) {
            return Status::Corruption(
                "recovery: delta suffix offset does not match its chain");
          }
          entries.resize(d->prefix_entries);
          ordinals.resize(d->prefix_entries);
          entries.insert(entries.end(), d->entries.begin(),
                         d->entries.end());
          ordinals.resize(entries.size(), d->ordinal);
          seal_time = d->seal_time;
          tip = d->ordinal;
        }
      }
    }
    Segment& seg = segments_[rec.id];
    seg.Open(rec.log, rec.source, rec.open_time);
    for (size_t i = 0; i < entries.size(); ++i) {
      const Segment::Entry& e = entries[i];
      if (!seg.HasRoomFor(e.bytes)) {
        return Status::Corruption("recovery: entries overflow segment");
      }
      if (e.page == kInvalidPage) {
        seg.AppendDead(e.bytes, e.up2);
        continue;
      }
      if (!OwnsPage(e.page)) {
        return Status::Corruption(
            "recovery: segment holds a page this shard does not own "
            "(was the store created with a different shard count?)");
      }
      const uint32_t idx =
          seg.Append(e.page, e.bytes, e.up2, e.exact_upf, e.seq,
                     e.last_update);
      placed.push_back(
          Placed{e.page, rec.id, idx, e.seq, e.bytes, e.last_update,
                 e.up2, e.exact_upf, ordinals[i], false});
    }
    seg.Seal(seal_time);
    is_sealed[rec.id] = 1;
  }

  // Re-homed entries compete on equal footing: they name page versions
  // whose only durable copy may be the re-homing record (the victim
  // slot that held them was reused, and a crashing rewrite may have
  // torn its payload).
  for (const BackendSegmentRecord& rec : log.rehomed) {
    for (const Segment::Entry& e : rec.entries) {
      if (e.page == kInvalidPage) continue;
      if (!OwnsPage(e.page)) {
        return Status::Corruption(
            "recovery: re-homing record holds a page this shard does "
            "not own (was the store created with a different shard "
            "count?)");
      }
      placed.push_back(
          Placed{e.page, kInvalidSegment, 0, e.seq, e.bytes, e.last_update,
                 e.up2, e.exact_upf, rec.ordinal, true});
    }
  }

  // Newest version wins, by append sequence, then by log position for
  // equal sequences (see Placed::ordinal); a newer delete tombstone
  // means the page is dead everywhere.
  std::unordered_map<PageId, uint64_t> latest_delete;
  for (const auto& [page, seq] : log.deletes) {
    uint64_t& cur = latest_delete[page];
    cur = std::max(cur, seq);
  }
  std::unordered_map<PageId, const Placed*> winner;
  for (const Placed& p : placed) {
    auto it = latest_delete.find(p.page);
    if (it != latest_delete.end() && it->second > p.seq) continue;
    const Placed*& w = winner[p.page];
    if (w == nullptr || p.seq > w->seq ||
        (p.seq == w->seq && p.ordinal > w->ordinal)) {
      w = &p;
    }
  }
  std::vector<const Placed*> materialize;
  for (const Placed& p : placed) {
    auto it = winner.find(p.page);
    if (it != winner.end() && it->second == &p) {
      if (p.rehomed) {
        // No surviving slot holds this version; give it one below, once
        // the free list is known.
        materialize.push_back(&p);
        continue;
      }
      PageMeta& m = table_.Ensure(p.page);
      m.loc = PageLocation{p.segment, p.index};
      m.bytes = p.bytes;
      m.last_update = p.last_update;
    } else if (!p.rehomed) {
      segments_[p.segment].Kill(p.index, p.exact_upf);
    }
  }

  // Remaining segments are free, lowest id allocated first as in a
  // fresh store.
  free_list_.clear();
  for (uint32_t i = config_.num_segments; i > 0; --i) {
    if (!is_sealed[i - 1]) free_list_.push_back(i - 1);
  }

  unow_ = std::max(unow_, log.unow);
  write_seq_ = std::max(write_seq_, log.max_seq);

  // Materialise surviving re-homed entries into fresh GC segments and
  // re-emit them under real seal records, so the next recovery resolves
  // the same versions from ordinary slots (the new seal outranks the
  // re-homing record by log position — repeated crash/recover cycles
  // stay idempotent). Packed in log order, lowest free slot first.
  auto take_slot = [this](SegmentId* out) -> Status {
    if (!free_list_.empty()) {
      *out = free_list_.back();
      free_list_.pop_back();
      return Status::OK();
    }
    // Every slot is durably recorded. The reuse that forced the
    // re-homing leaves the old victim slot fully dead after resolution
    // (each of its entries lost to the re-homing record or to an
    // earlier superseding record), so free one such slot: its free
    // record erases nothing live and precedes the new seal in the log,
    // mirroring the runtime reuse order.
    for (SegmentId id = 0; id < segments_.size(); ++id) {
      Segment& seg = segments_[id];
      if (seg.state() != SegmentState::kSealed || seg.live_count() != 0) {
        continue;
      }
      Status rs = EmitReclaim(id, unow_);
      if (!rs.ok()) return rs;
      seg.Reset();
      *out = id;
      return Status::OK();
    }
    return Status::Corruption(
        "recovery: no slot available to materialise re-homed entries");
  };
  SegmentId cur = kInvalidSegment;
  for (const Placed* p : materialize) {
    if (cur == kInvalidSegment || !segments_[cur].HasRoomFor(p->bytes)) {
      if (cur != kInvalidSegment) {
        segments_[cur].Seal(unow_);
        Status es = EmitSeal(cur, segments_[cur]);
        if (!es.ok()) return es;
      }
      Status as = take_slot(&cur);
      if (!as.ok()) return as;
      segments_[cur].Open(/*log=*/0, SegmentSource::kGc, unow_);
    }
    const uint32_t idx = segments_[cur].Append(
        p->page, p->bytes, p->up2, p->exact_upf, p->seq, p->last_update);
    PageMeta& m = table_.Ensure(p->page);
    m.loc = PageLocation{cur, idx};
    m.bytes = p->bytes;
    m.last_update = p->last_update;
    ++stats_.rehome_entries_recovered;
  }
  if (cur != kInvalidSegment) {
    segments_[cur].Seal(unow_);
    Status es = EmitSeal(cur, segments_[cur]);
    if (!es.ok()) return es;
  }

  return CheckInvariants();
}

Status StoreShard::CheckInvariants() const {
  // 1. Segment counters match entries.
  for (SegmentId id = 0; id < segments_.size(); ++id) {
    if (!segments_[id].CheckCountersConsistent()) {
      return Status::Corruption("segment counters inconsistent");
    }
  }
  // 2. Free-list segments are in kFree state, uniquely listed.
  std::vector<uint8_t> in_free(segments_.size(), 0);
  for (SegmentId id : free_list_) {
    if (id >= segments_.size()) return Status::Corruption("bad free id");
    if (in_free[id]) return Status::Corruption("duplicate free id");
    in_free[id] = 1;
    if (segments_[id].state() != SegmentState::kFree) {
      return Status::Corruption("free-list segment not free");
    }
  }
  for (SegmentId id = 0; id < segments_.size(); ++id) {
    if (segments_[id].state() == SegmentState::kFree && !in_free[id]) {
      return Status::Corruption("free segment missing from free list");
    }
  }
  // 3. Every open segment is registered as the open segment of its
  // (log, stream); none may leak outside the map.
  {
    size_t open_count = 0;
    for (const Segment& s : segments_) {
      open_count += (s.state() == SegmentState::kOpen) ? 1 : 0;
    }
    if (open_count != open_segments_.size()) {
      return Status::Corruption("open segment not tracked in map");
    }
    for (const auto& [key, id] : open_segments_) {
      (void)key;
      if (segments_[id].state() != SegmentState::kOpen) {
        return Status::Corruption("tracked open segment not open");
      }
    }
  }
  // 4. Every present page owned by this shard points at a live entry
  // holding its id, and every live entry is pointed at by exactly its
  // page. (The page table is shared; pages of other shards point into
  // their own shard's segments and are skipped here.)
  uint64_t live_entries = 0;
  for (const Segment& s : segments_) live_entries += s.live_count();
  uint64_t present_in_segments = 0;
  for (PageId p = 0; p < table_.Size(); ++p) {
    if (!OwnsPage(p)) continue;
    const PageMeta& m = table_.Get(p);
    if (!m.loc.Present()) continue;
    if (m.loc.InBuffer()) {
      if (m.loc.index >= buffer_.Count()) {
        return Status::Corruption("buffer slot out of range");
      }
      if (buffer_.Get(m.loc.index).page != p) {
        return Status::Corruption("buffer slot does not hold page");
      }
      continue;
    }
    ++present_in_segments;
    if (m.loc.segment >= segments_.size()) {
      return Status::Corruption("page points at bad segment");
    }
    const Segment& s = segments_[m.loc.segment];
    if (s.state() == SegmentState::kFree) {
      return Status::Corruption("page points at free segment");
    }
    if (m.loc.index >= s.entries().size()) {
      return Status::Corruption("page entry index out of range");
    }
    const Segment::Entry& e = s.entries()[m.loc.index];
    if (e.page != p) return Status::Corruption("entry does not hold page");
    if (e.bytes != m.bytes) return Status::Corruption("entry size mismatch");
  }
  if (present_in_segments != live_entries) {
    return Status::Corruption("live entry count != present page count");
  }
  return Status::OK();
}

}  // namespace lss
