#ifndef LSS_CORE_SEAL_PIPELINE_H_
#define LSS_CORE_SEAL_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

#include "core/io_backend.h"
#include "core/stats.h"
#include "core/types.h"

namespace lss {

/// The per-shard async seal pipeline (StoreConfig::async_seal): a bounded
/// queue of backend operations drained by one I/O thread, so a writer
/// hands off a sealed-in-memory segment and continues while the payload
/// write, metadata append and fsync happen off the write path.
///
/// Ordering. Ops apply strictly in enqueue order. That carries the
/// shard's crash-ordering invariant — a victim's free record is emitted
/// only after the seals/checkpoints holding its relocated pages — from
/// call order into queue order, so the backend observes exactly the
/// operation sequence a synchronous shard would have produced.
///
/// Group commit. The backend runs in deferred-sync mode
/// (SegmentBackend::SetDeferredSync) and the I/O thread calls Sync() once
/// per drained batch: one fsync pair covers every seal, checkpoint and
/// delete queued since the last — classic group commit. With
/// backend_fsync off the Sync() is a metadata no-op but still releases
/// deferred hole punches.
///
/// With the uring backend the batch's payload writes are merely
/// *submitted* as ops apply, overlapping with the packing of later ops
/// in the same batch; the batch-end Sync() reaps every completion
/// before fsyncing (UringBackend::SyncBoth). applied_ therefore still
/// advances only once the batch is fully durable, so WaitApplied keeps
/// its meaning — a waited-on seal's bytes are on the device, readable
/// by the concurrent ReadPagePayload path — regardless of backend.
///
/// Threading. Enqueue / WaitApplied / Drain / Shutdown are called by the
/// shard's owner thread (under the shard mutex in a ShardedStore); the
/// I/O thread touches only the backend, the queue, and its own stats
/// block — never shard state — so it takes no shard lock and cannot
/// deadlock against one. A backend failure is sticky and surfaces on the
/// next Enqueue / WaitApplied / Shutdown, the way an asynchronous group
/// commit acknowledges errors late.
class SealPipeline {
 public:
  struct Op {
    enum class Kind : uint8_t { kSeal, kCheckpoint, kCheckpointDelta,
                                kReclaim, kDelete, kRehome };
    Kind kind = Kind::kSeal;
    /// kSeal / kCheckpoint / kCheckpointDelta / kRehome: the full
    /// durable record (for kCheckpointDelta only the suffix entries and
    /// range; for kRehome the backend writes metadata only and syncs
    /// internally — the record must be durable before the shard's next
    /// seal of the reused slot, which queue order alone would not
    /// guarantee within a group-commit batch).
    BackendSegmentRecord record;
    /// kReclaim: the freed segment.
    SegmentId segment = kInvalidSegment;
    /// kDelete: the tombstoned page and its append sequence.
    PageId page = kInvalidPage;
    uint64_t seq = 0;
    /// kReclaim / kDelete: shard clock at emission.
    UpdateCount unow = 0;
  };

  /// `backend` must outlive the pipeline. Between Start() and Shutdown()
  /// the I/O thread owns every mutating backend call; concurrent
  /// ReadPagePayload from the shard's thread is allowed (reads are
  /// stateless on all backends). `count_fsyncs` mirrors
  /// StoreConfig::backend_fsync and only gates the group-fsync counters.
  SealPipeline(SegmentBackend* backend, uint32_t queue_depth,
               bool count_fsyncs);
  ~SealPipeline();

  SealPipeline(const SealPipeline&) = delete;
  SealPipeline& operator=(const SealPipeline&) = delete;

  /// Switches the backend to deferred sync and starts the I/O thread.
  /// Call after SegmentBackend::Open (and Scan, when recovering).
  void Start();

  /// Hands one op to the I/O thread, blocking while the queue is full
  /// (backpressure; `*stalled` is set when the call had to wait).
  /// Returns the op's 1-based ticket, or 0 when the pipeline carries a
  /// sticky error (read it via error()).
  uint64_t Enqueue(Op op, bool* stalled);

  /// Last ticket fully applied (and covered by a group sync).
  uint64_t applied_ticket() const;

  /// Blocks until `ticket` has been applied and synced; returns the
  /// sticky error if the pipeline died instead.
  Status WaitApplied(uint64_t ticket);

  /// Waits for every op enqueued so far.
  Status Drain();

  /// Drains the queue, stops and joins the I/O thread. Idempotent;
  /// Enqueue is rejected afterwards. Returns the sticky error.
  Status Shutdown();

  /// The sticky backend error (OK while healthy).
  Status error() const;

  /// Stats sink to hand to SegmentBackend::Open: in async mode the
  /// backend's device_* counters must land in pipeline-owned storage
  /// (the I/O thread updates them), not in the shard's StoreStats.
  StoreStats* backend_stats() { return &backend_stats_; }

  /// Thread-safe snapshot of the I/O-side counters (device_* plus the
  /// group-fsync and checkpoint counters), published once per batch.
  StoreStats StatsSnapshot() const;

  /// Drains the pipeline, then zeroes the I/O-side counters (the drain
  /// makes the zeroing race-free: an idle I/O thread does not touch its
  /// stats). Returns the sticky error if draining failed.
  Status ResetStats();

 private:
  void ThreadMain();

  SegmentBackend* backend_;
  const uint32_t queue_depth_;
  const bool count_fsyncs_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // wakes the I/O thread
  std::condition_variable done_cv_;   // wakes producers and waiters
  std::deque<Op> queue_;
  uint64_t enqueued_ = 0;  // tickets handed out
  uint64_t applied_ = 0;   // tickets applied (+synced); == enqueued_ when idle
  bool stop_ = false;
  bool started_ = false;
  Status error_;
  std::thread thread_;

  /// Written by the I/O thread (and by SegmentBackend::Open before
  /// Start); published to published_stats_ under stats_mu_ after each
  /// batch so snapshots never race the backend.
  StoreStats backend_stats_;
  mutable std::mutex stats_mu_;
  StoreStats published_stats_;
};

}  // namespace lss

#endif  // LSS_CORE_SEAL_PIPELINE_H_
