#ifndef LSS_CORE_PAGE_TABLE_H_
#define LSS_CORE_PAGE_TABLE_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace lss {

/// Where the current version of a page lives. Log-structured stores never
/// update in place, so every write moves a page and the table is remapped
/// (paper §1: "pages are dynamically remapped on every write").
struct PageLocation {
  /// Owning segment, or kBufferSegment (in the user write buffer) or
  /// kInvalidSegment (page not present).
  SegmentId segment = kInvalidSegment;
  /// Entry index within the segment, or the buffer slot.
  uint32_t index = 0;

  bool Present() const { return segment != kInvalidSegment; }
  bool InBuffer() const { return segment == kBufferSegment; }
};

/// Per-page metadata the store and the policies need.
struct PageMeta {
  PageLocation loc;
  /// Current version size in bytes.
  uint32_t bytes = 0;
  /// Update-count clock at the page's most recent update (up1). Used by
  /// the multi-log policy's frequency estimate and by the up2 carry rule.
  UpdateCount last_update = 0;
};

/// Dense page table: PageId -> PageMeta. Page ids are expected to be
/// small integers (workloads number their pages 0..P-1); the table grows
/// on demand.
class PageTable {
 public:
  PageTable() = default;

  /// Returns the metadata slot for `page`, growing the table if needed.
  PageMeta& Ensure(PageId page) {
    if (page >= pages_.size()) pages_.resize(page + 1);
    return pages_[page];
  }

  /// Metadata for a page known to be in range.
  const PageMeta& Get(PageId page) const { return pages_[page]; }
  PageMeta& GetMutable(PageId page) { return pages_[page]; }

  /// True if `page` has ever been written and is currently present.
  bool Present(PageId page) const {
    return page < pages_.size() && pages_[page].loc.Present();
  }

  /// Number of page slots allocated (max page id + 1).
  size_t Size() const { return pages_.size(); }

  /// Number of currently present pages (O(n); for tests/diagnostics).
  size_t CountPresent() const {
    size_t n = 0;
    for (const auto& m : pages_) n += m.loc.Present() ? 1 : 0;
    return n;
  }

 private:
  std::vector<PageMeta> pages_;
};

}  // namespace lss

#endif  // LSS_CORE_PAGE_TABLE_H_
