#ifndef LSS_CORE_PAGE_TABLE_H_
#define LSS_CORE_PAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>

#include "core/types.h"

namespace lss {

/// Where the current version of a page lives. Log-structured stores never
/// update in place, so every write moves a page and the table is remapped
/// (paper §1: "pages are dynamically remapped on every write").
struct PageLocation {
  /// Owning segment, or kBufferSegment (in the user write buffer) or
  /// kInvalidSegment (page not present).
  SegmentId segment = kInvalidSegment;
  /// Entry index within the segment, or the buffer slot.
  uint32_t index = 0;

  bool Present() const { return segment != kInvalidSegment; }
  bool InBuffer() const { return segment == kBufferSegment; }
};

/// Per-page metadata the store and the policies need.
struct PageMeta {
  PageLocation loc;
  /// Current version size in bytes.
  uint32_t bytes = 0;
  /// Update-count clock at the page's most recent update (up1). Used by
  /// the multi-log policy's frequency estimate and by the up2 carry rule.
  UpdateCount last_update = 0;
};

/// Lock-striped page table: PageId -> PageMeta. Page ids are expected to
/// be small integers (workloads number their pages 0..P-1); the table
/// grows on demand.
///
/// Storage is split into kStripes independently locked stripes (page id
/// low bits select the stripe), so shards of a ShardedStore can grow and
/// read the shared table concurrently without a global lock — the same
/// fine-grained-locking idiom an OS coremap uses for its physical page
/// entries. Each stripe is a deque, so references returned by Ensure /
/// GetMutable stay valid across later growth.
///
/// Concurrency contract: the table protects its own *structure* (growth,
/// slot lookup) with the stripe locks. The PageMeta *fields* themselves
/// are not locked here — all accesses to a given page's meta must be
/// serialized by the page's owner (in a ShardedStore, the owning shard's
/// mutex; in a plain LogStructuredStore, the single-threaded caller).
class PageTable {
 public:
  static constexpr uint32_t kStripeBits = 6;
  static constexpr uint32_t kStripes = 1u << kStripeBits;  // 64

  PageTable() = default;
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  /// Returns the metadata slot for `page`, growing its stripe if needed.
  PageMeta& Ensure(PageId page) {
    Stripe& s = stripes_[StripeOf(page)];
    const size_t slot = SlotOf(page);
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.metas.size() <= slot) s.metas.resize(slot + 1);
    // Size() is the max ensured page id + 1, maintained monotonically.
    PageId want = page + 1;
    PageId cur = size_.load(std::memory_order_relaxed);
    while (cur < want &&
           !size_.compare_exchange_weak(cur, want, std::memory_order_acq_rel)) {
    }
    return s.metas[slot];
  }

  /// Metadata for `page`; pages never materialised read as an absent
  /// default (exactly what a freshly grown slot would hold).
  const PageMeta& Get(PageId page) const {
    static const PageMeta kAbsent{};
    const Stripe& s = stripes_[StripeOf(page)];
    const size_t slot = SlotOf(page);
    std::lock_guard<std::mutex> lock(s.mu);
    if (slot >= s.metas.size()) return kAbsent;
    return s.metas[slot];
  }

  /// Mutable metadata; materialises the slot if needed.
  PageMeta& GetMutable(PageId page) { return Ensure(page); }

  /// True if `page` has ever been written and is currently present.
  bool Present(PageId page) const {
    const Stripe& s = stripes_[StripeOf(page)];
    const size_t slot = SlotOf(page);
    std::lock_guard<std::mutex> lock(s.mu);
    return slot < s.metas.size() && s.metas[slot].loc.Present();
  }

  /// Number of page slots allocated (max page id ensured + 1).
  size_t Size() const { return size_.load(std::memory_order_acquire); }

  /// Number of currently present pages (O(n); for tests/diagnostics).
  size_t CountPresent() const {
    size_t n = 0;
    for (const Stripe& s : stripes_) {
      std::lock_guard<std::mutex> lock(s.mu);
      for (const PageMeta& m : s.metas) n += m.loc.Present() ? 1 : 0;
    }
    return n;
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::deque<PageMeta> metas;
  };

  static constexpr uint32_t StripeOf(PageId page) {
    return static_cast<uint32_t>(page) & (kStripes - 1);
  }
  static constexpr size_t SlotOf(PageId page) {
    return static_cast<size_t>(page >> kStripeBits);
  }

  Stripe stripes_[kStripes];
  std::atomic<PageId> size_{0};
};

}  // namespace lss

#endif  // LSS_CORE_PAGE_TABLE_H_
