#ifndef LSS_CORE_STATS_H_
#define LSS_CORE_STATS_H_

#include <cstdint>

#include "util/histogram.h"

namespace lss {

/// Counters accumulated by a LogStructuredStore. The headline metric is
/// write amplification Wamp = (GC page moves) / (user page writes), the
/// paper's Equation 2 measured empirically. ResetMeasurement() zeroes the
/// counters without disturbing store state, so benches can warm up to
/// steady state and then measure (paper §6.2 writes 100x the store size so
/// "the write amplification stabilized").
class StoreStats {
 public:
  StoreStats() : clean_emptiness_(0.0, 1.0, 100) {}

  /// Logical user updates submitted via Write().
  uint64_t user_updates = 0;
  /// Physical page writes of user data into segments. Differs from
  /// user_updates when the write buffer absorbs re-updates of a buffered
  /// page.
  uint64_t user_pages_written = 0;
  /// Still-live pages moved by the cleaner (the paper's "page moves",
  /// §1.2 — the numerator of Wamp).
  uint64_t gc_pages_written = 0;
  /// Segments filled with user data and sealed.
  uint64_t user_segments_sealed = 0;
  /// Segments filled with GC'd pages and sealed.
  uint64_t gc_segments_sealed = 0;
  /// Victim segments reclaimed.
  uint64_t segments_cleaned = 0;
  /// Cleaning cycles executed.
  uint64_t cleanings = 0;
  /// Deletes (trims) applied.
  uint64_t deletes = 0;

  // --- Logical byte volume (denominators for device ratios) ----------

  /// Payload bytes of user page versions placed into segments.
  uint64_t user_bytes_written = 0;
  /// Payload bytes of GC-moved page versions placed into segments.
  uint64_t gc_bytes_written = 0;

  // --- Device counters (filled by a real SegmentBackend; all zero on
  // --- the null backend) ---------------------------------------------

  /// Bytes handed to pwrite (segment payloads plus metadata records).
  uint64_t device_bytes_written = 0;
  /// pwrite calls issued.
  uint64_t device_write_ops = 0;
  /// fsync/fdatasync calls issued.
  uint64_t device_fsyncs = 0;
  /// Payload bytes released back to the filesystem via hole punching.
  uint64_t device_bytes_punched = 0;
  /// Wall-clock seconds spent inside pwrite (for the uring backend:
  /// inside buffer packing + SQE submission, the only part of a payload
  /// write that blocks the calling thread).
  double device_write_seconds = 0.0;
  /// Wall-clock seconds spent inside fsync.
  double device_fsync_seconds = 0.0;

  // --- io_uring backend (all zero on other backends; see
  // --- core/uring_backend.h) ------------------------------------------

  /// Shard backends whose capability probe found a working ring (a
  /// kUring store with uring_available == 0 is running the probe's
  /// pwrite fallback everywhere). Capability flag, not a measurement:
  /// ResetMeasurement leaves it alone.
  uint64_t uring_available = 0;
  /// Payload-write SQEs submitted to the ring.
  uint64_t uring_submitted = 0;
  /// CQEs reaped (payload writes + ring-issued fsyncs).
  uint64_t uring_completed = 0;
  /// Short payload writes patched with a synchronous pwrite of the
  /// remainder (essentially ENOSPC territory; always worth surfacing).
  uint64_t uring_short_writes = 0;
  /// Wall-clock seconds the calling thread spent waiting on CQEs (the
  /// durability barrier in Sync/seal paths). Device work that finished
  /// while the CPU packed the next segment costs nothing here — that
  /// overlap is the point of the backend.
  double uring_wait_seconds = 0.0;

  // --- Async seal pipeline (all zero in synchronous mode; see
  // --- core/seal_pipeline.h) ------------------------------------------

  /// Operations (seals, reclaims, deletes, checkpoints) handed to the
  /// per-shard I/O thread.
  uint64_t seal_queue_enqueued = 0;
  /// Times a writer blocked because the seal queue was full
  /// (backpressure events, not wall-clock).
  uint64_t seal_queue_stalls = 0;
  /// Group-commit fsync rounds issued by the I/O thread.
  uint64_t group_fsyncs = 0;
  /// Operations covered by those rounds; group_fsync_ops / group_fsyncs
  /// is the achieved commit-batch size.
  uint64_t group_fsync_ops = 0;
  /// Open-segment checkpoint records persisted (async or periodic).
  uint64_t checkpoints_written = 0;
  /// Checkpoint rounds executed (each CheckpointOpenSegments pass over
  /// the open segments, whether it emitted records or skipped them all
  /// because the delta chains already covered every entry).
  uint64_t checkpoint_rounds = 0;
  /// checkpoints_written split by kind: full records re-persist the
  /// whole slot payload, delta records only the suffix appended since
  /// the durable watermark (StoreConfig::checkpoint_delta).
  uint64_t checkpoint_full_records = 0;
  uint64_t checkpoint_delta_records = 0;
  /// Device bytes spent on checkpointing: payload ranges rewritten plus
  /// the checkpoint metadata records (file backend only; a subset of
  /// device_bytes_written).
  uint64_t checkpoint_bytes_written = 0;
  /// Times AllocateSegment reused a slot whose free record is still
  /// withheld after first re-homing the victim's still-needed entries
  /// under a durable re-homing record (reachable only when a policy
  /// keeps more GC destinations open than there are spare free slots —
  /// multi-log at tiny free pools). The torture harness's multi-log
  /// geometry asserts this fires; each such reuse is crash-safe.
  uint64_t withheld_slot_reuses_rehomed = 0;
  /// Times AllocateSegment reused a withheld slot whose victim had no
  /// still-needed entries (all superseded by already-emitted records),
  /// so no re-homing record was required. Plain reuse of a slot that
  /// still holds needed entries is impossible by construction.
  uint64_t withheld_slot_reuses_plain = 0;
  /// Victim entries persisted into re-homing records before slot reuse.
  uint64_t rehome_entries_written = 0;
  /// Re-homed entries materialised into fresh segments during Recover.
  uint64_t rehome_entries_recovered = 0;

  /// Total withheld-slot reuses (re-homed + plain).
  uint64_t WithheldSlotReuses() const {
    return withheld_slot_reuses_rehomed + withheld_slot_reuses_plain;
  }

  /// Write amplification (Equation 2), measured: moved pages per physical
  /// user page write.
  double WriteAmplification() const {
    if (user_pages_written == 0) return 0.0;
    return static_cast<double>(gc_pages_written) /
           static_cast<double>(user_pages_written);
  }

  /// Mean segment emptiness E observed at clean time (the paper's E in
  /// Table 1; Cost = 2/E, Equation 1).
  double MeanCleanEmptiness() const { return clean_emptiness_.mean(); }

  /// Full distribution of emptiness at clean time.
  const Histogram& clean_emptiness() const { return clean_emptiness_; }
  Histogram& mutable_clean_emptiness() { return clean_emptiness_; }

  /// Measured device traffic per logical user byte: how many bytes the
  /// backend physically wrote (payload, unfilled segment tails, GC
  /// re-writes, metadata) for each byte the user submitted. The device
  /// analogue of the simulator's 1 + Wamp prediction; 0 without a real
  /// backend.
  double DeviceBytesPerUserByte() const {
    if (user_bytes_written == 0) return 0.0;
    return static_cast<double>(device_bytes_written) /
           static_cast<double>(user_bytes_written);
  }

  /// Wall-clock seconds of device work (writes + fsyncs + CQE waits).
  double DeviceSeconds() const {
    return device_write_seconds + device_fsync_seconds + uring_wait_seconds;
  }

  /// Wall-clock seconds the thread driving the backend (the seal
  /// pipeline's I/O thread in async mode, the writer itself in sync
  /// mode) spent *blocked* on device work. For the file backend this is
  /// all of DeviceSeconds(); for the uring backend the payload pwrite
  /// time is replaced by submit time + CQE-wait time, so the difference
  /// against the file backend at equal fsync policy is the overlap the
  /// ring bought.
  double BackendBlockingSeconds() const {
    return device_write_seconds + device_fsync_seconds + uring_wait_seconds;
  }

  /// Accumulates another store's counters into this one (ShardedStore
  /// merges per-shard stats on read). Both histograms must share the
  /// default geometry, which every StoreStats does.
  void Merge(const StoreStats& other) {
    user_updates += other.user_updates;
    user_pages_written += other.user_pages_written;
    gc_pages_written += other.gc_pages_written;
    user_segments_sealed += other.user_segments_sealed;
    gc_segments_sealed += other.gc_segments_sealed;
    segments_cleaned += other.segments_cleaned;
    cleanings += other.cleanings;
    deletes += other.deletes;
    user_bytes_written += other.user_bytes_written;
    gc_bytes_written += other.gc_bytes_written;
    device_bytes_written += other.device_bytes_written;
    device_write_ops += other.device_write_ops;
    device_fsyncs += other.device_fsyncs;
    device_bytes_punched += other.device_bytes_punched;
    device_write_seconds += other.device_write_seconds;
    device_fsync_seconds += other.device_fsync_seconds;
    uring_available += other.uring_available;
    uring_submitted += other.uring_submitted;
    uring_completed += other.uring_completed;
    uring_short_writes += other.uring_short_writes;
    uring_wait_seconds += other.uring_wait_seconds;
    seal_queue_enqueued += other.seal_queue_enqueued;
    seal_queue_stalls += other.seal_queue_stalls;
    group_fsyncs += other.group_fsyncs;
    group_fsync_ops += other.group_fsync_ops;
    checkpoints_written += other.checkpoints_written;
    checkpoint_rounds += other.checkpoint_rounds;
    checkpoint_full_records += other.checkpoint_full_records;
    checkpoint_delta_records += other.checkpoint_delta_records;
    checkpoint_bytes_written += other.checkpoint_bytes_written;
    withheld_slot_reuses_rehomed += other.withheld_slot_reuses_rehomed;
    withheld_slot_reuses_plain += other.withheld_slot_reuses_plain;
    rehome_entries_written += other.rehome_entries_written;
    rehome_entries_recovered += other.rehome_entries_recovered;
    clean_emptiness_.Merge(other.clean_emptiness_);
  }

  /// Zeroes all counters; store state is untouched.
  void ResetMeasurement() {
    user_updates = 0;
    user_pages_written = 0;
    gc_pages_written = 0;
    user_segments_sealed = 0;
    gc_segments_sealed = 0;
    segments_cleaned = 0;
    cleanings = 0;
    deletes = 0;
    user_bytes_written = 0;
    gc_bytes_written = 0;
    device_bytes_written = 0;
    device_write_ops = 0;
    device_fsyncs = 0;
    device_bytes_punched = 0;
    device_write_seconds = 0.0;
    device_fsync_seconds = 0.0;
    // uring_available is a capability flag set once at Open; zeroing it
    // between warmup and measurement would erase a fact that has not
    // changed, so it deliberately survives.
    uring_submitted = 0;
    uring_completed = 0;
    uring_short_writes = 0;
    uring_wait_seconds = 0.0;
    seal_queue_enqueued = 0;
    seal_queue_stalls = 0;
    group_fsyncs = 0;
    group_fsync_ops = 0;
    checkpoints_written = 0;
    checkpoint_rounds = 0;
    checkpoint_full_records = 0;
    checkpoint_delta_records = 0;
    checkpoint_bytes_written = 0;
    withheld_slot_reuses_rehomed = 0;
    withheld_slot_reuses_plain = 0;
    rehome_entries_written = 0;
    rehome_entries_recovered = 0;
    clean_emptiness_.Reset();
  }

 private:
  Histogram clean_emptiness_;
};

}  // namespace lss

#endif  // LSS_CORE_STATS_H_
