#ifndef LSS_CORE_SEGMENT_H_
#define LSS_CORE_SEGMENT_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace lss {

/// Lifecycle of a physical segment. Free segments hold no data; open
/// segments are being appended to; sealed segments are immutable and are
/// the only cleaning candidates.
enum class SegmentState : uint8_t { kFree, kOpen, kSealed };

/// Which placement stream filled a segment (user writes vs. pages moved by
/// the cleaner). Kept for diagnostics and for policies that treat the two
/// differently.
enum class SegmentSource : uint8_t { kNone, kUser, kGc };

/// A physical segment: an append-only run of page versions plus the
/// bookkeeping the cleaning analysis needs (paper §5.1.1):
///   A  available (dead) bytes           -> available_bytes()
///   C  count of live pages              -> live_count()
///   up2 penultimate-update estimate     -> up2()
/// plus the seal time (for age/cost-benefit), the owning log (multi-log),
/// and the exact-frequency sum of live pages (for the *-opt variants).
class Segment {
 public:
  /// One page version stored in the segment. `page == kInvalidPage` marks
  /// a dead (overwritten) entry. Beyond the identity the cleaner needs,
  /// each entry carries the metadata a persistence backend records so a
  /// segment can be reconstructed after restart (core/io_backend.h):
  /// the shard-wide append sequence, the page's up1 at append time, and
  /// the placement estimates.
  struct Entry {
    PageId page = kInvalidPage;
    uint32_t bytes = 0;
    uint64_t seq = 0;
    UpdateCount last_update = 0;
    double up2 = 0.0;
    double exact_upf = 0.0;
    /// Byte offset of this version inside the segment payload (the sum
    /// of the preceding entries' sizes); fixed at append time.
    uint64_t offset = 0;
    /// The page this entry was appended for, preserved across Kill (in
    /// memory only, never serialised directly). Two crash-safety roles:
    /// a backend that rewrites a slot in place — open-segment
    /// checkpoints, reseals of the same segment — uses it to regenerate
    /// byte-identical content for dead regions, so a torn rewrite can
    /// never corrupt payload that an earlier durable record for the slot
    /// still references; and StoreShard::MakeSealRecord uses it to
    /// record in-place-killed entries as *live* with their original
    /// identity, so recovery can resurrect the old version when the
    /// successor's record was lost to the crash (newest-wins by seq
    /// picks the successor whenever it did survive).
    PageId orig_page = kInvalidPage;
    /// Dead on arrival: a superseded buffered duplicate killed at append
    /// time. Unlike in-place kills its append-sequence order relative to
    /// the successor is not meaningful (the flush sorts the batch), so
    /// it must never be resurrected and is always recorded dead.
    bool doa = false;
  };

  explicit Segment(uint32_t capacity_bytes) : capacity_(capacity_bytes) {}

  // Segments are indexed containers owned by the store; copying one would
  // duplicate bookkeeping that the page table points into.
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;
  Segment(Segment&&) = default;
  Segment& operator=(Segment&&) = default;

  /// Transitions kFree -> kOpen for appending. `log` is the placement log
  /// (0 for single-log policies), `source` records the filling stream.
  void Open(uint32_t log, SegmentSource source, UpdateCount now);

  /// True if an append of `bytes` fits.
  bool HasRoomFor(uint32_t bytes) const {
    return used_bytes_ + bytes <= capacity_;
  }

  /// Appends a live page version. `up2` is the page's carried
  /// penultimate-update estimate (averaged into the segment's up2 at seal,
  /// §5.2.2); `exact_upf` is the oracle frequency or 0. `seq` and
  /// `last_update` are recorded for the persistence backend (0 when no
  /// backend cares). Returns the entry index for the page table.
  uint32_t Append(PageId page, uint32_t bytes, double up2, double exact_upf,
                  uint64_t seq = 0, UpdateCount last_update = 0);

  /// Recovery hook: re-creates an entry that was already dead when the
  /// segment originally sealed (its page id is no longer known). The
  /// bytes count toward used space and the up2 toward the seal average,
  /// exactly as the live append + kill did in the original run.
  uint32_t AppendDead(uint32_t bytes, double up2);

  /// Marks entry `idx` dead because its page was overwritten or deleted.
  /// Mirrors §5.2.1: subtracts the page size from the live bytes and
  /// decrements C. `dead_on_arrival` marks a superseded buffered
  /// duplicate, which durable records must never resurrect (see
  /// Entry::doa).
  void Kill(uint32_t idx, double exact_upf, bool dead_on_arrival = false);

  /// Transitions kOpen -> kSealed. The segment's up2 becomes the mean of
  /// the appended pages' up2 values (§5.2.2 "the value for up2 for the new
  /// segment is the average up2 for all pages written to it").
  void Seal(UpdateCount now);

  /// Transitions kSealed (or kOpen, when resetting) -> kFree and drops all
  /// entries.
  void Reset();

  // --- Accessors -----------------------------------------------------

  SegmentState state() const { return state_; }
  SegmentSource source() const { return source_; }
  uint32_t log() const { return log_; }
  uint32_t capacity_bytes() const { return capacity_; }

  /// A: bytes not occupied by live page versions (dead entries plus any
  /// unused tail).
  uint32_t available_bytes() const { return capacity_ - live_bytes_; }
  /// Live payload bytes (B - A).
  uint32_t live_bytes() const { return live_bytes_; }
  /// C: number of live pages.
  uint32_t live_count() const { return live_count_; }
  /// E = A / B, the fraction of the segment that is empty (paper §2.1).
  double Emptiness() const {
    return static_cast<double>(available_bytes()) /
           static_cast<double>(capacity_);
  }

  /// Appended bytes so far, including dead entries (the payload prefix a
  /// checkpoint of this segment would cover).
  uint32_t used_bytes() const { return used_bytes_; }

  /// Durable checkpoint watermark of the current fill generation: the
  /// entry count and byte offset covered by the last checkpoint record
  /// of this segment that is known durable (StoreShard advances it only
  /// after the record's group-fsync). A delta checkpoint re-records only
  /// the suffix past the watermark; Open/Reset clear it, so a reused
  /// slot always starts a fresh chain with a full checkpoint.
  uint32_t checkpoint_entries() const { return ckpt_entries_; }
  uint64_t checkpoint_bytes() const { return ckpt_bytes_; }
  void SetCheckpointWatermark(uint32_t entries, uint64_t bytes) {
    ckpt_entries_ = entries;
    ckpt_bytes_ = bytes;
  }

  /// Segment-level penultimate-update estimate (valid once sealed).
  double up2() const { return up2_; }
  /// up2 usable in any state: the sealed value, or the running mean over
  /// pages appended so far while the segment is still open.
  double Up2Estimate() const {
    if (state_ == SegmentState::kSealed) return up2_;
    return entries_.empty() ? 0.0
                            : up2_accum_ / static_cast<double>(entries_.size());
  }
  /// Update-count clock value when the segment was sealed.
  UpdateCount seal_time() const { return seal_time_; }
  /// Update-count clock value when the segment was opened.
  UpdateCount open_time() const { return open_time_; }

  /// Sum of oracle frequencies over live pages (0 when no oracle is in
  /// use). Mean live-page frequency is exact_upf_sum()/live_count().
  double exact_upf_sum() const { return exact_upf_sum_; }

  const std::vector<Entry>& entries() const { return entries_; }

  /// Test hook: recomputes live_bytes/live_count from the entries and
  /// checks them against the maintained counters.
  bool CheckCountersConsistent() const;

 private:
  uint32_t capacity_;
  SegmentState state_ = SegmentState::kFree;
  SegmentSource source_ = SegmentSource::kNone;
  uint32_t log_ = 0;

  std::vector<Entry> entries_;
  uint32_t used_bytes_ = 0;   // appended bytes including dead entries
  uint32_t live_bytes_ = 0;   // B - A
  uint32_t live_count_ = 0;   // C

  double up2_accum_ = 0;      // sum of appended pages' up2 values
  double up2_ = 0;
  double exact_upf_sum_ = 0;  // over live pages
  UpdateCount open_time_ = 0;
  UpdateCount seal_time_ = 0;

  uint32_t ckpt_entries_ = 0;  // durable checkpoint watermark (entries)
  uint64_t ckpt_bytes_ = 0;    // ...and bytes
};

}  // namespace lss

#endif  // LSS_CORE_SEGMENT_H_
