#ifndef LSS_CORE_STORE_H_
#define LSS_CORE_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cleaning_policy.h"
#include "core/config.h"
#include "core/page_table.h"
#include "core/segment.h"
#include "core/stats.h"
#include "core/store_shard.h"
#include "core/types.h"

namespace lss {

/// A simulated log-structured store (paper §6.1.1): pages are written
/// out-of-place into large segments; a pluggable CleaningPolicy reclaims
/// space by moving still-live pages out of victim segments. As in the
/// paper's simulator, only page identities and sizes are tracked, not page
/// contents — write amplification depends only on the write pattern.
///
/// Since the sharding refactor all mechanics live in StoreShard; this
/// class is the single-shard, single-threaded store: it owns one page
/// table and exactly one shard and forwards to it, which keeps its
/// behaviour bit-for-bit identical to a 1-shard ShardedStore (a property
/// the determinism tests pin down). Use ShardedStore for multi-threaded
/// runs.
///
/// Typical use:
///   StoreConfig cfg;
///   auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kMdc));
///   for (...) store->Write(page_id);
///   double wamp = store->stats().WriteAmplification();
class LogStructuredStore {
 public:
  /// Creates a store, or returns nullptr (with `*status` set, if given)
  /// when the config is invalid or `policy` is null. The persistence
  /// backend is built from `config.backend` (core/io_backend.h); any
  /// existing durable state in `config.backend_dir` is truncated.
  static std::unique_ptr<LogStructuredStore> Create(
      const StoreConfig& config, std::unique_ptr<CleaningPolicy> policy,
      Status* status = nullptr);

  /// Create with an explicit backend instance (tests inject
  /// FaultInjectionBackend through here). `backend` null means the
  /// config-selected backend.
  static std::unique_ptr<LogStructuredStore> CreateWithBackend(
      const StoreConfig& config, std::unique_ptr<CleaningPolicy> policy,
      std::unique_ptr<SegmentBackend> backend, Status* status = nullptr);

  /// Reopens a store from the durable state a previous run left in
  /// `config.backend_dir` (file backend only): scans the segment files,
  /// rebuilds the page table and segment bookkeeping, and verifies
  /// invariants. `config` must match the geometry the store was created
  /// with.
  static std::unique_ptr<LogStructuredStore> Open(
      const StoreConfig& config, std::unique_ptr<CleaningPolicy> policy,
      Status* status = nullptr);

  /// Flushes buffered writes, seals open segments and closes the
  /// backend; the store rejects writes afterwards. Also runs at
  /// destruction (result ignored there).
  Status Close() { return shard_.Close(); }

  LogStructuredStore(const LogStructuredStore&) = delete;
  LogStructuredStore& operator=(const LogStructuredStore&) = delete;

  /// Installs an exact update-frequency oracle for the `*-opt` policy
  /// variants. Must be set before the first Write. The oracle must be
  /// normalised so the mean frequency over user pages is 1.
  void SetExactFrequencyOracle(ExactFrequencyFn oracle) {
    shard_.SetExactFrequencyOracle(std::move(oracle));
  }

  /// Writes (inserts or updates) page `page`. `bytes` of 0 means the
  /// configured default page size. Advances the update-count clock.
  /// Fails with kOutOfSpace when cleaning cannot reclaim room.
  Status Write(PageId page, uint32_t bytes = 0) {
    return shard_.Write(page, bytes);
  }

  /// Removes a page; its storage becomes reclaimable garbage.
  Status Delete(PageId page) { return shard_.Delete(page); }

  /// Drains any buffered user writes into segments.
  Status Flush() { return shard_.Flush(); }

  /// Durable barrier: flushes the buffer, checkpoints every non-empty
  /// open segment and waits until everything emitted so far — async
  /// mode: the whole seal queue — is applied and synced. Afterwards
  /// every previously acknowledged write survives a crash.
  Status Checkpoint() { return shard_.Checkpoint(); }

  /// True if `page` currently has a live version (buffered or stored).
  bool Contains(PageId page) const { return shard_.Contains(page); }

  /// Size in bytes of the current version of `page` (0 if absent).
  uint32_t PageSize(PageId page) const { return shard_.PageSize(page); }

  /// Reads the current version's payload through the backend (see
  /// StoreShard::ReadPage for the sealed-segment requirement).
  Status ReadPage(PageId page, std::vector<uint8_t>* out) const {
    return shard_.ReadPage(page, out);
  }

  // --- Introspection (used by policies, benches and tests) -----------

  const StoreConfig& config() const { return shard_.config(); }
  /// Shard-side counters; async mode keeps device_* / group-fsync
  /// counters with the I/O thread — StatsSnapshot() merges both.
  const StoreStats& stats() const { return shard_.stats(); }
  StoreStats& mutable_stats() { return shard_.mutable_stats(); }
  StoreStats StatsSnapshot() const { return shard_.StatsSnapshot(); }
  /// Zeroes all counters (draining the seal pipeline first in async
  /// mode, so no in-flight op straddles the reset).
  void ResetMeasurement() { shard_.ResetMeasurement(); }
  const CleaningPolicy& policy() const { return shard_.policy(); }

  /// The underlying shard. Policies and victim-selection helpers operate
  /// on shards; tests and benches reach it through here.
  StoreShard& shard() { return shard_; }
  const StoreShard& shard() const { return shard_; }

  /// The update-count clock unow (paper §5.1.2).
  UpdateCount unow() const { return shard_.unow(); }

  /// All physical segments, indexed by SegmentId.
  const std::vector<Segment>& segments() const { return shard_.segments(); }

  /// Number of segments currently in the free pool.
  size_t FreeSegmentCount() const { return shard_.FreeSegmentCount(); }

  /// Number of live (present) pages. O(P); for tests and diagnostics.
  size_t LivePageCount() const { return table_.CountPresent(); }

  const PageTable& page_table() const { return table_; }

  /// Whether an exact-frequency oracle is installed.
  bool HasOracle() const { return shard_.HasOracle(); }

  /// Current update-frequency estimate for `page`: the oracle value when
  /// installed, otherwise 1/(interval since the page's last update) —
  /// the "previous update timestamp" estimate the multi-log paper uses.
  /// Returns 0 for pages with no history.
  double EstimateUpf(PageId page) const { return shard_.EstimateUpf(page); }

  /// Fill factor in effect: live page bytes / device bytes.
  double CurrentFillFactor() const { return shard_.CurrentFillFactor(); }

  /// Exhaustive cross-check of page table <-> segment entries <-> free
  /// list <-> counters. O(device). Returns the first inconsistency found.
  Status CheckInvariants() const { return shard_.CheckInvariants(); }

 private:
  // Shared construction for Create (fresh device) and Open (recovery).
  static std::unique_ptr<LogStructuredStore> Build(
      const StoreConfig& config, std::unique_ptr<CleaningPolicy> policy,
      std::unique_ptr<SegmentBackend> backend, bool recover, Status* status);

  LogStructuredStore(const StoreConfig& config,
                     std::unique_ptr<CleaningPolicy> policy,
                     std::unique_ptr<SegmentBackend> backend)
      : shard_(config, std::move(policy), &table_, 0, 1, std::move(backend)) {}

  PageTable table_;
  StoreShard shard_;
};

}  // namespace lss

#endif  // LSS_CORE_STORE_H_
