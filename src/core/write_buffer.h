#ifndef LSS_CORE_WRITE_BUFFER_H_
#define LSS_CORE_WRITE_BUFFER_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace lss {

/// A pending page write held in the user write buffer.
struct BufferedWrite {
  PageId page = kInvalidPage;
  uint32_t bytes = 0;
  /// Carried penultimate-update estimate; NaN-free: first writes are
  /// flagged instead (their up2 is resolved at flush time to the oldest
  /// up2 in the batch, paper §5.2.2 "First Write").
  double up2 = 0;
  bool first_write = true;
  /// A newer write to the same page is queued behind this one; when
  /// flushed, this copy is placed dead-on-arrival (physical write, no
  /// page-table update).
  bool superseded = false;
  /// Exact oracle frequency (0 when no oracle).
  double exact_upf = 0;
};

/// Buffer that accumulates user page writes so they can be *sorted by
/// update frequency* before being packed into segments (paper §5.3,
/// Figure 4). Re-writing a page that is already buffered updates it in
/// place (write absorption) — the page table points at the slot.
///
/// Slots are stable until Flush drains the buffer.
class WriteBuffer {
 public:
  /// `capacity_bytes` of 0 means unbuffered operation; the store then
  /// bypasses this class entirely.
  explicit WriteBuffer(uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Adds a new pending write; returns its slot index.
  uint32_t Add(const BufferedWrite& w) {
    writes_.push_back(w);
    bytes_ += w.bytes;
    return static_cast<uint32_t>(writes_.size() - 1);
  }

  /// Tombstones a slot (deleted or superseded while buffered); flush
  /// skips it. The buffered byte count keeps the dead bytes so the flush
  /// threshold still advances under single-page update storms.
  void Invalidate(uint32_t slot) { writes_[slot].page = kInvalidPage; }

  /// In-place update of an existing slot (absorption of a re-update).
  void Update(uint32_t slot, uint32_t bytes, double up2, double exact_upf) {
    BufferedWrite& w = writes_[slot];
    bytes_ = bytes_ - w.bytes + bytes;
    w.bytes = bytes;
    w.up2 = up2;
    w.first_write = false;
    w.superseded = false;
    w.exact_upf = exact_upf;
  }

  const BufferedWrite& Get(uint32_t slot) const { return writes_[slot]; }
  BufferedWrite& GetMutable(uint32_t slot) { return writes_[slot]; }

  bool Full() const { return bytes_ >= capacity_bytes_; }
  bool Empty() const { return writes_.empty(); }
  uint64_t bytes() const { return bytes_; }
  size_t Count() const { return writes_.size(); }
  uint64_t capacity_bytes() const { return capacity_bytes_; }

  /// Drains the buffer, returning all pending writes in arrival order.
  /// The caller re-resolves page-table locations as it places them.
  std::vector<BufferedWrite> Drain() {
    std::vector<BufferedWrite> out;
    out.swap(writes_);
    bytes_ = 0;
    return out;
  }

 private:
  uint64_t capacity_bytes_;
  std::vector<BufferedWrite> writes_;
  uint64_t bytes_ = 0;
};

}  // namespace lss

#endif  // LSS_CORE_WRITE_BUFFER_H_
