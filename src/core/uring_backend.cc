#include "core/uring_backend.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

// Raw io_uring: the three syscalls plus the mmap'd ring ABI from
// <linux/io_uring.h>. No liburing — the ring protocol is small enough
// to speak directly, and the container toolchain has no liburing to
// link against. Everything ring-specific compiles only where the
// kernel header exists; elsewhere the class degrades to FileBackend
// semantics at compile time, mirroring the runtime probe fallback.
#if defined(__linux__) && defined(__has_include)
#if __has_include(<linux/io_uring.h>)
#define LSS_URING_SYSCALLS 1
#endif
#endif

#if defined(LSS_URING_SYSCALLS)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

// The io_uring syscall numbers are uniform across architectures (added
// to the unified table in 5.1); some older libcs ship syscall.h without
// them even when the kernel header exists.
#ifndef __NR_io_uring_setup
#define __NR_io_uring_setup 425
#endif
#ifndef __NR_io_uring_enter
#define __NR_io_uring_enter 426
#endif
#ifndef __NR_io_uring_register
#define __NR_io_uring_register 427
#endif
#else
#include <unistd.h>
#endif  // LSS_URING_SYSCALLS

namespace lss {

namespace {

// Local copies of io_backend.cc's file-scope helpers (they live in its
// anonymous namespace deliberately — the .cc files share no internals).
Status UringErrnoStatus(const char* what, int err) {
  const std::string msg = std::string(what) + ": " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) return Status::OutOfSpace(msg);
  return Status::Corruption(msg);
}

double UringSecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

#if defined(LSS_URING_SYSCALLS)

Status UringPwriteAll(int fd, const void* data, size_t len, uint64_t offset) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return UringErrnoStatus("pwrite", errno);
    }
    p += n;
    offset += static_cast<uint64_t>(n);
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

// io_uring_enter, retrying EINTR. Returns 0 or the failing errno (so
// callers can special-case EBUSY = CQ backlog).
int RawEnter(int fd, unsigned to_submit, unsigned min_complete,
             unsigned flags) {
  while (true) {
    const long r = syscall(__NR_io_uring_enter, fd, to_submit, min_complete,
                           flags, nullptr, 0);
    if (r >= 0) {
      // A short submit leaves SQEs queued; with our submit-immediately
      // protocol that only happens on kernel-side resource pressure.
      if (to_submit > 0 && static_cast<unsigned long>(r) < to_submit) {
        return EBUSY;
      }
      return 0;
    }
    if (errno == EINTR) continue;
    return errno;
  }
}

constexpr uint64_t kFsyncUserData = ~0ull;

// Soft ceiling on the per-shard payload-buffer slab. Two slots minimum
// keeps pack-next-while-writing-previous overlap even for segments
// bigger than the ceiling.
constexpr uint64_t kMaxPoolBytes = 64ull << 20;

#endif  // LSS_URING_SYSCALLS

}  // namespace

UringBackend::~UringBackend() { Close(); }

Status UringBackend::Open(const StoreConfig& config, uint32_t shard_id,
                          uint32_t num_shards, StoreStats* stats,
                          bool recover) {
  Status s = FileBackend::Open(config, shard_id, num_shards, stats, recover);
  if (!s.ok()) return s;
  std::string reason;
  if (!SetupRing(&reason)) {
    fallback_reason_ = reason;
    std::fprintf(stderr,
                 "lss: uring backend (shard %u): %s; "
                 "using synchronous pwrite fallback\n",
                 shard_id, reason.c_str());
    return Status::OK();
  }
  fallback_reason_.clear();
  if (stats_ != nullptr) stats_->uring_available += 1;
  return Status::OK();
}

Status UringBackend::Close() {
  // Base Close drains reclaims and calls the *virtual* SyncBoth, so the
  // ring's in-flight writes are reaped while the files are still open;
  // only then is the ring itself torn down.
  Status s = FileBackend::Close();
  DestroyRing();
  return s;
}

// Power loss: SQEs already handed to the kernel are writes the device
// was performing — the simulated crash cannot un-issue them, so
// DestroyRing waits them out (ignoring results) and the torture tear
// operates on deterministic file state. Everything not yet submitted
// (queued free records, punches) dies with the base Abandon, exactly
// like FileBackend's unsynced appends.
void UringBackend::Abandon() {
  DestroyRing();
  FileBackend::Abandon();
}

#if defined(LSS_URING_SYSCALLS)

bool UringBackend::SetupRing(std::string* reason) {
  DestroyRing();

  struct io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  const uint32_t depth =
      std::min<uint32_t>(std::max<uint32_t>(config_.uring_queue_depth, 1u),
                         1024u);
  const long fd = syscall(__NR_io_uring_setup, depth, &params);
  if (fd < 0) {
    *reason = std::string("io_uring_setup: ") + std::strerror(errno);
    return false;
  }
  ring_fd_ = static_cast<int>(fd);

  sq_ring_bytes_ =
      params.sq_off.array + params.sq_entries * sizeof(uint32_t);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
  single_mmap_ = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap_) {
    sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
  }

  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    *reason = std::string("mmap sq ring: ") + std::strerror(errno);
    DestroyRing();
    return false;
  }
  if (single_mmap_) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      *reason = std::string("mmap cq ring: ") + std::strerror(errno);
      DestroyRing();
      return false;
    }
  }
  sqes_bytes_ = params.sq_entries * sizeof(struct io_uring_sqe);
  sqes_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    *reason = std::string("mmap sqes: ") + std::strerror(errno);
    DestroyRing();
    return false;
  }

  uint8_t* sq = static_cast<uint8_t*>(sq_ring_);
  sq_head_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.head);
  sq_tail_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.tail);
  sq_mask_ = *reinterpret_cast<uint32_t*>(sq + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.array);
  sq_entries_ = params.sq_entries;
  uint8_t* cq = static_cast<uint8_t*>(cq_ring_);
  cq_head_ = reinterpret_cast<uint32_t*>(cq + params.cq_off.head);
  cq_tail_ = reinterpret_cast<uint32_t*>(cq + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<uint32_t*>(cq + params.cq_off.ring_mask);
  cqes_ = cq + params.cq_off.cqes;

  // Smoke-test io_uring_enter through the real ring: setup succeeding
  // while enter is seccomp-filtered is exactly the situation the probe
  // exists for. A NOP must come back as one CQE.
  {
    const uint32_t tail = *sq_tail_;
    const uint32_t idx = tail & sq_mask_;
    struct io_uring_sqe* sqe =
        static_cast<struct io_uring_sqe*>(sqes_) + idx;
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_NOP;
    sqe->user_data = kFsyncUserData;
    sq_array_[idx] = idx;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    const int err = RawEnter(ring_fd_, 1, 1, IORING_ENTER_GETEVENTS);
    if (err != 0) {
      *reason = std::string("io_uring_enter: ") + std::strerror(err);
      DestroyRing();
      return false;
    }
    const uint32_t ctail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    if (ctail == *cq_head_) {
      *reason = "io_uring NOP produced no completion";
      DestroyRing();
      return false;
    }
    __atomic_store_n(cq_head_, ctail, __ATOMIC_RELEASE);
  }

  // Payload-buffer pool: enough slots to keep the configured depth of
  // writes in flight, clamped so the slab stays modest.
  slot_bytes_ = config_.segment_bytes;
  const uint64_t cap_by_bytes =
      std::max<uint64_t>(2, kMaxPoolBytes / slot_bytes_);
  pool_slots_ = static_cast<uint32_t>(std::min<uint64_t>(
      std::min<uint64_t>(depth, sq_entries_), cap_by_bytes));
  pool_slots_ = std::max<uint32_t>(pool_slots_, 2);
  void* slab = nullptr;
  if (::posix_memalign(&slab, 4096, pool_slots_ * slot_bytes_) != 0) {
    *reason = "posix_memalign for payload pool failed";
    DestroyRing();
    return false;
  }
  pool_ = static_cast<uint8_t*>(slab);
  free_slots_.clear();
  for (uint32_t i = pool_slots_; i > 0; --i) free_slots_.push_back(i - 1);
  inflight_.assign(pool_slots_, Inflight{});
  inflight_count_ = 0;
  fsync_inflight_ = false;
  acquired_slot_ = kNoSlot;
  patched_since_sync_ = false;
  ring_error_ = Status::OK();

  // Optional accelerations; either registration may be refused (memlock
  // rlimits, older kernels) without costing correctness — the SQEs then
  // carry raw addresses / the raw fd.
  std::vector<struct iovec> iov(pool_slots_);
  for (uint32_t i = 0; i < pool_slots_; ++i) {
    iov[i].iov_base = pool_ + static_cast<uint64_t>(i) * slot_bytes_;
    iov[i].iov_len = slot_bytes_;
  }
  fixed_buffers_ = syscall(__NR_io_uring_register, ring_fd_,
                           IORING_REGISTER_BUFFERS, iov.data(),
                           pool_slots_) == 0;
  int data_fd = data_fd_;
  fixed_file_ = syscall(__NR_io_uring_register, ring_fd_,
                        IORING_REGISTER_FILES, &data_fd, 1u) == 0;
  return true;
}

void UringBackend::DestroyRing() {
  if (ring_fd_ >= 0) {
    // Wait out submitted writes — the kernel still owns our buffers and
    // the file range; see the Abandon() comment. Results no longer
    // matter, only that the I/O has stopped.
    while (inflight_count_ > 0 || fsync_inflight_) {
      const int err = RawEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
      ReapCompletions();
      if (err != 0 && err != EBUSY) break;
    }
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
    if (cq_ring_ != nullptr && !single_mmap_) ::munmap(cq_ring_, cq_ring_bytes_);
    if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
    ::close(ring_fd_);
    ring_fd_ = -1;
  }
  sq_ring_ = cq_ring_ = sqes_ = cqes_ = nullptr;
  sq_head_ = sq_tail_ = sq_array_ = cq_head_ = cq_tail_ = nullptr;
  sq_ring_bytes_ = cq_ring_bytes_ = sqes_bytes_ = 0;
  sq_mask_ = sq_entries_ = cq_mask_ = 0;
  single_mmap_ = false;
  fixed_buffers_ = fixed_file_ = false;
  std::free(pool_);
  pool_ = nullptr;
  pool_slots_ = 0;
  slot_bytes_ = 0;
  free_slots_.clear();
  inflight_.clear();
  inflight_count_ = 0;
  fsync_inflight_ = false;
  acquired_slot_ = kNoSlot;
  patched_since_sync_ = false;
  ring_error_ = Status::OK();
}

bool UringBackend::ProbeAvailable(std::string* reason) {
  struct io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  const long fd = syscall(__NR_io_uring_setup, 4, &params);
  if (fd < 0) {
    if (reason != nullptr) {
      *reason = std::string("io_uring_setup: ") + std::strerror(errno);
    }
    return false;
  }
  // Exercise the second syscall too — seccomp filters often allow setup
  // (or return ENOSYS from enter only).
  const int err = RawEnter(static_cast<int>(fd), 0, 0, 0);
  ::close(static_cast<int>(fd));
  if (err != 0) {
    if (reason != nullptr) {
      *reason = std::string("io_uring_enter: ") + std::strerror(err);
    }
    return false;
  }
  if (reason != nullptr) reason->clear();
  return true;
}

uint8_t* UringBackend::AcquirePayloadBuffer() {
  if (!ring_active()) return FileBackend::AcquirePayloadBuffer();
  if (acquired_slot_ != kNoSlot) {
    // The previous acquisition never reached WritePayload (its caller
    // bailed out before submitting); hand the same slot out again.
    return pool_ + static_cast<uint64_t>(acquired_slot_) * slot_bytes_;
  }
  // Opportunistically reap finished writes; block only when every slot
  // is pinned under an in-flight write (the queue-depth backpressure).
  if (!ReapCompletions().ok()) return nullptr;
  while (free_slots_.empty()) {
    if (!WaitAndReap().ok()) return nullptr;
  }
  acquired_slot_ = free_slots_.back();
  free_slots_.pop_back();
  return pool_ + static_cast<uint64_t>(acquired_slot_) * slot_bytes_;
}

Status UringBackend::WritePayload(const uint8_t* buf, uint64_t len,
                                  uint64_t offset) {
  if (!ring_active()) return FileBackend::WritePayload(buf, len, offset);
  if (!ring_error_.ok()) return ring_error_;
  const uint32_t slot = acquired_slot_;
  if (slot == kNoSlot ||
      buf != pool_ + static_cast<uint64_t>(slot) * slot_bytes_) {
    return Status::InvalidArgument("uring write without an acquired buffer");
  }
  if (len > slot_bytes_) {
    return Status::InvalidArgument("uring write exceeds pool slot");
  }
  // Completion-order fence: an in-flight write overlapping this range
  // must finish first, or the device could surface the older bytes (a
  // reseal racing its own slot's earlier checkpoint). Rare enough that
  // waiting beats tracking finer dependencies.
  Status s = AwaitRange(offset, len);
  if (!s.ok()) return s;
  const auto t0 = std::chrono::steady_clock::now();
  s = SubmitWrite(slot, len, offset);
  if (!s.ok()) return s;
  acquired_slot_ = kNoSlot;
  inflight_[slot].offset = offset;
  inflight_[slot].len = len;
  inflight_[slot].active = true;
  ++inflight_count_;
  if (stats_ != nullptr) {
    stats_->device_bytes_written += len;
    stats_->device_write_ops += 1;
    stats_->device_write_seconds += UringSecondsSince(t0);
    stats_->uring_submitted += 1;
  }
  return Status::OK();
}

Status UringBackend::SyncBoth() {
  if (!ring_active()) return FileBackend::SyncBoth();
  if (!ring_error_.ok()) return ring_error_;
  Status s = ReapCompletions();
  if (!s.ok()) return s;
  if (inflight_count_ == 0 && !fsync_inflight_) {
    // Nothing in flight: a plain fsync pair covers everything already
    // written, including any short-write patches.
    patched_since_sync_ = false;
    return FileBackend::SyncBoth();
  }
  const bool want_fsync = config_.backend_fsync && data_fd_ >= 0;
  if (want_fsync) {
    // Ordered behind every in-flight write by IOSQE_IO_DRAIN, so one
    // ring submission covers the whole batch — the group-commit shape.
    s = SubmitFsync();
    if (!s.ok()) return s;
  }
  s = AwaitInflight();
  if (!s.ok()) return s;
  if (!config_.backend_fsync) {
    // Completion barrier only (callers may read or rewrite the ranges);
    // durability is declined exactly like the base backend declines it.
    patched_since_sync_ = false;
    return Status::OK();
  }
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t synced = 1;  // the ring fsync reaped above
  if (patched_since_sync_ && data_fd_ >= 0) {
    // A short write was patched with a synchronous pwrite, possibly
    // after the ring fsync entered the queue; re-cover it.
    if (::fsync(data_fd_) != 0) {
      return UringErrnoStatus("fsync data file", errno);
    }
    ++synced;
  }
  patched_since_sync_ = false;
  if (meta_fd_ >= 0) {
    if (::fsync(meta_fd_) != 0) {
      return UringErrnoStatus("fsync meta file", errno);
    }
    ++synced;
  }
  if (stats_ != nullptr) {
    stats_->device_fsyncs += synced;
    stats_->device_fsync_seconds += UringSecondsSince(t0);
  }
  return Status::OK();
}

Status UringBackend::SubmitWrite(uint32_t slot, uint64_t len,
                                 uint64_t offset) {
  const uint32_t tail = *sq_tail_;
  const uint32_t head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  if (tail - head >= sq_entries_) {
    // Cannot happen with the submit-immediately protocol (every SQE is
    // consumed by the enter that follows it), but fail loudly if it does.
    return Status::Corruption("io_uring submission queue full");
  }
  const uint32_t idx = tail & sq_mask_;
  struct io_uring_sqe* sqe = static_cast<struct io_uring_sqe*>(sqes_) + idx;
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = fixed_buffers_ ? IORING_OP_WRITE_FIXED : IORING_OP_WRITE;
  sqe->fd = fixed_file_ ? 0 : data_fd_;
  if (fixed_file_) sqe->flags |= IOSQE_FIXED_FILE;
  sqe->addr = reinterpret_cast<uint64_t>(
      pool_ + static_cast<uint64_t>(slot) * slot_bytes_);
  sqe->len = static_cast<uint32_t>(len);
  sqe->off = offset;
  if (fixed_buffers_) sqe->buf_index = static_cast<uint16_t>(slot);
  sqe->user_data = slot;
  sq_array_[idx] = idx;
  __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
  while (true) {
    const int err = RawEnter(ring_fd_, 1, 0, 0);
    if (err == 0) return Status::OK();
    if (err == EBUSY || err == EAGAIN) {
      // CQ backlog: reap and retry the submission.
      Status s = ReapCompletions();
      if (!s.ok()) return s;
      continue;
    }
    return UringErrnoStatus("io_uring_enter (submit write)", err);
  }
}

Status UringBackend::SubmitFsync() {
  const uint32_t tail = *sq_tail_;
  const uint32_t head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  if (tail - head >= sq_entries_) {
    return Status::Corruption("io_uring submission queue full");
  }
  const uint32_t idx = tail & sq_mask_;
  struct io_uring_sqe* sqe = static_cast<struct io_uring_sqe*>(sqes_) + idx;
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = IORING_OP_FSYNC;
  sqe->fd = fixed_file_ ? 0 : data_fd_;
  // IO_DRAIN orders the fsync behind every previously submitted SQE, so
  // it covers exactly the writes this barrier promises.
  sqe->flags = IOSQE_IO_DRAIN;
  if (fixed_file_) sqe->flags |= IOSQE_FIXED_FILE;
  sqe->user_data = kFsyncUserData;
  sq_array_[idx] = idx;
  __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
  while (true) {
    const int err = RawEnter(ring_fd_, 1, 0, 0);
    if (err == 0) break;
    if (err == EBUSY || err == EAGAIN) {
      Status s = ReapCompletions();
      if (!s.ok()) return s;
      continue;
    }
    return UringErrnoStatus("io_uring_enter (submit fsync)", err);
  }
  fsync_inflight_ = true;
  return Status::OK();
}

Status UringBackend::ReapCompletions() {
  // Consumes unconditionally (DestroyRing's drain relies on that); the
  // sticky error only decides what is reported.
  Status result = Status::OK();
  uint32_t head = *cq_head_;
  const uint32_t tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  while (head != tail) {
    const struct io_uring_cqe* cqe =
        static_cast<const struct io_uring_cqe*>(cqes_) + (head & cq_mask_);
    const uint64_t ud = cqe->user_data;
    const int32_t res = cqe->res;
    ++head;
    if (stats_ != nullptr) stats_->uring_completed += 1;
    if (ud == kFsyncUserData) {
      fsync_inflight_ = false;
      if (res < 0 && result.ok()) {
        result = UringErrnoStatus("io_uring fsync", -res);
      }
      continue;
    }
    if (ud >= inflight_.size() || !inflight_[ud].active) {
      if (result.ok()) {
        result = Status::Corruption("io_uring completion for unknown write");
      }
      continue;
    }
    Inflight& f = inflight_[ud];
    if (res < 0) {
      if (result.ok()) result = UringErrnoStatus("io_uring write", -res);
    } else if (static_cast<uint64_t>(res) < f.len) {
      // Short write (ENOSPC territory): complete the remainder with a
      // synchronous pwrite; the next barrier re-covers it with a plain
      // fsync in case its ring fsync was already queued.
      Status p = UringPwriteAll(
          data_fd_,
          pool_ + static_cast<uint64_t>(ud) * slot_bytes_ +
              static_cast<uint64_t>(res),
          f.len - static_cast<uint64_t>(res),
          f.offset + static_cast<uint64_t>(res));
      if (!p.ok() && result.ok()) result = p;
      patched_since_sync_ = true;
      if (stats_ != nullptr) stats_->uring_short_writes += 1;
    }
    f.active = false;
    --inflight_count_;
    free_slots_.push_back(static_cast<uint32_t>(ud));
  }
  __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
  if (!result.ok() && ring_error_.ok()) ring_error_ = result;
  return ring_error_.ok() ? result : ring_error_;
}

Status UringBackend::WaitAndReap() {
  if (!ring_error_.ok()) return ring_error_;
  if (inflight_count_ == 0 && !fsync_inflight_) {
    return Status::Corruption("io_uring wait with nothing in flight");
  }
  const auto t0 = std::chrono::steady_clock::now();
  const int err = RawEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
  if (stats_ != nullptr) {
    stats_->uring_wait_seconds += UringSecondsSince(t0);
  }
  if (err != 0 && err != EBUSY) {
    return UringErrnoStatus("io_uring_enter (wait)", err);
  }
  return ReapCompletions();
}

Status UringBackend::AwaitInflight() {
  Status s = ReapCompletions();
  if (!s.ok()) return s;
  while (inflight_count_ > 0 || fsync_inflight_) {
    s = WaitAndReap();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status UringBackend::AwaitRange(uint64_t offset, uint64_t len) {
  while (true) {
    Status s = ReapCompletions();
    if (!s.ok()) return s;
    bool overlap = false;
    for (const Inflight& f : inflight_) {
      if (f.active && f.offset < offset + len && offset < f.offset + f.len) {
        overlap = true;
        break;
      }
    }
    if (!overlap) return Status::OK();
    s = WaitAndReap();
    if (!s.ok()) return s;
  }
}

#else  // !LSS_URING_SYSCALLS

// Without the kernel header the ring can never activate: SetupRing
// reports the platform, every seam delegates to the base class (the
// ring_active() guards all read false), and the class still links.

bool UringBackend::SetupRing(std::string* reason) {
  *reason = "io_uring requires Linux with <linux/io_uring.h>";
  return false;
}

void UringBackend::DestroyRing() {
  std::free(pool_);
  pool_ = nullptr;
}

bool UringBackend::ProbeAvailable(std::string* reason) {
  if (reason != nullptr) {
    *reason = "io_uring requires Linux with <linux/io_uring.h>";
  }
  return false;
}

uint8_t* UringBackend::AcquirePayloadBuffer() {
  return FileBackend::AcquirePayloadBuffer();
}

Status UringBackend::WritePayload(const uint8_t* buf, uint64_t len,
                                  uint64_t offset) {
  return FileBackend::WritePayload(buf, len, offset);
}

Status UringBackend::SyncBoth() { return FileBackend::SyncBoth(); }

Status UringBackend::SubmitWrite(uint32_t, uint64_t, uint64_t) {
  return Status::InvalidArgument("io_uring unavailable");
}

Status UringBackend::SubmitFsync() {
  return Status::InvalidArgument("io_uring unavailable");
}

Status UringBackend::ReapCompletions() { return Status::OK(); }

Status UringBackend::WaitAndReap() {
  return Status::InvalidArgument("io_uring unavailable");
}

Status UringBackend::AwaitInflight() { return Status::OK(); }

Status UringBackend::AwaitRange(uint64_t, uint64_t) { return Status::OK(); }

#endif  // LSS_URING_SYSCALLS

}  // namespace lss
