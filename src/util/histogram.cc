#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>

namespace lss {

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
  Reset();
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

size_t Histogram::BucketFor(double v) const {
  if (v < lo_) return 0;
  size_t i = static_cast<size_t>((v - lo_) / width_);
  return std::min(i, counts_.size() - 1);
}

void Histogram::Add(double v) {
  counts_[BucketFor(v)]++;
  count_++;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void Histogram::Merge(const Histogram& other) {
  assert(counts_.size() == other.counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const uint64_t next = seen + counts_[i];
    if (static_cast<double>(next) >= target && counts_[i] > 0) {
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    seen = next;
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.4f p50=%.4f p99=%.4f min=%.4f max=%.4f",
                static_cast<unsigned long long>(count_), mean(),
                Quantile(0.5), Quantile(0.99), count_ ? min_ : 0.0,
                count_ ? max_ : 0.0);
  return buf;
}

}  // namespace lss
