#include "util/table_printer.h"

#include <algorithm>
#include <cassert>

namespace lss {

TablePrinter::Cell::Cell(double v, int prec) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  text = buf;
}

TablePrinter::Cell::Cell(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  text = buf;
}

TablePrinter::Cell::Cell(int v) { text = std::to_string(v); }

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<Cell> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].text.size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%*s", c ? "  " : "", static_cast<int>(widths[c]),
                   cells[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  std::fprintf(out, "%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) {
    std::vector<std::string> texts;
    texts.reserve(row.size());
    for (const auto& cell : row) texts.push_back(cell.text);
    print_row(texts);
  }
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](auto get, size_t n) {
    for (size_t c = 0; c < n; ++c) {
      std::fprintf(out, "%s%s", c ? "," : "", get(c));
    }
    std::fprintf(out, "\n");
  };
  print_row([&](size_t c) { return headers_[c].c_str(); }, headers_.size());
  for (const auto& row : rows_) {
    print_row([&](size_t c) { return row[c].text.c_str(); }, row.size());
  }
}

}  // namespace lss
