#ifndef LSS_UTIL_TABLE_PRINTER_H_
#define LSS_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace lss {

/// Formats rows of mixed numeric/string cells as an aligned, monospace
/// table, the way the paper's tables read. The bench binaries use this so
/// every table/figure reproduction prints comparable rows.
///
/// Usage:
///   TablePrinter t({"F", "E", "Cost", "Wamp"});
///   t.AddRow({Cell(0.8), Cell(0.375), Cell(5.33), Cell(1.66)});
///   t.Print(stdout);
class TablePrinter {
 public:
  /// A single table cell; stores its rendered text.
  struct Cell {
    std::string text;

    Cell() = default;
    explicit Cell(std::string s) : text(std::move(s)) {}
    explicit Cell(const char* s) : text(s) {}
    /// Renders a double with `prec` significant decimal places.
    explicit Cell(double v, int prec = 3);
    explicit Cell(uint64_t v);
    explicit Cell(int v);
  };

  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<Cell> cells);

  /// Render the whole table to `out`. Columns are right-aligned and padded
  /// to the widest entry; a rule separates the header.
  void Print(std::FILE* out) const;

  /// Render as comma-separated values (for downstream plotting).
  void PrintCsv(std::FILE* out) const;

  size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace lss

#endif  // LSS_UTIL_TABLE_PRINTER_H_
