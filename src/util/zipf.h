#ifndef LSS_UTIL_ZIPF_H_
#define LSS_UTIL_ZIPF_H_

#include <cstdint>

#include "util/rng.h"

namespace lss {

/// Zipfian rank sampler over {0, 1, ..., n-1} with skew parameter theta,
/// where rank r is drawn with probability proportional to 1/(r+1)^theta.
///
/// Implements the rejection-free method of Gray et al. ("Quickly
/// Generating Billion-Record Synthetic Databases", SIGMOD 1994), the same
/// generator YCSB uses. Sampling is O(1) after an O(n) zeta precomputation.
///
/// The paper evaluates "80-20 Zipfian (factor 0.99)" and "90-10 Zipfian
/// (factor 1.35)" update distributions (Section 6.2.2); this class is the
/// source of those streams.
class ZipfGenerator {
 public:
  /// Creates a sampler over `n` items with skew `theta` (0 < theta,
  /// theta != 1 is not required; theta == 1 is handled). theta = 0 would be
  /// uniform; use Rng directly for that.
  ZipfGenerator(uint64_t n, double theta);

  /// Draws a Zipf-distributed rank in [0, n). Rank 0 is the hottest.
  uint64_t Next(Rng& rng) const;

  /// Ideal Zipf probability mass of rank `r`: 1/((r+1)^theta * zeta_n).
  double Pmf(uint64_t r) const;

  /// Exact probability that Next() returns rank `r` *under this
  /// generator*. The Gray et al. method is a continuous approximation of
  /// the ideal pmf, so the two differ by a few percent for small ranks
  /// (noticeably for theta > 1). Oracles that must agree with what the
  /// sampler actually draws (the `*-opt` policy variants) use this.
  double SampleMass(uint64_t r) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// Zipfian sampler whose ranks are scattered across the item space with a
/// stateless hash (SplitMix64 mod n), so the hot items are not clustered at
/// low ids. Matches YCSB's "scrambled zipfian". The mapping rank -> item is
/// deterministic, so exact per-item probabilities remain computable.
class ScrambledZipfGenerator {
 public:
  ScrambledZipfGenerator(uint64_t n, double theta)
      : zipf_(n, theta) {}

  /// Draws an item id in [0, n).
  uint64_t Next(Rng& rng) const { return Scatter(zipf_.Next(rng)); }

  /// The item id that rank `r` maps to.
  uint64_t Scatter(uint64_t rank) const {
    return SplitMix64(rank) % zipf_.n();
  }

  const ZipfGenerator& zipf() const { return zipf_; }

 private:
  ZipfGenerator zipf_;
};

}  // namespace lss

#endif  // LSS_UTIL_ZIPF_H_
