#include "util/zipf.h"

#include <cassert>
#include <cmath>

namespace lss {

namespace {

// zeta(n, theta) = sum_{i=1}^{n} 1/i^theta.
double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta > 0.0);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double v =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t rank = static_cast<uint64_t>(v);
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

double ZipfGenerator::Pmf(uint64_t r) const {
  assert(r < n_);
  return 1.0 / (std::pow(static_cast<double>(r + 1), theta_) * zetan_);
}

double ZipfGenerator::SampleMass(uint64_t r) const {
  assert(r < n_);
  // Next() is a monotone map from u in [0,1) to ranks:
  //   u <  t0            -> 0
  //   u in [t0, t1)      -> 1
  //   u >= t1            -> min(floor(n*(eta*u - eta + 1)^alpha), n-1)
  // The mass of rank r is the measure of u mapping to it; the continuous
  // branch can also land on ranks 0 and 1, overlapping the shortcuts.
  const double t0 = 1.0 / zetan_;
  const double t1 = (1.0 + std::pow(0.5, theta_)) / zetan_;
  double mass = 0.0;
  if (r == 0) mass += t0;
  if (r == 1) mass += t1 - t0;

  // u where the continuous branch crosses v(u) = rank (v is increasing).
  auto crossing = [&](double rank) {
    return 1.0 + (std::pow(rank / static_cast<double>(n_), 1.0 - theta_) -
                  1.0) /
                     eta_;
  };
  const double clip_lo = t1;
  double lo = (r == 0) ? clip_lo : crossing(static_cast<double>(r));
  double hi = (r + 1 >= n_) ? 1.0 : crossing(static_cast<double>(r + 1));
  lo = std::min(std::max(lo, clip_lo), 1.0);
  hi = std::min(std::max(hi, clip_lo), 1.0);
  if (hi > lo) mass += hi - lo;
  return mass;
}

}  // namespace lss
