#ifndef LSS_UTIL_RNG_H_
#define LSS_UTIL_RNG_H_

#include <cstdint>

namespace lss {

/// SplitMix64 mixer. Used both to seed Xoshiro256ss and as a cheap
/// stateless scrambling hash (e.g. to scatter Zipfian ranks across a
/// key space).
///
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Xoshiro256** PRNG (Blackman & Vigna). Fast, high quality, and
/// deterministic across platforms, which keeps simulation runs and tests
/// reproducible. Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64, as the
  /// xoshiro authors recommend (avoids correlated low-entropy states).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Re-seeds the generator; the stream restarts deterministically.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& w : s_) {
      x = SplitMix64(x);
      w = x;
    }
    // SplitMix64 of a pathological seed can still produce the all-zero
    // state with negligible probability; guard anyway since the all-zero
    // state is absorbing for xoshiro.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 random bits.
  uint64_t operator()() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound) {
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with probability `p` of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace lss

#endif  // LSS_UTIL_RNG_H_
