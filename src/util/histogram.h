#ifndef LSS_UTIL_HISTOGRAM_H_
#define LSS_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lss {

/// Fixed-bucket histogram over doubles in [lo, hi); values outside the
/// range are clamped into the first/last bucket. Used by the benches to
/// summarise per-segment emptiness at clean time and by tests to check
/// distribution shapes.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double v);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Approximate quantile (linear interpolation within the bucket).
  /// q must be in [0, 1]. Returns 0 for an empty histogram.
  double Quantile(double q) const;

  /// Number of samples in bucket `i`.
  uint64_t BucketCount(size_t i) const { return counts_[i]; }
  size_t NumBuckets() const { return counts_.size(); }

  /// One-line summary "count=... mean=... p50=... p99=... max=...".
  std::string Summary() const;

 private:
  size_t BucketFor(double v) const;

  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace lss

#endif  // LSS_UTIL_HISTOGRAM_H_
