#ifndef LSS_BTREE_PAGE_H_
#define LSS_BTREE_PAGE_H_

#include <cstdint>
#include <limits>

namespace lss {

/// Page geometry of the B+-tree storage engine. The paper's TPC-C traces
/// come from "a B+-tree-based storage engine" with 4 KB pages (§6.1.1,
/// §6.3); this engine regenerates equivalent traces.
inline constexpr uint32_t kBtreePageSize = 4096;

/// Physical page number within the engine's backing store. Doubles as the
/// simulator PageId when traces are replayed.
using PageNo = uint32_t;
inline constexpr PageNo kInvalidPageNo = std::numeric_limits<PageNo>::max();

}  // namespace lss

#endif  // LSS_BTREE_PAGE_H_
