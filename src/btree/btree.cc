#include "btree/btree.h"

#include <cassert>

namespace lss {

BTree::BTree(BufferPool* pool) : pool_(pool) {
  uint8_t* data = nullptr;
  root_ = pool_->AllocatePinned(&data);
  NodeView::Init(data, NodeView::kLeaf);
  pool_->Unpin(root_, /*dirty=*/true);
}

PageNo BTree::RouteChild(const NodeView& node, std::string_view key) {
  const uint16_t n = node.count();
  assert(n > 0);
  const uint16_t lb = node.LowerBound(key);
  if (lb < n && node.Key(lb) == key) return node.Child(lb);
  if (lb == 0) return node.leftmost_child();
  return node.Child(lb - 1);
}

PageNo BTree::DescendToLeaf(std::string_view key,
                            std::vector<PageNo>* path) const {
  PageNo cur = root_;
  for (;;) {
    PageRef ref(pool_, cur);
    NodeView node(ref.data());
    if (node.IsLeaf()) return cur;
    if (path != nullptr) path->push_back(cur);
    cur = RouteChild(node, key);
    assert(cur != kInvalidPageNo);
  }
}

Status BTree::Insert(std::string_view key, std::string_view value) {
  if (key.size() + value.size() > NodeView::kMaxPayload || key.empty()) {
    return Status::InvalidArgument("key/value payload out of bounds");
  }
  std::vector<PageNo> path;
  const PageNo leaf_no = DescendToLeaf(key, &path);
  {
    PageRef ref(pool_, leaf_no);
    NodeView leaf(ref.data());
    uint16_t slot;
    if (leaf.Find(key, &slot)) {
      return Status::InvalidArgument("key already exists");
    }
    const uint32_t cell = NodeView::LeafCellSize(key, value);
    if (leaf.HasRoomFor(cell)) {
      leaf.InsertLeaf(leaf.LowerBound(key), key, value);
      ref.MarkDirty();
      ++size_;
      return Status::OK();
    }
  }
  Status s = InsertWithSplit(leaf_no, key, value, &path);
  if (s.ok()) ++size_;
  return s;
}

Status BTree::Put(std::string_view key, std::string_view value) {
  if (key.size() + value.size() > NodeView::kMaxPayload || key.empty()) {
    return Status::InvalidArgument("key/value payload out of bounds");
  }
  std::vector<PageNo> path;
  const PageNo leaf_no = DescendToLeaf(key, &path);
  {
    PageRef ref(pool_, leaf_no);
    NodeView leaf(ref.data());
    uint16_t slot;
    if (leaf.Find(key, &slot)) {
      const size_t old_size = leaf.Value(slot).size();
      if (value.size() <= old_size ||
          leaf.HasRoomFor(static_cast<uint32_t>(value.size() - old_size))) {
        leaf.UpdateLeafValue(slot, value);
        ref.MarkDirty();
        return Status::OK();
      }
      // Grown beyond this node's free space: remove, then insert (which
      // will split).
      leaf.Remove(slot);
      ref.MarkDirty();
      --size_;
    } else {
      const uint32_t cell = NodeView::LeafCellSize(key, value);
      if (leaf.HasRoomFor(cell)) {
        leaf.InsertLeaf(leaf.LowerBound(key), key, value);
        ref.MarkDirty();
        ++size_;
        return Status::OK();
      }
    }
  }
  Status s = InsertWithSplit(leaf_no, key, value, &path);
  if (s.ok()) ++size_;
  return s;
}

Status BTree::InsertWithSplit(PageNo leaf_no, std::string_view key,
                              std::string_view value,
                              std::vector<PageNo>* path) {
  // Split the leaf.
  uint8_t* right_data = nullptr;
  const PageNo right_no = pool_->AllocatePinned(&right_data);
  NodeView::Init(right_data, NodeView::kLeaf);
  NodeView right(right_data);

  std::string separator;
  {
    PageRef left_ref(pool_, leaf_no);
    NodeView left(left_ref.data());
    separator = left.SplitInto(right);
    right.set_right_sibling(left.right_sibling());
    left.set_right_sibling(right_no);
    // Insert the record into the proper half (routing sends
    // key >= separator right).
    NodeView& target = (key < separator) ? left : right;
    assert(target.HasRoomFor(NodeView::LeafCellSize(key, value)));
    target.InsertLeaf(target.LowerBound(key), key, value);
    left_ref.MarkDirty();
  }
  pool_->Unpin(right_no, /*dirty=*/true);

  // Propagate the separator up the path.
  std::string sep = std::move(separator);
  PageNo new_child = right_no;
  while (!path->empty()) {
    const PageNo parent_no = path->back();
    path->pop_back();
    PageRef ref(pool_, parent_no);
    NodeView parent(ref.data());
    assert(!parent.IsLeaf());
    const uint32_t cell = NodeView::InternalCellSize(sep);
    if (parent.HasRoomFor(cell)) {
      parent.InsertInternal(parent.LowerBound(sep), sep, new_child);
      ref.MarkDirty();
      return Status::OK();
    }
    // Split the internal node; its middle key moves up.
    uint8_t* pr_data = nullptr;
    const PageNo pr_no = pool_->AllocatePinned(&pr_data);
    NodeView::Init(pr_data, NodeView::kInternal);
    NodeView pright(pr_data);
    std::string up = parent.SplitInto(pright);
    NodeView& target = (sep < up) ? parent : pright;
    target.InsertInternal(target.LowerBound(sep), sep, new_child);
    ref.MarkDirty();
    pool_->Unpin(pr_no, /*dirty=*/true);
    sep = std::move(up);
    new_child = pr_no;
  }

  // The root itself split: grow the tree by one level.
  uint8_t* nr_data = nullptr;
  const PageNo new_root = pool_->AllocatePinned(&nr_data);
  NodeView::Init(nr_data, NodeView::kInternal);
  NodeView root(nr_data);
  root.set_leftmost_child(root_);
  root.InsertInternal(0, sep, new_child);
  pool_->Unpin(new_root, /*dirty=*/true);
  root_ = new_root;
  return Status::OK();
}

bool BTree::Get(std::string_view key, std::string* value) const {
  const PageNo leaf_no = DescendToLeaf(key, nullptr);
  PageRef ref(pool_, leaf_no);
  NodeView leaf(ref.data());
  uint16_t slot;
  if (!leaf.Find(key, &slot)) return false;
  if (value != nullptr) value->assign(leaf.Value(slot));
  return true;
}

bool BTree::Delete(std::string_view key) {
  const PageNo leaf_no = DescendToLeaf(key, nullptr);
  PageRef ref(pool_, leaf_no);
  NodeView leaf(ref.data());
  uint16_t slot;
  if (!leaf.Find(key, &slot)) return false;
  leaf.Remove(slot);
  ref.MarkDirty();
  --size_;
  return true;
}

// --- Iterator -----------------------------------------------------------

BTree::Iterator::Iterator(const BTree* tree, PageNo leaf, uint16_t slot)
    : tree_(tree), leaf_(leaf), slot_(slot) {
  Load();
}

void BTree::Iterator::Load() {
  valid_ = false;
  while (leaf_ != kInvalidPageNo) {
    PageRef ref(tree_->pool_, leaf_);
    NodeView node(ref.data());
    assert(node.IsLeaf());
    if (slot_ < node.count()) {
      key_.assign(node.Key(slot_));
      value_.assign(node.Value(slot_));
      valid_ = true;
      return;
    }
    leaf_ = node.right_sibling();
    slot_ = 0;
  }
}

void BTree::Iterator::Next() {
  assert(valid_);
  ++slot_;
  Load();
}

BTree::Iterator BTree::Seek(std::string_view key) const {
  const PageNo leaf_no = DescendToLeaf(key, nullptr);
  uint16_t slot;
  {
    PageRef ref(pool_, leaf_no);
    NodeView leaf(ref.data());
    slot = leaf.LowerBound(key);
  }
  return Iterator(this, leaf_no, slot);
}

BTree::Iterator BTree::Begin() const {
  PageNo cur = root_;
  for (;;) {
    PageRef ref(pool_, cur);
    NodeView node(ref.data());
    if (node.IsLeaf()) break;
    cur = node.leftmost_child();
  }
  return Iterator(this, cur, 0);
}

// --- Validation -----------------------------------------------------------

uint32_t BTree::Height() const {
  uint32_t h = 1;
  PageNo cur = root_;
  for (;;) {
    PageRef ref(pool_, cur);
    NodeView node(ref.data());
    if (node.IsLeaf()) return h;
    cur = node.leftmost_child();
    ++h;
  }
}

Status BTree::CheckSubtree(PageNo page, std::string_view lo,
                           std::string_view hi, uint32_t depth,
                           uint32_t* leaf_depth, uint64_t* records) const {
  PageRef ref(pool_, page);
  NodeView node(ref.data());
  if (!node.CheckConsistent()) {
    return Status::Corruption("node failed self-check");
  }
  // Keys must lie within (lo, hi]. Empty bounds mean unbounded.
  for (uint16_t i = 0; i < node.count(); ++i) {
    const std::string_view k = node.Key(i);
    if (!lo.empty() && k < lo) return Status::Corruption("key below bound");
    if (!hi.empty() && k >= hi) return Status::Corruption("key above bound");
  }
  if (node.IsLeaf()) {
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at differing depths");
    }
    *records += node.count();
    return Status::OK();
  }
  if (node.count() == 0) return Status::Corruption("empty internal node");
  // leftmost child: keys < key[0].
  Status s = CheckSubtree(node.leftmost_child(), lo, node.Key(0), depth + 1,
                          leaf_depth, records);
  if (!s.ok()) return s;
  for (uint16_t i = 0; i < node.count(); ++i) {
    const std::string_view child_lo = node.Key(i);
    const std::string_view child_hi =
        (i + 1 < node.count()) ? node.Key(i + 1) : hi;
    s = CheckSubtree(node.Child(i), child_lo, child_hi, depth + 1, leaf_depth,
                     records);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status BTree::CheckIntegrity() const {
  uint32_t leaf_depth = 0;
  uint64_t records = 0;
  Status s = CheckSubtree(root_, {}, {}, 1, &leaf_depth, &records);
  if (!s.ok()) return s;
  if (records != size_) {
    return Status::Corruption("record count mismatch");
  }
  // Leaf chain must visit exactly `records` keys in strictly increasing
  // order.
  uint64_t seen = 0;
  std::string prev;
  for (Iterator it = Begin(); it.Valid(); it.Next()) {
    if (seen > 0 && !(prev < it.key())) {
      return Status::Corruption("leaf chain out of order");
    }
    prev = it.key();
    ++seen;
  }
  if (seen != records) {
    return Status::Corruption("leaf chain missed records");
  }
  return Status::OK();
}

}  // namespace lss
