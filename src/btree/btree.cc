#include "btree/btree.h"

#include <cassert>
#include <mutex>
#include <shared_mutex>
#include <utility>

namespace lss {

BTree::BTree(BufferPool* pool) : pool_(pool) {
  uint8_t* data = nullptr;
  const PageNo root = pool_->AllocatePinned(&data);
  NodeView::Init(data, NodeView::kLeaf);
  pool_->Unpin(root, /*dirty=*/true);
  root_word_.store(PackRoot(root, 1), std::memory_order_release);
}

BTree::BTree(BTree&& o) noexcept
    : pool_(o.pool_),
      root_word_(o.root_word_.load(std::memory_order_relaxed)),
      size_(o.size_.load(std::memory_order_relaxed)),
      mods_(o.mods_.load(std::memory_order_relaxed)) {
  o.pool_ = nullptr;
}

BTree& BTree::operator=(BTree&& o) noexcept {
  if (this != &o) {
    pool_ = o.pool_;
    root_word_.store(o.root_word_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    size_.store(o.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    mods_.store(o.mods_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    o.pool_ = nullptr;
  }
  return *this;
}

void BTree::AssertLive() const {
  assert(pool_ != nullptr && "operation on a moved-from BTree");
}

PageNo BTree::RouteChild(const NodeView& node, std::string_view key) {
  const uint16_t n = node.count();
  assert(n > 0);
  const uint16_t lb = node.LowerBound(key);
  if (lb < n && node.Key(lb) == key) return node.Child(lb);
  if (lb == 0) return node.leftmost_child();
  return node.Child(lb - 1);
}

// --- Latched descents ---------------------------------------------------
//
// Every descent starts by latching the current root and re-validating
// root_word_: a root split installs a fresh page and bumps the word, so
// a stale start is detected and restarted (an old root is never root
// again — no ABA). Crabbing invariant: a child is latched before its
// parent's latch is released (PageRef move-assignment acquires the new
// ref first, then releases the old), so the routed-to child cannot be
// reorganised between the routing decision and the arrival.

PageRef BTree::DescendShared(std::string_view key) const {
  for (;;) {
    const uint64_t rw = root_word_.load(std::memory_order_acquire);
    PageRef ref(pool_, static_cast<PageNo>(rw), LatchMode::kShared);
    if (root_word_.load(std::memory_order_acquire) != rw) continue;
    NodeView node(ref.data());
    while (!node.IsLeaf()) {
      PageRef child(pool_, RouteChild(node, key), LatchMode::kShared);
      ref = std::move(child);
      node = NodeView(ref.data());
    }
    return ref;
  }
}

PageRef BTree::DescendLeftmost() const {
  for (;;) {
    const uint64_t rw = root_word_.load(std::memory_order_acquire);
    PageRef ref(pool_, static_cast<PageNo>(rw), LatchMode::kShared);
    if (root_word_.load(std::memory_order_acquire) != rw) continue;
    NodeView node(ref.data());
    while (!node.IsLeaf()) {
      PageRef child(pool_, node.leftmost_child(), LatchMode::kShared);
      ref = std::move(child);
      node = NodeView(ref.data());
    }
    return ref;
  }
}

PageRef BTree::DescendForWrite(std::string_view key) {
  for (;;) {
    const uint64_t rw = root_word_.load(std::memory_order_acquire);
    const uint32_t height = static_cast<uint32_t>(rw >> 32);
    // The leaf level is known from the packed height, so the leaf child
    // can be latched exclusively directly — no shared->exclusive upgrade
    // (which would deadlock two upgraders) is ever needed. Splits below
    // a node never change the distance from that node to its leaves, so
    // the depth arithmetic stays valid even if the root splits after our
    // latch moved past it.
    PageRef ref(pool_, static_cast<PageNo>(rw),
                height == 1 ? LatchMode::kExclusive : LatchMode::kShared);
    if (root_word_.load(std::memory_order_acquire) != rw) continue;
    NodeView node(ref.data());
    for (uint32_t depth = 1; !node.IsLeaf(); ++depth) {
      const bool leaf_next = depth + 1 == height;
      PageRef child(pool_, RouteChild(node, key),
                    leaf_next ? LatchMode::kExclusive : LatchMode::kShared);
      ref = std::move(child);
      node = NodeView(ref.data());
      assert(leaf_next == node.IsLeaf());
    }
    return ref;
  }
}

void BTree::DescendExclusive(std::string_view key,
                             std::vector<PageRef>* path) {
  for (;;) {
    path->clear();
    const uint64_t rw = root_word_.load(std::memory_order_acquire);
    PageRef ref(pool_, static_cast<PageNo>(rw), LatchMode::kExclusive);
    if (root_word_.load(std::memory_order_acquire) != rw) continue;
    path->push_back(std::move(ref));
    NodeView node(path->back().data());
    while (!node.IsLeaf()) {
      const PageNo child = RouteChild(node, key);
      path->emplace_back(pool_, child, LatchMode::kExclusive);
      node = NodeView(path->back().data());
    }
    return;
  }
}

// --- Unlatched walk (quiescent validation) ------------------------------

PageNo BTree::DescendToLeaf(std::string_view key,
                            std::vector<PageNo>* path) const {
  PageNo cur = root();
  for (;;) {
    PageRef ref(pool_, cur);
    NodeView node(ref.data());
    if (node.IsLeaf()) return cur;
    if (path != nullptr) path->push_back(cur);
    cur = RouteChild(node, key);
    assert(cur != kInvalidPageNo);
  }
}

// --- Writes -------------------------------------------------------------

Status BTree::Insert(std::string_view key, std::string_view value) {
  AssertLive();
  if (key.size() + value.size() > NodeView::kMaxPayload || key.empty()) {
    return Status::InvalidArgument("key/value payload out of bounds");
  }
  std::shared_lock<std::shared_mutex> q(quiesce_);
  {
    PageRef leaf_ref = DescendForWrite(key);
    NodeView leaf(leaf_ref.data());
    uint16_t slot;
    if (leaf.Find(key, &slot)) {
      return Status::InvalidArgument("key already exists");
    }
    const uint32_t cell = NodeView::LeafCellSize(key, value);
    if (leaf.HasRoomFor(cell)) {
      leaf.InsertLeaf(leaf.LowerBound(key), key, value);
      leaf_ref.MarkDirty();
      size_.fetch_add(1, std::memory_order_release);
      mods_.fetch_add(1, std::memory_order_release);
      return Status::OK();
    }
  }
  // The leaf is full: restart pessimistically with the whole path held
  // exclusively so the split can propagate without re-latching.
  return WritePessimistic(key, value, /*overwrite=*/false);
}

Status BTree::Put(std::string_view key, std::string_view value) {
  AssertLive();
  if (key.size() + value.size() > NodeView::kMaxPayload || key.empty()) {
    return Status::InvalidArgument("key/value payload out of bounds");
  }
  std::shared_lock<std::shared_mutex> q(quiesce_);
  {
    PageRef leaf_ref = DescendForWrite(key);
    NodeView leaf(leaf_ref.data());
    uint16_t slot;
    if (leaf.Find(key, &slot)) {
      const size_t old_size = leaf.Value(slot).size();
      if (value.size() <= old_size ||
          leaf.HasRoomFor(static_cast<uint32_t>(value.size() - old_size))) {
        leaf.UpdateLeafValue(slot, value);
        leaf_ref.MarkDirty();
        mods_.fetch_add(1, std::memory_order_release);
        return Status::OK();
      }
      // Grown beyond this node's free space: fall through to the
      // pessimistic path, which removes and re-inserts (splitting) while
      // holding the whole path — never leaving a window where the record
      // is absent under only a leaf latch.
    } else {
      const uint32_t cell = NodeView::LeafCellSize(key, value);
      if (leaf.HasRoomFor(cell)) {
        leaf.InsertLeaf(leaf.LowerBound(key), key, value);
        leaf_ref.MarkDirty();
        size_.fetch_add(1, std::memory_order_release);
        mods_.fetch_add(1, std::memory_order_release);
        return Status::OK();
      }
    }
  }
  return WritePessimistic(key, value, /*overwrite=*/true);
}

Status BTree::WritePessimistic(std::string_view key, std::string_view value,
                               bool overwrite) {
  std::vector<PageRef> path;
  DescendExclusive(key, &path);
  NodeView leaf(path.back().data());
  uint16_t slot;
  if (leaf.Find(key, &slot)) {
    // Re-examine under the exclusive path: the state may have changed
    // between the optimistic attempt and this descent.
    if (!overwrite) return Status::InvalidArgument("key already exists");
    const size_t old_size = leaf.Value(slot).size();
    if (value.size() <= old_size ||
        leaf.HasRoomFor(static_cast<uint32_t>(value.size() - old_size))) {
      leaf.UpdateLeafValue(slot, value);
      path.back().MarkDirty();
      mods_.fetch_add(1, std::memory_order_release);
      return Status::OK();
    }
    leaf.Remove(slot);
    path.back().MarkDirty();
    size_.fetch_sub(1, std::memory_order_release);
  }
  const uint32_t cell = NodeView::LeafCellSize(key, value);
  if (leaf.HasRoomFor(cell)) {
    leaf.InsertLeaf(leaf.LowerBound(key), key, value);
    path.back().MarkDirty();
    size_.fetch_add(1, std::memory_order_release);
    mods_.fetch_add(1, std::memory_order_release);
    return Status::OK();
  }
  Status s = SplitAndInsert(&path, key, value);
  if (s.ok()) {
    size_.fetch_add(1, std::memory_order_release);
    mods_.fetch_add(1, std::memory_order_release);
  }
  return s;
}

Status BTree::SplitAndInsert(std::vector<PageRef>* path, std::string_view key,
                             std::string_view value) {
  // Split the leaf. The new right page is pinned but not latched: it is
  // unreachable until the separator is published into the (exclusively
  // latched) parent or the left leaf's sibling pointer, and both of
  // those stores happen after its bytes are complete — the latch-release
  // on the publishing page carries the happens-before edge to readers.
  PageRef& leaf_ref = path->back();
  uint8_t* right_data = nullptr;
  const PageNo right_no = pool_->AllocatePinned(&right_data);
  NodeView::Init(right_data, NodeView::kLeaf);
  NodeView right(right_data);
  NodeView left(leaf_ref.data());
  std::string sep = left.SplitInto(right);
  right.set_right_sibling(left.right_sibling());
  left.set_right_sibling(right_no);
  // Insert the record into the proper half (routing sends
  // key >= separator right).
  NodeView& target = (key < sep) ? left : right;
  assert(target.HasRoomFor(NodeView::LeafCellSize(key, value)));
  target.InsertLeaf(target.LowerBound(key), key, value);
  leaf_ref.MarkDirty();
  pool_->Unpin(right_no, /*dirty=*/true);

  // Propagate the separator up the held path (leaf-1 .. root).
  PageNo new_child = right_no;
  for (size_t i = path->size() - 1; i-- > 0;) {
    PageRef& ref = (*path)[i];
    NodeView parent(ref.data());
    assert(!parent.IsLeaf());
    const uint32_t cell = NodeView::InternalCellSize(sep);
    if (parent.HasRoomFor(cell)) {
      parent.InsertInternal(parent.LowerBound(sep), sep, new_child);
      ref.MarkDirty();
      return Status::OK();
    }
    // Split the internal node; its middle key moves up.
    uint8_t* pr_data = nullptr;
    const PageNo pr_no = pool_->AllocatePinned(&pr_data);
    NodeView::Init(pr_data, NodeView::kInternal);
    NodeView pright(pr_data);
    std::string up = parent.SplitInto(pright);
    NodeView& t = (sep < up) ? parent : pright;
    t.InsertInternal(t.LowerBound(sep), sep, new_child);
    ref.MarkDirty();
    pool_->Unpin(pr_no, /*dirty=*/true);
    sep = std::move(up);
    new_child = pr_no;
  }

  // The root itself split: grow the tree by one level. Only this thread
  // can be here (a root split requires the exclusive root latch we
  // hold), so reading the current height is race-free; the release store
  // publishes the fully initialised new root to starting descents.
  const PageNo old_root = (*path)[0].page();
  const uint32_t height = Height();
  uint8_t* nr_data = nullptr;
  const PageNo new_root = pool_->AllocatePinned(&nr_data);
  NodeView::Init(nr_data, NodeView::kInternal);
  NodeView nroot(nr_data);
  nroot.set_leftmost_child(old_root);
  nroot.InsertInternal(0, sep, new_child);
  pool_->Unpin(new_root, /*dirty=*/true);
  root_word_.store(PackRoot(new_root, height + 1),
                   std::memory_order_release);
  return Status::OK();
}

// --- Reads --------------------------------------------------------------

bool BTree::Get(std::string_view key, std::string* value) const {
  AssertLive();
  std::shared_lock<std::shared_mutex> q(quiesce_);
  PageRef ref = DescendShared(key);
  NodeView leaf(ref.data());
  uint16_t slot;
  if (!leaf.Find(key, &slot)) return false;
  if (value != nullptr) value->assign(leaf.Value(slot));
  return true;
}

bool BTree::Delete(std::string_view key) {
  AssertLive();
  std::shared_lock<std::shared_mutex> q(quiesce_);
  PageRef ref = DescendForWrite(key);
  NodeView leaf(ref.data());
  uint16_t slot;
  if (!leaf.Find(key, &slot)) return false;
  leaf.Remove(slot);
  ref.MarkDirty();
  size_.fetch_sub(1, std::memory_order_release);
  mods_.fetch_add(1, std::memory_order_release);
  return true;
}

// --- Iterator -----------------------------------------------------------

BTree::Iterator::Iterator(const BTree* tree, PageNo leaf, uint16_t slot,
                          uint64_t mod_snapshot, std::string bound,
                          bool bound_inclusive, bool latched)
    : tree_(tree), leaf_(leaf), slot_(slot), mod_snapshot_(mod_snapshot),
      bound_(std::move(bound)), bound_inclusive_(bound_inclusive),
      latched_(latched) {
  Load();
}

void BTree::Iterator::Load() {
  valid_ = false;
  if (latched_) {
    std::shared_lock<std::shared_mutex> q(tree_->quiesce_);
    while (leaf_ != kInvalidPageNo) {
      PageRef ref(tree_->pool_, leaf_, LatchMode::kShared);
      if (tree_->mods_.load(std::memory_order_acquire) != mod_snapshot_) {
        // A write landed somewhere in the tree since this position was
        // derived: (leaf_, slot_) may point into a reorganised page.
        // Re-seek from the last returned key instead of trusting it.
        ref.Release();
        Reposition();
        return;
      }
      NodeView node(ref.data());
      assert(node.IsLeaf());
      if (slot_ < node.count()) {
        key_.assign(node.Key(slot_));
        value_.assign(node.Value(slot_));
        valid_ = true;
        return;
      }
      leaf_ = node.right_sibling();
      slot_ = 0;
    }
    return;
  }
  // Quiescent walk (CheckIntegrity holds the quiescence latch
  // exclusively): plain pins, no counter check.
  while (leaf_ != kInvalidPageNo) {
    PageRef ref(tree_->pool_, leaf_);
    NodeView node(ref.data());
    assert(node.IsLeaf());
    if (slot_ < node.count()) {
      key_.assign(node.Key(slot_));
      value_.assign(node.Value(slot_));
      valid_ = true;
      return;
    }
    leaf_ = node.right_sibling();
    slot_ = 0;
  }
}

void BTree::Iterator::Reposition() {
  // Runs under the caller's quiesce_ shared lock with no page latch
  // held. The snapshot is taken before the descent: if yet another write
  // lands mid-descent, the NEXT Load detects it and re-seeks again —
  // but the record loaded here is still read consistently under its
  // leaf latch, so forward progress is guaranteed per call.
  const uint64_t snap = tree_->mods_.load(std::memory_order_acquire);
  PageRef ref = tree_->DescendShared(bound_);
  NodeView node(ref.data());
  uint16_t slot = node.LowerBound(bound_);
  for (;;) {
    if (slot < node.count()) {
      const std::string_view k = node.Key(slot);
      if (bound_inclusive_ || k != bound_) {
        key_.assign(k);
        value_.assign(node.Value(slot));
        leaf_ = ref.page();
        slot_ = slot;
        mod_snapshot_ = snap;
        valid_ = true;
        return;
      }
      ++slot;
      continue;
    }
    const PageNo next = node.right_sibling();
    if (next == kInvalidPageNo) {
      leaf_ = kInvalidPageNo;
      mod_snapshot_ = snap;
      return;
    }
    // Leaf-chain hop, latch-coupled: the next leaf is latched before the
    // current one is released, and pages are never returned to the
    // pager, so the sibling link read under the current latch stays
    // valid for the hop.
    PageRef nref(tree_->pool_, next, LatchMode::kShared);
    ref = std::move(nref);
    node = NodeView(ref.data());
    slot = 0;
  }
}

void BTree::Iterator::Next() {
  assert(valid_);
  bound_ = key_;
  bound_inclusive_ = false;
  ++slot_;
  Load();
}

BTree::Iterator BTree::Seek(std::string_view key) const {
  AssertLive();
  uint64_t snap;
  PageNo leaf_no;
  uint16_t slot;
  {
    std::shared_lock<std::shared_mutex> q(quiesce_);
    snap = mods_.load(std::memory_order_acquire);
    PageRef ref = DescendShared(key);
    NodeView leaf(ref.data());
    slot = leaf.LowerBound(key);
    leaf_no = ref.page();
  }
  // The quiescence latch is released before Load (which re-acquires it)
  // runs in the Iterator constructor: shared_mutex is not recursive.
  return Iterator(this, leaf_no, slot, snap, std::string(key),
                  /*bound_inclusive=*/true, /*latched=*/true);
}

BTree::Iterator BTree::Begin() const {
  AssertLive();
  uint64_t snap;
  PageNo leaf_no;
  {
    std::shared_lock<std::shared_mutex> q(quiesce_);
    snap = mods_.load(std::memory_order_acquire);
    PageRef ref = DescendLeftmost();
    leaf_no = ref.page();
  }
  return Iterator(this, leaf_no, 0, snap, std::string(),
                  /*bound_inclusive=*/true, /*latched=*/true);
}

// --- Validation -----------------------------------------------------------

Status BTree::CheckSubtree(PageNo page, std::string_view lo,
                           std::string_view hi, uint32_t depth,
                           uint32_t* leaf_depth, uint64_t* records) const {
  PageRef ref(pool_, page);
  NodeView node(ref.data());
  if (!node.CheckConsistent()) {
    return Status::Corruption("node failed self-check");
  }
  // Keys must lie within (lo, hi]. Empty bounds mean unbounded.
  for (uint16_t i = 0; i < node.count(); ++i) {
    const std::string_view k = node.Key(i);
    if (!lo.empty() && k < lo) return Status::Corruption("key below bound");
    if (!hi.empty() && k >= hi) return Status::Corruption("key above bound");
  }
  if (node.IsLeaf()) {
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at differing depths");
    }
    *records += node.count();
    return Status::OK();
  }
  if (node.count() == 0) return Status::Corruption("empty internal node");
  // leftmost child: keys < key[0].
  Status s = CheckSubtree(node.leftmost_child(), lo, node.Key(0), depth + 1,
                          leaf_depth, records);
  if (!s.ok()) return s;
  for (uint16_t i = 0; i < node.count(); ++i) {
    const std::string_view child_lo = node.Key(i);
    const std::string_view child_hi =
        (i + 1 < node.count()) ? node.Key(i + 1) : hi;
    s = CheckSubtree(node.Child(i), child_lo, child_hi, depth + 1, leaf_depth,
                     records);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status BTree::CheckIntegrity() const {
  AssertLive();
  // Quiesce the tree: every operation and iterator load holds this
  // latch shared, so once acquired exclusively the walk below sees a
  // frozen tree and needs no page latches.
  std::unique_lock<std::shared_mutex> q(quiesce_);
  uint32_t leaf_depth = 0;
  uint64_t records = 0;
  Status s = CheckSubtree(root(), {}, {}, 1, &leaf_depth, &records);
  if (!s.ok()) return s;
  if (records != size_.load(std::memory_order_acquire)) {
    return Status::Corruption("record count mismatch");
  }
  if (leaf_depth != Height()) {
    return Status::Corruption("packed height disagrees with leaf depth");
  }
  // Leaf chain must visit exactly `records` keys in strictly increasing
  // order.
  const PageNo first = DescendToLeaf({}, nullptr);
  uint64_t seen = 0;
  std::string prev;
  for (Iterator it(this, first, 0, 0, std::string(), true,
                   /*latched=*/false);
       it.Valid(); it.Next()) {
    if (seen > 0 && !(prev < it.key())) {
      return Status::Corruption("leaf chain out of order");
    }
    prev = it.key();
    ++seen;
  }
  if (seen != records) {
    return Status::Corruption("leaf chain missed records");
  }
  return Status::OK();
}

}  // namespace lss
