#ifndef LSS_BTREE_NODE_H_
#define LSS_BTREE_NODE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "btree/page.h"

namespace lss {

/// Slotted-page view over one 4 KB B+-tree node. The view does not own
/// the bytes; it wraps a buffer-pool frame.
///
/// Layout (little-endian):
///   0   u8   type (1 = leaf, 2 = internal)
///   1   u8   unused
///   2   u16  count            number of cells
///   4   u16  cell_start       lowest byte offset used by cell data
///   8   u32  right_sibling    (leaf) next leaf page, else kInvalidPageNo
///   12  u32  leftmost_child   (internal) child for keys < key[0]
///   16  u16  slot[count]      cell offsets, sorted by key
///   ... free space ...
///   cells grow downward from the page end:
///     leaf cell:     u16 klen, u16 vlen, key bytes, value bytes
///     internal cell: u16 klen, u32 child, key bytes
///
/// Keys are arbitrary byte strings compared with memcmp order. An
/// internal node routes key k to child[i] for the largest i with
/// key[i] <= k, or to leftmost_child when k < key[0].
class NodeView {
 public:
  static constexpr uint8_t kLeaf = 1;
  static constexpr uint8_t kInternal = 2;
  static constexpr uint16_t kHeaderSize = 16;

  /// Largest key+value accepted by the tree; chosen so a leaf always
  /// holds at least 4 records and splits cannot fail.
  static constexpr uint32_t kMaxPayload = (kBtreePageSize - kHeaderSize) / 4 - 8;

  explicit NodeView(uint8_t* data) : d_(data) {}

  /// Formats `data` as an empty node of the given type.
  static void Init(uint8_t* data, uint8_t type);

  // --- Header ---------------------------------------------------------
  uint8_t type() const { return d_[0]; }
  bool IsLeaf() const { return type() == kLeaf; }
  uint16_t count() const { return Load16(2); }
  uint16_t cell_start() const { return Load16(4); }
  PageNo right_sibling() const { return Load32(8); }
  void set_right_sibling(PageNo p) { Store32(8, p); }
  PageNo leftmost_child() const { return Load32(12); }
  void set_leftmost_child(PageNo p) { Store32(12, p); }

  /// Contiguous free bytes between the slot array and the cell area.
  uint16_t FreeBytes() const {
    return cell_start() - (kHeaderSize + count() * 2);
  }

  // --- Cell access ------------------------------------------------------
  std::string_view Key(uint16_t slot) const;
  std::string_view Value(uint16_t slot) const;           // leaf only
  PageNo Child(uint16_t slot) const;                     // internal only
  void SetChild(uint16_t slot, PageNo child);            // internal only

  /// Index of the first slot whose key is >= `key` (== count() if none).
  uint16_t LowerBound(std::string_view key) const;
  /// True plus slot index if `key` is present.
  bool Find(std::string_view key, uint16_t* slot) const;

  // --- Mutation ---------------------------------------------------------
  /// Bytes needed to store a cell for this key/value (or key/child).
  static uint32_t LeafCellSize(std::string_view key, std::string_view value) {
    return 4 + static_cast<uint32_t>(key.size() + value.size());
  }
  static uint32_t InternalCellSize(std::string_view key) {
    return 6 + static_cast<uint32_t>(key.size());
  }

  /// True if a cell of `cell_bytes` plus one slot fits.
  bool HasRoomFor(uint32_t cell_bytes) const {
    return FreeBytes() >= cell_bytes + 2;
  }

  /// Inserts a leaf record at `slot` (from LowerBound). Caller checks
  /// room and uniqueness.
  void InsertLeaf(uint16_t slot, std::string_view key, std::string_view value);
  /// Inserts an internal separator cell at `slot`.
  void InsertInternal(uint16_t slot, std::string_view key, PageNo child);

  /// Replaces the value at `slot` (leaf). Caller ensures room when the
  /// value grows (HasRoomFor(growth)).
  void UpdateLeafValue(uint16_t slot, std::string_view value);

  /// Removes the cell at `slot`, compacting the cell area.
  void Remove(uint16_t slot);

  /// Moves the upper half of this node's cells into `right` (an empty
  /// node of the same type) for a split. For leaves the returned string
  /// is a copy of the right node's first key (to copy up); for internal
  /// nodes the middle key is *moved* up: it is returned and its child
  /// becomes right.leftmost_child. Siblings are not linked here.
  std::string SplitInto(NodeView& right);

  /// Structural self-check: slots sorted, offsets within bounds, free
  /// space accounting consistent.
  bool CheckConsistent() const;

 private:
  uint16_t Load16(uint32_t off) const {
    return static_cast<uint16_t>(d_[off]) |
           (static_cast<uint16_t>(d_[off + 1]) << 8);
  }
  void Store16(uint32_t off, uint16_t v) {
    d_[off] = static_cast<uint8_t>(v);
    d_[off + 1] = static_cast<uint8_t>(v >> 8);
  }
  uint32_t Load32(uint32_t off) const {
    return static_cast<uint32_t>(Load16(off)) |
           (static_cast<uint32_t>(Load16(off + 2)) << 16);
  }
  void Store32(uint32_t off, uint32_t v) {
    Store16(off, static_cast<uint16_t>(v));
    Store16(off + 2, static_cast<uint16_t>(v >> 16));
  }
  void set_count(uint16_t c) { Store16(2, c); }
  void set_cell_start(uint16_t c) { Store16(4, c); }

  uint16_t SlotOffset(uint16_t slot) const {
    return Load16(kHeaderSize + slot * 2);
  }
  void SetSlotOffset(uint16_t slot, uint16_t off) {
    Store16(kHeaderSize + slot * 2, off);
  }
  // Total bytes of the cell stored at `off`.
  uint16_t CellSizeAt(uint16_t off) const;
  // Allocates cell space and a slot at `slot`; returns the cell offset.
  uint16_t AllocCell(uint16_t slot, uint16_t cell_bytes);

  uint8_t* d_;
};

}  // namespace lss

#endif  // LSS_BTREE_NODE_H_
