#ifndef LSS_BTREE_EVICTION_TWO_Q_EVICTION_H_
#define LSS_BTREE_EVICTION_TWO_Q_EVICTION_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "btree/eviction_policy.h"

namespace lss {

/// 2Q (Johnson & Shasha, VLDB 1994), the scan-resistant replacement
/// exact LRU cannot match: a one-pass sequential flood promotes every
/// page it touches straight past an LRU hot set, while under 2Q scan
/// pages enter a probationary FIFO (A1in) and fall out of it without
/// ever displacing the protected LRU (Am) — only a page re-referenced
/// while probationary (or remembered by the A1out ghost list of recently
/// demoted probationers) earns an Am slot.
///
/// Sizing follows the paper's tunings on the partition's frame count:
/// A1in targets 25% of frames, A1out remembers 50% of frames' worth of
/// evicted page numbers (ghosts hold no data).
class TwoQEvictionPolicy : public EvictionPolicy {
 public:
  explicit TwoQEvictionPolicy(size_t frames);

  std::string name() const override { return "2q"; }
  void OnInsert(size_t idx, PageNo page) override;
  void OnHit(size_t idx) override;
  void OnUnpin(size_t idx) override;
  void OnEvict(size_t idx, PageNo page) override;
  size_t PickVictim() override;

 private:
  enum class Queue : uint8_t { kA1 = 0, kAm = 1 };

  void Remove(size_t idx);
  void RememberGhost(PageNo page);

  // Resident frames, split across the two queues; like LRU's list, the
  // queues hold only unpinned frames (front = most recent). A pinned
  // frame's queue_ tag says where it re-enters on unpin.
  std::list<size_t> a1_;  // probationary FIFO
  std::list<size_t> am_;  // protected LRU
  std::vector<std::list<size_t>::iterator> pos_;  // valid iff in_queue_
  std::vector<bool> in_queue_;
  std::vector<Queue> queue_;  // which queue the frame belongs to
  size_t a1_resident_ = 0;    // A1 frames, pinned or not

  // Ghosts: page numbers recently evicted from A1, FIFO-bounded.
  std::list<PageNo> ghost_fifo_;  // front = most recent
  std::unordered_map<PageNo, std::list<PageNo>::iterator> ghosts_;

  size_t a1_target_;    // evict from A1 while it holds more than this
  size_t ghost_limit_;  // max remembered ghosts
};

}  // namespace lss

#endif  // LSS_BTREE_EVICTION_TWO_Q_EVICTION_H_
