#include "btree/eviction/lru_eviction.h"

namespace lss {

LruEvictionPolicy::LruEvictionPolicy(size_t frames)
    : pos_(frames), in_lru_(frames, false) {}

void LruEvictionPolicy::Remove(size_t idx) {
  if (in_lru_[idx]) {
    lru_.erase(pos_[idx]);
    in_lru_[idx] = false;
  }
}

void LruEvictionPolicy::OnInsert(size_t idx, PageNo page) {
  // A freshly cached frame is pinned, so it stays out of the list until
  // its first unpin.
  (void)idx;
  (void)page;
}

void LruEvictionPolicy::OnHit(size_t idx) { Remove(idx); }

void LruEvictionPolicy::OnUnpin(size_t idx) {
  lru_.push_front(idx);
  pos_[idx] = lru_.begin();
  in_lru_[idx] = true;
}

void LruEvictionPolicy::OnEvict(size_t idx, PageNo page) {
  (void)page;
  Remove(idx);
}

size_t LruEvictionPolicy::PickVictim() {
  if (lru_.empty()) return kNoVictim;
  return lru_.back();
}

}  // namespace lss
