#ifndef LSS_BTREE_EVICTION_LRU_EVICTION_H_
#define LSS_BTREE_EVICTION_LRU_EVICTION_H_

#include <list>
#include <vector>

#include "btree/eviction_policy.h"

namespace lss {

/// Exact LRU, the pre-seam BufferPool behaviour extracted verbatim: a
/// per-partition list of unpinned frames, most recent at the front. A hit
/// splices the frame out of the list (under the latch — this is exactly
/// the cost the CLOCK policy removes); an unpin to zero pins pushes it at
/// the front; the victim is the back. The determinism test pins this
/// policy, at one partition, to the pre-seam pool's write-back sequence.
class LruEvictionPolicy : public EvictionPolicy {
 public:
  explicit LruEvictionPolicy(size_t frames);

  std::string name() const override { return "lru"; }
  void OnInsert(size_t idx, PageNo page) override;
  void OnHit(size_t idx) override;
  void OnUnpin(size_t idx) override;
  void OnEvict(size_t idx, PageNo page) override;
  size_t PickVictim() override;

 private:
  void Remove(size_t idx);

  std::list<size_t> lru_;  // front = most recent; only unpinned frames
  std::vector<std::list<size_t>::iterator> pos_;  // valid iff in_lru_[idx]
  std::vector<bool> in_lru_;
};

}  // namespace lss

#endif  // LSS_BTREE_EVICTION_LRU_EVICTION_H_
