#include "btree/eviction/clock_eviction.h"

#include <cassert>

namespace lss {

void ClockEvictionPolicy::OnInsert(size_t idx, PageNo page) {
  // The pool gives every newly cached frame ref = 1 (an insert counts as
  // an access), so a fresh page survives the hand's next pass. Nothing
  // else to track.
  (void)idx;
  (void)page;
}

void ClockEvictionPolicy::OnEvict(size_t idx, PageNo page) {
  (void)idx;
  (void)page;
}

size_t ClockEvictionPolicy::PickVictim() {
  assert(view_ != nullptr);
  const size_t n = view_->frame_count();
  // Two full revolutions suffice: the first clears every reference bit
  // that is going to be cleared, so the second must find an unpinned,
  // unreferenced frame if one exists. (Latch-free pins racing the sweep
  // can re-set bits; the pool re-calls PickVictim in that case, and each
  // call makes progress because the hand advances.)
  for (size_t step = 0; step < 2 * n; ++step) {
    const size_t idx = hand_;
    hand_ = (hand_ + 1) % n;
    if (view_->Pinned(idx)) continue;
    if (view_->TestClearRef(idx)) continue;  // second chance
    return idx;
  }
  // Hit storm: latch-free pins re-referenced every unpinned frame faster
  // than the sweep cleared them. Force-pick the first unpinned frame so
  // eviction always makes progress; kNoVictim only when all are pinned.
  for (size_t step = 0; step < n; ++step) {
    const size_t idx = hand_;
    hand_ = (hand_ + 1) % n;
    if (!view_->Pinned(idx)) return idx;
  }
  return kNoVictim;
}

}  // namespace lss
