#include "btree/eviction/two_q_eviction.h"

namespace lss {

TwoQEvictionPolicy::TwoQEvictionPolicy(size_t frames)
    : pos_(frames),
      in_queue_(frames, false),
      queue_(frames, Queue::kA1),
      a1_target_(frames / 4 > 0 ? frames / 4 : 1),
      ghost_limit_(frames / 2 > 0 ? frames / 2 : 1) {}

void TwoQEvictionPolicy::Remove(size_t idx) {
  if (in_queue_[idx]) {
    (queue_[idx] == Queue::kA1 ? a1_ : am_).erase(pos_[idx]);
    in_queue_[idx] = false;
  }
}

void TwoQEvictionPolicy::RememberGhost(PageNo page) {
  ghost_fifo_.push_front(page);
  ghosts_[page] = ghost_fifo_.begin();
  if (ghost_fifo_.size() > ghost_limit_) {
    ghosts_.erase(ghost_fifo_.back());
    ghost_fifo_.pop_back();
  }
}

void TwoQEvictionPolicy::OnInsert(size_t idx, PageNo page) {
  auto ghost = ghosts_.find(page);
  if (ghost != ghosts_.end()) {
    // A recently demoted probationer returned: that second reference is
    // what 2Q rewards with a protected slot.
    ghost_fifo_.erase(ghost->second);
    ghosts_.erase(ghost);
    queue_[idx] = Queue::kAm;
  } else {
    queue_[idx] = Queue::kA1;
    ++a1_resident_;
  }
  // The frame is pinned; it enters its queue's list on first unpin.
}

void TwoQEvictionPolicy::OnHit(size_t idx) {
  Remove(idx);
  if (queue_[idx] == Queue::kA1) {
    // Re-referenced while probationary: promote.
    queue_[idx] = Queue::kAm;
    --a1_resident_;
  }
}

void TwoQEvictionPolicy::OnUnpin(size_t idx) {
  std::list<size_t>& q = queue_[idx] == Queue::kA1 ? a1_ : am_;
  q.push_front(idx);
  pos_[idx] = q.begin();
  in_queue_[idx] = true;
}

void TwoQEvictionPolicy::OnEvict(size_t idx, PageNo page) {
  Remove(idx);
  if (queue_[idx] == Queue::kA1) {
    --a1_resident_;
    RememberGhost(page);
  }
}

size_t TwoQEvictionPolicy::PickVictim() {
  // Drain the probationary FIFO down to its target before touching the
  // protected set — this is the scan shield: flood pages queue up in A1
  // and are recycled from its tail.
  if (a1_resident_ > a1_target_ && !a1_.empty()) return a1_.back();
  if (!am_.empty()) return am_.back();
  if (!a1_.empty()) return a1_.back();
  return kNoVictim;
}

}  // namespace lss
