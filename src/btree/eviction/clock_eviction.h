#ifndef LSS_BTREE_EVICTION_CLOCK_EVICTION_H_
#define LSS_BTREE_EVICTION_CLOCK_EVICTION_H_

#include "btree/eviction_policy.h"

namespace lss {

/// CLOCK / second-chance (the coremap idiom: a circular sweep over frames
/// with per-frame reference bits). The policy itself keeps one word of
/// state — the clock hand. Hits never reach it: the pool's latch-free hit
/// path sets the frame's atomic reference bit with a relaxed store, and
/// the sweep consumes those bits under the latch when a miss needs a
/// victim. Pinned frames are skipped; a referenced frame loses its bit
/// and survives one more revolution.
class ClockEvictionPolicy : public EvictionPolicy {
 public:
  ClockEvictionPolicy() = default;

  std::string name() const override { return "clock"; }
  bool LatchFreeOps() const override { return true; }
  void AttachFrameState(FrameStateView* view) override { view_ = view; }

  // Hits and unpins are latch-free; nothing to record here.
  void OnInsert(size_t idx, PageNo page) override;
  void OnHit(size_t) override {}
  void OnUnpin(size_t) override {}
  void OnEvict(size_t idx, PageNo page) override;
  size_t PickVictim() override;

 private:
  FrameStateView* view_ = nullptr;
  size_t hand_ = 0;
};

}  // namespace lss

#endif  // LSS_BTREE_EVICTION_CLOCK_EVICTION_H_
