#include "btree/buffer_pool.h"

#include <cassert>

namespace lss {

BufferPool::BufferPool(Pager* pager, size_t capacity_pages,
                       WriteObserver observer)
    : pager_(pager), capacity_(capacity_pages),
      observer_(std::move(observer)) {
  assert(pager != nullptr);
  assert(capacity_pages >= 8);
  frames_.resize(capacity_);
  for (Frame& f : frames_) f.data.resize(kBtreePageSize);
  free_frames_.reserve(capacity_);
  for (size_t i = capacity_; i > 0; --i) free_frames_.push_back(i - 1);
}

BufferPool::~BufferPool() {
  assert(PinnedFrames() == 0 && "page pins leaked");
}

size_t BufferPool::PinnedFrames() const {
  size_t n = 0;
  for (const Frame& f : frames_) n += (f.pins > 0) ? 1 : 0;
  return n;
}

void BufferPool::WriteBack(size_t idx) {
  Frame& f = frames_[idx];
  assert(f.dirty);
  pager_->Write(f.page, f.data.data());
  f.dirty = false;
  ++write_backs_;
  if (observer_) observer_(f.page);
}

size_t BufferPool::EvictOne() {
  assert(!lru_.empty() && "buffer pool exhausted: all frames pinned");
  // Back of the LRU list = least recently used unpinned frame.
  const size_t idx = lru_.back();
  lru_.pop_back();
  Frame& f = frames_[idx];
  f.in_lru = false;
  if (f.dirty) WriteBack(idx);
  page_to_frame_.erase(f.page);
  f.page = kInvalidPageNo;
  ++evictions_;
  return idx;
}

size_t BufferPool::FrameFor(PageNo page, bool load_from_pager) {
  auto it = page_to_frame_.find(page);
  if (it != page_to_frame_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  size_t idx;
  if (!free_frames_.empty()) {
    idx = free_frames_.back();
    free_frames_.pop_back();
  } else {
    idx = EvictOne();
  }
  Frame& f = frames_[idx];
  f.page = page;
  f.pins = 0;
  f.dirty = false;
  f.in_lru = false;
  if (load_from_pager) pager_->Read(page, f.data.data());
  page_to_frame_.emplace(page, idx);
  return idx;
}

uint8_t* BufferPool::Pin(PageNo page) {
  const size_t idx = FrameFor(page, /*load_from_pager=*/true);
  Frame& f = frames_[idx];
  if (f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  ++f.pins;
  return f.data.data();
}

void BufferPool::Unpin(PageNo page, bool dirty) {
  auto it = page_to_frame_.find(page);
  assert(it != page_to_frame_.end() && "unpin of uncached page");
  Frame& f = frames_[it->second];
  assert(f.pins > 0);
  f.dirty |= dirty;
  if (--f.pins == 0) {
    lru_.push_front(it->second);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

PageNo BufferPool::AllocatePinned(uint8_t** data_out) {
  const PageNo page = pager_->Allocate();
  const size_t idx = FrameFor(page, /*load_from_pager=*/false);
  Frame& f = frames_[idx];
  std::fill(f.data.begin(), f.data.end(), 0);
  if (f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  ++f.pins;
  // A freshly allocated page must reach the pager eventually even if it
  // is never modified again.
  f.dirty = true;
  *data_out = f.data.data();
  return page;
}

void BufferPool::FlushAll() {
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].page != kInvalidPageNo && frames_[i].dirty) {
      WriteBack(i);
    }
  }
}

}  // namespace lss
