#include "btree/buffer_pool.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace lss {

namespace {

// Auto-partitioning: scale stripes with capacity but keep >= 64 frames
// per stripe — the worst case has every worker thread's transient pins
// (a handful each) hashing into one stripe, and a stripe with zero
// unpinned frames cannot evict. The floor means every capacity below 128
// (in particular the asserted minimum 8 up to 127) runs as exactly one
// partition — a single exact cache, the pre-striping behaviour.
// Power-of-two counts keep the hash cheap to reason about; 64 stripes
// are plenty for any thread count we run.
uint32_t AutoPartitions(size_t capacity_pages) {
  uint32_t parts = 1;
  while (parts < 64 && capacity_pages / (parts * 2) >= 64) parts *= 2;
  return parts;
}

uint64_t PackHint(PageNo page, size_t idx) {
  return (static_cast<uint64_t>(page) << 32) | static_cast<uint32_t>(idx);
}

}  // namespace

BufferPool::BufferPool(Pager* pager, size_t capacity_pages,
                       WriteObserver observer, uint32_t partitions,
                       EvictionPolicyKind policy)
    : pager_(pager), capacity_(capacity_pages),
      observer_(std::move(observer)), policy_kind_(policy) {
  assert(pager != nullptr);
  assert(capacity_pages >= 8);
  if (partitions == 0) partitions = AutoPartitions(capacity_pages);
  // An explicit request is clamped to >= 8 frames per stripe (the
  // B+-tree's transient pin budget).
  if (partitions > capacity_pages / 8) {
    partitions = static_cast<uint32_t>(capacity_pages / 8);
  }
  if (partitions == 0) partitions = 1;
  parts_.reserve(partitions);
  for (uint32_t p = 0; p < partitions; ++p) {
    auto part = std::make_unique<Partition>();
    // Distribute capacity evenly; early stripes absorb the remainder.
    const size_t n = capacity_ / partitions +
                     (p < capacity_ % partitions ? 1 : 0);
    part->frames = std::vector<Frame>(n);
    for (Frame& f : part->frames) f.data.resize(kBtreePageSize);
    part->free_frames.reserve(n);
    for (size_t i = n; i > 0; --i) part->free_frames.push_back(i - 1);
    part->policy = MakeEvictionPolicy(policy, n);
    part->policy->AttachFrameState(part.get());
    latch_free_ops_ = part->policy->LatchFreeOps();
    if (latch_free_ops_) {
      // >= 4x frames, power of two: live hints stay <= 25% of the table
      // and rebuilds cap tombstones at another 25%, so probes always
      // terminate at an empty slot.
      size_t cap = 16;
      while (cap < 4 * n) cap *= 2;
      part->hints = std::vector<std::atomic<uint64_t>>(cap);
      for (auto& h : part->hints) {
        h.store(kHintEmpty, std::memory_order_relaxed);
      }
      part->hint_mask = cap - 1;
    }
    parts_.push_back(std::move(part));
  }
}

BufferPool::~BufferPool() {
  assert(PinnedFrames() == 0 && "page pins leaked");
}

size_t BufferPool::PinnedFrames() const {
  size_t n = 0;
  for (const auto& part : parts_) {
    std::lock_guard<std::mutex> lock(part->mu);
    for (const Frame& f : part->frames) {
      n += (f.pins.load(std::memory_order_relaxed) & ~kEvicting) != 0 ? 1 : 0;
    }
  }
  return n;
}

uint64_t BufferPool::hits() const {
  uint64_t n = 0;
  for (const auto& part : parts_) {
    n += part->hits.load(std::memory_order_relaxed);
  }
  return n;
}

uint64_t BufferPool::misses() const {
  uint64_t n = 0;
  for (const auto& part : parts_) {
    n += part->misses.load(std::memory_order_relaxed);
  }
  return n;
}

uint64_t BufferPool::evictions() const {
  uint64_t n = 0;
  for (const auto& part : parts_) {
    n += part->evictions.load(std::memory_order_relaxed);
  }
  return n;
}

uint64_t BufferPool::write_backs() const {
  uint64_t n = 0;
  for (const auto& part : parts_) {
    n += part->write_backs.load(std::memory_order_relaxed);
  }
  return n;
}

uint64_t BufferPool::latch_acquisitions() const {
  uint64_t n = 0;
  for (const auto& part : parts_) {
    n += part->latch_acquisitions.load(std::memory_order_relaxed);
  }
  return n;
}

// --- Hint table (latch-free policies; writers under part.mu) -----------

void BufferPool::HintInsert(Partition& part, PageNo page, size_t idx) {
  if (part.hint_tombstones > part.hints.size() / 4) HintRebuild(part);
  uint64_t s = SplitMix64(page) & part.hint_mask;
  size_t tomb = static_cast<size_t>(-1);
  for (;;) {
    const uint64_t slot = part.hints[s].load(std::memory_order_relaxed);
    if (slot == kHintEmpty) break;
    if (slot == kHintTombstone) {
      if (tomb == static_cast<size_t>(-1)) tomb = s;
    } else if (static_cast<PageNo>(slot >> 32) == page) {
      part.hints[s].store(PackHint(page, idx), std::memory_order_release);
      return;
    }
    s = (s + 1) & part.hint_mask;
  }
  if (tomb != static_cast<size_t>(-1)) {
    s = tomb;
    --part.hint_tombstones;
  }
  part.hints[s].store(PackHint(page, idx), std::memory_order_release);
}

void BufferPool::HintErase(Partition& part, PageNo page) {
  uint64_t s = SplitMix64(page) & part.hint_mask;
  for (size_t probe = 0; probe <= part.hint_mask; ++probe) {
    const uint64_t slot = part.hints[s].load(std::memory_order_relaxed);
    if (slot == kHintEmpty) return;
    if (slot != kHintTombstone && static_cast<PageNo>(slot >> 32) == page) {
      part.hints[s].store(kHintTombstone, std::memory_order_release);
      ++part.hint_tombstones;
      return;
    }
    s = (s + 1) & part.hint_mask;
  }
}

void BufferPool::HintRebuild(Partition& part) {
  // Concurrent latch-free readers may transiently miss entries while the
  // table is repopulated; they fall back to the latched path and block on
  // part.mu, which we hold — correctness is unaffected.
  for (auto& h : part.hints) h.store(kHintEmpty, std::memory_order_relaxed);
  part.hint_tombstones = 0;
  for (const auto& entry : part.page_to_frame) {
    uint64_t s = SplitMix64(entry.first) & part.hint_mask;
    while (part.hints[s].load(std::memory_order_relaxed) != kHintEmpty) {
      s = (s + 1) & part.hint_mask;
    }
    part.hints[s].store(PackHint(entry.first, entry.second),
                        std::memory_order_release);
  }
}

// --- Latch-free hit path ------------------------------------------------

BufferPool::Frame* BufferPool::TryLatchFreeHit(Partition& part,
                                               PageNo page) {
  uint64_t s = SplitMix64(page) & part.hint_mask;
  for (size_t probe = 0; probe <= part.hint_mask; ++probe) {
    const uint64_t slot = part.hints[s].load(std::memory_order_acquire);
    if (slot == kHintEmpty) return nullptr;
    if (slot != kHintTombstone && static_cast<PageNo>(slot >> 32) == page) {
      Frame& f = part.frames[static_cast<uint32_t>(slot)];
      // Optimistic pin: claim a pin first, then validate. The acquire RMW
      // synchronises with the frame's publishing release (the eviction
      // claim's release or the hint store), so a validated frame's bytes
      // are fully loaded.
      const uint32_t old = f.pins.fetch_add(1, std::memory_order_acquire);
      if ((old & kEvicting) != 0) {
        // Mid-eviction/flush: back off; the latched path will resolve.
        f.pins.fetch_sub(1, std::memory_order_relaxed);
        return nullptr;
      }
      if (f.page.load(std::memory_order_acquire) != page) {
        // Stale hint: the frame was recycled. Undo the pin.
        f.pins.fetch_sub(1, std::memory_order_release);
        return nullptr;
      }
      f.ref.store(1, std::memory_order_relaxed);
      part.hits.fetch_add(1, std::memory_order_relaxed);
      return &f;
    }
    s = (s + 1) & part.hint_mask;
  }
  return nullptr;
}

// --- Latched paths ------------------------------------------------------

void BufferPool::WriteBack(Partition& part, size_t idx) {
  Frame& f = part.frames[idx];
  assert(f.dirty.load(std::memory_order_relaxed));
  const PageNo page = f.page.load(std::memory_order_relaxed);
  pager_->Write(page, f.data.data());
  f.dirty.store(false, std::memory_order_relaxed);
  part.write_backs.fetch_add(1, std::memory_order_relaxed);
  if (observer_) observer_(page);
}

size_t BufferPool::EvictOne(Partition& part) {
  for (;;) {
    const size_t idx = part.policy->PickVictim();
    if (idx == EvictionPolicy::kNoVictim) {
      // Exhaustion (every frame in the stripe pinned) cannot be
      // satisfied; fail loudly rather than invoke UB in release builds.
      // Auto-sizing keeps stripes >= 64 frames precisely so concurrent
      // pins cannot get here.
      std::fprintf(stderr,
                   "lss: buffer pool stripe exhausted: all %zu frames "
                   "pinned; use fewer partitions or a larger pool\n",
                   part.frames.size());
      std::abort();
    }
    Frame& f = part.frames[idx];
    // Claim the frame exclusively: only a frame with zero pins may be
    // evicted, and the claim blocks latch-free pins for its duration.
    uint32_t expected = 0;
    if (!f.pins.compare_exchange_strong(expected, kEvicting,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      // A latch-free pin won the race — the frame is hot again. Ask the
      // policy for another victim (its hand advanced, so this makes
      // progress). Unreachable for latched policies.
      continue;
    }
    const PageNo page = f.page.load(std::memory_order_relaxed);
    if (f.dirty.load(std::memory_order_relaxed)) WriteBack(part, idx);
    part.page_to_frame.erase(page);
    if (latch_free_ops_) HintErase(part, page);
    part.policy->OnEvict(idx, page);
    f.page.store(kInvalidPageNo, std::memory_order_relaxed);
    part.evictions.fetch_add(1, std::memory_order_relaxed);
    // The frame stays claimed (kEvicting) until FrameFor publishes its
    // new page.
    return idx;
  }
}

size_t BufferPool::FrameFor(Partition& part, PageNo page,
                            bool load_from_pager) {
  auto it = part.page_to_frame.find(page);
  if (it != part.page_to_frame.end()) {
    part.hits.fetch_add(1, std::memory_order_relaxed);
    part.policy->OnHit(it->second);
    part.frames[it->second].ref.store(1, std::memory_order_relaxed);
    return it->second;
  }
  part.misses.fetch_add(1, std::memory_order_relaxed);
  size_t idx;
  bool claimed = false;
  if (!part.free_frames.empty()) {
    idx = part.free_frames.back();
    part.free_frames.pop_back();
  } else {
    idx = EvictOne(part);
    claimed = true;
  }
  Frame& f = part.frames[idx];
  f.page.store(page, std::memory_order_relaxed);
  f.dirty.store(false, std::memory_order_relaxed);
  f.ref.store(1, std::memory_order_relaxed);  // an insert is an access
  if (load_from_pager) pager_->Read(page, f.data.data());
  part.page_to_frame.emplace(page, idx);
  part.policy->OnInsert(idx, page);
  if (latch_free_ops_) HintInsert(part, page, idx);
  if (claimed) {
    // Release the eviction claim; transient latch-free pinners' +1s (all
    // of which back off) are preserved. The release pairs with the
    // acquire RMW in TryLatchFreeHit.
    f.pins.fetch_sub(kEvicting, std::memory_order_release);
  }
  return idx;
}

size_t BufferPool::PinLocked(Partition& part, PageNo page,
                             bool load_from_pager) {
  const size_t idx = FrameFor(part, page, load_from_pager);
  part.frames[idx].pins.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

BufferPool::Frame& BufferPool::PinFrame(PageNo page) {
  Partition& part = PartitionFor(page);
  if (latch_free_ops_) {
    if (Frame* f = TryLatchFreeHit(part, page)) return *f;
  }
  std::lock_guard<std::mutex> lock(part.mu);
  part.latch_acquisitions.fetch_add(1, std::memory_order_relaxed);
  const size_t idx = PinLocked(part, page, /*load_from_pager=*/true);
  return part.frames[idx];
}

uint8_t* BufferPool::Pin(PageNo page) {
  return PinFrame(page).data.data();
}

void BufferPool::UnpinFrame(Frame& f, PageNo page, bool dirty) {
  if (latch_free_ops_) {
    // The caller's pin keeps the frame resident; no lookup or latch is
    // needed. Publish the dirty mark before the release decrement an
    // eviction claim synchronises with.
    if (dirty) f.dirty.store(true, std::memory_order_relaxed);
    f.pins.fetch_sub(1, std::memory_order_release);
    return;
  }
  Partition& part = PartitionFor(page);
  std::lock_guard<std::mutex> lock(part.mu);
  part.latch_acquisitions.fetch_add(1, std::memory_order_relaxed);
  if (dirty) f.dirty.store(true, std::memory_order_relaxed);
  const uint32_t old = f.pins.fetch_sub(1, std::memory_order_release);
  assert((old & ~kEvicting) > 0);
  if ((old & ~kEvicting) == 1) {
    part.policy->OnUnpin(static_cast<size_t>(&f - part.frames.data()));
  }
}

void BufferPool::Unpin(PageNo page, bool dirty) {
  Partition& part = PartitionFor(page);
  if (latch_free_ops_) {
    // The caller holds a pin, so the frame cannot be evicted and its
    // hint cannot be erased; only a concurrent hint rebuild can hide it
    // transiently, in which case the latched path below resolves.
    uint64_t s = SplitMix64(page) & part.hint_mask;
    for (size_t probe = 0; probe <= part.hint_mask; ++probe) {
      const uint64_t slot = part.hints[s].load(std::memory_order_acquire);
      if (slot == kHintEmpty) break;
      if (slot != kHintTombstone &&
          static_cast<PageNo>(slot >> 32) == page) {
        Frame& f = part.frames[static_cast<uint32_t>(slot)];
        if (f.page.load(std::memory_order_relaxed) != page) break;
        // Publish the dirty mark before releasing the pin: the release
        // decrement is what an eviction claim synchronises with.
        if (dirty) f.dirty.store(true, std::memory_order_relaxed);
        f.pins.fetch_sub(1, std::memory_order_release);
        return;
      }
      s = (s + 1) & part.hint_mask;
    }
  }
  std::lock_guard<std::mutex> lock(part.mu);
  part.latch_acquisitions.fetch_add(1, std::memory_order_relaxed);
  auto it = part.page_to_frame.find(page);
  assert(it != part.page_to_frame.end() && "unpin of uncached page");
  Frame& f = part.frames[it->second];
  const uint32_t pins = f.pins.load(std::memory_order_relaxed);
  assert((pins & ~kEvicting) > 0);
  (void)pins;
  if (dirty) f.dirty.store(true, std::memory_order_relaxed);
  const uint32_t old = f.pins.fetch_sub(1, std::memory_order_release);
  if ((old & ~kEvicting) == 1) part.policy->OnUnpin(it->second);
  return;
}

PageNo BufferPool::AllocatePinned(uint8_t** data_out) {
  const PageNo page = pager_->Allocate();
  Partition& part = PartitionFor(page);
  std::lock_guard<std::mutex> lock(part.mu);
  part.latch_acquisitions.fetch_add(1, std::memory_order_relaxed);
  const size_t idx = PinLocked(part, page, /*load_from_pager=*/false);
  Frame& f = part.frames[idx];
  std::fill(f.data.begin(), f.data.end(), 0);
  // A freshly allocated page must reach the pager eventually even if it
  // is never modified again.
  f.dirty.store(true, std::memory_order_relaxed);
  *data_out = f.data.data();
  return page;
}

void BufferPool::FlushAll() {
  for (auto& part : parts_) {
    std::lock_guard<std::mutex> lock(part->mu);
    part->latch_acquisitions.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < part->frames.size(); ++i) {
      Frame& f = part->frames[i];
      if (f.page.load(std::memory_order_relaxed) == kInvalidPageNo) continue;
      if (!f.dirty.load(std::memory_order_relaxed)) continue;
      // Claim the frame for the write-back so a latch-free pinner cannot
      // mutate its bytes mid-copy; a pinned frame is skipped (see class
      // comment).
      uint32_t expected = 0;
      if (!f.pins.compare_exchange_strong(expected, kEvicting,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        continue;
      }
      WriteBack(*part, i);
      f.pins.fetch_sub(kEvicting, std::memory_order_release);
    }
  }
}

}  // namespace lss
