#include "btree/buffer_pool.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace lss {

namespace {

// Auto-partitioning: scale stripes with capacity but keep >= 64 frames
// per stripe — the worst case has every worker thread's transient pins
// (a handful each) hashing into one stripe, and a stripe with zero
// unpinned frames cannot evict. Power-of-two counts keep the hash cheap
// to reason about; 64 stripes are plenty for any thread count we run.
uint32_t AutoPartitions(size_t capacity_pages) {
  uint32_t parts = 1;
  while (parts < 64 && capacity_pages / (parts * 2) >= 64) parts *= 2;
  return parts;
}

}  // namespace

BufferPool::BufferPool(Pager* pager, size_t capacity_pages,
                       WriteObserver observer, uint32_t partitions)
    : pager_(pager), capacity_(capacity_pages),
      observer_(std::move(observer)) {
  assert(pager != nullptr);
  assert(capacity_pages >= 8);
  if (partitions == 0) partitions = AutoPartitions(capacity_pages);
  if (partitions > capacity_pages / 8) {
    partitions = static_cast<uint32_t>(capacity_pages / 8);
  }
  if (partitions == 0) partitions = 1;
  parts_.reserve(partitions);
  for (uint32_t p = 0; p < partitions; ++p) {
    auto part = std::make_unique<Partition>();
    // Distribute capacity evenly; early stripes absorb the remainder.
    const size_t n = capacity_ / partitions +
                     (p < capacity_ % partitions ? 1 : 0);
    part->frames.resize(n);
    for (Frame& f : part->frames) f.data.resize(kBtreePageSize);
    part->free_frames.reserve(n);
    for (size_t i = n; i > 0; --i) part->free_frames.push_back(i - 1);
    parts_.push_back(std::move(part));
  }
}

BufferPool::~BufferPool() {
  assert(PinnedFrames() == 0 && "page pins leaked");
}

size_t BufferPool::PinnedFrames() const {
  size_t n = 0;
  for (const auto& part : parts_) {
    std::lock_guard<std::mutex> lock(part->mu);
    for (const Frame& f : part->frames) n += (f.pins > 0) ? 1 : 0;
  }
  return n;
}

uint64_t BufferPool::hits() const {
  uint64_t n = 0;
  for (const auto& part : parts_) {
    std::lock_guard<std::mutex> lock(part->mu);
    n += part->hits;
  }
  return n;
}

uint64_t BufferPool::misses() const {
  uint64_t n = 0;
  for (const auto& part : parts_) {
    std::lock_guard<std::mutex> lock(part->mu);
    n += part->misses;
  }
  return n;
}

uint64_t BufferPool::evictions() const {
  uint64_t n = 0;
  for (const auto& part : parts_) {
    std::lock_guard<std::mutex> lock(part->mu);
    n += part->evictions;
  }
  return n;
}

uint64_t BufferPool::write_backs() const {
  uint64_t n = 0;
  for (const auto& part : parts_) {
    std::lock_guard<std::mutex> lock(part->mu);
    n += part->write_backs;
  }
  return n;
}

void BufferPool::WriteBack(Partition& part, size_t idx) {
  Frame& f = part.frames[idx];
  assert(f.dirty);
  pager_->Write(f.page, f.data.data());
  f.dirty = false;
  ++part.write_backs;
  if (observer_) observer_(f.page);
}

size_t BufferPool::EvictOne(Partition& part) {
  // Exhaustion (every frame in the stripe pinned) cannot be satisfied;
  // fail loudly rather than invoke UB on the empty list in release
  // builds. Auto-sizing keeps stripes >= 64 frames precisely so
  // concurrent pins cannot get here.
  if (part.lru.empty()) {
    std::fprintf(stderr,
                 "lss: buffer pool stripe exhausted: all %zu frames "
                 "pinned; use fewer partitions or a larger pool\n",
                 part.frames.size());
    std::abort();
  }
  // Back of the LRU list = least recently used unpinned frame.
  const size_t idx = part.lru.back();
  part.lru.pop_back();
  Frame& f = part.frames[idx];
  f.in_lru = false;
  if (f.dirty) WriteBack(part, idx);
  part.page_to_frame.erase(f.page);
  f.page = kInvalidPageNo;
  ++part.evictions;
  return idx;
}

size_t BufferPool::FrameFor(Partition& part, PageNo page,
                            bool load_from_pager) {
  auto it = part.page_to_frame.find(page);
  if (it != part.page_to_frame.end()) {
    ++part.hits;
    return it->second;
  }
  ++part.misses;
  size_t idx;
  if (!part.free_frames.empty()) {
    idx = part.free_frames.back();
    part.free_frames.pop_back();
  } else {
    idx = EvictOne(part);
  }
  Frame& f = part.frames[idx];
  f.page = page;
  f.pins = 0;
  f.dirty = false;
  f.in_lru = false;
  if (load_from_pager) pager_->Read(page, f.data.data());
  part.page_to_frame.emplace(page, idx);
  return idx;
}

size_t BufferPool::PinLocked(Partition& part, PageNo page,
                             bool load_from_pager) {
  const size_t idx = FrameFor(part, page, load_from_pager);
  Frame& f = part.frames[idx];
  if (f.in_lru) {
    part.lru.erase(f.lru_pos);
    f.in_lru = false;
  }
  ++f.pins;
  return idx;
}

uint8_t* BufferPool::Pin(PageNo page) {
  Partition& part = PartitionFor(page);
  std::lock_guard<std::mutex> lock(part.mu);
  const size_t idx = PinLocked(part, page, /*load_from_pager=*/true);
  return part.frames[idx].data.data();
}

void BufferPool::Unpin(PageNo page, bool dirty) {
  Partition& part = PartitionFor(page);
  std::lock_guard<std::mutex> lock(part.mu);
  auto it = part.page_to_frame.find(page);
  assert(it != part.page_to_frame.end() && "unpin of uncached page");
  Frame& f = part.frames[it->second];
  assert(f.pins > 0);
  f.dirty |= dirty;
  if (--f.pins == 0) {
    part.lru.push_front(it->second);
    f.lru_pos = part.lru.begin();
    f.in_lru = true;
  }
}

PageNo BufferPool::AllocatePinned(uint8_t** data_out) {
  const PageNo page = pager_->Allocate();
  Partition& part = PartitionFor(page);
  std::lock_guard<std::mutex> lock(part.mu);
  const size_t idx = PinLocked(part, page, /*load_from_pager=*/false);
  Frame& f = part.frames[idx];
  std::fill(f.data.begin(), f.data.end(), 0);
  // A freshly allocated page must reach the pager eventually even if it
  // is never modified again.
  f.dirty = true;
  *data_out = f.data.data();
  return page;
}

void BufferPool::FlushAll() {
  for (auto& part : parts_) {
    std::lock_guard<std::mutex> lock(part->mu);
    for (size_t i = 0; i < part->frames.size(); ++i) {
      Frame& f = part->frames[i];
      if (f.page != kInvalidPageNo && f.dirty && f.pins == 0) {
        WriteBack(*part, i);
      }
    }
  }
}

}  // namespace lss
