#ifndef LSS_BTREE_BUFFER_POOL_H_
#define LSS_BTREE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "btree/page.h"
#include "btree/pager.h"
#include "core/types.h"
#include "util/rng.h"

namespace lss {

/// Buffer cache over a Pager, the component that shapes the page write
/// I/O stream the paper's TPC-C experiment consumes ("The buffer cache
/// size was set at 4GB", §6.3). Dirty pages are written back on eviction
/// (and on checkpoints/flushes); each write-back is reported to the
/// observer, which is how the cleaning-simulator trace is collected.
///
/// Concurrency. The pool is latch-striped: frames are divided into N
/// partitions and a page hashes (SplitMix64) to exactly one partition,
/// whose mutex serialises every operation on its frames — lookup, pin
/// bookkeeping, LRU maintenance, eviction and write-back. Distinct
/// partitions proceed fully in parallel; a page's pager I/O only ever
/// happens under its partition latch, so the pager needs no per-page
/// locking of its own. Eviction is exact LRU *per partition* (a
/// segmented LRU over the whole pool). The observer is invoked under
/// the evicting partition's latch, possibly from many threads at once:
/// it must be thread-safe and must not re-enter the pool.
///
/// Frame-content contract: the pool synchronises its own metadata, not
/// the cached bytes. Callers must not mutate a page's bytes concurrently
/// with another thread's access to the same page (the B+-tree layer
/// guarantees this by running all writes to a tree under one lock).
/// FlushAll skips frames that are pinned at flush time — their bytes are
/// in active use — leaving them dirty for a later eviction or flush.
class BufferPool {
 public:
  /// Called with the page number of every write-back to the pager. May
  /// be invoked concurrently from any thread using the pool.
  using WriteObserver = std::function<void(PageNo)>;

  /// `capacity_pages` must be >= 8 (the B+-tree pins a few pages at
  /// once). `partitions` of 0 picks automatically: enough stripes to
  /// scale, but never fewer than 64 frames per stripe so concurrent
  /// pins cannot exhaust one (a stripe asserts when every frame in it
  /// is pinned).
  BufferPool(Pager* pager, size_t capacity_pages,
             WriteObserver observer = nullptr, uint32_t partitions = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Pins `page` in the cache and returns its frame bytes. The caller
  /// must Unpin exactly once (prefer PageRef). Never returns null.
  uint8_t* Pin(PageNo page);

  /// Releases one pin; `dirty` marks the frame as modified.
  void Unpin(PageNo page, bool dirty);

  /// Allocates a fresh page (through the pager) and pins it dirty-able.
  PageNo AllocatePinned(uint8_t** data_out);

  /// Writes back every dirty unpinned frame (a checkpoint): a
  /// cross-partition barrier that visits every stripe in turn. Frames
  /// stay cached. Pinned frames are skipped (see class comment).
  void FlushAll();

  size_t capacity() const { return capacity_; }
  uint32_t partitions() const {
    return static_cast<uint32_t>(parts_.size());
  }

  // Counters, summed across partitions (each under its latch, so the
  // totals are consistent when the pool is quiescent and approximate
  // while threads are running).
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  uint64_t write_backs() const;
  size_t PinnedFrames() const;

 private:
  struct Frame {
    PageNo page = kInvalidPageNo;
    std::vector<uint8_t> data;
    uint32_t pins = 0;
    bool dirty = false;
    std::list<size_t>::iterator lru_pos;  // valid iff in_lru
    bool in_lru = false;
  };

  // One latch stripe: a share of the frames plus all the state needed to
  // run them as an independent LRU cache. Cache-line aligned so stripe
  // mutexes do not false-share.
  struct alignas(64) Partition {
    std::mutex mu;
    std::vector<Frame> frames;
    std::unordered_map<PageNo, size_t> page_to_frame;
    std::list<size_t> lru;  // front = most recent; only unpinned frames
    std::vector<size_t> free_frames;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t write_backs = 0;
  };

  Partition& PartitionFor(PageNo page) {
    return *parts_[SplitMix64(page) % parts_.size()];
  }

  // All four run under part.mu. PinLocked returns the pinned frame's
  // index within the partition.
  size_t FrameFor(Partition& part, PageNo page, bool load_from_pager);
  void WriteBack(Partition& part, size_t frame_idx);
  size_t EvictOne(Partition& part);  // returns the freed frame index
  size_t PinLocked(Partition& part, PageNo page, bool load_from_pager);

  Pager* pager_;
  size_t capacity_;
  WriteObserver observer_;
  std::vector<std::unique_ptr<Partition>> parts_;
};

/// RAII pin on a buffer-pool page. Move-only.
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferPool* pool, PageNo page)
      : pool_(pool), page_(page), data_(pool->Pin(page)) {}

  PageRef(PageRef&& o) noexcept { *this = std::move(o); }
  PageRef& operator=(PageRef&& o) noexcept {
    Release();
    pool_ = o.pool_;
    page_ = o.page_;
    data_ = o.data_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  ~PageRef() { Release(); }

  /// Frame bytes (kBtreePageSize of them).
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  PageNo page() const { return page_; }
  bool Valid() const { return data_ != nullptr; }

  /// Marks the page dirty; it will be written back on eviction/flush.
  void MarkDirty() { dirty_ = true; }

  /// Explicit early release (also done by the destructor).
  void Release() {
    if (pool_ != nullptr && data_ != nullptr) {
      pool_->Unpin(page_, dirty_);
    }
    pool_ = nullptr;
    data_ = nullptr;
    dirty_ = false;
  }

 private:
  friend class BufferPool;
  BufferPool* pool_ = nullptr;
  PageNo page_ = kInvalidPageNo;
  uint8_t* data_ = nullptr;
  bool dirty_ = false;
};

}  // namespace lss

#endif  // LSS_BTREE_BUFFER_POOL_H_
