#ifndef LSS_BTREE_BUFFER_POOL_H_
#define LSS_BTREE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "btree/page.h"
#include "btree/pager.h"
#include "core/types.h"

namespace lss {

/// LRU buffer cache over a Pager, the component that shapes the page
/// write I/O stream the paper's TPC-C experiment consumes ("The buffer
/// cache size was set at 4GB", §6.3). Dirty pages are written back on
/// eviction (and on checkpoints/flushes); each write-back is reported to
/// the observer, which is how the cleaning-simulator trace is collected.
class BufferPool {
 public:
  /// Called with the page number of every write-back to the pager.
  using WriteObserver = std::function<void(PageNo)>;

  /// `capacity_pages` must be >= 8 (the B+-tree pins a few pages at once).
  BufferPool(Pager* pager, size_t capacity_pages,
             WriteObserver observer = nullptr);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Pins `page` in the cache and returns its frame bytes. The caller
  /// must Unpin exactly once (prefer PageRef). Never returns null.
  uint8_t* Pin(PageNo page);

  /// Releases one pin; `dirty` marks the frame as modified.
  void Unpin(PageNo page, bool dirty);

  /// Allocates a fresh page (through the pager) and pins it dirty-able.
  PageNo AllocatePinned(uint8_t** data_out);

  /// Writes back every dirty frame (a checkpoint). Frames stay cached.
  void FlushAll();

  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t write_backs() const { return write_backs_; }
  size_t PinnedFrames() const;

 private:
  struct Frame {
    PageNo page = kInvalidPageNo;
    std::vector<uint8_t> data;
    uint32_t pins = 0;
    bool dirty = false;
    std::list<size_t>::iterator lru_pos;  // valid iff pins == 0
    bool in_lru = false;
  };

  // Frame index for `page`, loading (and possibly evicting) as needed.
  size_t FrameFor(PageNo page, bool load_from_pager);
  void WriteBack(size_t frame_idx);
  size_t EvictOne();  // returns the freed frame index

  Pager* pager_;
  size_t capacity_;
  WriteObserver observer_;

  std::vector<Frame> frames_;
  std::unordered_map<PageNo, size_t> page_to_frame_;
  std::list<size_t> lru_;  // front = most recent; only unpinned frames
  std::vector<size_t> free_frames_;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t write_backs_ = 0;
};

/// RAII pin on a buffer-pool page. Move-only.
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferPool* pool, PageNo page)
      : pool_(pool), page_(page), data_(pool->Pin(page)) {}

  PageRef(PageRef&& o) noexcept { *this = std::move(o); }
  PageRef& operator=(PageRef&& o) noexcept {
    Release();
    pool_ = o.pool_;
    page_ = o.page_;
    data_ = o.data_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  ~PageRef() { Release(); }

  /// Frame bytes (kBtreePageSize of them).
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  PageNo page() const { return page_; }
  bool Valid() const { return data_ != nullptr; }

  /// Marks the page dirty; it will be written back on eviction/flush.
  void MarkDirty() { dirty_ = true; }

  /// Explicit early release (also done by the destructor).
  void Release() {
    if (pool_ != nullptr && data_ != nullptr) {
      pool_->Unpin(page_, dirty_);
    }
    pool_ = nullptr;
    data_ = nullptr;
    dirty_ = false;
  }

 private:
  friend class BufferPool;
  BufferPool* pool_ = nullptr;
  PageNo page_ = kInvalidPageNo;
  uint8_t* data_ = nullptr;
  bool dirty_ = false;
};

}  // namespace lss

#endif  // LSS_BTREE_BUFFER_POOL_H_
