#ifndef LSS_BTREE_BUFFER_POOL_H_
#define LSS_BTREE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "btree/eviction_policy.h"
#include "btree/page.h"
#include "btree/pager.h"
#include "core/types.h"
#include "util/rng.h"

namespace lss {

/// How a PageRef acquires the page latch of the frame it pins. The latch
/// is a reader-writer lock stored in the frame state next to the pin
/// word; a latch is only ever held while the frame is pinned (pin first,
/// latch second; unlatch before unpin), so eviction — which claims only
/// frames with zero pins — can never recycle a latched frame.
enum class LatchMode : uint8_t {
  kNone = 0,       ///< pin only; caller synchronises the bytes itself
  kShared = 1,     ///< shared page latch: concurrent readers
  kExclusive = 2,  ///< exclusive page latch: sole writer of the bytes
};

/// Buffer cache over a Pager, the component that shapes the page write
/// I/O stream the paper's TPC-C experiment consumes ("The buffer cache
/// size was set at 4GB", §6.3). Dirty pages are written back on eviction
/// (and on checkpoints/flushes); each write-back is reported to the
/// observer, which is how the cleaning-simulator trace is collected.
///
/// Concurrency. The pool is latch-striped: frames are divided into N
/// partitions and a page hashes (SplitMix64) to exactly one partition,
/// whose mutex serialises miss handling, eviction and write-back on its
/// frames. Distinct partitions proceed fully in parallel; a page's pager
/// I/O only ever happens while the pool holds the frame exclusively, so
/// the pager needs no per-page locking of its own.
///
/// Replacement is a policy seam (btree/eviction_policy.h), selected per
/// pool at construction:
///  - kExactLru (default): every operation, hits included, runs under the
///    partition latch; replacement is exact LRU per partition, bit-for-bit
///    the pre-seam pool (pinned by a determinism test at 1 partition).
///  - kClock: cache hits and unpins take NO latch. A hit finds its frame
///    through a per-partition lock-free hint table, pins it with an
///    atomic increment, validates the page identity, and records the
///    access as a relaxed store to the frame's reference bit; eviction
///    claims a frame by CAS-ing its pin word to a reserved "evicting"
///    value, so a racing latch-free pin either lands first (the CAS fails
///    and the sweep moves on) or observes the claim and backs off to the
///    latched path. The latch is taken only on miss/eviction/flush —
///    latch_acquisitions() counts exactly those acquisitions, which is
///    how bench/buffer_pool proves hits are latch-free.
///  - kTwoQ: latched like LRU, but scan-resistant (see the policy).
///
/// Frame-content contract: the pool synchronises its own metadata, not
/// the cached bytes. Each frame carries a reader-writer page latch
/// (acquired through PageRef's LatchMode, always under a pin) that
/// callers use to order accesses to the same page's bytes — the B+-tree
/// couples these latches during descent. Callers that pin with
/// LatchMode::kNone must order accesses themselves (quiescent phases,
/// single-threaded use, or an external happens-before chain). Eviction
/// and FlushAll need no latch awareness: both claim a frame only when
/// its pin count is zero, and a latch is only ever held under a pin.
/// FlushAll skips frames that are pinned at flush time — their bytes are
/// in active use — leaving them dirty for a later eviction or flush.
class BufferPool {
 public:
  /// Called with the page number of every write-back to the pager. May
  /// be invoked concurrently from any thread using the pool.
  using WriteObserver = std::function<void(PageNo)>;

  /// `capacity_pages` must be >= 8 (the B+-tree pins a few pages at
  /// once). `partitions` of 0 picks automatically: enough stripes to
  /// scale, but never fewer than 64 frames per stripe so concurrent
  /// pins cannot exhaust one (a stripe asserts when every frame in it
  /// is pinned); in particular every capacity in [8, 127] yields exactly
  /// one stripe. An explicit `partitions` request is honoured but
  /// clamped so a stripe never holds fewer than 8 frames.
  BufferPool(Pager* pager, size_t capacity_pages,
             WriteObserver observer = nullptr, uint32_t partitions = 0,
             EvictionPolicyKind policy = EvictionPolicyKind::kExactLru);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Pins `page` in the cache and returns its frame bytes. The caller
  /// must Unpin exactly once (prefer PageRef). Never returns null.
  uint8_t* Pin(PageNo page);

  /// Releases one pin; `dirty` marks the frame as modified.
  void Unpin(PageNo page, bool dirty);

  /// Allocates a fresh page (through the pager) and pins it dirty-able.
  PageNo AllocatePinned(uint8_t** data_out);

  /// Writes back every dirty unpinned frame (a checkpoint): a
  /// cross-partition barrier that visits every stripe in turn. Frames
  /// stay cached. Pinned frames are skipped (see class comment).
  void FlushAll();

  size_t capacity() const { return capacity_; }
  uint32_t partitions() const {
    return static_cast<uint32_t>(parts_.size());
  }
  EvictionPolicyKind policy() const { return policy_kind_; }

  // Counters, summed across partitions (approximate while threads are
  // running, exact when the pool is quiescent).
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  uint64_t write_backs() const;
  /// Partition-latch acquisitions by the operation paths (Pin misses and
  /// latched hits, latched unpins, AllocatePinned, FlushAll — one per
  /// stripe visited). Counter reads themselves are not counted, so
  /// (latch_acquisitions delta) / (hits delta) over a pure-hit phase is
  /// exactly 1 for latched policies and 0 for CLOCK.
  uint64_t latch_acquisitions() const;
  size_t PinnedFrames() const;

 private:
  // Pin-word layout: the low bits count pins; kEvicting marks a frame an
  // evictor (or flusher) holds exclusively. Latch-free pinners that
  // fetch_add into a claimed word see the flag in their old value and
  // back off (their transient +1 is self-corrected), so data bytes are
  // never touched concurrently with an eviction's write-back/reload.
  static constexpr uint32_t kEvicting = 1u << 31;

  struct Frame {
    std::atomic<PageNo> page{kInvalidPageNo};
    std::vector<uint8_t> data;
    std::atomic<uint32_t> pins{0};
    std::atomic<bool> dirty{false};
    std::atomic<uint8_t> ref{0};  // reference bit; set on every access
    // Page latch (see LatchMode). Held only while pins > 0, so the latch
    // always refers to the page currently cached in this frame.
    std::shared_mutex latch;
  };

  // Lock-free page -> frame-index hint table (only populated for
  // latch-free policies). One atomic word per slot packs (page, idx);
  // writers run under the partition latch, readers probe with acquire
  // loads. A hint is advisory: the latch-free hit path re-validates
  // against the frame's own page word after pinning, so a stale hint
  // costs a fallback to the latched path, never a wrong frame.
  static constexpr uint64_t kHintEmpty = ~0ull;
  static constexpr uint64_t kHintTombstone = ~0ull - 1;

  // One latch stripe: a share of the frames plus all the state needed to
  // run them as an independent cache. Cache-line aligned so stripe
  // mutexes do not false-share.
  struct alignas(64) Partition : public FrameStateView {
    std::mutex mu;
    std::vector<Frame> frames;
    std::unordered_map<PageNo, size_t> page_to_frame;  // authoritative
    std::vector<size_t> free_frames;
    std::unique_ptr<EvictionPolicy> policy;

    // Hint table (latch-free policies only): power-of-two sized, at
    // least 4x frames, so probe chains stay short at <= 25% load.
    std::vector<std::atomic<uint64_t>> hints;
    uint64_t hint_mask = 0;
    size_t hint_tombstones = 0;

    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> write_backs{0};
    std::atomic<uint64_t> latch_acquisitions{0};

    // FrameStateView (for CLOCK's sweep; runs under mu).
    size_t frame_count() const override { return frames.size(); }
    bool Pinned(size_t idx) const override {
      return frames[idx].pins.load(std::memory_order_relaxed) != 0;
    }
    bool TestClearRef(size_t idx) override {
      Frame& f = frames[idx];
      if (f.ref.load(std::memory_order_relaxed) == 0) return false;
      f.ref.store(0, std::memory_order_relaxed);
      return true;
    }
  };

  Partition& PartitionFor(PageNo page) {
    return *parts_[SplitMix64(page) % parts_.size()];
  }

  // Latch-free hit path (latch-free policies only): returns the pinned
  // frame, or nullptr when the page must go through the latched path
  // (not hinted, mid-eviction, or a stale hint).
  Frame* TryLatchFreeHit(Partition& part, PageNo page);

  // Pin/unpin by frame identity (PageRef's backend). PinFrame is Pin()
  // returning the frame itself so the caller can reach its page latch;
  // UnpinFrame skips the page->frame lookup a plain Unpin needs.
  Frame& PinFrame(PageNo page);
  void UnpinFrame(Frame& f, PageNo page, bool dirty);

  static void LatchFrame(Frame& f, LatchMode mode) {
    if (mode == LatchMode::kShared) {
      f.latch.lock_shared();
    } else if (mode == LatchMode::kExclusive) {
      f.latch.lock();
    }
  }
  static void UnlatchFrame(Frame& f, LatchMode mode) {
    if (mode == LatchMode::kShared) {
      f.latch.unlock_shared();
    } else if (mode == LatchMode::kExclusive) {
      f.latch.unlock();
    }
  }

  // Hint-table maintenance; all run under part.mu.
  void HintInsert(Partition& part, PageNo page, size_t idx);
  void HintErase(Partition& part, PageNo page);
  void HintRebuild(Partition& part);

  // All of the below run under part.mu. PinLocked returns the pinned
  // frame's index within the partition.
  size_t FrameFor(Partition& part, PageNo page, bool load_from_pager);
  void WriteBack(Partition& part, size_t frame_idx);
  size_t EvictOne(Partition& part);  // returns the freed, claimed frame
  size_t PinLocked(Partition& part, PageNo page, bool load_from_pager);

  friend class PageRef;

  Pager* pager_;
  size_t capacity_;
  WriteObserver observer_;
  EvictionPolicyKind policy_kind_;
  bool latch_free_ops_ = false;
  std::vector<std::unique_ptr<Partition>> parts_;
};

/// RAII pin on a buffer-pool page, optionally holding the frame's page
/// latch for its lifetime (LatchMode; default is a plain pin). Move-only.
/// Acquisition order is pin-then-latch; Release unlatches before it
/// unpins, so the latch always covers a pinned (eviction-proof) frame.
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferPool* pool, PageNo page, LatchMode mode = LatchMode::kNone)
      : pool_(pool), page_(page), mode_(mode),
        frame_(&pool->PinFrame(page)) {
    BufferPool::LatchFrame(*frame_, mode_);
    data_ = frame_->data.data();
  }

  PageRef(PageRef&& o) noexcept { *this = std::move(o); }
  PageRef& operator=(PageRef&& o) noexcept {
    Release();
    pool_ = o.pool_;
    page_ = o.page_;
    data_ = o.data_;
    dirty_ = o.dirty_;
    mode_ = o.mode_;
    frame_ = o.frame_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
    o.frame_ = nullptr;
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  ~PageRef() { Release(); }

  /// Frame bytes (kBtreePageSize of them).
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  PageNo page() const { return page_; }
  LatchMode mode() const { return mode_; }
  bool Valid() const { return data_ != nullptr; }

  /// Marks the page dirty; it will be written back on eviction/flush.
  void MarkDirty() { dirty_ = true; }

  /// Explicit early release (also done by the destructor).
  void Release() {
    if (pool_ != nullptr && data_ != nullptr) {
      BufferPool::UnlatchFrame(*frame_, mode_);
      pool_->UnpinFrame(*frame_, page_, dirty_);
    }
    pool_ = nullptr;
    data_ = nullptr;
    frame_ = nullptr;
    dirty_ = false;
    mode_ = LatchMode::kNone;
  }

 private:
  friend class BufferPool;
  BufferPool* pool_ = nullptr;
  PageNo page_ = kInvalidPageNo;
  uint8_t* data_ = nullptr;
  bool dirty_ = false;
  LatchMode mode_ = LatchMode::kNone;
  BufferPool::Frame* frame_ = nullptr;
};

}  // namespace lss

#endif  // LSS_BTREE_BUFFER_POOL_H_
