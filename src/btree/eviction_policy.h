#ifndef LSS_BTREE_EVICTION_POLICY_H_
#define LSS_BTREE_EVICTION_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "btree/page.h"

namespace lss {

/// Which replacement policy a BufferPool runs. Mirrors the cleaning-policy
/// seam (core/cleaning_policy.h): the pool owns the frames and the latch;
/// the policy owns the replacement decision.
enum class EvictionPolicyKind : uint8_t {
  /// Exact LRU, bit-for-bit the pre-seam pool: every hit splices the
  /// frame out of a per-partition LRU list under the partition latch.
  kExactLru = 0,
  /// CLOCK / second-chance: a hit is a relaxed store to the frame's
  /// reference bit — no latch, no list. The latch is taken only on
  /// miss/eviction, where the clock hand sweeps for an unreferenced frame.
  kClock = 1,
  /// 2Q: new pages enter a probationary FIFO (A1in) and are promoted to a
  /// protected LRU (Am) only on re-reference; a bounded ghost list (A1out)
  /// remembers recently evicted probationers so their return promotes
  /// directly. A one-pass scan churns through A1in without ever touching
  /// the hot set in Am.
  kTwoQ = 2,
};

/// The per-frame state a policy may inspect during victim selection,
/// implemented by the pool's partition. CLOCK reads reference bits the
/// latch-free hit path sets; list-based policies never need it.
class FrameStateView {
 public:
  virtual ~FrameStateView() = default;

  /// Frames in this partition.
  virtual size_t frame_count() const = 0;

  /// True if the frame is currently pinned (or mid-write-back). Stable
  /// for latched policies; a conservative snapshot under CLOCK, where the
  /// caller re-validates with a pin CAS anyway.
  virtual bool Pinned(size_t idx) const = 0;

  /// Returns the frame's reference bit and clears it (the second-chance
  /// step of a clock sweep).
  virtual bool TestClearRef(size_t idx) = 0;
};

/// Strategy interface for buffer-pool page replacement. One instance per
/// pool partition; every method runs under that partition's latch, so
/// implementations need no locking of their own. The latch-free hit path
/// (see LatchFreeOps) bypasses the policy entirely: the pool records the
/// access in the frame's atomic reference bit, which is the only signal a
/// latch-free policy gets about hits.
class EvictionPolicy {
 public:
  /// PickVictim result when every frame is pinned.
  static constexpr size_t kNoVictim = static_cast<size_t>(-1);

  virtual ~EvictionPolicy() = default;

  /// Policy name as selected by ParseEvictionPolicy ("lru", "clock", "2q").
  virtual std::string name() const = 0;

  /// True when the policy needs no bookkeeping on hit or unpin, so the
  /// pool may serve cache hits (and unpins) without the partition latch.
  /// The pool then maintains frame reference bits in its hit path and the
  /// policy consumes them in PickVictim.
  virtual bool LatchFreeOps() const { return false; }

  /// `page` was cached into frame `idx` (frame is pinned by the caller).
  virtual void OnInsert(size_t idx, PageNo page) = 0;

  /// Latched hit on the resident frame `idx` (it is about to gain a pin;
  /// it may already be pinned). Not called on latch-free hits.
  virtual void OnHit(size_t idx) = 0;

  /// Frame `idx`'s pin count dropped to zero (it becomes evictable). Not
  /// called by latch-free unpins.
  virtual void OnUnpin(size_t idx) = 0;

  /// Frame `idx`, holding `page`, was chosen for eviction and is leaving
  /// the cache.
  virtual void OnEvict(size_t idx, PageNo page) = 0;

  /// Chooses an evictable frame, or kNoVictim when nothing is evictable
  /// (every frame pinned). Latched policies must only return frames they
  /// know are unpinned; CLOCK may return a best-effort candidate that the
  /// pool re-validates (and re-calls on a race with a latch-free pin).
  virtual size_t PickVictim() = 0;

  /// Gives the policy its partition's frame-state view. Called once by
  /// the pool before use; only CLOCK keeps the pointer.
  virtual void AttachFrameState(FrameStateView* view) { (void)view; }
};

/// Builds a policy instance for one partition of `frames` frames.
std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionPolicyKind kind,
                                                   size_t frames);

/// "lru" | "clock" | "2q" (case-sensitive; the LSS_BENCH_POOL spellings).
/// Returns false and leaves *out alone on an unknown name.
bool ParseEvictionPolicy(const std::string& name, EvictionPolicyKind* out);

/// Inverse of ParseEvictionPolicy.
std::string EvictionPolicyName(EvictionPolicyKind kind);

}  // namespace lss

#endif  // LSS_BTREE_EVICTION_POLICY_H_
