#ifndef LSS_BTREE_BTREE_H_
#define LSS_BTREE_BTREE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "btree/buffer_pool.h"
#include "btree/node.h"
#include "btree/page.h"
#include "core/types.h"

namespace lss {

/// A disk-format B+-tree over a buffer pool: 4 KB slotted pages,
/// arbitrary byte-string keys (memcmp order) and values, leaf-chained
/// range scans. This is the storage engine under the TPC-C workload whose
/// page-write trace drives the paper's §6.3 experiment.
///
/// Concurrency: safe for any mix of concurrent readers and writers on
/// the same tree via latch coupling over the buffer pool's per-frame
/// reader-writer page latches (docs/ARCHITECTURE.md, "Latch-coupled
/// B+-tree"). Readers crab shared latches root->leaf; writers descend
/// optimistically (shared latches, exclusive leaf) and restart with a
/// full exclusive-path descent only when the leaf must split.
/// CheckIntegrity quiesces the tree through a tree-wide latch. Moving a
/// BTree is NOT thread-safe: both trees must be externally quiescent.
///
/// Scope notes (documented simplifications, see docs/ARCHITECTURE.md):
/// deletes do not rebalance (underfull leaves persist, as in
/// lazy-deletion engines); pages are never returned to the pager, so
/// leaf-chain links never dangle; the record count is maintained in
/// memory, not persisted. Key+value payload is limited to
/// NodeView::kMaxPayload bytes so splits always succeed.
class BTree {
 public:
  /// Creates an empty tree whose pages are allocated from `pool`.
  explicit BTree(BufferPool* pool);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  /// Moves transfer the tree; the moved-from tree keeps no pool pointer
  /// and any further operation on it asserts. Requires both trees
  /// quiescent (no concurrent operations, no live iterators).
  BTree(BTree&& o) noexcept;
  BTree& operator=(BTree&& o) noexcept;

  /// Inserts a new record; kInvalidArgument if the key already exists or
  /// the payload exceeds kMaxPayload.
  Status Insert(std::string_view key, std::string_view value);

  /// Inserts or overwrites.
  Status Put(std::string_view key, std::string_view value);

  /// Fetches a record. Returns false if absent. `value` may be null to
  /// test existence only.
  bool Get(std::string_view key, std::string* value) const;

  /// Removes a record. Returns false if absent.
  bool Delete(std::string_view key);

  /// Records currently stored (exact when quiescent; a racing snapshot
  /// while writers run).
  uint64_t Size() const { return size_.load(std::memory_order_acquire); }

  PageNo root() const {
    return static_cast<PageNo>(root_word_.load(std::memory_order_acquire));
  }

  /// Forward iterator over records. Pins and shared-latches pages only
  /// while reading; the current key/value are materialised copies. The
  /// iterator is valid across unrelated tree reads AND writes: every
  /// Load checks the tree's modification counter under the leaf latch
  /// and, when any write has intervened, safely re-seeks to the first
  /// key after the last one returned (so a stale position can never read
  /// a recycled or reorganised leaf). Concurrent splits may move records
  /// between leaves mid-scan; the iterator guarantees strictly
  /// increasing key order and never fabricates records, and degenerates
  /// to an exact scan whenever the tree is quiescent.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const std::string& key() const { return key_; }
    const std::string& value() const { return value_; }
    /// Advances to the next record in key order.
    void Next();

   private:
    friend class BTree;
    Iterator(const BTree* tree, PageNo leaf, uint16_t slot,
             uint64_t mod_snapshot, std::string bound, bool bound_inclusive,
             bool latched);
    // Loads key_/value_ from (leaf_, slot_), hopping over empty leaves;
    // falls back to Reposition() when the tree changed under us.
    void Load();
    // Re-derives the position by key: first record >= bound_ (or >
    // bound_ when !bound_inclusive_). Latched mode only.
    void Reposition();

    const BTree* tree_ = nullptr;
    PageNo leaf_ = kInvalidPageNo;
    uint16_t slot_ = 0;
    bool valid_ = false;
    std::string key_;
    std::string value_;
    // Write-invalidation guard: tree_->mods_ value this position is
    // valid for, and the key bound to re-seek from when it moves on.
    uint64_t mod_snapshot_ = 0;
    std::string bound_;
    bool bound_inclusive_ = true;
    // False only for CheckIntegrity's internal walk, which runs under
    // the tree-wide quiescence latch and needs no page latches.
    bool latched_ = true;
  };

  /// Iterator at the first record with key >= `key`.
  Iterator Seek(std::string_view key) const;
  /// Iterator at the smallest key.
  Iterator Begin() const;

  /// Full structural validation: node consistency, key ordering within
  /// and across nodes, leaf chain coverage. O(tree). Takes the tree-wide
  /// quiescence latch exclusively, so it can run while other threads
  /// use the tree (they block for its duration).
  Status CheckIntegrity() const;

  /// Height of the tree (1 = root is a leaf). For tests/diagnostics.
  uint32_t Height() const {
    return static_cast<uint32_t>(
        root_word_.load(std::memory_order_acquire) >> 32);
  }

 private:
  // root_word_ packs (height << 32) | root page: a root's height never
  // changes while it is the root (splits below it cannot move the leaf
  // level; only a new root adds one), so one atomic word gives every
  // descent a consistent (root, height) pair. Descents latch the root
  // and re-validate the word; if it moved on (a root split), they
  // restart. An old root is never re-used as root, so there is no ABA.
  static uint64_t PackRoot(PageNo root, uint32_t height) {
    return (static_cast<uint64_t>(height) << 32) | root;
  }

  void AssertLive() const;

  // Latched descents (crabbing: child latched before parent released).
  // DescendShared returns the shared-latched leaf for `key`;
  // DescendLeftmost the shared-latched first leaf; DescendForWrite the
  // exclusive-latched leaf (shared latches on the way down);
  // DescendExclusive fills `path` with exclusive-latched refs root->leaf
  // for the split path.
  PageRef DescendShared(std::string_view key) const;
  PageRef DescendLeftmost() const;
  PageRef DescendForWrite(std::string_view key);
  void DescendExclusive(std::string_view key, std::vector<PageRef>* path);

  // Pessimistic write path: full exclusive descent, then insert or
  // overwrite (`overwrite`), splitting as needed over the held refs.
  Status WritePessimistic(std::string_view key, std::string_view value,
                          bool overwrite);
  // Inserts `key`/`value` into the latched leaf path->back() (known to
  // need a split), then propagates separators up the held path.
  Status SplitAndInsert(std::vector<PageRef>* path, std::string_view key,
                        std::string_view value);

  // Unlatched walk for quiescent validation (caller holds quiesce_
  // exclusively or the tree single-threaded).
  PageNo DescendToLeaf(std::string_view key,
                       std::vector<PageNo>* path) const;
  // Routing decision within an internal node.
  static PageNo RouteChild(const NodeView& node, std::string_view key);

  Status CheckSubtree(PageNo page, std::string_view lo, std::string_view hi,
                      uint32_t depth, uint32_t* leaf_depth,
                      uint64_t* records) const;

  BufferPool* pool_;
  std::atomic<uint64_t> root_word_{0};
  std::atomic<uint64_t> size_{0};
  // Bumped (under the exclusive leaf latch) by every successful
  // mutation; iterators snapshot it to detect intervening writes.
  std::atomic<uint64_t> mods_{0};
  // Tree-wide quiescence latch: operations and iterator loads hold it
  // shared, CheckIntegrity holds it exclusively. Ordered strictly before
  // page latches (acquired first, released last) so the two layers
  // cannot deadlock.
  mutable std::shared_mutex quiesce_;
};

}  // namespace lss

#endif  // LSS_BTREE_BTREE_H_
