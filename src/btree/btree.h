#ifndef LSS_BTREE_BTREE_H_
#define LSS_BTREE_BTREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "btree/buffer_pool.h"
#include "btree/node.h"
#include "btree/page.h"
#include "core/types.h"

namespace lss {

/// A disk-format B+-tree over a buffer pool: 4 KB slotted pages,
/// arbitrary byte-string keys (memcmp order) and values, leaf-chained
/// range scans. This is the storage engine under the TPC-C workload whose
/// page-write trace drives the paper's §6.3 experiment.
///
/// Scope notes (documented simplifications, see docs/ARCHITECTURE.md):
/// single threaded; deletes do not rebalance (underfull leaves persist,
/// as in lazy-deletion engines); the record count is maintained in
/// memory, not persisted. Key+value payload is limited to
/// NodeView::kMaxPayload bytes so splits always succeed.
class BTree {
 public:
  /// Creates an empty tree whose pages are allocated from `pool`.
  explicit BTree(BufferPool* pool);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) = default;

  /// Inserts a new record; kInvalidArgument if the key already exists or
  /// the payload exceeds kMaxPayload.
  Status Insert(std::string_view key, std::string_view value);

  /// Inserts or overwrites.
  Status Put(std::string_view key, std::string_view value);

  /// Fetches a record. Returns false if absent. `value` may be null to
  /// test existence only.
  bool Get(std::string_view key, std::string* value) const;

  /// Removes a record. Returns false if absent.
  bool Delete(std::string_view key);

  /// Records currently stored.
  uint64_t Size() const { return size_; }

  PageNo root() const { return root_; }

  /// Forward iterator over records. Pins pages only while reading; the
  /// current key/value are materialised copies, so the iterator stays
  /// valid across unrelated tree reads (not across writes).
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const std::string& key() const { return key_; }
    const std::string& value() const { return value_; }
    /// Advances to the next record in key order.
    void Next();

   private:
    friend class BTree;
    Iterator(const BTree* tree, PageNo leaf, uint16_t slot);
    // Loads key_/value_ from (leaf_, slot_), hopping over empty leaves.
    void Load();

    const BTree* tree_ = nullptr;
    PageNo leaf_ = kInvalidPageNo;
    uint16_t slot_ = 0;
    bool valid_ = false;
    std::string key_;
    std::string value_;
  };

  /// Iterator at the first record with key >= `key`.
  Iterator Seek(std::string_view key) const;
  /// Iterator at the smallest key.
  Iterator Begin() const;

  /// Full structural validation: node consistency, key ordering within
  /// and across nodes, leaf chain coverage. O(tree).
  Status CheckIntegrity() const;

  /// Height of the tree (1 = root is a leaf). For tests/diagnostics.
  uint32_t Height() const;

 private:
  // Descends to the leaf for `key`; fills `path` with the internal pages
  // visited (root first) when non-null.
  PageNo DescendToLeaf(std::string_view key,
                       std::vector<PageNo>* path) const;
  // Routing decision within an internal node.
  static PageNo RouteChild(const NodeView& node, std::string_view key);
  // Inserts `key`/`value` into `leaf` (known to need a split), then
  // propagates separators up `path`.
  Status InsertWithSplit(PageNo leaf_no, std::string_view key,
                         std::string_view value, std::vector<PageNo>* path);

  Status CheckSubtree(PageNo page, std::string_view lo, std::string_view hi,
                      uint32_t depth, uint32_t* leaf_depth,
                      uint64_t* records) const;

  BufferPool* pool_;
  PageNo root_;
  uint64_t size_ = 0;
};

}  // namespace lss

#endif  // LSS_BTREE_BTREE_H_
