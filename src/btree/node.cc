#include "btree/node.h"

#include <cassert>
#include <cstring>

namespace lss {

void NodeView::Init(uint8_t* data, uint8_t type) {
  std::memset(data, 0, kHeaderSize);
  NodeView n(data);
  n.d_[0] = type;
  n.set_count(0);
  n.set_cell_start(kBtreePageSize);
  n.set_right_sibling(kInvalidPageNo);
  n.set_leftmost_child(kInvalidPageNo);
}

uint16_t NodeView::CellSizeAt(uint16_t off) const {
  const uint16_t klen = Load16(off);
  if (IsLeaf()) {
    const uint16_t vlen = Load16(off + 2);
    return static_cast<uint16_t>(4 + klen + vlen);
  }
  return static_cast<uint16_t>(6 + klen);
}

std::string_view NodeView::Key(uint16_t slot) const {
  assert(slot < count());
  const uint16_t off = SlotOffset(slot);
  const uint16_t klen = Load16(off);
  const uint32_t key_off = IsLeaf() ? off + 4 : off + 6;
  return std::string_view(reinterpret_cast<const char*>(d_ + key_off), klen);
}

std::string_view NodeView::Value(uint16_t slot) const {
  assert(IsLeaf());
  assert(slot < count());
  const uint16_t off = SlotOffset(slot);
  const uint16_t klen = Load16(off);
  const uint16_t vlen = Load16(off + 2);
  return std::string_view(reinterpret_cast<const char*>(d_ + off + 4 + klen),
                          vlen);
}

PageNo NodeView::Child(uint16_t slot) const {
  assert(!IsLeaf());
  assert(slot < count());
  return Load32(SlotOffset(slot) + 2);
}

void NodeView::SetChild(uint16_t slot, PageNo child) {
  assert(!IsLeaf());
  assert(slot < count());
  Store32(SlotOffset(slot) + 2, child);
}

uint16_t NodeView::LowerBound(std::string_view key) const {
  uint16_t lo = 0;
  uint16_t hi = count();
  while (lo < hi) {
    const uint16_t mid = (lo + hi) / 2;
    if (Key(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool NodeView::Find(std::string_view key, uint16_t* slot) const {
  const uint16_t s = LowerBound(key);
  if (s < count() && Key(s) == key) {
    *slot = s;
    return true;
  }
  return false;
}

uint16_t NodeView::AllocCell(uint16_t slot, uint16_t cell_bytes) {
  assert(HasRoomFor(cell_bytes));
  assert(slot <= count());
  const uint16_t off = static_cast<uint16_t>(cell_start() - cell_bytes);
  // Shift slots [slot, count) up by one.
  for (uint16_t i = count(); i > slot; --i) {
    SetSlotOffset(i, SlotOffset(i - 1));
  }
  SetSlotOffset(slot, off);
  set_count(count() + 1);
  set_cell_start(off);
  return off;
}

void NodeView::InsertLeaf(uint16_t slot, std::string_view key,
                          std::string_view value) {
  assert(IsLeaf());
  const uint32_t bytes = LeafCellSize(key, value);
  const uint16_t off = AllocCell(slot, static_cast<uint16_t>(bytes));
  Store16(off, static_cast<uint16_t>(key.size()));
  Store16(off + 2, static_cast<uint16_t>(value.size()));
  // Empty keys/values carry a null data(); memcpy requires non-null even
  // for zero-length copies.
  if (!key.empty()) std::memcpy(d_ + off + 4, key.data(), key.size());
  if (!value.empty()) {
    std::memcpy(d_ + off + 4 + key.size(), value.data(), value.size());
  }
}

void NodeView::InsertInternal(uint16_t slot, std::string_view key,
                              PageNo child) {
  assert(!IsLeaf());
  const uint32_t bytes = InternalCellSize(key);
  const uint16_t off = AllocCell(slot, static_cast<uint16_t>(bytes));
  Store16(off, static_cast<uint16_t>(key.size()));
  Store32(off + 2, child);
  if (!key.empty()) std::memcpy(d_ + off + 6, key.data(), key.size());
}

void NodeView::UpdateLeafValue(uint16_t slot, std::string_view value) {
  assert(IsLeaf());
  const std::string_view old = Value(slot);
  if (old.size() == value.size()) {
    if (!value.empty()) {
      std::memcpy(d_ + SlotOffset(slot) + 4 + Key(slot).size(), value.data(),
                  value.size());
    }
    return;
  }
  // Size change: remove and re-insert (key copied out first).
  const std::string key(Key(slot));
  Remove(slot);
  assert(HasRoomFor(LeafCellSize(key, value)));
  InsertLeaf(slot, key, value);
}

void NodeView::Remove(uint16_t slot) {
  assert(slot < count());
  const uint16_t off = SlotOffset(slot);
  const uint16_t size = CellSizeAt(off);
  const uint16_t start = cell_start();
  // Compact: slide cell bytes in [start, off) up by `size`.
  std::memmove(d_ + start + size, d_ + start, off - start);
  // Drop the slot and fix offsets of cells that moved.
  for (uint16_t i = slot; i + 1 < count(); ++i) {
    SetSlotOffset(i, SlotOffset(i + 1));
  }
  set_count(count() - 1);
  for (uint16_t i = 0; i < count(); ++i) {
    if (SlotOffset(i) < off) SetSlotOffset(i, SlotOffset(i) + size);
  }
  set_cell_start(start + size);
}

std::string NodeView::SplitInto(NodeView& right) {
  assert(right.count() == 0);
  assert(count() >= 2);
  const uint16_t n = count();
  const uint16_t mid = n / 2;

  std::string separator;
  if (IsLeaf()) {
    separator.assign(Key(mid));
    // Copy cells [mid, n) to the right node.
    for (uint16_t i = mid; i < n; ++i) {
      right.InsertLeaf(right.count(), Key(i), Value(i));
    }
    // Trim this node down to [0, mid), highest slot first so no shifting
    // of cell bytes below is wasted... Remove already compacts; iterate
    // from the end.
    for (uint16_t i = n; i > mid; --i) {
      Remove(i - 1);
    }
  } else {
    separator.assign(Key(mid));
    right.set_leftmost_child(Child(mid));
    for (uint16_t i = mid + 1; i < n; ++i) {
      right.InsertInternal(right.count(), Key(i), Child(i));
    }
    for (uint16_t i = n; i > mid; --i) {
      Remove(i - 1);
    }
  }
  return separator;
}

bool NodeView::CheckConsistent() const {
  if (type() != kLeaf && type() != kInternal) return false;
  const uint16_t n = count();
  if (kHeaderSize + n * 2 > cell_start()) return false;
  if (cell_start() > kBtreePageSize) return false;
  uint32_t cell_bytes = 0;
  for (uint16_t i = 0; i < n; ++i) {
    const uint16_t off = SlotOffset(i);
    if (off < cell_start() || off >= kBtreePageSize) return false;
    if (off + CellSizeAt(off) > kBtreePageSize) return false;
    cell_bytes += CellSizeAt(off);
    if (i > 0 && !(Key(i - 1) < Key(i))) return false;
  }
  if (cell_bytes != kBtreePageSize - cell_start()) return false;
  return true;
}

}  // namespace lss
