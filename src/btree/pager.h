#ifndef LSS_BTREE_PAGER_H_
#define LSS_BTREE_PAGER_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "btree/page.h"

namespace lss {

/// The engine's backing store — an in-memory stand-in for the disk under
/// the buffer pool. Every write-back lands here; the page-write I/O trace
/// is collected one level up (BufferPool) where eviction and checkpoint
/// decisions are made.
class Pager {
 public:
  Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Allocates a zeroed page and returns its number.
  PageNo Allocate() {
    pages_.push_back(std::make_unique<PageBuf>());
    std::memset(pages_.back()->data, 0, kBtreePageSize);
    return static_cast<PageNo>(pages_.size() - 1);
  }

  /// Number of pages ever allocated (the database footprint).
  PageNo PageCount() const { return static_cast<PageNo>(pages_.size()); }

  /// Copies a page's bytes out of the backing store.
  void Read(PageNo page, uint8_t* out) const {
    std::memcpy(out, pages_[page]->data, kBtreePageSize);
  }

  /// Copies bytes into the backing store.
  void Write(PageNo page, const uint8_t* in) {
    std::memcpy(pages_[page]->data, in, kBtreePageSize);
  }

  /// Direct read-only view (tests and integrity checks).
  const uint8_t* Raw(PageNo page) const { return pages_[page]->data; }

 private:
  struct PageBuf {
    uint8_t data[kBtreePageSize];
  };
  std::vector<std::unique_ptr<PageBuf>> pages_;
};

}  // namespace lss

#endif  // LSS_BTREE_PAGER_H_
