#ifndef LSS_BTREE_PAGER_H_
#define LSS_BTREE_PAGER_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "btree/page.h"

namespace lss {

/// The engine's backing store — an in-memory stand-in for the disk under
/// the buffer pool. Every write-back lands here; the page-write I/O trace
/// is collected one level up (BufferPool) where eviction and checkpoint
/// decisions are made.
///
/// Thread safety. Allocate() may be called concurrently from any thread
/// (the page counter is atomic; chunk growth is double-checked under a
/// mutex, and chunk pointers never move once published, so Read/Write of
/// already-allocated pages need no lock). Concurrent Read/Write of the
/// *same* page are the caller's problem: the buffer pool maps each page
/// to exactly one partition and serialises its I/O under that partition's
/// latch.
class Pager {
 public:
  /// Pages per storage chunk. Chunks are allocated on demand and pinned
  /// in place for the pager's lifetime.
  static constexpr size_t kChunkPages = 1024;
  /// Directory slots: kMaxChunks * kChunkPages * 4 KB = 256 GB ceiling,
  /// far above anything the benches allocate.
  static constexpr size_t kMaxChunks = 1 << 16;

  Pager() : chunks_(kMaxChunks) {
    for (auto& c : chunks_) c.store(nullptr, std::memory_order_relaxed);
  }

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  ~Pager() {
    for (auto& c : chunks_) delete[] c.load(std::memory_order_relaxed);
  }

  /// Allocates a zeroed page and returns its number. Thread-safe.
  PageNo Allocate() {
    const PageNo page = next_page_.fetch_add(1, std::memory_order_relaxed);
    const size_t chunk = page / kChunkPages;
    assert(chunk < kMaxChunks && "pager capacity exhausted");
    if (chunks_[chunk].load(std::memory_order_acquire) == nullptr) {
      std::lock_guard<std::mutex> lock(grow_mu_);
      if (chunks_[chunk].load(std::memory_order_relaxed) == nullptr) {
        // Value-initialisation zeroes the chunk's page bytes.
        chunks_[chunk].store(new PageBuf[kChunkPages](),
                             std::memory_order_release);
      }
    }
    return page;
  }

  /// Number of pages ever allocated (the database footprint).
  PageNo PageCount() const {
    return next_page_.load(std::memory_order_relaxed);
  }

  /// Copies a page's bytes out of the backing store.
  void Read(PageNo page, uint8_t* out) const {
    std::memcpy(out, PageData(page), kBtreePageSize);
  }

  /// Copies bytes into the backing store.
  void Write(PageNo page, const uint8_t* in) {
    std::memcpy(PageData(page), in, kBtreePageSize);
  }

  /// Direct read-only view (tests and integrity checks).
  const uint8_t* Raw(PageNo page) const { return PageData(page); }

 private:
  struct PageBuf {
    uint8_t data[kBtreePageSize];
  };

  uint8_t* PageData(PageNo page) const {
    PageBuf* chunk = chunks_[page / kChunkPages].load(std::memory_order_acquire);
    assert(chunk != nullptr && "read/write of unallocated page");
    return chunk[page % kChunkPages].data;
  }

  // Two-level directory: a fixed-size vector of atomic chunk pointers.
  // The vector itself never grows, so readers index it without locks;
  // only chunk creation synchronises (grow_mu_ + release store).
  std::vector<std::atomic<PageBuf*>> chunks_;
  std::atomic<PageNo> next_page_{0};
  std::mutex grow_mu_;
};

}  // namespace lss

#endif  // LSS_BTREE_PAGER_H_
