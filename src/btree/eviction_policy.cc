#include "btree/eviction_policy.h"

#include "btree/eviction/clock_eviction.h"
#include "btree/eviction/lru_eviction.h"
#include "btree/eviction/two_q_eviction.h"

namespace lss {

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionPolicyKind kind,
                                                   size_t frames) {
  switch (kind) {
    case EvictionPolicyKind::kExactLru:
      return std::make_unique<LruEvictionPolicy>(frames);
    case EvictionPolicyKind::kClock:
      return std::make_unique<ClockEvictionPolicy>();
    case EvictionPolicyKind::kTwoQ:
      return std::make_unique<TwoQEvictionPolicy>(frames);
  }
  return std::make_unique<LruEvictionPolicy>(frames);
}

bool ParseEvictionPolicy(const std::string& name, EvictionPolicyKind* out) {
  if (name == "lru") {
    *out = EvictionPolicyKind::kExactLru;
  } else if (name == "clock") {
    *out = EvictionPolicyKind::kClock;
  } else if (name == "2q") {
    *out = EvictionPolicyKind::kTwoQ;
  } else {
    return false;
  }
  return true;
}

std::string EvictionPolicyName(EvictionPolicyKind kind) {
  switch (kind) {
    case EvictionPolicyKind::kExactLru:
      return "lru";
    case EvictionPolicyKind::kClock:
      return "clock";
    case EvictionPolicyKind::kTwoQ:
      return "2q";
  }
  return "lru";
}

}  // namespace lss
