#include "analysis/hotcold_model.h"

#include <cassert>
#include <cmath>

#include "analysis/uniform_model.h"

namespace lss {

HotColdSplit EvaluateHotColdSplit(double f, double m, double g_hot) {
  assert(f > 0.0 && f < 1.0);
  assert(m >= 0.5 && m < 1.0);
  assert(g_hot > 0.0 && g_hot < 1.0);
  const double slack = 1.0 - f;
  const double data_hot = f * (1.0 - m);   // Dist1 = 1 - m of the data
  const double data_cold = f * m;
  const double s_hot = slack * g_hot;
  const double s_cold = slack * (1.0 - g_hot);

  HotColdSplit r;
  r.fill_hot = data_hot / (data_hot + s_hot);
  r.fill_cold = data_cold / (data_cold + s_cold);
  r.emptiness_hot = SolveSteadyStateEmptiness(r.fill_hot);
  r.emptiness_cold = SolveSteadyStateEmptiness(r.fill_cold);
  // U1 = m of the updates go to the hot set.
  r.cost = m * CostPerSegment(r.emptiness_hot) +
           (1.0 - m) * CostPerSegment(r.emptiness_cold);
  r.wamp = m * WampFromEmptiness(r.emptiness_hot) +
           (1.0 - m) * WampFromEmptiness(r.emptiness_cold);
  return r;
}

double MinCostEqualSplit(double f, double m) {
  return EvaluateHotColdSplit(f, m, 0.5).cost;
}

double OptimalHotSlackShare(double f, double m) {
  // Golden-section search; the cost is unimodal in g on (0, 1).
  const double inv_phi = 0.5 * (std::sqrt(5.0) - 1.0);
  double lo = 1e-4;
  double hi = 1.0 - 1e-4;
  double x1 = hi - inv_phi * (hi - lo);
  double x2 = lo + inv_phi * (hi - lo);
  double f1 = EvaluateHotColdSplit(f, m, x1).cost;
  double f2 = EvaluateHotColdSplit(f, m, x2).cost;
  for (int i = 0; i < 100; ++i) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - inv_phi * (hi - lo);
      f1 = EvaluateHotColdSplit(f, m, x1).cost;
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + inv_phi * (hi - lo);
      f2 = EvaluateHotColdSplit(f, m, x2).cost;
    }
  }
  return 0.5 * (lo + hi);
}

double OptimalWamp(double f, double m) {
  const double g = OptimalHotSlackShare(f, m);
  return EvaluateHotColdSplit(f, m, g).wamp;
}

}  // namespace lss
