#ifndef LSS_ANALYSIS_HOTCOLD_MODEL_H_
#define LSS_ANALYSIS_HOTCOLD_MODEL_H_

namespace lss {

/// Analytic model for managing hot and cold data separately (paper §3,
/// Table 2). A hot-cold distribution "m : 1-m" sends a fraction m of
/// updates to a fraction 1-m of the data (80:20 means 80% of updates hit
/// 20% of the pages). Produces the Table 2 reference columns
/// (bench/table2_hotcold.cc) and the "opt" line of Figure 3
/// (bench/fig3_breakdown.cc) that MDC-opt is judged against.
///
/// Total space is divided so the hot set gets data D1 = F*(1-m) plus a
/// share g1 of the slack (1-F), giving it fill factor
///   F1 = D1 / (D1 + g1*(1-F)),
/// and analogously for cold with g2 = 1 - g1. Each set is cleaned
/// age-based in its own space, so its emptiness comes from the uniform
/// fixpoint model, and
///   CostTotal = sum_i U_i * 2 / E(F_i)      (U1 = m, U2 = 1-m).
struct HotColdSplit {
  double fill_hot;   // F1
  double fill_cold;  // F2
  double emptiness_hot;
  double emptiness_cold;
  double cost;  // CostTotal = weighted 2/E
  double wamp;  // weighted (1-E)/E
};

/// Evaluates the model for overall fill factor `f`, skew `m`, giving the
/// hot set a fraction `g_hot` of the slack space.
HotColdSplit EvaluateHotColdSplit(double f, double m, double g_hot);

/// CostTotal when slack is split equally (g = 0.5), which the paper's §3.2
/// derivation shows is (approximately) the minimiser for m:1-m
/// distributions — the Table 2 "MinCost" column.
double MinCostEqualSplit(double f, double m);

/// Numerically optimal slack share for the hot set (golden-section search
/// over g in (0,1)); validates the paper's g1 ~= g2 claim.
double OptimalHotSlackShare(double f, double m);

/// The optimal (analytic) write amplification for the distribution — the
/// "opt" line of Figure 3: MinCost/2 - 1 evaluated at the optimal split.
double OptimalWamp(double f, double m);

}  // namespace lss

#endif  // LSS_ANALYSIS_HOTCOLD_MODEL_H_
