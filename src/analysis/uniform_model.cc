#include "analysis/uniform_model.h"

#include <cassert>
#include <cmath>

namespace lss {

double CostPerSegment(double emptiness) {
  assert(emptiness > 0.0);
  return 2.0 / emptiness;
}

double WampFromEmptiness(double emptiness) {
  assert(emptiness > 0.0);
  return (1.0 - emptiness) / emptiness;
}

double EmptinessFromWamp(double wamp) {
  assert(wamp >= 0.0);
  return 1.0 / (1.0 + wamp);
}

namespace {

// Bisection for the positive root of g(E) = E - (1 - base^(E/F)) on
// (0, 1], where base = 1/e in the limit model or ((P-1)/P)^P in the
// finite model. g(0+) < 0 for F < 1 and g(1) > 0, and g has a single
// positive root there.
double SolveFixpoint(double fill_factor, double log_base) {
  if (fill_factor >= 1.0) return 0.0;
  assert(fill_factor > 0.0);
  auto g = [&](double e) {
    return e - (1.0 - std::exp(log_base * e / fill_factor));
  };
  double lo = 1e-12;
  double hi = 1.0;
  // g(lo) ~ lo * (1 - 1/F) < 0 for F < 1.
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (g(mid) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double SolveSteadyStateEmptiness(double fill_factor) {
  return SolveFixpoint(fill_factor, -1.0);  // ln(1/e) = -1
}

double SolveSteadyStateEmptinessFinite(double fill_factor, uint64_t pages) {
  assert(pages >= 2);
  const double p = static_cast<double>(pages);
  // base = ((P-1)/P)^P  =>  log_base = P * ln(1 - 1/P).
  const double log_base = p * std::log1p(-1.0 / p);
  return SolveFixpoint(fill_factor, log_base);
}

double SlackEfficiency(double fill_factor) {
  assert(fill_factor < 1.0);
  return SolveSteadyStateEmptiness(fill_factor) / (1.0 - fill_factor);
}

}  // namespace lss
