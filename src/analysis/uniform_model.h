#ifndef LSS_ANALYSIS_UNIFORM_MODEL_H_
#define LSS_ANALYSIS_UNIFORM_MODEL_H_

#include <cstdint>

namespace lss {

/// Closed-form cleaning-cost algebra (paper §2.1). These are the analytic
/// reference columns of Table 1 (bench/table1_uniform.cc); the simulator
/// agreeing with them under uniform updates is the paper's §8.1
/// validation, asserted by tests/integration/paper_shapes_test.cc.
///
/// Writing a segment of new data requires reading 1/E segments, rewriting
/// their live fraction, and writing the new segment:
///   Cost_seg = 2 / E            (Equation 1)
///   Wamp     = (1 - E) / E      (Equation 2)
double CostPerSegment(double emptiness);
double WampFromEmptiness(double emptiness);

/// Inverse of WampFromEmptiness.
double EmptinessFromWamp(double wamp);

/// Steady-state segment emptiness at clean time for age-based cleaning of
/// a uniformly-updated store with fill factor F (paper §2.2): the positive
/// fixpoint of
///   E = 1 - (1/e)^(E/F)         (Equation 4, the P -> infinity limit).
/// Returns 0 if F >= 1 (no slack, no positive fixpoint).
double SolveSteadyStateEmptiness(double fill_factor);

/// Finite-population variant (Equation 3 with N = P*E/F):
///   E = 1 - ((P-1)/P)^(P*E/F)
/// Converges to SolveSteadyStateEmptiness as P grows (the paper notes P >
/// 30 is already close). Used by tests to validate the limit.
double SolveSteadyStateEmptinessFinite(double fill_factor, uint64_t pages);

/// R = E / (1 - F), the ratio column of Table 1.
double SlackEfficiency(double fill_factor);

}  // namespace lss

#endif  // LSS_ANALYSIS_UNIFORM_MODEL_H_
