#include "workload/generator.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace lss {

HotColdWorkload::HotColdWorkload(uint64_t pages, double m)
    : pages_(pages), m_(m) {
  assert(pages >= 2);
  assert(m >= 0.5 && m < 1.0);
  hot_pages_ = static_cast<uint64_t>(std::llround((1.0 - m) *
                                                  static_cast<double>(pages)));
  if (hot_pages_ == 0) hot_pages_ = 1;
  if (hot_pages_ >= pages_) hot_pages_ = pages_ - 1;
  // Normalised so the population mean is 1: a hot page gets fraction m of
  // updates spread over (1-m) of the pages.
  hot_freq_ = m * static_cast<double>(pages_) / static_cast<double>(hot_pages_);
  cold_freq_ = (1.0 - m) * static_cast<double>(pages_) /
               static_cast<double>(pages_ - hot_pages_);
}

std::string HotColdWorkload::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "hot-cold %d-%d",
                static_cast<int>(std::llround(m_ * 100)),
                static_cast<int>(std::llround((1.0 - m_) * 100)));
  return buf;
}

PageId HotColdWorkload::NextPage(Rng& rng) const {
  if (rng.NextBool(m_)) {
    return rng.NextBounded(hot_pages_);
  }
  return hot_pages_ + rng.NextBounded(pages_ - hot_pages_);
}

double HotColdWorkload::ExactFrequency(PageId page) const {
  return page < hot_pages_ ? hot_freq_ : cold_freq_;
}

ScanFloodWorkload::ScanFloodWorkload(uint64_t pages, double theta,
                                     uint64_t point_ops_per_sweep)
    : pages_(pages),
      point_run_(point_ops_per_sweep),
      gen_(pages, theta),
      exact_freq_(pages, 0.0) {
  assert(pages >= 2);
  assert(point_ops_per_sweep >= 1);
  // Per round of (point_run_ + pages_) ops, rank r's page receives
  // point_run_ * SampleMass(r) point updates and every page exactly one
  // scan write; normalise the sum to mean 1 across pages.
  for (uint64_t r = 0; r < pages_; ++r) {
    exact_freq_[gen_.Scatter(r)] +=
        static_cast<double>(point_run_) * gen_.zipf().SampleMass(r);
  }
  const double scale = static_cast<double>(pages_) /
                       static_cast<double>(point_run_ + pages_);
  for (double& f : exact_freq_) f = (f + 1.0) * scale;
}

PageId ScanFloodWorkload::NextPage(Rng& rng) const {
  const uint64_t n = op_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t in_round = n % (point_run_ + pages_);
  if (in_round < point_run_) return gen_.Next(rng);
  return in_round - point_run_;  // sequential sweep position
}

}  // namespace lss
