#include "workload/generator.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace lss {

HotColdWorkload::HotColdWorkload(uint64_t pages, double m)
    : pages_(pages), m_(m) {
  assert(pages >= 2);
  assert(m >= 0.5 && m < 1.0);
  hot_pages_ = static_cast<uint64_t>(std::llround((1.0 - m) *
                                                  static_cast<double>(pages)));
  if (hot_pages_ == 0) hot_pages_ = 1;
  if (hot_pages_ >= pages_) hot_pages_ = pages_ - 1;
  // Normalised so the population mean is 1: a hot page gets fraction m of
  // updates spread over (1-m) of the pages.
  hot_freq_ = m * static_cast<double>(pages_) / static_cast<double>(hot_pages_);
  cold_freq_ = (1.0 - m) * static_cast<double>(pages_) /
               static_cast<double>(pages_ - hot_pages_);
}

std::string HotColdWorkload::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "hot-cold %d-%d",
                static_cast<int>(std::llround(m_ * 100)),
                static_cast<int>(std::llround((1.0 - m_) * 100)));
  return buf;
}

PageId HotColdWorkload::NextPage(Rng& rng) const {
  if (rng.NextBool(m_)) {
    return rng.NextBounded(hot_pages_);
  }
  return hot_pages_ + rng.NextBounded(pages_ - hot_pages_);
}

double HotColdWorkload::ExactFrequency(PageId page) const {
  return page < hot_pages_ ? hot_freq_ : cold_freq_;
}

}  // namespace lss
