#ifndef LSS_WORKLOAD_TRACE_H_
#define LSS_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace lss {

/// One page I/O in a collected trace.
struct TraceRecord {
  enum class Op : uint8_t { kWrite = 0, kDelete = 1 };
  Op op = Op::kWrite;
  PageId page = kInvalidPage;
  uint32_t bytes = 0;  // 0 = store default page size
};

/// A page-level write trace, the interface between the TPC-C/B+-tree
/// substrate and the cleaning simulator (paper §6.3: "After collecting
/// the I/O traces, we replayed them using the simulator"). Traces can be
/// saved/loaded in a small binary format so expensive trace generation is
/// paid once per bench run.
class Trace {
 public:
  Trace() = default;

  void Append(TraceRecord r) { records_.push_back(r); }
  void AppendWrite(PageId page, uint32_t bytes = 0) {
    records_.push_back(TraceRecord{TraceRecord::Op::kWrite, page, bytes});
  }
  void AppendDelete(PageId page) {
    records_.push_back(TraceRecord{TraceRecord::Op::kDelete, page, 0});
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  size_t Size() const { return records_.size(); }
  bool Empty() const { return records_.empty(); }
  void Clear() { records_.clear(); }

  /// Largest page id referenced + 1 (0 for an empty trace).
  PageId MaxPageId() const;

  /// Per-page exact update frequency over records [begin, end), normalised
  /// to mean 1 across pages that appear. This is how the paper's TPC-C
  /// experiment obtains oracle frequencies for multi-log-opt / MDC-opt:
  /// "By pre-analyzing page update frequencies" (§6.3).
  std::vector<double> ComputeExactFrequencies(size_t begin, size_t end) const;

  /// Binary serialisation. Returns false (and logs nothing) on I/O error.
  bool SaveTo(const std::string& path) const;
  bool LoadFrom(const std::string& path);

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace lss

#endif  // LSS_WORKLOAD_TRACE_H_
