#ifndef LSS_WORKLOAD_TRACE_H_
#define LSS_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace lss {

/// One page I/O in a collected trace.
struct TraceRecord {
  enum class Op : uint8_t { kWrite = 0, kDelete = 1 };
  Op op = Op::kWrite;
  PageId page = kInvalidPage;
  uint32_t bytes = 0;  // 0 = store default page size
};

/// A page-level write trace, the interface between the TPC-C/B+-tree
/// substrate and the cleaning simulator (paper §6.3: "After collecting
/// the I/O traces, we replayed them using the simulator"). Traces can be
/// saved/loaded in a small binary format so expensive trace generation is
/// paid once per bench run.
class Trace {
 public:
  Trace() = default;

  void Append(TraceRecord r) { records_.push_back(r); }
  void AppendWrite(PageId page, uint32_t bytes = 0) {
    records_.push_back(TraceRecord{TraceRecord::Op::kWrite, page, bytes});
  }
  void AppendDelete(PageId page) {
    records_.push_back(TraceRecord{TraceRecord::Op::kDelete, page, 0});
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  size_t Size() const { return records_.size(); }
  bool Empty() const { return records_.empty(); }
  void Clear() { records_.clear(); }

  /// Largest page id referenced + 1 (0 for an empty trace).
  PageId MaxPageId() const;

  /// Per-page exact update frequency over records [begin, end), normalised
  /// to mean 1 across pages that appear. This is how the paper's TPC-C
  /// experiment obtains oracle frequencies for multi-log-opt / MDC-opt:
  /// "By pre-analyzing page update frequencies" (§6.3).
  std::vector<double> ComputeExactFrequencies(size_t begin, size_t end) const;

  /// Binary serialisation. Returns false (and logs nothing) on I/O error.
  bool SaveTo(const std::string& path) const;
  bool LoadFrom(const std::string& path);

 private:
  std::vector<TraceRecord> records_;
};

/// A trace pre-split by replay shard: sub-trace `s` holds exactly the
/// subsequence of records that PageShard routes to shard `s`, in trace
/// order, with the measure_from boundary translated into each
/// subsequence. Splitting once at generation time lets every parallel
/// replay of the same trace skip the router entirely
/// (ReplayTraceParallel's fast path): shard threads stream their own
/// sub-trace with zero routing work or queue hand-offs.
struct ShardedTrace {
  uint32_t shards = 0;  // 0 = not split
  std::vector<Trace> sub;
  /// Per-shard index of the first measured record in `sub[s]` (== that
  /// sub-trace's size when every routed record precedes the boundary).
  std::vector<size_t> measure_from;

  bool Valid() const {
    return shards > 0 && sub.size() == shards &&
           measure_from.size() == shards;
  }
};

/// Splits `trace` for `shards`-way replay (PageShard routing, the same
/// function ReplayTraceParallel's router applies record by record).
ShardedTrace SplitTrace(const Trace& trace, size_t measure_from,
                        uint32_t shards);

}  // namespace lss

#endif  // LSS_WORKLOAD_TRACE_H_
