#ifndef LSS_WORKLOAD_RUNNER_H_
#define LSS_WORKLOAD_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/policy_factory.h"
#include "core/sharded_store.h"
#include "core/store.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace lss {

/// Parameters of one simulation run, mirroring the paper's methodology
/// (§6.2): fill the store, run updates until write amplification
/// stabilises, then measure.
struct RunSpec {
  /// User-visible pages / physical pages (paper's F).
  double fill_factor = 0.8;
  /// Warm-up updates, as a multiple of the user page count.
  double warmup_multiplier = 6.0;
  /// Measured updates, as a multiple of the user page count.
  double measure_multiplier = 12.0;
  uint64_t seed = 42;
};

/// Outcome of a run.
struct RunResult {
  Status status;
  /// Measured write amplification (Equation 2).
  double wamp = 0.0;
  /// Mean segment emptiness at clean time during measurement.
  double mean_clean_emptiness = 0.0;
  /// Updates performed in the measurement phase.
  uint64_t measured_updates = 0;
  /// Live-bytes / device-bytes at the end (should track fill_factor).
  double effective_fill = 0.0;
  /// Paper figure label of the variant.
  std::string variant;

  // --- Device-side measurements (all zero on the null backend) --------

  /// Bytes the backend physically wrote during the measurement phase.
  uint64_t device_bytes_written = 0;
  /// Measured device bytes per logical user byte — the device analogue
  /// of the simulator's 1 + Wamp prediction (plus segment-tail and
  /// metadata overhead).
  double device_bytes_per_user_byte = 0.0;
  /// Wall-clock seconds spent in pwrite + fsync during measurement.
  double device_seconds = 0.0;
  /// fsync calls during measurement.
  uint64_t device_fsyncs = 0;
  /// Seconds the thread driving the backend spent *blocked* on device
  /// work (StoreStats::BackendBlockingSeconds): for the file backend all
  /// of device_seconds, for the uring backend submit + CQE-wait time —
  /// the difference at equal fsync policy is the overlap the ring bought.
  double backend_blocking_seconds = 0.0;
  /// Shards whose io_uring capability probe found a working ring (zero
  /// on other backends or when the kernel/seccomp disallows io_uring).
  uint64_t uring_available = 0;
  /// Payload-write SQEs submitted during measurement (uring backend).
  uint64_t uring_submitted = 0;

  // --- Async seal pipeline (zero in synchronous mode) -----------------

  /// Group-commit fsync rounds issued by the per-shard I/O threads.
  uint64_t group_fsyncs = 0;
  /// Times a writer blocked on a full seal queue (backpressure).
  uint64_t seal_queue_stalls = 0;
  /// Open-segment checkpoint records persisted.
  uint64_t checkpoints_written = 0;
  /// Checkpoint rounds taken (periodic or barrier-driven sweeps over the
  /// open segments).
  uint64_t checkpoint_rounds = 0;
  /// Full (whole-prefix) checkpoint records among checkpoints_written.
  uint64_t checkpoint_full_records = 0;
  /// Delta (suffix-only) checkpoint records among checkpoints_written.
  uint64_t checkpoint_delta_records = 0;
  /// Device bytes spent on checkpointing alone (payload suffix or full
  /// rewrite plus the metadata record).
  uint64_t checkpoint_bytes_written = 0;
  /// Withheld-slot reuses that re-homed the slot's still-needed entries
  /// under a durable record before overwriting it.
  uint64_t withheld_slot_reuses_rehomed = 0;
  /// Withheld-slot reuses where nothing needed re-homing.
  uint64_t withheld_slot_reuses_plain = 0;

  // --- Durable-record accounting (for device-byte predictions) --------

  /// Segments sealed (user + GC) during measurement.
  uint64_t segments_sealed = 0;
  /// Victim segments reclaimed by the cleaner during measurement.
  uint64_t segments_cleaned = 0;
  /// Entries persisted under re-homing records during measurement.
  uint64_t rehome_entries_written = 0;
};

/// Builds a store for `variant` (applying its placement conventions to
/// `config`), installs the generator's exact-frequency oracle when the
/// variant needs one, and runs load -> warm-up -> measure with updates
/// drawn from `workload`. The store is destroyed on return.
RunResult RunSynthetic(const StoreConfig& config, Variant variant,
                       const WorkloadGenerator& workload, const RunSpec& spec);

/// Outcome of a parallel run over a ShardedStore.
struct ParallelRunResult {
  /// Aggregated view (status, write amplification, emptiness, fill),
  /// merged across shards — same fields as a single-threaded run.
  RunResult result;
  uint32_t threads = 0;
  uint32_t shards = 0;
  /// Wall-clock seconds spent in the measurement phase.
  double measure_seconds = 0.0;
  /// Measured logical updates per wall-clock second across all threads.
  double updates_per_second = 0.0;
  /// Per-shard measured write amplification, indexed by shard id.
  std::vector<double> shard_wamp;
};

/// Parallel counterpart of RunSynthetic: a ShardedStore with `shards`
/// shards (0 means one per thread) hammered by `threads` worker threads.
/// Each thread draws updates from `workload` with its own deterministic
/// RNG stream (seed + thread id), so a run with threads == 1 and
/// shards == 1 executes the exact update sequence of RunSynthetic and
/// reproduces its write amplification bit-for-bit — the determinism the
/// sharded-store tests pin down. The measurement phase is timed, giving
/// the throughput numbers bench/scale_threads.cc sweeps.
ParallelRunResult RunSyntheticParallel(const StoreConfig& config,
                                       Variant variant,
                                       const WorkloadGenerator& workload,
                                       const RunSpec& spec, uint32_t threads,
                                       uint32_t shards = 0);

/// Replays `trace` through a store for `variant`. Records before
/// `measure_from` (e.g. the population phase) run as warm-up; measurement
/// covers [measure_from, end). When the variant needs an oracle the
/// frequencies are pre-analysed from the measured suffix of the trace, as
/// the paper does for TPC-C (§6.3). `config` supplies the device geometry
/// (choose num_segments to hit the desired fill factor).
RunResult RunTrace(const StoreConfig& config, Variant variant,
                   const Trace& trace, size_t measure_from);

/// Parallel trace replay: the trace streams through a ShardedStore with
/// `shards` shards and one replay thread per shard. A single router
/// thread walks the trace in order and appends each record to the
/// owning shard's bounded FIFO queue (batched, with backpressure), so
/// every shard applies exactly the subsequence of records routed to it,
/// in trace order — and since a page maps to exactly one shard, per-page
/// operation order is preserved. A shard's state evolution depends only
/// on its own op subsequence, so a parallel replay produces bit-for-bit
/// the per-shard stats and final page states of a serial replay of the
/// same trace through an equally-sharded store (the determinism test
/// pins this; with shards == 1 that serial store is RunTrace's).
///
/// Measurement parity with RunTrace: the router injects a reset marker
/// at the measure_from boundary of each shard's queue, so per-shard
/// counters cover exactly the records with global index >= measure_from.
/// Timing starts when the router crosses measure_from (warm-up records
/// still in flight then are bounded by the queue depth) and ends when
/// the last shard drains, giving the updates_per_second throughput
/// numbers alongside RunSyntheticParallel's.
///
/// `presplit` (optional) is a ShardedTrace computed once by SplitTrace —
/// when its shard count matches, replay takes the zero-router fast path:
/// each shard thread streams its own pre-split sub-trace directly, with
/// no routing work, no queue hand-offs and no backpressure stalls. The
/// per-shard record subsequences are identical to what the router would
/// deliver, so results are bit-for-bit the same (the parity test pins
/// this); only the measurement clock differs — the fast path starts it
/// at a clean barrier once every shard has applied its warm-up records.
ParallelRunResult RunTraceParallel(const StoreConfig& config, Variant variant,
                                   const Trace& trace, size_t measure_from,
                                   uint32_t shards,
                                   const ShardedTrace* presplit = nullptr);

/// The replay engine under RunTraceParallel, operating on a
/// caller-created store (which the caller can then inspect — the
/// determinism tests compare per-page final state against a serial
/// replay). Runs router + per-shard replay threads as described above
/// (or the pre-split fast path when `presplit` matches);
/// `measure_seconds_out` (optional) receives the wall-clock time from
/// the measure_from boundary to the last shard draining. Returns the
/// first store error.
Status ReplayTraceParallel(ShardedStore* store, const Trace& trace,
                           size_t measure_from,
                           double* measure_seconds_out = nullptr,
                           const ShardedTrace* presplit = nullptr);

/// Convenience: a StoreConfig scaled so that `user_pages` occupy fill
/// factor `f` of the device, with trigger/batch/buffer kept at the
/// bench defaults (segment_bytes/page_bytes from `base`).
StoreConfig ScaleConfigForFill(const StoreConfig& base, uint64_t user_pages,
                               double f);

}  // namespace lss

#endif  // LSS_WORKLOAD_RUNNER_H_
