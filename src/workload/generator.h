#ifndef LSS_WORKLOAD_GENERATOR_H_
#define LSS_WORKLOAD_GENERATOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace lss {

/// A stream of page-update targets over pages {0, ..., NumPages()-1}.
/// Generators also expose the exact per-page update frequency (normalised
/// to mean 1), which the `*-opt` policy variants consume as their oracle
/// (paper §6.1.3: "uses the exact page update frequency").
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  /// Descriptive name for reports ("uniform", "hot-cold 80-20", ...).
  virtual std::string name() const = 0;

  /// Number of user-visible pages.
  virtual uint64_t NumPages() const = 0;

  /// Draws the next page to update.
  virtual PageId NextPage(Rng& rng) const = 0;

  /// Exact relative update frequency of `page`; mean over pages is 1.
  virtual double ExactFrequency(PageId page) const = 0;
};

/// Uniform updates: every page equally likely (paper §2.2, Upf = 1).
class UniformWorkload : public WorkloadGenerator {
 public:
  explicit UniformWorkload(uint64_t pages) : pages_(pages) {}

  std::string name() const override { return "uniform"; }
  uint64_t NumPages() const override { return pages_; }
  PageId NextPage(Rng& rng) const override { return rng.NextBounded(pages_); }
  double ExactFrequency(PageId) const override { return 1.0; }

 private:
  uint64_t pages_;
};

/// Two-set hot-cold distribution "m : 1-m" (paper §3): a fraction m of
/// updates goes to the first (1-m)*pages page ids, the rest to the cold
/// remainder; updates are uniform within each set.
class HotColdWorkload : public WorkloadGenerator {
 public:
  /// `m` in [0.5, 1): e.g. 0.8 for the 80:20 distribution.
  HotColdWorkload(uint64_t pages, double m);

  std::string name() const override;
  uint64_t NumPages() const override { return pages_; }
  PageId NextPage(Rng& rng) const override;
  double ExactFrequency(PageId page) const override;

  uint64_t hot_pages() const { return hot_pages_; }

 private:
  uint64_t pages_;
  double m_;
  uint64_t hot_pages_;
  double hot_freq_;   // m / (1-m)
  double cold_freq_;  // (1-m) / m
};

/// Scan flood: rounds of `point_ops_per_sweep` scrambled-Zipf point
/// updates followed by one full sequential sweep of the page space — the
/// adversarial pattern for recency-based caching (a one-pass scan evicts
/// an LRU pool's entire hot set; 2Q's probationary queue shields it).
/// Built for bench/buffer_pool's scan-resistance panel.
///
/// The schedule is a pure function of a global operation counter (phase
/// and scan cursor both derive from op mod round length), so the stream
/// is deterministic when drawn single-threaded and remains well-defined
/// — each op is either one Zipf draw or one scan position — when
/// multiple threads share the generator.
class ScanFloodWorkload : public WorkloadGenerator {
 public:
  ScanFloodWorkload(uint64_t pages, double theta,
                    uint64_t point_ops_per_sweep);

  std::string name() const override { return "scan-flood"; }
  uint64_t NumPages() const override { return pages_; }
  PageId NextPage(Rng& rng) const override;
  double ExactFrequency(PageId page) const override {
    return exact_freq_[page];
  }

  uint64_t point_ops_per_sweep() const { return point_run_; }

 private:
  uint64_t pages_;
  uint64_t point_run_;  // point ops preceding each sweep
  ScrambledZipfGenerator gen_;
  std::vector<double> exact_freq_;
  mutable std::atomic<uint64_t> op_{0};
};

}  // namespace lss

#endif  // LSS_WORKLOAD_GENERATOR_H_
