#include "workload/runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <thread>

namespace lss {

namespace {

RunResult Fail(Status s, const std::string& variant) {
  RunResult r;
  r.status = std::move(s);
  r.variant = variant;
  return r;
}

void FillDeviceMetrics(const StoreStats& stats, RunResult* r) {
  r->device_bytes_written = stats.device_bytes_written;
  r->device_bytes_per_user_byte = stats.DeviceBytesPerUserByte();
  r->device_seconds = stats.DeviceSeconds();
  r->device_fsyncs = stats.device_fsyncs;
  r->group_fsyncs = stats.group_fsyncs;
  r->seal_queue_stalls = stats.seal_queue_stalls;
  r->checkpoints_written = stats.checkpoints_written;
}

ParallelRunResult FailParallel(Status s, const std::string& variant,
                               uint32_t threads, uint32_t shards) {
  ParallelRunResult r;
  r.result = Fail(std::move(s), variant);
  r.threads = threads;
  r.shards = shards;
  return r;
}

// Runs fn(thread_id) on `threads` workers and returns the first non-OK
// status. With one thread the call is inlined on the caller's thread, so
// a threads == 1 run has no scheduling nondeterminism at all.
Status RunOnThreads(uint32_t threads, const std::function<Status(uint32_t)>& fn) {
  if (threads <= 1) return fn(0);
  std::vector<Status> statuses(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&statuses, &fn, t] { statuses[t] = fn(t); });
  }
  for (std::thread& th : pool) th.join();
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace

StoreConfig ScaleConfigForFill(const StoreConfig& base, uint64_t user_pages,
                               double f) {
  StoreConfig cfg = base;
  const uint64_t pages_per_seg = cfg.segment_bytes / cfg.page_bytes;
  const double phys_pages = static_cast<double>(user_pages) / f;
  cfg.num_segments = static_cast<uint32_t>(
      std::llround(phys_pages / static_cast<double>(pages_per_seg)));
  if (cfg.num_segments < 8) cfg.num_segments = 8;
  return cfg;
}

RunResult RunSynthetic(const StoreConfig& config, Variant variant,
                       const WorkloadGenerator& workload,
                       const RunSpec& spec) {
  const std::string label = VariantName(variant);
  StoreConfig cfg = config;
  ApplyVariantConfig(variant, &cfg);

  Status status;
  auto store = LogStructuredStore::Create(cfg, MakePolicy(variant), &status);
  if (store == nullptr) return Fail(status, label);

  if (VariantNeedsOracle(variant)) {
    store->SetExactFrequencyOracle(
        [&workload](PageId p) { return workload.ExactFrequency(p); });
  }

  const uint64_t user_pages = std::min<uint64_t>(
      workload.NumPages(),
      cfg.UserPagesForFillFactor(spec.fill_factor));
  if (user_pages < workload.NumPages()) {
    return Fail(Status::InvalidArgument(
                    "device too small for workload at this fill factor"),
                label);
  }

  Rng rng(spec.seed);

  // Load phase: first write of every page.
  for (PageId p = 0; p < user_pages; ++p) {
    Status s = store->Write(p);
    if (!s.ok()) return Fail(s, label);
  }

  const uint64_t warm = static_cast<uint64_t>(
      spec.warmup_multiplier * static_cast<double>(user_pages));
  for (uint64_t i = 0; i < warm; ++i) {
    Status s = store->Write(workload.NextPage(rng));
    if (!s.ok()) return Fail(s, label);
  }

  store->ResetMeasurement();
  const uint64_t measure = static_cast<uint64_t>(
      spec.measure_multiplier * static_cast<double>(user_pages));
  for (uint64_t i = 0; i < measure; ++i) {
    Status s = store->Write(workload.NextPage(rng));
    if (!s.ok()) return Fail(s, label);
  }

  // Snapshot, not stats(): with async_seal the device counters live on
  // the I/O thread until merged.
  const StoreStats stats = store->StatsSnapshot();
  RunResult r;
  r.status = Status::OK();
  r.variant = label;
  r.wamp = stats.WriteAmplification();
  r.mean_clean_emptiness = stats.MeanCleanEmptiness();
  r.measured_updates = stats.user_updates;
  r.effective_fill = store->CurrentFillFactor();
  FillDeviceMetrics(stats, &r);
  return r;
}

ParallelRunResult RunSyntheticParallel(const StoreConfig& config,
                                       Variant variant,
                                       const WorkloadGenerator& workload,
                                       const RunSpec& spec, uint32_t threads,
                                       uint32_t shards) {
  const std::string label = VariantName(variant);
  if (threads < 1) threads = 1;
  if (shards == 0) shards = threads;
  StoreConfig cfg = config;
  ApplyVariantConfig(variant, &cfg);

  Status status;
  auto store = ShardedStore::Create(
      cfg, shards, [variant] { return MakePolicy(variant); }, &status);
  if (store == nullptr) return FailParallel(status, label, threads, shards);

  if (VariantNeedsOracle(variant)) {
    store->SetExactFrequencyOracle(
        [&workload](PageId p) { return workload.ExactFrequency(p); });
  }

  // Fill-factor sizing uses the *effective* device: Create drops the
  // division remainder, so num_segments/shards*shards, not num_segments.
  const uint64_t device_pages =
      static_cast<uint64_t>(store->shard_config().num_segments) * shards *
      store->shard_config().PagesPerSegment();
  const uint64_t user_pages = std::min<uint64_t>(
      workload.NumPages(),
      static_cast<uint64_t>(spec.fill_factor *
                            static_cast<double>(device_pages)));
  if (user_pages < workload.NumPages()) {
    return FailParallel(Status::InvalidArgument(
                            "device too small for workload at this fill factor"),
                        label, threads, shards);
  }

  // One RNG stream per thread; thread 0 uses the spec seed unchanged so a
  // 1-thread run draws the exact sequence RunSynthetic would.
  std::vector<Rng> rngs;
  rngs.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    rngs.emplace_back(spec.seed + t * 0x9E3779B97F4A7C15ull);
  }

  // Load phase: first write of every page, contiguous ranges per thread.
  Status s = RunOnThreads(threads, [&](uint32_t t) -> Status {
    const PageId begin = user_pages * t / threads;
    const PageId end = user_pages * (t + 1) / threads;
    for (PageId p = begin; p < end; ++p) {
      Status st = store->Write(p);
      if (!st.ok()) return st;
    }
    return Status::OK();
  });
  if (!s.ok()) return FailParallel(s, label, threads, shards);

  auto update_phase = [&](uint64_t total) {
    return RunOnThreads(threads, [&](uint32_t t) -> Status {
      const uint64_t begin = total * t / threads;
      const uint64_t end = total * (t + 1) / threads;
      Rng& rng = rngs[t];
      for (uint64_t i = begin; i < end; ++i) {
        Status st = store->Write(workload.NextPage(rng));
        if (!st.ok()) return st;
      }
      return Status::OK();
    });
  };

  const uint64_t warm = static_cast<uint64_t>(
      spec.warmup_multiplier * static_cast<double>(user_pages));
  s = update_phase(warm);
  if (!s.ok()) return FailParallel(s, label, threads, shards);

  store->ResetMeasurement();
  const uint64_t measure = static_cast<uint64_t>(
      spec.measure_multiplier * static_cast<double>(user_pages));
  const auto t0 = std::chrono::steady_clock::now();
  s = update_phase(measure);
  const auto t1 = std::chrono::steady_clock::now();
  if (!s.ok()) return FailParallel(s, label, threads, shards);

  const StoreStats total = store->AggregatedStats();
  ParallelRunResult pr;
  pr.threads = threads;
  pr.shards = shards;
  pr.measure_seconds = std::chrono::duration<double>(t1 - t0).count();
  pr.updates_per_second =
      pr.measure_seconds > 0
          ? static_cast<double>(total.user_updates) / pr.measure_seconds
          : 0.0;
  pr.shard_wamp = store->PerShardWriteAmplification();
  pr.result.status = Status::OK();
  pr.result.variant = label;
  pr.result.wamp = total.WriteAmplification();
  pr.result.mean_clean_emptiness = total.MeanCleanEmptiness();
  pr.result.measured_updates = total.user_updates;
  pr.result.effective_fill = store->CurrentFillFactor();
  FillDeviceMetrics(total, &pr.result);
  return pr;
}

RunResult RunTrace(const StoreConfig& config, Variant variant,
                   const Trace& trace, size_t measure_from) {
  const std::string label = VariantName(variant);
  StoreConfig cfg = config;
  ApplyVariantConfig(variant, &cfg);

  Status status;
  auto store = LogStructuredStore::Create(cfg, MakePolicy(variant), &status);
  if (store == nullptr) return Fail(status, label);

  std::vector<double> freqs;
  if (VariantNeedsOracle(variant)) {
    freqs = trace.ComputeExactFrequencies(measure_from, trace.Size());
    store->SetExactFrequencyOracle([freqs = std::move(freqs)](PageId p) {
      return p < freqs.size() ? freqs[p] : 1.0;
    });
  }

  const auto& recs = trace.records();
  measure_from = std::min(measure_from, recs.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    if (i == measure_from) store->ResetMeasurement();
    const TraceRecord& rec = recs[i];
    Status s;
    if (rec.op == TraceRecord::Op::kWrite) {
      s = store->Write(rec.page, rec.bytes);
    } else {
      s = store->Delete(rec.page);
      if (s.code() == Status::Code::kNotFound) s = Status::OK();
    }
    if (!s.ok()) return Fail(s, label);
  }

  const StoreStats stats = store->StatsSnapshot();
  RunResult r;
  r.status = Status::OK();
  r.variant = label;
  r.wamp = stats.WriteAmplification();
  r.mean_clean_emptiness = stats.MeanCleanEmptiness();
  r.measured_updates = stats.user_updates;
  r.effective_fill = store->CurrentFillFactor();
  FillDeviceMetrics(stats, &r);
  return r;
}

}  // namespace lss
