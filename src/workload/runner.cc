#include "workload/runner.h"

#include <algorithm>
#include <cmath>

namespace lss {

namespace {

RunResult Fail(Status s, const std::string& variant) {
  RunResult r;
  r.status = std::move(s);
  r.variant = variant;
  return r;
}

}  // namespace

StoreConfig ScaleConfigForFill(const StoreConfig& base, uint64_t user_pages,
                               double f) {
  StoreConfig cfg = base;
  const uint64_t pages_per_seg = cfg.segment_bytes / cfg.page_bytes;
  const double phys_pages = static_cast<double>(user_pages) / f;
  cfg.num_segments = static_cast<uint32_t>(
      std::llround(phys_pages / static_cast<double>(pages_per_seg)));
  if (cfg.num_segments < 8) cfg.num_segments = 8;
  return cfg;
}

RunResult RunSynthetic(const StoreConfig& config, Variant variant,
                       const WorkloadGenerator& workload,
                       const RunSpec& spec) {
  const std::string label = VariantName(variant);
  StoreConfig cfg = config;
  ApplyVariantConfig(variant, &cfg);

  Status status;
  auto store = LogStructuredStore::Create(cfg, MakePolicy(variant), &status);
  if (store == nullptr) return Fail(status, label);

  if (VariantNeedsOracle(variant)) {
    store->SetExactFrequencyOracle(
        [&workload](PageId p) { return workload.ExactFrequency(p); });
  }

  const uint64_t user_pages = std::min<uint64_t>(
      workload.NumPages(),
      cfg.UserPagesForFillFactor(spec.fill_factor));
  if (user_pages < workload.NumPages()) {
    return Fail(Status::InvalidArgument(
                    "device too small for workload at this fill factor"),
                label);
  }

  Rng rng(spec.seed);

  // Load phase: first write of every page.
  for (PageId p = 0; p < user_pages; ++p) {
    Status s = store->Write(p);
    if (!s.ok()) return Fail(s, label);
  }

  const uint64_t warm = static_cast<uint64_t>(
      spec.warmup_multiplier * static_cast<double>(user_pages));
  for (uint64_t i = 0; i < warm; ++i) {
    Status s = store->Write(workload.NextPage(rng));
    if (!s.ok()) return Fail(s, label);
  }

  store->mutable_stats().ResetMeasurement();
  const uint64_t measure = static_cast<uint64_t>(
      spec.measure_multiplier * static_cast<double>(user_pages));
  for (uint64_t i = 0; i < measure; ++i) {
    Status s = store->Write(workload.NextPage(rng));
    if (!s.ok()) return Fail(s, label);
  }

  RunResult r;
  r.status = Status::OK();
  r.variant = label;
  r.wamp = store->stats().WriteAmplification();
  r.mean_clean_emptiness = store->stats().MeanCleanEmptiness();
  r.measured_updates = store->stats().user_updates;
  r.effective_fill = store->CurrentFillFactor();
  return r;
}

RunResult RunTrace(const StoreConfig& config, Variant variant,
                   const Trace& trace, size_t measure_from) {
  const std::string label = VariantName(variant);
  StoreConfig cfg = config;
  ApplyVariantConfig(variant, &cfg);

  Status status;
  auto store = LogStructuredStore::Create(cfg, MakePolicy(variant), &status);
  if (store == nullptr) return Fail(status, label);

  std::vector<double> freqs;
  if (VariantNeedsOracle(variant)) {
    freqs = trace.ComputeExactFrequencies(measure_from, trace.Size());
    store->SetExactFrequencyOracle([freqs = std::move(freqs)](PageId p) {
      return p < freqs.size() ? freqs[p] : 1.0;
    });
  }

  const auto& recs = trace.records();
  measure_from = std::min(measure_from, recs.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    if (i == measure_from) store->mutable_stats().ResetMeasurement();
    const TraceRecord& rec = recs[i];
    Status s;
    if (rec.op == TraceRecord::Op::kWrite) {
      s = store->Write(rec.page, rec.bytes);
    } else {
      s = store->Delete(rec.page);
      if (s.code() == Status::Code::kNotFound) s = Status::OK();
    }
    if (!s.ok()) return Fail(s, label);
  }

  RunResult r;
  r.status = Status::OK();
  r.variant = label;
  r.wamp = store->stats().WriteAmplification();
  r.mean_clean_emptiness = store->stats().MeanCleanEmptiness();
  r.measured_updates = store->stats().user_updates;
  r.effective_fill = store->CurrentFillFactor();
  return r;
}

}  // namespace lss
