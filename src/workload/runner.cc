#include "workload/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace lss {

namespace {

RunResult Fail(Status s, const std::string& variant) {
  RunResult r;
  r.status = std::move(s);
  r.variant = variant;
  return r;
}

void FillDeviceMetrics(const StoreStats& stats, RunResult* r) {
  r->device_bytes_written = stats.device_bytes_written;
  r->device_bytes_per_user_byte = stats.DeviceBytesPerUserByte();
  r->device_seconds = stats.DeviceSeconds();
  r->device_fsyncs = stats.device_fsyncs;
  r->backend_blocking_seconds = stats.BackendBlockingSeconds();
  r->uring_available = stats.uring_available;
  r->uring_submitted = stats.uring_submitted;
  r->group_fsyncs = stats.group_fsyncs;
  r->seal_queue_stalls = stats.seal_queue_stalls;
  r->checkpoints_written = stats.checkpoints_written;
  r->checkpoint_rounds = stats.checkpoint_rounds;
  r->checkpoint_full_records = stats.checkpoint_full_records;
  r->checkpoint_delta_records = stats.checkpoint_delta_records;
  r->checkpoint_bytes_written = stats.checkpoint_bytes_written;
  r->withheld_slot_reuses_rehomed = stats.withheld_slot_reuses_rehomed;
  r->withheld_slot_reuses_plain = stats.withheld_slot_reuses_plain;
  r->segments_sealed = stats.user_segments_sealed + stats.gc_segments_sealed;
  r->segments_cleaned = stats.segments_cleaned;
  r->rehome_entries_written = stats.rehome_entries_written;
}

ParallelRunResult FailParallel(Status s, const std::string& variant,
                               uint32_t threads, uint32_t shards) {
  ParallelRunResult r;
  r.result = Fail(std::move(s), variant);
  r.threads = threads;
  r.shards = shards;
  return r;
}

// One shard's replay feed: a bounded FIFO of record batches with a
// single producer (the router) and a single consumer (the shard's
// replay thread). Bounded so the router cannot run arbitrarily far
// ahead of a slow shard (backpressure), batched so the lock is paid
// once per kBatchRecords rather than once per record.
class ReplayQueue {
 public:
  static constexpr size_t kBatchRecords = 256;
  static constexpr size_t kMaxBatches = 16;

  struct Batch {
    // Reset the shard's measurement counters before applying `recs`
    // (the router injects this exactly at the measure_from boundary).
    bool reset_before = false;
    std::vector<TraceRecord> recs;
  };

  void Push(Batch&& b) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_space_.wait(lk, [this] { return q_.size() < kMaxBatches; });
    q_.push_back(std::move(b));
    cv_data_.notify_one();
  }

  void Close() {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
    cv_data_.notify_one();
  }

  // False once the queue is closed and drained.
  bool Pop(Batch* out) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_data_.wait(lk, [this] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    *out = std::move(q_.front());
    q_.pop_front();
    cv_space_.notify_one();
    return true;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_data_;
  std::condition_variable cv_space_;
  std::deque<Batch> q_;
  bool closed_ = false;
};

// Runs fn(thread_id) on `threads` workers and returns the first non-OK
// status. With one thread the call is inlined on the caller's thread, so
// a threads == 1 run has no scheduling nondeterminism at all.
Status RunOnThreads(uint32_t threads, const std::function<Status(uint32_t)>& fn) {
  if (threads <= 1) return fn(0);
  std::vector<Status> statuses(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&statuses, &fn, t] { statuses[t] = fn(t); });
  }
  for (std::thread& th : pool) th.join();
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace

StoreConfig ScaleConfigForFill(const StoreConfig& base, uint64_t user_pages,
                               double f) {
  StoreConfig cfg = base;
  const uint64_t pages_per_seg = cfg.segment_bytes / cfg.page_bytes;
  const double phys_pages = static_cast<double>(user_pages) / f;
  cfg.num_segments = static_cast<uint32_t>(
      std::llround(phys_pages / static_cast<double>(pages_per_seg)));
  if (cfg.num_segments < 8) cfg.num_segments = 8;
  return cfg;
}

RunResult RunSynthetic(const StoreConfig& config, Variant variant,
                       const WorkloadGenerator& workload,
                       const RunSpec& spec) {
  const std::string label = VariantName(variant);
  StoreConfig cfg = config;
  ApplyVariantConfig(variant, &cfg);

  Status status;
  auto store = LogStructuredStore::Create(cfg, MakePolicy(variant), &status);
  if (store == nullptr) return Fail(status, label);

  if (VariantNeedsOracle(variant)) {
    store->SetExactFrequencyOracle(
        [&workload](PageId p) { return workload.ExactFrequency(p); });
  }

  const uint64_t user_pages = std::min<uint64_t>(
      workload.NumPages(),
      cfg.UserPagesForFillFactor(spec.fill_factor));
  if (user_pages < workload.NumPages()) {
    return Fail(Status::InvalidArgument(
                    "device too small for workload at this fill factor"),
                label);
  }

  Rng rng(spec.seed);

  // Load phase: first write of every page.
  for (PageId p = 0; p < user_pages; ++p) {
    Status s = store->Write(p);
    if (!s.ok()) return Fail(s, label);
  }

  const uint64_t warm = static_cast<uint64_t>(
      spec.warmup_multiplier * static_cast<double>(user_pages));
  for (uint64_t i = 0; i < warm; ++i) {
    Status s = store->Write(workload.NextPage(rng));
    if (!s.ok()) return Fail(s, label);
  }

  store->ResetMeasurement();
  const uint64_t measure = static_cast<uint64_t>(
      spec.measure_multiplier * static_cast<double>(user_pages));
  for (uint64_t i = 0; i < measure; ++i) {
    Status s = store->Write(workload.NextPage(rng));
    if (!s.ok()) return Fail(s, label);
  }

  // Snapshot, not stats(): with async_seal the device counters live on
  // the I/O thread until merged.
  const StoreStats stats = store->StatsSnapshot();
  RunResult r;
  r.status = Status::OK();
  r.variant = label;
  r.wamp = stats.WriteAmplification();
  r.mean_clean_emptiness = stats.MeanCleanEmptiness();
  r.measured_updates = stats.user_updates;
  r.effective_fill = store->CurrentFillFactor();
  FillDeviceMetrics(stats, &r);
  return r;
}

ParallelRunResult RunSyntheticParallel(const StoreConfig& config,
                                       Variant variant,
                                       const WorkloadGenerator& workload,
                                       const RunSpec& spec, uint32_t threads,
                                       uint32_t shards) {
  const std::string label = VariantName(variant);
  if (threads < 1) threads = 1;
  if (shards == 0) shards = threads;
  StoreConfig cfg = config;
  ApplyVariantConfig(variant, &cfg);

  Status status;
  auto store = ShardedStore::Create(
      cfg, shards, [variant] { return MakePolicy(variant); }, &status);
  if (store == nullptr) return FailParallel(status, label, threads, shards);

  if (VariantNeedsOracle(variant)) {
    store->SetExactFrequencyOracle(
        [&workload](PageId p) { return workload.ExactFrequency(p); });
  }

  // Fill-factor sizing uses the *effective* device: Create drops the
  // division remainder, so num_segments/shards*shards, not num_segments.
  const uint64_t device_pages =
      static_cast<uint64_t>(store->shard_config().num_segments) * shards *
      store->shard_config().PagesPerSegment();
  const uint64_t user_pages = std::min<uint64_t>(
      workload.NumPages(),
      static_cast<uint64_t>(spec.fill_factor *
                            static_cast<double>(device_pages)));
  if (user_pages < workload.NumPages()) {
    return FailParallel(Status::InvalidArgument(
                            "device too small for workload at this fill factor"),
                        label, threads, shards);
  }

  // One RNG stream per thread; thread 0 uses the spec seed unchanged so a
  // 1-thread run draws the exact sequence RunSynthetic would.
  std::vector<Rng> rngs;
  rngs.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    rngs.emplace_back(spec.seed + t * 0x9E3779B97F4A7C15ull);
  }

  // Load phase: first write of every page, contiguous ranges per thread.
  Status s = RunOnThreads(threads, [&](uint32_t t) -> Status {
    const PageId begin = user_pages * t / threads;
    const PageId end = user_pages * (t + 1) / threads;
    for (PageId p = begin; p < end; ++p) {
      Status st = store->Write(p);
      if (!st.ok()) return st;
    }
    return Status::OK();
  });
  if (!s.ok()) return FailParallel(s, label, threads, shards);

  auto update_phase = [&](uint64_t total) {
    return RunOnThreads(threads, [&](uint32_t t) -> Status {
      const uint64_t begin = total * t / threads;
      const uint64_t end = total * (t + 1) / threads;
      Rng& rng = rngs[t];
      for (uint64_t i = begin; i < end; ++i) {
        Status st = store->Write(workload.NextPage(rng));
        if (!st.ok()) return st;
      }
      return Status::OK();
    });
  };

  const uint64_t warm = static_cast<uint64_t>(
      spec.warmup_multiplier * static_cast<double>(user_pages));
  s = update_phase(warm);
  if (!s.ok()) return FailParallel(s, label, threads, shards);

  store->ResetMeasurement();
  const uint64_t measure = static_cast<uint64_t>(
      spec.measure_multiplier * static_cast<double>(user_pages));
  const auto t0 = std::chrono::steady_clock::now();
  s = update_phase(measure);
  const auto t1 = std::chrono::steady_clock::now();
  if (!s.ok()) return FailParallel(s, label, threads, shards);

  const StoreStats total = store->AggregatedStats();
  ParallelRunResult pr;
  pr.threads = threads;
  pr.shards = shards;
  pr.measure_seconds = std::chrono::duration<double>(t1 - t0).count();
  pr.updates_per_second =
      pr.measure_seconds > 0
          ? static_cast<double>(total.user_updates) / pr.measure_seconds
          : 0.0;
  pr.shard_wamp = store->PerShardWriteAmplification();
  pr.result.status = Status::OK();
  pr.result.variant = label;
  pr.result.wamp = total.WriteAmplification();
  pr.result.mean_clean_emptiness = total.MeanCleanEmptiness();
  pr.result.measured_updates = total.user_updates;
  pr.result.effective_fill = store->CurrentFillFactor();
  FillDeviceMetrics(total, &pr.result);
  return pr;
}

RunResult RunTrace(const StoreConfig& config, Variant variant,
                   const Trace& trace, size_t measure_from) {
  const std::string label = VariantName(variant);
  StoreConfig cfg = config;
  ApplyVariantConfig(variant, &cfg);

  Status status;
  auto store = LogStructuredStore::Create(cfg, MakePolicy(variant), &status);
  if (store == nullptr) return Fail(status, label);

  std::vector<double> freqs;
  if (VariantNeedsOracle(variant)) {
    freqs = trace.ComputeExactFrequencies(measure_from, trace.Size());
    store->SetExactFrequencyOracle([freqs = std::move(freqs)](PageId p) {
      return p < freqs.size() ? freqs[p] : 1.0;
    });
  }

  const auto& recs = trace.records();
  measure_from = std::min(measure_from, recs.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    if (i == measure_from) store->ResetMeasurement();
    const TraceRecord& rec = recs[i];
    Status s;
    if (rec.op == TraceRecord::Op::kWrite) {
      s = store->Write(rec.page, rec.bytes);
    } else {
      s = store->Delete(rec.page);
      if (s.code() == Status::Code::kNotFound) s = Status::OK();
    }
    if (!s.ok()) return Fail(s, label);
  }

  const StoreStats stats = store->StatsSnapshot();
  RunResult r;
  r.status = Status::OK();
  r.variant = label;
  r.wamp = stats.WriteAmplification();
  r.mean_clean_emptiness = stats.MeanCleanEmptiness();
  r.measured_updates = stats.user_updates;
  r.effective_fill = store->CurrentFillFactor();
  FillDeviceMetrics(stats, &r);
  return r;
}

namespace {

// Zero-router fast path: each shard thread streams its pre-split
// sub-trace. A barrier at the measurement boundary replaces the router's
// in-band reset markers: every shard finishes its warm-up records, the
// last arrival stamps t0, then all shards reset counters and apply their
// measured suffix. Per-shard record subsequences are exactly the
// router's, so stats and final state match it bit-for-bit.
Status ReplayPresplitParallel(ShardedStore* store, const ShardedTrace& st,
                              double* measure_seconds_out) {
  const uint32_t shards = store->num_shards();
  std::vector<Status> statuses(shards);
  std::mutex mu;
  std::condition_variable cv;
  uint32_t arrived = 0;
  std::chrono::steady_clock::time_point t0{};

  auto shard_fn = [&](uint32_t s) {
    const auto& recs = st.sub[s].records();
    const size_t boundary = std::min(st.measure_from[s], recs.size());
    auto apply = [&](size_t begin, size_t end) -> Status {
      for (size_t i = begin; i < end; ++i) {
        const TraceRecord& rec = recs[i];
        Status r;
        if (rec.op == TraceRecord::Op::kWrite) {
          r = store->Write(rec.page, rec.bytes);
        } else {
          r = store->Delete(rec.page);
          if (r.code() == Status::Code::kNotFound) r = Status::OK();
        }
        if (!r.ok()) return r;
      }
      return Status::OK();
    };
    statuses[s] = apply(0, boundary);
    {
      // Always arrive, even after a failure — a missing arrival would
      // deadlock the other shards.
      std::unique_lock<std::mutex> lk(mu);
      if (++arrived == shards) {
        t0 = std::chrono::steady_clock::now();
        cv.notify_all();
      } else {
        cv.wait(lk, [&] { return arrived == shards; });
      }
    }
    store->WithShardLocked(s,
                           [](StoreShard& shard) { shard.ResetMeasurement(); });
    if (statuses[s].ok()) statuses[s] = apply(boundary, recs.size());
  };

  Status s = RunOnThreads(shards, [&](uint32_t t) -> Status {
    shard_fn(t);
    return Status::OK();
  });
  (void)s;
  if (measure_seconds_out != nullptr) {
    *measure_seconds_out =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  for (const Status& st_s : statuses) {
    if (!st_s.ok()) return st_s;
  }
  return Status::OK();
}

}  // namespace

Status ReplayTraceParallel(ShardedStore* store, const Trace& trace,
                           size_t measure_from,
                           double* measure_seconds_out,
                           const ShardedTrace* presplit) {
  const uint32_t shards = store->num_shards();
  if (presplit != nullptr && presplit->Valid() && presplit->shards == shards) {
    return ReplayPresplitParallel(store, *presplit, measure_seconds_out);
  }
  const auto& recs = trace.records();
  measure_from = std::min(measure_from, recs.size());

  std::vector<ReplayQueue> queues(shards);
  std::vector<Status> statuses(shards);
  std::atomic<bool> failed{false};

  // One replay thread per shard: applies its queue's batches in FIFO
  // order. On a store error it keeps draining (so the router never
  // blocks on a full queue) but stops applying.
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    workers.emplace_back([&, s] {
      ReplayQueue::Batch batch;
      while (queues[s].Pop(&batch)) {
        if (batch.reset_before) {
          store->WithShardLocked(
              s, [](StoreShard& shard) { shard.ResetMeasurement(); });
        }
        if (failed.load(std::memory_order_relaxed)) continue;
        for (const TraceRecord& rec : batch.recs) {
          Status st;
          if (rec.op == TraceRecord::Op::kWrite) {
            st = store->Write(rec.page, rec.bytes);
          } else {
            st = store->Delete(rec.page);
            if (st.code() == Status::Code::kNotFound) st = Status::OK();
          }
          if (!st.ok()) {
            statuses[s] = st;
            failed.store(true, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }

  // The router: walk the trace in order, stage each record for its
  // owning shard, flush batches as they fill. Per-shard FIFO + a single
  // router = per-page order preserved.
  std::vector<ReplayQueue::Batch> staging(shards);
  auto flush = [&](uint32_t s) {
    if (staging[s].recs.empty() && !staging[s].reset_before) return;
    queues[s].Push(std::move(staging[s]));
    staging[s] = ReplayQueue::Batch();
  };

  std::chrono::steady_clock::time_point t0{};
  bool boundary_reached = false;
  for (size_t i = 0; i < recs.size(); ++i) {
    if (i == measure_from) {
      // Boundary: everything staged so far precedes the marker, and the
      // marker reaches every shard even if no further record routes to
      // it.
      for (uint32_t s = 0; s < shards; ++s) {
        flush(s);
        staging[s].reset_before = true;
        flush(s);
      }
      t0 = std::chrono::steady_clock::now();
      boundary_reached = true;
    }
    if (failed.load(std::memory_order_relaxed)) break;
    const uint32_t s = PageShard(recs[i].page, shards);
    staging[s].recs.push_back(recs[i]);
    if (staging[s].recs.size() >= ReplayQueue::kBatchRecords) flush(s);
  }
  for (uint32_t s = 0; s < shards; ++s) {
    if (measure_from == recs.size()) {
      // Degenerate boundary at end-of-trace: still deliver the reset.
      flush(s);
      staging[s].reset_before = true;
    }
    flush(s);
    queues[s].Close();
  }
  if (measure_from == recs.size()) {
    t0 = std::chrono::steady_clock::now();
    boundary_reached = true;
  }
  for (std::thread& th : workers) th.join();
  const auto t1 = std::chrono::steady_clock::now();
  if (measure_seconds_out != nullptr) {
    // 0 when a failure stopped the router before the boundary — never
    // the garbage a default-constructed t0 would produce.
    *measure_seconds_out =
        boundary_reached ? std::chrono::duration<double>(t1 - t0).count()
                         : 0.0;
  }

  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

ParallelRunResult RunTraceParallel(const StoreConfig& config, Variant variant,
                                   const Trace& trace, size_t measure_from,
                                   uint32_t shards,
                                   const ShardedTrace* presplit) {
  const std::string label = VariantName(variant);
  if (shards < 1) shards = 1;
  StoreConfig cfg = config;
  ApplyVariantConfig(variant, &cfg);

  Status status;
  auto store = ShardedStore::Create(
      cfg, shards, [variant] { return MakePolicy(variant); }, &status);
  if (store == nullptr) return FailParallel(status, label, shards, shards);

  std::vector<double> freqs;
  if (VariantNeedsOracle(variant)) {
    freqs = trace.ComputeExactFrequencies(measure_from, trace.Size());
    store->SetExactFrequencyOracle([freqs = std::move(freqs)](PageId p) {
      return p < freqs.size() ? freqs[p] : 1.0;
    });
  }

  double measure_seconds = 0.0;
  Status s = ReplayTraceParallel(store.get(), trace, measure_from,
                                 &measure_seconds, presplit);
  if (!s.ok()) return FailParallel(s, label, shards, shards);

  const StoreStats total = store->AggregatedStats();
  ParallelRunResult pr;
  pr.threads = shards;
  pr.shards = shards;
  pr.measure_seconds = measure_seconds;
  pr.updates_per_second =
      pr.measure_seconds > 0
          ? static_cast<double>(total.user_updates) / pr.measure_seconds
          : 0.0;
  pr.shard_wamp = store->PerShardWriteAmplification();
  pr.result.status = Status::OK();
  pr.result.variant = label;
  pr.result.wamp = total.WriteAmplification();
  pr.result.mean_clean_emptiness = total.MeanCleanEmptiness();
  pr.result.measured_updates = total.user_updates;
  pr.result.effective_fill = store->CurrentFillFactor();
  FillDeviceMetrics(total, &pr.result);
  return pr;
}

}  // namespace lss
