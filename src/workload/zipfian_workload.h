#ifndef LSS_WORKLOAD_ZIPFIAN_WORKLOAD_H_
#define LSS_WORKLOAD_ZIPFIAN_WORKLOAD_H_

#include <string>
#include <vector>

#include "util/zipf.h"
#include "workload/generator.h"

namespace lss {

/// Scrambled Zipfian page updates (paper §6.2.2): "the 80-20 Zipfian
/// distribution (Zipfian factor 0.99) and the 90-10 Zipfian distribution
/// (Zipfian factor 1.35)". Ranks are scattered across the page space by a
/// stateless hash, so hot pages are not id-adjacent. Because the scatter
/// can collide, the exact per-page frequency table is computed from the
/// actual rank->page mapping at construction (it is what the *-opt
/// variants feed on, so it must match the sampler exactly).
class ZipfianWorkload : public WorkloadGenerator {
 public:
  ZipfianWorkload(uint64_t pages, double theta);

  std::string name() const override;
  uint64_t NumPages() const override { return pages_; }
  PageId NextPage(Rng& rng) const override {
    return gen_.Next(rng);
  }
  double ExactFrequency(PageId page) const override {
    return exact_freq_[page];
  }

  double theta() const { return theta_; }

 private:
  uint64_t pages_;
  double theta_;
  ScrambledZipfGenerator gen_;
  std::vector<double> exact_freq_;
};

}  // namespace lss

#endif  // LSS_WORKLOAD_ZIPFIAN_WORKLOAD_H_
