#include "workload/trace.h"

#include <algorithm>
#include <cstdio>

#include "core/store_shard.h"

namespace lss {

namespace {
constexpr uint64_t kTraceMagic = 0x4c53535452414345ULL;  // "LSSTRACE"
constexpr uint32_t kTraceVersion = 1;
}  // namespace

PageId Trace::MaxPageId() const {
  PageId max_id = 0;
  bool any = false;
  for (const TraceRecord& r : records_) {
    if (r.page == kInvalidPage) continue;
    any = true;
    if (r.page >= max_id) max_id = r.page + 1;
  }
  return any ? max_id : 0;
}

std::vector<double> Trace::ComputeExactFrequencies(size_t begin,
                                                   size_t end) const {
  if (end > records_.size()) end = records_.size();
  const PageId n = MaxPageId();
  std::vector<double> freq(n, 0.0);
  uint64_t writes = 0;
  uint64_t touched = 0;
  for (size_t i = begin; i < end; ++i) {
    const TraceRecord& r = records_[i];
    if (r.op != TraceRecord::Op::kWrite) continue;
    if (freq[r.page] == 0.0) ++touched;
    freq[r.page] += 1.0;
    ++writes;
  }
  if (writes == 0 || touched == 0) return freq;
  // Normalise to mean 1 over pages that appear; untouched pages keep a
  // tiny positive value so the oracle never reports "never updated" for a
  // page the replay does write (e.g. during the load prefix).
  const double scale = static_cast<double>(touched) /
                       static_cast<double>(writes);
  double min_pos = 1.0;
  for (double& f : freq) {
    f *= scale;
    if (f > 0.0 && f < min_pos) min_pos = f;
  }
  for (double& f : freq) {
    if (f == 0.0) f = min_pos * 0.5;
  }
  return freq;
}

bool Trace::SaveTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = true;
  const uint64_t count = records_.size();
  ok = ok && std::fwrite(&kTraceMagic, sizeof(kTraceMagic), 1, f) == 1;
  ok = ok && std::fwrite(&kTraceVersion, sizeof(kTraceVersion), 1, f) == 1;
  ok = ok && std::fwrite(&count, sizeof(count), 1, f) == 1;
  for (const TraceRecord& r : records_) {
    if (!ok) break;
    const uint8_t op = static_cast<uint8_t>(r.op);
    ok = ok && std::fwrite(&op, 1, 1, f) == 1;
    ok = ok && std::fwrite(&r.page, sizeof(r.page), 1, f) == 1;
    ok = ok && std::fwrite(&r.bytes, sizeof(r.bytes), 1, f) == 1;
  }
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

bool Trace::LoadFrom(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  bool ok = true;
  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  ok = ok && std::fread(&magic, sizeof(magic), 1, f) == 1 &&
       magic == kTraceMagic;
  ok = ok && std::fread(&version, sizeof(version), 1, f) == 1 &&
       version == kTraceVersion;
  ok = ok && std::fread(&count, sizeof(count), 1, f) == 1;
  records_.clear();
  if (ok) records_.reserve(count);
  for (uint64_t i = 0; ok && i < count; ++i) {
    uint8_t op = 0;
    TraceRecord r;
    ok = ok && std::fread(&op, 1, 1, f) == 1;
    ok = ok && std::fread(&r.page, sizeof(r.page), 1, f) == 1;
    ok = ok && std::fread(&r.bytes, sizeof(r.bytes), 1, f) == 1;
    r.op = static_cast<TraceRecord::Op>(op);
    if (ok) records_.push_back(r);
  }
  std::fclose(f);
  if (!ok) records_.clear();
  return ok;
}

ShardedTrace SplitTrace(const Trace& trace, size_t measure_from,
                        uint32_t shards) {
  if (shards < 1) shards = 1;
  const auto& recs = trace.records();
  measure_from = std::min(measure_from, recs.size());

  ShardedTrace out;
  out.shards = shards;
  out.sub.resize(shards);
  out.measure_from.resize(shards, 0);
  for (size_t i = 0; i < recs.size(); ++i) {
    const uint32_t s = PageShard(recs[i].page, shards);
    if (i < measure_from) out.measure_from[s] = out.sub[s].Size() + 1;
    out.sub[s].Append(recs[i]);
  }
  return out;
}

}  // namespace lss
