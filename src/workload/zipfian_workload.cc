#include "workload/zipfian_workload.h"

#include <cassert>
#include <cstdio>

namespace lss {

ZipfianWorkload::ZipfianWorkload(uint64_t pages, double theta)
    : pages_(pages), theta_(theta), gen_(pages, theta) {
  assert(pages >= 2);
  exact_freq_.assign(pages, 0.0);
  // Fold the scatter map into the frequency table: several ranks may land
  // on the same page. Frequencies are normalised to mean 1 (multiply the
  // probability mass by the page count).
  const double scale = static_cast<double>(pages);
  for (uint64_t r = 0; r < pages; ++r) {
    exact_freq_[gen_.Scatter(r)] += scale * gen_.zipf().SampleMass(r);
  }
}

std::string ZipfianWorkload::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "zipfian theta=%.2f", theta_);
  return buf;
}

}  // namespace lss
