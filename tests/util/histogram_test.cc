#include "util/histogram.h"

#include <gtest/gtest.h>

namespace lss {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h(0, 1, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, MeanMinMax) {
  Histogram h(0, 10, 10);
  h.Add(1);
  h.Add(2);
  h.Add(9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(HistogramTest, OutOfRangeValuesClamp) {
  Histogram h(0, 1, 4);
  h.Add(-5);
  h.Add(7);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(HistogramTest, QuantilesOrdered) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.Add(i);
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 2.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h(0, 1, 10);
  h.Add(0.5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a(0, 10, 10), b(0, 10, 10);
  a.Add(1);
  b.Add(9);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h(0, 1, 10);
  h.Add(0.25);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("count=1"), std::string::npos);
}

}  // namespace
}  // namespace lss
