#include "util/zipf.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace lss {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  for (double theta : {0.5, 0.99, 1.35}) {
    ZipfGenerator z(1000, theta);
    double sum = 0;
    for (uint64_t r = 0; r < 1000; ++r) sum += z.Pmf(r);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "theta=" << theta;
  }
}

TEST(ZipfTest, PmfIsDecreasingInRank) {
  ZipfGenerator z(100, 0.99);
  for (uint64_t r = 1; r < 100; ++r) {
    EXPECT_LT(z.Pmf(r), z.Pmf(r - 1));
  }
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  ZipfGenerator a(1000, 0.99), b(1000, 1.35);
  EXPECT_LT(a.Pmf(0), b.Pmf(0));
}

TEST(ZipfTest, SamplesMatchSampleMassExactly) {
  constexpr uint64_t kN = 100;
  constexpr int kDraws = 200000;
  ZipfGenerator z(kN, 0.99);
  Rng rng(77);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) counts[z.Next(rng)]++;
  // SampleMass is the exact distribution of the generator; only sampling
  // noise remains (~4 sigma bounds).
  for (uint64_t r = 0; r < 20; ++r) {
    const double p = z.SampleMass(r);
    const double expected = p * kDraws;
    const double sigma = std::sqrt(p * (1 - p) * kDraws);
    EXPECT_NEAR(counts[r], expected, 4 * sigma + 5) << "rank " << r;
  }
}

TEST(ZipfTest, SampleMassSumsToOne) {
  for (double theta : {0.5, 0.99, 1.35}) {
    ZipfGenerator z(500, theta);
    double sum = 0;
    for (uint64_t r = 0; r < 500; ++r) sum += z.SampleMass(r);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "theta=" << theta;
  }
}

TEST(ZipfTest, SampleMassApproximatesPmf) {
  // The generator approximates the ideal Zipf pmf; mass should be within
  // a few tens of percent rank-by-rank and have the same head-heaviness.
  ZipfGenerator z(1000, 0.99);
  for (uint64_t r : {0ull, 1ull, 5ull, 50ull, 500ull}) {
    EXPECT_NEAR(z.SampleMass(r), z.Pmf(r), z.Pmf(r) * 0.4) << "rank " << r;
  }
  EXPECT_GT(z.SampleMass(0), z.SampleMass(10));
}

TEST(ZipfTest, RanksAlwaysInRange) {
  ZipfGenerator z(17, 1.35);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(z.Next(rng), 17u);
  }
}

// The "80-20" label: with theta=0.99 a sizable minority of items should
// attract the bulk of the mass. Validate the qualitative skew level used
// in the paper (~80% of updates to ~20% of pages for theta near 1).
TEST(ZipfTest, ThetaNearOneConcentratesMass) {
  constexpr uint64_t kN = 10000;
  ZipfGenerator z(kN, 0.99);
  double mass = 0;
  for (uint64_t r = 0; r < kN / 5; ++r) mass += z.Pmf(r);
  EXPECT_GT(mass, 0.7);
  EXPECT_LT(mass, 0.95);
}

TEST(ScrambledZipfTest, ScatterIsDeterministicAndInRange) {
  ScrambledZipfGenerator z(1000, 0.99);
  for (uint64_t r = 0; r < 1000; ++r) {
    const uint64_t item = z.Scatter(r);
    EXPECT_LT(item, 1000u);
    EXPECT_EQ(item, z.Scatter(r));
  }
}

TEST(ScrambledZipfTest, HotItemsAreSpreadOut) {
  // The 10 hottest ranks should not land in one small id neighbourhood.
  constexpr uint64_t kN = 100000;
  ScrambledZipfGenerator z(kN, 0.99);
  uint64_t min_id = kN, max_id = 0;
  for (uint64_t r = 0; r < 10; ++r) {
    const uint64_t id = z.Scatter(r);
    min_id = std::min(min_id, id);
    max_id = std::max(max_id, id);
  }
  EXPECT_GT(max_id - min_id, kN / 10);
}

TEST(ScrambledZipfTest, NextSamplesScatteredItems) {
  ScrambledZipfGenerator z(1000, 1.35);
  Rng rng(9);
  const uint64_t hottest = z.Scatter(0);
  int hot_count = 0;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t item = z.Next(rng);
    ASSERT_LT(item, 1000u);
    hot_count += (item == hottest);
  }
  // theta=1.35, n=1000: rank 0 has ~35% of the mass.
  EXPECT_GT(hot_count, 2000);
}

}  // namespace
}  // namespace lss
