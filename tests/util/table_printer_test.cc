#include "util/table_printer.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace lss {
namespace {

std::string Render(const TablePrinter& t, bool csv = false) {
  char* buf = nullptr;
  size_t size = 0;
  std::FILE* f = open_memstream(&buf, &size);
  if (csv) {
    t.PrintCsv(f);
  } else {
    t.Print(f);
  }
  std::fclose(f);
  std::string out(buf, size);
  free(buf);
  return out;
}

TEST(TablePrinterTest, PrintsHeadersAndRows) {
  TablePrinter t({"F", "E"});
  t.AddRow({TablePrinter::Cell(0.8, 2), TablePrinter::Cell(0.375, 3)});
  const std::string out = Render(t);
  EXPECT_NE(out.find("F"), std::string::npos);
  EXPECT_NE(out.find("0.80"), std::string::npos);
  EXPECT_NE(out.find("0.375"), std::string::npos);
}

TEST(TablePrinterTest, CellFormatsIntegers) {
  EXPECT_EQ(TablePrinter::Cell(uint64_t{12345}).text, "12345");
  EXPECT_EQ(TablePrinter::Cell(-3).text, "-3");
}

TEST(TablePrinterTest, CellFormatsDoublesWithPrecision) {
  EXPECT_EQ(TablePrinter::Cell(1.23456, 2).text, "1.23");
  EXPECT_EQ(TablePrinter::Cell(1.23456, 4).text, "1.2346");
}

TEST(TablePrinterTest, CsvOutputIsCommaSeparated) {
  TablePrinter t({"a", "b"});
  t.AddRow({TablePrinter::Cell("x"), TablePrinter::Cell("y")});
  EXPECT_EQ(Render(t, /*csv=*/true), "a,b\nx,y\n");
}

TEST(TablePrinterTest, ColumnsAlign) {
  TablePrinter t({"name", "v"});
  t.AddRow({TablePrinter::Cell("short"), TablePrinter::Cell(1)});
  t.AddRow({TablePrinter::Cell("a-much-longer-name"), TablePrinter::Cell(2)});
  const std::string out = Render(t);
  // Every line should be equally wide (header, rule, rows).
  size_t pos = 0, prev_len = std::string::npos;
  while (pos < out.size()) {
    const size_t nl = out.find('\n', pos);
    const size_t len = nl - pos;
    if (prev_len != std::string::npos) {
      EXPECT_EQ(len, prev_len);
    }
    prev_len = len;
    pos = nl + 1;
  }
}

TEST(TablePrinterTest, NumRowsCounts) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.NumRows(), 0u);
  t.AddRow({TablePrinter::Cell(1)});
  t.AddRow({TablePrinter::Cell(2)});
  EXPECT_EQ(t.NumRows(), 2u);
}

}  // namespace
}  // namespace lss
