#include "util/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace lss {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  EXPECT_EQ(SplitMix64(0), SplitMix64(0));
  EXPECT_EQ(SplitMix64(42), SplitMix64(42));
  EXPECT_NE(SplitMix64(0), SplitMix64(1));
}

TEST(SplitMix64Test, ScattersNearbyInputs) {
  // Consecutive inputs should produce well-separated outputs; check that
  // the low bits don't simply count up.
  std::set<uint64_t> low_bits;
  for (uint64_t i = 0; i < 64; ++i) low_bits.insert(SplitMix64(i) & 0xff);
  EXPECT_GT(low_bits.size(), 48u);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) differing += (a() != b());
  EXPECT_GT(differing, 95);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.Seed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(99);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(5);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(kBound)]++;
  // Each bucket expects 10000; allow 5% deviation (>> 3 sigma ~ 285).
  for (uint64_t b = 0; b < kBound; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBound, kDraws / kBound * 0.05)
        << "bucket " << b;
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(17);
  int trues = 0;
  for (int i = 0; i < 100000; ++i) trues += rng.NextBool(0.3);
  EXPECT_NEAR(trues / 100000.0, 0.3, 0.01);
}

}  // namespace
}  // namespace lss
