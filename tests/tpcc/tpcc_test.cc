#include "tpcc/tpcc_db.h"

#include <thread>

#include <gtest/gtest.h>

#include "tpcc/keys.h"
#include "tpcc/tpcc_random.h"
#include "tpcc/trace_gen.h"

namespace lss::tpcc {
namespace {

// Miniature cardinalities: same schema and mix, small enough that a full
// populate + thousands of transactions runs in well under a second.
TpccConfig MiniConfig() {
  TpccConfig c;
  c.warehouses = 2;
  c.districts_per_warehouse = 4;
  c.customers_per_district = 120;
  c.items = 500;
  c.orders_per_district = 120;
  c.buffer_pool_pages = 256;
  c.seed = 11;
  return c;
}

TEST(TpccRandomTest, NURandInRange) {
  TpccRandom r(1);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = r.NURand(1023, 1, 3000);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 3000);
  }
}

TEST(TpccRandomTest, NURandIsNonUniform) {
  // NURand concentrates: some values must be drawn far more than the
  // uniform expectation.
  TpccRandom r(2);
  std::vector<int> counts(3001, 0);
  for (int i = 0; i < 300000; ++i) counts[r.NURand(1023, 1, 3000)]++;
  int max_count = 0;
  for (int c : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 2 * (300000 / 3000));
}

TEST(TpccRandomTest, LastNamesAreSyllabic) {
  EXPECT_EQ(TpccRandom::LastName(0), "BARBARBAR");
  EXPECT_EQ(TpccRandom::LastName(999), "EINGEINGEING");
  EXPECT_EQ(TpccRandom::LastName(371), "PRICALLYOUGHT");
}

TEST(TpccRandomTest, StringLengthBounds) {
  TpccRandom r(3);
  for (int i = 0; i < 100; ++i) {
    const std::string a = r.AString(5, 10);
    EXPECT_GE(a.size(), 5u);
    EXPECT_LE(a.size(), 10u);
    const std::string n = r.NString(4, 4);
    EXPECT_EQ(n.size(), 4u);
    for (char c : n) EXPECT_TRUE(c >= '0' && c <= '9');
  }
}

TEST(KeysTest, CompositeOrderMatchesTupleOrder) {
  EXPECT_LT(CustomerKey(1, 2, 3), CustomerKey(1, 2, 4));
  EXPECT_LT(CustomerKey(1, 2, 300), CustomerKey(1, 3, 1));
  EXPECT_LT(OrderLineKey(1, 1, 9, 15), OrderLineKey(1, 1, 10, 1));
  EXPECT_EQ(ReadU32(CustomerKey(7, 8, 9), 8), 9u);
}

TEST(KeysTest, OrderCustomerKeyNewestFirst) {
  // Larger order ids sort earlier within a customer's prefix.
  EXPECT_LT(OrderCustomerKey(1, 1, 5, 100), OrderCustomerKey(1, 1, 5, 99));
  EXPECT_LT(OrderCustomerKey(1, 1, 5, 1000), OrderCustomerKey(1, 1, 6, 9999));
}

TEST(KeysTest, NameKeyPrefixCoversAllIds) {
  const std::string p = CustomerNamePrefix(1, 2, "SMITH");
  EXPECT_TRUE(HasPrefix(CustomerNameKey(1, 2, "SMITH", 0), p));
  EXPECT_TRUE(HasPrefix(CustomerNameKey(1, 2, "SMITH", 4000000000u), p));
  EXPECT_FALSE(HasPrefix(CustomerNameKey(1, 2, "SMITT", 1), p));
}

TEST(SchemaTest, RowRoundTrip) {
  CustomerRow in{};
  in.c_id = 42;
  SetField(in.c_last, "BARBARBAR");
  in.c_balance = -12.5;
  CustomerRow out{};
  ASSERT_TRUE(RowFrom(RowView(in), &out));
  EXPECT_EQ(out.c_id, 42);
  EXPECT_EQ(GetField(out.c_last), "BARBARBAR");
  EXPECT_DOUBLE_EQ(out.c_balance, -12.5);
  EXPECT_FALSE(RowFrom(std::string_view("short"), &out));
}

TEST(SchemaTest, RowsFitEnginePayload) {
  EXPECT_LE(sizeof(CustomerRow), 1000u);
  EXPECT_LE(sizeof(StockRow), 1000u);
  EXPECT_LE(sizeof(OrderLineRow), 1000u);
}

struct TpccFixture : ::testing::Test {
  TpccFixture() : db(MiniConfig()) { db.Populate(); }
  TpccDb db;
};

TEST_F(TpccFixture, PopulateIsConsistent) {
  ASSERT_TRUE(db.CheckConsistency().ok());
  EXPECT_GT(db.PageCount(), 100u);
}

TEST_F(TpccFixture, NewOrderGrowsOrders) {
  int committed = 0;
  for (int i = 0; i < 50; ++i) committed += db.NewOrder() ? 1 : 0;
  EXPECT_GT(committed, 40);  // ~1% intentional aborts
  ASSERT_TRUE(db.CheckConsistency().ok());
}

TEST_F(TpccFixture, PaymentMaintainsYtdBalance) {
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(db.Payment());
  // CheckConsistency verifies w_ytd == sum(d_ytd) after payments.
  ASSERT_TRUE(db.CheckConsistency().ok());
}

TEST_F(TpccFixture, OrderStatusReadsOnly) {
  const uint64_t pages = db.PageCount();
  for (int i = 0; i < 50; ++i) db.OrderStatus();
  EXPECT_EQ(db.PageCount(), pages);  // read-only: no page allocations
  ASSERT_TRUE(db.CheckConsistency().ok());
}

TEST_F(TpccFixture, DeliveryDrainsNewOrders) {
  // Population leaves 30% of orders undelivered; deliveries must drain
  // them and stay consistent.
  int delivered = 0;
  for (int i = 0; i < 200; ++i) delivered += db.Delivery() ? 1 : 0;
  EXPECT_GT(delivered, 0);
  ASSERT_TRUE(db.CheckConsistency().ok());
}

TEST_F(TpccFixture, StockLevelRuns) {
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(db.StockLevel());
  ASSERT_TRUE(db.CheckConsistency().ok());
}

TEST_F(TpccFixture, MixedWorkloadStaysConsistent) {
  for (int i = 0; i < 2000; ++i) db.RunNextTransaction();
  ASSERT_TRUE(db.CheckConsistency().ok());
  // Mix sanity: New-Order ~45%, Payment ~43%.
  const double total = 2000.0;
  EXPECT_NEAR(db.TxnCount(TpccDb::TxnType::kNewOrder) / total, 0.45, 0.05);
  EXPECT_NEAR(db.TxnCount(TpccDb::TxnType::kPayment) / total, 0.43, 0.05);
  EXPECT_GT(db.TxnCount(TpccDb::TxnType::kDelivery), 0u);
}

TEST_F(TpccFixture, DatabaseGrowsOverTime) {
  const uint64_t before = db.PageCount();
  for (int i = 0; i < 2000; ++i) db.RunNextTransaction();
  EXPECT_GT(db.PageCount(), before);  // §6.3: TPC-C storage grows
}

TEST(TpccTraceTest, TraceCapturesLoadAndRun) {
  TpccConfig cfg = MiniConfig();
  const TpccTraceResult r = GenerateTpccTrace(cfg, 500, 1000);
  EXPECT_GT(r.trace.Size(), 0u);
  EXPECT_GT(r.measure_from, 0u);
  EXPECT_LT(r.measure_from, r.trace.Size());
  EXPECT_GE(r.pages_final, r.pages_after_load);
  // Every traced page must be within the final database footprint.
  EXPECT_LE(r.trace.MaxPageId(), r.pages_final);
  // The load prefix must cover the whole populated database (checkpoint
  // after populate), so replay starts from a fully-written store.
  std::vector<bool> seen(r.pages_after_load, false);
  size_t covered = 0;
  for (size_t i = 0; i < r.measure_from; ++i) {
    const TraceRecord& rec = r.trace.records()[i];
    if (rec.page < r.pages_after_load && !seen[rec.page]) {
      seen[rec.page] = true;
      ++covered;
    }
  }
  EXPECT_EQ(covered, r.pages_after_load);
}

TEST(TpccTraceTest, CheckpointsIncreaseWrites) {
  TpccConfig cfg = MiniConfig();
  const TpccTraceResult no_ckpt = GenerateTpccTrace(cfg, 200, 400, 0);
  const TpccTraceResult ckpt = GenerateTpccTrace(cfg, 200, 400, 50);
  EXPECT_GT(ckpt.trace.Size(), no_ckpt.trace.Size());
}

TEST(TpccTraceTest, TraceIsSkewed) {
  // The paper observes TPC-C page writes are hot/cold skewed (~80-20,
  // §6.3). Check the measured suffix: the hottest 30% of pages should
  // receive well over half the writes.
  TpccConfig cfg = MiniConfig();
  const TpccTraceResult r = GenerateTpccTrace(cfg, 500, 4000);
  auto freq = r.trace.ComputeExactFrequencies(r.measure_from, r.trace.Size());
  std::sort(freq.begin(), freq.end(), std::greater<double>());
  double hot_mass = 0, total = 0;
  for (size_t i = 0; i < freq.size(); ++i) {
    total += freq[i];
    if (i < freq.size() * 3 / 10) hot_mass += freq[i];
  }
  EXPECT_GT(hot_mass / total, 0.6);
}

// --- Multi-worker engine (runs under TSan via check.sh --tsan) ----------

TpccConfig ParallelConfig(uint32_t workers) {
  TpccConfig c = MiniConfig();
  c.warehouses = 8;
  c.workers = workers;
  c.buffer_pool_pages = 512;
  return c;
}

TEST(TpccParallelTest, ParallelWorkloadStaysConsistent) {
  // 4 workers over 8 warehouses: every TPC-C invariant must hold after a
  // concurrent mixed workload (remote stock/customer ops cross partition
  // groups, so the latch-swap path is exercised too).
  TpccDb db(ParallelConfig(4));
  db.Populate();  // parallel populate
  ASSERT_EQ(db.workers(), 4u);
  ASSERT_TRUE(db.CheckConsistency().ok());

  constexpr int kTxnsPerWorker = 800;
  std::vector<TpccDb::Session> sessions;
  for (uint32_t t = 0; t < db.workers(); ++t) {
    sessions.push_back(db.MakeSession(t));
  }
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < db.workers(); ++t) {
    threads.emplace_back([&db, &sessions, t] {
      for (int i = 0; i < kTxnsPerWorker; ++i) {
        db.RunNextTransaction(sessions[t]);
        if (t == 0 && (i % 200) == 199) db.Checkpoint();
      }
    });
  }
  for (std::thread& th : threads) th.join();

  ASSERT_TRUE(db.CheckConsistency().ok());
  uint64_t total = 0;
  for (int i = 0; i < 5; ++i) {
    total += db.TxnCount(static_cast<TpccDb::TxnType>(i));
  }
  EXPECT_EQ(total, static_cast<uint64_t>(4 * kTxnsPerWorker));
}

TEST(TpccParallelTest, ParallelTraceGenerationCoversDatabase) {
  // The parallel pipeline must uphold the serial trace's contract: the
  // pre-measurement prefix covers every populated page, page ids stay
  // within the final footprint, and the database grows.
  TpccConfig cfg = ParallelConfig(4);
  const TpccTraceResult r = GenerateTpccTrace(cfg, 400, 1200, 100);
  EXPECT_EQ(r.workers, 4u);
  EXPECT_GT(r.trace.Size(), 0u);
  EXPECT_GT(r.measure_from, 0u);
  EXPECT_LT(r.measure_from, r.trace.Size());
  EXPECT_GE(r.pages_final, r.pages_after_load);
  EXPECT_LE(r.trace.MaxPageId(), r.pages_final);
  std::vector<bool> seen(r.pages_after_load, false);
  size_t covered = 0;
  for (size_t i = 0; i < r.measure_from; ++i) {
    const TraceRecord& rec = r.trace.records()[i];
    if (rec.page < r.pages_after_load && !seen[rec.page]) {
      seen[rec.page] = true;
      ++covered;
    }
  }
  EXPECT_EQ(covered, r.pages_after_load);
}

TEST(TpccParallelTest, WorkersBeyondWarehousesShareGroups) {
  // Workers are no longer clamped to the warehouse count: 8 sessions
  // over 2 warehouses share 2 partition groups (worker t drives group
  // t % 2), all running the same trees concurrently through the
  // latch-coupled engine.
  TpccConfig cfg = MiniConfig();
  cfg.warehouses = 2;
  cfg.workers = 8;
  TpccDb db(cfg);
  EXPECT_EQ(db.workers(), 8u);
  EXPECT_EQ(db.partition_groups(), 2u);
  db.Populate();
  ASSERT_TRUE(db.CheckConsistency().ok());

  std::vector<TpccDb::Session> sessions;
  for (uint32_t t = 0; t < db.workers(); ++t) {
    sessions.push_back(db.MakeSession(t));
  }
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < db.workers(); ++t) {
    threads.emplace_back([&db, &sessions, t] {
      for (int i = 0; i < 300; ++i) db.RunNextTransaction(sessions[t]);
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_TRUE(db.CheckConsistency().ok());
}

}  // namespace
}  // namespace lss::tpcc
