#include "bench/bench_common.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace lss::bench {
namespace {

// Clears the variable on construction and destruction so tests cannot
// leak knob state into each other (or inherit it from the harness).
struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) { unsetenv(name_); }
  ~EnvGuard() { unsetenv(name_); }
  void Set(const char* v) { setenv(name_, v, 1); }
  const char* name_;
};

TEST(BenchEnvTest, ScaleFactorDefaultsAndParses) {
  EnvGuard g("LSS_BENCH_SCALE");
  EXPECT_EQ(ScaleFactor(), 1u);
  g.Set("3");
  EXPECT_EQ(ScaleFactor(), 3u);
}

TEST(BenchEnvTest, ScaleFactorRejectsGarbageNamingTheVariable) {
  // Regression: these used to silently clamp to 1, so a typo'd knob ran
  // the whole experiment at the wrong scale. Now the bench exits(2) and
  // the message names the offending variable.
  EnvGuard g("LSS_BENCH_SCALE");
  g.Set("fast");
  EXPECT_EXIT(ScaleFactor(), ::testing::ExitedWithCode(2),
              "LSS_BENCH_SCALE");
  g.Set("4x");
  EXPECT_EXIT(ScaleFactor(), ::testing::ExitedWithCode(2),
              "LSS_BENCH_SCALE");
  g.Set("0");
  EXPECT_EXIT(ScaleFactor(), ::testing::ExitedWithCode(2),
              "LSS_BENCH_SCALE");
  g.Set("-2");
  EXPECT_EXIT(ScaleFactor(), ::testing::ExitedWithCode(2),
              "LSS_BENCH_SCALE");
}

TEST(BenchEnvTest, CheckpointIntervalDefaultsAndParses) {
  EnvGuard g("LSS_BENCH_CKPT_INTERVAL");
  EXPECT_EQ(CheckpointInterval(2000), 2000u);
  g.Set("0");  // 0 disables checkpointing: valid, not a fallback
  EXPECT_EQ(CheckpointInterval(2000), 0u);
  g.Set("500");
  EXPECT_EQ(CheckpointInterval(2000), 500u);
}

TEST(BenchEnvTest, CheckpointIntervalRejectsGarbageNamingTheVariable) {
  EnvGuard g("LSS_BENCH_CKPT_INTERVAL");
  g.Set("-1");
  EXPECT_EXIT(CheckpointInterval(2000), ::testing::ExitedWithCode(2),
              "LSS_BENCH_CKPT_INTERVAL");
  g.Set("every5k");
  EXPECT_EXIT(CheckpointInterval(2000), ::testing::ExitedWithCode(2),
              "LSS_BENCH_CKPT_INTERVAL");
}

TEST(BenchEnvTest, EnvIntEnforcesBounds) {
  EnvGuard g("LSS_BENCH_TEST_KNOB");
  EXPECT_EQ(EnvInt("LSS_BENCH_TEST_KNOB", 7, 0, 100), 7);
  g.Set("42");
  EXPECT_EQ(EnvInt("LSS_BENCH_TEST_KNOB", 7, 0, 100), 42);
  g.Set("101");
  EXPECT_EXIT(EnvInt("LSS_BENCH_TEST_KNOB", 7, 0, 100),
              ::testing::ExitedWithCode(2), "LSS_BENCH_TEST_KNOB");
  g.Set("99999999999999999999");  // out of long long range
  EXPECT_EXIT(EnvInt("LSS_BENCH_TEST_KNOB", 7, 0, 100),
              ::testing::ExitedWithCode(2), "LSS_BENCH_TEST_KNOB");
}

}  // namespace
}  // namespace lss::bench
