#include "analysis/uniform_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace lss {
namespace {

TEST(CostAlgebraTest, CostAndWampRelations) {
  // Equation 1 and 2: Cost = 2/E, Wamp = (1-E)/E = Cost/2 - 1.
  for (double e : {0.1, 0.25, 0.5, 0.8}) {
    EXPECT_DOUBLE_EQ(CostPerSegment(e), 2.0 / e);
    EXPECT_DOUBLE_EQ(WampFromEmptiness(e), (1.0 - e) / e);
    EXPECT_NEAR(WampFromEmptiness(e), CostPerSegment(e) / 2.0 - 1.0, 1e-12);
    EXPECT_NEAR(EmptinessFromWamp(WampFromEmptiness(e)), e, 1e-12);
  }
}

TEST(UniformModelTest, FixpointSatisfiesEquation4) {
  for (double f : {0.3, 0.5, 0.7, 0.8, 0.9, 0.95}) {
    const double e = SolveSteadyStateEmptiness(f);
    EXPECT_NEAR(e, 1.0 - std::exp(-e / f), 1e-9) << "F=" << f;
    EXPECT_GT(e, 0.0);
    EXPECT_LT(e, 1.0);
  }
}

// Table 1 of the paper: E for each fill factor, to the printed precision.
struct Table1Row {
  double f;
  double e;
  double cost;
  double wamp;
};

class Table1Test : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Test, MatchesPaper) {
  const Table1Row& row = GetParam();
  const double e = SolveSteadyStateEmptiness(row.f);
  // The paper prints E to 2-3 digits; its Cost/Wamp columns are derived
  // from the *rounded* E, so their tolerance must absorb the rounding
  // amplified through 2/E (|dCost| = Cost^2/2 * |dE|).
  const double e_tol = 0.008;
  EXPECT_NEAR(e, row.e, e_tol) << "F=" << row.f;
  EXPECT_NEAR(CostPerSegment(e), row.cost,
              row.cost * row.cost / 2.0 * e_tol + row.cost * 0.01);
  EXPECT_NEAR(WampFromEmptiness(e), row.wamp,
              row.wamp * 0.08 + e_tol / (row.e * row.e));
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable1, Table1Test,
    ::testing::Values(Table1Row{.975, .048, 41.7, 19.8},
                      Table1Row{.95, .094, 21.3, 9.64},
                      Table1Row{.90, .19, 10.5, 4.26},
                      Table1Row{.85, .29, 6.90, 2.45},
                      Table1Row{.80, .375, 5.33, 1.66},
                      Table1Row{.75, .45, 4.44, 1.22},
                      Table1Row{.70, .53, 3.78, .887},
                      Table1Row{.65, .60, 3.33, .666},
                      Table1Row{.60, .67, 2.99, .493},
                      Table1Row{.55, .74, 2.70, .351},
                      Table1Row{.50, .80, 2.50, .250},
                      Table1Row{.45, .85, 2.35, .176},
                      Table1Row{.40, .89, 2.24, .124},
                      Table1Row{.35, .93, 2.15, .075},
                      Table1Row{.30, .96, 2.08, .042},
                      Table1Row{.25, .98, 2.04, .020},
                      Table1Row{.20, .993, 2.014, .007}));

TEST(UniformModelTest, EmptinessDecreasesWithFill) {
  double prev = 1.0;
  for (double f = 0.1; f < 1.0; f += 0.05) {
    const double e = SolveSteadyStateEmptiness(f);
    EXPECT_LT(e, prev) << "F=" << f;
    prev = e;
  }
}

TEST(UniformModelTest, NoSlackMeansNoEmptiness) {
  EXPECT_EQ(SolveSteadyStateEmptiness(1.0), 0.0);
  EXPECT_EQ(SolveSteadyStateEmptiness(1.5), 0.0);
}

TEST(UniformModelTest, EmptinessExceedsSlack) {
  // §2.1: E >= (1 - F); careful victim choice finds at least the average
  // slack. The fixpoint for age-based cleaning satisfies this strictly.
  for (double f : {0.5, 0.7, 0.9}) {
    EXPECT_GT(SolveSteadyStateEmptiness(f), 1.0 - f);
  }
}

TEST(UniformModelTest, SlackEfficiencyMatchesTable1R) {
  // Table 1's R column: 1.92 at F=.90, 1.60 at F=.50, 1.24 at F=.20.
  EXPECT_NEAR(SlackEfficiency(0.90), 1.92, 0.02);
  EXPECT_NEAR(SlackEfficiency(0.50), 1.60, 0.02);
  EXPECT_NEAR(SlackEfficiency(0.20), 1.24, 0.02);
}

TEST(UniformModelTest, FinitePopulationConvergesToLimit) {
  const double limit = SolveSteadyStateEmptiness(0.8);
  double prev_err = 1.0;
  for (uint64_t p : {32ull, 1024ull, 1048576ull}) {
    const double e = SolveSteadyStateEmptinessFinite(0.8, p);
    const double err = std::fabs(e - limit);
    EXPECT_LE(err, prev_err);
    prev_err = err;
  }
  EXPECT_NEAR(SolveSteadyStateEmptinessFinite(0.8, 1u << 20), limit, 1e-5);
}

// The paper notes "once P is sufficiently large, e.g. greater than 30,
// this result depends almost entirely on the value of F".
TEST(UniformModelTest, SmallPopulationAlreadyClose) {
  const double limit = SolveSteadyStateEmptiness(0.8);
  EXPECT_NEAR(SolveSteadyStateEmptinessFinite(0.8, 32), limit, 0.03);
  EXPECT_NEAR(SolveSteadyStateEmptinessFinite(0.8, 100), limit, 0.01);
}

}  // namespace
}  // namespace lss
