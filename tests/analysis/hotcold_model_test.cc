#include "analysis/hotcold_model.h"

#include <gtest/gtest.h>

#include "analysis/uniform_model.h"

namespace lss {
namespace {

// Table 2 of the paper (F = 0.8): MinCost with equal slack split, and
// the Hot:60% / Hot:40% splits.
struct Table2Row {
  double m;       // hot update fraction (90:10 -> 0.9)
  double min_cost;
  double hot60;
  double hot40;
};

class Table2Test : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2Test, MatchesPaper) {
  const Table2Row& row = GetParam();
  // The paper computes Table 2 via its constant-R simplification (§3.2
  // "we assume that Ri are constant. This is not true, but is a useful
  // simplification"); we re-solve the fixpoint per sub-space, so values
  // agree to ~2%, not exactly.
  EXPECT_NEAR(MinCostEqualSplit(0.8, row.m), row.min_cost,
              row.min_cost * 0.02)
      << "m=" << row.m;
  EXPECT_NEAR(EvaluateHotColdSplit(0.8, row.m, 0.6).cost, row.hot60,
              row.hot60 * 0.02);
  EXPECT_NEAR(EvaluateHotColdSplit(0.8, row.m, 0.4).cost, row.hot40,
              row.hot40 * 0.02);
}

INSTANTIATE_TEST_SUITE_P(PaperTable2, Table2Test,
                         ::testing::Values(Table2Row{0.9, 2.96, 3.06, 2.99},
                                           Table2Row{0.8, 4.00, 4.12, 4.11},
                                           Table2Row{0.7, 4.80, 4.90, 4.86},
                                           Table2Row{0.6, 5.23, 5.38, 5.38},
                                           Table2Row{0.5, 5.38, 5.46, 5.46}));

TEST(HotColdModelTest, EqualSplitNearOptimal) {
  // §3.2: for m:1-m distributions g1/g2 = (R2/R1)^(1/2) ~ 1, so the
  // optimal split is near 0.5 and the equal split is near the minimum.
  for (double m : {0.6, 0.7, 0.8, 0.9}) {
    const double g = OptimalHotSlackShare(0.8, m);
    EXPECT_NEAR(g, 0.5, 0.08) << "m=" << m;
    const double opt = EvaluateHotColdSplit(0.8, m, g).cost;
    EXPECT_LE(opt, MinCostEqualSplit(0.8, m) + 1e-9);
    EXPECT_NEAR(opt, MinCostEqualSplit(0.8, m), 0.02);
  }
}

TEST(HotColdModelTest, HotSetGetsLowerFillFactor) {
  // §3.3: "the hot data having a lower fill factor than the cold data".
  const HotColdSplit s = EvaluateHotColdSplit(0.8, 0.8, 0.5);
  EXPECT_LT(s.fill_hot, s.fill_cold);
  EXPECT_GT(s.emptiness_hot, s.emptiness_cold);
}

TEST(HotColdModelTest, SkewReducesCost) {
  // More skew -> separation helps more; costs drop monotonically from
  // 50:50 toward 90:10 (Table 2 top to bottom).
  double prev = 0.0;
  for (double m : {0.9, 0.8, 0.7, 0.6, 0.5001}) {
    const double c = MinCostEqualSplit(0.8, m);
    EXPECT_GT(c, prev) << "m=" << m;
    prev = c;
  }
}

TEST(HotColdModelTest, NoSkewMatchesUniformModel) {
  // 50:50 with equal split leaves both halves at fill 0.8; total cost
  // equals the uniform-model cost at F = 0.8.
  const double uniform_cost =
      CostPerSegment(SolveSteadyStateEmptiness(0.8));
  EXPECT_NEAR(MinCostEqualSplit(0.8, 0.5001), uniform_cost, 0.02);
}

TEST(HotColdModelTest, WampConsistentWithCostPerSet) {
  const HotColdSplit s = EvaluateHotColdSplit(0.8, 0.8, 0.5);
  const double wamp_from_sets =
      0.8 * WampFromEmptiness(s.emptiness_hot) +
      0.2 * WampFromEmptiness(s.emptiness_cold);
  EXPECT_NEAR(s.wamp, wamp_from_sets, 1e-12);
  // Wamp = Cost/2 - 1 holds per set and therefore for the mixture.
  EXPECT_NEAR(s.wamp, s.cost / 2.0 - 1.0, 1e-9);
}

TEST(HotColdModelTest, OptimalWampForFigure3) {
  // Figure 3's "opt" line at F=0.8: ~1.0 for 80-20, ~0.48 for 90-10,
  // ~1.69 for 50-50 (from Table 2 via Wamp = Cost/2 - 1).
  EXPECT_NEAR(OptimalWamp(0.8, 0.8), 1.00, 0.03);
  EXPECT_NEAR(OptimalWamp(0.8, 0.9), 0.48, 0.03);
  EXPECT_NEAR(OptimalWamp(0.8, 0.5001), 1.69, 0.03);
}

TEST(HotColdModelTest, SlackShareExtremesAreWorse) {
  for (double m : {0.7, 0.9}) {
    const double balanced = MinCostEqualSplit(0.8, m);
    EXPECT_GT(EvaluateHotColdSplit(0.8, m, 0.05).cost, balanced);
    EXPECT_GT(EvaluateHotColdSplit(0.8, m, 0.95).cost, balanced);
  }
}

}  // namespace
}  // namespace lss
