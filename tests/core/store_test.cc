#include "core/store.h"

#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "core/io_backend.h"
#include "core/policy_factory.h"
#include "util/rng.h"

namespace lss {
namespace {

// Small geometry so cleaning kicks in quickly: 16 segments of 4 pages.
StoreConfig SmallConfig() {
  StoreConfig c;
  c.page_bytes = 4096;
  c.segment_bytes = 4 * 4096;
  c.num_segments = 16;
  c.clean_trigger_segments = 2;
  c.clean_batch_segments = 4;
  c.write_buffer_segments = 0;
  c.separate_user_writes = false;
  c.separate_gc_writes = false;
  return c;
}

std::unique_ptr<LogStructuredStore> MakeStore(const StoreConfig& cfg,
                                              Variant v = Variant::kGreedy) {
  Status st;
  auto store = LogStructuredStore::Create(cfg, MakePolicy(v), &st);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return store;
}

TEST(StoreCreateTest, RejectsInvalidConfig) {
  StoreConfig c = SmallConfig();
  c.num_segments = 1;
  Status st;
  EXPECT_EQ(LogStructuredStore::Create(c, MakePolicy(Variant::kAge), &st),
            nullptr);
  EXPECT_FALSE(st.ok());
}

TEST(StoreCreateTest, RejectsNullPolicy) {
  Status st;
  EXPECT_EQ(LogStructuredStore::Create(SmallConfig(), nullptr, &st), nullptr);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
}

TEST(StoreTest, FreshStoreIsEmpty) {
  auto store = MakeStore(SmallConfig());
  EXPECT_EQ(store->FreeSegmentCount(), 16u);
  EXPECT_EQ(store->LivePageCount(), 0u);
  EXPECT_EQ(store->unow(), 0u);
  EXPECT_FALSE(store->Contains(0));
}

TEST(StoreTest, WriteMakesPagePresent) {
  auto store = MakeStore(SmallConfig());
  ASSERT_TRUE(store->Write(5).ok());
  EXPECT_TRUE(store->Contains(5));
  EXPECT_EQ(store->PageSize(5), 4096u);
  EXPECT_EQ(store->unow(), 1u);
  EXPECT_EQ(store->stats().user_updates, 1u);
  EXPECT_EQ(store->stats().user_pages_written, 1u);
  EXPECT_TRUE(store->CheckInvariants().ok());
}

TEST(StoreTest, RewriteKillsOldVersion) {
  auto store = MakeStore(SmallConfig());
  ASSERT_TRUE(store->Write(1).ok());
  ASSERT_TRUE(store->Write(1).ok());
  EXPECT_TRUE(store->Contains(1));
  // Exactly one live copy exists across all segments.
  uint64_t live = 0;
  for (const auto& s : store->segments()) live += s.live_count();
  EXPECT_EQ(live, 1u);
  EXPECT_TRUE(store->CheckInvariants().ok());
}

TEST(StoreTest, VariablePageSizes) {
  auto store = MakeStore(SmallConfig());
  ASSERT_TRUE(store->Write(1, 100).ok());
  EXPECT_EQ(store->PageSize(1), 100u);
  ASSERT_TRUE(store->Write(1, 9000).ok());
  EXPECT_EQ(store->PageSize(1), 9000u);
  EXPECT_TRUE(store->CheckInvariants().ok());
}

TEST(StoreTest, RejectsPageLargerThanSegment) {
  auto store = MakeStore(SmallConfig());
  EXPECT_EQ(store->Write(1, 4 * 4096 + 1).code(),
            Status::Code::kInvalidArgument);
}

TEST(StoreTest, DeleteRemovesPage) {
  auto store = MakeStore(SmallConfig());
  ASSERT_TRUE(store->Write(3).ok());
  ASSERT_TRUE(store->Delete(3).ok());
  EXPECT_FALSE(store->Contains(3));
  EXPECT_EQ(store->stats().deletes, 1u);
  EXPECT_EQ(store->Delete(3).code(), Status::Code::kNotFound);
  EXPECT_TRUE(store->CheckInvariants().ok());
}

TEST(StoreTest, CleaningReclaimsSpace) {
  auto store = MakeStore(SmallConfig());
  // 16 segments * 4 pages = 64 physical pages. Use 32 pages (F = 0.5) and
  // update them many times: cleaning must kick in and keep the store live.
  for (PageId p = 0; p < 32; ++p) ASSERT_TRUE(store->Write(p).ok());
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Write(rng.NextBounded(32)).ok());
  }
  EXPECT_GT(store->stats().cleanings, 0u);
  EXPECT_GT(store->stats().gc_pages_written, 0u);
  EXPECT_EQ(store->LivePageCount(), 32u);
  EXPECT_TRUE(store->CheckInvariants().ok());
}

TEST(StoreTest, OutOfSpaceWhenFull) {
  auto store = MakeStore(SmallConfig());
  // Fill beyond what cleaning can ever reclaim (every physical page live).
  Status last;
  PageId p = 0;
  for (; p < 200; ++p) {
    last = store->Write(p);
    if (!last.ok()) break;
  }
  EXPECT_EQ(last.code(), Status::Code::kOutOfSpace);
  // The error is sticky: later writes keep failing rather than corrupting.
  EXPECT_EQ(store->Write(0).code(), Status::Code::kOutOfSpace);
}

TEST(StoreTest, RewriteWhileBufferedCountsEachWriteByDefault) {
  // Paper accounting: every update becomes a physical page write even if
  // the previous version never left the buffer.
  StoreConfig c = SmallConfig();
  c.write_buffer_segments = 2;
  auto store = MakeStore(c);
  ASSERT_TRUE(store->Write(1).ok());
  ASSERT_TRUE(store->Write(1).ok());
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_EQ(store->stats().user_pages_written, 2u);
  uint64_t live = 0;
  for (const auto& s : store->segments()) live += s.live_count();
  EXPECT_EQ(live, 1u);  // only one live version
  EXPECT_TRUE(store->CheckInvariants().ok());
}

TEST(StoreTest, BufferedWritesAreAbsorbed) {
  StoreConfig c = SmallConfig();
  c.write_buffer_segments = 2;
  c.absorb_buffered_rewrites = true;
  auto store = MakeStore(c);
  // Two writes to the same page while it fits in the buffer: only one
  // physical page write should result.
  ASSERT_TRUE(store->Write(1).ok());
  ASSERT_TRUE(store->Write(1).ok());
  EXPECT_EQ(store->stats().user_updates, 2u);
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_EQ(store->stats().user_pages_written, 1u);
  EXPECT_TRUE(store->CheckInvariants().ok());
}

TEST(StoreTest, FlushDrainsBuffer) {
  StoreConfig c = SmallConfig();
  c.write_buffer_segments = 4;
  auto store = MakeStore(c);
  ASSERT_TRUE(store->Write(1).ok());
  ASSERT_TRUE(store->Write(2).ok());
  EXPECT_EQ(store->stats().user_pages_written, 0u);  // still buffered
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_EQ(store->stats().user_pages_written, 2u);
  EXPECT_FALSE(store->page_table().Get(1).loc.InBuffer());
}

TEST(StoreTest, DeleteWhileBuffered) {
  StoreConfig c = SmallConfig();
  c.write_buffer_segments = 4;
  auto store = MakeStore(c);
  ASSERT_TRUE(store->Write(1).ok());
  ASSERT_TRUE(store->Delete(1).ok());
  EXPECT_FALSE(store->Contains(1));
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_EQ(store->stats().user_pages_written, 0u);
  EXPECT_TRUE(store->CheckInvariants().ok());
}

TEST(StoreTest, EstimateUpfUsesLastUpdateInterval) {
  auto store = MakeStore(SmallConfig());
  ASSERT_TRUE(store->Write(1).ok());  // unow = 1
  ASSERT_TRUE(store->Write(2).ok());
  ASSERT_TRUE(store->Write(3).ok());
  ASSERT_TRUE(store->Write(4).ok());  // unow = 4
  EXPECT_DOUBLE_EQ(store->EstimateUpf(1), 1.0 / 3.0);
  EXPECT_EQ(store->EstimateUpf(99), 0.0);
}

TEST(StoreTest, OracleOverridesEstimate) {
  auto store = MakeStore(SmallConfig());
  store->SetExactFrequencyOracle([](PageId p) { return p == 1 ? 4.0 : 0.5; });
  EXPECT_TRUE(store->HasOracle());
  EXPECT_DOUBLE_EQ(store->EstimateUpf(1), 4.0);
  EXPECT_DOUBLE_EQ(store->EstimateUpf(2), 0.5);
}

TEST(StoreTest, FillFactorTracksLiveBytes) {
  auto store = MakeStore(SmallConfig());
  for (PageId p = 0; p < 32; ++p) ASSERT_TRUE(store->Write(p).ok());
  EXPECT_NEAR(store->CurrentFillFactor(), 0.5, 0.01);
}

TEST(StoreTest, WampZeroWithoutCleaning) {
  auto store = MakeStore(SmallConfig());
  for (PageId p = 0; p < 8; ++p) ASSERT_TRUE(store->Write(p).ok());
  EXPECT_EQ(store->stats().WriteAmplification(), 0.0);
}

// Long-running churn across many policies must preserve all invariants.
class StoreChurnTest : public ::testing::TestWithParam<Variant> {};

TEST_P(StoreChurnTest, InvariantsHoldUnderChurn) {
  StoreConfig c = SmallConfig();
  c.num_segments = 32;
  ApplyVariantConfig(GetParam(), &c);
  auto store = MakeStore(c, GetParam());
  if (VariantNeedsOracle(GetParam())) {
    store->SetExactFrequencyOracle([](PageId) { return 1.0; });
  }
  constexpr PageId kPages = 64;  // F = 0.5 of 128 physical pages
  for (PageId p = 0; p < kPages; ++p) ASSERT_TRUE(store->Write(p).ok());
  Rng rng(GetParam() == Variant::kAge ? 1 : 2);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(store->Write(rng.NextBounded(kPages)).ok()) << "i=" << i;
    if (i % 500 == 0) {
      ASSERT_TRUE(store->CheckInvariants().ok()) << "i=" << i;
    }
  }
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_EQ(store->LivePageCount(), kPages);
  EXPECT_TRUE(store->CheckInvariants().ok());
  EXPECT_GT(store->stats().cleanings, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, StoreChurnTest, ::testing::ValuesIn(AllVariants()),
    [](const ::testing::TestParamInfo<Variant>& info) {
      std::string n = VariantName(info.param);
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

// --- Backend failure paths (FaultInjectionBackend) -------------------
//
// A persistence backend can fail on any state transition: seal (the
// write path and Flush), reclaim (cleaning) and delete. Every failure
// must surface as the operation's status AND poison the store (sticky),
// exactly like out-of-space does — a store that lost durability must not
// keep accepting writes.

std::unique_ptr<LogStructuredStore> MakeFaultyStore(
    const StoreConfig& cfg, FaultInjectionBackend** handle,
    Variant v = Variant::kGreedy) {
  auto backend = std::make_unique<FaultInjectionBackend>();
  *handle = backend.get();
  Status st;
  auto store = LogStructuredStore::CreateWithBackend(cfg, MakePolicy(v),
                                                     std::move(backend), &st);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return store;
}

TEST(StoreBackendFailureTest, SealFailurePoisonsUnbufferedWrites) {
  FaultInjectionBackend* fault = nullptr;
  auto store = MakeFaultyStore(SmallConfig(), &fault);
  fault->FailSealsAfter(0, Status::Corruption("injected seal failure"));
  // 4 pages fill the first segment; the 4th write seals it and must fail.
  Status last = Status::OK();
  PageId p = 0;
  for (; p < 16 && last.ok(); ++p) last = store->Write(p);
  EXPECT_EQ(last.code(), Status::Code::kCorruption);
  // Sticky: the store refuses further work with the original error.
  EXPECT_EQ(store->Write(100).code(), Status::Code::kCorruption);
  EXPECT_EQ(store->Flush().code(), Status::Code::kCorruption);
}

TEST(StoreBackendFailureTest, SealFailureSurfacesThroughFlush) {
  StoreConfig c = SmallConfig();
  c.write_buffer_segments = 2;
  FaultInjectionBackend* fault = nullptr;
  auto store = MakeFaultyStore(c, &fault, Variant::kMdc);
  fault->FailSealsAfter(0, Status::Corruption("injected seal failure"));
  // Stay under the buffer-full threshold so the failure comes from the
  // explicit Flush, not the write path.
  for (PageId p = 0; p < 4; ++p) ASSERT_TRUE(store->Write(p).ok());
  EXPECT_EQ(store->Flush().code(), Status::Code::kCorruption);
  EXPECT_EQ(store->Write(0).code(), Status::Code::kCorruption);
}

TEST(StoreBackendFailureTest, BackendOutOfSpaceSurfacesAsOutOfSpace) {
  // A real device running out of room (ENOSPC) must look exactly like
  // the simulator's cleaning-cannot-reclaim condition.
  FaultInjectionBackend* fault = nullptr;
  auto store = MakeFaultyStore(SmallConfig(), &fault);
  fault->FailSealsAfter(3, Status::OutOfSpace("injected ENOSPC"));
  Status last = Status::OK();
  for (PageId p = 0; p < 64 && last.ok(); ++p) last = store->Write(p);
  EXPECT_EQ(last.code(), Status::Code::kOutOfSpace);
  EXPECT_EQ(store->Write(0).code(), Status::Code::kOutOfSpace);
}

TEST(StoreBackendFailureTest, ReclaimFailureAbortsCleaning) {
  FaultInjectionBackend* fault = nullptr;
  auto store = MakeFaultyStore(SmallConfig(), &fault);
  fault->FailReclaimsAfter(0, Status::Corruption("injected reclaim failure"));
  // Half-fill, then churn until the cleaner runs; its first reclaim
  // fails and the error must reach the writer (not be swallowed into a
  // best-effort retry or a bogus out-of-space).
  for (PageId p = 0; p < 32; ++p) ASSERT_TRUE(store->Write(p).ok());
  Rng rng(1);
  Status last = Status::OK();
  for (int i = 0; i < 2000 && last.ok(); ++i) {
    last = store->Write(rng.NextBounded(32));
  }
  EXPECT_EQ(last.code(), Status::Code::kCorruption);
  EXPECT_NE(last.message().find("reclaim"), std::string::npos);
  EXPECT_EQ(store->Write(0).code(), Status::Code::kCorruption);
}

TEST(StoreBackendFailureTest, DeleteFailureIsSticky) {
  FaultInjectionBackend* fault = nullptr;
  auto store = MakeFaultyStore(SmallConfig(), &fault);
  ASSERT_TRUE(store->Write(1).ok());
  ASSERT_TRUE(store->Write(2).ok());
  fault->FailDeletesAfter(0, Status::Corruption("injected delete failure"));
  EXPECT_EQ(store->Delete(1).code(), Status::Code::kCorruption);
  EXPECT_EQ(store->Write(3).code(), Status::Code::kCorruption);
}

TEST(StoreBackendFailureTest, HealthyFaultBackendCountsOperations) {
  FaultInjectionBackend* fault = nullptr;
  auto store = MakeFaultyStore(SmallConfig(), &fault);
  for (PageId p = 0; p < 32; ++p) ASSERT_TRUE(store->Write(p).ok());
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Write(rng.NextBounded(32)).ok());
  }
  ASSERT_TRUE(store->Delete(0).ok());
  EXPECT_TRUE(store->CheckInvariants().ok());
  // Close seals the remaining open segments and releases any withheld
  // victim reclaims, after which the backend has seen every operation.
  ASSERT_TRUE(store->Close().ok());
  EXPECT_EQ(fault->seals(),
            static_cast<int64_t>(store->stats().user_segments_sealed +
                                 store->stats().gc_segments_sealed));
  EXPECT_EQ(fault->reclaims(),
            static_cast<int64_t>(store->stats().segments_cleaned));
  EXPECT_EQ(fault->deletes(), 1);
}

// Mixed insert/update/delete churn with variable sizes.
TEST(StoreTest, MixedWorkloadWithDeletesAndVariableSizes) {
  StoreConfig c = SmallConfig();
  c.num_segments = 32;
  c.write_buffer_segments = 2;
  auto store = MakeStore(c, Variant::kMdc);
  Rng rng(7);
  std::vector<bool> present(64, false);
  size_t live = 0;
  for (int i = 0; i < 5000; ++i) {
    const PageId p = rng.NextBounded(64);
    if (present[p] && rng.NextBool(0.2)) {
      ASSERT_TRUE(store->Delete(p).ok());
      present[p] = false;
      --live;
    } else {
      const uint32_t bytes = 64 + static_cast<uint32_t>(rng.NextBounded(8000));
      ASSERT_TRUE(store->Write(p, bytes).ok());
      if (!present[p]) {
        present[p] = true;
        ++live;
      }
    }
  }
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_EQ(store->LivePageCount(), live);
  EXPECT_TRUE(store->CheckInvariants().ok());
}

}  // namespace
}  // namespace lss
