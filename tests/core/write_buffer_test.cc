#include "core/write_buffer.h"

#include <gtest/gtest.h>

namespace lss {
namespace {

BufferedWrite MakeWrite(PageId p, uint32_t bytes, double up2,
                        bool first = false) {
  BufferedWrite w;
  w.page = p;
  w.bytes = bytes;
  w.up2 = up2;
  w.first_write = first;
  return w;
}

TEST(WriteBufferTest, StartsEmpty) {
  WriteBuffer b(1 << 20);
  EXPECT_TRUE(b.Empty());
  EXPECT_FALSE(b.Full());
  EXPECT_EQ(b.bytes(), 0u);
}

TEST(WriteBufferTest, AddAccumulatesBytes) {
  WriteBuffer b(1 << 20);
  EXPECT_EQ(b.Add(MakeWrite(1, 4096, 0)), 0u);
  EXPECT_EQ(b.Add(MakeWrite(2, 4096, 0)), 1u);
  EXPECT_EQ(b.bytes(), 8192u);
  EXPECT_EQ(b.Count(), 2u);
}

TEST(WriteBufferTest, FullAtCapacity) {
  WriteBuffer b(8192);
  b.Add(MakeWrite(1, 4096, 0));
  EXPECT_FALSE(b.Full());
  b.Add(MakeWrite(2, 4096, 0));
  EXPECT_TRUE(b.Full());
}

TEST(WriteBufferTest, UpdateAbsorbsInPlace) {
  WriteBuffer b(1 << 20);
  const uint32_t slot = b.Add(MakeWrite(5, 4096, 10.0, /*first=*/true));
  b.Update(slot, 8192, 20.0, 1.5);
  EXPECT_EQ(b.Count(), 1u);  // no new slot
  EXPECT_EQ(b.bytes(), 8192u);
  const BufferedWrite& w = b.Get(slot);
  EXPECT_EQ(w.bytes, 8192u);
  EXPECT_DOUBLE_EQ(w.up2, 20.0);
  EXPECT_FALSE(w.first_write);
  EXPECT_DOUBLE_EQ(w.exact_upf, 1.5);
}

TEST(WriteBufferTest, UpdateCanShrink) {
  WriteBuffer b(1 << 20);
  const uint32_t slot = b.Add(MakeWrite(5, 8192, 0));
  b.Update(slot, 100, 0, 0);
  EXPECT_EQ(b.bytes(), 100u);
}

TEST(WriteBufferTest, DrainReturnsArrivalOrderAndEmpties) {
  WriteBuffer b(1 << 20);
  b.Add(MakeWrite(3, 4096, 1.0));
  b.Add(MakeWrite(1, 4096, 2.0));
  b.Add(MakeWrite(2, 4096, 3.0));
  auto out = b.Drain();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].page, 3u);
  EXPECT_EQ(out[1].page, 1u);
  EXPECT_EQ(out[2].page, 2u);
  EXPECT_TRUE(b.Empty());
  EXPECT_EQ(b.bytes(), 0u);
}

TEST(WriteBufferTest, ReusableAfterDrain) {
  WriteBuffer b(4096);
  b.Add(MakeWrite(1, 4096, 0));
  EXPECT_TRUE(b.Full());
  b.Drain();
  EXPECT_FALSE(b.Full());
  EXPECT_EQ(b.Add(MakeWrite(2, 4096, 0)), 0u);  // slots restart
}

}  // namespace
}  // namespace lss
