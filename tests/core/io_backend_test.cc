#include "core/io_backend.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "core/sharded_store.h"
#include "core/store.h"
#include "core/uring_backend.h"
#include "util/rng.h"

namespace lss {
namespace {

// Small geometry so cleaning kicks in quickly: 16 segments of 4 pages.
StoreConfig SmallConfig() {
  StoreConfig c;
  c.page_bytes = 4096;
  c.segment_bytes = 4 * 4096;
  c.num_segments = 16;
  c.clean_trigger_segments = 2;
  c.clean_batch_segments = 4;
  c.write_buffer_segments = 0;
  c.separate_user_writes = false;
  c.separate_gc_writes = false;
  return c;
}

// A scratch directory per test, removed (with its shard files) on exit.
class IoBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/lss_test_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASSERT_NE(::mkdtemp(buf.data()), nullptr);
    dir_ = buf.data();
  }

  void TearDown() override {
    for (uint32_t i = 0; i < 64; ++i) {
      ::unlink(FileBackend::DataPath(dir_, i).c_str());
      ::unlink(FileBackend::MetaPath(dir_, i).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  StoreConfig FileConfig(bool fsync = false) {
    StoreConfig c = SmallConfig();
    c.backend = BackendKind::kFile;
    c.backend_dir = dir_;
    c.backend_fsync = fsync;
    return c;
  }

  std::string dir_;
};

TEST(PagePayloadTest, FillAndVerifyRoundTrip) {
  std::vector<uint8_t> buf(1000);
  FillPagePayload(7, 1000, buf.data());
  EXPECT_TRUE(VerifyPagePayload(7, 1000, buf.data()));
  EXPECT_FALSE(VerifyPagePayload(8, 1000, buf.data()));
  buf[999] ^= 1;  // corrupt the unaligned tail
  EXPECT_FALSE(VerifyPagePayload(7, 1000, buf.data()));
}

TEST(PagePayloadTest, DistinctPagesGetDistinctPatterns) {
  std::vector<uint8_t> a(64), b(64);
  FillPagePayload(1, 64, a.data());
  FillPagePayload(2, 64, b.data());
  EXPECT_NE(a, b);
}

TEST(BackendSpecTest, ParsesAllForms) {
  StoreConfig c;
  ASSERT_TRUE(ApplyBackendSpec("file:/x/y", &c).ok());
  EXPECT_EQ(c.backend, BackendKind::kFile);
  EXPECT_EQ(c.backend_dir, "/x/y");
  EXPECT_TRUE(c.backend_fsync);
  EXPECT_FALSE(c.backend_direct_io);
  EXPECT_EQ(BackendSpecName(c), "file:/x/y");

  ASSERT_TRUE(ApplyBackendSpec("file-nosync:/x", &c).ok());
  EXPECT_FALSE(c.backend_fsync);
  EXPECT_EQ(BackendSpecName(c), "file-nosync:/x");

  ASSERT_TRUE(ApplyBackendSpec("file-direct:/x", &c).ok());
  EXPECT_TRUE(c.backend_direct_io);
  EXPECT_TRUE(c.backend_fsync);
  EXPECT_EQ(BackendSpecName(c), "file-direct:/x");

  ASSERT_TRUE(ApplyBackendSpec("uring:/x/y", &c).ok());
  EXPECT_EQ(c.backend, BackendKind::kUring);
  EXPECT_EQ(c.backend_dir, "/x/y");
  EXPECT_TRUE(c.backend_fsync);
  EXPECT_FALSE(c.backend_direct_io);
  EXPECT_EQ(BackendSpecName(c), "uring:/x/y");

  ASSERT_TRUE(ApplyBackendSpec("uring-nosync:/x", &c).ok());
  EXPECT_EQ(c.backend, BackendKind::kUring);
  EXPECT_FALSE(c.backend_fsync);
  EXPECT_EQ(BackendSpecName(c), "uring-nosync:/x");

  ASSERT_TRUE(ApplyBackendSpec("null", &c).ok());
  EXPECT_EQ(c.backend, BackendKind::kNull);
  EXPECT_EQ(BackendSpecName(c), "null");
}

TEST(BackendSpecTest, RejectsBadSpecs) {
  StoreConfig c;
  EXPECT_EQ(ApplyBackendSpec("file", &c).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(ApplyBackendSpec("file:", &c).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(ApplyBackendSpec("io_uring:/x", &c).code(),
            Status::Code::kInvalidArgument);
}

TEST_F(IoBackendTest, NullBackendIsBitForBitIdenticalToFileBackend) {
  // The acceptance gate of the refactor: the simulation's counters must
  // not depend on the backend. Run the same churn on both and compare
  // every counter the paper's figures are built from.
  auto run = [](const StoreConfig& cfg) {
    StoreConfig c2 = cfg;
    ApplyVariantConfig(Variant::kMdc, &c2);
    auto store = LogStructuredStore::Create(c2, MakePolicy(Variant::kMdc));
    EXPECT_NE(store, nullptr);
    for (PageId p = 0; p < 32; ++p) EXPECT_TRUE(store->Write(p).ok());
    Rng rng(11);
    for (int i = 0; i < 4000; ++i) {
      EXPECT_TRUE(store->Write(rng.NextBounded(32)).ok());
    }
    return store;
  };
  auto null_store = run(SmallConfig());
  auto file_store = run(FileConfig());
  const StoreStats& a = null_store->stats();
  const StoreStats& b = file_store->stats();
  EXPECT_EQ(a.user_updates, b.user_updates);
  EXPECT_EQ(a.user_pages_written, b.user_pages_written);
  EXPECT_EQ(a.gc_pages_written, b.gc_pages_written);
  EXPECT_EQ(a.user_segments_sealed, b.user_segments_sealed);
  EXPECT_EQ(a.gc_segments_sealed, b.gc_segments_sealed);
  EXPECT_EQ(a.segments_cleaned, b.segments_cleaned);
  EXPECT_EQ(a.cleanings, b.cleanings);
  EXPECT_EQ(a.user_bytes_written, b.user_bytes_written);
  EXPECT_EQ(a.gc_bytes_written, b.gc_bytes_written);
  EXPECT_DOUBLE_EQ(a.WriteAmplification(), b.WriteAmplification());
  EXPECT_DOUBLE_EQ(a.MeanCleanEmptiness(), b.MeanCleanEmptiness());
  // Only the device counters differ.
  EXPECT_EQ(a.device_bytes_written, 0u);
  EXPECT_GT(b.device_bytes_written, 0u);
}

TEST_F(IoBackendTest, WriteCloseReopenRecoversEverything) {
  const StoreConfig cfg = FileConfig();
  Rng rng(3);
  std::vector<uint32_t> expect(48, 0);  // page -> live size (0 = absent)
  {
    auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kGreedy));
    ASSERT_NE(store, nullptr);
    // Churn with variable sizes and deletes so recovery must resolve
    // overwritten versions, GC moves and tombstones.
    for (int i = 0; i < 3000; ++i) {
      const PageId p = rng.NextBounded(32);  // F ~ 0.5
      if (expect[p] != 0 && rng.NextBool(0.1)) {
        ASSERT_TRUE(store->Delete(p).ok());
        expect[p] = 0;
      } else {
        const uint32_t bytes =
            64 + static_cast<uint32_t>(rng.NextBounded(6000));
        ASSERT_TRUE(store->Write(p, bytes).ok()) << "i=" << i;
        expect[p] = bytes;
      }
    }
    ASSERT_TRUE(store->CheckInvariants().ok());
    ASSERT_TRUE(store->Close().ok());
    EXPECT_EQ(store->Write(0).code(), Status::Code::kInvalidArgument);
  }

  Status st;
  auto store = LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy), &st);
  ASSERT_NE(store, nullptr) << st.ToString();
  EXPECT_TRUE(store->CheckInvariants().ok());
  for (PageId p = 0; p < expect.size(); ++p) {
    SCOPED_TRACE(p);
    EXPECT_EQ(store->Contains(p), expect[p] != 0);
    EXPECT_EQ(store->PageSize(p), expect[p]);
    if (expect[p] != 0) {
      std::vector<uint8_t> data;
      EXPECT_TRUE(store->ReadPage(p, &data).ok());
      EXPECT_EQ(data.size(), expect[p]);
    }
  }

  // The store stays fully writable after recovery (clocks restored, free
  // list rebuilt, cleaning functional).
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store->Write(rng.NextBounded(32)).ok()) << "i=" << i;
  }
  EXPECT_TRUE(store->CheckInvariants().ok());
}

TEST_F(IoBackendTest, ReopenPreservesFrequencyClocks) {
  const StoreConfig cfg = FileConfig();
  UpdateCount unow_before = 0;
  {
    auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kGreedy));
    ASSERT_NE(store, nullptr);
    for (PageId p = 0; p < 24; ++p) ASSERT_TRUE(store->Write(p).ok());
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(store->Write(rng.NextBounded(24)).ok());
    }
    unow_before = store->unow();
    ASSERT_TRUE(store->Close().ok());
  }
  auto store = LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy));
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->unow(), unow_before);
  // last_update survived, so the up2-based frequency estimate works
  // immediately (nonzero for a page updated before close).
  ASSERT_TRUE(store->Write(999).ok());  // ticks unow past last_update
  EXPECT_GT(store->EstimateUpf(0), 0.0);
}

TEST_F(IoBackendTest, ShardedStoreReopensAcrossShards) {
  StoreConfig cfg = FileConfig();
  cfg.num_segments = 64;  // 4 shards x 16 segments
  const uint32_t kShards = 4;
  auto factory = [] { return MakePolicy(Variant::kGreedy); };
  size_t live_before = 0;
  {
    Status st;
    auto store = ShardedStore::Create(cfg, kShards, factory, &st);
    ASSERT_NE(store, nullptr) << st.ToString();
    Rng rng(9);
    for (PageId p = 0; p < 128; ++p) ASSERT_TRUE(store->Write(p).ok());
    for (int i = 0; i < 4000; ++i) {
      ASSERT_TRUE(store->Write(rng.NextBounded(128)).ok());
    }
    for (PageId p = 0; p < 16; ++p) ASSERT_TRUE(store->Delete(p).ok());
    live_before = store->LivePageCount();
    ASSERT_TRUE(store->CheckInvariants().ok());
    ASSERT_TRUE(store->Close().ok());
  }
  Status st;
  auto store = ShardedStore::Open(cfg, kShards, factory, &st);
  ASSERT_NE(store, nullptr) << st.ToString();
  EXPECT_TRUE(store->CheckInvariants().ok());
  EXPECT_EQ(store->LivePageCount(), live_before);
  for (PageId p = 0; p < 16; ++p) EXPECT_FALSE(store->Contains(p));
  for (PageId p = 16; p < 128; ++p) {
    ASSERT_TRUE(store->Contains(p)) << p;
    std::vector<uint8_t> data;
    EXPECT_TRUE(
        store->WithShardLocked(store->ShardOf(p), [&](const StoreShard& s) {
          return s.ReadPage(p, &data);
        }).ok())
        << p;
  }
  // Writable after recovery.
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(store->Write(16 + rng.NextBounded(112)).ok());
  }
  EXPECT_TRUE(store->CheckInvariants().ok());
}

TEST_F(IoBackendTest, ShardCountMismatchIsDetected) {
  StoreConfig cfg = FileConfig();
  cfg.num_segments = 64;
  auto factory = [] { return MakePolicy(Variant::kGreedy); };
  {
    auto store = ShardedStore::Create(cfg, 4, factory);
    ASSERT_NE(store, nullptr);
    for (PageId p = 0; p < 200; ++p) ASSERT_TRUE(store->Write(p).ok());
    ASSERT_TRUE(store->Close().ok());
  }
  Status st;
  auto store = ShardedStore::Open(cfg, 2, factory, &st);
  EXPECT_EQ(store, nullptr);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
}

TEST_F(IoBackendTest, OpenWithoutDurableStateFails) {
  Status st;
  auto store = LogStructuredStore::Open(FileConfig(),
                                        MakePolicy(Variant::kGreedy), &st);
  EXPECT_EQ(store, nullptr);
  EXPECT_EQ(st.code(), Status::Code::kNotFound);
}

TEST(IoBackendPlainTest, OpenWithNullBackendIsRejected) {
  Status st;
  auto store = LogStructuredStore::Open(SmallConfig(),
                                        MakePolicy(Variant::kGreedy), &st);
  EXPECT_EQ(store, nullptr);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
}

TEST_F(IoBackendTest, DirectIoConfigRoundTrips) {
  // O_DIRECT where the filesystem supports it, silent fallback where it
  // does not (tmpfs) — either way the store must round-trip.
  StoreConfig cfg = FileConfig(/*fsync=*/true);
  cfg.backend_direct_io = true;
  ASSERT_TRUE(cfg.Validate().ok());
  {
    auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kGreedy));
    ASSERT_NE(store, nullptr);
    Rng rng(13);
    for (PageId p = 0; p < 32; ++p) ASSERT_TRUE(store->Write(p).ok());
    for (int i = 0; i < 1500; ++i) {
      ASSERT_TRUE(store->Write(rng.NextBounded(32)).ok());
    }
    ASSERT_TRUE(store->Close().ok());
  }
  auto store = LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy));
  ASSERT_NE(store, nullptr);
  EXPECT_TRUE(store->CheckInvariants().ok());
  EXPECT_EQ(store->LivePageCount(), 32u);
}

TEST_F(IoBackendTest, BufferedStoreFlushesThroughCloseAndRecovers) {
  StoreConfig cfg = FileConfig();
  cfg.write_buffer_segments = 2;
  ApplyVariantConfig(Variant::kMdc, &cfg);
  {
    auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kMdc));
    ASSERT_NE(store, nullptr);
    // Leave writes in the buffer: Close must drain and persist them.
    for (PageId p = 0; p < 5; ++p) ASSERT_TRUE(store->Write(p).ok());
    ASSERT_TRUE(store->Close().ok());
  }
  auto store = LogStructuredStore::Open(cfg, MakePolicy(Variant::kMdc));
  ASSERT_NE(store, nullptr);
  for (PageId p = 0; p < 5; ++p) {
    EXPECT_TRUE(store->Contains(p)) << p;
    std::vector<uint8_t> data;
    EXPECT_TRUE(store->ReadPage(p, &data).ok()) << p;
  }
}

TEST_F(IoBackendTest, ReadPageRequiresSealedSegment) {
  StoreConfig cfg = FileConfig();
  cfg.write_buffer_segments = 2;
  auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kMdc));
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->Write(1).ok());
  std::vector<uint8_t> data;
  // Still buffered.
  EXPECT_EQ(store->ReadPage(1, &data).code(),
            Status::Code::kInvalidArgument);
  ASSERT_TRUE(store->Flush().ok());
  // Flushed into an open (unsealed) segment.
  EXPECT_EQ(store->ReadPage(1, &data).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(store->ReadPage(999, &data).code(), Status::Code::kNotFound);
}

TEST_F(IoBackendTest, CrashTruncatedMetaTailIsDiscarded) {
  const StoreConfig cfg = FileConfig();
  size_t live_before = 0;
  {
    auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kGreedy));
    ASSERT_NE(store, nullptr);
    Rng rng(17);
    for (PageId p = 0; p < 32; ++p) ASSERT_TRUE(store->Write(p).ok());
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(store->Write(rng.NextBounded(32)).ok());
    }
    live_before = store->LivePageCount();
    ASSERT_TRUE(store->Close().ok());
  }
  // Simulate a crash mid-append: garbage (including a spurious magic
  // with a huge body length) lands after the last whole record.
  {
    std::FILE* f = std::fopen(FileBackend::MetaPath(dir_, 0).c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint32_t magic = 0x4C535331;
    const uint16_t type = 1;
    const uint16_t reserved = 0;
    const uint64_t huge = ~0ull;  // wraps naive bounds arithmetic
    std::fwrite(&magic, sizeof(magic), 1, f);
    std::fwrite(&type, sizeof(type), 1, f);
    std::fwrite(&reserved, sizeof(reserved), 1, f);
    std::fwrite(&huge, sizeof(huge), 1, f);
    std::fclose(f);
  }
  // First reopen: the tail is discarded (and truncated off the file).
  {
    auto store = LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy));
    ASSERT_NE(store, nullptr);
    EXPECT_TRUE(store->CheckInvariants().ok());
    EXPECT_EQ(store->LivePageCount(), live_before);
    // New durable work after the crash...
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(store->Write(static_cast<PageId>(i % 32)).ok());
    }
    ASSERT_TRUE(store->Close().ok());
  }
  // ...must itself survive a second reopen (stale pre-crash bytes past
  // the truncation point must not resurface as records).
  auto store = LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy));
  ASSERT_NE(store, nullptr);
  EXPECT_TRUE(store->CheckInvariants().ok());
  EXPECT_EQ(store->LivePageCount(), live_before);
}

TEST_F(IoBackendTest, DeleteTombstonesAreOnDeviceBeforeClose) {
  // An acknowledged delete's tombstone must already be in the metadata
  // log (fsync'd in fsync mode) before any Close runs — a second
  // backend instance recovering from the same files while the writer is
  // still open is the crash view of the device.
  StoreConfig cfg = FileConfig(/*fsync=*/true);
  StoreStats wstats;
  FileBackend writer;
  ASSERT_TRUE(writer.Open(cfg, 0, 1, &wstats, /*recover=*/false).ok());
  BackendSegmentRecord rec;
  rec.id = 0;
  rec.source = SegmentSource::kUser;
  rec.seal_time = 2;
  rec.unow = 2;
  Segment::Entry e;
  e.page = 5;
  e.bytes = 4096;
  e.seq = 1;
  e.last_update = 1;
  rec.entries.push_back(e);
  ASSERT_TRUE(writer.SealSegment(rec).ok());
  const uint64_t fsyncs_before = wstats.device_fsyncs;
  ASSERT_TRUE(writer.RecordDelete(5, 2, 2).ok());
  EXPECT_GT(wstats.device_fsyncs, fsyncs_before);  // tombstone synced

  FileBackend reader;
  StoreStats rstats;
  ASSERT_TRUE(reader.Open(cfg, 0, 1, &rstats, /*recover=*/true).ok());
  BackendRecovery out;
  ASSERT_TRUE(reader.Scan(&out).ok());
  ASSERT_EQ(out.segments.size(), 1u);
  ASSERT_EQ(out.deletes.size(), 1u);
  EXPECT_EQ(out.deletes[0].first, 5u);
  EXPECT_EQ(out.deletes[0].second, 2u);
}

TEST_F(IoBackendTest, CheckpointRecordsActAsSealsUntilSuperseded) {
  const StoreConfig cfg = FileConfig(/*fsync=*/true);
  StoreStats wstats;
  FileBackend writer;
  ASSERT_TRUE(writer.Open(cfg, 0, 1, &wstats, /*recover=*/false).ok());

  auto entry = [](PageId page, uint64_t seq) {
    Segment::Entry e;
    e.page = page;
    e.bytes = 4096;
    e.seq = seq;
    e.last_update = seq;
    return e;
  };

  // Checkpoint of an open segment holding one page.
  BackendSegmentRecord ck;
  ck.id = 3;
  ck.source = SegmentSource::kUser;
  ck.seal_time = 5;
  ck.unow = 5;
  ck.checkpoint = true;
  ck.entries.push_back(entry(7, 1));
  ASSERT_TRUE(writer.Checkpoint(ck).ok());

  {
    FileBackend reader;
    StoreStats rstats;
    ASSERT_TRUE(reader.Open(cfg, 0, 1, &rstats, /*recover=*/true).ok());
    BackendRecovery out;
    ASSERT_TRUE(reader.Scan(&out).ok());
    ASSERT_EQ(out.segments.size(), 1u);
    EXPECT_EQ(out.segments[0].id, 3u);
    EXPECT_TRUE(out.segments[0].checkpoint);
    ASSERT_EQ(out.segments[0].entries.size(), 1u);
    // The checkpoint wrote the payload prefix, so the page is readable.
    std::vector<uint8_t> data;
    EXPECT_TRUE(reader.ReadPagePayload(3, 0, 7, 4096, &data).ok());
  }

  // The real seal of the same slot supersedes the checkpoint.
  BackendSegmentRecord seal = ck;
  seal.checkpoint = false;
  seal.seal_time = 9;
  seal.unow = 9;
  seal.entries.push_back(entry(9, 2));
  ASSERT_TRUE(writer.SealSegment(seal).ok());

  FileBackend reader;
  StoreStats rstats;
  ASSERT_TRUE(reader.Open(cfg, 0, 1, &rstats, /*recover=*/true).ok());
  BackendRecovery out;
  ASSERT_TRUE(reader.Scan(&out).ok());
  ASSERT_EQ(out.segments.size(), 1u);
  EXPECT_FALSE(out.segments[0].checkpoint);
  EXPECT_EQ(out.segments[0].entries.size(), 2u);
}

TEST_F(IoBackendTest, GroupCommitDefersFsyncsUntilSync) {
  const StoreConfig cfg = FileConfig(/*fsync=*/true);
  StoreStats stats;
  FileBackend backend;
  ASSERT_TRUE(backend.Open(cfg, 0, 1, &stats, /*recover=*/false).ok());
  backend.SetDeferredSync(true);

  BackendSegmentRecord rec;
  rec.id = 0;
  rec.source = SegmentSource::kUser;
  rec.seal_time = 1;
  rec.unow = 1;
  Segment::Entry e;
  e.page = 1;
  e.bytes = 4096;
  e.seq = 1;
  rec.entries.push_back(e);

  ASSERT_TRUE(backend.SealSegment(rec).ok());
  rec.id = 1;
  ASSERT_TRUE(backend.SealSegment(rec).ok());
  ASSERT_TRUE(backend.RecordDelete(1, 2, 2).ok());
  // Three durable ops, zero fsyncs so far: the group commit pays once.
  EXPECT_EQ(stats.device_fsyncs, 0u);
  ASSERT_TRUE(backend.Sync().ok());
  EXPECT_GT(stats.device_fsyncs, 0u);
  const uint64_t after_group = stats.device_fsyncs;
  // Nothing new to cover: a second sync is allowed but the first already
  // covered all three ops with one fsync pair.
  ASSERT_TRUE(backend.Sync().ok());
  EXPECT_GE(stats.device_fsyncs, after_group);
}

// Rewrites shard 0's geometry record format field in place, with the
// checksum recomputed per the on-disk spec (FNV-1a over type, body_len,
// body). Record layout: 24-byte header (magic u32, type u16, reserved
// u16, body_len u64, checksum u64) + 24-byte geometry body whose last
// u32 is the format field. This turns a freshly created log into a
// byte-exact canned log of an older writer generation: the geometry
// record is written once at create and never rewritten, so the format
// stamp is the only thing distinguishing the generations on disk.
void PatchGeometryFormat(const std::string& dir, uint32_t format) {
  const std::string path = FileBackend::MetaPath(dir, 0);
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  uint8_t rec[48];
  ASSERT_EQ(std::fread(rec, 1, sizeof(rec), f), sizeof(rec));
  std::memcpy(rec + 24 + 20, &format, sizeof(format));
  const uint16_t type = 4;  // geometry
  const uint64_t body_len = 24;
  uint64_t h = 0xCBF29CE484222325ull;
  auto fnv = [&h](const void* data, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 0x100000001B3ull;
    }
  };
  fnv(&type, sizeof(type));
  fnv(&body_len, sizeof(body_len));
  fnv(rec + 24, body_len);
  std::memcpy(rec + 16, &h, sizeof(h));
  ASSERT_EQ(std::fseek(f, 0, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(rec, 1, sizeof(rec), f), sizeof(rec));
  std::fclose(f);
}

// The PR 3 on-disk format (geometry format field 0, no checkpoint
// records) must keep recovering under the bumped reader.
TEST_F(IoBackendTest, Pr3FormatMetadataLogStillRecovers) {
  const StoreConfig cfg = FileConfig();
  size_t live_before = 0;
  {
    auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kGreedy));
    ASSERT_NE(store, nullptr);
    Rng rng(23);
    for (PageId p = 0; p < 32; ++p) ASSERT_TRUE(store->Write(p).ok());
    for (int i = 0; i < 1500; ++i) {
      ASSERT_TRUE(store->Write(rng.NextBounded(32)).ok());
    }
    live_before = store->LivePageCount();
    ASSERT_TRUE(store->Close().ok());
  }

  PatchGeometryFormat(dir_, 0);
  {
    Status st;
    auto store =
        LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy), &st);
    ASSERT_NE(store, nullptr) << st.ToString();
    EXPECT_TRUE(store->CheckInvariants().ok());
    EXPECT_EQ(store->LivePageCount(), live_before);
    ASSERT_TRUE(store->Close().ok());
  }

  // A format newer than this reader must refuse loudly, not truncate.
  PatchGeometryFormat(dir_, 99);
  Status st;
  auto store = LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy), &st);
  EXPECT_EQ(store, nullptr);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
}

// A canned format-1 log (the checkpoint-era stamp, before re-homing
// bumped the format to 2) must keep recovering under the bumped reader.
TEST_F(IoBackendTest, CheckpointFormatMetadataLogStillRecovers) {
  const StoreConfig cfg = FileConfig();
  size_t live_before = 0;
  {
    auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kGreedy));
    ASSERT_NE(store, nullptr);
    Rng rng(31);
    for (PageId p = 0; p < 32; ++p) ASSERT_TRUE(store->Write(p).ok());
    for (int i = 0; i < 1500; ++i) {
      ASSERT_TRUE(store->Write(rng.NextBounded(32)).ok());
    }
    ASSERT_TRUE(store->Checkpoint().ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(store->Write(rng.NextBounded(32)).ok());
    }
    live_before = store->LivePageCount();
    ASSERT_TRUE(store->Close().ok());
  }

  PatchGeometryFormat(dir_, 1);
  Status st;
  auto store = LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy), &st);
  ASSERT_NE(store, nullptr) << st.ToString();
  EXPECT_TRUE(store->CheckInvariants().ok());
  EXPECT_EQ(store->LivePageCount(), live_before);
  ASSERT_TRUE(store->Close().ok());
}

// A canned format-2 log (the re-homing-era stamp, before delta
// checkpoints bumped the format to 3) must keep recovering under the
// bumped reader. Written with delta records disabled so the log holds
// exactly the record types a format-2 writer could produce — seals,
// frees, full checkpoints and re-homes.
TEST_F(IoBackendTest, RehomeFormatMetadataLogStillRecovers) {
  StoreConfig cfg = FileConfig();
  cfg.checkpoint_interval_ops = 8;
  cfg.checkpoint_delta = false;
  size_t live_before = 0;
  {
    auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kGreedy));
    ASSERT_NE(store, nullptr);
    Rng rng(41);
    for (PageId p = 0; p < 32; ++p) ASSERT_TRUE(store->Write(p).ok());
    for (int i = 0; i < 1500; ++i) {
      ASSERT_TRUE(store->Write(rng.NextBounded(32)).ok());
    }
    ASSERT_TRUE(store->Checkpoint().ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(store->Write(rng.NextBounded(32)).ok());
    }
    live_before = store->LivePageCount();
    ASSERT_TRUE(store->Close().ok());
  }

  PatchGeometryFormat(dir_, 2);
  Status st;
  auto store = LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy), &st);
  ASSERT_NE(store, nullptr) << st.ToString();
  EXPECT_TRUE(store->CheckInvariants().ok());
  EXPECT_EQ(store->LivePageCount(), live_before);
  ASSERT_TRUE(store->Close().ok());
}

// A delta chain round-trips through the metadata log: the reader hands
// the suffix records back separately from the seals, in replay order,
// each carrying the ordinal of its base — the full checkpoint for the
// first link, the previous delta for every later one — so recovery can
// stitch the chain back together and spot orphans.
TEST_F(IoBackendTest, DeltaChainRoundTripsWithOrdinals) {
  const StoreConfig cfg = FileConfig(/*fsync=*/true);
  StoreStats wstats;
  FileBackend writer;
  ASSERT_TRUE(writer.Open(cfg, 0, 1, &wstats, /*recover=*/false).ok());

  auto entry = [](PageId page, uint64_t seq, uint64_t offset) {
    Segment::Entry e;
    e.page = page;
    e.bytes = 4096;
    e.seq = seq;
    e.last_update = seq;
    e.offset = offset;
    return e;
  };

  BackendSegmentRecord base;
  base.id = 3;
  base.source = SegmentSource::kUser;
  base.seal_time = 5;
  base.unow = 5;
  base.checkpoint = true;
  base.entries = {entry(7, 1, 0), entry(8, 2, 4096)};
  ASSERT_TRUE(writer.Checkpoint(base).ok());

  BackendSegmentRecord d1;
  d1.id = 3;
  d1.source = SegmentSource::kUser;
  d1.seal_time = 9;
  d1.unow = 9;
  d1.checkpoint = true;
  d1.delta = true;
  d1.prefix_entries = 2;
  d1.suffix_offset = 2 * 4096;
  d1.suffix_length = 4096;
  d1.entries = {entry(9, 3, 2 * 4096)};
  ASSERT_TRUE(writer.CheckpointDelta(d1).ok());

  BackendSegmentRecord d2 = d1;
  d2.seal_time = 12;
  d2.unow = 12;
  d2.prefix_entries = 3;
  d2.suffix_offset = 3 * 4096;
  d2.suffix_length = 4096;
  d2.entries = {entry(10, 4, 3 * 4096)};
  ASSERT_TRUE(writer.CheckpointDelta(d2).ok());
  ASSERT_TRUE(writer.Close().ok());

  FileBackend reader;
  StoreStats rstats;
  ASSERT_TRUE(reader.Open(cfg, 0, 1, &rstats, /*recover=*/true).ok());
  BackendRecovery out;
  ASSERT_TRUE(reader.Scan(&out).ok());
  ASSERT_EQ(out.segments.size(), 1u);
  EXPECT_TRUE(out.segments[0].checkpoint);
  EXPECT_FALSE(out.segments[0].delta);
  ASSERT_EQ(out.deltas.size(), 2u);

  const BackendSegmentRecord& r1 = out.deltas[0];
  const BackendSegmentRecord& r2 = out.deltas[1];
  EXPECT_EQ(r1.id, 3u);
  EXPECT_TRUE(r1.delta);
  EXPECT_EQ(r1.prefix_entries, 2u);
  EXPECT_EQ(r1.suffix_offset, 2u * 4096u);
  EXPECT_EQ(r1.suffix_length, 4096u);
  ASSERT_EQ(r1.entries.size(), 1u);
  EXPECT_EQ(r1.entries[0].page, 9u);
  EXPECT_EQ(r1.entries[0].seq, 3u);
  EXPECT_EQ(r2.prefix_entries, 3u);
  ASSERT_EQ(r2.entries.size(), 1u);
  EXPECT_EQ(r2.entries[0].page, 10u);

  // The chain is encoded in ordinals: base <- d1 <- d2, strictly
  // increasing with log position.
  EXPECT_GT(r1.ordinal, out.segments[0].ordinal);
  EXPECT_GT(r2.ordinal, r1.ordinal);
  EXPECT_EQ(r1.base_ordinal, out.segments[0].ordinal);
  EXPECT_EQ(r2.base_ordinal, r1.ordinal);
}

// The backend refuses a delta without a live chain base: after a free
// record for the slot (which erases every earlier record of the slot on
// replay) or under a stale generation, a suffix record would chain to
// nothing, so only a full checkpoint may restart the chain.
TEST_F(IoBackendTest, DeltaWithoutChainBaseIsRejected) {
  const StoreConfig cfg = FileConfig(/*fsync=*/true);
  StoreStats wstats;
  FileBackend writer;
  ASSERT_TRUE(writer.Open(cfg, 0, 1, &wstats, /*recover=*/false).ok());

  BackendSegmentRecord base;
  base.id = 3;
  base.source = SegmentSource::kUser;
  base.seal_time = 5;
  base.unow = 5;
  base.checkpoint = true;
  Segment::Entry e;
  e.page = 7;
  e.bytes = 4096;
  e.seq = 1;
  e.last_update = 5;
  base.entries = {e};

  BackendSegmentRecord d;
  d.id = 3;
  d.source = SegmentSource::kUser;
  d.seal_time = 9;
  d.unow = 9;
  d.checkpoint = true;
  d.delta = true;
  d.prefix_entries = 1;
  d.suffix_offset = 4096;
  d.suffix_length = 4096;
  Segment::Entry e2 = e;
  e2.page = 8;
  e2.seq = 2;
  e2.offset = 4096;
  d.entries = {e2};

  // No checkpoint for the slot yet: no chain to extend.
  EXPECT_EQ(writer.CheckpointDelta(d).code(),
            Status::Code::kInvalidArgument);

  // A generation mismatch (the slot was refilled since the base) is a
  // caller bug the backend refuses to write through.
  ASSERT_TRUE(writer.Checkpoint(base).ok());
  d.generation = base.generation + 1;
  EXPECT_EQ(writer.CheckpointDelta(d).code(),
            Status::Code::kInvalidArgument);
  d.generation = base.generation;
  ASSERT_TRUE(writer.CheckpointDelta(d).ok());

  // A free record closes the chain; the next delta must be refused
  // until a full checkpoint restarts it.
  ASSERT_TRUE(writer.ReclaimSegment(3, /*unow=*/15).ok());
  BackendSegmentRecord d3 = d;
  d3.prefix_entries = 2;
  d3.suffix_offset = 2 * 4096;
  Segment::Entry e3 = e;
  e3.page = 9;
  e3.seq = 3;
  e3.offset = 2 * 4096;
  d3.entries = {e3};
  EXPECT_EQ(writer.CheckpointDelta(d3).code(),
            Status::Code::kInvalidArgument);
  ASSERT_TRUE(writer.Close().ok());
}

// A slot-generation change between checkpoint rounds forces the shard
// back to a full record: the chain the slot carried belongs to the
// previous occupant. Sync file backend + zero write buffer makes every
// step deterministic.
TEST_F(IoBackendTest, GenerationChangeForcesFullCheckpoint) {
  StoreConfig cfg = FileConfig();
  cfg.checkpoint_interval_ops = 1u << 30;  // only explicit barriers
  cfg.checkpoint_delta = true;
  auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kGreedy));
  ASSERT_NE(store, nullptr);

  // Two pages into a 4-page segment, then a barrier: the chain starts
  // with one full record.
  ASSERT_TRUE(store->Write(0).ok());
  ASSERT_TRUE(store->Write(1).ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  StoreStats s = store->StatsSnapshot();
  EXPECT_EQ(s.checkpoint_full_records, 1u);
  EXPECT_EQ(s.checkpoint_delta_records, 0u);

  // One more page: the next barrier extends the chain with a delta.
  ASSERT_TRUE(store->Write(2).ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  s = store->StatsSnapshot();
  EXPECT_EQ(s.checkpoint_full_records, 1u);
  EXPECT_EQ(s.checkpoint_delta_records, 1u);

  // An unchanged open segment is already covered: barrier is a no-op.
  ASSERT_TRUE(store->Checkpoint().ok());
  s = store->StatsSnapshot();
  EXPECT_EQ(s.checkpoint_full_records, 1u);
  EXPECT_EQ(s.checkpoint_delta_records, 1u);

  // Fill the segment (seal bumps the slot generation), then start a new
  // open segment: its checkpoint must be a full record again.
  ASSERT_TRUE(store->Write(3).ok());
  ASSERT_TRUE(store->Write(0).ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  s = store->StatsSnapshot();
  EXPECT_EQ(s.checkpoint_full_records, 2u);
  EXPECT_EQ(s.checkpoint_delta_records, 1u);

  // The chained state recovers.
  ASSERT_TRUE(store->Close().ok());
  Status st;
  auto reopened =
      LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy), &st);
  ASSERT_NE(reopened, nullptr) << st.ToString();
  EXPECT_TRUE(reopened->CheckInvariants().ok());
  EXPECT_EQ(reopened->LivePageCount(), 4u);
  ASSERT_TRUE(reopened->Close().ok());
}

// A re-homing record round-trips through the metadata log: the reader
// hands it back separately from the seals, in replay order, with the
// log-position ordinal that lets recovery break equal-seq ties in its
// favour over the victim slot's original record.
TEST_F(IoBackendTest, RehomeRecordRoundTripsWithOrdinal) {
  const StoreConfig cfg = FileConfig(/*fsync=*/true);
  StoreStats wstats;
  FileBackend writer;
  ASSERT_TRUE(writer.Open(cfg, 0, 1, &wstats, /*recover=*/false).ok());

  BackendSegmentRecord seal;
  seal.id = 2;
  seal.source = SegmentSource::kUser;
  seal.seal_time = 7;
  seal.unow = 7;
  Segment::Entry e;
  e.page = 11;
  e.bytes = 4096;
  e.seq = 3;
  e.last_update = 6;
  seal.entries.push_back(e);
  ASSERT_TRUE(writer.SealSegment(seal).ok());

  // Re-home the entry out of slot 2 (as AllocateSegment would right
  // before reusing the withheld slot). No payload accompanies it.
  BackendSegmentRecord rehome = seal;
  ASSERT_TRUE(writer.RehomeEntries(rehome).ok());
  ASSERT_TRUE(writer.Close().ok());

  FileBackend reader;
  StoreStats rstats;
  ASSERT_TRUE(reader.Open(cfg, 0, 1, &rstats, /*recover=*/true).ok());
  BackendRecovery out;
  ASSERT_TRUE(reader.Scan(&out).ok());
  ASSERT_EQ(out.segments.size(), 1u);
  ASSERT_EQ(out.rehomed.size(), 1u);
  EXPECT_EQ(out.rehomed[0].id, 2u);
  ASSERT_EQ(out.rehomed[0].entries.size(), 1u);
  EXPECT_EQ(out.rehomed[0].entries[0].page, 11u);
  EXPECT_EQ(out.rehomed[0].entries[0].seq, 3u);
  EXPECT_EQ(out.rehomed[0].entries[0].bytes, 4096u);
  // Later log position must mean larger ordinal: the tie-break depends
  // on it.
  EXPECT_GT(out.rehomed[0].ordinal, out.segments[0].ordinal);
}

// Mid-upgrade crash compatibility: a log *created* by the format-1
// writer but *appended to* by the re-homing writer carries a format-1
// geometry stamp over records only format 2 defines (the stamp is
// written once at create and never rewritten, so this is exactly what
// a crash between upgrading the binary and recreating the store leaves
// behind). The reader must parse the re-homing records regardless of
// the stamp, and recovery must apply them newest-wins.
TEST_F(IoBackendTest, MixedVersionUpgradeLogRecoversNewestWins) {
  const StoreConfig cfg = FileConfig(/*fsync=*/true);
  size_t live_before = 0;
  {
    auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kGreedy));
    ASSERT_NE(store, nullptr);
    Rng rng(37);
    for (PageId p = 0; p < 32; ++p) ASSERT_TRUE(store->Write(p).ok());
    for (int i = 0; i < 800; ++i) {
      ASSERT_TRUE(store->Write(rng.NextBounded(32)).ok());
    }
    live_before = store->LivePageCount();
    ASSERT_TRUE(store->Close().ok());
  }
  // Downgrade the stamp: the log now claims format 1 (pre-re-homing).
  PatchGeometryFormat(dir_, 1);

  // The upgraded writer appends a re-homing record to the old log —
  // re-home every live entry of one sealed segment, as AllocateSegment
  // would before reusing the slot.
  BackendSegmentRecord victim;
  {
    FileBackend writer;
    StoreStats wstats;
    ASSERT_TRUE(writer.Open(cfg, 0, 1, &wstats, /*recover=*/true).ok());
    BackendRecovery scan;
    ASSERT_TRUE(writer.Scan(&scan).ok());
    ASSERT_FALSE(scan.segments.empty());
    for (const BackendSegmentRecord& rec : scan.segments) {
      for (const Segment::Entry& e : rec.entries) {
        if (e.page == kInvalidPage) continue;
        if (victim.entries.empty()) victim = rec;
      }
    }
    ASSERT_FALSE(victim.entries.empty()) << "no sealed segment to re-home";
    ASSERT_TRUE(writer.RehomeEntries(victim).ok());
    ASSERT_TRUE(writer.Close().ok());
  }

  // Full recovery over the mixed log: the re-homing record's entries
  // win their equal-seq ties by ordinal and get materialised into a
  // fresh slot; nothing is lost, everything stays readable.
  Status st;
  auto store = LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy), &st);
  ASSERT_NE(store, nullptr) << st.ToString();
  EXPECT_TRUE(store->CheckInvariants().ok());
  EXPECT_EQ(store->LivePageCount(), live_before);
  for (const Segment::Entry& e : victim.entries) {
    if (e.page == kInvalidPage) continue;
    ASSERT_TRUE(store->Contains(e.page)) << "page " << e.page;
    std::vector<uint8_t> data;
    EXPECT_TRUE(store->ReadPage(e.page, &data).ok()) << "page " << e.page;
  }
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(IoBackendTest, CrashAfterOpsTearsFilesAndKillsBackend) {
  auto fault =
      std::make_unique<FaultInjectionBackend>(std::make_unique<FileBackend>());
  FaultInjectionBackend* handle = fault.get();
  StoreConfig cfg = FileConfig(/*fsync=*/true);
  auto store = LogStructuredStore::CreateWithBackend(
      cfg, MakePolicy(Variant::kGreedy), std::move(fault));
  ASSERT_NE(store, nullptr);
  handle->CrashAfterOps(5, /*seed=*/77);

  Rng rng(29);
  Status last = Status::OK();
  int acknowledged = 0;
  for (int i = 0; i < 4000 && last.ok(); ++i) {
    last = store->Write(rng.NextBounded(32));
    if (last.ok()) ++acknowledged;
  }
  EXPECT_FALSE(last.ok());
  EXPECT_TRUE(handle->crashed());
  EXPECT_GT(acknowledged, 0);
  // The dead backend rejects everything, including Close.
  EXPECT_FALSE(store->Close().ok());
  store.reset();

  // The torn files must still recover to a consistent, usable store.
  Status st;
  auto reopened =
      LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy), &st);
  ASSERT_NE(reopened, nullptr) << st.ToString();
  EXPECT_TRUE(reopened->CheckInvariants().ok());
  for (PageId p = 0; p < 48; ++p) {
    if (!reopened->Contains(p)) continue;
    std::vector<uint8_t> data;
    EXPECT_TRUE(reopened->ReadPage(p, &data).ok()) << p;
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(reopened->Write(rng.NextBounded(32)).ok()) << i;
  }
  EXPECT_TRUE(reopened->CheckInvariants().ok());
}

TEST_F(IoBackendTest, AsyncSealStoreReadsAndRecovers) {
  StoreConfig cfg = FileConfig(/*fsync=*/true);
  cfg.async_seal = true;
  cfg.seal_queue_depth = 4;
  cfg.checkpoint_interval_ops = 8;
  size_t live_before = 0;
  {
    auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kGreedy));
    ASSERT_NE(store, nullptr);
    Rng rng(31);
    for (PageId p = 0; p < 32; ++p) ASSERT_TRUE(store->Write(p).ok());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(store->Write(rng.NextBounded(32)).ok());
      if (i % 97 == 0) {
        // Reads may race queued seals; ReadPage must wait them out.
        const PageId p = rng.NextBounded(32);
        if (store->Contains(p)) {
          std::vector<uint8_t> data;
          const Status s = store->ReadPage(p, &data);
          // Buffered/open-segment versions are legitimately unreadable.
          EXPECT_TRUE(s.ok() ||
                      s.code() == Status::Code::kInvalidArgument)
              << s.ToString();
        }
      }
    }
    ASSERT_TRUE(store->Checkpoint().ok());
    const StoreStats snap = store->StatsSnapshot();
    EXPECT_GT(snap.seal_queue_enqueued, 0u);
    EXPECT_GT(snap.group_fsyncs, 0u);
    EXPECT_GT(snap.checkpoints_written, 0u);
    EXPECT_GT(snap.device_bytes_written, 0u);
    live_before = store->LivePageCount();
    ASSERT_TRUE(store->Close().ok());
  }
  // Reopen in async mode too: recovery + pipeline restart.
  Status st;
  auto store = LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy), &st);
  ASSERT_NE(store, nullptr) << st.ToString();
  EXPECT_TRUE(store->CheckInvariants().ok());
  EXPECT_EQ(store->LivePageCount(), live_before);
  for (PageId p = 0; p < 32; ++p) {
    std::vector<uint8_t> data;
    EXPECT_TRUE(store->ReadPage(p, &data).ok()) << p;
  }
}

TEST_F(IoBackendTest, FaultInjectionWrapsFileBackend) {
  // The double composes with a real backend, so fault tests can also run
  // against real files.
  auto inner = std::make_unique<FileBackend>();
  auto fault = std::make_unique<FaultInjectionBackend>(std::move(inner));
  FaultInjectionBackend* handle = fault.get();
  handle->FailSealsAfter(2, Status::Corruption("injected"));
  auto store = LogStructuredStore::CreateWithBackend(
      FileConfig(), MakePolicy(Variant::kGreedy), std::move(fault));
  ASSERT_NE(store, nullptr);
  Status last = Status::OK();
  for (PageId p = 0; p < 64 && last.ok(); ++p) last = store->Write(p);
  EXPECT_EQ(last.code(), Status::Code::kCorruption);
  EXPECT_EQ(handle->seals(), 2);
}

// ---------------------------------------------------------------------
// io_uring backend parity. The overlapped write path must be invisible
// on disk: the same operation sequence through FileBackend and
// UringBackend yields byte-identical metadata logs (and payload files),
// so either backend can recover the other's state. Skip-gated on the
// runtime capability probe — kernels or seccomp policies without
// io_uring skip with the probe's reason instead of failing.
// ---------------------------------------------------------------------

// Reads a whole file; empty vector (with a failed assertion) on error.
std::vector<uint8_t> ReadAllBytes(const std::string& path) {
  std::vector<uint8_t> out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return out;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

// Two scratch directories — one per backend under comparison.
class UringParityTest : public IoBackendTest {
 protected:
  void SetUp() override {
    IoBackendTest::SetUp();
    std::string reason;
    if (!UringBackend::ProbeAvailable(&reason)) {
      GTEST_SKIP() << "io_uring unavailable: " << reason;
    }
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/lss_uring_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASSERT_NE(::mkdtemp(buf.data()), nullptr);
    uring_dir_ = buf.data();
  }

  void TearDown() override {
    if (!uring_dir_.empty()) {
      for (uint32_t i = 0; i < 64; ++i) {
        ::unlink(FileBackend::DataPath(uring_dir_, i).c_str());
        ::unlink(FileBackend::MetaPath(uring_dir_, i).c_str());
      }
      ::rmdir(uring_dir_.c_str());
    }
    IoBackendTest::TearDown();
  }

  StoreConfig UringConfig(bool fsync = false) {
    StoreConfig c = SmallConfig();
    c.backend = BackendKind::kUring;
    c.backend_dir = uring_dir_;
    c.backend_fsync = fsync;
    return c;
  }

  std::string uring_dir_;
};

// The canonical durable-op sequence of the seam: seals (including a
// reseal of the same slot), a full checkpoint, a delta extending it, a
// reclaim, a delete tombstone and a re-homing record.
void DriveParitySequence(SegmentBackend* b) {
  auto entry = [](PageId page, uint64_t seq, uint64_t offset) {
    Segment::Entry e;
    e.page = page;
    e.bytes = 4096;
    e.seq = seq;
    e.last_update = seq;
    e.offset = offset;
    return e;
  };

  BackendSegmentRecord s0;
  s0.id = 0;
  s0.source = SegmentSource::kUser;
  s0.seal_time = 4;
  s0.unow = 4;
  s0.entries = {entry(1, 1, 0), entry(2, 2, 4096), entry(3, 3, 2 * 4096),
                entry(4, 4, 3 * 4096)};
  ASSERT_TRUE(b->SealSegment(s0).ok());

  // Open-segment checkpoint chain on slot 1: full record, then a
  // suffix-only delta, then the real seal superseding both.
  BackendSegmentRecord ck;
  ck.id = 1;
  ck.source = SegmentSource::kUser;
  ck.seal_time = 6;
  ck.unow = 6;
  ck.checkpoint = true;
  ck.entries = {entry(5, 5, 0), entry(6, 6, 4096)};
  ASSERT_TRUE(b->Checkpoint(ck).ok());

  BackendSegmentRecord d = ck;
  d.delta = true;
  d.seal_time = 7;
  d.unow = 7;
  d.prefix_entries = 2;
  d.suffix_offset = 2 * 4096;
  d.suffix_length = 4096;
  d.entries = {entry(7, 7, 2 * 4096)};
  ASSERT_TRUE(b->CheckpointDelta(d).ok());

  BackendSegmentRecord s1 = ck;
  s1.checkpoint = false;
  s1.seal_time = 8;
  s1.unow = 8;
  s1.entries.push_back(entry(7, 7, 2 * 4096));
  s1.entries.push_back(entry(8, 8, 3 * 4096));
  ASSERT_TRUE(b->SealSegment(s1).ok());

  // Reseal slot 0 (GC rewrote it), free the old copy's nothing — then
  // reclaim slot 1 and tombstone a page.
  BackendSegmentRecord s0b = s0;
  s0b.source = SegmentSource::kGc;
  s0b.seal_time = 10;
  s0b.unow = 10;
  s0b.entries = {entry(1, 9, 0), entry(3, 10, 4096)};
  ASSERT_TRUE(b->SealSegment(s0b).ok());
  ASSERT_TRUE(b->ReclaimSegment(1, /*unow=*/11).ok());
  ASSERT_TRUE(b->RecordDelete(3, /*seq=*/11, /*unow=*/12).ok());

  // Re-home slot 0's survivors, as withheld-slot reuse would.
  BackendSegmentRecord rh = s0b;
  rh.seal_time = 13;
  rh.unow = 13;
  ASSERT_TRUE(b->RehomeEntries(rh).ok());
  ASSERT_TRUE(b->Sync().ok());
}

TEST_F(UringParityTest, RawSequenceYieldsByteIdenticalFiles) {
  const StoreConfig fcfg = FileConfig(/*fsync=*/true);
  StoreConfig ucfg = UringConfig(/*fsync=*/true);
  {
    StoreStats fstats;
    FileBackend file;
    ASSERT_TRUE(file.Open(fcfg, 0, 1, &fstats, /*recover=*/false).ok());
    DriveParitySequence(&file);
    ASSERT_TRUE(file.Close().ok());

    StoreStats ustats;
    UringBackend uring;
    ASSERT_TRUE(uring.Open(ucfg, 0, 1, &ustats, /*recover=*/false).ok());
    ASSERT_TRUE(uring.ring_active()) << uring.fallback_reason();
    DriveParitySequence(&uring);
    // The ring overlaps payload writes but must account them identically.
    EXPECT_GT(ustats.uring_submitted, 0u);
    EXPECT_EQ(ustats.device_bytes_written, fstats.device_bytes_written);
    ASSERT_TRUE(uring.Close().ok());
  }

  // Byte-for-byte identical durable state: metadata log and payload file.
  EXPECT_EQ(ReadAllBytes(FileBackend::MetaPath(dir_, 0)),
            ReadAllBytes(FileBackend::MetaPath(uring_dir_, 0)));
  EXPECT_EQ(ReadAllBytes(FileBackend::DataPath(dir_, 0)),
            ReadAllBytes(FileBackend::DataPath(uring_dir_, 0)));

  // Cross-recovery: a plain FileBackend reads the uring-written log...
  FileBackend reader;
  StoreStats rstats;
  ASSERT_TRUE(reader.Open(ucfg, 0, 1, &rstats, /*recover=*/true).ok());
  BackendRecovery out;
  ASSERT_TRUE(reader.Scan(&out).ok());
  // Slot 1 was reclaimed, so only slot 0's (latest) seal survives.
  ASSERT_EQ(out.segments.size(), 1u);
  EXPECT_EQ(out.segments[0].id, 0u);
  EXPECT_EQ(out.segments[0].entries.size(), 2u);
  ASSERT_EQ(out.rehomed.size(), 1u);
  ASSERT_EQ(out.deletes.size(), 1u);
  EXPECT_EQ(out.deletes[0].first, 3u);
  // ...and the payload the ring wrote reads back with the right pattern.
  std::vector<uint8_t> data;
  ASSERT_TRUE(reader.ReadPagePayload(0, 0, 1, 4096, &data).ok());
  EXPECT_TRUE(VerifyPagePayload(1, 4096, data.data()));
  ASSERT_TRUE(reader.Close().ok());
}

TEST_F(UringParityTest, StoreChurnMatchesFileBackendBitForBit) {
  // Same churn, same seed, different backend: every simulator counter
  // and every durable byte must match. Runs the full store stack —
  // seals, GC rewrites, deletes, checkpoints — through the ring.
  auto churn = [](const StoreConfig& cfg) {
    StoreConfig c = cfg;
    c.checkpoint_interval_ops = 64;
    auto store = LogStructuredStore::Create(c, MakePolicy(Variant::kGreedy));
    EXPECT_NE(store, nullptr);
    Rng rng(19);
    for (PageId p = 0; p < 32; ++p) EXPECT_TRUE(store->Write(p).ok());
    for (int i = 0; i < 2500; ++i) {
      const PageId p = rng.NextBounded(32);
      if (store->Contains(p) && rng.NextBool(0.05)) {
        EXPECT_TRUE(store->Delete(p).ok());
      } else {
        EXPECT_TRUE(store->Write(p).ok());
      }
    }
    EXPECT_TRUE(store->CheckInvariants().ok());
    return store;
  };

  auto file_store = churn(FileConfig(/*fsync=*/true));
  auto uring_store = churn(UringConfig(/*fsync=*/true));
  const StoreStats a = file_store->StatsSnapshot();
  const StoreStats b = uring_store->StatsSnapshot();
  EXPECT_EQ(b.uring_available, 1u);
  EXPECT_GT(b.uring_submitted, 0u);
  EXPECT_EQ(a.user_updates, b.user_updates);
  EXPECT_EQ(a.user_segments_sealed, b.user_segments_sealed);
  EXPECT_EQ(a.gc_segments_sealed, b.gc_segments_sealed);
  EXPECT_EQ(a.segments_cleaned, b.segments_cleaned);
  EXPECT_EQ(a.device_bytes_written, b.device_bytes_written);
  EXPECT_EQ(a.device_write_ops, b.device_write_ops);
  const size_t file_live = file_store->LivePageCount();
  std::vector<bool> file_has(32);
  for (PageId p = 0; p < 32; ++p) file_has[p] = file_store->Contains(p);
  ASSERT_TRUE(file_store->Close().ok());
  ASSERT_TRUE(uring_store->Close().ok());

  EXPECT_EQ(ReadAllBytes(FileBackend::MetaPath(dir_, 0)),
            ReadAllBytes(FileBackend::MetaPath(uring_dir_, 0)));
  EXPECT_EQ(ReadAllBytes(FileBackend::DataPath(dir_, 0)),
            ReadAllBytes(FileBackend::DataPath(uring_dir_, 0)));

  // The uring-written store recovers through the uring backend too.
  Status st;
  auto reopened = LogStructuredStore::Open(
      UringConfig(/*fsync=*/true), MakePolicy(Variant::kGreedy), &st);
  ASSERT_NE(reopened, nullptr) << st.ToString();
  EXPECT_TRUE(reopened->CheckInvariants().ok());
  EXPECT_EQ(reopened->LivePageCount(), file_live);
  for (PageId p = 0; p < 32; ++p) {
    ASSERT_EQ(reopened->Contains(p), file_has[p]) << p;
    if (!reopened->Contains(p)) continue;
    std::vector<uint8_t> data;
    EXPECT_TRUE(reopened->ReadPage(p, &data).ok()) << p;
  }
  ASSERT_TRUE(reopened->Close().ok());
}

TEST_F(UringParityTest, AsyncSealPipelineOverUringRecovers) {
  // The ring under the seal pipeline: payload writes overlap inside a
  // group-commit batch, the batch-end Sync reaps them, WaitApplied
  // (exercised by ReadPage racing queued seals) keeps its durability
  // meaning.
  StoreConfig cfg = UringConfig(/*fsync=*/true);
  cfg.async_seal = true;
  cfg.seal_queue_depth = 4;
  cfg.checkpoint_interval_ops = 32;
  size_t live_before = 0;
  {
    auto store = LogStructuredStore::Create(cfg, MakePolicy(Variant::kGreedy));
    ASSERT_NE(store, nullptr);
    Rng rng(43);
    for (PageId p = 0; p < 32; ++p) ASSERT_TRUE(store->Write(p).ok());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(store->Write(rng.NextBounded(32)).ok());
      if (i % 89 == 0) {
        const PageId p = rng.NextBounded(32);
        if (store->Contains(p)) {
          std::vector<uint8_t> data;
          const Status s = store->ReadPage(p, &data);
          EXPECT_TRUE(s.ok() || s.code() == Status::Code::kInvalidArgument)
              << s.ToString();
        }
      }
    }
    const StoreStats snap = store->StatsSnapshot();
    EXPECT_EQ(snap.uring_available, 1u);
    EXPECT_GT(snap.uring_submitted, 0u);
    EXPECT_GT(snap.group_fsyncs, 0u);
    live_before = store->LivePageCount();
    ASSERT_TRUE(store->Close().ok());
  }
  Status st;
  auto store = LogStructuredStore::Open(cfg, MakePolicy(Variant::kGreedy), &st);
  ASSERT_NE(store, nullptr) << st.ToString();
  EXPECT_TRUE(store->CheckInvariants().ok());
  EXPECT_EQ(store->LivePageCount(), live_before);
}

// NOT skip-gated: whichever way the probe goes, the backend must work.
// With a ring it reports the capability; without one it degrades to the
// FileBackend write path with a recorded reason — either way the store
// round-trips. This is the test that pins the fallback contract on
// kernels where the gated suite above skips.
TEST_F(IoBackendTest, UringBackendWorksWithOrWithoutRing) {
  StoreConfig cfg = FileConfig(/*fsync=*/true);
  cfg.backend = BackendKind::kUring;
  StoreStats stats;
  {
    UringBackend backend;
    ASSERT_TRUE(backend.Open(cfg, 0, 1, &stats, /*recover=*/false).ok());
    std::string reason;
    const bool probed = UringBackend::ProbeAvailable(&reason);
    EXPECT_EQ(backend.ring_active(), probed) << reason;
    if (backend.ring_active()) {
      EXPECT_EQ(stats.uring_available, 1u);
      EXPECT_TRUE(backend.fallback_reason().empty());
    } else {
      EXPECT_EQ(stats.uring_available, 0u);
      EXPECT_FALSE(backend.fallback_reason().empty());
    }
    DriveParitySequence(&backend);
    ASSERT_TRUE(backend.Close().ok());
  }
  UringBackend reader;
  StoreStats rstats;
  ASSERT_TRUE(reader.Open(cfg, 0, 1, &rstats, /*recover=*/true).ok());
  BackendRecovery out;
  ASSERT_TRUE(reader.Scan(&out).ok());
  ASSERT_EQ(out.segments.size(), 1u);
  ASSERT_EQ(out.rehomed.size(), 1u);
  ASSERT_EQ(out.deletes.size(), 1u);
  std::vector<uint8_t> data;
  ASSERT_TRUE(reader.ReadPagePayload(0, 0, 1, 4096, &data).ok());
  EXPECT_TRUE(VerifyPagePayload(1, 4096, data.data()));
  ASSERT_TRUE(reader.Close().ok());
}

}  // namespace
}  // namespace lss
