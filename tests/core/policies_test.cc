#include <memory>

#include <gtest/gtest.h>

#include "core/policies/age_policy.h"
#include "core/policies/cost_benefit_policy.h"
#include "core/policies/greedy_policy.h"
#include "core/policies/mdc_policy.h"
#include "core/policies/multilog_policy.h"
#include "core/policy_factory.h"
#include "core/store.h"
#include "util/rng.h"

namespace lss {
namespace {

// A store with hand-crafted segment states: we drive writes so that
// victim preferences are predictable.
StoreConfig TinyConfig() {
  StoreConfig c;
  c.page_bytes = 4096;
  c.segment_bytes = 4 * 4096;
  c.num_segments = 16;
  c.clean_trigger_segments = 1;
  c.clean_batch_segments = 2;
  c.write_buffer_segments = 0;
  c.separate_user_writes = false;
  c.separate_gc_writes = false;
  return c;
}

std::unique_ptr<LogStructuredStore> MakeStore(
    std::unique_ptr<CleaningPolicy> policy) {
  Status st;
  auto store = LogStructuredStore::Create(TinyConfig(), std::move(policy), &st);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return store;
}

// Writes pages [base, base+n) once each; with 4-page segments this seals
// a segment per 4 pages.
void WriteRange(LogStructuredStore* store, PageId base, int n) {
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(store->Write(base + i).ok());
  }
}

TEST(AgePolicyTest, PicksOldestSealedSegment) {
  auto store = MakeStore(std::make_unique<AgePolicy>());
  WriteRange(store.get(), 0, 12);  // seals segments in write order
  AgePolicy policy;
  std::vector<SegmentId> victims;
  policy.SelectVictims(store->shard(), 0, 2, &victims);
  ASSERT_EQ(victims.size(), 2u);
  // Victims must be the two earliest-sealed segments.
  const auto& segs = store->segments();
  for (SegmentId id = 0; id < segs.size(); ++id) {
    if (segs[id].state() != SegmentState::kSealed) continue;
    EXPECT_GE(segs[id].seal_time(), segs[victims[0]].seal_time());
  }
  EXPECT_LE(segs[victims[0]].seal_time(), segs[victims[1]].seal_time());
}

TEST(GreedyPolicyTest, PicksEmptiestSegment) {
  auto store = MakeStore(std::make_unique<GreedyPolicy>());
  WriteRange(store.get(), 0, 12);
  // Punch holes: overwrite 3 of the 4 pages of the first segment.
  ASSERT_TRUE(store->Write(0).ok());
  ASSERT_TRUE(store->Write(1).ok());
  ASSERT_TRUE(store->Write(2).ok());
  GreedyPolicy policy;
  std::vector<SegmentId> victims;
  policy.SelectVictims(store->shard(), 0, 1, &victims);
  ASSERT_EQ(victims.size(), 1u);
  const auto& segs = store->segments();
  for (SegmentId id = 0; id < segs.size(); ++id) {
    if (segs[id].state() != SegmentState::kSealed) continue;
    EXPECT_LE(segs[id].available_bytes(), segs[victims[0]].available_bytes());
  }
  EXPECT_GE(segs[victims[0]].Emptiness(), 0.75);
}

TEST(CostBenefitPolicyTest, PrefersOldColdOverYoungEqualEmptiness) {
  auto store = MakeStore(std::make_unique<CostBenefitPolicy>());
  // Segment A (pages 0..3) sealed early, segment B (4..7) later; give both
  // one dead page, then advance the clock with unrelated writes.
  WriteRange(store.get(), 0, 8);
  ASSERT_TRUE(store->Write(0).ok());  // hole in A
  ASSERT_TRUE(store->Write(4).ok());  // hole in B
  WriteRange(store.get(), 100, 4);    // advance clock
  CostBenefitPolicy policy;
  std::vector<SegmentId> victims;
  policy.SelectVictims(store->shard(), 0, 1, &victims);
  ASSERT_EQ(victims.size(), 1u);
  // The older of the two equally-empty segments wins on age.
  const auto& segs = store->segments();
  SegmentId oldest = kInvalidSegment;
  for (SegmentId id = 0; id < segs.size(); ++id) {
    if (segs[id].state() != SegmentState::kSealed) continue;
    if (segs[id].Emptiness() == 0.0) continue;
    if (oldest == kInvalidSegment ||
        segs[id].seal_time() < segs[oldest].seal_time()) {
      oldest = id;
    }
  }
  EXPECT_EQ(victims[0], oldest);
}

TEST(CostBenefitPolicyTest, NeverPicksFullyLiveSegmentFirst) {
  auto store = MakeStore(std::make_unique<CostBenefitPolicy>());
  WriteRange(store.get(), 0, 12);
  ASSERT_TRUE(store->Write(0).ok());  // only segment 0 has a hole
  CostBenefitPolicy policy;
  std::vector<SegmentId> victims;
  policy.SelectVictims(store->shard(), 0, 1, &victims);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_GT(store->segments()[victims[0]].Emptiness(), 0.0);
}

TEST(MdcPolicyTest, FullyEmptySegmentCleanedFirst) {
  auto store = MakeStore(std::make_unique<MdcPolicy>());
  WriteRange(store.get(), 0, 12);
  // Kill all pages of the second segment (pages 4..7).
  for (PageId p = 4; p < 8; ++p) ASSERT_TRUE(store->Write(p).ok());
  MdcPolicy policy;
  std::vector<SegmentId> victims;
  policy.SelectVictims(store->shard(), 0, 1, &victims);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_DOUBLE_EQ(store->segments()[victims[0]].Emptiness(), 1.0);
}

TEST(MdcPolicyTest, FullyLiveSegmentCleanedLast) {
  auto store = MakeStore(std::make_unique<MdcPolicy>());
  WriteRange(store.get(), 0, 12);
  ASSERT_TRUE(store->Write(0).ok());
  ASSERT_TRUE(store->Write(4).ok());
  MdcPolicy policy;
  std::vector<SegmentId> victims;
  // Ask for all sealed victims; the fully-live ones must sort to the end.
  policy.SelectVictims(store->shard(), 0, 100, &victims);
  ASSERT_GE(victims.size(), 3u);
  EXPECT_EQ(store->segments()[victims.back()].Emptiness(), 0.0);
  EXPECT_GT(store->segments()[victims.front()].Emptiness(), 0.0);
}

// §4.5: for a uniform distribution MDC orders segments exactly as greedy:
// (1-E)/E^2 is monotone decreasing in E, so smallest-decline = largest-E,
// provided update frequencies are equal.
TEST(MdcPolicyTest, MatchesGreedyOrderUnderEqualFrequency) {
  auto store = MakeStore(std::make_unique<MdcPolicy>(true));
  store->SetExactFrequencyOracle([](PageId) { return 1.0; });
  WriteRange(store.get(), 0, 16);
  // Punch a different number of holes per segment.
  ASSERT_TRUE(store->Write(0).ok());
  ASSERT_TRUE(store->Write(1).ok());
  ASSERT_TRUE(store->Write(2).ok());
  ASSERT_TRUE(store->Write(4).ok());
  ASSERT_TRUE(store->Write(5).ok());
  ASSERT_TRUE(store->Write(8).ok());

  MdcPolicy mdc(true);
  GreedyPolicy greedy;
  std::vector<SegmentId> mdc_victims, greedy_victims;
  mdc.SelectVictims(store->shard(), 0, 3, &mdc_victims);
  greedy.SelectVictims(store->shard(), 0, 3, &greedy_victims);
  ASSERT_EQ(mdc_victims.size(), 3u);
  // Compare by emptiness rank rather than id (ties may reorder ids).
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(store->segments()[mdc_victims[i]].Emptiness(),
                     store->segments()[greedy_victims[i]].Emptiness());
  }
}

// The declining-cost priority: between two equally-empty segments, the one
// whose pages update *less* frequently (larger unow - up2) has the smaller
// expected decline and must be cleaned first (§4.1 "process first the
// objects with the smallest rates of decline").
TEST(MdcPolicyTest, ColderOfEqualEmptinessCleanedFirst) {
  auto store = MakeStore(std::make_unique<MdcPolicy>(true));
  // Give pages 0..3 high frequency, 4..7 low, via the oracle.
  store->SetExactFrequencyOracle(
      [](PageId p) { return p < 4 ? 8.0 : 0.125; });
  WriteRange(store.get(), 0, 8);
  ASSERT_TRUE(store->Write(0).ok());  // one hole in hot segment
  ASSERT_TRUE(store->Write(4).ok());  // one hole in cold segment
  MdcPolicy policy(true);
  std::vector<SegmentId> victims;
  policy.SelectVictims(store->shard(), 0, 2, &victims);
  ASSERT_EQ(victims.size(), 2u);
  // First victim: the cold segment (pages 5..7 live, upf 0.125).
  const Segment& first = store->segments()[victims[0]];
  double mean_upf = first.exact_upf_sum() / first.live_count();
  EXPECT_LT(mean_upf, 1.0);
}

TEST(MultiLogPolicyTest, SingleLogWithoutHistory) {
  MultiLogPolicy policy;
  auto store = MakeStore(std::make_unique<MultiLogPolicy>());
  // Unknown frequency (first writes): everything goes to one log.
  const uint32_t log0 = policy.PlacementLog(store->shard(), 0, false, 0.0);
  const uint32_t log1 = policy.PlacementLog(store->shard(), 1, false, 0.0);
  EXPECT_EQ(log0, log1);
  EXPECT_EQ(policy.NumLogs(), 1u);
}

TEST(MultiLogPolicyTest, DistinctBandsGetDistinctLogs) {
  MultiLogPolicy policy;
  auto store = MakeStore(std::make_unique<MultiLogPolicy>());
  const uint32_t hot = policy.PlacementLog(store->shard(), 0, false, 1.0 / 4.0);
  const uint32_t cold = policy.PlacementLog(store->shard(), 1, false, 1.0 / 4096.0);
  EXPECT_NE(hot, cold);
  // Same band maps to the same log.
  EXPECT_EQ(policy.PlacementLog(store->shard(), 2, false, 1.0 / 5.0), hot);
}

TEST(MultiLogPolicyTest, LogCapFallsBackToNearestBand) {
  MultiLogPolicy policy(false, /*max_logs=*/2);
  auto store = MakeStore(std::make_unique<MultiLogPolicy>());
  const uint32_t a = policy.PlacementLog(store->shard(), 0, false, 1.0 / 2.0);
  const uint32_t b = policy.PlacementLog(store->shard(), 1, false, 1.0 / (1 << 20));
  EXPECT_EQ(policy.NumLogs(), 2u);
  // A third band must reuse one of the two existing logs.
  const uint32_t c = policy.PlacementLog(store->shard(), 2, false, 1.0 / (1 << 10));
  EXPECT_TRUE(c == a || c == b);
  EXPECT_EQ(policy.NumLogs(), 2u);
}

TEST(MultiLogPolicyTest, CleansOneSegmentAtATime) {
  MultiLogPolicy policy;
  EXPECT_EQ(policy.PreferredBatch(64), 1u);
}

TEST(MultiLogPolicyTest, SelectsVictimFromOwnOrNeighbourLogs) {
  Status st;
  StoreConfig cfg = TinyConfig();
  cfg.gc_shares_user_stream = true;
  auto policy_owned = std::make_unique<MultiLogPolicy>();
  MultiLogPolicy* policy = policy_owned.get();
  auto store = LogStructuredStore::Create(cfg, std::move(policy_owned), &st);
  ASSERT_TRUE(st.ok());
  // Fill with first writes: all in the unknown-frequency log.
  for (PageId p = 0; p < 12; ++p) ASSERT_TRUE(store->Write(p).ok());
  std::vector<SegmentId> victims;
  policy->SelectVictims(store->shard(), /*triggering_log=*/0, 4, &victims);
  ASSERT_EQ(victims.size(), 1u);  // one at a time
  EXPECT_EQ(store->segments()[victims[0]].state(), SegmentState::kSealed);
}

TEST(PolicyFactoryTest, NamesRoundTrip) {
  for (Variant v : AllVariants()) {
    Variant parsed;
    ASSERT_TRUE(ParseVariant(VariantName(v), &parsed)) << VariantName(v);
    EXPECT_EQ(parsed, v);
  }
  Variant dummy;
  EXPECT_FALSE(ParseVariant("no-such-policy", &dummy));
}

TEST(PolicyFactoryTest, PolicyNamesMatchVariantLabels) {
  // The policy object reports the paper's label (ablations share the MDC
  // policy object, so their label comes from the variant, not the policy).
  EXPECT_EQ(MakePolicy(Variant::kAge)->name(), "age");
  EXPECT_EQ(MakePolicy(Variant::kGreedy)->name(), "greedy");
  EXPECT_EQ(MakePolicy(Variant::kCostBenefit)->name(), "cost-benefit");
  EXPECT_EQ(MakePolicy(Variant::kMultiLog)->name(), "multi-log");
  EXPECT_EQ(MakePolicy(Variant::kMultiLogOpt)->name(), "multi-log-opt");
  EXPECT_EQ(MakePolicy(Variant::kMdc)->name(), "MDC");
  EXPECT_EQ(MakePolicy(Variant::kMdcOpt)->name(), "MDC-opt");
}

TEST(PolicyFactoryTest, VariantConfigConventions) {
  StoreConfig c;
  c.write_buffer_segments = 16;
  ApplyVariantConfig(Variant::kAge, &c);
  EXPECT_EQ(c.write_buffer_segments, 0u);
  EXPECT_FALSE(c.separate_user_writes);

  c = StoreConfig{};
  c.write_buffer_segments = 16;
  ApplyVariantConfig(Variant::kMdc, &c);
  EXPECT_EQ(c.write_buffer_segments, 16u);
  EXPECT_TRUE(c.separate_user_writes);
  EXPECT_TRUE(c.separate_gc_writes);

  c = StoreConfig{};
  ApplyVariantConfig(Variant::kMdcNoSepUser, &c);
  EXPECT_FALSE(c.separate_user_writes);
  EXPECT_TRUE(c.separate_gc_writes);

  c = StoreConfig{};
  ApplyVariantConfig(Variant::kMdcNoSepUserGc, &c);
  EXPECT_FALSE(c.separate_user_writes);
  EXPECT_FALSE(c.separate_gc_writes);

  c = StoreConfig{};
  ApplyVariantConfig(Variant::kMultiLog, &c);
  EXPECT_TRUE(c.gc_shares_user_stream);
  EXPECT_EQ(c.write_buffer_segments, 0u);
}

TEST(PolicyFactoryTest, OracleRequirements) {
  EXPECT_FALSE(VariantNeedsOracle(Variant::kMdc));
  EXPECT_TRUE(VariantNeedsOracle(Variant::kMdcOpt));
  EXPECT_FALSE(VariantNeedsOracle(Variant::kMultiLog));
  EXPECT_TRUE(VariantNeedsOracle(Variant::kMultiLogOpt));
  EXPECT_FALSE(VariantNeedsOracle(Variant::kAge));
}

}  // namespace
}  // namespace lss
