#include "core/stats.h"

#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "core/store.h"
#include "util/rng.h"

namespace lss {
namespace {

TEST(StoreStatsTest, WampDefinition) {
  StoreStats s;
  EXPECT_EQ(s.WriteAmplification(), 0.0);  // no division by zero
  s.user_pages_written = 100;
  s.gc_pages_written = 150;
  EXPECT_DOUBLE_EQ(s.WriteAmplification(), 1.5);
}

TEST(StoreStatsTest, ResetMeasurementZeroesEverything) {
  StoreStats s;
  s.user_updates = 1;
  s.user_pages_written = 2;
  s.gc_pages_written = 3;
  s.segments_cleaned = 4;
  s.cleanings = 5;
  s.deletes = 6;
  s.mutable_clean_emptiness().Add(0.5);
  s.seal_queue_enqueued = 7;
  s.seal_queue_stalls = 8;
  s.group_fsyncs = 9;
  s.group_fsync_ops = 10;
  s.checkpoints_written = 11;
  s.ResetMeasurement();
  EXPECT_EQ(s.user_updates, 0u);
  EXPECT_EQ(s.user_pages_written, 0u);
  EXPECT_EQ(s.gc_pages_written, 0u);
  EXPECT_EQ(s.segments_cleaned, 0u);
  EXPECT_EQ(s.cleanings, 0u);
  EXPECT_EQ(s.deletes, 0u);
  EXPECT_EQ(s.seal_queue_enqueued, 0u);
  EXPECT_EQ(s.seal_queue_stalls, 0u);
  EXPECT_EQ(s.group_fsyncs, 0u);
  EXPECT_EQ(s.group_fsync_ops, 0u);
  EXPECT_EQ(s.checkpoints_written, 0u);
  EXPECT_EQ(s.clean_emptiness().count(), 0u);
  EXPECT_EQ(s.MeanCleanEmptiness(), 0.0);
}

TEST(StoreStatsTest, MergeCoversPipelineCounters) {
  StoreStats a, b;
  a.seal_queue_enqueued = 1;
  a.group_fsyncs = 2;
  b.seal_queue_enqueued = 3;
  b.seal_queue_stalls = 4;
  b.group_fsyncs = 5;
  b.group_fsync_ops = 6;
  b.checkpoints_written = 7;
  a.Merge(b);
  EXPECT_EQ(a.seal_queue_enqueued, 4u);
  EXPECT_EQ(a.seal_queue_stalls, 4u);
  EXPECT_EQ(a.group_fsyncs, 7u);
  EXPECT_EQ(a.group_fsync_ops, 6u);
  EXPECT_EQ(a.checkpoints_written, 7u);
}

// End-to-end accounting identity: measured Wamp must equal the ratio
// implied by the mean emptiness at clean time, Wamp ~= (1-E)/E scaled by
// the cleaned volume, and the counters must balance: every segment
// cleaned contributed its live pages to gc_pages_written.
TEST(StoreStatsTest, CleaningCountersBalance) {
  StoreConfig c;
  c.page_bytes = 4096;
  c.segment_bytes = 16 * 4096;
  c.num_segments = 64;
  c.clean_trigger_segments = 2;
  c.clean_batch_segments = 4;
  c.write_buffer_segments = 0;
  c.separate_user_writes = false;
  c.separate_gc_writes = false;
  auto store = LogStructuredStore::Create(c, MakePolicy(Variant::kGreedy));
  const uint64_t user_pages = c.UserPagesForFillFactor(0.7);
  Rng rng(5);
  for (PageId p = 0; p < user_pages; ++p) ASSERT_TRUE(store->Write(p).ok());
  for (uint64_t i = 0; i < 10 * user_pages; ++i) {
    ASSERT_TRUE(store->Write(rng.NextBounded(user_pages)).ok());
  }
  const StoreStats& s = store->stats();
  ASSERT_GT(s.segments_cleaned, 0u);
  // gc moves = sum over cleaned segments of live pages
  //          = segments_cleaned * S * (1 - mean E)   (all pages 4 KB).
  const double pages_per_seg = 16.0;
  const double expected_moves = static_cast<double>(s.segments_cleaned) *
                                pages_per_seg *
                                (1.0 - s.MeanCleanEmptiness());
  EXPECT_NEAR(static_cast<double>(s.gc_pages_written), expected_moves,
              expected_moves * 0.02);
  // Histogram saw exactly one sample per cleaned segment.
  EXPECT_EQ(s.clean_emptiness().count(), s.segments_cleaned);
  // Every logical update became a physical write (no buffer).
  EXPECT_EQ(s.user_updates, s.user_pages_written);
}

// Warm-up then measure: the measured-phase Wamp must not depend on the
// counters accumulated before ResetMeasurement.
TEST(StoreStatsTest, MeasurementWindowIsolated) {
  StoreConfig c;
  c.page_bytes = 4096;
  c.segment_bytes = 16 * 4096;
  c.num_segments = 64;
  c.clean_trigger_segments = 2;
  c.clean_batch_segments = 4;
  c.write_buffer_segments = 0;
  c.separate_user_writes = false;
  c.separate_gc_writes = false;
  auto store = LogStructuredStore::Create(c, MakePolicy(Variant::kAge));
  const uint64_t user_pages = c.UserPagesForFillFactor(0.6);
  Rng rng(6);
  for (PageId p = 0; p < user_pages; ++p) ASSERT_TRUE(store->Write(p).ok());
  for (uint64_t i = 0; i < 5 * user_pages; ++i) {
    ASSERT_TRUE(store->Write(rng.NextBounded(user_pages)).ok());
  }
  store->mutable_stats().ResetMeasurement();
  EXPECT_EQ(store->stats().WriteAmplification(), 0.0);
  for (uint64_t i = 0; i < 5 * user_pages; ++i) {
    ASSERT_TRUE(store->Write(rng.NextBounded(user_pages)).ok());
  }
  EXPECT_GT(store->stats().WriteAmplification(), 0.0);
  EXPECT_EQ(store->stats().user_updates, 5 * user_pages);
}

}  // namespace
}  // namespace lss
