#include "core/page_table.h"

#include <gtest/gtest.h>

namespace lss {
namespace {

TEST(PageLocationTest, DefaultIsAbsent) {
  PageLocation loc;
  EXPECT_FALSE(loc.Present());
  EXPECT_FALSE(loc.InBuffer());
}

TEST(PageLocationTest, BufferSentinel) {
  PageLocation loc{kBufferSegment, 3};
  EXPECT_TRUE(loc.Present());
  EXPECT_TRUE(loc.InBuffer());
}

TEST(PageLocationTest, SegmentLocation) {
  PageLocation loc{7, 12};
  EXPECT_TRUE(loc.Present());
  EXPECT_FALSE(loc.InBuffer());
}

TEST(PageTableTest, EnsureGrowsTable) {
  PageTable t;
  EXPECT_EQ(t.Size(), 0u);
  t.Ensure(9);
  EXPECT_EQ(t.Size(), 10u);
  EXPECT_FALSE(t.Present(9));
  EXPECT_FALSE(t.Present(1000));  // out of range is simply absent
}

TEST(PageTableTest, SetAndLookup) {
  PageTable t;
  PageMeta& m = t.Ensure(4);
  m.loc = PageLocation{2, 5};
  m.bytes = 4096;
  m.last_update = 77;
  EXPECT_TRUE(t.Present(4));
  EXPECT_EQ(t.Get(4).loc.segment, 2u);
  EXPECT_EQ(t.Get(4).loc.index, 5u);
  EXPECT_EQ(t.Get(4).bytes, 4096u);
  EXPECT_EQ(t.Get(4).last_update, 77u);
}

TEST(PageTableTest, CountPresent) {
  PageTable t;
  t.Ensure(10);
  EXPECT_EQ(t.CountPresent(), 0u);
  t.GetMutable(3).loc = PageLocation{0, 0};
  t.GetMutable(7).loc = PageLocation{kBufferSegment, 1};
  EXPECT_EQ(t.CountPresent(), 2u);
}

TEST(PageTableTest, EnsureIsIdempotent) {
  PageTable t;
  t.Ensure(5).bytes = 123;
  EXPECT_EQ(t.Ensure(5).bytes, 123u);
  EXPECT_EQ(t.Size(), 6u);
}

}  // namespace
}  // namespace lss
