#include "core/sharded_store.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "core/store.h"
#include "util/rng.h"
#include "workload/runner.h"

namespace lss {
namespace {

StoreConfig SmallConfig() {
  StoreConfig c;
  c.page_bytes = 4096;
  c.segment_bytes = 16 * 4096;
  c.num_segments = 256;
  c.clean_trigger_segments = 2;
  c.clean_batch_segments = 4;
  c.write_buffer_segments = 2;
  return c;
}

PolicyFactory FactoryFor(Variant v) {
  return [v] { return MakePolicy(v); };
}

TEST(ShardedStoreTest, CreateValidatesGeometry) {
  Status st;
  // 256 segments over 4 shards -> 64 per shard, fine.
  auto ok = ShardedStore::Create(SmallConfig(), 4, FactoryFor(Variant::kGreedy),
                                 &st);
  ASSERT_NE(ok, nullptr) << st.ToString();
  EXPECT_EQ(ok->num_shards(), 4u);
  EXPECT_EQ(ok->shard_config().num_segments, 64u);

  // 256 segments over 64 shards -> 4 per shard, but the clean trigger (2)
  // then violates "trigger < num_segments / 2".
  auto bad = ShardedStore::Create(SmallConfig(), 64,
                                  FactoryFor(Variant::kGreedy), &st);
  EXPECT_EQ(bad, nullptr);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);

  auto no_factory = ShardedStore::Create(SmallConfig(), 2, nullptr, &st);
  EXPECT_EQ(no_factory, nullptr);
}

TEST(ShardedStoreTest, RoutingCoversAllShards) {
  constexpr uint32_t kShards = 8;
  std::vector<uint64_t> per_shard(kShards, 0);
  constexpr PageId kPages = 10000;
  for (PageId p = 0; p < kPages; ++p) ++per_shard[PageShard(p, kShards)];
  for (uint32_t s = 0; s < kShards; ++s) {
    // A fair hash puts roughly 1/8 of the pages on each shard; anything
    // within 2x of fair detects gross skew without being flaky.
    EXPECT_GT(per_shard[s], kPages / (2 * kShards)) << "shard " << s;
    EXPECT_LT(per_shard[s], kPages * 2 / kShards) << "shard " << s;
  }
}

TEST(ShardedStoreTest, WritesRouteToOwningShard) {
  Status st;
  auto store = ShardedStore::Create(SmallConfig(), 4,
                                    FactoryFor(Variant::kGreedy), &st);
  ASSERT_NE(store, nullptr) << st.ToString();
  for (PageId p = 0; p < 200; ++p) {
    ASSERT_TRUE(store->Write(p).ok());
    EXPECT_TRUE(store->Contains(p));
    EXPECT_EQ(store->PageSize(p), 4096u);
  }
  // Every page's meta is interpreted by exactly the shard it hashes to.
  for (PageId p = 0; p < 200; ++p) {
    const StoreShard& shard = store->shard(store->ShardOf(p));
    EXPECT_TRUE(shard.OwnsPage(p));
    EXPECT_TRUE(shard.Contains(p));
  }
  // Each shard saw exactly its routed updates; the aggregate sees all.
  uint64_t sum = 0;
  for (uint32_t i = 0; i < store->num_shards(); ++i) {
    EXPECT_GT(store->shard(i).stats().user_updates, 0u) << "idle shard " << i;
    sum += store->shard(i).stats().user_updates;
  }
  EXPECT_EQ(sum, 200u);
  EXPECT_EQ(store->AggregatedStats().user_updates, 200u);
}

TEST(ShardedStoreTest, DeleteAndFlushWork) {
  Status st;
  auto store = ShardedStore::Create(SmallConfig(), 2,
                                    FactoryFor(Variant::kMdc), &st);
  ASSERT_NE(store, nullptr) << st.ToString();
  for (PageId p = 0; p < 100; ++p) ASSERT_TRUE(store->Write(p).ok());
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_EQ(store->LivePageCount(), 100u);
  for (PageId p = 0; p < 50; ++p) ASSERT_TRUE(store->Delete(p).ok());
  EXPECT_EQ(store->Delete(17).code(), Status::Code::kNotFound);
  EXPECT_EQ(store->LivePageCount(), 50u);
  EXPECT_TRUE(store->CheckInvariants().ok());
}

// The tentpole determinism property: one shard, one thread == the plain
// single-threaded store, bit for bit. Drives both stores with the same
// update sequence and compares every counter.
TEST(ShardedStoreTest, OneShardMatchesLogStructuredStoreBitForBit) {
  for (Variant v : {Variant::kGreedy, Variant::kMultiLog, Variant::kMdc}) {
    StoreConfig cfg = SmallConfig();
    ApplyVariantConfig(v, &cfg);
    Status st;
    auto single = LogStructuredStore::Create(cfg, MakePolicy(v), &st);
    ASSERT_NE(single, nullptr) << st.ToString();
    auto sharded = ShardedStore::Create(cfg, 1, FactoryFor(v), &st);
    ASSERT_NE(sharded, nullptr) << st.ToString();

    const PageId pages = 2000;
    for (PageId p = 0; p < pages; ++p) {
      ASSERT_TRUE(single->Write(p).ok());
      ASSERT_TRUE(sharded->Write(p).ok());
    }
    Rng rng_a(7), rng_b(7);
    for (int i = 0; i < 20000; ++i) {
      ASSERT_TRUE(single->Write(rng_a.NextBounded(pages)).ok());
      ASSERT_TRUE(sharded->Write(rng_b.NextBounded(pages)).ok());
    }

    const StoreStats& a = single->stats();
    const StoreStats b = sharded->AggregatedStats();
    EXPECT_EQ(a.user_updates, b.user_updates) << VariantName(v);
    EXPECT_EQ(a.user_pages_written, b.user_pages_written) << VariantName(v);
    EXPECT_EQ(a.gc_pages_written, b.gc_pages_written) << VariantName(v);
    EXPECT_EQ(a.segments_cleaned, b.segments_cleaned) << VariantName(v);
    EXPECT_EQ(a.cleanings, b.cleanings) << VariantName(v);
    // Bit-for-bit: the doubles must be identical, not just close.
    EXPECT_EQ(a.WriteAmplification(), b.WriteAmplification()) << VariantName(v);
    EXPECT_EQ(a.MeanCleanEmptiness(), b.MeanCleanEmptiness()) << VariantName(v);
    EXPECT_TRUE(sharded->CheckInvariants().ok());
  }
}

// Same property via the runner entry points (what the benches compare).
TEST(ShardedStoreTest, ParallelRunnerOneThreadMatchesRunSynthetic) {
  StoreConfig cfg = SmallConfig();
  UniformWorkload workload(2500);
  RunSpec spec;
  spec.fill_factor = 0.75;
  spec.warmup_multiplier = 3;
  spec.measure_multiplier = 4;
  spec.seed = 11;

  const RunResult single = RunSynthetic(cfg, Variant::kMdc, workload, spec);
  ASSERT_TRUE(single.status.ok()) << single.status.ToString();
  const ParallelRunResult par =
      RunSyntheticParallel(cfg, Variant::kMdc, workload, spec,
                           /*threads=*/1, /*shards=*/1);
  ASSERT_TRUE(par.result.status.ok()) << par.result.status.ToString();
  EXPECT_EQ(par.result.wamp, single.wamp);
  EXPECT_EQ(par.result.measured_updates, single.measured_updates);
  EXPECT_EQ(par.result.mean_clean_emptiness, single.mean_clean_emptiness);
}

// Concurrency stress: many threads hammer a sharded store with writes,
// deletes and flushes, then every shard must pass its full invariant
// cross-check. Run under TSan (scripts/check.sh --tsan) this doubles as
// the data-race detector for the striped page table and shard locking.
TEST(ShardedStoreTest, MultiThreadedStressKeepsInvariants) {
  StoreConfig cfg = SmallConfig();
  cfg.num_segments = 512;
  Status st;
  auto store = ShardedStore::Create(cfg, 4, FactoryFor(Variant::kMdc), &st);
  ASSERT_NE(store, nullptr) << st.ToString();

  constexpr uint32_t kThreads = 8;
  constexpr PageId kPages = 4000;
  constexpr int kOpsPerThread = 30000;
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> deletes_applied{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kOpsPerThread && !failed.load(); ++i) {
        const PageId p = rng.NextBounded(kPages);
        const uint64_t dice = rng.NextBounded(100);
        if (dice < 90) {
          if (!store->Write(p).ok()) failed.store(true);
          writes.fetch_add(1, std::memory_order_relaxed);
        } else if (dice < 97) {
          const Status s = store->Delete(p);
          if (s.ok()) {
            deletes_applied.fetch_add(1, std::memory_order_relaxed);
          } else if (s.code() != Status::Code::kNotFound) {
            failed.store(true);
          }
        } else {
          if (!store->Flush().ok()) failed.store(true);
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  ASSERT_FALSE(failed.load()) << "a store operation failed mid-stress";

  // Every logical op must be accounted for in the aggregated counters...
  const StoreStats total = store->AggregatedStats();
  EXPECT_EQ(total.user_updates, writes.load());
  EXPECT_EQ(total.deletes, deletes_applied.load());
  // ...and every shard must be internally consistent, including the
  // shared page table cross-check.
  EXPECT_TRUE(store->CheckInvariants().ok());
  for (uint32_t i = 0; i < store->num_shards(); ++i) {
    EXPECT_TRUE(store->shard(i).CheckInvariants().ok()) << "shard " << i;
  }
}

// Concurrent growth of the shared striped page table from many threads:
// disjoint page ranges ensured in parallel must all be present and hold
// their values afterwards.
TEST(PageTableConcurrencyTest, ParallelEnsureAndReadback) {
  PageTable table;
  constexpr uint32_t kThreads = 8;
  constexpr PageId kPerThread = 20000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&table, t] {
      for (PageId i = 0; i < kPerThread; ++i) {
        const PageId p = t * kPerThread + i;
        PageMeta& m = table.Ensure(p);
        m.loc = PageLocation{static_cast<SegmentId>(t), 0};
        m.bytes = 512 + t;
        m.last_update = p + 1;
      }
    });
  }
  for (std::thread& th : pool) th.join();

  EXPECT_EQ(table.Size(), kThreads * kPerThread);
  EXPECT_EQ(table.CountPresent(), kThreads * kPerThread);
  for (uint32_t t = 0; t < kThreads; ++t) {
    for (PageId i = 0; i < kPerThread; i += 997) {
      const PageId p = t * kPerThread + i;
      ASSERT_TRUE(table.Present(p));
      EXPECT_EQ(table.Get(p).loc.segment, t);
      EXPECT_EQ(table.Get(p).bytes, 512 + t);
      EXPECT_EQ(table.Get(p).last_update, p + 1);
    }
  }
}

// The async seal pipeline must not perturb a single placement decision:
// the same update sequence with async_seal on and off produces identical
// simulation counters (only *when* backend I/O happens changes, never
// what is written where).
TEST(ShardedStoreTest, AsyncSealKeepsSimulationCountersBitForBit) {
  // Checkpointing changes allocation (withheld slots are skipped), so
  // compare like with like: async vs sync at the same checkpoint
  // setting, once plain and once with checkpointing on.
  struct Case {
    Variant v;
    uint32_t checkpoint_interval;
  };
  for (const Case c : {Case{Variant::kGreedy, 0}, Case{Variant::kGreedy, 16},
                       Case{Variant::kMdc, 0}, Case{Variant::kMdc, 16}}) {
    const Variant v = c.v;
    StoreConfig sync_cfg = SmallConfig();
    ApplyVariantConfig(v, &sync_cfg);
    sync_cfg.checkpoint_interval_ops = c.checkpoint_interval;
    StoreConfig async_cfg = sync_cfg;
    async_cfg.async_seal = true;
    async_cfg.seal_queue_depth = 2;

    auto drive = [](const StoreConfig& cfg, Variant var) {
      auto store = LogStructuredStore::Create(cfg, MakePolicy(var));
      EXPECT_NE(store, nullptr);
      for (PageId p = 0; p < 1500; ++p) EXPECT_TRUE(store->Write(p).ok());
      Rng rng(19);
      for (int i = 0; i < 15000; ++i) {
        EXPECT_TRUE(store->Write(rng.NextBounded(1500)).ok());
      }
      return store;
    };
    auto sync_store = drive(sync_cfg, v);
    auto async_store = drive(async_cfg, v);
    const StoreStats& a = sync_store->stats();
    const StoreStats& b = async_store->stats();
    EXPECT_EQ(a.user_updates, b.user_updates) << VariantName(v);
    EXPECT_EQ(a.user_pages_written, b.user_pages_written) << VariantName(v);
    EXPECT_EQ(a.gc_pages_written, b.gc_pages_written) << VariantName(v);
    EXPECT_EQ(a.user_segments_sealed, b.user_segments_sealed) << VariantName(v);
    EXPECT_EQ(a.gc_segments_sealed, b.gc_segments_sealed) << VariantName(v);
    EXPECT_EQ(a.segments_cleaned, b.segments_cleaned) << VariantName(v);
    EXPECT_EQ(a.cleanings, b.cleanings) << VariantName(v);
    EXPECT_EQ(a.WriteAmplification(), b.WriteAmplification()) << VariantName(v);
    EXPECT_EQ(a.MeanCleanEmptiness(), b.MeanCleanEmptiness()) << VariantName(v);
    // And the pipeline actually ran.
    EXPECT_GT(async_store->StatsSnapshot().seal_queue_enqueued, 0u);
    EXPECT_EQ(sync_store->StatsSnapshot().seal_queue_enqueued, 0u);
    EXPECT_TRUE(async_store->CheckInvariants().ok());
  }
}

// A backend that sleeps per seal: the shard's writer outruns the I/O
// thread, so the bounded queue must exert backpressure (counted stalls)
// while every op still applies exactly once, in order.
class SlowBackend : public NullBackend {
 public:
  Status SealSegment(const BackendSegmentRecord& record) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ++seals_;
    return NullBackend::SealSegment(record);
  }
  std::atomic<int64_t> seals_{0};
};

TEST(ShardedStoreTest, AsyncSealBackpressureBoundsTheQueue) {
  StoreConfig cfg = SmallConfig();
  cfg.write_buffer_segments = 0;
  cfg.num_segments = 64;
  cfg.async_seal = true;
  cfg.seal_queue_depth = 1;
  auto backend = std::make_unique<SlowBackend>();
  SlowBackend* slow = backend.get();
  Status st;
  auto store = LogStructuredStore::CreateWithBackend(
      cfg, MakePolicy(Variant::kGreedy), std::move(backend), &st);
  ASSERT_NE(store, nullptr) << st.ToString();

  // ~48 seals at 2 ms each, produced far faster than they drain: with a
  // queue of one, the writer must stall many times.
  for (PageId p = 0; p < 48 * 16; ++p) {
    ASSERT_TRUE(store->Write(p % 768).ok());
  }
  ASSERT_TRUE(store->Close().ok());
  const StoreStats s = store->StatsSnapshot();
  EXPECT_GT(s.seal_queue_stalls, 0u);
  EXPECT_GE(s.seal_queue_enqueued, static_cast<uint64_t>(slow->seals_.load()));
  EXPECT_GT(slow->seals_.load(), 10);
}

// Close must drain in-flight seals before the backend shuts: every op
// the store acknowledged reaches the backend even when Close races a
// full queue.
TEST(ShardedStoreTest, CloseDrainsTheSealQueue) {
  StoreConfig cfg = SmallConfig();
  cfg.write_buffer_segments = 0;
  cfg.num_segments = 64;
  cfg.async_seal = true;
  cfg.seal_queue_depth = 2;
  auto backend = std::make_unique<SlowBackend>();
  SlowBackend* slow = backend.get();
  Status st;
  auto store = LogStructuredStore::CreateWithBackend(
      cfg, MakePolicy(Variant::kGreedy), std::move(backend), &st);
  ASSERT_NE(store, nullptr) << st.ToString();
  for (PageId p = 0; p < 12 * 16; ++p) {
    ASSERT_TRUE(store->Write(p).ok());
  }
  // Several seals are still queued behind the slow backend right now.
  ASSERT_TRUE(store->Close().ok());
  const StoreStats s = store->StatsSnapshot();
  // Every emitted op was applied — nothing was dropped at shutdown.
  EXPECT_EQ(s.seal_queue_enqueued, static_cast<uint64_t>(slow->seals_.load()));
  EXPECT_GE(slow->seals_.load(), 12);
}

// Async-seal stress under ThreadSanitizer: many writer threads, four
// shards, each with its own I/O thread, plus concurrent reads, deletes,
// checkpoints and stats aggregation — the race detector for the whole
// pipeline (scripts/check.sh --tsan runs this suite).
TEST(ShardedStoreTest, AsyncSealMultiThreadedStressKeepsInvariants) {
  StoreConfig cfg = SmallConfig();
  cfg.num_segments = 512;
  cfg.async_seal = true;
  cfg.seal_queue_depth = 4;
  cfg.checkpoint_interval_ops = 32;
  Status st;
  auto store = ShardedStore::Create(cfg, 4, FactoryFor(Variant::kMdc), &st);
  ASSERT_NE(store, nullptr) << st.ToString();

  constexpr uint32_t kThreads = 8;
  constexpr PageId kPages = 4000;
  constexpr int kOpsPerThread = 15000;
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> deletes_applied{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(2000 + t);
      for (int i = 0; i < kOpsPerThread && !failed.load(); ++i) {
        const PageId p = rng.NextBounded(kPages);
        const uint64_t dice = rng.NextBounded(100);
        if (dice < 85) {
          if (!store->Write(p).ok()) failed.store(true);
          writes.fetch_add(1, std::memory_order_relaxed);
        } else if (dice < 92) {
          const Status s = store->Delete(p);
          if (s.ok()) {
            deletes_applied.fetch_add(1, std::memory_order_relaxed);
          } else if (s.code() != Status::Code::kNotFound) {
            failed.store(true);
          }
        } else if (dice < 96) {
          std::vector<uint8_t> data;
          const Status s = store->ReadPage(p, &data);
          if (!s.ok() && s.code() != Status::Code::kNotFound &&
              s.code() != Status::Code::kInvalidArgument) {
            failed.store(true);
          }
        } else if (dice < 99) {
          if (!store->Flush().ok()) failed.store(true);
        } else {
          if (!store->Checkpoint().ok()) failed.store(true);
        }
        if (i % 4096 == 0) (void)store->AggregatedStats();
      }
    });
  }
  for (std::thread& th : pool) th.join();
  ASSERT_FALSE(failed.load()) << "a store operation failed mid-stress";

  const StoreStats total = store->AggregatedStats();
  EXPECT_EQ(total.user_updates, writes.load());
  EXPECT_EQ(total.deletes, deletes_applied.load());
  EXPECT_GT(total.seal_queue_enqueued, 0u);
  ASSERT_TRUE(store->Close().ok());
  EXPECT_TRUE(store->CheckInvariants().ok());
  for (uint32_t i = 0; i < store->num_shards(); ++i) {
    EXPECT_TRUE(store->shard(i).CheckInvariants().ok()) << "shard " << i;
  }
}

// Multi-threaded parallel runner end to end: aggregate write-amp within a
// few percent of the single-threaded run on the same workload (identical
// update *distribution*, different interleaving), and every shard's
// write-amp close to the shared value.
TEST(ShardedStoreTest, ParallelRunMatchesSingleThreadedWamp) {
  StoreConfig cfg;
  cfg.page_bytes = 4096;
  cfg.segment_bytes = 32 * 4096;
  cfg.num_segments = 512;
  cfg.clean_trigger_segments = 2;
  cfg.clean_batch_segments = 8;
  cfg.write_buffer_segments = 4;

  UniformWorkload workload(10000);
  RunSpec spec;
  spec.fill_factor = 0.7;
  spec.warmup_multiplier = 4;
  spec.measure_multiplier = 6;
  spec.seed = 3;

  const RunResult single = RunSynthetic(cfg, Variant::kGreedy, workload, spec);
  ASSERT_TRUE(single.status.ok()) << single.status.ToString();
  const ParallelRunResult par = RunSyntheticParallel(
      cfg, Variant::kGreedy, workload, spec, /*threads=*/4, /*shards=*/4);
  ASSERT_TRUE(par.result.status.ok()) << par.result.status.ToString();

  EXPECT_NEAR(par.result.wamp, single.wamp, 0.05 * single.wamp + 0.05);
  ASSERT_EQ(par.shard_wamp.size(), 4u);
  for (double w : par.shard_wamp) {
    EXPECT_NEAR(w, single.wamp, 0.10 * single.wamp + 0.10);
  }
}

}  // namespace
}  // namespace lss
