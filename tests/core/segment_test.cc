#include "core/segment.h"

#include <gtest/gtest.h>

namespace lss {
namespace {

constexpr uint32_t kCap = 16384;

TEST(SegmentTest, StartsFree) {
  Segment s(kCap);
  EXPECT_EQ(s.state(), SegmentState::kFree);
  EXPECT_EQ(s.live_count(), 0u);
  EXPECT_EQ(s.available_bytes(), kCap);
}

TEST(SegmentTest, OpenAppendSealLifecycle) {
  Segment s(kCap);
  s.Open(0, SegmentSource::kUser, 10);
  EXPECT_EQ(s.state(), SegmentState::kOpen);
  EXPECT_EQ(s.open_time(), 10u);

  const uint32_t idx = s.Append(7, 4096, /*up2=*/5.0, /*exact_upf=*/0.0);
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(s.live_count(), 1u);
  EXPECT_EQ(s.live_bytes(), 4096u);
  EXPECT_EQ(s.available_bytes(), kCap - 4096);

  s.Seal(20);
  EXPECT_EQ(s.state(), SegmentState::kSealed);
  EXPECT_EQ(s.seal_time(), 20u);
  EXPECT_DOUBLE_EQ(s.up2(), 5.0);
}

TEST(SegmentTest, SealedUp2IsMeanOfAppendedPages) {
  Segment s(kCap);
  s.Open(0, SegmentSource::kUser, 0);
  s.Append(1, 4096, 10.0, 0.0);
  s.Append(2, 4096, 20.0, 0.0);
  s.Append(3, 4096, 60.0, 0.0);
  s.Seal(100);
  EXPECT_DOUBLE_EQ(s.up2(), 30.0);
}

TEST(SegmentTest, Up2EstimateTracksOpenSegment) {
  Segment s(kCap);
  s.Open(0, SegmentSource::kUser, 0);
  EXPECT_DOUBLE_EQ(s.Up2Estimate(), 0.0);
  s.Append(1, 4096, 8.0, 0.0);
  EXPECT_DOUBLE_EQ(s.Up2Estimate(), 8.0);
  s.Append(2, 4096, 16.0, 0.0);
  EXPECT_DOUBLE_EQ(s.Up2Estimate(), 12.0);
  s.Seal(50);
  EXPECT_DOUBLE_EQ(s.Up2Estimate(), s.up2());
}

TEST(SegmentTest, KillUpdatesCounters) {
  Segment s(kCap);
  s.Open(0, SegmentSource::kUser, 0);
  const uint32_t a = s.Append(1, 4096, 0, 0);
  const uint32_t b = s.Append(2, 8192, 0, 0);
  s.Seal(1);
  s.Kill(a, 0);
  EXPECT_EQ(s.live_count(), 1u);
  EXPECT_EQ(s.live_bytes(), 8192u);
  EXPECT_EQ(s.entries()[a].page, kInvalidPage);
  EXPECT_EQ(s.entries()[b].page, 2u);
  s.Kill(b, 0);
  EXPECT_EQ(s.live_count(), 0u);
  EXPECT_DOUBLE_EQ(s.Emptiness(), 1.0);
}

TEST(SegmentTest, EmptinessIsAOverB) {
  Segment s(kCap);
  s.Open(0, SegmentSource::kUser, 0);
  s.Append(1, kCap / 4, 0, 0);
  s.Seal(1);
  EXPECT_DOUBLE_EQ(s.Emptiness(), 0.75);
}

TEST(SegmentTest, VariableSizePagesAccounting) {
  Segment s(kCap);
  s.Open(0, SegmentSource::kUser, 0);
  s.Append(1, 100, 0, 0);
  s.Append(2, 5000, 0, 0);
  s.Append(3, 64, 0, 0);
  EXPECT_EQ(s.live_bytes(), 5164u);
  EXPECT_TRUE(s.HasRoomFor(kCap - 5164));
  EXPECT_FALSE(s.HasRoomFor(kCap - 5164 + 1));
}

TEST(SegmentTest, ExactUpfSumTracksLivePages) {
  Segment s(kCap);
  s.Open(0, SegmentSource::kUser, 0);
  const uint32_t a = s.Append(1, 4096, 0, 2.5);
  s.Append(2, 4096, 0, 0.5);
  EXPECT_DOUBLE_EQ(s.exact_upf_sum(), 3.0);
  s.Kill(a, 2.5);
  EXPECT_DOUBLE_EQ(s.exact_upf_sum(), 0.5);
}

TEST(SegmentTest, ResetReturnsToFree) {
  Segment s(kCap);
  s.Open(3, SegmentSource::kGc, 5);
  s.Append(1, 4096, 0, 0);
  s.Seal(9);
  s.Reset();
  EXPECT_EQ(s.state(), SegmentState::kFree);
  EXPECT_EQ(s.log(), 0u);
  EXPECT_EQ(s.live_count(), 0u);
  EXPECT_TRUE(s.entries().empty());
  EXPECT_EQ(s.available_bytes(), kCap);
}

TEST(SegmentTest, ReopenAfterResetIsClean) {
  Segment s(kCap);
  s.Open(0, SegmentSource::kUser, 0);
  s.Append(1, 4096, 42.0, 1.0);
  s.Seal(1);
  s.Reset();
  s.Open(1, SegmentSource::kGc, 7);
  EXPECT_EQ(s.source(), SegmentSource::kGc);
  EXPECT_EQ(s.log(), 1u);
  EXPECT_DOUBLE_EQ(s.Up2Estimate(), 0.0);
  EXPECT_DOUBLE_EQ(s.exact_upf_sum(), 0.0);
}

TEST(SegmentTest, CountersConsistentUnderChurn) {
  Segment s(kCap);
  s.Open(0, SegmentSource::kUser, 0);
  std::vector<uint32_t> idx;
  for (int i = 0; i < 4; ++i) idx.push_back(s.Append(i, 4096, i, 0));
  s.Seal(4);
  s.Kill(idx[1], 0);
  s.Kill(idx[3], 0);
  EXPECT_TRUE(s.CheckCountersConsistent());
}

}  // namespace
}  // namespace lss
