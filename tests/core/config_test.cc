#include "core/config.h"

#include <gtest/gtest.h>

namespace lss {
namespace {

TEST(StoreConfigTest, DefaultIsValid) {
  EXPECT_TRUE(StoreConfig{}.Validate().ok());
}

TEST(StoreConfigTest, RejectsZeroSizes) {
  StoreConfig c;
  c.page_bytes = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = StoreConfig{};
  c.segment_bytes = 0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(StoreConfigTest, RejectsPageLargerThanSegment) {
  StoreConfig c;
  c.segment_bytes = 4096;
  c.page_bytes = 8192;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(StoreConfigTest, RejectsNonDivisibleSegment) {
  StoreConfig c;
  c.segment_bytes = 10000;  // not a multiple of 4096
  EXPECT_FALSE(c.Validate().ok());
}

TEST(StoreConfigTest, RejectsTinyDevice) {
  StoreConfig c;
  c.num_segments = 2;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(StoreConfigTest, RejectsHugeTrigger) {
  StoreConfig c;
  c.clean_trigger_segments = c.num_segments;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(StoreConfigTest, AsyncSealNeedsAQueue) {
  StoreConfig c;
  c.async_seal = true;
  EXPECT_TRUE(c.Validate().ok());  // default queue depth
  c.seal_queue_depth = 0;
  EXPECT_FALSE(c.Validate().ok());
  // A zero queue depth only matters when the pipeline is on.
  c.async_seal = false;
  EXPECT_TRUE(c.Validate().ok());
}

TEST(StoreConfigTest, CheckpointIntervalIsBackendAgnostic) {
  // Checkpointing works in sync and async modes, with any backend.
  StoreConfig c;
  c.checkpoint_interval_ops = 32;
  EXPECT_TRUE(c.Validate().ok());
  c.async_seal = true;
  EXPECT_TRUE(c.Validate().ok());
}

TEST(StoreConfigTest, FileBackendRequiresDirectory) {
  StoreConfig c;
  c.backend = BackendKind::kFile;
  EXPECT_FALSE(c.Validate().ok());
  c.backend_dir = "/tmp/somewhere";
  EXPECT_TRUE(c.Validate().ok());
}

TEST(StoreConfigTest, DirectIoRequiresFileBackendAndAlignment) {
  StoreConfig c;
  c.backend_direct_io = true;
  EXPECT_FALSE(c.Validate().ok());  // null backend cannot do O_DIRECT
  c.backend = BackendKind::kFile;
  c.backend_dir = "/tmp/somewhere";
  EXPECT_TRUE(c.Validate().ok());
  c.segment_bytes = 6 * 1024;  // multiple of page 2 KiB, not of 4 KiB
  c.page_bytes = 2048;
  EXPECT_FALSE(c.Validate().ok());
  c.backend_direct_io = false;
  EXPECT_TRUE(c.Validate().ok());
}

TEST(StoreConfigTest, GeometryHelpers) {
  StoreConfig c;
  c.segment_bytes = 1u << 20;
  c.page_bytes = 4096;
  c.num_segments = 100;
  EXPECT_EQ(c.PagesPerSegment(), 256u);
  EXPECT_EQ(c.PhysicalPages(), 25600u);
  EXPECT_EQ(c.UserPagesForFillFactor(0.5), 12800u);
}

TEST(StoreConfigTest, PaperGeometry) {
  // §6.1.1: 4KB pages, 2MB segments -> 512 pages/segment; 100GB device
  // -> 51200 segments.
  StoreConfig c;
  c.segment_bytes = 2u << 20;
  c.page_bytes = 4096;
  c.num_segments = 51200;
  c.clean_trigger_segments = 32;
  c.clean_batch_segments = 64;
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.PagesPerSegment(), 512u);
  EXPECT_EQ(c.PhysicalPages() * 4096, 100ull << 30);
}

}  // namespace
}  // namespace lss
