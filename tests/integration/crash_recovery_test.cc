// Crash-recovery torture harness (the PR's test tentpole).
//
// Each iteration builds a file-backed store whose shards sit behind
// FaultInjectionBackend, runs a seeded write/delete workload, draws a
// durable frontier with Checkpoint(), then arms a randomized per-shard
// kill point (CrashAfterOps): after N more backend operations the shard
// "loses power" mid-operation — the metadata log gets a torn tail, the
// crashing slot a partial payload overwrite, and nothing queued is
// flushed. The store is then reopened from the torn files and audited:
//
//   * recovery must succeed and CheckInvariants must hold;
//   * every page acknowledged at the frontier must be present with a
//     version at least as new as its frontier version (zero lost
//     acknowledged writes), unless a newer acknowledged delete removed
//     it — with one scoped exception: an iteration that diverted
//     through AllocateSegment's withheld-slot fallback (the documented
//     residual crash window, counted by withheld_slot_reuses) may
//     attribute losses to that window; they are counted, and any loss
//     in a non-diverted iteration still fails hard;
//   * every surviving page must read back with a byte pattern and size
//     matching some version that was actually written (no invented or
//     torn data);
//   * shards that did not crash must recover their exact final state;
//   * the recovered store must stay fully usable (writes, invariants,
//     clean close, second reopen).
//
// Kill points land mid-seal, between a seal and its victim's free
// record, mid-checkpoint, mid-group-commit and mid-hole-punch because
// the op budget counts every backend operation uniformly and the tear
// style is drawn per iteration. Both 1-shard and 8-shard geometries run,
// alternating sync and async seal pipelines, LSS_TORTURE_ITERS scales
// the kill-point count (default 200 per geometry; scripts/check.sh
// --torture raises it).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "core/io_backend.h"
#include "core/policy_factory.h"
#include "core/sharded_store.h"
#include "util/rng.h"

namespace lss {
namespace {

int TortureIters() {
  if (const char* env = std::getenv("LSS_TORTURE_ITERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

// One operation in the harness's model of the store: a write of `bytes`,
// or a delete (bytes == kDeleteOp). `acked` records whether the store
// returned OK — a failed op may still have partially reached the device
// (e.g. a seal enqueued before the crash error surfaced), so tentative
// versions stay in the history as *allowed* but not *required* states.
constexpr int64_t kDeleteOp = -1;
struct ModelOp {
  int64_t bytes;
  bool acked;
};

struct PageModel {
  std::vector<ModelOp> ops;
  // Version count (== ops.size()) at the durable frontier.
  size_t frontier = 0;
};

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/lss_crash_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASSERT_NE(::mkdtemp(buf.data()), nullptr);
    dir_ = buf.data();
  }

  void TearDown() override {
    for (uint32_t i = 0; i < 16; ++i) {
      ::unlink(FileBackend::DataPath(dir_, i).c_str());
      ::unlink(FileBackend::MetaPath(dir_, i).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
};

// Knobs a geometry can vary beyond shard count: the cleaning policy and
// how tight the free pool runs. The default reproduces the original
// greedy harness; the multi-log variant (which ties up two open
// segments per active log) combined with a tiny pool drives the
// AllocateSegment withheld-slot fallback.
struct TortureGeometry {
  Variant variant = Variant::kGreedy;
  uint32_t segments_per_shard = 32;
  PageId pages_per_shard = 110;  // fill ~0.4 at max size (default geo)
  /// Plain reuse of a withheld slot is a *known* residual crash window:
  /// the new occupant's payload overwrites a region whose old record
  /// can still win replay, and the forced-out free record erases dead
  /// entries whose buffered successors died with the crash (ROADMAP
  /// "Multi-GC-destination crash window"; the fix — re-homing
  /// still-needed entries before reuse — is tracked there). With this
  /// flag, an iteration that actually diverted through the fallback
  /// (withheld_slot_reuses > 0) audits crashed shards tolerantly —
  /// violations counted, not failed; an iteration that never diverted
  /// stays fully strict, so the suite still fails loudly on any loss
  /// the window cannot explain. All other checks (recovery, invariants,
  /// clean shards, reuse) stay strict either way. The greedy default
  /// geometries reach the window too (rarely — e.g. 8-shard seed 20323,
  /// confirmed against the pre-counter tree), which is why the flagship
  /// tortures also set this.
  bool tolerate_residual_window = false;
};

StoreConfig TortureConfig(uint32_t num_shards, bool async_seal,
                          const std::string& dir,
                          const TortureGeometry& geo = {}) {
  StoreConfig c;
  c.page_bytes = 1024;
  c.segment_bytes = 8 * 1024;  // 8 default-size pages per segment
  c.num_segments = geo.segments_per_shard * num_shards;
  c.clean_trigger_segments = 2;
  c.clean_batch_segments = 4;
  c.write_buffer_segments = 2;
  c.backend = BackendKind::kFile;
  c.backend_dir = dir;
  c.backend_fsync = true;
  c.async_seal = async_seal;
  c.seal_queue_depth = 4;
  c.checkpoint_interval_ops = 12;
  return c;
}

// Deterministic size for version v of page p, in [256, 1024]; distinct
// enough across consecutive versions that the audit can tell which
// version a recovered page is.
uint32_t VersionBytes(PageId p, size_t version) {
  return 256 + 256 * static_cast<uint32_t>((p * 31 + version) % 4);
}

// Applies one random op to store+model. Returns false once the store
// reports the (expected) simulated crash.
bool ApplyRandomOp(ShardedStore* store, std::vector<PageModel>* model,
                   PageId num_pages, Rng* rng) {
  const PageId p = rng->NextBounded(num_pages);
  PageModel& pm = (*model)[p];
  const bool has_live =
      !pm.ops.empty() &&
      pm.ops.back().bytes != kDeleteOp;  // by the model's acked view
  Status s;
  int64_t bytes;
  if (has_live && rng->NextBool(0.08)) {
    s = store->Delete(p);
    bytes = kDeleteOp;
    if (s.code() == Status::Code::kNotFound) return true;  // model drift
  } else {
    const uint32_t b = VersionBytes(p, pm.ops.size());
    s = store->Write(p, b);
    bytes = b;
  }
  pm.ops.push_back(ModelOp{bytes, s.ok()});
  return s.ok();
}

// Audits one page of a crashed shard. `f` is the frontier version (1-
// based count; 0 = nothing acknowledged). Recovered state must be some
// version >= the frontier version. With `violations` non-null (the
// tolerated-residual-window mode, see TortureGeometry) failures are
// counted instead of reported.
void AuditCrashedPage(const ShardedStore& store, PageId p,
                      const PageModel& pm, uint64_t* violations = nullptr) {
  const size_t n = pm.ops.size();
  const size_t f = pm.frontier;
  if (store.Contains(p)) {
    const uint32_t size = store.PageSize(p);
    bool legal = false;
    for (size_t v = (f == 0 ? 1 : f); v <= n && !legal; ++v) {
      legal = pm.ops[v - 1].bytes == static_cast<int64_t>(size);
    }
    std::vector<uint8_t> data;
    const Status rs = store.ReadPage(p, &data);
    const bool read_ok = rs.ok() && data.size() == size;
    if (violations != nullptr) {
      if (!legal || !read_ok) ++*violations;
      return;
    }
    EXPECT_TRUE(legal) << "page " << p << " recovered with size " << size
                       << ", not any version >= frontier " << f;
    EXPECT_TRUE(rs.ok()) << "page " << p << ": " << rs.ToString();
    EXPECT_EQ(data.size(), size) << "page " << p;
  } else {
    // Absence is legal only if nothing was acknowledged, or some delete
    // at/after the frontier (acked or in-flight) may have survived.
    bool legal = f == 0;
    for (size_t v = (f == 0 ? 1 : f); v <= n && !legal; ++v) {
      legal = pm.ops[v - 1].bytes == kDeleteOp;
    }
    if (violations != nullptr) {
      if (!legal) ++*violations;
      return;
    }
    EXPECT_TRUE(legal) << "page " << p
                       << " lost: acknowledged frontier version " << f
                       << " of " << n << " is gone";
  }
}

// Audits one page of a shard that closed cleanly: exact final acked
// state, nothing more, nothing less.
void AuditCleanPage(const ShardedStore& store, PageId p,
                    const PageModel& pm) {
  int64_t last = kDeleteOp;
  bool any = false;
  for (const ModelOp& op : pm.ops) {
    if (op.acked) {
      last = op.bytes;
      any = true;
    }
  }
  if (!any || last == kDeleteOp) {
    EXPECT_FALSE(store.Contains(p)) << "page " << p;
  } else {
    ASSERT_TRUE(store.Contains(p)) << "page " << p;
    EXPECT_EQ(store.PageSize(p), static_cast<uint32_t>(last)) << "page " << p;
    std::vector<uint8_t> data;
    EXPECT_TRUE(store.ReadPage(p, &data).ok()) << "page " << p;
  }
}

void RunTortureIteration(const std::string& dir, uint32_t num_shards,
                         uint64_t seed, bool async_seal, bool audit_reuse,
                         const TortureGeometry& geo = {},
                         uint64_t* withheld_reuses_out = nullptr,
                         uint64_t* violations_out = nullptr) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " shards=" + std::to_string(num_shards) +
               " async=" + std::to_string(async_seal) +
               " variant=" + VariantName(geo.variant));
  const StoreConfig cfg = TortureConfig(num_shards, async_seal, dir, geo);
  const PageId num_pages = geo.pages_per_shard * num_shards;
  const int phase1_ops = 500 * static_cast<int>(num_shards);
  const int phase2_ops = 700 * static_cast<int>(num_shards);

  Rng rng(seed);
  std::vector<PageModel> model(num_pages);
  std::vector<FaultInjectionBackend*> faults(num_shards, nullptr);

  Status st;
  const Variant variant = geo.variant;
  auto store = ShardedStore::Create(
      cfg, num_shards, [variant] { return MakePolicy(variant); }, &st,
      [&faults](uint32_t shard_id) -> std::unique_ptr<SegmentBackend> {
        auto fault = std::make_unique<FaultInjectionBackend>(
            std::make_unique<FileBackend>());
        faults[shard_id] = fault.get();
        return fault;
      });
  ASSERT_NE(store, nullptr) << st.ToString();

  // Phase 1: build up state, unarmed — every op must succeed.
  for (int i = 0; i < phase1_ops; ++i) {
    ASSERT_TRUE(ApplyRandomOp(store.get(), &model, num_pages, &rng))
        << "unexpected failure before the crash was armed (op " << i << ")";
  }

  // Durable frontier: everything acknowledged so far must survive any
  // later crash.
  ASSERT_TRUE(store->Checkpoint().ok());
  for (PageModel& pm : model) pm.frontier = pm.ops.size();

  // Arm: each shard dies after its own random number of further backend
  // ops (shards are independent files, so independent per-shard kill
  // points model a process kill exactly). Budgets beyond what phase 2
  // generates leave some shards uncrashed — also a valid outcome.
  const uint64_t budget_span = 220 / num_shards + 30;
  for (uint32_t s = 0; s < num_shards; ++s) {
    faults[s]->CrashAfterOps(
        static_cast<int64_t>(rng.NextBounded(budget_span)),
        /*seed=*/seed * 1000003u + s);
  }

  // Phase 2: keep going; ops start failing as shards die. Failed ops
  // stay in the model as tentative versions (they may have partially
  // reached the device before the error surfaced).
  for (int i = 0; i < phase2_ops; ++i) {
    (void)ApplyRandomOp(store.get(), &model, num_pages, &rng);
  }

  // Read the fallback-diversion counters before the kill wipes them:
  // they decide — per shard, per iteration — whether the crashed-page
  // audit may attribute a loss to the documented residual window. A
  // diversion in shard 3 must not excuse a loss in shard 0.
  std::vector<uint64_t> shard_reuses(num_shards, 0);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shard_reuses[s] = store->shard(s).StatsSnapshot().withheld_slot_reuses;
    if (withheld_reuses_out != nullptr) *withheld_reuses_out += shard_reuses[s];
  }

  // "Kill the process": Close flushes the healthy shards (a shard still
  // alive at kill time that happened to have everything sealed) and is
  // rejected by the dead ones. Statuses are irrelevant — the next open
  // must cope either way. Note Close itself ticks the op budget (seals,
  // checkpoints, syncs), so a shard can crash *inside* Close; sample the
  // crash flags only afterwards.
  (void)store->Close();
  std::vector<bool> crashed(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) crashed[s] = faults[s]->crashed();
  store.reset();

  // Reopen from the torn files with a plain file backend.
  auto reopened = ShardedStore::Open(
      cfg, num_shards, [] { return MakePolicy(Variant::kGreedy); }, &st);
  ASSERT_NE(reopened, nullptr) << "recovery failed: " << st.ToString();
  ASSERT_TRUE(reopened->CheckInvariants().ok());

  for (PageId p = 0; p < num_pages; ++p) {
    if (model[p].ops.empty()) {
      EXPECT_FALSE(reopened->Contains(p)) << "page " << p;
      continue;
    }
    const uint32_t owner = PageShard(p, num_shards);
    if (crashed[owner]) {
      // Tolerant only when the page's OWN shard diverted through the
      // withheld-slot fallback this iteration; every other shard keeps
      // the strict zero-loss audit.
      const bool tolerate = geo.tolerate_residual_window &&
                            shard_reuses[owner] > 0 &&
                            violations_out != nullptr;
      AuditCrashedPage(*reopened, p, model[p],
                       tolerate ? violations_out : nullptr);
    } else {
      AuditCleanPage(*reopened, p, model[p]);
    }
  }

  // The recovered store must be a fully functional store, not a husk.
  if (audit_reuse) {
    Rng rng2(seed ^ 0xDEADBEEF);
    for (int i = 0; i < 300; ++i) {
      const PageId p = rng2.NextBounded(num_pages);
      ASSERT_TRUE(reopened->Write(p, VersionBytes(p, i)).ok()) << i;
    }
    ASSERT_TRUE(reopened->CheckInvariants().ok());
    ASSERT_TRUE(reopened->Close().ok());
    reopened.reset();
    auto again = ShardedStore::Open(
        cfg, num_shards, [] { return MakePolicy(Variant::kGreedy); }, &st);
    ASSERT_NE(again, nullptr) << st.ToString();
    EXPECT_TRUE(again->CheckInvariants().ok());
  }
}

// The flagship geometries run with the per-iteration residual-window
// policy (see TortureGeometry::tolerate_residual_window): iterations
// that never diverted through the withheld-slot fallback — the vast
// majority — are audited with the strict zero-loss rule; the rare
// diverted iteration (greedy reaches the fallback too, e.g. 8-shard
// seed 20323) may attribute a loss to the documented window, counted
// and summarised below.
void RunTortureGeometry(const std::string& dir, uint32_t num_shards,
                        uint64_t seed_base) {
  TortureGeometry geo;
  geo.tolerate_residual_window = true;
  const int iters = TortureIters();
  uint64_t total_reuses = 0;
  uint64_t total_violations = 0;
  for (int i = 0; i < iters; ++i) {
    uint64_t reuses = 0;
    uint64_t violations = 0;
    RunTortureIteration(dir, num_shards, seed_base + i,
                        /*async_seal=*/(i % 2) == 1,
                        /*audit_reuse=*/(i % 8) == 0, geo, &reuses,
                        &violations);
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      FAIL() << "torture iteration " << i << " failed";
    }
    total_reuses += reuses;
    total_violations += violations;
  }
  if (total_reuses > 0) {
    std::printf("%u-shard torture: %llu withheld-slot reuses, %llu "
                "tolerated residual-window violation(s) across %d "
                "iterations\n",
                num_shards, static_cast<unsigned long long>(total_reuses),
                static_cast<unsigned long long>(total_violations), iters);
  }
}

TEST_F(CrashRecoveryTest, TortureSingleShard) {
  RunTortureGeometry(dir_, /*num_shards=*/1, /*seed_base=*/10000);
}

TEST_F(CrashRecoveryTest, TortureEightShards) {
  RunTortureGeometry(dir_, /*num_shards=*/8, /*seed_base=*/20000);
}

TEST_F(CrashRecoveryTest, TortureMultiLogTinyFreePool) {
  // Multi-log ties up (up to) two open segments per active log, so at a
  // tiny free pool the cleaner can hold more GC destinations open than
  // there are spare free slots — exactly the regime where
  // AllocateSegment's withheld-slot skip finds only withheld slots and
  // falls back to plain reuse (the residual window ROADMAP tracks as
  // "Multi-GC-destination crash window"). This geometry makes that
  // fallback fire (asserted via the withheld_slot_reuses counter) and
  // *measures* the window: a crash landing inside a diverted iteration
  // may lose pages (tolerated, counted), but any audit violation in an
  // iteration whose fallback never fired is a hard failure — the
  // window is the only accepted explanation. Recovery success,
  // invariants, clean-shard exactness and post-recovery usability stay
  // strict throughout.
  TortureGeometry geo;
  geo.variant = Variant::kMultiLog;
  geo.segments_per_shard = 26;
  geo.pages_per_shard = 90;
  geo.tolerate_residual_window = true;
  const int iters = std::max(TortureIters() / 4, 25);
  uint64_t total_reuses = 0;
  uint64_t total_violations = 0;
  int iters_with_violations = 0;
  for (int i = 0; i < iters; ++i) {
    uint64_t reuses = 0;
    uint64_t violations = 0;
    RunTortureIteration(dir_, /*num_shards=*/1, /*seed=*/30000 + i,
                        /*async_seal=*/(i % 2) == 1,
                        /*audit_reuse=*/(i % 8) == 0, geo, &reuses,
                        &violations);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "multi-log torture iteration " << i << " failed";
    }
    // The implication that keeps this geometry a regression test: a
    // lost/torn page without a withheld-slot diversion would be a NEW
    // crash window, not the documented one.
    EXPECT_TRUE(violations == 0 || reuses > 0)
        << "iteration " << i << " lost " << violations
        << " page(s) without any withheld-slot reuse: unexplained window";
    total_reuses += reuses;
    total_violations += violations;
    iters_with_violations += violations > 0 ? 1 : 0;
  }
  // The geometry must actually exercise the fallback path, or it is not
  // testing what it claims to.
  EXPECT_GT(total_reuses, 0u)
      << "multi-log tiny-pool geometry never diverted through the "
         "withheld-slot fallback; tighten the free pool";
  std::printf("multi-log tiny-pool: %llu withheld-slot reuses across %d "
              "iterations; %llu audit violations in %d iterations "
              "(the documented residual window)\n",
              static_cast<unsigned long long>(total_reuses), iters,
              static_cast<unsigned long long>(total_violations),
              iters_with_violations);
}

// A focused regression for the crash window the checkpointing closed:
// drive heavy churn (reclaims + reseals + GC segments held open), crash
// at every op count in a dense range, and demand zero lost acknowledged
// writes each time. Sync mode, so the window (if it regressed) is not
// masked by pipeline batching.
TEST_F(CrashRecoveryTest, DenseKillPointsAroundReclaims) {
  for (int budget = 0; budget < 60; ++budget) {
    SCOPED_TRACE(budget);
    const StoreConfig cfg = TortureConfig(1, /*async_seal=*/false, dir_);
    const PageId num_pages = 100;
    Rng rng(777);
    std::vector<PageModel> model(num_pages);
    FaultInjectionBackend* fault = nullptr;
    Status st;
    auto store = ShardedStore::Create(
        cfg, 1, [] { return MakePolicy(Variant::kGreedy); }, &st,
        [&fault](uint32_t) -> std::unique_ptr<SegmentBackend> {
          auto f = std::make_unique<FaultInjectionBackend>(
              std::make_unique<FileBackend>());
          fault = f.get();
          return f;
        });
    ASSERT_NE(store, nullptr) << st.ToString();
    for (int i = 0; i < 600; ++i) {
      ASSERT_TRUE(ApplyRandomOp(store.get(), &model, num_pages, &rng));
    }
    ASSERT_TRUE(store->Checkpoint().ok());
    for (PageModel& pm : model) pm.frontier = pm.ops.size();
    fault->CrashAfterOps(budget, /*seed=*/9000 + budget);
    for (int i = 0; i < 400; ++i) {
      (void)ApplyRandomOp(store.get(), &model, num_pages, &rng);
    }
    // Close ticks the op budget too — sample the crash flag only after.
    (void)store->Close();
    const bool crashed = fault->crashed();
    store.reset();
    auto reopened = ShardedStore::Open(
        cfg, 1, [] { return MakePolicy(Variant::kGreedy); }, &st);
    ASSERT_NE(reopened, nullptr) << st.ToString();
    ASSERT_TRUE(reopened->CheckInvariants().ok());
    for (PageId p = 0; p < num_pages; ++p) {
      if (model[p].ops.empty()) continue;
      if (crashed) {
        AuditCrashedPage(*reopened, p, model[p]);
      } else {
        AuditCleanPage(*reopened, p, model[p]);
      }
    }
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "kill point " << budget << " failed";
    }
  }
}

}  // namespace
}  // namespace lss
