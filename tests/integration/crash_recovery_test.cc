// Crash-recovery torture harness (the PR's test tentpole).
//
// Each iteration builds a file-backed store whose shards sit behind
// FaultInjectionBackend, runs a seeded write/delete workload, draws a
// durable frontier with Checkpoint(), then arms a randomized per-shard
// kill point (CrashAfterOps): after N more backend operations the shard
// "loses power" mid-operation — the metadata log gets a torn tail, the
// crashing slot a partial payload overwrite, and nothing queued is
// flushed. The store is then reopened from the torn files and audited:
//
//   * recovery must succeed and CheckInvariants must hold;
//   * every page acknowledged at the frontier must be present with a
//     version at least as new as its frontier version (zero lost
//     acknowledged writes), unless a newer acknowledged delete removed
//     it — strictly, in every iteration and every geometry; there is
//     no tolerated-loss carve-out anywhere in this file;
//   * every surviving page must read back with a byte pattern and size
//     matching some version that was actually written (no invented or
//     torn data);
//   * shards that did not crash must recover their exact final state;
//   * the recovered store must stay fully usable (writes, invariants,
//     clean close, second reopen).
//
// The strict rule covers AllocateSegment's withheld-slot fallback too:
// since entry re-homing landed, a withheld slot is reused only after
// every entry still needed from it has been persisted under a durable
// re-homing record (withheld_slot_reuses_rehomed) or shown to need
// nothing (withheld_slot_reuses_plain). The diverting geometries assert
// the re-homed path actually fires, and pinned-seed tests replay the
// two workloads that lost pages before re-homing existed.
//
// Kill points land mid-seal, between a seal and its victim's free
// record, mid-checkpoint, mid-group-commit, mid-hole-punch and — via
// the dedicated sweep below — exactly at and around the re-homing
// record itself. Both 1-shard and 8-shard geometries run, alternating
// sync and async seal pipelines; LSS_TORTURE_ITERS scales the
// kill-point count (default 200 per geometry; scripts/check.sh
// --torture raises it to 600).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "core/io_backend.h"
#include "core/policy_factory.h"
#include "core/sharded_store.h"
#include "core/uring_backend.h"
#include "util/rng.h"

namespace lss {
namespace {

int TortureIters() {
  if (const char* env = std::getenv("LSS_TORTURE_ITERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

// One operation in the harness's model of the store: a write of `bytes`,
// or a delete (bytes == kDeleteOp). `acked` records whether the store
// returned OK — a failed op may still have partially reached the device
// (e.g. a seal enqueued before the crash error surfaced), so tentative
// versions stay in the history as *allowed* but not *required* states.
constexpr int64_t kDeleteOp = -1;
struct ModelOp {
  int64_t bytes;
  bool acked;
};

struct PageModel {
  std::vector<ModelOp> ops;
  // Version count (== ops.size()) at the durable frontier.
  size_t frontier = 0;
};

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/lss_crash_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASSERT_NE(::mkdtemp(buf.data()), nullptr);
    dir_ = buf.data();
  }

  void TearDown() override {
    for (uint32_t i = 0; i < 16; ++i) {
      ::unlink(FileBackend::DataPath(dir_, i).c_str());
      ::unlink(FileBackend::MetaPath(dir_, i).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
};

// Knobs a geometry can vary beyond shard count: the cleaning policy and
// how tight the free pool runs. The default reproduces the original
// greedy harness; the multi-log variant (which ties up two open
// segments per active log) combined with a tiny pool drives the
// AllocateSegment withheld-slot fallback — and with it, entry
// re-homing.
struct TortureGeometry {
  Variant variant = Variant::kGreedy;
  uint32_t segments_per_shard = 32;
  PageId pages_per_shard = 110;  // fill ~0.4 at max size (default geo)
  // Periodic-checkpoint cadence (backend ops) for TortureConfig.
  uint32_t checkpoint_interval = 12;
  // > 0: the torture phases issue an explicit Checkpoint() barrier every
  // this many driver ops, so partially-filled open segments are
  // re-checkpointed as they grow — the regime where suffix-only delta
  // records chain off a full base.
  uint32_t barrier_every = 0;
  // Backend under the fault layer (kFile or kUring); the recovery
  // reopen uses the same kind. The uring geometry is skip-gated on the
  // runtime capability probe.
  BackendKind backend = BackendKind::kFile;
};

// The geometry that reliably reaches the withheld-slot fallback (see
// TortureMultiLogTinyFreePool for why).
TortureGeometry MultiLogTinyPoolGeometry() {
  TortureGeometry geo;
  geo.variant = Variant::kMultiLog;
  geo.segments_per_shard = 26;
  geo.pages_per_shard = 90;
  return geo;
}

StoreConfig TortureConfig(uint32_t num_shards, bool async_seal,
                          const std::string& dir,
                          const TortureGeometry& geo = {}) {
  StoreConfig c;
  c.page_bytes = 1024;
  c.segment_bytes = 8 * 1024;  // 8 default-size pages per segment
  c.num_segments = geo.segments_per_shard * num_shards;
  c.clean_trigger_segments = 2;
  c.clean_batch_segments = 4;
  c.write_buffer_segments = 2;
  c.backend = geo.backend;
  c.backend_dir = dir;
  c.backend_fsync = true;
  c.async_seal = async_seal;
  c.seal_queue_depth = 4;
  c.checkpoint_interval_ops = geo.checkpoint_interval;
  return c;
}

// Deterministic size for version v of page p, in [256, 1024]; distinct
// enough across consecutive versions that the audit can tell which
// version a recovered page is.
uint32_t VersionBytes(PageId p, size_t version) {
  return 256 + 256 * static_cast<uint32_t>((p * 31 + version) % 4);
}

// Applies one random op to store+model. Returns false once the store
// reports the (expected) simulated crash.
bool ApplyRandomOp(ShardedStore* store, std::vector<PageModel>* model,
                   PageId num_pages, Rng* rng) {
  const PageId p = rng->NextBounded(num_pages);
  PageModel& pm = (*model)[p];
  const bool has_live =
      !pm.ops.empty() &&
      pm.ops.back().bytes != kDeleteOp;  // by the model's acked view
  Status s;
  int64_t bytes;
  if (has_live && rng->NextBool(0.08)) {
    s = store->Delete(p);
    bytes = kDeleteOp;
    if (s.code() == Status::Code::kNotFound) return true;  // model drift
  } else {
    const uint32_t b = VersionBytes(p, pm.ops.size());
    s = store->Write(p, b);
    bytes = b;
  }
  pm.ops.push_back(ModelOp{bytes, s.ok()});
  return s.ok();
}

// Audits one page of a crashed shard. `f` is the frontier version (1-
// based count; 0 = nothing acknowledged). Recovered state must be some
// version >= the frontier version.
void AuditCrashedPage(const ShardedStore& store, PageId p,
                      const PageModel& pm) {
  const size_t n = pm.ops.size();
  const size_t f = pm.frontier;
  if (store.Contains(p)) {
    const uint32_t size = store.PageSize(p);
    bool legal = false;
    for (size_t v = (f == 0 ? 1 : f); v <= n && !legal; ++v) {
      legal = pm.ops[v - 1].bytes == static_cast<int64_t>(size);
    }
    std::vector<uint8_t> data;
    const Status rs = store.ReadPage(p, &data);
    EXPECT_TRUE(legal) << "page " << p << " recovered with size " << size
                       << ", not any version >= frontier " << f;
    EXPECT_TRUE(rs.ok()) << "page " << p << ": " << rs.ToString();
    EXPECT_EQ(data.size(), size) << "page " << p;
  } else {
    // Absence is legal only if nothing was acknowledged, or some delete
    // at/after the frontier (acked or in-flight) may have survived.
    bool legal = f == 0;
    for (size_t v = (f == 0 ? 1 : f); v <= n && !legal; ++v) {
      legal = pm.ops[v - 1].bytes == kDeleteOp;
    }
    EXPECT_TRUE(legal) << "page " << p
                       << " lost: acknowledged frontier version " << f
                       << " of " << n << " is gone";
  }
}

// Audits one page of a shard that closed cleanly: exact final acked
// state, nothing more, nothing less.
void AuditCleanPage(const ShardedStore& store, PageId p,
                    const PageModel& pm) {
  int64_t last = kDeleteOp;
  bool any = false;
  for (const ModelOp& op : pm.ops) {
    if (op.acked) {
      last = op.bytes;
      any = true;
    }
  }
  if (!any || last == kDeleteOp) {
    EXPECT_FALSE(store.Contains(p)) << "page " << p;
  } else {
    ASSERT_TRUE(store.Contains(p)) << "page " << p;
    EXPECT_EQ(store.PageSize(p), static_cast<uint32_t>(last)) << "page " << p;
    std::vector<uint8_t> data;
    EXPECT_TRUE(store.ReadPage(p, &data).ok()) << "page " << p;
  }
}

void RunTortureIteration(const std::string& dir, uint32_t num_shards,
                         uint64_t seed, bool async_seal, bool audit_reuse,
                         const TortureGeometry& geo = {},
                         uint64_t* rehomed_reuses_out = nullptr,
                         uint64_t* plain_reuses_out = nullptr,
                         uint64_t* delta_records_out = nullptr) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " shards=" + std::to_string(num_shards) +
               " async=" + std::to_string(async_seal) +
               " variant=" + VariantName(geo.variant));
  const StoreConfig cfg = TortureConfig(num_shards, async_seal, dir, geo);
  const PageId num_pages = geo.pages_per_shard * num_shards;
  const int phase1_ops = 500 * static_cast<int>(num_shards);
  const int phase2_ops = 700 * static_cast<int>(num_shards);

  Rng rng(seed);
  std::vector<PageModel> model(num_pages);
  std::vector<FaultInjectionBackend*> faults(num_shards, nullptr);

  Status st;
  const Variant variant = geo.variant;
  const BackendKind backend_kind = geo.backend;
  auto store = ShardedStore::Create(
      cfg, num_shards, [variant] { return MakePolicy(variant); }, &st,
      [&faults, backend_kind](uint32_t shard_id)
          -> std::unique_ptr<SegmentBackend> {
        std::unique_ptr<FileBackend> inner;
        if (backend_kind == BackendKind::kUring) {
          inner = std::make_unique<UringBackend>();
        } else {
          inner = std::make_unique<FileBackend>();
        }
        auto fault =
            std::make_unique<FaultInjectionBackend>(std::move(inner));
        faults[shard_id] = fault.get();
        return fault;
      });
  ASSERT_NE(store, nullptr) << st.ToString();

  // Phase 1: build up state, unarmed — every op must succeed.
  for (int i = 0; i < phase1_ops; ++i) {
    ASSERT_TRUE(ApplyRandomOp(store.get(), &model, num_pages, &rng))
        << "unexpected failure before the crash was armed (op " << i << ")";
    if (geo.barrier_every > 0 &&
        (i + 1) % static_cast<int>(geo.barrier_every) == 0) {
      ASSERT_TRUE(store->Checkpoint().ok());
    }
  }

  // Durable frontier: everything acknowledged so far must survive any
  // later crash.
  ASSERT_TRUE(store->Checkpoint().ok());
  for (PageModel& pm : model) pm.frontier = pm.ops.size();

  // Arm: each shard dies after its own random number of further backend
  // ops (shards are independent files, so independent per-shard kill
  // points model a process kill exactly). Budgets beyond what phase 2
  // generates leave some shards uncrashed — also a valid outcome.
  const uint64_t budget_span = 220 / num_shards + 30;
  for (uint32_t s = 0; s < num_shards; ++s) {
    faults[s]->CrashAfterOps(
        static_cast<int64_t>(rng.NextBounded(budget_span)),
        /*seed=*/seed * 1000003u + s);
  }

  // Phase 2: keep going; ops start failing as shards die. Failed ops
  // stay in the model as tentative versions (they may have partially
  // reached the device before the error surfaced).
  for (int i = 0; i < phase2_ops; ++i) {
    (void)ApplyRandomOp(store.get(), &model, num_pages, &rng);
    if (geo.barrier_every > 0 &&
        (i + 1) % static_cast<int>(geo.barrier_every) == 0) {
      // Dead shards reject the barrier; healthy ones just gain extra
      // durability beyond the modelled frontier, which the audit allows.
      (void)store->Checkpoint();
    }
  }

  // Read the fallback-diversion counters before the kill wipes them.
  // They no longer gate the audit — every diversion is either re-homed
  // (the slot's still-needed entries went durable first) or provably
  // had nothing to re-home — but the diverting geometries assert below
  // that the re-homed path actually fires.
  for (uint32_t s = 0; s < num_shards; ++s) {
    const StoreStats snap = store->shard(s).StatsSnapshot();
    if (rehomed_reuses_out != nullptr) {
      *rehomed_reuses_out += snap.withheld_slot_reuses_rehomed;
    }
    if (plain_reuses_out != nullptr) {
      *plain_reuses_out += snap.withheld_slot_reuses_plain;
    }
    if (delta_records_out != nullptr) {
      *delta_records_out += snap.checkpoint_delta_records;
    }
  }

  // "Kill the process": Close flushes the healthy shards (a shard still
  // alive at kill time that happened to have everything sealed) and is
  // rejected by the dead ones. Statuses are irrelevant — the next open
  // must cope either way. Note Close itself ticks the op budget (seals,
  // checkpoints, syncs), so a shard can crash *inside* Close; sample the
  // crash flags only afterwards.
  (void)store->Close();
  std::vector<bool> crashed(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) crashed[s] = faults[s]->crashed();
  store.reset();

  // Reopen from the torn files with a plain file backend.
  auto reopened = ShardedStore::Open(
      cfg, num_shards, [] { return MakePolicy(Variant::kGreedy); }, &st);
  ASSERT_NE(reopened, nullptr) << "recovery failed: " << st.ToString();
  ASSERT_TRUE(reopened->CheckInvariants().ok());

  for (PageId p = 0; p < num_pages; ++p) {
    if (model[p].ops.empty()) {
      EXPECT_FALSE(reopened->Contains(p)) << "page " << p;
      continue;
    }
    if (crashed[PageShard(p, num_shards)]) {
      AuditCrashedPage(*reopened, p, model[p]);
    } else {
      AuditCleanPage(*reopened, p, model[p]);
    }
  }

  // The recovered store must be a fully functional store, not a husk.
  if (audit_reuse) {
    Rng rng2(seed ^ 0xDEADBEEF);
    for (int i = 0; i < 300; ++i) {
      const PageId p = rng2.NextBounded(num_pages);
      const Status ws = reopened->Write(p, VersionBytes(p, i));
      ASSERT_TRUE(ws.ok()) << "op " << i << ": " << ws.ToString();
    }
    ASSERT_TRUE(reopened->CheckInvariants().ok());
    ASSERT_TRUE(reopened->Close().ok());
    reopened.reset();
    auto again = ShardedStore::Open(
        cfg, num_shards, [] { return MakePolicy(Variant::kGreedy); }, &st);
    ASSERT_NE(again, nullptr) << st.ToString();
    EXPECT_TRUE(again->CheckInvariants().ok());
  }
}

// Every geometry runs the strict zero-loss audit in every iteration —
// including the rare iterations that divert through the withheld-slot
// fallback (greedy reaches it too, e.g. 8-shard seed 20323): since
// entry re-homing landed those are no longer a loss window.
void RunTortureGeometry(const std::string& dir, uint32_t num_shards,
                        uint64_t seed_base) {
  const int iters = TortureIters();
  uint64_t total_rehomed = 0;
  uint64_t total_plain = 0;
  for (int i = 0; i < iters; ++i) {
    RunTortureIteration(dir, num_shards, seed_base + i,
                        /*async_seal=*/(i % 2) == 1,
                        /*audit_reuse=*/(i % 8) == 0, TortureGeometry{},
                        &total_rehomed, &total_plain);
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      FAIL() << "torture iteration " << i << " failed";
    }
  }
  if (total_rehomed + total_plain > 0) {
    std::printf("%u-shard torture: %llu re-homed + %llu plain withheld-slot "
                "reuses across %d iterations, zero losses\n",
                num_shards, static_cast<unsigned long long>(total_rehomed),
                static_cast<unsigned long long>(total_plain), iters);
  }
}

TEST_F(CrashRecoveryTest, TortureSingleShard) {
  RunTortureGeometry(dir_, /*num_shards=*/1, /*seed_base=*/10000);
}

TEST_F(CrashRecoveryTest, TortureEightShards) {
  RunTortureGeometry(dir_, /*num_shards=*/8, /*seed_base=*/20000);
}

// The same kill-point harness with UringBackend under the fault layer.
// A kill lands with payload SQEs possibly still in flight; the fault
// layer's tear calls Abandon() first, which waits out every submitted
// write (a power cut cannot un-issue DMA the device already accepted),
// so the tear operates on deterministic file state — the torn tail and
// partial overwrite land *on top of* whatever the ring had completed.
// Recovery reopens through the uring backend too, and the audit is the
// same strict zero-loss rule as every other geometry. Skip-gated on the
// runtime capability probe.
TEST_F(CrashRecoveryTest, TortureUringBackend) {
  std::string reason;
  if (!UringBackend::ProbeAvailable(&reason)) {
    GTEST_SKIP() << "io_uring unavailable: " << reason;
  }
  TortureGeometry geo;
  geo.backend = BackendKind::kUring;
  const int iters = std::max(TortureIters() / 4, 25);
  for (int i = 0; i < iters; ++i) {
    RunTortureIteration(dir_, /*num_shards=*/1, /*seed=*/70000 + i,
                        /*async_seal=*/(i % 2) == 1,
                        /*audit_reuse=*/(i % 8) == 0, geo);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "uring torture iteration " << i << " failed";
    }
  }
}

TEST_F(CrashRecoveryTest, TortureMultiLogTinyFreePool) {
  // Multi-log ties up (up to) two open segments per active log, so at a
  // tiny free pool the cleaner can hold more GC destinations open than
  // there are spare free slots — exactly the regime where
  // AllocateSegment's withheld-slot skip finds only withheld slots and
  // falls back to reuse. Before entry re-homing this was the residual
  // crash window ROADMAP tracked as "Multi-GC-destination crash
  // window"; now the fallback must either re-home the slot's
  // still-needed entries (withheld_slot_reuses_rehomed) or prove the
  // slot needs nothing (withheld_slot_reuses_plain), and the audit is
  // strict zero-loss like every other geometry. The geometry must
  // actually exercise the re-homed path, or it is not testing what it
  // claims to.
  const TortureGeometry geo = MultiLogTinyPoolGeometry();
  const int iters = std::max(TortureIters() / 4, 25);
  uint64_t total_rehomed = 0;
  uint64_t total_plain = 0;
  for (int i = 0; i < iters; ++i) {
    RunTortureIteration(dir_, /*num_shards=*/1, /*seed=*/30000 + i,
                        /*async_seal=*/(i % 2) == 1,
                        /*audit_reuse=*/(i % 8) == 0, geo, &total_rehomed,
                        &total_plain);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "multi-log torture iteration " << i << " failed";
    }
  }
  EXPECT_GT(total_rehomed, 0u)
      << "multi-log tiny-pool geometry never re-homed a withheld slot; "
         "tighten the free pool";
  std::printf("multi-log tiny-pool: %llu re-homed + %llu plain "
              "withheld-slot reuses across %d iterations, zero losses\n",
              static_cast<unsigned long long>(total_rehomed),
              static_cast<unsigned long long>(total_plain), iters);
}

// The regime where delta checkpoints chain: a short periodic interval
// plus explicit barriers every few dozen driver ops re-checkpoint the
// multi-log geometry's partially-filled open segments as they grow, so
// most open-segment state on the device is a full base record plus a
// chain of suffix records by the time the kill lands.
TortureGeometry DeltaChainGeometry() {
  TortureGeometry geo = MultiLogTinyPoolGeometry();
  geo.checkpoint_interval = 4;
  geo.barrier_every = 40;
  return geo;
}

// Delta-chain torture: every iteration recovers open segments from
// full-base + suffix chains (torn tails included) under the same strict
// zero-loss audit as every other geometry — and the geometry must
// actually emit delta records, or it is not testing what it claims to.
TEST_F(CrashRecoveryTest, TortureDeltaCheckpointChains) {
  const TortureGeometry geo = DeltaChainGeometry();
  const int iters = std::max(TortureIters() / 4, 25);
  uint64_t total_deltas = 0;
  for (int i = 0; i < iters; ++i) {
    RunTortureIteration(dir_, /*num_shards=*/1, /*seed=*/50000 + i,
                        /*async_seal=*/(i % 2) == 1,
                        /*audit_reuse=*/(i % 8) == 0, geo,
                        /*rehomed_reuses_out=*/nullptr,
                        /*plain_reuses_out=*/nullptr, &total_deltas);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "delta-chain torture iteration " << i << " failed";
    }
  }
  EXPECT_GT(total_deltas, 0u)
      << "delta-chain geometry never emitted a delta checkpoint; shorten "
         "the barrier period";
  std::printf("delta-chain torture: %llu delta records across %d "
              "iterations, zero losses\n",
              static_cast<unsigned long long>(total_deltas), iters);
}

// Pinned regression seeds: before entry re-homing landed, these exact
// workloads lost acknowledged pages — the withheld-slot fallback reused
// a slot whose still-needed entries existed only in the victim's own
// records, and the kill point landed before the successors' seals went
// durable. Both must now divert again and recover loss-free under the
// strict audit inside RunTortureIteration.
TEST_F(CrashRecoveryTest, PinnedLossSeedEightShardAsync) {
  uint64_t rehomed = 0;
  uint64_t plain = 0;
  RunTortureIteration(dir_, /*num_shards=*/8, /*seed=*/20323,
                      /*async_seal=*/true, /*audit_reuse=*/false,
                      TortureGeometry{}, &rehomed, &plain);
  // The seed is pinned *because* it diverts; if the diversion stops
  // firing, the regression test has gone stale — repin it.
  EXPECT_GT(rehomed + plain, 0u);
}

TEST_F(CrashRecoveryTest, PinnedLossSeedMultiLogTinyFreePool) {
  uint64_t rehomed = 0;
  uint64_t plain = 0;
  RunTortureIteration(dir_, /*num_shards=*/1, /*seed=*/30076,
                      /*async_seal=*/false, /*audit_reuse=*/false,
                      MultiLogTinyPoolGeometry(), &rehomed, &plain);
  EXPECT_GT(rehomed + plain, 0u);
}

// A focused regression for the crash window the checkpointing closed:
// drive heavy churn (reclaims + reseals + GC segments held open), crash
// at every op count in a dense range, and demand zero lost acknowledged
// writes each time. Sync mode, so the window (if it regressed) is not
// masked by pipeline batching.
TEST_F(CrashRecoveryTest, DenseKillPointsAroundReclaims) {
  for (int budget = 0; budget < 60; ++budget) {
    SCOPED_TRACE(budget);
    const StoreConfig cfg = TortureConfig(1, /*async_seal=*/false, dir_);
    const PageId num_pages = 100;
    Rng rng(777);
    std::vector<PageModel> model(num_pages);
    FaultInjectionBackend* fault = nullptr;
    Status st;
    auto store = ShardedStore::Create(
        cfg, 1, [] { return MakePolicy(Variant::kGreedy); }, &st,
        [&fault](uint32_t) -> std::unique_ptr<SegmentBackend> {
          auto f = std::make_unique<FaultInjectionBackend>(
              std::make_unique<FileBackend>());
          fault = f.get();
          return f;
        });
    ASSERT_NE(store, nullptr) << st.ToString();
    for (int i = 0; i < 600; ++i) {
      ASSERT_TRUE(ApplyRandomOp(store.get(), &model, num_pages, &rng));
    }
    ASSERT_TRUE(store->Checkpoint().ok());
    for (PageModel& pm : model) pm.frontier = pm.ops.size();
    fault->CrashAfterOps(budget, /*seed=*/9000 + budget);
    for (int i = 0; i < 400; ++i) {
      (void)ApplyRandomOp(store.get(), &model, num_pages, &rng);
    }
    // Close ticks the op budget too — sample the crash flag only after.
    (void)store->Close();
    const bool crashed = fault->crashed();
    store.reset();
    auto reopened = ShardedStore::Open(
        cfg, 1, [] { return MakePolicy(Variant::kGreedy); }, &st);
    ASSERT_NE(reopened, nullptr) << st.ToString();
    ASSERT_TRUE(reopened->CheckInvariants().ok());
    for (PageId p = 0; p < num_pages; ++p) {
      if (model[p].ops.empty()) continue;
      if (crashed) {
        AuditCrashedPage(*reopened, p, model[p]);
      } else {
        AuditCleanPage(*reopened, p, model[p]);
      }
    }
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "kill point " << budget << " failed";
    }
  }
}

// Kill points aimed at the re-homing emission itself. A probe run
// (unarmed, sync, multi-log tiny pool) finds a seed whose workload
// re-homes after the frontier and brackets the exact mutating-op range
// of the driver op that emitted the first re-homing record; the sweep
// then re-runs the identical workload armed with every budget in that
// bracket. Because the bracket covers the re-homing op itself, one
// budget kills it exactly — TearAndDie then appends garbage at the
// metadata tail, i.e. a torn re-homing record — and the budgets just
// past it crash after the re-homing fsync but before the reused slot's
// new seal is durable. Every budget must recover with zero lost
// acknowledged writes.
TEST_F(CrashRecoveryTest, KillPointsInsideRehomeEmission) {
  const TortureGeometry geo = MultiLogTinyPoolGeometry();
  const StoreConfig cfg = TortureConfig(1, /*async_seal=*/false, dir_, geo);
  const PageId num_pages = geo.pages_per_shard;
  constexpr int kWarmOps = 600;
  constexpr int kMaxProbeOps = 1600;

  auto make_store = [&](FaultInjectionBackend** fault,
                        Status* st) -> std::unique_ptr<ShardedStore> {
    return ShardedStore::Create(
        cfg, 1, [] { return MakePolicy(Variant::kMultiLog); }, st,
        [fault](uint32_t) -> std::unique_ptr<SegmentBackend> {
          auto f = std::make_unique<FaultInjectionBackend>(
              std::make_unique<FileBackend>());
          *fault = f.get();
          return f;
        });
  };
  auto mutating_ops = [](const FaultInjectionBackend& f) {
    return f.seals() + f.checkpoints() + f.reclaims() + f.deletes() +
           f.syncs() + f.rehomes();
  };

  // Probe: find a seed that re-homes after the frontier and the
  // mutating-op range [lo_op, hi_op] (counted from the arming point,
  // 1-based) of the driver op during which the re-home fired.
  uint64_t seed = 0;
  int flip_driver_op = -1;
  int64_t lo_op = 0;
  int64_t hi_op = 0;
  for (uint64_t cand = 40000; cand < 40020 && flip_driver_op < 0; ++cand) {
    Rng rng(cand);
    std::vector<PageModel> model(num_pages);
    FaultInjectionBackend* fault = nullptr;
    Status st;
    auto store = make_store(&fault, &st);
    ASSERT_NE(store, nullptr) << st.ToString();
    for (int i = 0; i < kWarmOps; ++i) {
      ASSERT_TRUE(ApplyRandomOp(store.get(), &model, num_pages, &rng));
    }
    ASSERT_TRUE(store->Checkpoint().ok());
    const int64_t base = mutating_ops(*fault);
    for (int i = 0; i < kMaxProbeOps; ++i) {
      const int64_t before = mutating_ops(*fault);
      ASSERT_TRUE(ApplyRandomOp(store.get(), &model, num_pages, &rng));
      if (fault->rehomes() > 0) {
        seed = cand;
        flip_driver_op = i;
        lo_op = before - base + 1;
        hi_op = mutating_ops(*fault) - base;
        break;
      }
    }
    ASSERT_TRUE(store->Close().ok());
  }
  ASSERT_GE(flip_driver_op, 0)
      << "no probe seed re-homed within the op budget; widen the probe";
  std::printf("rehome kill points: seed=%llu, re-home inside mutating ops "
              "[%lld, %lld] after the frontier\n",
              static_cast<unsigned long long>(seed),
              static_cast<long long>(lo_op), static_cast<long long>(hi_op));

  // Sweep: budget b kills the (b+1)-th mutating op after arming, so
  // budgets [lo_op-1, hi_op-1] kill every op of the flip driver op —
  // the re-home among them — and a margin on both sides covers the
  // record just before it and the crash right after its fsync.
  bool saw_crash_at_or_before_rehome = false;
  bool saw_crash_after_rehome = false;
  const int64_t lo_budget = std::max<int64_t>(0, lo_op - 4);
  const int64_t hi_budget = hi_op + 3;
  for (int64_t budget = lo_budget; budget <= hi_budget; ++budget) {
    SCOPED_TRACE("rehome kill budget " + std::to_string(budget));
    Rng rng(seed);
    std::vector<PageModel> model(num_pages);
    FaultInjectionBackend* fault = nullptr;
    Status st;
    auto store = make_store(&fault, &st);
    ASSERT_NE(store, nullptr) << st.ToString();
    for (int i = 0; i < kWarmOps; ++i) {
      ASSERT_TRUE(ApplyRandomOp(store.get(), &model, num_pages, &rng));
    }
    ASSERT_TRUE(store->Checkpoint().ok());
    for (PageModel& pm : model) pm.frontier = pm.ops.size();
    fault->CrashAfterOps(budget, /*seed=*/5150 + static_cast<uint64_t>(budget));
    for (int i = 0; i < flip_driver_op + 120; ++i) {
      (void)ApplyRandomOp(store.get(), &model, num_pages, &rng);
    }
    (void)store->Close();
    const bool crashed = fault->crashed();
    EXPECT_TRUE(crashed) << "budget never exhausted; the sweep is not "
                            "hitting the re-homing window";
    if (crashed && fault->rehomes() == 0) saw_crash_at_or_before_rehome = true;
    if (crashed && fault->rehomes() > 0) saw_crash_after_rehome = true;
    store.reset();
    auto reopened = ShardedStore::Open(
        cfg, 1, [] { return MakePolicy(Variant::kGreedy); }, &st);
    ASSERT_NE(reopened, nullptr) << st.ToString();
    ASSERT_TRUE(reopened->CheckInvariants().ok());
    for (PageId p = 0; p < num_pages; ++p) {
      if (model[p].ops.empty()) continue;
      if (crashed) {
        AuditCrashedPage(*reopened, p, model[p]);
      } else {
        AuditCleanPage(*reopened, p, model[p]);
      }
    }
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "rehome kill budget " << budget << " failed";
    }
  }
  // The contiguous bracket guarantees the boundary budget killed the
  // re-homing op itself (torn record tail) and a later one crashed
  // after its fsync; verify both sides were actually exercised.
  EXPECT_TRUE(saw_crash_at_or_before_rehome);
  EXPECT_TRUE(saw_crash_after_rehome);
}

// Kill points aimed at the delta-checkpoint emission itself. A probe
// run (unarmed, sync, delta-chain geometry) finds a seed whose workload
// emits its first suffix record after the frontier and brackets the
// exact mutating-op range of the driver step (op + possible barrier)
// that emitted it; the sweep re-runs the identical workload armed with
// every budget in that bracket. One budget kills the delta exactly —
// TearAndDie then garbles a partial prefix of the suffix payload range
// and the metadata tail, i.e. a torn suffix over payload whose prefix
// an earlier record of the same chain still covers — and the budgets
// just past it crash after the delta's fsync but before anything later
// is durable. Every budget must recover with zero lost acknowledged
// writes: the torn suffix must be discarded without corrupting the
// chain below it.
TEST_F(CrashRecoveryTest, KillPointsInsideDeltaEmission) {
  const TortureGeometry geo = DeltaChainGeometry();
  const StoreConfig cfg = TortureConfig(1, /*async_seal=*/false, dir_, geo);
  const PageId num_pages = geo.pages_per_shard;
  constexpr int kWarmOps = 600;
  constexpr int kMaxProbeOps = 1600;
  constexpr int kBarrierEvery = 25;

  auto make_store = [&](FaultInjectionBackend** fault,
                        Status* st) -> std::unique_ptr<ShardedStore> {
    return ShardedStore::Create(
        cfg, 1, [] { return MakePolicy(Variant::kMultiLog); }, st,
        [fault](uint32_t) -> std::unique_ptr<SegmentBackend> {
          auto f = std::make_unique<FaultInjectionBackend>(
              std::make_unique<FileBackend>());
          *fault = f.get();
          return f;
        });
  };
  auto mutating_ops = [](const FaultInjectionBackend& f) {
    return f.seals() + f.checkpoints() + f.delta_checkpoints() +
           f.reclaims() + f.deletes() + f.syncs() + f.rehomes();
  };

  // Probe: find a seed that emits a delta after the frontier and the
  // mutating-op range [lo_op, hi_op] (counted from the arming point,
  // 1-based) of the driver step during which it fired.
  uint64_t seed = 0;
  int flip_driver_op = -1;
  int64_t lo_op = 0;
  int64_t hi_op = 0;
  for (uint64_t cand = 60000; cand < 60020 && flip_driver_op < 0; ++cand) {
    Rng rng(cand);
    std::vector<PageModel> model(num_pages);
    FaultInjectionBackend* fault = nullptr;
    Status st;
    auto store = make_store(&fault, &st);
    ASSERT_NE(store, nullptr) << st.ToString();
    for (int i = 0; i < kWarmOps; ++i) {
      ASSERT_TRUE(ApplyRandomOp(store.get(), &model, num_pages, &rng));
      if ((i + 1) % kBarrierEvery == 0) {
        ASSERT_TRUE(store->Checkpoint().ok());
      }
    }
    ASSERT_TRUE(store->Checkpoint().ok());
    const int64_t base = mutating_ops(*fault);
    const int64_t deltas_at_frontier = fault->delta_checkpoints();
    for (int i = 0; i < kMaxProbeOps; ++i) {
      const int64_t before = mutating_ops(*fault);
      ASSERT_TRUE(ApplyRandomOp(store.get(), &model, num_pages, &rng));
      if ((i + 1) % kBarrierEvery == 0) {
        ASSERT_TRUE(store->Checkpoint().ok());
      }
      if (fault->delta_checkpoints() > deltas_at_frontier) {
        seed = cand;
        flip_driver_op = i;
        lo_op = before - base + 1;
        hi_op = mutating_ops(*fault) - base;
        break;
      }
    }
    ASSERT_TRUE(store->Close().ok());
  }
  ASSERT_GE(flip_driver_op, 0)
      << "no probe seed emitted a delta within the op budget; widen the "
         "probe";
  std::printf("delta kill points: seed=%llu, delta inside mutating ops "
              "[%lld, %lld] after the frontier\n",
              static_cast<unsigned long long>(seed),
              static_cast<long long>(lo_op), static_cast<long long>(hi_op));

  // Sweep: budget b kills the (b+1)-th mutating op after arming, so
  // budgets [lo_op-1, hi_op-1] kill every op of the flip driver step —
  // the delta among them — and a margin on both sides covers the record
  // just before it and the crash right after its fsync.
  bool saw_crash_at_or_before_delta = false;
  bool saw_crash_after_delta = false;
  const int64_t lo_budget = std::max<int64_t>(0, lo_op - 4);
  const int64_t hi_budget = hi_op + 3;
  for (int64_t budget = lo_budget; budget <= hi_budget; ++budget) {
    SCOPED_TRACE("delta kill budget " + std::to_string(budget));
    Rng rng(seed);
    std::vector<PageModel> model(num_pages);
    FaultInjectionBackend* fault = nullptr;
    Status st;
    auto store = make_store(&fault, &st);
    ASSERT_NE(store, nullptr) << st.ToString();
    for (int i = 0; i < kWarmOps; ++i) {
      ASSERT_TRUE(ApplyRandomOp(store.get(), &model, num_pages, &rng));
      if ((i + 1) % kBarrierEvery == 0) {
        ASSERT_TRUE(store->Checkpoint().ok());
      }
    }
    ASSERT_TRUE(store->Checkpoint().ok());
    for (PageModel& pm : model) pm.frontier = pm.ops.size();
    const int64_t deltas_at_frontier = fault->delta_checkpoints();
    fault->CrashAfterOps(budget, /*seed=*/6160 + static_cast<uint64_t>(budget));
    for (int i = 0; i < flip_driver_op + 120; ++i) {
      (void)ApplyRandomOp(store.get(), &model, num_pages, &rng);
      if ((i + 1) % kBarrierEvery == 0) (void)store->Checkpoint();
    }
    (void)store->Close();
    const bool crashed = fault->crashed();
    EXPECT_TRUE(crashed) << "budget never exhausted; the sweep is not "
                            "hitting the delta-emission window";
    if (crashed && fault->delta_checkpoints() == deltas_at_frontier) {
      saw_crash_at_or_before_delta = true;
    }
    if (crashed && fault->delta_checkpoints() > deltas_at_frontier) {
      saw_crash_after_delta = true;
    }
    store.reset();
    auto reopened = ShardedStore::Open(
        cfg, 1, [] { return MakePolicy(Variant::kGreedy); }, &st);
    ASSERT_NE(reopened, nullptr) << st.ToString();
    ASSERT_TRUE(reopened->CheckInvariants().ok());
    for (PageId p = 0; p < num_pages; ++p) {
      if (model[p].ops.empty()) continue;
      if (crashed) {
        AuditCrashedPage(*reopened, p, model[p]);
      } else {
        AuditCleanPage(*reopened, p, model[p]);
      }
    }
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "delta kill budget " << budget << " failed";
    }
  }
  // The contiguous bracket guarantees the boundary budget killed the
  // delta op itself (torn suffix + torn record tail) and a later one
  // crashed after its fsync; verify both sides were actually exercised.
  EXPECT_TRUE(saw_crash_at_or_before_delta);
  EXPECT_TRUE(saw_crash_after_delta);
}

}  // namespace
}  // namespace lss
