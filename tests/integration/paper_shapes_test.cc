// Integration tests pinning the paper's headline experimental *shapes*
// (who wins, by roughly what factor) at test scale, so a regression in
// any layer — policies, store machinery, workloads, analysis — that
// breaks a reproduced result fails CI, not just the bench output.

#include <gtest/gtest.h>

#include "analysis/hotcold_model.h"
#include "analysis/uniform_model.h"
#include "workload/runner.h"
#include "workload/zipfian_workload.h"

namespace lss {
namespace {

StoreConfig ShapeConfig() {
  StoreConfig c;
  c.page_bytes = 4096;
  c.segment_bytes = 128 * 4096;
  c.num_segments = 256;
  c.clean_trigger_segments = 4;
  c.clean_batch_segments = 16;
  c.write_buffer_segments = 8;
  return c;
}

double Wamp(Variant v, const WorkloadGenerator& w, double f,
            double warm = 6, double measure = 8) {
  RunSpec spec;
  spec.fill_factor = f;
  spec.warmup_multiplier = warm;
  spec.measure_multiplier = measure;
  const RunResult r = RunSynthetic(ShapeConfig(), v, w, spec);
  EXPECT_TRUE(r.status.ok()) << VariantName(v) << ": "
                             << r.status.ToString();
  return r.wamp;
}

// Figure 5a: under uniform updates age, greedy and MDC-opt are all close
// to the analytic fixpoint.
TEST(PaperShapes, UniformEveryoneNearAnalytic) {
  const StoreConfig cfg = ShapeConfig();
  UniformWorkload w(cfg.UserPagesForFillFactor(0.8));
  const double analytic = WampFromEmptiness(SolveSteadyStateEmptiness(0.8));
  for (Variant v : {Variant::kAge, Variant::kGreedy, Variant::kMdcOpt}) {
    const double wamp = Wamp(v, w, 0.8);
    EXPECT_NEAR(wamp, analytic, analytic * 0.30) << VariantName(v);
  }
}

// Figure 3 at 80-20: greedy > MDC > MDC-opt, and MDC-opt within reach of
// the analytic optimum.
TEST(PaperShapes, HotColdBreakdownOrdering) {
  const StoreConfig cfg = ShapeConfig();
  HotColdWorkload w(cfg.UserPagesForFillFactor(0.8), 0.8);
  const double greedy = Wamp(Variant::kGreedy, w, 0.8);
  const double no_sep = Wamp(Variant::kMdcNoSepUserGc, w, 0.8);
  const double mdc = Wamp(Variant::kMdc, w, 0.8);
  const double mdc_opt = Wamp(Variant::kMdcOpt, w, 0.8);
  EXPECT_LT(no_sep, greedy);
  EXPECT_LT(mdc, no_sep);
  EXPECT_LT(mdc_opt, mdc * 1.05);
  EXPECT_NEAR(mdc_opt, OptimalWamp(0.8, 0.8), OptimalWamp(0.8, 0.8) * 0.35);
}

// Figure 5b at F=0.8: the full ordering age > greedy > cost-benefit >
// MDC > MDC-opt under Zipf 0.99.
TEST(PaperShapes, ZipfianPolicyOrdering) {
  const StoreConfig cfg = ShapeConfig();
  ZipfianWorkload w(cfg.UserPagesForFillFactor(0.8), 0.99);
  const double age = Wamp(Variant::kAge, w, 0.8);
  const double greedy = Wamp(Variant::kGreedy, w, 0.8);
  const double cb = Wamp(Variant::kCostBenefit, w, 0.8);
  const double mdc = Wamp(Variant::kMdc, w, 0.8);
  const double mdc_opt = Wamp(Variant::kMdcOpt, w, 0.8);
  EXPECT_GT(age, greedy);
  EXPECT_GT(greedy, cb);
  EXPECT_GT(cb, mdc);
  EXPECT_GT(mdc, mdc_opt);
  // The age-vs-MDC gap is large (paper: ~3x-5x at 0.8).
  EXPECT_GT(age / mdc, 2.0);
}

// Figure 4: sorting user writes matters — a 16-segment sort buffer beats
// no buffer clearly under Zipf.
TEST(PaperShapes, SortBufferReducesWamp) {
  StoreConfig cfg = ShapeConfig();
  ZipfianWorkload w(cfg.UserPagesForFillFactor(0.8), 0.99);
  RunSpec spec;
  spec.fill_factor = 0.8;
  spec.warmup_multiplier = 6;
  spec.measure_multiplier = 8;
  cfg.write_buffer_segments = 1;
  const RunResult small = RunSynthetic(cfg, Variant::kMdc, w, spec);
  cfg.write_buffer_segments = 16;
  const RunResult big = RunSynthetic(cfg, Variant::kMdc, w, spec);
  ASSERT_TRUE(small.status.ok());
  ASSERT_TRUE(big.status.ok());
  EXPECT_LT(big.wamp, small.wamp * 0.85);
}

// Table 1 spot check: MDC-opt's measured clean-time emptiness tracks the
// analytic fixpoint at F = 0.8 (the §8.1 analysis/simulation agreement).
TEST(PaperShapes, AnalysisSimulationAgreement) {
  StoreConfig cfg = ShapeConfig();
  cfg.num_segments = 512;
  cfg.clean_trigger_segments = 2;
  cfg.clean_batch_segments = 8;
  UniformWorkload w(cfg.UserPagesForFillFactor(0.8));
  RunSpec spec;
  spec.fill_factor = 0.8;
  spec.warmup_multiplier = 8;
  spec.measure_multiplier = 10;
  const RunResult r = RunSynthetic(cfg, Variant::kMdcOpt, w, spec);
  ASSERT_TRUE(r.status.ok());
  EXPECT_NEAR(r.mean_clean_emptiness, SolveSteadyStateEmptiness(0.8), 0.025);
}

}  // namespace
}  // namespace lss
