#include "btree/node.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lss {
namespace {

struct NodeFixture : ::testing::Test {
  NodeFixture() {
    NodeView::Init(leaf_buf, NodeView::kLeaf);
    NodeView::Init(internal_buf, NodeView::kInternal);
  }
  uint8_t leaf_buf[kBtreePageSize];
  uint8_t internal_buf[kBtreePageSize];
};

TEST_F(NodeFixture, InitProducesEmptyConsistentNode) {
  NodeView leaf(leaf_buf);
  EXPECT_TRUE(leaf.IsLeaf());
  EXPECT_EQ(leaf.count(), 0u);
  EXPECT_EQ(leaf.right_sibling(), kInvalidPageNo);
  EXPECT_TRUE(leaf.CheckConsistent());
  NodeView in(internal_buf);
  EXPECT_FALSE(in.IsLeaf());
  EXPECT_TRUE(in.CheckConsistent());
}

TEST_F(NodeFixture, LeafInsertAndLookup) {
  NodeView n(leaf_buf);
  n.InsertLeaf(0, "banana", "yellow");
  n.InsertLeaf(n.LowerBound("apple"), "apple", "red");
  n.InsertLeaf(n.LowerBound("cherry"), "cherry", "dark");
  ASSERT_EQ(n.count(), 3u);
  EXPECT_EQ(n.Key(0), "apple");
  EXPECT_EQ(n.Key(1), "banana");
  EXPECT_EQ(n.Key(2), "cherry");
  EXPECT_EQ(n.Value(1), "yellow");
  uint16_t slot;
  EXPECT_TRUE(n.Find("cherry", &slot));
  EXPECT_EQ(slot, 2u);
  EXPECT_FALSE(n.Find("durian", &slot));
  EXPECT_TRUE(n.CheckConsistent());
}

TEST_F(NodeFixture, LowerBoundSemantics) {
  NodeView n(leaf_buf);
  n.InsertLeaf(0, "b", "1");
  n.InsertLeaf(1, "d", "2");
  EXPECT_EQ(n.LowerBound("a"), 0u);
  EXPECT_EQ(n.LowerBound("b"), 0u);
  EXPECT_EQ(n.LowerBound("c"), 1u);
  EXPECT_EQ(n.LowerBound("d"), 1u);
  EXPECT_EQ(n.LowerBound("e"), 2u);
}

TEST_F(NodeFixture, RemoveCompactsCells) {
  NodeView n(leaf_buf);
  n.InsertLeaf(0, "a", "111");
  n.InsertLeaf(1, "b", "222222");
  n.InsertLeaf(2, "c", "3");
  const uint16_t free_before = n.FreeBytes();
  n.Remove(1);
  ASSERT_EQ(n.count(), 2u);
  EXPECT_EQ(n.Key(0), "a");
  EXPECT_EQ(n.Key(1), "c");
  EXPECT_EQ(n.Value(0), "111");
  EXPECT_EQ(n.Value(1), "3");
  EXPECT_GT(n.FreeBytes(), free_before);
  EXPECT_TRUE(n.CheckConsistent());
}

TEST_F(NodeFixture, UpdateValueSameSizeInPlace) {
  NodeView n(leaf_buf);
  n.InsertLeaf(0, "k", "aaaa");
  n.UpdateLeafValue(0, "bbbb");
  EXPECT_EQ(n.Value(0), "bbbb");
  EXPECT_TRUE(n.CheckConsistent());
}

TEST_F(NodeFixture, UpdateValueDifferentSize) {
  NodeView n(leaf_buf);
  n.InsertLeaf(0, "a", "short");
  n.InsertLeaf(1, "b", "x");
  n.UpdateLeafValue(0, "a-considerably-longer-value");
  EXPECT_EQ(n.Value(0), "a-considerably-longer-value");
  EXPECT_EQ(n.Value(1), "x");
  n.UpdateLeafValue(0, "s");
  EXPECT_EQ(n.Value(0), "s");
  EXPECT_TRUE(n.CheckConsistent());
}

TEST_F(NodeFixture, FillUntilFullThenRoomChecksFail) {
  NodeView n(leaf_buf);
  int i = 0;
  char key[16];
  const std::string value(100, 'v');
  for (;; ++i) {
    std::snprintf(key, sizeof(key), "key%06d", i);
    if (!n.HasRoomFor(NodeView::LeafCellSize(key, value))) break;
    n.InsertLeaf(n.LowerBound(key), key, value);
  }
  EXPECT_GT(i, 30);  // ~112 bytes per cell in 4 KB
  EXPECT_TRUE(n.CheckConsistent());
}

TEST_F(NodeFixture, LeafSplitDistributesAndReturnsSeparator) {
  NodeView n(leaf_buf);
  char key[16];
  for (int i = 0; i < 40; ++i) {
    std::snprintf(key, sizeof(key), "key%06d", i);
    n.InsertLeaf(n.count(), key, std::string(50, 'v'));
  }
  uint8_t right_buf[kBtreePageSize];
  NodeView::Init(right_buf, NodeView::kLeaf);
  NodeView right(right_buf);
  const std::string sep = n.SplitInto(right);
  EXPECT_EQ(n.count() + right.count(), 40u);
  EXPECT_EQ(sep, right.Key(0));
  EXPECT_LT(n.Key(n.count() - 1), right.Key(0));
  EXPECT_TRUE(n.CheckConsistent());
  EXPECT_TRUE(right.CheckConsistent());
}

TEST_F(NodeFixture, InternalInsertAndRoute) {
  NodeView n(internal_buf);
  n.set_leftmost_child(100);
  n.InsertInternal(0, "m", 200);
  n.InsertInternal(n.LowerBound("t"), "t", 300);
  ASSERT_EQ(n.count(), 2u);
  EXPECT_EQ(n.Child(0), 200u);
  EXPECT_EQ(n.Child(1), 300u);
  n.SetChild(0, 201);
  EXPECT_EQ(n.Child(0), 201u);
  EXPECT_TRUE(n.CheckConsistent());
}

TEST_F(NodeFixture, InternalSplitMovesMiddleKeyUp) {
  NodeView n(internal_buf);
  n.set_leftmost_child(1);
  char key[16];
  for (int i = 0; i < 21; ++i) {
    std::snprintf(key, sizeof(key), "key%06d", i);
    n.InsertInternal(n.count(), key, 10 + i);
  }
  uint8_t right_buf[kBtreePageSize];
  NodeView::Init(right_buf, NodeView::kInternal);
  NodeView right(right_buf);
  const std::string sep = n.SplitInto(right);
  // The separator key is in neither node, and the right node's leftmost
  // child is the separator's old child.
  EXPECT_EQ(n.count() + right.count(), 20u);
  uint16_t slot;
  EXPECT_FALSE(n.Find(sep, &slot));
  EXPECT_FALSE(right.Find(sep, &slot));
  EXPECT_NE(right.leftmost_child(), kInvalidPageNo);
  EXPECT_LT(n.Key(n.count() - 1), sep);
  EXPECT_LT(sep, right.Key(0));
  EXPECT_TRUE(n.CheckConsistent());
  EXPECT_TRUE(right.CheckConsistent());
}

TEST_F(NodeFixture, BinaryKeysWithEmbeddedZeros) {
  NodeView n(leaf_buf);
  const std::string k1("\x00\x01", 2);
  const std::string k2("\x00\x02", 2);
  n.InsertLeaf(n.LowerBound(k2), k2, "two");
  n.InsertLeaf(n.LowerBound(k1), k1, "one");
  EXPECT_EQ(n.Key(0), k1);
  EXPECT_EQ(n.Value(0), "one");
  EXPECT_TRUE(n.CheckConsistent());
}

}  // namespace
}  // namespace lss
