#include "btree/buffer_pool.h"

#include <vector>

#include <gtest/gtest.h>

namespace lss {
namespace {

TEST(BufferPoolTest, AllocatePinnedReturnsZeroedPage) {
  Pager pager;
  BufferPool pool(&pager, 8);
  uint8_t* data = nullptr;
  const PageNo p = pool.AllocatePinned(&data);
  ASSERT_NE(data, nullptr);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(data[i], 0);
  pool.Unpin(p, true);
  pool.FlushAll();
}

TEST(BufferPoolTest, DirtyPageSurvivesEviction) {
  Pager pager;
  BufferPool pool(&pager, 8);
  uint8_t* data = nullptr;
  const PageNo p = pool.AllocatePinned(&data);
  data[0] = 0xAB;
  pool.Unpin(p, true);
  // Blow the cache with other pages.
  for (int i = 0; i < 32; ++i) {
    uint8_t* d = nullptr;
    const PageNo q = pool.AllocatePinned(&d);
    pool.Unpin(q, true);
  }
  uint8_t* back = pool.Pin(p);
  EXPECT_EQ(back[0], 0xAB);
  pool.Unpin(p, false);
  EXPECT_GT(pool.evictions(), 0u);
  pool.FlushAll();
}

TEST(BufferPoolTest, WriteObserverSeesWriteBacks) {
  Pager pager;
  std::vector<PageNo> written;
  BufferPool pool(&pager, 8, [&](PageNo p) { written.push_back(p); });
  uint8_t* d = nullptr;
  const PageNo p = pool.AllocatePinned(&d);
  d[0] = 1;
  pool.Unpin(p, true);
  EXPECT_TRUE(written.empty());  // still cached
  pool.FlushAll();
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0], p);
  // A clean page is not written again.
  pool.FlushAll();
  EXPECT_EQ(written.size(), 1u);
}

TEST(BufferPoolTest, EvictionWritesDirtyOnly) {
  Pager pager;
  std::vector<PageNo> written;
  BufferPool pool(&pager, 8, [&](PageNo p) { written.push_back(p); });
  // One dirty page, then fill with clean re-reads of fresh pages.
  uint8_t* d = nullptr;
  const PageNo dirty = pool.AllocatePinned(&d);
  pool.Unpin(dirty, true);
  std::vector<PageNo> clean_pages;
  for (int i = 0; i < 20; ++i) clean_pages.push_back(pager.Allocate());
  for (PageNo p : clean_pages) {
    pool.Pin(p);
    pool.Unpin(p, false);
  }
  // The dirty page must have been written back exactly once on eviction.
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0], dirty);
}

TEST(BufferPoolTest, HitsAndMisses) {
  Pager pager;
  BufferPool pool(&pager, 8);
  const PageNo p = pager.Allocate();
  pool.Pin(p);
  pool.Unpin(p, false);
  pool.Pin(p);
  pool.Unpin(p, false);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPoolTest, LruEvictsColdestPage) {
  Pager pager;
  std::vector<PageNo> written;
  BufferPool pool(&pager, 8, [&](PageNo p) { written.push_back(p); });
  std::vector<PageNo> pages;
  for (int i = 0; i < 8; ++i) {
    uint8_t* d = nullptr;
    pages.push_back(pool.AllocatePinned(&d));
    pool.Unpin(pages.back(), true);
  }
  // Touch all but pages[0]; the next allocation must evict pages[0].
  for (int i = 1; i < 8; ++i) {
    pool.Pin(pages[i]);
    pool.Unpin(pages[i], false);
  }
  uint8_t* d = nullptr;
  const PageNo q = pool.AllocatePinned(&d);
  pool.Unpin(q, true);
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0], pages[0]);
}

TEST(BufferPoolTest, PageRefRaii) {
  Pager pager;
  BufferPool pool(&pager, 8);
  const PageNo p = pager.Allocate();
  {
    PageRef ref(&pool, p);
    ASSERT_TRUE(ref.Valid());
    ref.data()[0] = 7;
    ref.MarkDirty();
  }
  EXPECT_EQ(pool.PinnedFrames(), 0u);
  pool.FlushAll();
  EXPECT_EQ(pager.Raw(p)[0], 7);
}

TEST(BufferPoolTest, PageRefMoveTransfersOwnership) {
  Pager pager;
  BufferPool pool(&pager, 8);
  const PageNo p = pager.Allocate();
  PageRef a(&pool, p);
  PageRef b = std::move(a);
  EXPECT_FALSE(a.Valid());
  EXPECT_TRUE(b.Valid());
  b.Release();
  EXPECT_EQ(pool.PinnedFrames(), 0u);
}

}  // namespace
}  // namespace lss
