#include "btree/buffer_pool.h"

#include <atomic>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

namespace lss {
namespace {

TEST(BufferPoolTest, AllocatePinnedReturnsZeroedPage) {
  Pager pager;
  BufferPool pool(&pager, 8);
  uint8_t* data = nullptr;
  const PageNo p = pool.AllocatePinned(&data);
  ASSERT_NE(data, nullptr);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(data[i], 0);
  pool.Unpin(p, true);
  pool.FlushAll();
}

TEST(BufferPoolTest, DirtyPageSurvivesEviction) {
  Pager pager;
  BufferPool pool(&pager, 8);
  uint8_t* data = nullptr;
  const PageNo p = pool.AllocatePinned(&data);
  data[0] = 0xAB;
  pool.Unpin(p, true);
  // Blow the cache with other pages.
  for (int i = 0; i < 32; ++i) {
    uint8_t* d = nullptr;
    const PageNo q = pool.AllocatePinned(&d);
    pool.Unpin(q, true);
  }
  uint8_t* back = pool.Pin(p);
  EXPECT_EQ(back[0], 0xAB);
  pool.Unpin(p, false);
  EXPECT_GT(pool.evictions(), 0u);
  pool.FlushAll();
}

TEST(BufferPoolTest, WriteObserverSeesWriteBacks) {
  Pager pager;
  std::vector<PageNo> written;
  BufferPool pool(&pager, 8, [&](PageNo p) { written.push_back(p); });
  uint8_t* d = nullptr;
  const PageNo p = pool.AllocatePinned(&d);
  d[0] = 1;
  pool.Unpin(p, true);
  EXPECT_TRUE(written.empty());  // still cached
  pool.FlushAll();
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0], p);
  // A clean page is not written again.
  pool.FlushAll();
  EXPECT_EQ(written.size(), 1u);
}

TEST(BufferPoolTest, EvictionWritesDirtyOnly) {
  Pager pager;
  std::vector<PageNo> written;
  BufferPool pool(&pager, 8, [&](PageNo p) { written.push_back(p); });
  // One dirty page, then fill with clean re-reads of fresh pages.
  uint8_t* d = nullptr;
  const PageNo dirty = pool.AllocatePinned(&d);
  pool.Unpin(dirty, true);
  std::vector<PageNo> clean_pages;
  for (int i = 0; i < 20; ++i) clean_pages.push_back(pager.Allocate());
  for (PageNo p : clean_pages) {
    pool.Pin(p);
    pool.Unpin(p, false);
  }
  // The dirty page must have been written back exactly once on eviction.
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0], dirty);
}

TEST(BufferPoolTest, HitsAndMisses) {
  Pager pager;
  BufferPool pool(&pager, 8);
  const PageNo p = pager.Allocate();
  pool.Pin(p);
  pool.Unpin(p, false);
  pool.Pin(p);
  pool.Unpin(p, false);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPoolTest, LruEvictsColdestPage) {
  Pager pager;
  std::vector<PageNo> written;
  BufferPool pool(&pager, 8, [&](PageNo p) { written.push_back(p); });
  std::vector<PageNo> pages;
  for (int i = 0; i < 8; ++i) {
    uint8_t* d = nullptr;
    pages.push_back(pool.AllocatePinned(&d));
    pool.Unpin(pages.back(), true);
  }
  // Touch all but pages[0]; the next allocation must evict pages[0].
  for (int i = 1; i < 8; ++i) {
    pool.Pin(pages[i]);
    pool.Unpin(pages[i], false);
  }
  uint8_t* d = nullptr;
  const PageNo q = pool.AllocatePinned(&d);
  pool.Unpin(q, true);
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0], pages[0]);
}

TEST(BufferPoolTest, PageRefRaii) {
  Pager pager;
  BufferPool pool(&pager, 8);
  const PageNo p = pager.Allocate();
  {
    PageRef ref(&pool, p);
    ASSERT_TRUE(ref.Valid());
    ref.data()[0] = 7;
    ref.MarkDirty();
  }
  EXPECT_EQ(pool.PinnedFrames(), 0u);
  pool.FlushAll();
  EXPECT_EQ(pager.Raw(p)[0], 7);
}

TEST(BufferPoolTest, PartitionAutoScaling) {
  Pager pager;
  // Tiny pools get one stripe (exact global LRU, the pre-refactor
  // behaviour); big pools get up to 64 stripes of >= 64 frames each.
  EXPECT_EQ(BufferPool(&pager, 8).partitions(), 1u);
  EXPECT_EQ(BufferPool(&pager, 127).partitions(), 1u);
  EXPECT_EQ(BufferPool(&pager, 128).partitions(), 2u);
  EXPECT_EQ(BufferPool(&pager, 8192).partitions(), 64u);
  // An explicit request is honoured but clamped to >= 8 frames/stripe.
  EXPECT_EQ(BufferPool(&pager, 64, nullptr, 4).partitions(), 4u);
  EXPECT_EQ(BufferPool(&pager, 16, nullptr, 16).partitions(), 2u);
}

TEST(BufferPoolTest, RepeatedPinsCountOneFrame) {
  Pager pager;
  BufferPool pool(&pager, 8);
  const PageNo p = pager.Allocate();
  pool.Pin(p);
  pool.Pin(p);
  EXPECT_EQ(pool.PinnedFrames(), 1u);
  pool.Unpin(p, false);
  EXPECT_EQ(pool.PinnedFrames(), 1u);  // one pin still outstanding
  pool.Unpin(p, false);
  EXPECT_EQ(pool.PinnedFrames(), 0u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, FlushAllSkipsPinnedFrames) {
  Pager pager;
  std::vector<PageNo> written;
  BufferPool pool(&pager, 8, [&](PageNo p) { written.push_back(p); });
  uint8_t* d = nullptr;
  const PageNo p = pool.AllocatePinned(&d);
  // Pinned + dirty: a flush must leave the frame alone (its bytes are in
  // active use), and write it once it is unpinned.
  pool.FlushAll();
  EXPECT_TRUE(written.empty());
  pool.Unpin(p, true);
  pool.FlushAll();
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0], p);
}

TEST(BufferPoolTest, MultiPartitionEvictionAccounting) {
  Pager pager;
  std::atomic<uint64_t> observed{0};
  BufferPool pool(&pager, 64, [&](PageNo) { ++observed; },
                  /*partitions=*/4);
  ASSERT_EQ(pool.partitions(), 4u);
  // Write 4x the capacity in distinct pages, each stamped with its page
  // number; every page must survive (via write-back) despite evictions
  // landing across all four stripes.
  constexpr int kPages = 256;
  std::vector<PageNo> pages;
  for (int i = 0; i < kPages; ++i) {
    uint8_t* d = nullptr;
    const PageNo p = pool.AllocatePinned(&d);
    std::memcpy(d, &p, sizeof(p));
    pool.Unpin(p, true);
    pages.push_back(p);
  }
  pool.FlushAll();
  EXPECT_GT(pool.evictions(), 0u);
  EXPECT_EQ(pool.write_backs(), observed.load());
  EXPECT_EQ(pool.write_backs(), static_cast<uint64_t>(kPages));
  for (PageNo p : pages) {
    PageRef ref(&pool, p);
    PageNo stamp = 0;
    std::memcpy(&stamp, ref.data(), sizeof(stamp));
    EXPECT_EQ(stamp, p);
  }
  // Every allocation missed; the verification pass re-misses evicted
  // pages and hits cached ones — totals must reconcile exactly.
  EXPECT_EQ(pool.hits() + pool.misses(),
            static_cast<uint64_t>(2 * kPages));
}

TEST(BufferPoolTest, PageRefMoveTransfersOwnership) {
  Pager pager;
  BufferPool pool(&pager, 8);
  const PageNo p = pager.Allocate();
  PageRef a(&pool, p);
  PageRef b = std::move(a);
  EXPECT_FALSE(a.Valid());
  EXPECT_TRUE(b.Valid());
  b.Release();
  EXPECT_EQ(pool.PinnedFrames(), 0u);
}

TEST(BufferPoolTest, AutoPartitionFloor) {
  Pager pager;
  // Auto-partitioning never creates a stripe of fewer than 64 frames, so
  // every capacity below 128 — including the asserted minimum of 8 —
  // runs as exactly one partition (a single exact cache).
  for (size_t capacity = 8; capacity < 128; ++capacity) {
    EXPECT_EQ(BufferPool(&pager, capacity).partitions(), 1u)
        << "capacity " << capacity;
  }
  EXPECT_EQ(BufferPool(&pager, 128).partitions(), 2u);
}

// Reference model of the pre-seam pool (exact LRU, one partition): the
// policy-seam refactor must reproduce its observable behaviour —
// write-back order and all counters — bit for bit.
class LruReferenceModel {
 public:
  explicit LruReferenceModel(size_t capacity) : capacity_(capacity) {
    // Free frames are handed out lowest-index first.
    for (size_t i = 0; i < capacity; ++i) free_.push_back(capacity - 1 - i);
  }

  void Pin(PageNo page) {
    auto it = resident_.find(page);
    if (it != resident_.end()) {
      ++hits;
      lru_.remove(page);
      ++it->second.pins;
      return;
    }
    ++misses;
    size_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      const PageNo victim = lru_.back();
      lru_.pop_back();
      Entry& v = resident_[victim];
      if (v.dirty) writes.push_back(victim);
      idx = v.frame;
      resident_.erase(victim);
      ++evictions;
    }
    resident_[page] = Entry{idx, 1, false};
  }

  void Unpin(PageNo page, bool dirty) {
    Entry& e = resident_[page];
    e.dirty |= dirty;
    if (--e.pins == 0) lru_.push_front(page);
  }

  void FlushAll() {
    // Frame-index order, dirty unpinned frames only.
    std::map<size_t, PageNo> by_frame;
    for (const auto& [page, e] : resident_) by_frame[e.frame] = page;
    for (const auto& [idx, page] : by_frame) {
      (void)idx;
      Entry& e = resident_[page];
      if (e.dirty && e.pins == 0) {
        writes.push_back(page);
        e.dirty = false;
      }
    }
  }

  std::vector<PageNo> writes;
  uint64_t hits = 0, misses = 0, evictions = 0;

 private:
  struct Entry {
    size_t frame = 0;
    uint32_t pins = 0;
    bool dirty = false;
  };
  size_t capacity_;
  std::unordered_map<PageNo, Entry> resident_;
  std::list<PageNo> lru_;      // front = MRU; unpinned pages only
  std::vector<size_t> free_;   // pop_back yields lowest index first
};

TEST(BufferPoolTest, ExactLruMatchesReferenceModel) {
  constexpr size_t kCapacity = 16;
  constexpr PageNo kPages = 40;
  constexpr int kOps = 20000;

  Pager pager;
  std::vector<PageNo> pool_writes;
  BufferPool pool(&pager, kCapacity,
                  [&](PageNo p) { pool_writes.push_back(p); },
                  /*partitions=*/1, EvictionPolicyKind::kExactLru);
  LruReferenceModel model(kCapacity);
  for (PageNo p = 0; p < kPages; ++p) pager.Allocate();

  // A deterministic stream of overlapping pins, dirtying half of them,
  // with periodic checkpoints.
  std::deque<PageNo> held;
  uint64_t x = 12345;
  for (int i = 0; i < kOps; ++i) {
    x = SplitMix64(x);
    const PageNo p = static_cast<PageNo>(x % kPages);
    pool.Pin(p);
    model.Pin(p);
    held.push_back(p);
    if (held.size() > 3) {
      x = SplitMix64(x);
      const bool dirty = (x & 1) != 0;
      pool.Unpin(held.front(), dirty);
      model.Unpin(held.front(), dirty);
      held.pop_front();
    }
    if ((i % 1024) == 1023) {
      pool.FlushAll();
      model.FlushAll();
    }
  }
  while (!held.empty()) {
    pool.Unpin(held.front(), false);
    model.Unpin(held.front(), false);
    held.pop_front();
  }
  pool.FlushAll();
  model.FlushAll();

  EXPECT_EQ(pool_writes, model.writes);
  EXPECT_EQ(pool.hits(), model.hits);
  EXPECT_EQ(pool.misses(), model.misses);
  EXPECT_EQ(pool.evictions(), model.evictions);
  EXPECT_EQ(pool.write_backs(), model.writes.size());
}

TEST(BufferPoolTest, TwoQSurvivesScanFlood) {
  // A promoted hot set must survive a one-pass sequential flood under
  // 2Q; under exact LRU the same flood purges it completely.
  constexpr size_t kCapacity = 64;
  constexpr PageNo kHot = 16;
  constexpr PageNo kFloodPages = 2000;

  for (EvictionPolicyKind kind :
       {EvictionPolicyKind::kTwoQ, EvictionPolicyKind::kExactLru}) {
    Pager pager;
    BufferPool pool(&pager, kCapacity, nullptr, /*partitions=*/1, kind);
    for (PageNo p = 0; p < kHot + kFloodPages; ++p) pager.Allocate();

    // Two passes over the hot set: the second reference is what 2Q
    // rewards with a protected (Am) slot.
    for (int round = 0; round < 2; ++round) {
      for (PageNo p = 0; p < kHot; ++p) {
        pool.Pin(p);
        pool.Unpin(p, false);
      }
    }
    // One-pass flood, far larger than the pool.
    for (PageNo p = kHot; p < kHot + kFloodPages; ++p) {
      pool.Pin(p);
      pool.Unpin(p, false);
    }
    const uint64_t hits_before = pool.hits();
    for (PageNo p = 0; p < kHot; ++p) {
      pool.Pin(p);
      pool.Unpin(p, false);
    }
    const uint64_t hot_hits = pool.hits() - hits_before;
    if (kind == EvictionPolicyKind::kTwoQ) {
      EXPECT_EQ(hot_hits, kHot) << "2Q lost its protected set to a scan";
    } else {
      EXPECT_EQ(hot_hits, 0u) << "LRU unexpectedly survived the scan";
    }
  }
}

TEST(BufferPoolTest, ClockHitsAreLatchFree) {
  Pager pager;
  BufferPool pool(&pager, 64, nullptr, /*partitions=*/1,
                  EvictionPolicyKind::kClock);
  std::vector<PageNo> pages;
  for (int i = 0; i < 32; ++i) pages.push_back(pager.Allocate());
  for (PageNo p : pages) {
    pool.Pin(p);
    pool.Unpin(p, false);
  }
  // Pure hits: pin and unpin must both bypass the partition latch.
  const uint64_t latches = pool.latch_acquisitions();
  const uint64_t hits = pool.hits();
  for (int round = 0; round < 50; ++round) {
    for (PageNo p : pages) {
      pool.Pin(p);
      pool.Unpin(p, false);
    }
  }
  EXPECT_EQ(pool.hits(), hits + 50 * pages.size());
  EXPECT_EQ(pool.latch_acquisitions(), latches);
}

TEST(BufferPoolTest, ClockWriteBacksSurviveEviction) {
  // Same zero-loss write-back contract as LRU, under CLOCK's claim-based
  // eviction: every dirtied page's final value must be readable after
  // churn evicts it.
  Pager pager;
  BufferPool pool(&pager, 8, nullptr, /*partitions=*/1,
                  EvictionPolicyKind::kClock);
  std::vector<PageNo> pages;
  for (int i = 0; i < 32; ++i) {
    uint8_t* d = nullptr;
    const PageNo p = pool.AllocatePinned(&d);
    std::memcpy(d, &p, sizeof(p));
    pool.Unpin(p, true);
    pages.push_back(p);
  }
  pool.FlushAll();
  for (PageNo p : pages) {
    PageRef ref(&pool, p);
    PageNo stamp = 0;
    std::memcpy(&stamp, ref.data(), sizeof(stamp));
    EXPECT_EQ(stamp, p);
  }
}

// --- Concurrency (runs under TSan via scripts/check.sh --tsan) ----------

TEST(BufferPoolParallelTest, ConcurrentPinUnpinStress) {
  // 8 threads hammer one pool: each thread read-modify-writes its own
  // page range (the pool's contract: no two threads mutate one page
  // concurrently) and reads a shared read-only range, while thread 0
  // periodically checkpoints. Verifies counter reconciliation and that
  // no update is lost through eviction/write-back races.
  constexpr uint32_t kThreads = 8;
  constexpr int kItersPerThread = 4000;
  constexpr PageNo kOwnPages = 24;    // per thread
  constexpr PageNo kSharedPages = 64;

  Pager pager;
  std::atomic<uint64_t> observed{0};
  BufferPool pool(&pager, 128, [&](PageNo) { ++observed; },
                  /*partitions=*/8);

  // Shared read-only pages, stamped with their page number.
  std::vector<PageNo> shared;
  for (PageNo i = 0; i < kSharedPages; ++i) {
    uint8_t* d = nullptr;
    const PageNo p = pool.AllocatePinned(&d);
    std::memcpy(d, &p, sizeof(p));
    pool.Unpin(p, true);
    shared.push_back(p);
  }
  // Per-thread counter pages.
  std::vector<std::vector<PageNo>> own(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    for (PageNo i = 0; i < kOwnPages; ++i) {
      uint8_t* d = nullptr;
      const PageNo p = pool.AllocatePinned(&d);
      pool.Unpin(p, true);
      own[t].push_back(p);
    }
  }
  pool.FlushAll();

  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t x = t * 0x9E3779B97F4A7C15ull + 1;
      for (int i = 0; i < kItersPerThread; ++i) {
        x = SplitMix64(x);
        if ((x & 1) == 0) {
          // Read a shared page and verify its stamp.
          const PageNo p = shared[x % kSharedPages];
          PageRef ref(&pool, p);
          PageNo stamp = 0;
          std::memcpy(&stamp, ref.data(), sizeof(stamp));
          ASSERT_EQ(stamp, p);
        } else {
          // Increment this thread's own page counter.
          const PageNo p = own[t][x % kOwnPages];
          PageRef ref(&pool, p);
          uint64_t count = 0;
          std::memcpy(&count, ref.data(), sizeof(count));
          ++count;
          std::memcpy(ref.data(), &count, sizeof(count));
          ref.MarkDirty();
        }
        if (t == 0 && (i % 512) == 511) pool.FlushAll();
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(pool.PinnedFrames(), 0u);
  pool.FlushAll();
  EXPECT_EQ(pool.write_backs(), observed.load());

  // Each thread's counters must sum to its write-iteration count: no
  // increment may be lost to a torn write-back or stale reload.
  for (uint32_t t = 0; t < kThreads; ++t) {
    uint64_t sum = 0;
    for (PageNo p : own[t]) {
      PageRef ref(&pool, p);
      uint64_t count = 0;
      std::memcpy(&count, ref.data(), sizeof(count));
      sum += count;
    }
    uint64_t expected = 0;
    uint64_t x = t * 0x9E3779B97F4A7C15ull + 1;
    for (int i = 0; i < kItersPerThread; ++i) {
      x = SplitMix64(x);
      if ((x & 1) != 0) ++expected;
    }
    EXPECT_EQ(sum, expected) << "thread " << t;
  }
}

TEST(BufferPoolParallelTest, ConcurrentAllocatePinned) {
  // Concurrent fresh-page allocation: page numbers must be unique and
  // every page's first write must survive.
  constexpr uint32_t kThreads = 8;
  constexpr int kPerThread = 500;
  Pager pager;
  BufferPool pool(&pager, 128, nullptr, /*partitions=*/8);
  std::vector<std::vector<PageNo>> pages(kThreads);
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint8_t* d = nullptr;
        const PageNo p = pool.AllocatePinned(&d);
        std::memcpy(d, &p, sizeof(p));
        pool.Unpin(p, true);
        pages[t].push_back(p);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  pool.FlushAll();

  std::vector<bool> seen(pager.PageCount(), false);
  for (const auto& list : pages) {
    for (PageNo p : list) {
      ASSERT_LT(p, pager.PageCount());
      ASSERT_FALSE(seen[p]) << "duplicate page " << p;
      seen[p] = true;
      PageNo stamp = 0;
      std::memcpy(&stamp, pager.Raw(p), sizeof(stamp));
      EXPECT_EQ(stamp, p);
    }
  }
  EXPECT_EQ(pager.PageCount(), kThreads * kPerThread);
}

TEST(BufferPoolParallelTest, ClockConcurrentHitStress) {
  // The CLOCK latch-free hit path under fire: threads race lock-free
  // pins/unpins on a shared hot set against evictions (capacity is half
  // the working set) and periodic FlushAll claims. Run under TSan; the
  // per-thread counter pages also make any lost update visible.
  constexpr uint32_t kThreads = 8;
  constexpr int kItersPerThread = 4000;
  constexpr PageNo kOwnPages = 24;  // per thread
  constexpr PageNo kSharedPages = 64;

  Pager pager;
  std::atomic<uint64_t> observed{0};
  BufferPool pool(&pager, 128, [&](PageNo) { ++observed; },
                  /*partitions=*/8, EvictionPolicyKind::kClock);

  std::vector<PageNo> shared;
  for (PageNo i = 0; i < kSharedPages; ++i) {
    uint8_t* d = nullptr;
    const PageNo p = pool.AllocatePinned(&d);
    std::memcpy(d, &p, sizeof(p));
    pool.Unpin(p, true);
    shared.push_back(p);
  }
  std::vector<std::vector<PageNo>> own(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    for (PageNo i = 0; i < kOwnPages; ++i) {
      uint8_t* d = nullptr;
      const PageNo p = pool.AllocatePinned(&d);
      pool.Unpin(p, true);
      own[t].push_back(p);
    }
  }
  pool.FlushAll();

  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t x = t * 0x9E3779B97F4A7C15ull + 1;
      for (int i = 0; i < kItersPerThread; ++i) {
        x = SplitMix64(x);
        if ((x & 1) == 0) {
          const PageNo p = shared[x % kSharedPages];
          PageRef ref(&pool, p);
          PageNo stamp = 0;
          std::memcpy(&stamp, ref.data(), sizeof(stamp));
          ASSERT_EQ(stamp, p);
        } else {
          const PageNo p = own[t][x % kOwnPages];
          PageRef ref(&pool, p);
          uint64_t count = 0;
          std::memcpy(&count, ref.data(), sizeof(count));
          ++count;
          std::memcpy(ref.data(), &count, sizeof(count));
          ref.MarkDirty();
        }
        if (t == 0 && (i % 512) == 511) pool.FlushAll();
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(pool.PinnedFrames(), 0u);
  pool.FlushAll();
  EXPECT_EQ(pool.write_backs(), observed.load());

  for (uint32_t t = 0; t < kThreads; ++t) {
    uint64_t sum = 0;
    for (PageNo p : own[t]) {
      PageRef ref(&pool, p);
      uint64_t count = 0;
      std::memcpy(&count, ref.data(), sizeof(count));
      sum += count;
    }
    uint64_t expected = 0;
    uint64_t x = t * 0x9E3779B97F4A7C15ull + 1;
    for (int i = 0; i < kItersPerThread; ++i) {
      x = SplitMix64(x);
      if ((x & 1) != 0) ++expected;
    }
    EXPECT_EQ(sum, expected) << "thread " << t;
  }
  // The shared hot set sees sustained hits; misses still occur (the pool
  // is half the working set), but the hit path must dominate latch
  // traffic: far fewer latch acquisitions than operations.
  EXPECT_GT(pool.hits(), 0u);
  EXPECT_LT(pool.latch_acquisitions(), pool.hits() + pool.misses());
}

}  // namespace
}  // namespace lss
