#include "btree/btree.h"

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace lss {
namespace {

struct BTreeFixture : ::testing::Test {
  BTreeFixture() : pool(&pager, 64), tree(&pool) {}
  Pager pager;
  BufferPool pool;
  BTree tree;
};

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

TEST_F(BTreeFixture, EmptyTree) {
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_FALSE(tree.Get("anything", nullptr));
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_TRUE(tree.CheckIntegrity().ok());
  EXPECT_EQ(tree.Height(), 1u);
}

TEST_F(BTreeFixture, InsertAndGet) {
  ASSERT_TRUE(tree.Insert("hello", "world").ok());
  std::string v;
  ASSERT_TRUE(tree.Get("hello", &v));
  EXPECT_EQ(v, "world");
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_FALSE(tree.Get("hellp", nullptr));
}

TEST_F(BTreeFixture, DuplicateInsertRejected) {
  ASSERT_TRUE(tree.Insert("k", "1").ok());
  EXPECT_FALSE(tree.Insert("k", "2").ok());
  std::string v;
  tree.Get("k", &v);
  EXPECT_EQ(v, "1");
}

TEST_F(BTreeFixture, PutOverwrites) {
  ASSERT_TRUE(tree.Put("k", "1").ok());
  ASSERT_TRUE(tree.Put("k", "22").ok());
  std::string v;
  ASSERT_TRUE(tree.Get("k", &v));
  EXPECT_EQ(v, "22");
  EXPECT_EQ(tree.Size(), 1u);
}

TEST_F(BTreeFixture, RejectsOversizedPayload) {
  const std::string huge(NodeView::kMaxPayload + 1, 'x');
  EXPECT_FALSE(tree.Insert("k", huge).ok());
  EXPECT_FALSE(tree.Insert("", "v").ok());
}

TEST_F(BTreeFixture, DeleteRemoves) {
  ASSERT_TRUE(tree.Insert("a", "1").ok());
  ASSERT_TRUE(tree.Insert("b", "2").ok());
  EXPECT_TRUE(tree.Delete("a"));
  EXPECT_FALSE(tree.Get("a", nullptr));
  EXPECT_FALSE(tree.Delete("a"));
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_TRUE(tree.CheckIntegrity().ok());
}

TEST_F(BTreeFixture, SplitsGrowTheTree) {
  // Enough records to force three levels: values ~100 bytes → ~36 per
  // leaf → ~250 leaves at 9000 records, exceeding one internal node's
  // ~240 children.
  for (int i = 0; i < 9000; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), std::string(100, 'v')).ok()) << i;
  }
  EXPECT_EQ(tree.Size(), 9000u);
  EXPECT_GE(tree.Height(), 3u);
  ASSERT_TRUE(tree.CheckIntegrity().ok());
  for (int i = 0; i < 9000; i += 97) {
    EXPECT_TRUE(tree.Get(Key(i), nullptr)) << i;
  }
}

TEST_F(BTreeFixture, ReverseInsertionOrder) {
  for (int i = 2000; i > 0; --i) {
    ASSERT_TRUE(tree.Insert(Key(i), "v").ok());
  }
  ASSERT_TRUE(tree.CheckIntegrity().ok());
  int count = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, 2000);
}

TEST_F(BTreeFixture, IteratorWalksInOrder) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i * 2), Key(i)).ok());
  }
  int expected = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), Key(expected));
    expected += 2;
  }
  EXPECT_EQ(expected, 1000);
}

TEST_F(BTreeFixture, SeekFindsLowerBound) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i * 10), "v").ok());
  }
  auto it = tree.Seek(Key(55));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(60));
  it = tree.Seek(Key(60));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(60));
  it = tree.Seek(Key(10000));
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeFixture, SeekSkipsEmptiedLeaves) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), std::string(200, 'v')).ok());
  }
  // Empty out a middle range spanning whole leaves.
  for (int i = 100; i < 200; ++i) EXPECT_TRUE(tree.Delete(Key(i)));
  auto it = tree.Seek(Key(100));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(200));
  ASSERT_TRUE(tree.CheckIntegrity().ok());
}

TEST_F(BTreeFixture, ValueGrowthForcesSplit) {
  // Fill a leaf with small values, then grow one beyond the free space.
  for (int i = 0; i < 36; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), std::string(90, 'a')).ok());
  }
  const std::string big(900, 'b');
  ASSERT_TRUE(tree.Put(Key(18), big).ok());
  std::string v;
  ASSERT_TRUE(tree.Get(Key(18), &v));
  EXPECT_EQ(v, big);
  ASSERT_TRUE(tree.CheckIntegrity().ok());
}

TEST_F(BTreeFixture, TinyBufferPoolStillWorks) {
  // The tree must function with a pool barely larger than its pin depth,
  // exercising eviction and write-back of interior pages.
  Pager small_pager;
  BufferPool small_pool(&small_pager, 8);
  BTree t(&small_pool);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(t.Insert(Key(i), std::string(60, 'v')).ok()) << i;
  }
  for (int i = 0; i < 3000; i += 131) {
    EXPECT_TRUE(t.Get(Key(i), nullptr));
  }
  EXPECT_GT(small_pool.evictions(), 100u);
  ASSERT_TRUE(t.CheckIntegrity().ok());
}

// Property test: random interleaving of put/delete/get mirrors std::map.
TEST_F(BTreeFixture, MatchesReferenceModelUnderChurn) {
  std::map<std::string, std::string> model;
  Rng rng(2024);
  for (int step = 0; step < 20000; ++step) {
    const int key_id = static_cast<int>(rng.NextBounded(800));
    const std::string key = Key(key_id);
    const double dice = rng.NextDouble();
    if (dice < 0.55) {
      const std::string value(1 + rng.NextBounded(300), 'a' + key_id % 26);
      ASSERT_TRUE(tree.Put(key, value).ok());
      model[key] = value;
    } else if (dice < 0.75) {
      EXPECT_EQ(tree.Delete(key), model.erase(key) > 0) << step;
    } else {
      std::string got;
      const bool found = tree.Get(key, &got);
      auto it = model.find(key);
      ASSERT_EQ(found, it != model.end()) << step;
      if (found) {
        EXPECT_EQ(got, it->second);
      }
    }
    if (step % 4000 == 3999) {
      ASSERT_TRUE(tree.CheckIntegrity().ok()) << step;
      ASSERT_EQ(tree.Size(), model.size());
    }
  }
  // Final full-order comparison via iterator.
  auto it = tree.Begin();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), k);
    EXPECT_EQ(it.value(), v);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

}  // namespace
}  // namespace lss
