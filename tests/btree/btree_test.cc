#include "btree/btree.h"

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace lss {
namespace {

struct BTreeFixture : ::testing::Test {
  BTreeFixture() : pool(&pager, 64), tree(&pool) {}
  Pager pager;
  BufferPool pool;
  BTree tree;
};

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

TEST_F(BTreeFixture, EmptyTree) {
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_FALSE(tree.Get("anything", nullptr));
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_TRUE(tree.CheckIntegrity().ok());
  EXPECT_EQ(tree.Height(), 1u);
}

TEST_F(BTreeFixture, InsertAndGet) {
  ASSERT_TRUE(tree.Insert("hello", "world").ok());
  std::string v;
  ASSERT_TRUE(tree.Get("hello", &v));
  EXPECT_EQ(v, "world");
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_FALSE(tree.Get("hellp", nullptr));
}

TEST_F(BTreeFixture, DuplicateInsertRejected) {
  ASSERT_TRUE(tree.Insert("k", "1").ok());
  EXPECT_FALSE(tree.Insert("k", "2").ok());
  std::string v;
  tree.Get("k", &v);
  EXPECT_EQ(v, "1");
}

TEST_F(BTreeFixture, PutOverwrites) {
  ASSERT_TRUE(tree.Put("k", "1").ok());
  ASSERT_TRUE(tree.Put("k", "22").ok());
  std::string v;
  ASSERT_TRUE(tree.Get("k", &v));
  EXPECT_EQ(v, "22");
  EXPECT_EQ(tree.Size(), 1u);
}

TEST_F(BTreeFixture, RejectsOversizedPayload) {
  const std::string huge(NodeView::kMaxPayload + 1, 'x');
  EXPECT_FALSE(tree.Insert("k", huge).ok());
  EXPECT_FALSE(tree.Insert("", "v").ok());
}

TEST_F(BTreeFixture, DeleteRemoves) {
  ASSERT_TRUE(tree.Insert("a", "1").ok());
  ASSERT_TRUE(tree.Insert("b", "2").ok());
  EXPECT_TRUE(tree.Delete("a"));
  EXPECT_FALSE(tree.Get("a", nullptr));
  EXPECT_FALSE(tree.Delete("a"));
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_TRUE(tree.CheckIntegrity().ok());
}

TEST_F(BTreeFixture, SplitsGrowTheTree) {
  // Enough records to force three levels: values ~100 bytes → ~36 per
  // leaf → ~250 leaves at 9000 records, exceeding one internal node's
  // ~240 children.
  for (int i = 0; i < 9000; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), std::string(100, 'v')).ok()) << i;
  }
  EXPECT_EQ(tree.Size(), 9000u);
  EXPECT_GE(tree.Height(), 3u);
  ASSERT_TRUE(tree.CheckIntegrity().ok());
  for (int i = 0; i < 9000; i += 97) {
    EXPECT_TRUE(tree.Get(Key(i), nullptr)) << i;
  }
}

TEST_F(BTreeFixture, ReverseInsertionOrder) {
  for (int i = 2000; i > 0; --i) {
    ASSERT_TRUE(tree.Insert(Key(i), "v").ok());
  }
  ASSERT_TRUE(tree.CheckIntegrity().ok());
  int count = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, 2000);
}

TEST_F(BTreeFixture, IteratorWalksInOrder) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i * 2), Key(i)).ok());
  }
  int expected = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), Key(expected));
    expected += 2;
  }
  EXPECT_EQ(expected, 1000);
}

TEST_F(BTreeFixture, SeekFindsLowerBound) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i * 10), "v").ok());
  }
  auto it = tree.Seek(Key(55));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(60));
  it = tree.Seek(Key(60));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(60));
  it = tree.Seek(Key(10000));
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeFixture, SeekSkipsEmptiedLeaves) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), std::string(200, 'v')).ok());
  }
  // Empty out a middle range spanning whole leaves.
  for (int i = 100; i < 200; ++i) EXPECT_TRUE(tree.Delete(Key(i)));
  auto it = tree.Seek(Key(100));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(200));
  ASSERT_TRUE(tree.CheckIntegrity().ok());
}

TEST_F(BTreeFixture, ValueGrowthForcesSplit) {
  // Fill a leaf with small values, then grow one beyond the free space.
  for (int i = 0; i < 36; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), std::string(90, 'a')).ok());
  }
  const std::string big(900, 'b');
  ASSERT_TRUE(tree.Put(Key(18), big).ok());
  std::string v;
  ASSERT_TRUE(tree.Get(Key(18), &v));
  EXPECT_EQ(v, big);
  ASSERT_TRUE(tree.CheckIntegrity().ok());
}

TEST_F(BTreeFixture, TinyBufferPoolStillWorks) {
  // The tree must function with a pool barely larger than its pin depth,
  // exercising eviction and write-back of interior pages.
  Pager small_pager;
  BufferPool small_pool(&small_pager, 8);
  BTree t(&small_pool);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(t.Insert(Key(i), std::string(60, 'v')).ok()) << i;
  }
  for (int i = 0; i < 3000; i += 131) {
    EXPECT_TRUE(t.Get(Key(i), nullptr));
  }
  EXPECT_GT(small_pool.evictions(), 100u);
  ASSERT_TRUE(t.CheckIntegrity().ok());
}

// Property test: random interleaving of put/delete/get mirrors std::map.
TEST_F(BTreeFixture, MatchesReferenceModelUnderChurn) {
  std::map<std::string, std::string> model;
  Rng rng(2024);
  for (int step = 0; step < 20000; ++step) {
    const int key_id = static_cast<int>(rng.NextBounded(800));
    const std::string key = Key(key_id);
    const double dice = rng.NextDouble();
    if (dice < 0.55) {
      const std::string value(1 + rng.NextBounded(300), 'a' + key_id % 26);
      ASSERT_TRUE(tree.Put(key, value).ok());
      model[key] = value;
    } else if (dice < 0.75) {
      EXPECT_EQ(tree.Delete(key), model.erase(key) > 0) << step;
    } else {
      std::string got;
      const bool found = tree.Get(key, &got);
      auto it = model.find(key);
      ASSERT_EQ(found, it != model.end()) << step;
      if (found) {
        EXPECT_EQ(got, it->second);
      }
    }
    if (step % 4000 == 3999) {
      ASSERT_TRUE(tree.CheckIntegrity().ok()) << step;
      ASSERT_EQ(tree.Size(), model.size());
    }
  }
  // Final full-order comparison via iterator.
  auto it = tree.Begin();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), k);
    EXPECT_EQ(it.value(), v);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeMoveTest, MoveTransfersTreeAndNullsSource) {
  // Regression: the defaulted move constructor used to copy the pool
  // pointer into the destination while leaving it in the source, so the
  // moved-from tree silently kept mutating shared pages.
  Pager pager;
  BufferPool pool(&pager, 64);
  BTree a(&pool);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(a.Insert(Key(i), Key(i)).ok());
  }
  const PageNo root = a.root();
  const uint32_t height = a.Height();

  BTree b(std::move(a));
  EXPECT_EQ(b.root(), root);
  EXPECT_EQ(b.Height(), height);
  EXPECT_EQ(b.Size(), 500u);
  std::string v;
  ASSERT_TRUE(b.Get(Key(123), &v));
  EXPECT_EQ(v, Key(123));
  ASSERT_TRUE(b.CheckIntegrity().ok());

  BTree c(&pool);
  ASSERT_TRUE(c.Insert("zzz", "1").ok());
  c = std::move(b);
  EXPECT_EQ(c.Size(), 500u);
  EXPECT_FALSE(c.Get("zzz", nullptr));
  ASSERT_TRUE(c.CheckIntegrity().ok());

#ifndef NDEBUG
  // Debug builds assert on any use of a moved-from tree.
  EXPECT_DEATH(a.Get(Key(1), nullptr), "moved-from");
  EXPECT_DEATH(b.Insert("x", "y").ok(), "moved-from");
#endif
}

TEST_F(BTreeFixture, IteratorSurvivesWritesByReseeking) {
  // Regression: iterators used to cache a (leaf, slot) position with no
  // invalidation check, so a write that split or reorganised the leaf
  // made Next() read garbage. Now every Load compares the tree's
  // modification counter and re-seeks past the last returned key.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), "v").ok());
  }
  auto it = tree.Begin();
  for (int i = 0; i < 10; ++i) it.Next();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(10));

  // Mutate the tree under the live iterator: delete the keys it would
  // visit next and insert a new key between 10 and 11.
  for (int i = 11; i <= 15; ++i) EXPECT_TRUE(tree.Delete(Key(i)));
  ASSERT_TRUE(tree.Insert(Key(10) + "x", "mid").ok());

  it.Next();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(10) + "x");
  it.Next();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(16));

  // The remainder of the scan stays strictly increasing to the end.
  std::string prev = it.key();
  for (it.Next(); it.Valid(); it.Next()) {
    EXPECT_LT(prev, it.key());
    prev = it.key();
  }
  EXPECT_EQ(prev, Key(99));
}

TEST_F(BTreeFixture, IteratorSurvivesSplitsMidScan) {
  // Bulk inserts while an iterator is parked must not derail it even
  // when its leaf splits; it may see or skip keys inserted behind its
  // bound, but never breaks order or loses pre-existing keys.
  for (int i = 0; i < 200; i += 2) {
    ASSERT_TRUE(tree.Insert(Key(i), std::string(60, 'v')).ok());
  }
  auto it = tree.Begin();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(0));
  // Fill in every odd key: forces splits across the whole leaf chain.
  for (int i = 1; i < 200; i += 2) {
    ASSERT_TRUE(tree.Insert(Key(i), std::string(60, 'o')).ok());
  }
  int seen_even = 1;  // Key(0) already returned
  std::string prev = it.key();
  for (it.Next(); it.Valid(); it.Next()) {
    EXPECT_LT(prev, it.key());
    prev = it.key();
    const int n = std::stoi(it.key().substr(1));
    if (n % 2 == 0) ++seen_even;
  }
  // Every pre-existing (even) key after the bound must be seen.
  EXPECT_EQ(seen_even, 100);
  ASSERT_TRUE(tree.CheckIntegrity().ok());
}

// --- Concurrency (runs under TSan via check.sh --tsan) -------------------

TEST(BTreeParallelTest, DeleteChurnWithConcurrentReaders) {
  // Delete-heavy churn leaves underfull (even empty) leaves behind;
  // concurrent readers must hop them without tripping on the writers.
  Pager pager;
  BufferPool pool(&pager, 128);
  BTree tree(&pool);
  constexpr int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), std::string(80, 'v')).ok());
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&tree, &stop, r] {
      Rng rng(100 + r);
      std::string v;
      while (!stop.load(std::memory_order_acquire)) {
        const int k = static_cast<int>(rng.NextBounded(kKeys));
        tree.Get(Key(k), &v);
        // Short ordered scan across whatever leaves exist right now.
        std::string prev;
        auto it = tree.Seek(Key(k));
        for (int n = 0; n < 20 && it.Valid(); ++n, it.Next()) {
          if (!prev.empty()) {
            EXPECT_LT(prev, it.key());
          }
          prev = it.key();
        }
      }
    });
  }

  // Writer: wave-delete whole ranges (emptying leaves), then reinsert.
  Rng rng(7);
  for (int round = 0; round < 25; ++round) {
    const int base = static_cast<int>(rng.NextBounded(kKeys - 200));
    for (int i = base; i < base + 200; ++i) tree.Delete(Key(i));
    for (int i = base; i < base + 200; ++i) {
      ASSERT_TRUE(tree.Put(Key(i), std::string(1 + i % 120, 'r')).ok());
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();

  ASSERT_TRUE(tree.CheckIntegrity().ok());
  EXPECT_EQ(tree.Size(), static_cast<uint64_t>(kKeys));
}

TEST(BTreeParallelTest, WritersAndReadersStress) {
  // The tentpole invariant: one tree, 4 writers + 4 readers, fully
  // concurrent, structurally sound at every quiescent phase boundary.
  // Writers own disjoint key spaces with deterministic op streams, so
  // the final contents must match a serial replay exactly.
  Pager pager;
  BufferPool pool(&pager, 256);
  BTree tree(&pool);
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kOpsPerWriter = 2500;
  constexpr int kPhases = 3;

  std::map<std::string, std::string> model;
  auto writer_ops = [&](int phase, int wtr, auto&& put, auto&& del) {
    Rng rng(1000 * phase + wtr);
    for (int i = 0; i < kOpsPerWriter; ++i) {
      const int k = wtr * 100000 + static_cast<int>(rng.NextBounded(1500));
      const double dice = rng.NextDouble();
      if (dice < 0.65) {
        put(Key(k), std::string(1 + k % 90, static_cast<char>('a' + wtr)));
      } else if (dice < 0.9) {
        del(Key(k));
      }
    }
  };

  for (int phase = 0; phase < kPhases; ++phase) {
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int wtr = 0; wtr < kWriters; ++wtr) {
      threads.emplace_back([&, wtr] {
        writer_ops(
            phase, wtr,
            [&](const std::string& k, const std::string& v) {
              ASSERT_TRUE(tree.Put(k, v).ok());
            },
            [&](const std::string& k) { tree.Delete(k); });
      });
    }
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&, r] {
        Rng rng(9000 + r);
        std::string v;
        while (!stop.load(std::memory_order_acquire)) {
          const int k = static_cast<int>(rng.NextBounded(kWriters)) * 100000 +
                        static_cast<int>(rng.NextBounded(1500));
          tree.Get(Key(k), &v);
          std::string prev;
          auto it = tree.Seek(Key(k));
          for (int n = 0; n < 10 && it.Valid(); ++n, it.Next()) {
            if (!prev.empty()) {
            EXPECT_LT(prev, it.key());
          }
            prev = it.key();
          }
        }
      });
    }
    for (int wtr = 0; wtr < kWriters; ++wtr) threads[wtr].join();
    stop.store(true, std::memory_order_release);
    for (int r = 0; r < kReaders; ++r) threads[kWriters + r].join();

    // Quiescent: full structural validation between phases.
    ASSERT_TRUE(tree.CheckIntegrity().ok()) << "phase " << phase;

    // Serial replay of the same deterministic streams into the model.
    for (int wtr = 0; wtr < kWriters; ++wtr) {
      writer_ops(
          phase, wtr,
          [&](const std::string& k, const std::string& v) { model[k] = v; },
          [&](const std::string& k) { model.erase(k); });
    }
  }

  ASSERT_EQ(tree.Size(), model.size());
  auto it = tree.Begin();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), k);
    EXPECT_EQ(it.value(), v);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

}  // namespace
}  // namespace lss
