#include "workload/trace.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace lss {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceTest, AppendAndInspect) {
  Trace t;
  EXPECT_TRUE(t.Empty());
  t.AppendWrite(3, 4096);
  t.AppendWrite(1);
  t.AppendDelete(3);
  EXPECT_EQ(t.Size(), 3u);
  EXPECT_EQ(t.records()[0].op, TraceRecord::Op::kWrite);
  EXPECT_EQ(t.records()[0].bytes, 4096u);
  EXPECT_EQ(t.records()[2].op, TraceRecord::Op::kDelete);
  EXPECT_EQ(t.MaxPageId(), 4u);
}

TEST(TraceTest, MaxPageIdOfEmptyTrace) {
  Trace t;
  EXPECT_EQ(t.MaxPageId(), 0u);
}

TEST(TraceTest, SaveLoadRoundTrip) {
  Trace t;
  for (PageId p = 0; p < 100; ++p) t.AppendWrite(p % 7, 4096);
  t.AppendDelete(3);
  const std::string path = TempPath("trace_roundtrip.bin");
  ASSERT_TRUE(t.SaveTo(path));

  Trace loaded;
  ASSERT_TRUE(loaded.LoadFrom(path));
  ASSERT_EQ(loaded.Size(), t.Size());
  for (size_t i = 0; i < t.Size(); ++i) {
    EXPECT_EQ(loaded.records()[i].op, t.records()[i].op);
    EXPECT_EQ(loaded.records()[i].page, t.records()[i].page);
    EXPECT_EQ(loaded.records()[i].bytes, t.records()[i].bytes);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsGarbage) {
  const std::string path = TempPath("trace_garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  std::fclose(f);
  Trace t;
  EXPECT_FALSE(t.LoadFrom(path));
  EXPECT_TRUE(t.Empty());
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsMissingFile) {
  Trace t;
  EXPECT_FALSE(t.LoadFrom(TempPath("does_not_exist.bin")));
}

TEST(TraceTest, ExactFrequenciesNormalised) {
  Trace t;
  // Page 0 written 6 times, page 1 written 2 times: mean over touched
  // pages must be 1, ratios preserved.
  for (int i = 0; i < 6; ++i) t.AppendWrite(0);
  for (int i = 0; i < 2; ++i) t.AppendWrite(1);
  auto freq = t.ComputeExactFrequencies(0, t.Size());
  ASSERT_EQ(freq.size(), 2u);
  EXPECT_NEAR((freq[0] + freq[1]) / 2.0, 1.0, 1e-9);
  EXPECT_NEAR(freq[0] / freq[1], 3.0, 1e-9);
}

TEST(TraceTest, ExactFrequenciesWindowed) {
  Trace t;
  t.AppendWrite(0);  // outside the window
  t.AppendWrite(1);
  t.AppendWrite(1);
  auto freq = t.ComputeExactFrequencies(1, t.Size());
  // Page 0 does not appear in the window but must still get a positive
  // (small) frequency so oracles never return zero for replayed pages.
  EXPECT_GT(freq[0], 0.0);
  EXPECT_LT(freq[0], freq[1]);
}

TEST(TraceTest, DeletesIgnoredInFrequencies) {
  Trace t;
  t.AppendWrite(0);
  t.AppendDelete(0);
  t.AppendDelete(0);
  auto freq = t.ComputeExactFrequencies(0, t.Size());
  EXPECT_NEAR(freq[0], 1.0, 1e-9);
}

}  // namespace
}  // namespace lss
