#include "workload/trace.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/store_shard.h"
#include "util/rng.h"

namespace lss {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceTest, AppendAndInspect) {
  Trace t;
  EXPECT_TRUE(t.Empty());
  t.AppendWrite(3, 4096);
  t.AppendWrite(1);
  t.AppendDelete(3);
  EXPECT_EQ(t.Size(), 3u);
  EXPECT_EQ(t.records()[0].op, TraceRecord::Op::kWrite);
  EXPECT_EQ(t.records()[0].bytes, 4096u);
  EXPECT_EQ(t.records()[2].op, TraceRecord::Op::kDelete);
  EXPECT_EQ(t.MaxPageId(), 4u);
}

TEST(TraceTest, MaxPageIdOfEmptyTrace) {
  Trace t;
  EXPECT_EQ(t.MaxPageId(), 0u);
}

TEST(TraceTest, SaveLoadRoundTrip) {
  Trace t;
  for (PageId p = 0; p < 100; ++p) t.AppendWrite(p % 7, 4096);
  t.AppendDelete(3);
  const std::string path = TempPath("trace_roundtrip.bin");
  ASSERT_TRUE(t.SaveTo(path));

  Trace loaded;
  ASSERT_TRUE(loaded.LoadFrom(path));
  ASSERT_EQ(loaded.Size(), t.Size());
  for (size_t i = 0; i < t.Size(); ++i) {
    EXPECT_EQ(loaded.records()[i].op, t.records()[i].op);
    EXPECT_EQ(loaded.records()[i].page, t.records()[i].page);
    EXPECT_EQ(loaded.records()[i].bytes, t.records()[i].bytes);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsGarbage) {
  const std::string path = TempPath("trace_garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  std::fclose(f);
  Trace t;
  EXPECT_FALSE(t.LoadFrom(path));
  EXPECT_TRUE(t.Empty());
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsMissingFile) {
  Trace t;
  EXPECT_FALSE(t.LoadFrom(TempPath("does_not_exist.bin")));
}

TEST(TraceTest, ExactFrequenciesNormalised) {
  Trace t;
  // Page 0 written 6 times, page 1 written 2 times: mean over touched
  // pages must be 1, ratios preserved.
  for (int i = 0; i < 6; ++i) t.AppendWrite(0);
  for (int i = 0; i < 2; ++i) t.AppendWrite(1);
  auto freq = t.ComputeExactFrequencies(0, t.Size());
  ASSERT_EQ(freq.size(), 2u);
  EXPECT_NEAR((freq[0] + freq[1]) / 2.0, 1.0, 1e-9);
  EXPECT_NEAR(freq[0] / freq[1], 3.0, 1e-9);
}

TEST(TraceTest, ExactFrequenciesWindowed) {
  Trace t;
  t.AppendWrite(0);  // outside the window
  t.AppendWrite(1);
  t.AppendWrite(1);
  auto freq = t.ComputeExactFrequencies(1, t.Size());
  // Page 0 does not appear in the window but must still get a positive
  // (small) frequency so oracles never return zero for replayed pages.
  EXPECT_GT(freq[0], 0.0);
  EXPECT_LT(freq[0], freq[1]);
}

TEST(TraceTest, DeletesIgnoredInFrequencies) {
  Trace t;
  t.AppendWrite(0);
  t.AppendDelete(0);
  t.AppendDelete(0);
  auto freq = t.ComputeExactFrequencies(0, t.Size());
  EXPECT_NEAR(freq[0], 1.0, 1e-9);
}

TEST(SplitTraceTest, PartitionsByShardPreservingOrder) {
  Trace t;
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    const PageId p = rng.NextBounded(300);
    if (rng.NextBool(0.05)) {
      t.AppendDelete(p);
    } else {
      t.AppendWrite(p, 100 + (i % 7));
    }
  }
  const uint32_t shards = 4;
  const size_t measure_from = 1200;
  const ShardedTrace st = SplitTrace(t, measure_from, shards);
  ASSERT_TRUE(st.Valid());
  ASSERT_EQ(st.shards, shards);
  ASSERT_EQ(st.sub.size(), shards);
  ASSERT_EQ(st.measure_from.size(), shards);

  // Replaying the original trace through the router must visit each
  // sub-trace's records in exactly their stored order, and the per-shard
  // measure boundary must count exactly the prefix records routed there.
  std::vector<size_t> cursor(shards, 0);
  size_t total = 0;
  for (size_t i = 0; i < t.Size(); ++i) {
    const TraceRecord& r = t.records()[i];
    const uint32_t s = PageShard(r.page, shards);
    ASSERT_LT(cursor[s], st.sub[s].Size());
    const TraceRecord& got = st.sub[s].records()[cursor[s]];
    ASSERT_EQ(got.op, r.op) << "record " << i;
    ASSERT_EQ(got.page, r.page) << "record " << i;
    ASSERT_EQ(got.bytes, r.bytes) << "record " << i;
    ++cursor[s];
    if (i + 1 == measure_from) {
      for (uint32_t q = 0; q < shards; ++q) {
        EXPECT_EQ(st.measure_from[q], cursor[q]) << "shard " << q;
      }
    }
  }
  for (uint32_t s = 0; s < shards; ++s) {
    EXPECT_EQ(cursor[s], st.sub[s].Size()) << "shard " << s;
    total += st.sub[s].Size();
  }
  EXPECT_EQ(total, t.Size());
}

TEST(SplitTraceTest, SingleShardIsIdentity) {
  Trace t;
  for (PageId p = 0; p < 20; ++p) t.AppendWrite(p);
  const ShardedTrace st = SplitTrace(t, 5, 1);
  ASSERT_TRUE(st.Valid());
  ASSERT_EQ(st.sub.size(), 1u);
  EXPECT_EQ(st.sub[0].Size(), t.Size());
  EXPECT_EQ(st.measure_from[0], 5u);
}

TEST(SplitTraceTest, MeasureBoundaryEdges) {
  Trace t;
  for (PageId p = 0; p < 40; ++p) t.AppendWrite(p);
  // measure_from == 0: every shard measures from its first record.
  const ShardedTrace all = SplitTrace(t, 0, 4);
  for (uint32_t s = 0; s < 4; ++s) EXPECT_EQ(all.measure_from[s], 0u);
  // measure_from past the end (clamped): nothing is measured.
  const ShardedTrace none = SplitTrace(t, t.Size() + 10, 4);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(none.measure_from[s], none.sub[s].Size()) << "shard " << s;
  }
  // An empty trace still yields a valid (empty) split.
  const ShardedTrace empty = SplitTrace(Trace(), 0, 2);
  EXPECT_TRUE(empty.Valid());
  EXPECT_EQ(empty.sub[0].Size() + empty.sub[1].Size(), 0u);
}

}  // namespace
}  // namespace lss
