#include "workload/generator.h"

#include <vector>

#include <gtest/gtest.h>

#include "workload/zipfian_workload.h"

namespace lss {
namespace {

TEST(UniformWorkloadTest, Basics) {
  UniformWorkload w(100);
  EXPECT_EQ(w.NumPages(), 100u);
  EXPECT_EQ(w.name(), "uniform");
  EXPECT_DOUBLE_EQ(w.ExactFrequency(0), 1.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(w.NextPage(rng), 100u);
}

TEST(UniformWorkloadTest, CoversAllPages) {
  UniformWorkload w(10);
  Rng rng(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[w.NextPage(rng)]++;
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(HotColdWorkloadTest, EightyTwentyGeometry) {
  HotColdWorkload w(1000, 0.8);
  EXPECT_EQ(w.NumPages(), 1000u);
  EXPECT_EQ(w.hot_pages(), 200u);  // 20% of the data
  EXPECT_EQ(w.name(), "hot-cold 80-20");
}

TEST(HotColdWorkloadTest, FrequenciesNormalisedToMeanOne) {
  for (double m : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    HotColdWorkload w(1000, m);
    double sum = 0;
    for (PageId p = 0; p < 1000; ++p) sum += w.ExactFrequency(p);
    EXPECT_NEAR(sum / 1000.0, 1.0, 1e-9) << "m=" << m;
  }
}

TEST(HotColdWorkloadTest, HotPagesHotterThanCold) {
  HotColdWorkload w(1000, 0.8);
  EXPECT_DOUBLE_EQ(w.ExactFrequency(0), 4.0);      // 0.8/0.2
  EXPECT_DOUBLE_EQ(w.ExactFrequency(999), 0.25);   // 0.2/0.8
}

TEST(HotColdWorkloadTest, UpdateMassMatchesM) {
  HotColdWorkload w(1000, 0.8);
  Rng rng(3);
  int hot_hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    hot_hits += (w.NextPage(rng) < w.hot_pages());
  }
  EXPECT_NEAR(hot_hits / static_cast<double>(kDraws), 0.8, 0.01);
}

TEST(HotColdWorkloadTest, FiftyFiftyIsUniform) {
  HotColdWorkload w(1000, 0.5);
  EXPECT_NEAR(w.ExactFrequency(0), 1.0, 1e-9);
  EXPECT_NEAR(w.ExactFrequency(999), 1.0, 1e-9);
}

TEST(ZipfianWorkloadTest, FrequenciesNormalisedToMeanOne) {
  ZipfianWorkload w(5000, 0.99);
  double sum = 0;
  for (PageId p = 0; p < 5000; ++p) sum += w.ExactFrequency(p);
  EXPECT_NEAR(sum / 5000.0, 1.0, 1e-9);
}

TEST(ZipfianWorkloadTest, ExactFrequencyMatchesSampling) {
  // The oracle must agree with what the sampler actually draws,
  // including scatter collisions.
  constexpr uint64_t kN = 500;
  ZipfianWorkload w(kN, 1.35);
  Rng rng(11);
  constexpr int kDraws = 400000;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) counts[w.NextPage(rng)]++;
  // Check the pages with the largest oracle frequency.
  for (PageId p = 0; p < kN; ++p) {
    if (w.ExactFrequency(p) < 5.0) continue;
    const double expected = w.ExactFrequency(p) / kN * kDraws;
    EXPECT_NEAR(counts[p], expected, expected * 0.15 + 40) << "page " << p;
  }
}

TEST(ZipfianWorkloadTest, NameIncludesTheta) {
  ZipfianWorkload w(100, 0.99);
  EXPECT_EQ(w.name(), "zipfian theta=0.99");
}

TEST(ZipfianWorkloadTest, HigherThetaMoreConcentrated) {
  ZipfianWorkload a(2000, 0.99), b(2000, 1.35);
  double max_a = 0, max_b = 0;
  for (PageId p = 0; p < 2000; ++p) {
    max_a = std::max(max_a, a.ExactFrequency(p));
    max_b = std::max(max_b, b.ExactFrequency(p));
  }
  EXPECT_GT(max_b, max_a);
}

TEST(ScanFloodWorkloadTest, ScheduleAlternatesPointRunsAndSweeps) {
  // The schedule is a pure function of the op counter: point_run Zipf
  // draws, then one full sequential sweep, repeating. The sweep portion
  // must hit 0..pages-1 in order, every round.
  constexpr uint64_t kPages = 64;
  constexpr uint64_t kPointRun = 100;
  ScanFloodWorkload w(kPages, 0.99, kPointRun);
  EXPECT_EQ(w.name(), "scan-flood");
  EXPECT_EQ(w.NumPages(), kPages);
  EXPECT_EQ(w.point_ops_per_sweep(), kPointRun);
  Rng rng(7);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t i = 0; i < kPointRun; ++i) {
      EXPECT_LT(w.NextPage(rng), kPages);
    }
    for (uint64_t p = 0; p < kPages; ++p) {
      EXPECT_EQ(w.NextPage(rng), p) << "round " << round;
    }
  }
}

TEST(ScanFloodWorkloadTest, FrequenciesNormalisedToMeanOne) {
  ScanFloodWorkload w(1000, 0.99, 3000);
  double sum = 0;
  for (PageId p = 0; p < 1000; ++p) {
    EXPECT_GT(w.ExactFrequency(p), 0.0);  // the sweep touches every page
    sum += w.ExactFrequency(p);
  }
  EXPECT_NEAR(sum / 1000.0, 1.0, 1e-9);
}

TEST(ScanFloodWorkloadTest, ExactFrequencyMatchesSampling) {
  constexpr uint64_t kN = 200;
  constexpr uint64_t kPointRun = 600;
  ScanFloodWorkload w(kN, 1.2, kPointRun);
  Rng rng(19);
  constexpr int kRounds = 400;
  constexpr uint64_t kDraws = kRounds * (kPointRun + kN);
  std::vector<int> counts(kN, 0);
  for (uint64_t i = 0; i < kDraws; ++i) counts[w.NextPage(rng)]++;
  for (PageId p = 0; p < kN; ++p) {
    if (w.ExactFrequency(p) < 2.0) continue;  // check the heavy hitters
    const double expected = w.ExactFrequency(p) / kN * kDraws;
    EXPECT_NEAR(counts[p], expected, expected * 0.15 + 50) << "page " << p;
  }
}

}  // namespace
}  // namespace lss
